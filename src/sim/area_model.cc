#include "sim/area_model.h"

#include "common/logging.h"

namespace enode {

namespace {

constexpr double kMb = 1024.0 * 1024.0;

/**
 * Weight buffer: all integration layers' f weights, double buffered so
 * the next layer's weights load while the current layer computes. Both
 * designs carry the same weight storage (Table I lists identical weight
 * buffers for baseline and eNODE).
 */
double
weightBufferMb(const DepthFirstConfig &cfg, std::size_t integration_layers)
{
    const double per_conv = static_cast<double>(cfg.C) * cfg.C * cfg.kernel *
                            cfg.kernel * cfg.bytesPerElement;
    return 2.0 * integration_layers * cfg.fDepth * per_conv / kMb;
}

} // namespace

AreaBreakdown
computeAreaBreakdown(const DepthFirstConfig &cfg, const AreaParams &params)
{
    ENODE_ASSERT(cfg.tableau != nullptr, "config needs a tableau");
    const auto fwd = analyzeForwardBuffers(cfg);
    const auto train = analyzeTrainingBuffers(cfg);

    AreaBreakdown out;
    auto addItem = [&](std::string name, double base_mb, double base_mm2,
                       double enode_mb, double enode_mm2) {
        out.items.push_back(
            {std::move(name), base_mb, base_mm2, enode_mb, enode_mm2});
        out.baselineTotalMb += base_mb;
        out.baselineTotalMm2 += base_mm2;
        out.enodeTotalMb += enode_mb;
        out.enodeTotalMm2 += enode_mm2;
    };

    // Logic: the same MAC count on both sides; eNODE pays a little extra
    // for the ring router, hub and packet control.
    addItem("Core & Control", 0.0, params.baselineCoreMm2, 0.0,
            params.enodeCoreMm2);

    const double w_mb = weightBufferMb(cfg, 4);
    addItem("Weight Buffer", w_mb, w_mb * params.weightSramMm2PerMb, w_mb,
            w_mb * params.weightSramMm2PerMb);

    const double base_int_mb = static_cast<double>(fwd.baselineBytes) / kMb;
    const double enode_int_mb =
        static_cast<double>(fwd.enodeIntegralBytes) / kMb;
    addItem("Integral State Buffer", base_int_mb,
            base_int_mb * params.sramMm2PerMb, enode_int_mb,
            enode_int_mb * params.sramMm2PerMb);

    const double line_mb = static_cast<double>(fwd.enodeLineBytes) / kMb;
    addItem("Line Buffer", 0.0, 0.0, line_mb,
            line_mb * params.sramMm2PerMb);

    // Both designs provision the training-state buffer at the depth-first
    // working set; the baseline simply spills the rest to DRAM (Fig 15b).
    const double train_mb =
        static_cast<double>(train.enodeWorkingSetBytes) / kMb;
    addItem("Training State Buffer", train_mb,
            train_mb * params.sramMm2PerMb, train_mb,
            train_mb * params.sramMm2PerMb);

    return out;
}

} // namespace enode
