#include "sim/nn_core.h"

#include "common/logging.h"

namespace enode {

NnCore::NnCore(std::string name, NnCoreConfig config)
    : name_(std::move(name)),
      config_(config),
      array_(config.lanes, config.kernel),
      lineBuffer_(name_ + ".lineBuffer", config.lineBufferBytes),
      trainingBuffer_(name_ + ".trainingBuffer",
                      config.trainingBufferBytes)
{
}

std::size_t
NnCore::tensorBytes(const Tensor &t) const
{
    return t.numel() * 2; // FP16 storage
}

void
NnCore::loadWeights(const Tensor &weight)
{
    array_.loadWeights(weight);
}

Tensor
NnCore::forward(const Tensor &x, const Tensor &bias, bool relu,
                bool capture_training_state)
{
    ENODE_ASSERT(x.shape().rank() == 3, "core input must be CHW");
    const std::size_t H = x.shape().dim(1);
    const std::size_t W = x.shape().dim(2);

    // Channel collector: one packet per pixel (1 x 1 x lanes).
    stats_.packetsCollected += H * W;

    // Depth-first psum window: (K - 1) rows of psums plus the row under
    // production live in the line buffer while the map streams through.
    const std::size_t window_bytes =
        config_.kernel * W * config_.lanes * 2;
    ENODE_ASSERT(lineBuffer_.allocate(window_bytes),
                 name_, ": line buffer overflow (", window_bytes,
                 " bytes needed, ", lineBuffer_.freeBytes(), " free)");
    // Every output element is a psum read-modify-write per kernel row.
    lineBuffer_.read(tensorBytes(x) * config_.kernel);
    lineBuffer_.write(tensorBytes(x) * config_.kernel);

    Tensor out = array_.forwardConv(x, bias);
    stats_.computeCycles += PeArray::convCycles(
        H, W, config_.lanes, config_.lanes, config_.lanes);

    if (relu) {
        for (std::size_t i = 0; i < out.numel(); i++) {
            if (out.at(i) < 0.0f)
                out.at(i) = 0.0f;
        }
        stats_.reluOps += out.numel();
    }

    if (capture_training_state) {
        ENODE_ASSERT(trainingBuffer_.allocate(tensorBytes(x)),
                     name_, ": training-state buffer overflow");
        trainingBuffer_.write(tensorBytes(x));
        trainingStates_.push_back(x);
        stats_.trainingStatesCaptured++;
    }

    lineBuffer_.release(window_bytes);
    return out;
}

Tensor
NnCore::backwardData(const Tensor &grad_out)
{
    const std::size_t H = grad_out.shape().dim(1);
    const std::size_t W = grad_out.shape().dim(2);
    stats_.packetsCollected += H * W;

    const std::size_t window_bytes =
        config_.kernel * W * config_.lanes * 2;
    ENODE_ASSERT(lineBuffer_.allocate(window_bytes),
                 name_, ": line buffer overflow in backward");
    lineBuffer_.read(tensorBytes(grad_out) * config_.kernel);
    lineBuffer_.write(tensorBytes(grad_out) * config_.kernel);

    Tensor out = array_.backwardDataConv(grad_out);
    stats_.computeCycles += PeArray::convCycles(
        H, W, config_.lanes, config_.lanes, config_.lanes);
    lineBuffer_.release(window_bytes);
    return out;
}

Tensor
NnCore::weightGrad(const Tensor &grad_out)
{
    ENODE_ASSERT(!trainingStates_.empty(),
                 name_, ": no training state captured for weightGrad");
    const Tensor &state = trainingStates_.back();
    trainingBuffer_.read(tensorBytes(state));
    Tensor grad = array_.weightGrad(state, grad_out);
    stats_.computeCycles += PeArray::convCycles(
        grad_out.shape().dim(1), grad_out.shape().dim(2), config_.lanes,
        config_.lanes, config_.lanes);
    return grad;
}

void
NnCore::retireTrainingState()
{
    ENODE_ASSERT(!trainingStates_.empty(),
                 name_, ": no training state to retire");
    trainingBuffer_.release(tensorBytes(trainingStates_.back()));
    trainingStates_.pop_back();
}

void
NnCore::addActivity(ActivityCounts &activity) const
{
    activity.macs += array_.macCount();
    activity.aluOps += stats_.reluOps;
    // Channel-collector distribution: one register access per packet
    // word in and out.
    activity.regAccesses += stats_.packetsCollected * config_.lanes * 2;
    lineBuffer_.addActivity(activity);
    trainingBuffer_.addActivity(activity);
}

} // namespace enode
