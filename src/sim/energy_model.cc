#include "sim/energy_model.h"

namespace enode {

void
ActivityCounts::accumulate(const ActivityCounts &other)
{
    macs += other.macs;
    aluOps += other.aluOps;
    sramReads += other.sramReads;
    sramWrites += other.sramWrites;
    regAccesses += other.regAccesses;
    nocHopWords += other.nocHopWords;
    dramBytes += other.dramBytes;
}

void
ActivityCounts::scale(double factor)
{
    auto mul = [factor](std::uint64_t v) {
        return static_cast<std::uint64_t>(static_cast<double>(v) * factor +
                                          0.5);
    };
    macs = mul(macs);
    aluOps = mul(aluOps);
    sramReads = mul(sramReads);
    sramWrites = mul(sramWrites);
    regAccesses = mul(regAccesses);
    nocHopWords = mul(nocHopWords);
    dramBytes = mul(dramBytes);
}

double
EnergyBreakdown::totalJ() const
{
    return computeJ + sramJ + nocJ + dramJ + staticJ;
}

double
EnergyBreakdown::totalW(double cycles, double clock_hz) const
{
    if (cycles <= 0.0)
        return 0.0;
    return totalJ() / (cycles / clock_hz);
}

double
EnergyBreakdown::dramW(double cycles, double clock_hz) const
{
    if (cycles <= 0.0)
        return 0.0;
    return dramJ / (cycles / clock_hz);
}

EnergyBreakdown
computeEnergy(const ActivityCounts &activity, double cycles,
              const EnergyParams &params)
{
    constexpr double pj = 1e-12;
    EnergyBreakdown out;
    out.computeJ = (activity.macs * params.macPj +
                    activity.aluOps * params.aluPj) *
                   pj;
    out.sramJ = (activity.sramReads * params.sramReadPj +
                 activity.sramWrites * params.sramWritePj +
                 activity.regAccesses * params.regPj) *
                pj;
    out.nocJ = activity.nocHopWords * params.nocHopPj * pj;
    const double seconds = cycles / params.clockHz;
    out.dramJ = activity.dramBytes * params.dramPjPerByte * pj +
                params.dramStaticW * seconds;
    out.staticJ = params.coreStaticW * seconds;
    return out;
}

void
publishEnergy(StatGroup &stats, const std::string &prefix,
              const EnergyBreakdown &energy, double cycles,
              const EnergyParams &params)
{
    stats.set(prefix + ".computeJ", energy.computeJ);
    stats.set(prefix + ".sramJ", energy.sramJ);
    stats.set(prefix + ".nocJ", energy.nocJ);
    stats.set(prefix + ".dramJ", energy.dramJ);
    stats.set(prefix + ".staticJ", energy.staticJ);
    stats.set(prefix + ".totalJ", energy.totalJ());
    stats.set(prefix + ".cycles", cycles);
    stats.set(prefix + ".totalW", energy.totalW(cycles, params.clockHz));
    stats.set(prefix + ".dramW", energy.dramW(cycles, params.clockHz));
}

} // namespace enode
