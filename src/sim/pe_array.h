#ifndef ENODE_SIM_PE_ARRAY_H
#define ENODE_SIM_PE_ARRAY_H

/**
 * @file
 * The unified NN core's PE array (Sec. VI, Fig. 9).
 *
 * 64 PEs arranged as 8 input channels x 8 output channels, organized in
 * 8 diagonal groups: group g holds PE_{c, (c+g) % 8}. Each PE caches one
 * 3x3 kernel and computes 9 psums per input. An 8-lane adder tree sums,
 * per output channel, one psum set from each group.
 *
 * The same PEs, cached weights and adder tree serve three computations:
 *  - Mode::Forward        y[m] += sum_c x[c] * W[m][c]           (Fig. 9b)
 *  - Mode::BackwardData   dx[c] += sum_m dy[m] * flip(W[m][c])   (Fig. 9c)
 *  - Mode::WeightGrad     dW[m][c] += correlate(x[c], dy[m])
 *
 * This file provides a *functional* model — it routes real numbers
 * through the group/adder-tree structure and is tested against the
 * reference convolution — plus the cycle/MAC cost expressions the
 * system models use. Larger channel counts time-multiplex the array in
 * ceil(C/8) x ceil(M/8) tiles.
 */

#include <cstdint>

#include "sim/energy_model.h"
#include "tensor/tensor.h"

namespace enode {

/** Datapath mode of the unified core. */
enum class PeMode { Forward, BackwardData, WeightGrad };

/** Functional + cost model of one grouped PE array. */
class PeArray
{
  public:
    /**
     * @param lanes PEs per side (prototype: 8 in x 8 out = 64 PEs).
     * @param kernel Cached kernel extent (3).
     */
    PeArray(std::size_t lanes = 8, std::size_t kernel = 3);

    std::size_t lanes() const { return lanes_; }
    std::size_t peCount() const { return lanes_ * lanes_; }
    /** MACs the array completes per cycle at full utilization. */
    std::size_t macsPerCycle() const
    {
        return peCount() * kernel_ * kernel_;
    }

    /**
     * Load a (lanes x lanes x K x K) weight tile into the PE caches.
     * PE_{c,m} (group (m - c) mod lanes) caches W[m][c].
     */
    void loadWeights(const Tensor &weight);

    /**
     * Full-map forward convolution routed through the group structure.
     * Input (lanes, H, W) -> output (lanes, H, W), same padding.
     * Numerically identical to the reference convForward.
     */
    Tensor forwardConv(const Tensor &x, const Tensor &bias);

    /**
     * Full-map backward-data convolution on the *same* cached weights:
     * flipped kernels, C/M roles swapped, same adder tree (Fig. 9c).
     * Matches the reference convBackwardData.
     */
    Tensor backwardDataConv(const Tensor &grad_out);

    /** Weight-gradient accumulation on the same PEs. */
    Tensor weightGrad(const Tensor &x, const Tensor &grad_out);

    /** MACs executed so far (functional model). */
    std::uint64_t macCount() const { return macs_; }

    // ---- Cost model (used by the system simulators) ----

    /**
     * Cycles for one conv layer over an H x W map with C in / M out
     * channels: one packet (8 channels x 1 pixel) per cycle per tile.
     */
    static double convCycles(std::size_t H, std::size_t W, std::size_t C,
                             std::size_t M, std::size_t lanes);

    /** MACs for the same conv layer. */
    static double convMacs(std::size_t H, std::size_t W, std::size_t C,
                           std::size_t M, std::size_t kernel);

  private:
    /** group of PE_{c,m}: (m - c) mod lanes. */
    std::size_t groupOf(std::size_t c, std::size_t m) const;

    std::size_t lanes_;
    std::size_t kernel_;
    Tensor cachedWeights_; // (lanes, lanes, K, K) = (M, C, K, K)
    bool weightsLoaded_ = false;
    std::uint64_t macs_ = 0;
};

} // namespace enode

#endif // ENODE_SIM_PE_ARRAY_H
