#include "sim/enode_system.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "common/logging.h"
#include "sim/pe_array.h"

namespace enode {

namespace {

/**
 * Row-granular pipelined execution engine.
 *
 * Tasks are (stream, stage, row) triples. Stage layout:
 *   stage 0                : hub stage-input accumulation (resource hub)
 *   stage 1 .. depth       : conv layer d-1 on core (d-1) % numCores
 *   stage depth+1          : hub integral accumulation of k_j
 *
 * Dependencies encode the depth-first dataflow: a conv row needs its
 * producer's rows up to r+pad (the conv halo), its own previous row
 * (in-order per map), and the ring transfer of the producer row to its
 * core. Stage-input rows of stream j need the accumulated k_l rows of
 * every earlier stream the tableau references. Resources serialize;
 * when several streams contend for a core, the *later* stream wins
 * (the priority-selector policy of Fig. 8).
 */
class PipelineSim
{
  public:
    PipelineSim(const SystemConfig &cfg, RingDirection direction,
                double conv_duration_scale, std::size_t streams = 0)
        : cfg_(cfg),
          direction_(direction),
          noc_(cfg.numCores + 1, cfg.linkBytesPerCycle),
          tableau_(*cfg.layer.tableau),
          s_(streams ? streams : tableau_.stages()),
          depth_(cfg.layer.fDepth),
          H_(cfg.layer.H),
          stages_(depth_ + 2),
          convScale_(conv_duration_scale)
    {
        rowBytes_ = cfg.layer.W * cfg.layer.C * cfg.layer.bytesPerElement;
        // Layer splitting (Fig. 7e's dual): a shallow f spreads each
        // conv layer's channel tiles over numCores / fDepth cores.
        splitFactor_ = 1;
        if (cfg.splitShallowLayers && depth_ < cfg.numCores &&
            cfg.numCores % depth_ == 0) {
            splitFactor_ = cfg.numCores / depth_;
        }
        convRowCycles_ = static_cast<Tick>(
            convScale_ *
            PeArray::convCycles(1, cfg.layer.W, cfg.layer.C, cfg.layer.C,
                                cfg.peLanes) /
            splitFactor_);
        if (convRowCycles_ == 0)
            convRowCycles_ = 1;
        hubRowCycles_ = static_cast<Tick>(std::ceil(
            static_cast<double>(cfg.layer.W) * cfg.layer.C /
            cfg.hubAluLanes));
        pad_ = cfg.layer.kernel / 2;

        const std::size_t n = s_ * stages_ * H_;
        done_.assign(n, false);
        completion_.assign(n, 0);
        arrival_.assign(n, 0);
        resourceFree_.assign(cfg.numCores + 1, 0);
        resourceBusy_.assign(cfg.numCores + 1, 0);

        // h rows stream from DRAM (or the previous step's on-chip
        // output); model a prefetch at DRAM bandwidth.
        const double row_burst =
            static_cast<double>(rowBytes_) / cfg.dram.bytesPerCycle;
        hAvail_.resize(H_);
        for (std::size_t r = 0; r < H_; r++)
            hAvail_[r] = cfg.dram.tCas + cfg.dram.tRcd +
                         static_cast<Tick>((r + 1) * row_burst);
    }

    /** Run to completion; returns cycles and fills link/core stats. */
    StepCost
    run()
    {
        std::size_t remaining = s_ * stages_ * H_;
        Tick finish = 0;
        while (remaining > 0) {
            // Pick the schedulable task with the earliest possible start;
            // ties go to the later stream (priority selector policy),
            // then to the deeper stage (drain downstream work first).
            Tick best_start = std::numeric_limits<Tick>::max();
            std::size_t bj = 0, bst = 0, br = 0;
            bool found = false;
            for (std::size_t j = 0; j < s_; j++) {
                for (std::size_t st = 0; st < stages_; st++) {
                    // The next unfinished row of each (stream, stage) map
                    // is the only candidate (rows execute in order).
                    const std::size_t r = nextRow_[key(j, st)];
                    if (r >= H_)
                        continue;
                    Tick ready;
                    if (!depsReady(j, st, r, ready))
                        continue;
                    const std::size_t res = resourceOf(st);
                    const Tick start = std::max(ready, resourceFree_[res]);
                    const bool better =
                        start < best_start ||
                        (start == best_start && j > bj) ||
                        (start == best_start && j == bj && st > bst);
                    if (!found || better) {
                        found = true;
                        best_start = start;
                        bj = j;
                        bst = st;
                        br = r;
                    }
                }
            }
            ENODE_ASSERT(found, "pipeline deadlock: ", remaining,
                         " tasks stuck");
            execute(bj, bst, br, best_start);
            finish = std::max(finish, completion_[idx(bj, bst, br)]);
            remaining--;
        }

        StepCost cost;
        cost.cycles = static_cast<double>(finish);
        Tick max_core = 0;
        for (std::size_t res = 1; res <= cfg_.numCores; res++)
            max_core = std::max(max_core, resourceBusy_[res]);
        cost.coreUtilization =
            finish ? static_cast<double>(max_core) / finish : 0.0;
        cost.maxLinkBusyFraction =
            finish ? static_cast<double>(noc_.maxLinkBusy()) / finish : 0.0;
        noc_.addActivity(cost.activity);
        return cost;
    }

  private:
    std::size_t
    key(std::size_t j, std::size_t st) const
    {
        return j * stages_ + st;
    }
    std::size_t
    idx(std::size_t j, std::size_t st, std::size_t r) const
    {
        return key(j, st) * H_ + r;
    }

    /**
     * Resource (== ring node) of a stage: 0 = hub, 1..numCores = cores.
     * A forward pass walks the cores clockwise (1, 2, ..., n); a
     * backward pass enters at the last core and walks counter-clockwise
     * (n, n-1, ..., 1), so every pipeline handoff is a single-hop
     * transfer in its loop direction (Fig. 7(b)/(d)).
     */
    std::size_t
    resourceOf(std::size_t st) const
    {
        if (st == 0 || st == stages_ - 1)
            return 0;
        const std::size_t pos = (st - 1) % cfg_.numCores;
        return direction_ == RingDirection::Clockwise
                   ? 1 + pos
                   : cfg_.numCores - pos;
    }

    std::size_t
    nodeOf(std::size_t st) const
    {
        return resourceOf(st);
    }

    bool
    depsReady(std::size_t j, std::size_t st, std::size_t r,
              Tick &ready) const
    {
        ready = 0;
        // In-order per map.
        if (r > 0) {
            if (!done_[idx(j, st, r - 1)])
                return false;
            ready = std::max(ready, completion_[idx(j, st, r - 1)]);
        }
        if (st == 0) {
            // Stage input at the hub: h row plus accumulated k_l rows of
            // referenced earlier streams.
            ready = std::max(ready, hAvail_[r]);
            for (std::size_t l = 0; l < j; l++) {
                if (tableau_.a()[j][l] == 0.0)
                    continue;
                if (!done_[idx(l, stages_ - 1, r)])
                    return false;
                ready = std::max(ready, completion_[idx(l, stages_ - 1, r)]);
            }
            return true;
        }
        // Conv stages and the final hub accumulation read the previous
        // stage's rows up to r + pad (conv halo; the hub accumulation
        // needs only row r).
        const std::size_t halo = st == stages_ - 1 ? 0 : pad_;
        const std::size_t need = std::min(r + halo, H_ - 1);
        for (std::size_t rr = r > pad_ ? r - pad_ : 0; rr <= need; rr++) {
            if (!done_[idx(j, st - 1, rr)])
                return false;
            ready = std::max(ready, arrival_[idx(j, st - 1, rr)]);
        }
        return true;
    }

    void
    execute(std::size_t j, std::size_t st, std::size_t r, Tick start)
    {
        const std::size_t res = resourceOf(st);
        const bool is_conv = st != 0 && st != stages_ - 1;
        const Tick duration = is_conv ? convRowCycles_ : hubRowCycles_;
        const Tick end = start + duration;
        resourceFree_[res] = end;
        resourceBusy_[res] += duration;
        if (is_conv && splitFactor_ > 1) {
            // The partner cores carrying this layer's other channel
            // tiles are busy for the same interval.
            for (std::size_t k = 1; k < splitFactor_; k++) {
                const std::size_t partner =
                    1 + (res - 1 + k * depth_) % cfg_.numCores;
                resourceFree_[partner] =
                    std::max(resourceFree_[partner], end);
                resourceBusy_[partner] += duration;
            }
        }
        const std::size_t i = idx(j, st, r);
        done_[i] = true;
        completion_[i] = end;
        nextRow_[key(j, st)] = r + 1;

        // Ship the produced row to the next stage's node.
        if (st < stages_ - 1) {
            const std::size_t src = nodeOf(st);
            const std::size_t dst = nodeOf(st + 1);
            arrival_[i] = src == dst
                              ? end
                              : noc_.transfer(src, dst, rowBytes_,
                                              direction_, end);
        } else {
            arrival_[i] = end;
        }
    }

    const SystemConfig &cfg_;
    RingDirection direction_;
    RingNoc noc_;
    const ButcherTableau &tableau_;
    std::size_t s_;
    std::size_t depth_;
    std::size_t H_;
    std::size_t stages_;
    double convScale_;
    std::size_t splitFactor_ = 1;
    std::size_t rowBytes_ = 0;
    Tick convRowCycles_ = 0;
    Tick hubRowCycles_ = 0;
    std::size_t pad_ = 1;

    std::vector<bool> done_;
    std::vector<Tick> completion_;
    std::vector<Tick> arrival_;
    std::vector<Tick> hAvail_;
    std::vector<Tick> resourceFree_;
    std::vector<Tick> resourceBusy_;
    std::map<std::size_t, std::size_t> nextRow_;
};

} // namespace

EnodeSystem::EnodeSystem(SystemConfig config) : config_(std::move(config))
{
    ENODE_ASSERT(config_.layer.tableau != nullptr, "config needs a tableau");
}

const StepCost &
EnodeSystem::forwardTrialCost()
{
    if (!haveForward_) {
        forwardCost_ = simulateForwardTrial();
        haveForward_ = true;
    }
    return forwardCost_;
}

const StepCost &
EnodeSystem::backwardStepCost()
{
    if (!haveBackward_) {
        backwardCost_ = simulateBackwardStep();
        haveBackward_ = true;
    }
    return backwardCost_;
}

StepCost
EnodeSystem::simulateForwardTrial()
{
    PipelineSim sim(config_, RingDirection::Clockwise, 1.0);
    StepCost cost = sim.run();

    const auto &g = config_.layer;
    const double map_elems = static_cast<double>(g.H) * g.W * g.C;
    const std::size_t s = g.tableau->stages();

    cost.activity.macs += static_cast<std::uint64_t>(
        s * g.fDepth *
        PeArray::convMacs(g.H, g.W, g.C, g.C, g.kernel));
    // Line buffers / channel collectors: input read, psum update and
    // output write per element per conv (register-class energy).
    cost.activity.regAccesses += static_cast<std::uint64_t>(
        s * g.fDepth * map_elems * 6.0);
    // Hub integral-state SRAM: every partial-state/error/final update is
    // a read-modify-write of one row's worth of words.
    const std::size_t p_updates = s * (s - 1) / 2;
    const std::size_t e_updates = g.tableau->hasEmbedded() ? s : 0;
    const std::size_t out_updates = s;
    cost.activity.sramReads += static_cast<std::uint64_t>(
        (p_updates + e_updates + out_updates) * map_elems);
    cost.activity.sramWrites += static_cast<std::uint64_t>(
        (p_updates + e_updates + out_updates) * map_elems);
    cost.activity.aluOps += static_cast<std::uint64_t>(
        (p_updates + e_updates + out_updates) * map_elems);
    return cost;
}

StepCost
EnodeSystem::simulateBackwardStep()
{
    // Local forward step (clockwise) with training-state capture.
    StepCost cost = simulateForwardTrial();

    // Adjoint + weight gradients: counter-clockwise loop over the
    // backward stages only (RK23: 3 of 4, Sec. IV.B); each conv row
    // makes two passes over the PE array (backward-data then dW), hence
    // the 2x duration scale.
    PipelineSim adj(config_, RingDirection::CounterClockwise, 2.0,
                    backwardStageCount(*config_.layer.tableau));
    StepCost adj_cost = adj.run();
    cost.cycles += adj_cost.cycles;
    cost.activity.accumulate(adj_cost.activity);
    cost.coreUtilization =
        std::max(cost.coreUtilization, adj_cost.coreUtilization);

    const auto &g = config_.layer;
    const double map_elems = static_cast<double>(g.H) * g.W * g.C;
    DepthFirstConfig dfc = g;
    const auto train = analyzeTrainingBuffers(dfc);
    const double state_maps =
        static_cast<double>(train.trainingStateMaps);

    // Adjoint compute: backward-data + weight-grad convs over every
    // training-state map (one per backward stage per conv layer).
    cost.activity.macs += static_cast<std::uint64_t>(
        2.0 * state_maps *
        PeArray::convMacs(g.H, g.W, g.C, g.C, g.kernel));
    // Training states: written once by the local forward, read once by
    // the adjoint — through the training-state SRAM.
    cost.activity.sramWrites +=
        static_cast<std::uint64_t>(state_maps * map_elems);
    cost.activity.sramReads +=
        static_cast<std::uint64_t>(state_maps * map_elems);
    // Depth-first training keeps the working set on chip; anything above
    // the configured buffer spills to DRAM (Fig. 15(b)).
    const std::size_t buffer =
        config_.trainingBufferBytes
            ? config_.trainingBufferBytes
            : train.enodeWorkingSetBytes;
    cost.activity.dramBytes += train.dramTrafficBytes(buffer, true);
    return cost;
}

RunCost
EnodeSystem::finalize(double cycles, ActivityCounts activity) const
{
    RunCost run;
    run.cycles = cycles;
    run.activity = activity;
    EnergyParams params = config_.energy;
    params.coreStaticW =
        config_.baselineStaticW + config_.enodeControlStaticW;
    run.energy = computeEnergy(activity, cycles, params);
    run.seconds = cycles / params.clockHz;
    run.energyJ = run.energy.totalJ();
    run.powerW = run.energy.totalW(cycles, params.clockHz);
    run.dramPowerW = run.energy.dramW(cycles, params.clockHz);
    return run;
}

RunCost
EnodeSystem::runInference(const WorkloadTrace &trace)
{
    const StepCost &trial = forwardTrialCost();
    const auto &g = config_.layer;
    const double map_bytes =
        static_cast<double>(g.H) * g.W * g.C * g.bytesPerElement;

    double cycles = trace.equivalentTrials * trial.cycles;
    ActivityCounts activity = trial.activity;
    activity.scale(trace.equivalentTrials);
    // Initial state per layer in; accepted step checkpoints out.
    activity.dramBytes += static_cast<std::uint64_t>(
        trace.integrationLayers * map_bytes +
        trace.evalPoints * map_bytes);
    cycles += (trace.integrationLayers + trace.evalPoints) * map_bytes /
              config_.dram.bytesPerCycle * 0.1; // mostly overlapped
    return finalize(cycles, activity);
}

RunCost
EnodeSystem::runTraining(const WorkloadTrace &trace)
{
    RunCost fwd = runInference(trace);
    const StepCost &bwd = backwardStepCost();

    double cycles = fwd.cycles + trace.backwardSteps * bwd.cycles;
    ActivityCounts activity = bwd.activity;
    activity.scale(trace.backwardSteps);
    activity.accumulate(fwd.activity);
    const auto &g = config_.layer;
    const double map_bytes =
        static_cast<double>(g.H) * g.W * g.C * g.bytesPerElement;
    // Each backward step re-reads its checkpoint.
    activity.dramBytes +=
        static_cast<std::uint64_t>(trace.backwardSteps * map_bytes);
    return finalize(cycles, activity);
}

} // namespace enode
