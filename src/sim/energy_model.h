#ifndef ENODE_SIM_ENERGY_MODEL_H
#define ENODE_SIM_ENERGY_MODEL_H

/**
 * @file
 * 28 nm energy model.
 *
 * The paper evaluates power with PrimeTime over synthesized RTL plus
 * Ramulator for DRAM. Offline we substitute an activity-based model:
 * the cycle-accurate simulator counts events (MACs, SRAM accesses, NoC
 * hops, DRAM bytes) and this model converts counts into Joules using
 * per-event energies representative of a 28 nm CMOS node with FP16
 * datapaths. Constants are calibrated so the *baseline's* absolute
 * power lands near the paper's Fig. 16 (9.3 W inference); all
 * comparative results then follow from simulated activity ratios, which
 * is the same methodology as the paper's (activity x cell energy).
 */

#include <cstdint>
#include <string>

#include "common/stats.h"

namespace enode {

/** Per-event energies in picojoules and static power in watts. */
struct EnergyParams
{
    // Datapath.
    double macPj = 1.0;         ///< one FP16 multiply-accumulate
    double aluPj = 0.4;         ///< scale/accumulate in the integral unit
    // On-chip SRAM, per 16-bit word.
    double sramReadPj = 1.6;
    double sramWritePj = 1.8;
    // Register/line-buffer access, per 16-bit word (small arrays).
    double regPj = 0.15;
    // NoC, per 16-bit word per hop.
    double nocHopPj = 0.25;
    // External DRAM, per byte (LPDDR-class interface + device).
    double dramPjPerByte = 620.0;
    // Static/background power in watts (clock tree, leakage, PHY).
    double coreStaticW = 0.55;
    double dramStaticW = 0.30;
    // Core clock.
    double clockHz = 500e6;
};

/** Activity counts accumulated by a simulation. */
struct ActivityCounts
{
    std::uint64_t macs = 0;
    std::uint64_t aluOps = 0;
    std::uint64_t sramReads = 0;   ///< 16-bit words
    std::uint64_t sramWrites = 0;  ///< 16-bit words
    std::uint64_t regAccesses = 0; ///< 16-bit words
    std::uint64_t nocHopWords = 0; ///< word-hops
    std::uint64_t dramBytes = 0;

    void accumulate(const ActivityCounts &other);
    /** Scale all counts (used when one simulated step stands for many). */
    void scale(double factor);
};

/** Energy split of a run. */
struct EnergyBreakdown
{
    double computeJ = 0.0;
    double sramJ = 0.0;
    double nocJ = 0.0;
    double dramJ = 0.0;
    double staticJ = 0.0;

    double totalJ() const;
    /** Average power over the given cycle count. */
    double totalW(double cycles, double clock_hz) const;
    double dramW(double cycles, double clock_hz) const;
};

/** Convert activity + duration into an energy breakdown. */
EnergyBreakdown computeEnergy(const ActivityCounts &activity, double cycles,
                              const EnergyParams &params);

/** Publish a breakdown into a StatGroup under the given prefix. */
void publishEnergy(StatGroup &stats, const std::string &prefix,
                   const EnergyBreakdown &energy, double cycles,
                   const EnergyParams &params);

} // namespace enode

#endif // ENODE_SIM_ENERGY_MODEL_H
