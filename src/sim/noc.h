#ifndef ENODE_SIM_NOC_H
#define ENODE_SIM_NOC_H

/**
 * @file
 * Ring network-on-chip (Sec. V.A, Fig. 7).
 *
 * The eNODE prototype connects 4 NN cores and the central hub in a
 * ring. A forward pass loops clockwise, a backward pass counter-
 * clockwise. Each directed link carries a fixed bandwidth; transfers
 * serialize per link (next-free-time bookkeeping) so congestion shows
 * up as added latency, and per-link busy counters expose utilization.
 * Node 0 is the hub; nodes 1..n are the NN cores.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "sim/energy_model.h"
#include "sim/event_queue.h"

namespace enode {

/** Loop direction around the ring. */
enum class RingDirection { Clockwise, CounterClockwise };

/** Bandwidth-accurate ring interconnect. */
class RingNoc
{
  public:
    /**
     * @param nodes Total nodes including the hub (prototype: 5).
     * @param bytes_per_cycle Per-link bandwidth.
     * @param hop_latency Cycles of latency per hop (router + wire).
     */
    RingNoc(std::size_t nodes, double bytes_per_cycle, Tick hop_latency = 1);

    /**
     * Transfer bytes from src to dst in the given direction.
     *
     * @param src Source node.
     * @param dst Destination node.
     * @param bytes Payload size.
     * @param direction Ring direction to traverse.
     * @param earliest Tick at which the payload is ready at src.
     * @return Tick at which the payload has fully arrived at dst.
     */
    Tick transfer(std::size_t src, std::size_t dst, std::size_t bytes,
                  RingDirection direction, Tick earliest);

    /** Hops between two nodes in a direction. */
    std::size_t hops(std::size_t src, std::size_t dst,
                     RingDirection direction) const;

    std::size_t nodeCount() const { return nodes_; }

    /** Total words moved x hops (for NoC energy). */
    std::uint64_t hopWords() const { return hopWords_; }

    /** Busy cycles of the most loaded link (congestion indicator). */
    Tick maxLinkBusy() const;

    /** Busy cycles per directed link, clockwise then counter-clockwise. */
    const std::vector<Tick> &linkBusy() const { return linkBusy_; }

    void addActivity(ActivityCounts &activity) const;

    void resetStats();

  private:
    /** Directed link index: cw links [0, n), ccw links [n, 2n). */
    std::size_t linkIndex(std::size_t from, RingDirection direction) const;

    std::size_t nodes_;
    double bytesPerCycle_;
    Tick hopLatency_;
    std::vector<Tick> linkFree_; ///< next tick each link is free
    std::vector<Tick> linkBusy_;
    std::uint64_t hopWords_ = 0;
};

} // namespace enode

#endif // ENODE_SIM_NOC_H
