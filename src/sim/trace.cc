#include "sim/trace.h"

namespace enode {

WorkloadTrace
WorkloadTrace::fromForward(const std::string &name,
                           const NodeForwardResult &fwd)
{
    WorkloadTrace trace;
    trace.name = name;
    trace.integrationLayers = static_cast<double>(fwd.layers.size());
    trace.evalPoints = static_cast<double>(fwd.totalStats.evalPoints);
    trace.trials = static_cast<double>(fwd.totalStats.trials);
    trace.equivalentTrials = fwd.totalStats.equivalentTrials;
    return trace;
}

WorkloadTrace
WorkloadTrace::fromTraining(const std::string &name,
                            const NodeForwardResult &fwd,
                            const AcaStats &bwd)
{
    WorkloadTrace trace = fromForward(name, fwd);
    trace.backwardSteps = static_cast<double>(bwd.backwardSteps);
    return trace;
}

WorkloadTrace
WorkloadTrace::synthetic(const std::string &name, double layers,
                         double eval_points_per_layer,
                         double tries_per_point, bool training,
                         double work_fraction)
{
    WorkloadTrace trace;
    trace.name = name;
    trace.integrationLayers = layers;
    trace.evalPoints = layers * eval_points_per_layer;
    trace.trials = trace.evalPoints * tries_per_point;
    // Accepted trials always process the full map; only the rejected
    // remainder is discounted by the early-stop work fraction.
    const double rejected = trace.trials - trace.evalPoints;
    trace.equivalentTrials =
        trace.evalPoints + rejected * work_fraction;
    trace.backwardSteps = training ? trace.evalPoints : 0.0;
    return trace;
}

} // namespace enode
