#include "sim/sram.h"

#include <algorithm>

#include "common/logging.h"

namespace enode {

Sram::Sram(std::string name, std::size_t capacity_bytes)
    : name_(std::move(name)), capacityBytes_(capacity_bytes)
{
    ENODE_ASSERT(capacity_bytes > 0, "SRAM '", name_, "' needs capacity");
}

bool
Sram::allocate(std::size_t bytes)
{
    if (usedBytes_ + bytes > capacityBytes_)
        return false;
    usedBytes_ += bytes;
    peakUsedBytes_ = std::max(peakUsedBytes_, usedBytes_);
    return true;
}

void
Sram::release(std::size_t bytes)
{
    ENODE_ASSERT(bytes <= usedBytes_, "SRAM '", name_,
                 "' releasing more than allocated");
    usedBytes_ -= bytes;
}

void
Sram::read(std::size_t bytes)
{
    readWords_ += (bytes + 1) / 2;
}

void
Sram::write(std::size_t bytes)
{
    writeWords_ += (bytes + 1) / 2;
}

void
Sram::addActivity(ActivityCounts &activity) const
{
    activity.sramReads += readWords_;
    activity.sramWrites += writeWords_;
}

void
Sram::resetStats()
{
    readWords_ = 0;
    writeWords_ = 0;
    peakUsedBytes_ = usedBytes_;
}

} // namespace enode
