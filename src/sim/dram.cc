#include "sim/dram.h"

#include <cmath>

#include "common/logging.h"

namespace enode {

Dram::Dram(std::string name, DramParams params)
    : name_(std::move(name)),
      params_(params),
      openRow_(params.banks, -1)
{
    ENODE_ASSERT(params_.banks > 0 && params_.rowBytes > 0 &&
                     params_.bytesPerCycle > 0.0,
                 "bad DRAM parameters");
}

Tick
Dram::serviceLatency(std::size_t bytes, bool row_hit) const
{
    const Tick burst = static_cast<Tick>(
        std::ceil(static_cast<double>(bytes) / params_.bytesPerCycle));
    const Tick activate = row_hit ? 0 : params_.tRp + params_.tRcd;
    return activate + params_.tCas + burst;
}

Tick
Dram::access(std::uint64_t address, std::size_t bytes, bool is_write)
{
    ENODE_ASSERT(bytes > 0, "zero-byte DRAM access");
    stats_.requests++;
    if (is_write)
        stats_.bytesWritten += bytes;
    else
        stats_.bytesRead += bytes;

    // Walk the transfer row by row; row activations on distinct banks
    // overlap with the previous row's burst, so a streaming transfer
    // approaches the interface bandwidth.
    Tick cycles = params_.tCas;
    std::uint64_t addr = address;
    std::size_t remaining = bytes;
    bool first_row = true;
    while (remaining > 0) {
        const std::uint64_t row = addr / params_.rowBytes;
        const std::size_t bank =
            static_cast<std::size_t>(row % params_.banks);
        const std::size_t in_row = static_cast<std::size_t>(
            params_.rowBytes - addr % params_.rowBytes);
        const std::size_t chunk = std::min(remaining, in_row);

        const bool hit = openRow_[bank] == static_cast<std::int64_t>(row);
        if (hit) {
            stats_.rowHits++;
        } else {
            stats_.rowMisses++;
            openRow_[bank] = static_cast<std::int64_t>(row);
            // Activation overlaps with the previous burst except on the
            // very first row of the transfer.
            if (first_row)
                cycles += params_.tRp + params_.tRcd;
        }
        cycles += static_cast<Tick>(std::ceil(
            static_cast<double>(chunk) / params_.bytesPerCycle));
        addr += chunk;
        remaining -= chunk;
        first_row = false;
    }
    stats_.busyCycles += cycles;
    return cycles;
}

void
Dram::addActivity(ActivityCounts &activity) const
{
    activity.dramBytes += stats_.bytesRead + stats_.bytesWritten;
}

void
Dram::resetStats()
{
    stats_ = {};
    std::fill(openRow_.begin(), openRow_.end(), -1);
}

} // namespace enode
