#ifndef ENODE_SIM_ENODE_SYSTEM_H
#define ENODE_SIM_ENODE_SYSTEM_H

/**
 * @file
 * The eNODE accelerator system model (Secs. III-VI).
 *
 * Four depth-first NN cores on a ring around a central hub (controller,
 * global router, integral accumulator, integral state buffer, function
 * unit, DRAM controller). One loop around the ring evaluates f once;
 * high-order integrators loop s times, packetized so all s streams are
 * in flight concurrently with later-stream priority.
 *
 * simulateForwardTrial() runs one integration trial in full detail with
 * an event-driven engine at row granularity: every conv row is a task on
 * its core, every inter-core handoff is a bandwidth-accurate ring
 * transfer, the hub accumulates partial states, and the priority policy
 * arbitrates cores between concurrent streams. simulateBackwardStep()
 * models one ACA backward step (local forward + counter-clockwise
 * adjoint with weight-gradient pass). Full runs compose these step
 * costs over a WorkloadTrace.
 */

#include "sim/noc.h"
#include "sim/priority_selector.h"
#include "sim/sram.h"
#include "sim/system_config.h"
#include "sim/trace.h"

namespace enode {

/** Cycle/energy model of the eNODE prototype. */
class EnodeSystem
{
  public:
    explicit EnodeSystem(SystemConfig config);

    /**
     * One integration trial (one RK step attempt) in event-driven
     * detail. Cached after the first call — every trial of a geometry
     * costs the same by construction.
     */
    const StepCost &forwardTrialCost();

    /** One ACA backward step: local forward + adjoint + dW. */
    const StepCost &backwardStepCost();

    /** Compose a full inference from a trace. */
    RunCost runInference(const WorkloadTrace &trace);

    /** Compose a full training iteration from a trace. */
    RunCost runTraining(const WorkloadTrace &trace);

    const SystemConfig &config() const { return config_; }

  private:
    StepCost simulateForwardTrial();
    StepCost simulateBackwardStep();
    RunCost finalize(double cycles, ActivityCounts activity) const;

    SystemConfig config_;
    bool haveForward_ = false;
    bool haveBackward_ = false;
    StepCost forwardCost_;
    StepCost backwardCost_;
};

} // namespace enode

#endif // ENODE_SIM_ENODE_SYSTEM_H
