#include "sim/priority_selector.h"

#include "common/logging.h"

namespace enode {

const char *
selectPolicyName(SelectPolicy policy)
{
    switch (policy) {
      case SelectPolicy::LaterStreamFirst:
        return "later-stream-first";
      case SelectPolicy::Fifo:
        return "fifo";
    }
    ENODE_PANIC("unknown SelectPolicy");
}

PrioritySelector::PrioritySelector(std::size_t streams,
                                   std::size_t buffer_capacity,
                                   SelectPolicy policy)
    : capacity_(buffer_capacity), policy_(policy), buffers_(streams)
{
    ENODE_ASSERT(streams >= 1 && buffer_capacity >= 1,
                 "bad priority selector geometry");
}

bool
PrioritySelector::push(const Packet &packet)
{
    ENODE_ASSERT(packet.stream < buffers_.size(), "stream out of range");
    auto &buf = buffers_[packet.stream];
    if (buf.size() >= capacity_) {
        rejectedPushes_++;
        return false;
    }
    buf.push_back(packet);
    arrivalOrder_.push_back(packet.stream);
    std::size_t total = 0;
    for (const auto &b : buffers_)
        total += b.size();
    peakOccupancy_ = std::max(peakOccupancy_, total);
    return true;
}

bool
PrioritySelector::anyReady() const
{
    for (const auto &b : buffers_)
        if (!b.empty())
            return true;
    return false;
}

Packet
PrioritySelector::pop()
{
    auto take = [this](std::size_t s) {
        Packet p = buffers_[s].front();
        buffers_[s].pop_front();
        // Drop the oldest arrival record of this stream; buffers are
        // FIFO per stream, so the oldest record is the popped packet.
        for (auto it = arrivalOrder_.begin(); it != arrivalOrder_.end();
             ++it) {
            if (*it == s) {
                arrivalOrder_.erase(it);
                break;
            }
        }
        dispatched_++;
        return p;
    };

    if (policy_ == SelectPolicy::Fifo) {
        if (!arrivalOrder_.empty())
            return take(arrivalOrder_.front());
    } else {
        // Later streams get priority: they consume the outputs of earlier
        // streams, freeing buffer space (Sec. V.B).
        for (std::size_t s = buffers_.size(); s-- > 0;) {
            if (!buffers_[s].empty())
                return take(s);
        }
    }
    ENODE_PANIC("pop() on empty priority selector");
}

std::size_t
PrioritySelector::occupancy(std::size_t stream) const
{
    ENODE_ASSERT(stream < buffers_.size(), "stream out of range");
    return buffers_[stream].size();
}

} // namespace enode
