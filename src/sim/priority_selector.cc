#include "sim/priority_selector.h"

#include "common/logging.h"

namespace enode {

PrioritySelector::PrioritySelector(std::size_t streams,
                                   std::size_t buffer_capacity)
    : capacity_(buffer_capacity), buffers_(streams)
{
    ENODE_ASSERT(streams >= 1 && buffer_capacity >= 1,
                 "bad priority selector geometry");
}

bool
PrioritySelector::push(const Packet &packet)
{
    ENODE_ASSERT(packet.stream < buffers_.size(), "stream out of range");
    auto &buf = buffers_[packet.stream];
    if (buf.size() >= capacity_) {
        rejectedPushes_++;
        return false;
    }
    buf.push_back(packet);
    std::size_t total = 0;
    for (const auto &b : buffers_)
        total += b.size();
    peakOccupancy_ = std::max(peakOccupancy_, total);
    return true;
}

bool
PrioritySelector::anyReady() const
{
    for (const auto &b : buffers_)
        if (!b.empty())
            return true;
    return false;
}

Packet
PrioritySelector::pop()
{
    // Later streams get priority: they consume the outputs of earlier
    // streams, freeing buffer space (Sec. V.B).
    for (std::size_t s = buffers_.size(); s-- > 0;) {
        if (!buffers_[s].empty()) {
            Packet p = buffers_[s].front();
            buffers_[s].pop_front();
            dispatched_++;
            return p;
        }
    }
    ENODE_PANIC("pop() on empty priority selector");
}

std::size_t
PrioritySelector::occupancy(std::size_t stream) const
{
    ENODE_ASSERT(stream < buffers_.size(), "stream out of range");
    return buffers_[stream].size();
}

} // namespace enode
