#ifndef ENODE_SIM_EVENT_QUEUE_H
#define ENODE_SIM_EVENT_QUEUE_H

/**
 * @file
 * Tick-based discrete-event simulation kernel.
 *
 * The cycle-accurate models (NN cores, ring NoC, DRAM controller,
 * priority selector) communicate by scheduling callbacks at future
 * ticks. One tick is one core clock cycle. The kernel is deliberately
 * small: a stable priority queue with deterministic same-tick ordering
 * (FIFO by insertion), which keeps simulations reproducible.
 */

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace enode {

/** Simulation time in core clock cycles. */
using Tick = std::uint64_t;

/** Discrete-event scheduler. */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulation time. */
    Tick now() const { return now_; }

    /** Schedule a callback at an absolute tick (>= now). */
    void scheduleAt(Tick when, std::function<void()> callback);

    /** Schedule a callback delta ticks in the future. */
    void scheduleIn(Tick delta, std::function<void()> callback);

    /** True when no events remain. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return events_.size(); }

    /**
     * Run until the queue drains or max_ticks elapses.
     * @return Number of events executed.
     */
    std::uint64_t run(Tick max_ticks = ~Tick(0));

    /** Drop all pending events and reset time to zero. */
    void reset();

    /** Total events executed since construction/reset. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t sequence; // FIFO tie-break within a tick
        std::function<void()> callback;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.sequence > b.sequence;
        }
    };

    Tick now_ = 0;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t executed_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> events_;
};

} // namespace enode

#endif // ENODE_SIM_EVENT_QUEUE_H
