#include "sim/event_queue.h"

#include "common/logging.h"

namespace enode {

void
EventQueue::scheduleAt(Tick when, std::function<void()> callback)
{
    ENODE_ASSERT(when >= now_, "scheduling into the past: ", when, " < ",
                 now_);
    events_.push({when, nextSequence_++, std::move(callback)});
}

void
EventQueue::scheduleIn(Tick delta, std::function<void()> callback)
{
    scheduleAt(now_ + delta, std::move(callback));
}

std::uint64_t
EventQueue::run(Tick max_ticks)
{
    const Tick deadline =
        max_ticks == ~Tick(0) ? ~Tick(0) : now_ + max_ticks;
    std::uint64_t count = 0;
    while (!events_.empty() && events_.top().when <= deadline) {
        // Copy out before pop so the callback can schedule new events.
        Event ev = events_.top();
        events_.pop();
        now_ = ev.when;
        ev.callback();
        count++;
        executed_++;
    }
    // The deadline elapsed (any remaining events lie beyond it), so the
    // clock advances to it.
    if (deadline != ~Tick(0) && now_ < deadline)
        now_ = deadline;
    return count;
}

void
EventQueue::reset()
{
    while (!events_.empty())
        events_.pop();
    now_ = 0;
    nextSequence_ = 0;
}

} // namespace enode
