#ifndef ENODE_SIM_BASELINE_SYSTEM_H
#define ENODE_SIM_BASELINE_SYSTEM_H

/**
 * @file
 * The SIMD ASIC baseline (Sec. VIII).
 *
 * A weight-stationary SIMD architecture with local psum accumulation
 * (Envision-style, the paper's Ref. [22]) carrying the *same MAC count*
 * as the eNODE prototype. It processes NODE layer by layer: every conv
 * layer of every stage runs to completion before the next starts, and
 * intermediate activations travel between the array and DRAM because
 * the integral states of a high-order integrator exceed its on-chip
 * buffering. No depth-first pipelining, no packetized streams, no early
 * stop — each search trial costs a full pass.
 */

#include "sim/dram.h"
#include "sim/system_config.h"
#include "sim/trace.h"

namespace enode {

/** Cycle/energy model of the layer-by-layer SIMD baseline. */
class BaselineSystem
{
  public:
    explicit BaselineSystem(SystemConfig config);

    /** One integration trial: s stages x fDepth convs, serialized. */
    const StepCost &forwardTrialCost();

    /** One backward step: local forward + adjoint, DRAM-bound states. */
    const StepCost &backwardStepCost();

    RunCost runInference(const WorkloadTrace &trace);
    RunCost runTraining(const WorkloadTrace &trace);

    const SystemConfig &config() const { return config_; }

  private:
    StepCost simulateForwardTrial();
    StepCost simulateBackwardStep();
    RunCost finalize(double cycles, ActivityCounts activity) const;

    /** Total MACs per cycle across the whole SIMD array. */
    double arrayMacsPerCycle() const;

    SystemConfig config_;
    bool haveForward_ = false;
    bool haveBackward_ = false;
    StepCost forwardCost_;
    StepCost backwardCost_;
};

} // namespace enode

#endif // ENODE_SIM_BASELINE_SYSTEM_H
