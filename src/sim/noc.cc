#include "sim/noc.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace enode {

RingNoc::RingNoc(std::size_t nodes, double bytes_per_cycle, Tick hop_latency)
    : nodes_(nodes),
      bytesPerCycle_(bytes_per_cycle),
      hopLatency_(hop_latency),
      linkFree_(2 * nodes, 0),
      linkBusy_(2 * nodes, 0)
{
    ENODE_ASSERT(nodes >= 2, "ring needs >= 2 nodes");
    ENODE_ASSERT(bytes_per_cycle > 0.0, "ring needs bandwidth");
}

std::size_t
RingNoc::hops(std::size_t src, std::size_t dst,
              RingDirection direction) const
{
    ENODE_ASSERT(src < nodes_ && dst < nodes_, "node out of range");
    if (src == dst)
        return 0;
    if (direction == RingDirection::Clockwise)
        return (dst + nodes_ - src) % nodes_;
    return (src + nodes_ - dst) % nodes_;
}

std::size_t
RingNoc::linkIndex(std::size_t from, RingDirection direction) const
{
    return direction == RingDirection::Clockwise ? from : nodes_ + from;
}

Tick
RingNoc::transfer(std::size_t src, std::size_t dst, std::size_t bytes,
                  RingDirection direction, Tick earliest)
{
    const std::size_t n_hops = hops(src, dst, direction);
    if (n_hops == 0)
        return earliest;
    const Tick occupancy = static_cast<Tick>(std::ceil(
        static_cast<double>(bytes) / bytesPerCycle_));

    // Wormhole-style: the head flit pays hop latency per hop, the body
    // streams behind it; each traversed link is occupied for the burst.
    Tick depart = earliest;
    std::size_t node = src;
    for (std::size_t i = 0; i < n_hops; i++) {
        const std::size_t link = linkIndex(node, direction);
        const Tick start = std::max(depart, linkFree_[link]);
        linkFree_[link] = start + occupancy;
        linkBusy_[link] += occupancy;
        depart = start + hopLatency_;
        node = direction == RingDirection::Clockwise
                   ? (node + 1) % nodes_
                   : (node + nodes_ - 1) % nodes_;
    }
    hopWords_ += static_cast<std::uint64_t>((bytes + 1) / 2) * n_hops;
    // Arrival: head latency plus the burst draining the last link.
    return depart + occupancy;
}

Tick
RingNoc::maxLinkBusy() const
{
    return *std::max_element(linkBusy_.begin(), linkBusy_.end());
}

void
RingNoc::addActivity(ActivityCounts &activity) const
{
    activity.nocHopWords += hopWords_;
}

void
RingNoc::resetStats()
{
    std::fill(linkFree_.begin(), linkFree_.end(), 0);
    std::fill(linkBusy_.begin(), linkBusy_.end(), 0);
    hopWords_ = 0;
}

} // namespace enode
