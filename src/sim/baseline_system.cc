#include "sim/baseline_system.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "sim/pe_array.h"

namespace enode {

BaselineSystem::BaselineSystem(SystemConfig config)
    : config_(std::move(config))
{
    ENODE_ASSERT(config_.layer.tableau != nullptr, "config needs a tableau");
}

double
BaselineSystem::arrayMacsPerCycle() const
{
    // Same MAC count as eNODE: numCores x lanes^2 PEs x K^2 MACs each.
    return static_cast<double>(config_.numCores) * config_.peLanes *
           config_.peLanes * config_.layer.kernel * config_.layer.kernel;
}

const StepCost &
BaselineSystem::forwardTrialCost()
{
    if (!haveForward_) {
        forwardCost_ = simulateForwardTrial();
        haveForward_ = true;
    }
    return forwardCost_;
}

const StepCost &
BaselineSystem::backwardStepCost()
{
    if (!haveBackward_) {
        backwardCost_ = simulateBackwardStep();
        haveBackward_ = true;
    }
    return backwardCost_;
}

StepCost
BaselineSystem::simulateForwardTrial()
{
    const auto &g = config_.layer;
    const std::size_t s = g.tableau->stages();
    const double map_elems = static_cast<double>(g.H) * g.W * g.C;
    const double map_bytes = map_elems * g.bytesPerElement;
    const double conv_macs =
        PeArray::convMacs(g.H, g.W, g.C, g.C, g.kernel);
    const double conv_compute = conv_macs / arrayMacsPerCycle();

    Dram dram("baseline-dram", config_.dram);
    StepCost cost;
    std::uint64_t address = 0;
    double cycles = 0.0;

    for (std::size_t stage = 0; stage < s; stage++) {
        for (std::size_t d = 0; d < g.fDepth; d++) {
            // Layer by layer: the conv reads its input activation from
            // DRAM and writes its output back ("transfers intermediate
            // activations of every NN layer between the cores and the
            // DRAM"). Reads prefetch behind compute; writes drain after,
            // so each conv costs max(compute, traffic) plus latency.
            const Tick read_cycles = dram.access(
                address, static_cast<std::size_t>(map_bytes), false);
            address += static_cast<std::uint64_t>(map_bytes);
            const Tick write_cycles = dram.access(
                address, static_cast<std::size_t>(map_bytes), true);
            address += static_cast<std::uint64_t>(map_bytes);
            cycles += std::max(conv_compute,
                               static_cast<double>(read_cycles +
                                                   write_cycles)) +
                      config_.dram.tCas;
        }
        // Integral accumulation of the stage output on the SIMD ALUs.
        cycles += map_elems / config_.hubAluLanes;
    }

    // Integral-state working set beyond the on-chip buffer spills to
    // DRAM once more per trial.
    DepthFirstConfig dfc = g;
    const auto fwd = analyzeForwardBuffers(dfc);
    const std::size_t onchip = fwd.baselineBytes / 2; // Table I sizing:
    // the baseline provisions half the full integral working set
    // (2 MB for Config A) and round-trips the remainder.
    const std::size_t need =
        static_cast<std::size_t>((s + 1) * map_bytes);
    if (need > onchip) {
        const std::size_t spill = need - onchip;
        const Tick spill_cycles =
            dram.access(address, spill, true) +
            dram.access(address, spill, false);
        cycles += static_cast<double>(spill_cycles) * 0.5; // half hidden
    }

    cost.cycles = cycles;
    cost.activity.macs = static_cast<std::uint64_t>(
        s * g.fDepth * conv_macs);
    // SIMD activations and psums stream through the large SRAM.
    cost.activity.sramReads = static_cast<std::uint64_t>(
        s * g.fDepth * map_elems * 3.0);
    cost.activity.sramWrites = static_cast<std::uint64_t>(
        s * g.fDepth * map_elems * 2.0);
    cost.activity.aluOps = static_cast<std::uint64_t>(
        s * (s + 1) * map_elems / 2.0);
    dram.addActivity(cost.activity);
    cost.coreUtilization =
        s * g.fDepth * conv_compute / std::max(cycles, 1.0);
    return cost;
}

StepCost
BaselineSystem::simulateBackwardStep()
{
    // Local forward step first (same as one trial), then the adjoint.
    StepCost cost = simulateForwardTrial();
    const auto &g = config_.layer;
    const double map_elems = static_cast<double>(g.H) * g.W * g.C;
    const double conv_macs =
        PeArray::convMacs(g.H, g.W, g.C, g.C, g.kernel);
    const double conv_compute = conv_macs / arrayMacsPerCycle();

    DepthFirstConfig dfc = g;
    const auto train = analyzeTrainingBuffers(dfc);
    const double state_maps =
        static_cast<double>(train.trainingStateMaps);

    // Adjoint: backward-data + weight-grad conv per training-state map,
    // with the gradient maps also round-tripping through DRAM.
    Dram dram("baseline-dram-bwd", config_.dram);
    const double map_bytes = map_elems * g.bytesPerElement;
    double cycles = 0.0;
    std::uint64_t address = 0;
    for (double m = 0; m < state_maps; m++) {
        // Per training-state map: read the stored state, read the
        // incoming gradient map, write the outgoing gradient map, and
        // round-trip the weight-gradient psums (no local accumulation
        // across the full map in a weight-stationary SIMD array).
        Tick traffic = 0;
        for (int xfer = 0; xfer < 4; xfer++) {
            traffic += dram.access(address,
                                   static_cast<std::size_t>(map_bytes),
                                   xfer >= 2);
            address += static_cast<std::uint64_t>(map_bytes);
        }
        cycles += std::max(2.0 * conv_compute,
                           static_cast<double>(traffic)) +
                  config_.dram.tCas;
    }

    // Training states beyond the on-chip buffer spill to DRAM
    // (Fig. 15(b)): the baseline needs ~6 MB to avoid this; it has the
    // same 1.25 MB buffer as eNODE (Table I) and pays the difference.
    const std::size_t buffer =
        config_.trainingBufferBytes ? config_.trainingBufferBytes
                                    : train.enodeWorkingSetBytes;
    const std::size_t spill_traffic =
        train.dramTrafficBytes(buffer, /*depth_first=*/false);
    const Tick spill_cycles =
        dram.access(address, std::max<std::size_t>(spill_traffic, 1),
                    true);
    cycles += static_cast<double>(spill_cycles);

    cost.cycles += cycles;
    cost.activity.macs +=
        static_cast<std::uint64_t>(2.0 * state_maps * conv_macs);
    cost.activity.sramReads +=
        static_cast<std::uint64_t>(state_maps * map_elems * 3.0);
    cost.activity.sramWrites +=
        static_cast<std::uint64_t>(state_maps * map_elems * 2.0);
    dram.addActivity(cost.activity);
    return cost;
}

RunCost
BaselineSystem::finalize(double cycles, ActivityCounts activity) const
{
    RunCost run;
    run.cycles = cycles;
    run.activity = activity;
    EnergyParams params = config_.energy;
    params.coreStaticW = config_.baselineStaticW;
    run.energy = computeEnergy(activity, cycles, params);
    run.seconds = cycles / params.clockHz;
    run.energyJ = run.energy.totalJ();
    run.powerW = run.energy.totalW(cycles, params.clockHz);
    run.dramPowerW = run.energy.dramW(cycles, params.clockHz);
    return run;
}

RunCost
BaselineSystem::runInference(const WorkloadTrace &trace)
{
    const StepCost &trial = forwardTrialCost();
    // No depth-first error streaming: every trial runs to completion, so
    // the *raw* trial count applies (no equivalent-trial discount).
    double cycles = trace.trials * trial.cycles;
    ActivityCounts activity = trial.activity;
    activity.scale(trace.trials);

    const auto &g = config_.layer;
    const double map_bytes =
        static_cast<double>(g.H) * g.W * g.C * g.bytesPerElement;
    activity.dramBytes += static_cast<std::uint64_t>(
        trace.integrationLayers * map_bytes + trace.evalPoints * map_bytes);
    return finalize(cycles, activity);
}

RunCost
BaselineSystem::runTraining(const WorkloadTrace &trace)
{
    RunCost fwd = runInference(trace);
    const StepCost &bwd = backwardStepCost();
    double cycles = fwd.cycles + trace.backwardSteps * bwd.cycles;
    ActivityCounts activity = bwd.activity;
    activity.scale(trace.backwardSteps);
    activity.accumulate(fwd.activity);
    const auto &g = config_.layer;
    const double map_bytes =
        static_cast<double>(g.H) * g.W * g.C * g.bytesPerElement;
    activity.dramBytes +=
        static_cast<std::uint64_t>(trace.backwardSteps * map_bytes);
    return finalize(cycles, activity);
}

} // namespace enode
