#include "sim/pe_array.h"

#include <cmath>

#include "common/logging.h"

namespace enode {

PeArray::PeArray(std::size_t lanes, std::size_t kernel)
    : lanes_(lanes), kernel_(kernel)
{
    ENODE_ASSERT(lanes >= 1 && kernel % 2 == 1, "bad PE array geometry");
}

std::size_t
PeArray::groupOf(std::size_t c, std::size_t m) const
{
    return (m + lanes_ - c % lanes_) % lanes_;
}

void
PeArray::loadWeights(const Tensor &weight)
{
    ENODE_ASSERT(weight.shape().rank() == 4 &&
                     weight.shape().dim(0) == lanes_ &&
                     weight.shape().dim(1) == lanes_ &&
                     weight.shape().dim(2) == kernel_ &&
                     weight.shape().dim(3) == kernel_,
                 "weight tile must be (lanes, lanes, K, K), got ",
                 weight.shape().str());
    cachedWeights_ = weight;
    weightsLoaded_ = true;
}

Tensor
PeArray::forwardConv(const Tensor &x, const Tensor &bias)
{
    ENODE_ASSERT(weightsLoaded_, "weights not loaded");
    ENODE_ASSERT(x.shape().rank() == 3 && x.shape().dim(0) == lanes_,
                 "input must have ", lanes_, " channels");
    const std::size_t H = x.shape().dim(1);
    const std::size_t W = x.shape().dim(2);
    const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(kernel_ / 2);

    Tensor psum(Shape{lanes_, H, W});
    // Stream input packets (one pixel x lanes channels). Each packet is
    // broadcast to all groups; within a group, PE_{c, (c+g)%lanes}
    // multiplies channel c against its cached kernel, scattering a 3x3
    // psum patch around the pixel (Fig. 6(b) step 1-2). The adder tree
    // lane m accumulates one contribution from each group.
    for (std::size_t h = 0; h < H; h++) {
        for (std::size_t w = 0; w < W; w++) {
            for (std::size_t g = 0; g < lanes_; g++) {
                for (std::size_t c = 0; c < lanes_; c++) {
                    const std::size_t m = (c + g) % lanes_;
                    const float in = x.at(c, h, w);
                    for (std::size_t kh = 0; kh < kernel_; kh++) {
                        const std::ptrdiff_t oh =
                            static_cast<std::ptrdiff_t>(h) + pad -
                            static_cast<std::ptrdiff_t>(kh);
                        if (oh < 0 || oh >= static_cast<std::ptrdiff_t>(H))
                            continue;
                        for (std::size_t kw = 0; kw < kernel_; kw++) {
                            const std::ptrdiff_t ow =
                                static_cast<std::ptrdiff_t>(w) + pad -
                                static_cast<std::ptrdiff_t>(kw);
                            if (ow < 0 ||
                                ow >= static_cast<std::ptrdiff_t>(W))
                                continue;
                            psum.at(m, static_cast<std::size_t>(oh),
                                    static_cast<std::size_t>(ow)) +=
                                in * cachedWeights_.at(m, c, kh, kw);
                            macs_++;
                        }
                    }
                }
            }
        }
    }
    if (!bias.empty()) {
        for (std::size_t m = 0; m < lanes_; m++)
            for (std::size_t h = 0; h < H; h++)
                for (std::size_t w = 0; w < W; w++)
                    psum.at(m, h, w) += bias.at(m);
    }
    return psum;
}

Tensor
PeArray::backwardDataConv(const Tensor &grad_out)
{
    ENODE_ASSERT(weightsLoaded_, "weights not loaded");
    ENODE_ASSERT(grad_out.shape().rank() == 3 &&
                     grad_out.shape().dim(0) == lanes_,
                 "grad_out must have ", lanes_, " channels");
    const std::size_t H = grad_out.shape().dim(1);
    const std::size_t W = grad_out.shape().dim(2);
    const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(kernel_ / 2);

    Tensor psum(Shape{lanes_, H, W});
    // Same PEs, same cached kernels, roles of C and M swapped and the
    // kernel spatially flipped: the psum patch scatters to (h+kh-pad)
    // instead of (h+pad-kh). The adder tree lane c now sums one psum set
    // per group across the m's (Fig. 9(c)).
    for (std::size_t h = 0; h < H; h++) {
        for (std::size_t w = 0; w < W; w++) {
            for (std::size_t g = 0; g < lanes_; g++) {
                for (std::size_t m = 0; m < lanes_; m++) {
                    const std::size_t c = (m + lanes_ - g) % lanes_;
                    const float in = grad_out.at(m, h, w);
                    for (std::size_t kh = 0; kh < kernel_; kh++) {
                        const std::ptrdiff_t oh =
                            static_cast<std::ptrdiff_t>(h) +
                            static_cast<std::ptrdiff_t>(kh) - pad;
                        if (oh < 0 || oh >= static_cast<std::ptrdiff_t>(H))
                            continue;
                        for (std::size_t kw = 0; kw < kernel_; kw++) {
                            const std::ptrdiff_t ow =
                                static_cast<std::ptrdiff_t>(w) +
                                static_cast<std::ptrdiff_t>(kw) - pad;
                            if (ow < 0 ||
                                ow >= static_cast<std::ptrdiff_t>(W))
                                continue;
                            psum.at(c, static_cast<std::size_t>(oh),
                                    static_cast<std::size_t>(ow)) +=
                                in * cachedWeights_.at(m, c, kh, kw);
                            macs_++;
                        }
                    }
                }
            }
        }
    }
    return psum;
}

Tensor
PeArray::weightGrad(const Tensor &x, const Tensor &grad_out)
{
    ENODE_ASSERT(weightsLoaded_, "weights not loaded");
    ENODE_ASSERT(x.shape() == grad_out.shape() &&
                     x.shape().dim(0) == lanes_,
                 "weightGrad shape mismatch");
    const std::size_t H = x.shape().dim(1);
    const std::size_t W = x.shape().dim(2);
    const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(kernel_ / 2);

    Tensor grad_w(Shape{lanes_, lanes_, kernel_, kernel_});
    // PE_{c,m} receives the (x[c], dy[m]) pair of each pixel and
    // accumulates its own 9-entry kernel gradient locally.
    for (std::size_t h = 0; h < H; h++) {
        for (std::size_t w = 0; w < W; w++) {
            for (std::size_t m = 0; m < lanes_; m++) {
                const float dy = grad_out.at(m, h, w);
                for (std::size_t c = 0; c < lanes_; c++) {
                    for (std::size_t kh = 0; kh < kernel_; kh++) {
                        const std::ptrdiff_t ih =
                            static_cast<std::ptrdiff_t>(h) +
                            static_cast<std::ptrdiff_t>(kh) - pad;
                        if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(H))
                            continue;
                        for (std::size_t kw = 0; kw < kernel_; kw++) {
                            const std::ptrdiff_t iw =
                                static_cast<std::ptrdiff_t>(w) +
                                static_cast<std::ptrdiff_t>(kw) - pad;
                            if (iw < 0 ||
                                iw >= static_cast<std::ptrdiff_t>(W))
                                continue;
                            grad_w.at(m, c, kh, kw) +=
                                dy * x.at(c, static_cast<std::size_t>(ih),
                                          static_cast<std::size_t>(iw));
                            macs_++;
                        }
                    }
                }
            }
        }
    }
    return grad_w;
}

double
PeArray::convCycles(std::size_t H, std::size_t W, std::size_t C,
                    std::size_t M, std::size_t lanes)
{
    const double tiles_c = std::ceil(static_cast<double>(C) / lanes);
    const double tiles_m = std::ceil(static_cast<double>(M) / lanes);
    return static_cast<double>(H) * W * tiles_c * tiles_m;
}

double
PeArray::convMacs(std::size_t H, std::size_t W, std::size_t C,
                  std::size_t M, std::size_t kernel)
{
    return static_cast<double>(H) * W * C * M * kernel * kernel;
}

} // namespace enode
