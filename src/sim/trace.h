#ifndef ENODE_SIM_TRACE_H
#define ENODE_SIM_TRACE_H

/**
 * @file
 * Workload traces: the bridge from algorithm runs to the hardware model.
 *
 * The cycle-accurate simulators execute *representative steps* in full
 * detail (every conv row, ring transfer and DRAM burst of one
 * integration trial / one backward step) and then compose whole
 * inferences or training iterations from the solver statistics recorded
 * by the reference algorithm run: how many evaluation points, how many
 * search trials, and how much of each trial was actually processed
 * under early stop. This mirrors the paper's methodology (cycle model
 * driven by the benchmark's integration schedule) and keeps full-run
 * simulation tractable.
 */

#include "core/aca_trainer.h"
#include "core/node_model.h"

namespace enode {

/** Solver activity of one forward pass / training iteration. */
struct WorkloadTrace
{
    std::string name;            ///< workload label for reports
    double integrationLayers = 0;
    double evalPoints = 0;       ///< accepted steps, all layers
    double trials = 0;           ///< search trials, all layers
    double equivalentTrials = 0; ///< work-weighted (early-stop) trials
    double backwardSteps = 0;    ///< ACA backward steps (0 for inference)

    /** Mean trials per evaluation point. */
    double
    triesPerPoint() const
    {
        return evalPoints > 0 ? trials / evalPoints : 0.0;
    }

    /** Build from a recorded forward pass. */
    static WorkloadTrace fromForward(const std::string &name,
                                     const NodeForwardResult &fwd);

    /** Build from a forward pass + its ACA backward statistics. */
    static WorkloadTrace fromTraining(const std::string &name,
                                      const NodeForwardResult &fwd,
                                      const AcaStats &bwd);

    /** Synthetic trace from aggregate statistics (for sweeps). */
    static WorkloadTrace synthetic(const std::string &name, double layers,
                                   double eval_points_per_layer,
                                   double tries_per_point, bool training,
                                   double work_fraction = 1.0);
};

} // namespace enode

#endif // ENODE_SIM_TRACE_H
