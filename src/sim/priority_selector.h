#ifndef ENODE_SIM_PRIORITY_SELECTOR_H
#define ENODE_SIM_PRIORITY_SELECTOR_H

/**
 * @file
 * Packetized processing control (Sec. V.B, Fig. 8).
 *
 * The controller keeps one state buffer per stream (one stream per f
 * evaluation: k_1..k_s for RK23). A priority selector watches input
 * availability across the buffers and dispatches packets to the ring,
 * giving *later* streams higher priority so they drain the outputs of
 * earlier streams and free buffer space — the no-stall property of
 * depth-first processing on a folded (function-reused) architecture.
 */

#include <cstdint>
#include <deque>
#include <vector>

#include "common/stats.h"

namespace enode {

/**
 * Dispatch policy shared by the hardware-sim selector and the serving
 * runtime's request scheduler (src/runtime/request_queue.h), so the two
 * layers stay in agreement about what "priority" means.
 *
 * LaterStreamFirst is the paper's policy: the non-empty stream with the
 * highest tag wins. Fifo is the ablation baseline: strict arrival order
 * regardless of stream.
 */
enum class SelectPolicy
{
    LaterStreamFirst,
    Fifo,
};

/** Human-readable policy name for reports. */
const char *selectPolicyName(SelectPolicy policy);

/** A packetized unit of work: one input packet of one stream. */
struct Packet
{
    std::uint32_t stream; ///< which f evaluation (k_j) this belongs to
    std::uint32_t index;  ///< packet index within the stream
};

/** Per-stream state buffers + the later-stream-first selector. */
class PrioritySelector
{
  public:
    /**
     * @param streams Number of concurrent streams (integrator stages).
     * @param buffer_capacity Packets each state buffer can hold.
     * @param policy Dispatch policy (the paper's later-stream-first by
     *        default; Fifo as an ablation baseline).
     */
    PrioritySelector(std::size_t streams, std::size_t buffer_capacity,
                     SelectPolicy policy = SelectPolicy::LaterStreamFirst);

    /**
     * Offer a packet to stream s's state buffer.
     * @return false when the buffer is full (producer must stall).
     */
    bool push(const Packet &packet);

    /** True if any stream has a packet ready. */
    bool anyReady() const;

    /**
     * Dispatch the next packet. Under LaterStreamFirst the non-empty
     * buffer with the highest stream index wins; under Fifo the oldest
     * buffered packet wins regardless of stream.
     */
    Packet pop();

    std::size_t occupancy(std::size_t stream) const;
    std::size_t streams() const { return buffers_.size(); }
    SelectPolicy policy() const { return policy_; }

    std::uint64_t dispatched() const { return dispatched_; }
    std::uint64_t rejectedPushes() const { return rejectedPushes_; }
    /** Peak total occupancy across all buffers. */
    std::size_t peakOccupancy() const { return peakOccupancy_; }

  private:
    std::size_t capacity_;
    SelectPolicy policy_;
    std::vector<std::deque<Packet>> buffers_;
    std::deque<std::uint32_t> arrivalOrder_; ///< stream ids, oldest first
    std::uint64_t dispatched_ = 0;
    std::uint64_t rejectedPushes_ = 0;
    std::size_t peakOccupancy_ = 0;
};

} // namespace enode

#endif // ENODE_SIM_PRIORITY_SELECTOR_H
