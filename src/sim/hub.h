#ifndef ENODE_SIM_HUB_H
#define ENODE_SIM_HUB_H

/**
 * @file
 * Central-hub peripherals (Sec. V.A, Fig. 7): the integral accumulator
 * and the function unit.
 *
 * The integral accumulator performs the scale-and-accumulate of the
 * partial states (p_{i,j}, e_i, h') as k rows arrive from the ring; the
 * function unit computes the truncation-error norm *incrementally* —
 * the hardware hook behind early stop: "the depth-first integrator
 * computes e incrementally; if a partially computed ||e||_2 exceeds
 * epsilon, a search trial can be terminated early" (Sec. VII.B).
 */

#include <cstdint>

#include "sim/energy_model.h"
#include "tensor/tensor.h"

namespace enode {

/** Scale-and-accumulate unit for integral partial states. */
class IntegralAccumulator
{
  public:
    /** acc += coeff * k (one partial-state update); counts ALU ops. */
    void accumulate(Tensor &acc, double coeff, const Tensor &k);

    std::uint64_t ops() const { return ops_; }

    void
    addActivity(ActivityCounts &activity) const
    {
        activity.aluOps += ops_;
    }

  private:
    std::uint64_t ops_ = 0;
};

/**
 * The function unit: incremental ||e||_2 with early termination.
 *
 * Rows of the error state stream in (in priority order when priority
 * processing is active); the unit accumulates the squared norm and
 * raises `exceeded` the moment the partial norm crosses the tolerance.
 */
class FunctionUnit
{
  public:
    /** Arm the unit for a new trial at tolerance epsilon. */
    void startTrial(double epsilon);

    /**
     * Feed one error row; returns true if the trial should stop early
     * (partial norm already above the tolerance).
     *
     * @param e Error tensor (rank 3, rows = dim 1; or rank 1, one
     *        entry per "row").
     * @param row Row index to consume.
     */
    bool consumeRow(const Tensor &e, std::size_t row);

    /** Partial (or final) norm accumulated so far. */
    double partialNorm() const;

    /** True once the partial norm crossed the tolerance. */
    bool exceeded() const { return exceeded_; }

    std::uint64_t rowsConsumed() const { return rowsConsumed_; }
    std::uint64_t trialsStarted() const { return trialsStarted_; }
    std::uint64_t earlyTerminations() const { return earlyTerminations_; }

    void
    addActivity(ActivityCounts &activity) const
    {
        activity.aluOps += aluOps_;
    }

  private:
    double epsilonSq_ = 0.0;
    double sumSq_ = 0.0;
    bool exceeded_ = false;
    bool armed_ = false;
    std::uint64_t rowsConsumed_ = 0;
    std::uint64_t trialsStarted_ = 0;
    std::uint64_t earlyTerminations_ = 0;
    std::uint64_t aluOps_ = 0;
};

} // namespace enode

#endif // ENODE_SIM_HUB_H
