#include "sim/system_config.h"

namespace enode {

void
RunCost::publish(StatGroup &stats, const std::string &prefix,
                 const EnergyParams &params) const
{
    publishEnergy(stats, prefix, energy, cycles, params);
    stats.set(prefix + ".seconds", seconds);
    stats.set(prefix + ".macs", static_cast<double>(activity.macs));
    stats.set(prefix + ".sramReads",
              static_cast<double>(activity.sramReads));
    stats.set(prefix + ".sramWrites",
              static_cast<double>(activity.sramWrites));
    stats.set(prefix + ".regAccesses",
              static_cast<double>(activity.regAccesses));
    stats.set(prefix + ".nocHopWords",
              static_cast<double>(activity.nocHopWords));
    stats.set(prefix + ".dramBytes",
              static_cast<double>(activity.dramBytes));
}

SystemConfig::SystemConfig()
{
    layer.tableau = &ButcherTableau::rk23();
    layer.fDepth = 4;
    layer.kernel = 3;
    layer.H = 64;
    layer.W = 64;
    layer.C = 64;
    layer.bytesPerElement = 2;
}

SystemConfig
SystemConfig::configA()
{
    return SystemConfig{};
}

SystemConfig
SystemConfig::configB()
{
    SystemConfig cfg;
    cfg.layer.H = 256;
    cfg.layer.W = 256;
    return cfg;
}

} // namespace enode
