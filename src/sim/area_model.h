#ifndef ENODE_SIM_AREA_MODEL_H
#define ENODE_SIM_AREA_MODEL_H

/**
 * @file
 * 28 nm area model (Table I, Fig. 15(c)).
 *
 * SRAM densities are back-solved from the paper's own Table I
 * (4.62 mm^2/MB for the state buffers, 2.37 mm^2/MB for the denser
 * single-port weight buffer) and the logic areas from its "Core &
 * Control" rows, so this model *reproduces* the published breakdown and
 * then extrapolates it across layer sizes for the scalability study.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "core/depth_first.h"

namespace enode {

/** Area cost coefficients (28 nm). */
struct AreaParams
{
    double sramMm2PerMb = 4.62;      ///< dual-port state buffers
    double weightSramMm2PerMb = 2.37; ///< denser weight storage
    double baselineCoreMm2 = 3.53;   ///< SIMD MAC array + control
    double enodeCoreMm2 = 3.66;      ///< 4 NN cores + hub + router
};

/** One row of Table I. */
struct AreaItem
{
    std::string name;
    double baselineMb; ///< 0 for logic rows
    double baselineMm2;
    double enodeMb;
    double enodeMm2;
};

/** Full memory/area breakdown for a layer geometry. */
struct AreaBreakdown
{
    std::vector<AreaItem> items;
    double baselineTotalMb = 0.0;
    double baselineTotalMm2 = 0.0;
    double enodeTotalMb = 0.0;
    double enodeTotalMm2 = 0.0;
};

/**
 * Build the Table I breakdown for a geometry.
 *
 * Rows: Core & Control, Weight Buffer, Integral State Buffer, Line
 * Buffer (eNODE only), Training State Buffer.
 *
 * @param cfg Layer geometry + integrator (Table I uses RK23, 4-conv f).
 * @param params Cost coefficients.
 */
AreaBreakdown computeAreaBreakdown(const DepthFirstConfig &cfg,
                                   const AreaParams &params = {});

} // namespace enode

#endif // ENODE_SIM_AREA_MODEL_H
