#ifndef ENODE_SIM_SRAM_H
#define ENODE_SIM_SRAM_H

/**
 * @file
 * On-chip SRAM buffer model.
 *
 * Tracks occupancy against a hard capacity, counts word accesses for the
 * energy model, and exposes allocation failure so callers (the training
 * state buffer in particular) can model spills to DRAM. Latency is one
 * cycle and fully pipelined — adequate at the packet granularity the
 * system models operate on.
 */

#include <cstdint>
#include <string>

#include "sim/energy_model.h"

namespace enode {

/** A named SRAM with capacity accounting and access counters. */
class Sram
{
  public:
    /**
     * @param name Instance name for stats.
     * @param capacity_bytes Hard capacity.
     */
    Sram(std::string name, std::size_t capacity_bytes);

    const std::string &name() const { return name_; }
    std::size_t capacityBytes() const { return capacityBytes_; }
    std::size_t usedBytes() const { return usedBytes_; }
    std::size_t freeBytes() const { return capacityBytes_ - usedBytes_; }
    std::size_t peakUsedBytes() const { return peakUsedBytes_; }

    /**
     * Reserve bytes; returns false (and leaves state unchanged) when the
     * allocation does not fit.
     */
    bool allocate(std::size_t bytes);

    /** Release bytes previously allocated. */
    void release(std::size_t bytes);

    /** Count a read of the given byte count (word-granular energy). */
    void read(std::size_t bytes);

    /** Count a write of the given byte count. */
    void write(std::size_t bytes);

    std::uint64_t readWords() const { return readWords_; }
    std::uint64_t writeWords() const { return writeWords_; }

    /** Merge this SRAM's access counts into an activity record. */
    void addActivity(ActivityCounts &activity) const;

    void resetStats();

  private:
    std::string name_;
    std::size_t capacityBytes_;
    std::size_t usedBytes_ = 0;
    std::size_t peakUsedBytes_ = 0;
    std::uint64_t readWords_ = 0;
    std::uint64_t writeWords_ = 0;
};

} // namespace enode

#endif // ENODE_SIM_SRAM_H
