#include "sim/hub.h"

#include <cmath>

#include "common/logging.h"

namespace enode {

void
IntegralAccumulator::accumulate(Tensor &acc, double coeff, const Tensor &k)
{
    ENODE_ASSERT(acc.shape() == k.shape(),
                 "integral accumulate shape mismatch");
    acc.axpy(static_cast<float>(coeff), k);
    ops_ += k.numel();
}

void
FunctionUnit::startTrial(double epsilon)
{
    ENODE_ASSERT(epsilon > 0.0, "tolerance must be positive");
    epsilonSq_ = epsilon * epsilon;
    sumSq_ = 0.0;
    exceeded_ = false;
    armed_ = true;
    trialsStarted_++;
}

bool
FunctionUnit::consumeRow(const Tensor &e, std::size_t row)
{
    ENODE_ASSERT(armed_, "function unit not armed (startTrial missing)");
    if (exceeded_)
        return true;

    double row_sq = 0.0;
    std::size_t elems = 0;
    if (e.shape().rank() == 3) {
        const double n = e.rowWindowL2(row, row + 1);
        row_sq = n * n;
        elems = e.shape().dim(0) * e.shape().dim(2);
    } else {
        const double v = e.at(row);
        row_sq = v * v;
        elems = 1;
    }
    sumSq_ += row_sq;
    rowsConsumed_++;
    aluOps_ += elems + 1; // squares + the comparison
    if (sumSq_ > epsilonSq_) {
        exceeded_ = true;
        earlyTerminations_++;
    }
    return exceeded_;
}

double
FunctionUnit::partialNorm() const
{
    return std::sqrt(sumSq_);
}

} // namespace enode
