#ifndef ENODE_SIM_SYSTEM_CONFIG_H
#define ENODE_SIM_SYSTEM_CONFIG_H

/**
 * @file
 * Shared configuration and result types of the two system models.
 */

#include "core/depth_first.h"
#include "sim/dram.h"
#include "sim/energy_model.h"

namespace enode {

/** Full hardware + problem configuration. */
struct SystemConfig
{
    /** Problem geometry (Table I Config A by default). */
    DepthFirstConfig layer{};

    /** PE lanes per NN core (8 x 8 PEs). */
    std::size_t peLanes = 8;
    /** NN cores on the ring (each maps one conv layer of f). */
    std::size_t numCores = 4;
    /** Hub integral-accumulator width in 16-bit lanes. */
    std::size_t hubAluLanes = 64;
    /** Ring link bandwidth, bytes per cycle. */
    double linkBytesPerCycle = 16.0;
    /** Training-state buffer capacity (both designs, Table I). */
    std::size_t trainingBufferBytes = 0; ///< 0 = size to the depth-first
                                         ///< working set (Table I policy)
    /**
     * "Layers can also be split and mapped on multiple NN cores"
     * (Sec. V.A): when f is shallower than the core count, split each
     * conv layer's channel tiles across numCores / fDepth cores so no
     * core idles. Requires numCores % fDepth == 0.
     */
    bool splitShallowLayers = false;

    EnergyParams energy{};
    DramParams dram{};

    /** Extra static power of the richer eNODE control (W). */
    double enodeControlStaticW = 0.50;
    /** Baseline core static power (clock tree + control, W). */
    double baselineStaticW = 2.20;

    SystemConfig();

    /** Table I Configuration A: 64 x 64 x 64, RK23, 4-conv f. */
    static SystemConfig configA();
    /** Table I Configuration B: 256 x 256 x 64. */
    static SystemConfig configB();
};

/** Cost of one simulated step (one trial / one backward step). */
struct StepCost
{
    double cycles = 0.0;
    ActivityCounts activity{};
    double coreUtilization = 0.0; ///< busy fraction of the busiest core
    double maxLinkBusyFraction = 0.0;
};

/** Cost of a full run (one inference or one training iteration). */
struct RunCost
{
    double cycles = 0.0;
    ActivityCounts activity{};
    EnergyBreakdown energy{};
    double seconds = 0.0;
    double powerW = 0.0;
    double dramPowerW = 0.0;
    double energyJ = 0.0;

    /**
     * Publish the run into a StatGroup under the given prefix: the
     * energy breakdown (via publishEnergy) plus activity counters, in
     * the gem5 "component.stat = value" style.
     */
    void publish(StatGroup &stats, const std::string &prefix,
                 const EnergyParams &params) const;
};

} // namespace enode

#endif // ENODE_SIM_SYSTEM_CONFIG_H
