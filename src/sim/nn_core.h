#ifndef ENODE_SIM_NN_CORE_H
#define ENODE_SIM_NN_CORE_H

/**
 * @file
 * The unified NN core (Sec. VI, Fig. 9(a)) as a composed functional
 * model: channel collector -> PE array -> line buffer, with the
 * pre-/post-processing unit and the training-state buffer attached.
 *
 * The core executes one conv layer of the embedded network in any of
 * the three datapath modes and accounts every buffer access:
 *
 *  - the channel collector packetizes the input into 1x1xlanes packets
 *    and counts the register traffic of distribution,
 *  - the PE array performs the grouped multiply/adder-tree reduction
 *    (see sim/pe_array.h; numerically validated against the reference
 *    convolutions),
 *  - the line buffer holds the psum rows of the depth-first window and
 *    enforces its capacity (allocation failure = a design bug),
 *  - the pre/post unit applies ReLU (and counts its ALU ops),
 *  - the training-state buffer captures activations during local
 *    forward steps for the counter-clockwise adjoint loop.
 *
 * The system-level models (enode_system.cc) use the same cost
 * expressions at row granularity; this class is the single-core
 * functional reference and the place where buffer capacities derived
 * from the depth-first analysis are actually enforced.
 */

#include <cstdint>
#include <string>

#include "sim/pe_array.h"
#include "sim/sram.h"

namespace enode {

/** Configuration of one NN core. */
struct NnCoreConfig
{
    std::size_t lanes = 8;          ///< PE array side (8x8 PEs)
    std::size_t kernel = 3;
    std::size_t lineBufferBytes = 128 * 1024;     ///< Table I / 4 cores
    std::size_t trainingBufferBytes = 320 * 1024; ///< Table I / 4 cores
};

/** Statistics of one core. */
struct NnCoreStats
{
    std::uint64_t packetsCollected = 0;
    std::uint64_t reluOps = 0;
    std::uint64_t trainingStatesCaptured = 0; ///< tensors
    double computeCycles = 0.0;
};

/** One depth-first NN core with a unified forward/backward datapath. */
class NnCore
{
  public:
    explicit NnCore(std::string name, NnCoreConfig config = {});

    const std::string &name() const { return name_; }

    /** Load one (lanes x lanes x K x K) weight tile into the PE caches. */
    void loadWeights(const Tensor &weight);

    /**
     * Forward conv of one map tile, optionally through the post-unit
     * ReLU, capturing the input as a training state when requested.
     *
     * @param x Input (lanes, H, W).
     * @param bias Optional per-channel bias.
     * @param relu Apply the pre/post unit's ReLU.
     * @param capture_training_state Store x into the training-state
     *        buffer (local forward step of the backward pass).
     */
    Tensor forward(const Tensor &x, const Tensor &bias, bool relu,
                   bool capture_training_state = false);

    /** Backward-data conv (counter-clockwise loop), same cached weights. */
    Tensor backwardData(const Tensor &grad_out);

    /**
     * Weight-gradient accumulation against the *most recent captured
     * training state* (the state the adjoint is currently consuming).
     */
    Tensor weightGrad(const Tensor &grad_out);

    /** Release the most recent training state (consumed by the adjoint). */
    void retireTrainingState();

    const NnCoreStats &stats() const { return stats_; }
    const Sram &lineBuffer() const { return lineBuffer_; }
    const Sram &trainingBuffer() const { return trainingBuffer_; }
    const PeArray &peArray() const { return array_; }

    /** Merge all buffer/compute activity into an activity record. */
    void addActivity(ActivityCounts &activity) const;

  private:
    std::size_t tensorBytes(const Tensor &t) const;

    std::string name_;
    NnCoreConfig config_;
    PeArray array_;
    Sram lineBuffer_;
    Sram trainingBuffer_;
    std::vector<Tensor> trainingStates_;
    NnCoreStats stats_;
};

} // namespace enode

#endif // ENODE_SIM_NN_CORE_H
