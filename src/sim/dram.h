#ifndef ENODE_SIM_DRAM_H
#define ENODE_SIM_DRAM_H

/**
 * @file
 * External DRAM timing and energy model.
 *
 * A compact stand-in for the paper's Ramulator setup: a multi-bank
 * device with open-row policy. Each request is decomposed into row
 * activations (tRCD + tRP on a miss) and column bursts at the interface
 * bandwidth; bank-level parallelism overlaps activations of different
 * banks. The controller serves a FIFO of requests and reports both the
 * service time of an isolated transfer and the busy time of a stream,
 * which is what the system models use for stall accounting. Energy is
 * counted per byte by the shared EnergyParams.
 */

#include <cstdint>
#include <string>

#include "sim/energy_model.h"
#include "sim/event_queue.h"

namespace enode {

/** Device timing/geometry in core-clock cycles. */
struct DramParams
{
    std::size_t banks = 8;
    std::size_t rowBytes = 2048;       ///< open-row (page) size
    double bytesPerCycle = 51.2;       ///< interface BW at the core clock
                                       ///< (25.6 GB/s at 500 MHz)
    Tick tRcd = 15;                    ///< activate-to-column
    Tick tRp = 15;                     ///< precharge
    Tick tCas = 15;                    ///< column access latency
};

/** Aggregated DRAM statistics. */
struct DramStats
{
    std::uint64_t requests = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    Tick busyCycles = 0;
};

/** Open-row DRAM with a simple in-order controller. */
class Dram
{
  public:
    Dram(std::string name, DramParams params = {});

    /**
     * Account a sequential transfer of the given size starting at the
     * given byte address.
     *
     * @param address Start address (determines bank/row interleaving).
     * @param bytes Transfer size.
     * @param is_write Direction.
     * @return Cycles the transfer occupies the device (row activations
     *         overlapped across banks + burst time).
     */
    Tick access(std::uint64_t address, std::size_t bytes, bool is_write);

    /** Service latency of a single isolated request of `bytes`. */
    Tick serviceLatency(std::size_t bytes, bool row_hit) const;

    const DramStats &stats() const { return stats_; }
    const DramParams &params() const { return params_; }

    /** Merge traffic into an activity record. */
    void addActivity(ActivityCounts &activity) const;

    void resetStats();

  private:
    std::string name_;
    DramParams params_;
    DramStats stats_;
    std::vector<std::int64_t> openRow_; ///< per bank, -1 = closed
};

} // namespace enode

#endif // ENODE_SIM_DRAM_H
