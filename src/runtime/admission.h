#ifndef ENODE_RUNTIME_ADMISSION_H
#define ENODE_RUNTIME_ADMISSION_H

/**
 * @file
 * Deadline-aware admission control and the brownout ladder.
 *
 * Adaptive solvers make compute cost input-dependent, so under open-loop
 * load the server must decide *at submit* whether a request can still
 * meet its deadline — not discover overload one deadline miss at a time.
 * The AdmissionController keeps an EWMA cost model of recent solve
 * durations (per input shape, batch-normalized) and of observed queue
 * delay, gives every incoming request a completion estimate, and sheds
 * requests whose estimate exceeds their budget with a new terminal
 * status (RequestStatus::Shed) before they occupy a queue slot, a
 * worker, or a batch seat.
 *
 * The same controller runs the brownout ladder: a load monitor over
 * queue delay, worker occupancy and shed rate drives graduated
 * *proactive* degradation, reusing the PR 4 ladder rungs as policy —
 *   level 1: relax rung-0 solver tolerance for low-priority streams
 *            (the voluntary analogue of the ladder's relaxed retry),
 *   level 2: additionally shrink the micro-batching collect window so
 *            queued work drains instead of waiting for company,
 *   level 3: additionally shed low-priority requests outright at
 *            admission.
 * Every level transition is traced (overload.enter / overload.exit
 * instants) and counted; snapshot() exposes the whole state for the
 * Prometheus exposition.
 *
 * Hysteresis appears twice, deliberately: the shed decision is a
 * two-threshold state machine (once shedding, a request must clear a
 * *stricter* bar to be admitted again), and brownout levels only move
 * after a minimum dwell and exit at a fraction of their entry score —
 * so neither the estimator nor the ladder can flap on one noisy sample.
 */

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/stats.h"
#include "runtime/request.h"
#include "tensor/tensor.h"

namespace enode {

/** Overload-control knobs (ServerOptions::overload). */
struct OverloadOptions
{
    /** Master switch; disabled keeps admission a blind queue push. */
    bool enabled = false;

    /** EWMA weight of the newest observation (cost model + monitor). */
    double ewmaAlpha = 0.25;

    /**
     * Completions the cost model must see before deadline-estimate
     * shedding activates — an unwarmed model must not reject traffic.
     * (A request whose deadline has already lapsed at submit is shed
     * regardless: that verdict needs no model.)
     */
    std::uint64_t minObservations = 8;

    /**
     * While the controller is in its shedding state, a request is
     * admitted only when its estimate fits within this fraction of its
     * budget — the stricter re-entry bar of the hysteresis pair.
     */
    double hysteresisRatio = 0.7;

    /** Queue delay (ms) the brownout ladder defends; the monitor's
     *  load score is observed-delay-EWMA / targetDelayMs. */
    double targetDelayMs = 25.0;

    /** Load scores at which levels 1..3 engage. */
    double level1Enter = 1.0;
    double level2Enter = 2.0;
    double level3Enter = 4.0;

    /** A level exits once the score falls to exitRatio * its entry
     *  score (scores between the two bounds hold the level). */
    double exitRatio = 0.5;

    /** Minimum milliseconds between level transitions. */
    double minDwellMs = 100.0;

    /** Mean worker occupancy below which the ladder never engages:
     *  queue delay with idle workers is not load-induced. */
    double occupancyFloor = 0.5;

    /** Streams <= this tag are "low priority": relaxed first (level 1),
     *  shed first (level 3). Higher streams keep full service until
     *  their own deadline estimates fail. */
    std::uint32_t lowPriorityMax = 0;

    /** Rung-0 tolerance multiplier for brownout-relaxed solves. */
    double brownoutToleranceFactor = 10.0;

    /** Collect-window scale at level >= 2 (0 disables coalescing). */
    double windowShrinkFactor = 0.25;
};

/** Stable key of a tensor's shape for the per-shape cost model. */
std::uint64_t shapeKeyOf(const Tensor &t);

/**
 * EWMA cost model + shed state machine + brownout monitor. One instance
 * per server; every method is thread-safe. Hot-path reads (level,
 * window scale, relax predicate) are single relaxed atomic loads.
 */
class AdmissionController
{
  public:
    AdmissionController(OverloadOptions options, std::size_t numWorkers);

    /** Verdict of one admission check. */
    struct Verdict
    {
        bool shed = false;
        /** Estimated completion time (ms from now) behind the verdict. */
        double estimateMs = 0.0;
    };

    /**
     * Decide one request's admission.
     *
     * @param shapeKey shapeKeyOf(input): selects the cost-model row.
     * @param stream Priority class (level-3 brownout sheds low ones).
     * @param budgetMs Time to deadline at submit; may be huge (no
     *        deadline) or <= 0 (already lapsed — always shed).
     * @param queueDepth Current queue occupancy.
     */
    Verdict admit(std::uint64_t shapeKey, std::uint32_t stream,
                  double budgetMs, std::size_t queueDepth);

    /**
     * Feed one finished dispatch into the cost model.
     * @param shapeKey Shape of the solved input(s).
     * @param dispatchMs Wall time of the whole dispatch.
     * @param batchSize Requests the dispatch served (>= 1).
     */
    void observeSolve(std::uint64_t shapeKey, double dispatchMs,
                      std::size_t batchSize);

    /**
     * Feed one dequeue observation into the brownout monitor.
     * @param queueWaitMs How long the dequeued request sat queued.
     * @param occupancy activeWorkers / numWorkers at dequeue.
     */
    void observeQueueDelay(double queueWaitMs, double occupancy);

    /** Completion estimate (ms) for a hypothetical request; exposed for
     *  tests and the exposition. */
    double estimateMs(std::uint64_t shapeKey, std::size_t queueDepth) const;

    /** Current brownout level (0 = normal .. 3). */
    int level() const { return level_.load(std::memory_order_relaxed); }

    /** Batch collect-window scale factor for the current level. */
    double collectWindowScale() const
    {
        return level() >= 2 ? options_.windowShrinkFactor : 1.0;
    }

    /** Should this stream's rung-0 solve run at relaxed tolerance? */
    bool relaxTolerance(std::uint32_t stream) const
    {
        return level() >= 1 && stream <= options_.lowPriorityMax;
    }

    /** Count one brownout-relaxed solve (called by the serving paths). */
    void noteRelaxed();

    std::uint64_t sheds() const;
    std::uint64_t relaxedSolves() const;
    /** Level transitions (enter + exit) since construction. */
    std::uint64_t transitions() const;
    /** Milliseconds spent at `level` so far (0..3). */
    double levelResidencyMs(int level) const;

    /** Prometheus-ready snapshot ("overload.*" keys). */
    StatGroup snapshot() const;

    const OverloadOptions &options() const { return options_; }

  private:
    struct Ewma
    {
        double value = 0.0;
        std::uint64_t count = 0;

        void add(double x, double alpha)
        {
            value = count == 0 ? x : (1.0 - alpha) * value + alpha * x;
            count++;
        }
    };

    double estimateLocked(std::uint64_t shapeKey,
                          std::size_t queueDepth) const;
    /** Re-evaluate the brownout level from the monitor EWMAs. */
    void updateLevelLocked(RuntimeClock::time_point now);
    double loadScoreLocked() const;

    const OverloadOptions options_;
    const std::size_t numWorkers_;

    mutable std::mutex mutex_;
    /** Per-shape dispatch cost (ms per dispatch of that shape). */
    std::unordered_map<std::uint64_t, Ewma> shapeCostMs_;
    /** Per-request service cost (dispatch ms / batch size): how fast
     *  the pool drains the queue, whatever the mix. */
    Ewma serviceMs_;
    /** Pool-wide gap between consecutive completions, per request: the
     *  *realized* drain interval, which under contention (more workers
     *  than cores, lock pressure) runs slower than serviceMs_ /
     *  numWorkers predicts. The drain estimate takes the slower of the
     *  two models. */
    Ewma completionGapMs_;
    RuntimeClock::time_point lastCompletionAt_;
    bool hasLastCompletion_ = false;
    /** Observed queue delay and occupancy (brownout monitor inputs). */
    Ewma queueDelayMs_;
    Ewma occupancy_;
    /** Shed fraction of recent admission decisions (monitor input). */
    double shedRate_ = 0.0;
    bool shedding_ = false;
    std::uint64_t totalObservations_ = 0;
    std::uint64_t sheds_ = 0;
    std::uint64_t relaxed_ = 0;
    std::uint64_t transitions_ = 0;
    double residencyMs_[4] = {0.0, 0.0, 0.0, 0.0};
    RuntimeClock::time_point levelSince_;
    RuntimeClock::time_point lastTransition_;
    std::atomic<int> level_{0};
};

} // namespace enode

#endif // ENODE_RUNTIME_ADMISSION_H
