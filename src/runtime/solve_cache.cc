#include "runtime/solve_cache.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/trace_span.h"

namespace enode {

SolveCache::SolveCache(CacheOptions opts) : opts_(opts)
{
    numShards_ = std::max<std::size_t>(1, opts_.shards);
    // Per-shard budget rounds up so the configured capacity is a floor,
    // not a ceiling that sharding silently erodes.
    if (opts_.exactCapacity > 0) {
        exactPerShard_ = (opts_.exactCapacity + numShards_ - 1) / numShards_;
        exactShards_ = std::make_unique<ExactShard[]>(numShards_);
    }
    if (opts_.warmCapacity > 0) {
        warmPerShard_ = (opts_.warmCapacity + numShards_ - 1) / numShards_;
        warmShards_ = std::make_unique<WarmShard[]>(numShards_);
    }
}

void
SolveCache::evictLocked(ExactShard &shard)
{
    // Walk from the cold end, skipping pending entries: they hold
    // follower promises and are owned by an in-flight solve, so they
    // leave only through publishSuccess/publishFailure. A shard can
    // briefly exceed its budget when every resident entry is pending.
    auto it = shard.lru.end();
    while (shard.map.size() > exactPerShard_ && it != shard.lru.begin()) {
        --it;
        if (!it->ready)
            continue;
        shard.map.erase(it->key);
        it = shard.lru.erase(it);
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

SolveCache::Lookup
SolveCache::lookupOrAttach(const Hash128 &key, QueueEntry &entry,
                           Tensor &out)
{
    if (!exactShards_)
        return Lookup::Miss;
    TraceSpan span("cache.lookup", "cache");
    ExactShard &shard = exactShard(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto found = shard.map.find(key);
    if (found == shard.map.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        span.arg("outcome", 0.0);
        return Lookup::Miss;
    }
    auto node = found->second;
    if (node->ready) {
        out.copyFrom(node->value);
        shard.lru.splice(shard.lru.begin(), shard.lru, node);
        exactHits_.fetch_add(1, std::memory_order_relaxed);
        span.arg("outcome", 1.0);
        return Lookup::Hit;
    }
    node->followers.push_back(std::move(entry));
    singleFlightWaits_.fetch_add(1, std::memory_order_relaxed);
    span.arg("outcome", 2.0);
    return Lookup::Attached;
}

bool
SolveCache::registerPending(const Hash128 &key)
{
    if (!exactShards_)
        return false;
    ExactShard &shard = exactShard(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.map.count(key) > 0)
        return false; // raced: someone else owns or already solved it
    shard.lru.emplace_front();
    shard.lru.front().key = key;
    shard.map.emplace(key, shard.lru.begin());
    evictLocked(shard);
    return true;
}

bool
SolveCache::tryServe(const Hash128 &key, Tensor &out)
{
    if (!exactShards_)
        return false;
    ExactShard &shard = exactShard(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto found = shard.map.find(key);
    if (found == shard.map.end() || !found->second->ready)
        return false;
    out.copyFrom(found->second->value);
    shard.lru.splice(shard.lru.begin(), shard.lru, found->second);
    exactHits_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
SolveCache::isReady(const Hash128 &key) const
{
    if (!exactShards_)
        return false;
    const ExactShard &shard = exactShard(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto found = shard.map.find(key);
    return found != shard.map.end() && found->second->ready;
}

std::vector<QueueEntry>
SolveCache::publishSuccess(const Hash128 &key, const Tensor &output)
{
    std::vector<QueueEntry> followers;
    if (!exactShards_)
        return followers;
    TraceSpan span("cache.insert", "cache");
    ExactShard &shard = exactShard(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto found = shard.map.find(key);
    if (found == shard.map.end()) {
        // No pending entry (raced owner, or a re-dispatched follower
        // finishing its own solve): insert the value fresh.
        shard.lru.emplace_front();
        shard.lru.front().key = key;
        shard.map.emplace(key, shard.lru.begin());
        found = shard.map.find(key);
    }
    ExactEntry &e = *found->second;
    // A concurrent owner may have published first; refreshing the value
    // is harmless (deterministic solves produce identical bytes).
    e.value.copyFrom(output);
    e.ready = true;
    followers.swap(e.followers);
    shard.lru.splice(shard.lru.begin(), shard.lru, found->second);
    inserts_.fetch_add(1, std::memory_order_relaxed);
    evictLocked(shard);
    span.arg("followers", static_cast<double>(followers.size()));
    return followers;
}

std::vector<QueueEntry>
SolveCache::publishFailure(const Hash128 &key)
{
    std::vector<QueueEntry> followers;
    if (!exactShards_)
        return followers;
    ExactShard &shard = exactShard(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto found = shard.map.find(key);
    if (found == shard.map.end() || found->second->ready)
        return followers; // nothing pending to retract
    followers.swap(found->second->followers);
    shard.lru.erase(found->second);
    shard.map.erase(found);
    return followers;
}

std::vector<QueueEntry>
SolveCache::drainPending()
{
    std::vector<QueueEntry> followers;
    if (!exactShards_)
        return followers;
    for (std::size_t s = 0; s < numShards_; s++) {
        ExactShard &shard = exactShards_[s];
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (auto it = shard.lru.begin(); it != shard.lru.end();) {
            if (it->ready) {
                ++it;
                continue;
            }
            for (QueueEntry &f : it->followers)
                followers.push_back(std::move(f));
            shard.map.erase(it->key);
            it = shard.lru.erase(it);
        }
    }
    return followers;
}

bool
SolveCache::warmLookup(std::uint64_t sig, DtSchedule &out)
{
    if (!warmShards_ || sig == 0)
        return false;
    TraceSpan span("cache.lookup", "cache");
    span.arg("tier", 2.0);
    WarmShard &shard = warmShard(sig);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto found = shard.map.find(sig);
    if (found == shard.map.end()) {
        span.arg("outcome", 0.0);
        return false;
    }
    // Element-wise copy assignment reuses out's segment capacity.
    out.layers = found->second->schedule.layers;
    shard.lru.splice(shard.lru.begin(), shard.lru, found->second);
    warmHits_.fetch_add(1, std::memory_order_relaxed);
    span.arg("outcome", 1.0);
    return true;
}

void
SolveCache::warmInsert(std::uint64_t sig, const WarmStartController &src)
{
    if (!warmShards_ || sig == 0 || src.recordedLayers() == 0)
        return;
    TraceSpan span("cache.insert", "cache");
    span.arg("tier", 2.0);
    WarmShard &shard = warmShard(sig);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto found = shard.map.find(sig);
    if (found == shard.map.end()) {
        shard.lru.emplace_front();
        shard.lru.front().sig = sig;
        shard.map.emplace(sig, shard.lru.begin());
        found = shard.map.find(sig);
    } else {
        shard.lru.splice(shard.lru.begin(), shard.lru, found->second);
    }
    // Refresh in place: a newer clean solve of the same bucket is a
    // better (or equally good) predictor than the one it replaces.
    src.harvestRecorded(found->second->schedule);
    inserts_.fetch_add(1, std::memory_order_relaxed);
    while (shard.map.size() > warmPerShard_) {
        shard.map.erase(shard.lru.back().sig);
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

std::size_t
SolveCache::exactSize() const
{
    std::size_t n = 0;
    for (std::size_t s = 0; exactShards_ && s < numShards_; s++) {
        std::lock_guard<std::mutex> lock(exactShards_[s].mutex);
        n += exactShards_[s].map.size();
    }
    return n;
}

std::size_t
SolveCache::warmSize() const
{
    std::size_t n = 0;
    for (std::size_t s = 0; warmShards_ && s < numShards_; s++) {
        std::lock_guard<std::mutex> lock(warmShards_[s].mutex);
        n += warmShards_[s].map.size();
    }
    return n;
}

StatGroup
SolveCache::snapshot() const
{
    StatGroup group("cache");
    group.set("cache.exact_hit", static_cast<double>(exactHits()));
    group.set("cache.warm_hit", static_cast<double>(warmHits()));
    group.set("cache.miss", static_cast<double>(misses()));
    group.set("cache.evict", static_cast<double>(evictions()));
    group.set("cache.insert", static_cast<double>(inserts()));
    group.set("cache.single_flight_waits",
              static_cast<double>(singleFlightWaits()));
    group.set("cache.exact_size", static_cast<double>(exactSize()));
    group.set("cache.warm_size", static_cast<double>(warmSize()));
    group.set("cache.exact_capacity",
              static_cast<double>(opts_.exactCapacity));
    group.set("cache.warm_capacity",
              static_cast<double>(opts_.warmCapacity));
    return group;
}

} // namespace enode
