#include "runtime/inference_server.h"

#include <algorithm>

#include "common/logging.h"
#include "ode/step_control.h"

namespace enode {

namespace {

double
toMs(RuntimeClock::duration d)
{
    return std::chrono::duration<double, std::milli>(d).count();
}

} // namespace

std::size_t
clampIntraOpThreads(std::size_t workers, std::size_t requested,
                    std::size_t hwThreads)
{
    if (requested <= 1)
        return 1;
    if (hwThreads == 0 || workers == 0)
        return requested; // unknown hardware: trust the caller
    // Largest width that keeps workers * width within the machine.
    const std::size_t budget = hwThreads / workers;
    return std::max<std::size_t>(1, std::min(requested, budget));
}

const char *
requestStatusName(RequestStatus status)
{
    switch (status) {
      case RequestStatus::Ok:
        return "ok";
      case RequestStatus::Cancelled:
        return "cancelled";
    }
    ENODE_PANIC("unknown RequestStatus");
}

InferenceServer::InferenceServer(ModelFactory make_model,
                                 ServerOptions options,
                                 ControllerFactory make_controller)
    : options_(options), tableau_(ButcherTableau::rk23()),
      queue_(options.queueCapacity, options.policy),
      paused_(options.startPaused)
{
    ENODE_ASSERT(options_.numWorkers >= 1, "server needs >= 1 worker");
    ENODE_ASSERT(static_cast<bool>(make_model), "null model factory");

    // Intra-op width: clamp workers * width to the machine, then build
    // one shared tile pool for all workers. Each worker contributes
    // itself plus (width - 1) borrowed pool threads, so the pool needs
    // numWorkers * (width - 1) threads for the ring to run full even
    // when every worker computes at once.
    const std::size_t requested = std::max<std::size_t>(
        1, options_.intraOpThreads);
    intraOpWidth_ = clampIntraOpThreads(
        options_.numWorkers, requested, std::thread::hardware_concurrency());
    if (intraOpWidth_ < requested) {
        ENODE_WARN("intraOpThreads clamped from ", requested, " to ",
                   intraOpWidth_, ": ", options_.numWorkers, " workers x ",
                   requested, " exceeds ",
                   std::thread::hardware_concurrency(),
                   " hardware threads");
    }
    if (intraOpWidth_ > 1) {
        intraOpPool_ = std::make_unique<TaskPool>(
            options_.numWorkers * (intraOpWidth_ - 1));
    }

    // Build the replicas sequentially on this thread: user factories
    // are free to capture shared state (e.g. one Rng) without locking.
    workers_.reserve(options_.numWorkers);
    for (std::size_t i = 0; i < options_.numWorkers; i++) {
        auto worker = std::make_unique<Worker>();
        worker->model = make_model();
        ENODE_ASSERT(worker->model != nullptr,
                     "model factory returned null");
        worker->controller =
            make_controller ? make_controller()
                            : std::make_unique<FixedFactorController>();
        ENODE_ASSERT(worker->controller != nullptr,
                     "controller factory returned null");
        workers_.push_back(std::move(worker));
    }

    // Replica 0 is the weight master: stamp its parameters into every
    // other replica so all workers serve bit-identical weights. The
    // master is only read; each replica is its worker's private
    // scratch space from here on.
    for (std::size_t i = 1; i < workers_.size(); i++)
        workers_[i]->model->syncParametersFrom(*workers_[0]->model);

    for (std::size_t i = 0; i < workers_.size(); i++)
        workers_[i]->thread =
            std::thread([this, i] { workerMain(i); });
}

InferenceServer::~InferenceServer()
{
    stop(true);
}

InferenceServer::Submission
InferenceServer::submit(Tensor input, std::uint32_t stream,
                        RuntimeClock::time_point deadline)
{
    Submission sub;
    if (stopped_.load(std::memory_order_acquire))
        return sub;

    QueueEntry entry;
    entry.request.id = nextRequestId_.fetch_add(1);
    entry.request.stream = stream;
    entry.request.deadline = deadline;
    entry.request.input = std::move(input);
    entry.enqueueTime = RuntimeClock::now();

    const std::uint64_t id = entry.request.id;
    std::future<InferResponse> future = entry.promise.get_future();

    if (!queue_.tryPush(entry)) {
        metrics_.recordRejected();
        return sub; // backpressure: accepted stays false
    }
    metrics_.recordAdmitted();
    sub.accepted = true;
    sub.id = id;
    sub.result = std::move(future);
    return sub;
}

void
InferenceServer::resume()
{
    {
        std::lock_guard<std::mutex> lock(pauseMutex_);
        paused_ = false;
    }
    pauseCv_.notify_all();
}

void
InferenceServer::stop(bool drain)
{
    if (stopped_.exchange(true, std::memory_order_acq_rel))
        return;

    std::vector<QueueEntry> leftovers = queue_.close(drain);
    resume(); // paused workers must wake to drain or exit

    for (auto &entry : leftovers) {
        InferResponse response;
        response.id = entry.request.id;
        response.status = RequestStatus::Cancelled;
        metrics_.recordCancelled();
        entry.promise.set_value(std::move(response));
    }

    for (auto &worker : workers_)
        if (worker->thread.joinable())
            worker->thread.join();
}

void
InferenceServer::waitWhilePaused()
{
    std::unique_lock<std::mutex> lock(pauseMutex_);
    pauseCv_.wait(lock, [this] { return !paused_; });
}

void
InferenceServer::workerMain(std::size_t worker_id)
{
    Worker &worker = *workers_[worker_id];
    // Kernel tiles split on the shared pool for this thread's lifetime;
    // with width 1 the scope is inert and kernels run serial inline.
    IntraOpScope intra_op(intraOpPool_.get(), intraOpWidth_);
    QueueEntry entry;
    for (;;) {
        waitWhilePaused();
        if (!queue_.pop(entry))
            break; // closed and drained

        const auto start = RuntimeClock::now();
        NodeForwardResult fwd =
            worker.model->forward(entry.request.input, tableau_,
                                  *worker.controller, options_.ivp);
        const auto end = RuntimeClock::now();

        InferResponse response;
        response.id = entry.request.id;
        response.status = RequestStatus::Ok;
        response.output = std::move(fwd.output);
        response.stats = fwd.totalStats;
        response.queueWaitMs = toMs(start - entry.enqueueTime);
        response.solveMs = toMs(end - start);
        response.totalMs = toMs(end - entry.enqueueTime);
        response.deadlineMet = end <= entry.request.deadline;
        response.workerId = worker_id;
        response.completionIndex = nextCompletionIndex_.fetch_add(1);

        metrics_.recordCompletion(response);
        entry.promise.set_value(std::move(response));
    }
}

} // namespace enode
