#include "runtime/inference_server.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/trace_span.h"
#include "ode/step_control.h"
#include "runtime/exposition.h"
#include "runtime/training_service.h"

namespace enode {

namespace {

double
toMs(RuntimeClock::duration d)
{
    return std::chrono::duration<double, std::milli>(d).count();
}

} // namespace

std::size_t
clampIntraOpThreads(std::size_t workers, std::size_t requested,
                    std::size_t hwThreads)
{
    if (requested <= 1)
        return 1;
    if (hwThreads == 0 || workers == 0)
        return requested; // unknown hardware: trust the caller
    // Largest width that keeps workers * width within the machine.
    const std::size_t budget = hwThreads / workers;
    return std::max<std::size_t>(1, std::min(requested, budget));
}

const char *
requestStatusName(RequestStatus status)
{
    switch (status) {
      case RequestStatus::Ok:
        return "ok";
      case RequestStatus::Cancelled:
        return "cancelled";
      case RequestStatus::DeadlineExceeded:
        return "deadline-exceeded";
      case RequestStatus::Failed:
        return "failed";
      case RequestStatus::Shed:
        return "shed";
    }
    ENODE_PANIC("unknown RequestStatus");
}

InferenceServer::InferenceServer(ModelFactory make_model,
                                 ServerOptions options,
                                 ControllerFactory make_controller)
    : options_(options), tableau_(ButcherTableau::rk23()),
      queue_(options.queueCapacity, options.policy),
      modelFactory_(std::move(make_model)),
      controllerFactory_(std::move(make_controller)),
      paused_(options.startPaused)
{
    ENODE_ASSERT(options_.numWorkers >= 1, "server needs >= 1 worker");
    ENODE_ASSERT(static_cast<bool>(modelFactory_), "null model factory");
    ENODE_ASSERT(options_.degrade.retryToleranceFactor >= 1.0,
                 "retryToleranceFactor must be >= 1");
    ENODE_ASSERT(options_.degrade.fallbackSteps >= 1,
                 "fallbackSteps must be >= 1");
    ENODE_ASSERT(options_.maxBatch >= 1, "maxBatch must be >= 1");
    ENODE_ASSERT(options_.batchWaitUs >= 0.0,
                 "batchWaitUs must be >= 0");
    if (options_.cache.enabled)
        solveCache_ = std::make_unique<SolveCache>(options_.cache);
    // The controller exists before the batcher so the batcher can scale
    // its collect window off the live brownout level.
    if (options_.overload.enabled)
        admission_ = std::make_unique<AdmissionController>(
            options_.overload, options_.numWorkers);
    if (options_.maxBatch > 1)
        batcher_ = std::make_unique<Batcher>(queue_, options_.maxBatch,
                                             options_.batchWaitUs,
                                             solveCache_.get(),
                                             admission_.get());

    // Intra-op width: clamp workers * width to the machine, then build
    // one shared tile pool for all workers. Each worker contributes
    // itself plus (width - 1) borrowed pool threads, so the pool needs
    // numWorkers * (width - 1) threads for the ring to run full even
    // when every worker computes at once.
    const std::size_t requested = std::max<std::size_t>(
        1, options_.intraOpThreads);
    intraOpWidth_ = clampIntraOpThreads(
        options_.numWorkers, requested, std::thread::hardware_concurrency());
    if (intraOpWidth_ < requested) {
        ENODE_WARN("intraOpThreads clamped from ", requested, " to ",
                   intraOpWidth_, ": ", options_.numWorkers, " workers x ",
                   requested, " exceeds ",
                   std::thread::hardware_concurrency(),
                   " hardware threads");
    }
    if (intraOpWidth_ > 1) {
        intraOpPool_ = std::make_unique<TaskPool>(
            options_.numWorkers * (intraOpWidth_ - 1));
    }

    // Build the replicas sequentially on this thread: user factories
    // are free to capture shared state (e.g. one Rng) without locking.
    workers_.reserve(options_.numWorkers);
    inflight_.reserve(options_.numWorkers);
    for (std::size_t i = 0; i < options_.numWorkers; i++) {
        auto worker = std::make_unique<Worker>();
        worker->model = modelFactory_();
        ENODE_ASSERT(worker->model != nullptr,
                     "model factory returned null");
        worker->controller =
            controllerFactory_ ? controllerFactory_()
                               : std::make_unique<FixedFactorController>();
        ENODE_ASSERT(worker->controller != nullptr,
                     "controller factory returned null");
        // Batched solves need one controller per sample so each state's
        // stepsize search runs exactly as it would solo.
        if (options_.maxBatch > 1) {
            worker->batchControllers.reserve(options_.maxBatch);
            for (std::size_t b = 0; b < options_.maxBatch; b++) {
                worker->batchControllers.push_back(
                    controllerFactory_
                        ? controllerFactory_()
                        : std::make_unique<FixedFactorController>());
                ENODE_ASSERT(worker->batchControllers.back() != nullptr,
                             "controller factory returned null");
            }
        }
        // Warm tier on: wrap every controller in a recording/replaying
        // decorator. The wrapped controller still sees every callback,
        // so disabling the cache cannot change any trial sequence.
        if (solveCache_ != nullptr && options_.cache.warmCapacity > 0) {
            worker->warm = std::make_unique<WarmStartController>(
                worker->controller.get());
            worker->batchWarm.reserve(worker->batchControllers.size());
            for (auto &inner : worker->batchControllers)
                worker->batchWarm.push_back(
                    std::make_unique<WarmStartController>(inner.get()));
            worker->batchWarmScratch.resize(
                worker->batchControllers.size());
        }
        workers_.push_back(std::move(worker));
        inflight_.push_back(std::make_unique<InFlight>());
    }

    // Replica 0 is the weight master: stamp its parameters into every
    // other replica so all workers serve bit-identical weights. The
    // master is only read; each replica is its worker's private
    // scratch space from here on.
    for (std::size_t i = 1; i < workers_.size(); i++)
        workers_[i]->model->syncParametersFrom(*workers_[0]->model);

    // The construction weights become registry version 0; every worker
    // replica starts there (Worker::replicaVersion's default). The
    // training service publishes versions 1, 2, ... through publish().
    registry_.seed(*workers_[0]->model);

    // Solver-config digest every cache key embeds: everything a
    // response's bytes depend on *except* the weights, which live in
    // the registry snapshots (their digest is combined per version in
    // digestFor). Two servers agree on a key only when a fresh solve
    // would produce identical outputs.
    if (solveCache_ != nullptr) {
        StreamHasher hasher;
        NodeModel &master = *workers_[0]->model;
        hasher.updateDouble(master.layerTime());
        hasher.update(static_cast<std::uint64_t>(master.numLayers()));
        hasher.updateDouble(options_.ivp.tolerance);
        hasher.updateDouble(options_.ivp.initialDt);
        hasher.updateDouble(options_.ivp.minDt);
        hasher.update(options_.ivp.maxTrialsPerPoint);
        hasher.update(options_.ivp.maxEvalPoints);
        hasher.update(options_.ivp.quantizeFp16 ? 1u : 0u);
        // Variable-length fields go in length-prefixed (updateSized) so
        // adjacent fields cannot alias.
        hasher.updateSized(tableau_.name().data(), tableau_.name().size());
        const std::string controller = workers_[0]->controller->name();
        hasher.updateSized(controller.data(), controller.size());
        configDigest_ = hasher.digest();
    }

    // Arm tracing before the first worker spawns so every worker's
    // first event registers its ring against this server's generation.
    if (options_.traceEnabled)
        Tracer::instance().arm(options_.traceRingCapacity);

    for (std::size_t i = 0; i < workers_.size(); i++)
        workers_[i]->thread =
            std::thread([this, i] { workerMain(i); });

    if (options_.degrade.watchdogMs > 0.0)
        watchdog_ = std::thread([this] { watchdogMain(); });

    if (options_.publishPeriodMs > 0.0) {
        publisher_ = std::make_unique<MetricsPublisher>();
        publisher_->addGauge("queue.depth", [this] {
            return static_cast<double>(queue_.size());
        });
        publisher_->addGauge("workers.in_flight", [this] {
            return static_cast<double>(activeWorkers());
        });
        publisher_->addGauge("workers.occupancy", [this] {
            return workers_.empty()
                       ? 0.0
                       : static_cast<double>(activeWorkers()) /
                             static_cast<double>(workers_.size());
        });
        publisher_->start(options_.publishPeriodMs);
    }
}

InferenceServer::~InferenceServer()
{
    stop(true);
}

InferenceServer::Submission
InferenceServer::submit(Tensor input, std::uint32_t stream,
                        RuntimeClock::time_point deadline)
{
    Submission sub;
    if (stopped_.load(std::memory_order_acquire))
        return sub;

    // Chaos probe: an armed fault plan can force queue-full rejections
    // to exercise client backpressure handling.
    if (FaultInjector::instance().shouldFail("queue.push")) {
        metrics_.recordRejected();
        return sub;
    }

    QueueEntry entry;
    entry.request.id = nextRequestId_.fetch_add(1);
    entry.request.stream = stream;
    entry.request.deadline = deadline;
    entry.request.input = std::move(input);
    // Admission-version stamp: the registry version this request is
    // keyed against. Workers may serve it on a newer replica after a
    // hot swap, but its cache identity — and the batcher's refusal to
    // coalesce across versions — follows this stamp.
    entry.request.modelVersion = registry_.latestVersion();
    entry.enqueueTime = RuntimeClock::now();

    const std::uint64_t id = entry.request.id;
    std::future<InferResponse> future = entry.promise.get_future();

    if (solveCache_ != nullptr) {
        // Stamp the cache identities onto the request, then try the
        // exact tier right here on the admission path: a ready value
        // answers without ever touching the queue, and an in-flight
        // identical solve absorbs this request as a follower. The
        // digest is per registry version, so a weight hot swap moves
        // new admissions into a fresh key space — a post-swap request
        // can never hit a pre-swap entry.
        const Hash128 version_digest =
            digestFor(entry.request.modelVersion);
        if (options_.cache.exactCapacity > 0) {
            StreamHasher hasher;
            hasher.update(version_digest.hi);
            hasher.update(version_digest.lo);
            hashTensorInto(hasher, entry.request.input);
            entry.request.cacheKey = hasher.digest();
        }
        if (options_.cache.warmCapacity > 0) {
            // Mixed with the version digest so two servers' (or two
            // versions') signature spaces do not alias; 0 stays the
            // "no signature" sentinel.
            entry.request.warmSig = mix64(
                coarseSignature(entry.request.input,
                                options_.cache.signatureQuantum) ^
                version_digest.lo);
        }
        if (entry.request.cacheKey.valid()) {
            Tensor hit;
            switch (solveCache_->lookupOrAttach(entry.request.cacheKey,
                                                entry, hit)) {
              case SolveCache::Lookup::Hit:
                metrics_.recordAdmitted();
                deliverCacheHit(0, entry, std::move(hit));
                sub.accepted = true;
                sub.id = id;
                sub.result = std::move(future);
                return sub;
              case SolveCache::Lookup::Attached:
                // The entry (promise included) now rides the pending
                // solve; the owner's publish will fulfil it.
                metrics_.recordAdmitted();
                sub.accepted = true;
                sub.id = id;
                sub.result = std::move(future);
                return sub;
              case SolveCache::Lookup::Miss:
                break; // queue and own the solve
            }
        }
    }

    if (admission_ != nullptr) {
        // Deadline-aware admission: estimate this request's completion
        // against its budget; an infeasible request (or a low-priority
        // one under brownout level 3) is shed now — before it occupies
        // a queue slot, a worker, or a batch seat. Cache hits and
        // attached followers above bypass the check: their marginal
        // cost is a tensor copy, not a solve.
        const double budget_ms = toMs(deadline - entry.enqueueTime);
        const AdmissionController::Verdict verdict = admission_->admit(
            shapeKeyOf(entry.request.input), stream, budget_ms,
            queue_.size());
        if (verdict.shed) {
            metrics_.recordAdmitted();
            shedEntry(entry, verdict.estimateMs);
            sub.accepted = true;
            sub.id = id;
            sub.result = std::move(future);
            return sub;
        }
    }

    const Hash128 key = entry.request.cacheKey; // survives the push
    // Announce ownership BEFORE the entry becomes visible to workers.
    // In the reverse order a worker can pop the entry and terminate it
    // uncacheably (lapsed deadline, failed solve) before registration
    // runs; that terminal's retraction finds nothing, and the late
    // registration then installs a pending entry with no solve behind
    // it — every later identical request would attach to it and hang.
    // Registering first closes that window: once the entry is queued,
    // any terminal path can see (and retract) the registration. A
    // `false` return means another identical request already owns the
    // key — harmless; both solve, both publish.
    const bool registered = key.valid() && solveCache_->registerPending(key);
    if (!queue_.tryPush(entry)) {
        // The push was refused, so our registration has no solve behind
        // it: retract it. Followers that attached inside the tiny
        // registration window get the same backpressure verdict this
        // request is getting (re-queued if room appeared, else
        // cancelled).
        if (registered)
            redispatchFollowers(solveCache_->publishFailure(key));
        metrics_.recordRejected();
        return sub; // backpressure: accepted stays false
    }
    metrics_.recordAdmitted();
    sub.accepted = true;
    sub.id = id;
    sub.result = std::move(future);
    return sub;
}

InferenceServer::Submission
InferenceServer::submitTrainTask(TrainTask &task)
{
    Submission sub;
    if (stopped_.load(std::memory_order_acquire))
        return sub;
    ENODE_ASSERT(task.weights != nullptr, "train task without weights");
    ENODE_ASSERT(task.grads != nullptr, "train task without a grad slot");

    QueueEntry entry;
    entry.request.id = nextRequestId_.fetch_add(1);
    entry.request.stream = task.stream;
    // No deadline: under LaterStreamFirst a max() deadline loses every
    // tie within the stream, so training dispatches only when no
    // inference request of equal or higher priority is waiting.
    entry.request.input = task.input; // copy: the task survives retries
    entry.request.train = &task;
    entry.request.modelVersion = task.weights->version;
    entry.enqueueTime = RuntimeClock::now();

    const std::uint64_t id = entry.request.id;
    std::future<InferResponse> future = entry.promise.get_future();

    // Deliberately no metrics, cache, or admission interaction: the
    // inference terminal counters reconcile over inference admissions
    // only, and gradient solves are never cacheable (they mutate
    // gradient state, not just produce an output).
    if (!queue_.tryPush(entry))
        return sub; // backpressure: the service retries on its clock
    sub.accepted = true;
    sub.id = id;
    sub.result = std::move(future);
    return sub;
}

void
InferenceServer::serveTrain(std::size_t worker_id, QueueEntry &entry)
{
    Worker &worker = *workers_[worker_id];
    InFlight &flight = *inflight_[worker_id];
    TrainTask &task = *entry.request.train;
    const auto start = RuntimeClock::now();

    TraceSpan span("train.task", "train");
    span.arg("step", static_cast<double>(task.step));
    span.arg("worker", static_cast<double>(worker_id));

    trainTasks_.fetch_add(1, std::memory_order_relaxed);

    // Lazy private training replica: inference-only servers never pay
    // for it, and it keeps training scratch state (layer caches,
    // checkpoint records) strictly apart from the serving replica.
    if (worker.trainModel == nullptr) {
        worker.trainModel = modelFactory_();
        ENODE_ASSERT(worker.trainModel != nullptr,
                     "model factory returned null");
        worker.trainController =
            controllerFactory_ ? controllerFactory_()
                               : std::make_unique<FixedFactorController>();
    }
    // Sync to the step's snapshot: every task of a step trains the
    // same bytes on every worker — the root of the bitwise
    // worker-count-independence of the reduced gradient.
    if (worker.trainStep != task.step) {
        ModelRegistry::applyTo(*task.weights, *worker.trainModel);
        worker.trainStep = task.step;
    }
    worker.trainModel->zeroGrad();

    // Publish to the in-flight slot (train-flagged) so the watchdog
    // aborts a wedged training solve exactly like an inference one —
    // without feeding the inference metrics on takeover.
    {
        std::lock_guard<std::mutex> lock(flight.mutex);
        flight.samples.clear();
        flight.samples.emplace_back();
        InFlight::Sample &sample = flight.samples.back();
        sample.promise = std::move(entry.promise);
        sample.id = entry.request.id;
        sample.train = true;
        flight.active = true;
        flight.start = start;
        flight.abort.store(false, std::memory_order_relaxed);
    }

    activeWorkers_.fetch_add(1, std::memory_order_relaxed);

    // No deadline and no f-eval budget — training has all the time the
    // scheduler gives it — but the watchdog's abort flag still guards
    // against a wedged solve costing a worker.
    DeadlineGuard guard;
    guard.abortFlag = &flight.abort;

    TrainStepResult result = regressionTrainStep(
        *worker.trainModel, entry.request.input, task.target, tableau_,
        *worker.trainController, task.ivp, nullptr, &worker.acaWs, &guard);

    bool ok = result.forwardStatus == SolveStatus::Ok;
    if (ok) {
        // Harvest the gradients into the task's fixed slot. A
        // non-finite gradient fails the task: the service's reduction
        // must never ingest NaNs into the master weights.
        const auto slots = worker.trainModel->paramSlots();
        auto &grads = *task.grads;
        ENODE_ASSERT(grads.size() == slots.size(),
                     "train task grad slot count mismatch");
        for (std::size_t s = 0; s < slots.size() && ok; s++) {
            if (!slots[s].grad->isFinite())
                ok = false;
            else
                grads[s].copyFrom(*slots[s].grad);
        }
        task.loss = result.loss;
        task.forwardStats = result.forwardStats;
        task.backwardStats = result.backwardStats;
    }
    task.forwardStatus = result.forwardStatus;

    activeWorkers_.fetch_sub(1, std::memory_order_relaxed);

    const auto end = RuntimeClock::now();
    InferResponse response;
    response.id = entry.request.id;
    response.status = ok ? RequestStatus::Ok : RequestStatus::Failed;
    response.solveStatus =
        ok ? SolveStatus::Ok
           : (result.forwardStatus != SolveStatus::Ok
                  ? result.forwardStatus
                  : SolveStatus::NonFinite);
    response.queueWaitMs = toMs(start - entry.enqueueTime);
    response.solveMs = toMs(end - start);
    response.totalMs = toMs(end - entry.enqueueTime);
    response.workerId = worker_id;
    response.modelVersion = task.weights->version;
    span.arg("status", static_cast<double>(response.status));

    if (!ok)
        trainTaskFailures_.fetch_add(1, std::memory_order_relaxed);

    // Deliver through the slot: the watchdog may have taken this task
    // over while it was wedged (its Failed response wins). Training
    // terminals never touch recordCompletion — see Sample::train.
    std::promise<InferResponse> to_deliver;
    bool deliver = false;
    {
        std::lock_guard<std::mutex> lock(flight.mutex);
        flight.active = false;
        InFlight::Sample &sample = flight.samples.front();
        if (!sample.delivered) {
            sample.delivered = true;
            to_deliver = std::move(sample.promise);
            deliver = true;
        }
    }
    if (deliver)
        to_deliver.set_value(std::move(response));
}

void
InferenceServer::resume()
{
    {
        std::lock_guard<std::mutex> lock(pauseMutex_);
        paused_ = false;
    }
    pauseCv_.notify_all();
}

void
InferenceServer::stop(bool drain)
{
    if (stopped_.exchange(true, std::memory_order_acq_rel))
        return;

    std::vector<QueueEntry> leftovers = queue_.close(drain);
    resume(); // paused workers must wake to drain or exit

    const auto cancelEntry = [this](QueueEntry &entry) {
        // A full Cancelled response through recordCompletion — the
        // single terminal-state accounting path — so admitted ==
        // completed + expired + failed + cancelled holds exactly.
        InferResponse response;
        response.id = entry.request.id;
        response.status = RequestStatus::Cancelled;
        response.queueWaitMs = toMs(RuntimeClock::now() - entry.enqueueTime);
        response.totalMs = response.queueWaitMs;
        // Gradient tasks never passed recordAdmitted, so they must not
        // reach recordCompletion either — the TrainingService sees the
        // Cancelled status through its future and gives up the step.
        if (entry.request.train == nullptr) {
            response.completionIndex = nextCompletionIndex_.fetch_add(1);
            metrics_.recordCompletion(response);
        }
        entry.promise.set_value(std::move(response));
    };

    // Cancelled entries may own pending cache entries with attached
    // followers; retracting those surfaces the followers, which are
    // cancelled in the same sweep (the queue is closed, so they cannot
    // be re-dispatched).
    while (!leftovers.empty()) {
        QueueEntry entry = std::move(leftovers.back());
        leftovers.pop_back();
        if (solveCache_ != nullptr && entry.request.cacheKey.valid()) {
            std::vector<QueueEntry> followers =
                solveCache_->publishFailure(entry.request.cacheKey);
            for (QueueEntry &f : followers)
                leftovers.push_back(std::move(f));
        }
        cancelEntry(entry);
    }

    for (auto &worker : workers_)
        if (worker->thread.joinable())
            worker->thread.join();

    // Defensive sweep: every keyed request terminates through a
    // publish, so pending entries should be gone by now — but a
    // follower must never be left with an unfulfilled promise.
    if (solveCache_ != nullptr) {
        std::vector<QueueEntry> stranded = solveCache_->drainPending();
        for (QueueEntry &f : stranded)
            cancelEntry(f);
    }

    // The watchdog outlives the workers so draining solves stay
    // protected; only after the last worker exits is it retired.
    if (watchdog_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(watchdogMutex_);
            watchdogStop_ = true;
        }
        watchdogCv_.notify_all();
        watchdog_.join();
    }

    // Final gauge sample after the drain, then disarm. Disarming keeps
    // every recorded event exportable (Tracer::exportChromeTrace); the
    // next armed server discards them.
    if (publisher_ != nullptr)
        publisher_->stop();
    if (options_.traceEnabled)
        Tracer::instance().disarm();
}

std::string
InferenceServer::metricsText() const
{
    std::string text = prometheusText(metrics_.snapshot());
    StatGroup queue_stats("queue");
    queue_stats.set("queue.depth", static_cast<double>(queue_.size()));
    queue_stats.set("queue.peak_depth",
                    static_cast<double>(queue_.peakSize()));
    queue_stats.set("queue.rejected",
                    static_cast<double>(queue_.rejected()));
    queue_stats.set("queue.closed_rejected",
                    static_cast<double>(queue_.closedRejected()));
    text += prometheusText(queue_stats);
    if (solveCache_ != nullptr)
        text += prometheusText(solveCache_->snapshot());
    if (admission_ != nullptr)
        text += prometheusText(admission_->snapshot());
    if (publisher_ != nullptr)
        text += prometheusText(publisher_->snapshot());
    text += prometheusText(registry_.snapshotStats());
    StatGroup train_stats("train");
    train_stats.set("train.tasks", static_cast<double>(trainTasks_.load(
                                       std::memory_order_relaxed)));
    train_stats.set("train.task_failures",
                    static_cast<double>(trainTaskFailures_.load(
                        std::memory_order_relaxed)));
    text += prometheusText(train_stats);
    return text;
}

Hash128
InferenceServer::digestFor(std::uint64_t version) const
{
    if (!configDigest_.valid())
        return Hash128{}; // caching off: requests carry no key
    {
        std::lock_guard<std::mutex> lock(digestMutex_);
        if (digestVersion_ == version)
            return digestCache_;
    }
    auto snap = registry_.at(version);
    if (snap == nullptr)
        snap = registry_.latest(); // evicted: the live one is what serves
    // Plain combination of the two digests; the version *number* is
    // deliberately absent so republished identical bytes keep their
    // cache identity.
    Hash128 digest;
    digest.hi = mix64(configDigest_.hi ^ snap->paramsDigest.hi);
    digest.lo = mix64(configDigest_.lo ^ snap->paramsDigest.lo);
    {
        std::lock_guard<std::mutex> lock(digestMutex_);
        digestVersion_ = version;
        digestCache_ = digest;
    }
    return digest;
}

Hash128
InferenceServer::modelDigest() const
{
    return digestFor(registry_.latestVersion());
}

void
InferenceServer::maybeSwapReplica(std::size_t worker_id)
{
    Worker &worker = *workers_[worker_id];
    const std::uint64_t live = registry_.latestVersion();
    if (live == worker.replicaVersion)
        return;
    auto snap = registry_.at(live);
    if (snap == nullptr)
        snap = registry_.latest(); // `live` evicted by an even newer publish
    TraceSpan span("model.swap", "serve");
    span.arg("worker", static_cast<double>(worker_id));
    span.arg("version", static_cast<double>(snap->version));
    ModelRegistry::applyTo(*snap, *worker.model);
    worker.replicaVersion = snap->version;
    registry_.noteSwapApplied();
}

void
InferenceServer::deliverCacheHit(std::size_t worker_id, QueueEntry &entry,
                                 Tensor value)
{
    const auto now = RuntimeClock::now();
    InferResponse response;
    response.id = entry.request.id;
    response.queueWaitMs = toMs(now - entry.enqueueTime);
    response.totalMs = response.queueWaitMs;
    response.workerId = worker_id;
    // A cached value is the admission version's bytes by construction
    // (the key embeds that version's digest).
    response.modelVersion = entry.request.modelVersion;
    response.completionIndex = nextCompletionIndex_.fetch_add(1);
    if (now > entry.request.deadline) {
        // Same terminal status the request would have received from the
        // queue: a follower (or queued hit) whose deadline lapsed while
        // it waited is DeadlineExceeded, not Ok-but-late — the cached
        // value does not buy back deadline enforcement.
        response.status = RequestStatus::DeadlineExceeded;
        response.deadlineMet = false;
    } else {
        TraceSpan span("request.cache_hit", "serve");
        span.arg("id", static_cast<double>(entry.request.id));
        response.status = RequestStatus::Ok;
        response.cacheHit = true;
        response.output = std::move(value);
        response.deadlineMet = true;
    }
    metrics_.recordCompletion(response);
    entry.promise.set_value(std::move(response));
}

void
InferenceServer::deliverFollowers(std::size_t worker_id,
                                  std::vector<QueueEntry> followers,
                                  const Tensor &value)
{
    for (QueueEntry &f : followers)
        deliverCacheHit(worker_id, f, value); // copies (pooled storage)
}

void
InferenceServer::redispatchFollowers(std::vector<QueueEntry> followers)
{
    for (QueueEntry &f : followers) {
        // Back into the queue as an ordinary request: it solves for
        // itself and publishes its own outcome. A queue that refuses
        // (closed at shutdown, or full) cancels the request — the
        // backpressure verdict it would have received at admission.
        if (queue_.tryPush(f))
            continue;
        InferResponse response;
        response.id = f.request.id;
        response.status = RequestStatus::Cancelled;
        response.queueWaitMs = toMs(RuntimeClock::now() - f.enqueueTime);
        response.totalMs = response.queueWaitMs;
        response.completionIndex = nextCompletionIndex_.fetch_add(1);
        metrics_.recordCompletion(response);
        f.promise.set_value(std::move(response));
    }
}

void
InferenceServer::retractPending(const InferRequest &request)
{
    if (solveCache_ == nullptr || !request.cacheKey.valid())
        return;
    redispatchFollowers(solveCache_->publishFailure(request.cacheKey));
}

void
InferenceServer::waitWhilePaused()
{
    std::unique_lock<std::mutex> lock(pauseMutex_);
    pauseCv_.wait(lock, [this] { return !paused_; });
}

void
InferenceServer::workerMain(std::size_t worker_id)
{
    Tracer::instance().setThreadName("worker-" +
                                     std::to_string(worker_id));
    // Kernel tiles split on the shared pool for this thread's lifetime;
    // with width 1 the scope is inert and kernels run serial inline.
    IntraOpScope intra_op(intraOpPool_.get(), intraOpWidth_);
    if (batcher_ != nullptr) {
        CollectedBatch batch;
        for (;;) {
            waitWhilePaused();
            if (!batcher_->collect(batch))
                break; // closed and drained (stash included)
            serveBatch(worker_id, batch);
        }
        return;
    }
    QueueEntry entry;
    for (;;) {
        waitWhilePaused();
        if (!queue_.pop(entry))
            break; // closed and drained
        serveOne(worker_id, entry);
    }
}

NodeForwardResult
InferenceServer::fallbackForward(Worker &worker, const Tensor &input)
{
    NodeModel &model = *worker.model;
    const double T = model.layerTime();
    const double dt =
        T / static_cast<double>(std::max<std::size_t>(
                1, options_.degrade.fallbackSteps));
    NodeForwardResult result;
    Tensor h = input;
    for (std::size_t i = 0; i < model.numLayers(); i++) {
        EmbeddedNetOde ode(model.net(i));
        h = integrateFixed(ode, tableau_, h, 0.0, T, dt);
        result.totalStats.fEvals += ode.evalCount();
        if (!h.isFinite()) {
            // Even the coarse fallback is poisoned: the request fails
            // rather than shipping a non-finite payload.
            result.status = SolveStatus::NonFinite;
            break;
        }
    }
    result.output = std::move(h);
    return result;
}

void
InferenceServer::serveOne(std::size_t worker_id, QueueEntry &entry)
{
    if (entry.request.train != nullptr) {
        serveTrain(worker_id, entry);
        return;
    }
    // Dispatch boundary: adopt the latest published weights before the
    // solve starts (never mid-solve — the swap touches only this
    // worker's private replica between requests).
    maybeSwapReplica(worker_id);
    Worker &worker = *workers_[worker_id];
    InFlight &flight = *inflight_[worker_id];
    const auto start = RuntimeClock::now();
    const double queue_wait_ms = toMs(start - entry.enqueueTime);

    // The queue-wait span is retroactive: only at dequeue do we know
    // how long the request sat, so the event is stamped backwards from
    // the admission timestamp.
    Tracer &tracer = Tracer::instance();
    if (tracer.armed()) {
        TraceEvent wait;
        wait.name = "request.queue_wait";
        wait.category = "serve";
        wait.startNs = tracer.toNs(entry.enqueueTime);
        wait.durNs =
            std::max<std::int64_t>(0, tracer.toNs(start) - wait.startNs);
        wait.numArgs = 2;
        wait.args[0] = {"id", static_cast<double>(entry.request.id)};
        wait.args[1] = {"stream",
                        static_cast<double>(entry.request.stream)};
        tracer.record(wait);
    }
    TraceSpan serve_span("request.serve", "serve");
    serve_span.arg("id", static_cast<double>(entry.request.id));
    serve_span.arg("stream", static_cast<double>(entry.request.stream));
    serve_span.arg("worker", static_cast<double>(worker_id));

    // Every dequeue feeds the brownout monitor: observed queue delay
    // plus the pool occupancy at this instant. The observing worker
    // counts itself — it just took work, it is not idle capacity — or
    // a single-worker pool could never reach the occupancy floor.
    if (admission_ != nullptr)
        admission_->observeQueueDelay(
            queue_wait_ms,
            std::min(1.0, static_cast<double>(activeWorkers() + 1) /
                              static_cast<double>(workers_.size())));

    // A request that has already missed its deadline gets a structured
    // failure now instead of a full solve whose response could only
    // arrive late.
    if (start > entry.request.deadline) {
        retractPending(entry.request); // an expired owner frees its followers
        InferResponse response;
        response.id = entry.request.id;
        response.status = RequestStatus::DeadlineExceeded;
        response.queueWaitMs = queue_wait_ms;
        response.totalMs = queue_wait_ms;
        response.deadlineMet = false;
        response.workerId = worker_id;
        response.completionIndex = nextCompletionIndex_.fetch_add(1);
        serve_span.arg("status",
                       static_cast<double>(RequestStatus::DeadlineExceeded));
        metrics_.recordCompletion(response);
        entry.promise.set_value(std::move(response));
        return;
    }

    // Dispatch-time cache screen: the key may have become ready while
    // this request sat in the queue (another owner finished first).
    if (solveCache_ != nullptr && entry.request.cacheKey.valid()) {
        Tensor cached;
        if (solveCache_->tryServe(entry.request.cacheKey, cached)) {
            serve_span.arg("cache_hit", 1.0);
            deliverCacheHit(worker_id, entry, std::move(cached));
            return;
        }
    }

    activeWorkers_.fetch_add(1, std::memory_order_relaxed);

    // Publish the in-flight record so the watchdog can see (and if
    // needed, take over) this request while the solve runs.
    {
        std::lock_guard<std::mutex> lock(flight.mutex);
        flight.samples.clear();
        flight.samples.emplace_back();
        InFlight::Sample &sample = flight.samples.back();
        sample.promise = std::move(entry.promise);
        sample.id = entry.request.id;
        sample.deadline = entry.request.deadline;
        sample.queueWaitMs = queue_wait_ms;
        flight.active = true;
        flight.start = start;
        flight.abort.store(false, std::memory_order_relaxed);
    }

    // Chaos probe: a stall here models a solve wedging inside the
    // worker — the watchdog must fail the request while this thread
    // sleeps, and the worker must recover afterwards.
    FaultInjector::instance().maybeStall("worker.stall");

    DeadlineGuard guard;
    guard.deadline = entry.request.deadline;
    guard.maxFEvals = options_.degrade.maxFEvalsPerRequest;
    guard.abortFlag = &flight.abort;

    // Attempt the configured solve, then walk the degradation ladder.
    // One span per rung taken, so a trace shows exactly which rungs a
    // request climbed and what each returned.
    IvpStats aggregate;
    std::uint32_t retries = 0;
    // Warm tier on: the rung-0 solve runs through the warm-start
    // decorator, replaying a cached dt-schedule when a statistically
    // similar input has solved cleanly before, and recording this
    // solve's accepted schedule either way. Ladder rungs below keep
    // using the wrapped controller directly — degraded solves neither
    // replay nor populate the schedule cache.
    StepController *rung0 = worker.controller.get();
    if (worker.warm != nullptr) {
        const DtSchedule *replay = nullptr;
        if (solveCache_->warmLookup(entry.request.warmSig,
                                    worker.warmScratch))
            replay = &worker.warmScratch;
        worker.warm->beginSolve(replay);
        rung0 = worker.warm.get();
    }
    // Brownout level >= 1: low-priority streams solve at proactively
    // relaxed tolerance — the voluntary analogue of the ladder's rung-1
    // retry, taken before anything fails. The ladder rungs below stay
    // on the configured tolerance: degradation policy is unchanged.
    IvpOptions rung0_opts = options_.ivp;
    const bool brownout_relaxed =
        admission_ != nullptr &&
        admission_->relaxTolerance(entry.request.stream);
    if (brownout_relaxed) {
        rung0_opts.tolerance *= options_.overload.brownoutToleranceFactor;
        admission_->noteRelaxed();
        serve_span.arg("brownout_relaxed", 1.0);
    }
    NodeForwardResult fwd;
    {
        TraceSpan rung_span("request.solve", "serve");
        rung_span.arg("rung", 0.0);
        fwd = worker.model->forward(entry.request.input, tableau_,
                                    *rung0, rung0_opts,
                                    nullptr, &guard);
        rung_span.arg("status", static_cast<double>(fwd.status));
    }
    aggregate.accumulate(fwd.totalStats);
    const SolveStatus origin = fwd.status;

    if (fwd.status != SolveStatus::Ok && options_.degrade.enabled &&
        !flight.abort.load(std::memory_order_acquire)) {
        if (fwd.status == SolveStatus::NonFinite ||
            fwd.status == SolveStatus::StepUnderflow) {
            // Rung 1: one retry at relaxed tolerance — FP16 overflow
            // and minDt underflow are frequently tolerance-induced.
            TraceSpan rung_span("request.retry", "serve");
            rung_span.arg("rung", 1.0);
            IvpOptions relaxed = options_.ivp;
            relaxed.tolerance *= options_.degrade.retryToleranceFactor;
            retries = 1;
            fwd = worker.model->forward(entry.request.input, tableau_,
                                        *worker.controller, relaxed,
                                        nullptr, &guard);
            aggregate.accumulate(fwd.totalStats);
            rung_span.arg("status", static_cast<double>(fwd.status));
        }
        if (fwd.status != SolveStatus::Ok &&
            !flight.abort.load(std::memory_order_acquire)) {
            // Rung 2: fixed-step coarse integration. Deterministic
            // cost, no stepsize search to diverge.
            TraceSpan rung_span("request.fallback", "serve");
            rung_span.arg("rung", 2.0);
            fwd = fallbackForward(worker, entry.request.input);
            aggregate.accumulate(fwd.totalStats);
            rung_span.arg("status", static_cast<double>(fwd.status));
        }
    }

    const auto end = RuntimeClock::now();
    InferResponse response;
    response.id = entry.request.id;
    response.stats = aggregate;
    response.queueWaitMs = queue_wait_ms;
    response.solveMs = toMs(end - start);
    response.totalMs = toMs(end - entry.enqueueTime);
    response.deadlineMet = end <= entry.request.deadline;
    response.workerId = worker_id;
    response.retries = retries;
    response.warmStarted =
        worker.warm != nullptr && worker.warm->replayedPoints() > 0;
    response.brownoutRelaxed = brownout_relaxed;
    response.modelVersion = worker.replicaVersion;
    // The final screen: no response ever carries a non-finite value.
    if (fwd.status == SolveStatus::Ok && fwd.output.isFinite()) {
        response.status = RequestStatus::Ok;
        response.degraded = origin != SolveStatus::Ok;
        response.solveStatus = origin;
        response.output = std::move(fwd.output);
    } else {
        response.status = RequestStatus::Failed;
        // Every failure carries a non-Ok class; a non-finite payload
        // behind an Ok status (cannot happen today — the solver screens
        // accepted states — but this screen is the last line) counts as
        // NonFinite.
        response.solveStatus = origin != SolveStatus::Ok ? origin
                               : fwd.status != SolveStatus::Ok
                                   ? fwd.status
                                   : SolveStatus::NonFinite;
    }
    response.completionIndex = nextCompletionIndex_.fetch_add(1);

    serve_span.arg("status", static_cast<double>(response.status));
    if (response.retries > 0 || response.degraded)
        serve_span.arg("rungs", response.degraded ? 2.0 : 1.0);

    // Feed the admission cost model with the realized per-request
    // service time, keyed by input shape.
    if (admission_ != nullptr)
        admission_->observeSolve(shapeKeyOf(entry.request.input),
                                 response.solveMs, 1);

    activeWorkers_.fetch_sub(1, std::memory_order_relaxed);

    // Deliver unless the watchdog already failed this request while we
    // were solving (its response wins; ours is discarded).
    std::promise<InferResponse> to_deliver;
    bool deliver = false;
    {
        std::lock_guard<std::mutex> lock(flight.mutex);
        flight.active = false;
        InFlight::Sample &sample = flight.samples.front();
        if (!sample.delivered) {
            sample.delivered = true;
            to_deliver = std::move(sample.promise);
            deliver = true;
        }
    }

    // Cache bookkeeping at the terminal: only a *clean* solve — Ok,
    // no ladder rung, no retry, and actually delivered by this worker
    // (a watchdog takeover means the solve was aborted mid-flight) —
    // may populate either tier. Anything else retracts the pending
    // entry so followers go solve for themselves. An armed fault
    // injector also blocks caching outright: a transiently-corrupted
    // solve can heal into an Ok response whose bytes a fresh solve
    // would not reproduce.
    if (solveCache_ != nullptr) {
        // The cache.publish probe models a fault between the solve and
        // the cache write: the solve succeeded, but the publish is
        // lost, so followers must redispatch and solve for themselves.
        // Probed only for keyed requests so hit counts match publish
        // attempts. A brownout-relaxed solve is likewise never cached:
        // the cache key embeds the configured tolerance, not the
        // relaxed one this answer was computed at.
        const bool publish_fault =
            entry.request.cacheKey.valid() &&
            FaultInjector::instance().shouldFail("cache.publish");
        // A hot swap between admission and dispatch means this solve
        // ran on different weights than the ones the request's cache
        // key (and warm signature) were derived from: publishing would
        // poison the old version's key space with new-version bytes,
        // so the pending entry is retracted and followers — which were
        // promised old-version results — re-dispatch instead.
        const bool version_match =
            entry.request.modelVersion == worker.replicaVersion;
        const bool clean = deliver &&
                           response.status == RequestStatus::Ok &&
                           !response.degraded && response.retries == 0 &&
                           !brownout_relaxed && !publish_fault &&
                           version_match &&
                           !FaultInjector::instance().armed();
        if (entry.request.cacheKey.valid()) {
            if (clean) {
                deliverFollowers(
                    worker_id,
                    solveCache_->publishSuccess(entry.request.cacheKey,
                                                response.output),
                    response.output);
            } else {
                retractPending(entry.request);
            }
        }
        if (clean && worker.warm != nullptr)
            solveCache_->warmInsert(entry.request.warmSig, *worker.warm);
    }

    if (deliver) {
        metrics_.recordCompletion(response);
        to_deliver.set_value(std::move(response));
    }
}

void
InferenceServer::shedEntry(QueueEntry &entry, double estimateMs)
{
    InferResponse response;
    response.id = entry.request.id;
    response.status = RequestStatus::Shed;
    response.deadlineMet = false;
    response.totalMs = toMs(RuntimeClock::now() - entry.enqueueTime);
    response.completionIndex = nextCompletionIndex_.fetch_add(1);
    Tracer::instance().instant(
        "request.shed", "overload",
        {{"id", static_cast<double>(entry.request.id)},
         {"stream", static_cast<double>(entry.request.stream)},
         {"estimate_ms", estimateMs}});
    metrics_.recordCompletion(response);
    entry.promise.set_value(std::move(response));
}

void
InferenceServer::expireEntry(std::size_t worker_id, QueueEntry &entry)
{
    // Same structured failure the solo path gives a request whose
    // deadline lapsed in the queue — here it may also have lapsed
    // inside the batcher's collect window. Never solved either way.
    retractPending(entry.request);
    InferResponse response;
    response.id = entry.request.id;
    response.status = RequestStatus::DeadlineExceeded;
    response.queueWaitMs = toMs(RuntimeClock::now() - entry.enqueueTime);
    response.totalMs = response.queueWaitMs;
    response.deadlineMet = false;
    response.workerId = worker_id;
    response.completionIndex = nextCompletionIndex_.fetch_add(1);
    // An expiry is the strongest queue-delay signal the brownout
    // monitor can get: this request waited itself to death. The worker
    // sweeping it counts as busy, as on the serve paths.
    if (admission_ != nullptr)
        admission_->observeQueueDelay(
            response.queueWaitMs,
            std::min(1.0, static_cast<double>(activeWorkers() + 1) /
                              static_cast<double>(workers_.size())));
    metrics_.recordCompletion(response);
    entry.promise.set_value(std::move(response));
}

void
InferenceServer::serveBatch(std::size_t worker_id, CollectedBatch &batch)
{
    maybeSwapReplica(worker_id);
    Worker &worker = *workers_[worker_id];
    InFlight &flight = *inflight_[worker_id];
    for (auto &entry : batch.expired)
        expireEntry(worker_id, entry);
    // Requests the batcher screened as cache-ready: answer each from
    // the cache now, re-checking under the shard lock — the entry may
    // have been evicted since the screen, in which case the request
    // falls back to an ordinary solo solve on this worker.
    for (auto &entry : batch.cacheHits) {
        Tensor cached;
        if (solveCache_ != nullptr &&
            solveCache_->tryServe(entry.request.cacheKey, cached))
            deliverCacheHit(worker_id, entry, std::move(cached));
        else
            serveOne(worker_id, entry);
    }
    if (batch.entries.empty())
        return;

    // Training tasks ship solo from the batcher (never coalesced, no
    // collect window); route them past the inference batch machinery.
    if (batch.entries.size() == 1 &&
        batch.entries[0].request.train != nullptr) {
        serveTrain(worker_id, batch.entries[0]);
        return;
    }

    const std::size_t n = batch.entries.size();
    ENODE_ASSERT(n <= worker.batchControllers.size(),
                 "batch larger than the configured maxBatch");
    const auto start = RuntimeClock::now();

    // The collect window and per-request queue waits are retroactive
    // spans: their extent is only known once the batch dispatches.
    Tracer &tracer = Tracer::instance();
    if (tracer.armed()) {
        TraceEvent collect;
        collect.name = "batch.collect";
        collect.category = "serve";
        collect.startNs = tracer.toNs(batch.firstPop);
        collect.durNs =
            std::max<std::int64_t>(0, tracer.toNs(start) - collect.startNs);
        collect.numArgs = 3;
        collect.args[0] = {"batch", static_cast<double>(n)};
        collect.args[1] = {"expired",
                           static_cast<double>(batch.expired.size())};
        collect.args[2] = {"worker", static_cast<double>(worker_id)};
        tracer.record(collect);
        for (auto &entry : batch.entries) {
            TraceEvent wait;
            wait.name = "request.queue_wait";
            wait.category = "serve";
            wait.startNs = tracer.toNs(entry.enqueueTime);
            wait.durNs = std::max<std::int64_t>(
                0, tracer.toNs(start) - wait.startNs);
            wait.numArgs = 2;
            wait.args[0] = {"id", static_cast<double>(entry.request.id)};
            wait.args[1] = {"stream",
                            static_cast<double>(entry.request.stream)};
            tracer.record(wait);
        }
    }

    metrics_.recordBatchDispatch(n);
    metrics_.recordCoalesceWait(batch.collectWaitMs);

    activeWorkers_.fetch_add(1, std::memory_order_relaxed);

    // Per-sample solve inputs. Each sample gets its own deadline guard
    // (the batched solver drops a sample whose deadline passes and
    // keeps integrating the rest), and every guard shares the slot's
    // abort flag so a watchdog trip stops the whole batched solve at
    // its next accepted step.
    std::vector<Tensor> xs;
    xs.reserve(n);
    std::vector<double> queue_wait_ms(n);
    std::vector<DeadlineGuard> guard_storage(n);
    std::vector<SolveGuard *> guards(n);
    std::vector<StepController *> controllers(n);
    const double occupancy_now =
        static_cast<double>(activeWorkers()) /
        static_cast<double>(workers_.size());
    for (std::size_t i = 0; i < n; i++) {
        QueueEntry &entry = batch.entries[i];
        xs.push_back(entry.request.input);
        queue_wait_ms[i] = toMs(start - entry.enqueueTime);
        // Every dequeue feeds the brownout monitor, batched or solo.
        if (admission_ != nullptr)
            admission_->observeQueueDelay(queue_wait_ms[i], occupancy_now);
        guard_storage[i].deadline = entry.request.deadline;
        guard_storage[i].maxFEvals = options_.degrade.maxFEvalsPerRequest;
        guard_storage[i].abortFlag = &flight.abort;
        guards[i] = &guard_storage[i];
        // Warm tier on: each sample's slot controller is its warm-start
        // decorator, armed with the schedule cached for that sample's
        // own input signature — per-sample warm-starting inside one
        // batched solve, exactly as each would warm-start solo.
        if (!worker.batchWarm.empty()) {
            const DtSchedule *replay = nullptr;
            if (solveCache_->warmLookup(entry.request.warmSig,
                                        worker.batchWarmScratch[i]))
                replay = &worker.batchWarmScratch[i];
            worker.batchWarm[i]->beginSolve(replay);
            controllers[i] = worker.batchWarm[i].get();
        } else {
            controllers[i] = worker.batchControllers[i].get();
        }
    }

    // Publish every sample to the in-flight slot so the hang watchdog
    // covers batched serving exactly like solo: a wedged batched solve
    // is failed per sample (DeadlineExceeded) and flagged to abort.
    {
        std::lock_guard<std::mutex> lock(flight.mutex);
        flight.samples.clear();
        flight.samples.resize(n);
        for (std::size_t i = 0; i < n; i++) {
            QueueEntry &entry = batch.entries[i];
            flight.samples[i].promise = std::move(entry.promise);
            flight.samples[i].id = entry.request.id;
            flight.samples[i].deadline = entry.request.deadline;
            flight.samples[i].queueWaitMs = queue_wait_ms[i];
        }
        flight.active = true;
        flight.start = start;
        flight.abort.store(false, std::memory_order_relaxed);
    }

    // Chaos probe: same wedged-solve scenario the solo path defends
    // against — the watchdog must fail the whole batch while this
    // thread sleeps, and the worker must recover afterwards.
    FaultInjector::instance().maybeStall("worker.stall");

    // A batched solve shares one IvpOptions across its samples, so the
    // brownout tolerance relaxation applies only when *every* sample is
    // a low-priority stream — a mixed batch solves at the configured
    // tolerance rather than degrading a high-priority rider.
    IvpOptions batch_opts = options_.ivp;
    bool brownout_relaxed = admission_ != nullptr;
    for (std::size_t i = 0; brownout_relaxed && i < n; i++)
        brownout_relaxed =
            admission_->relaxTolerance(batch.entries[i].request.stream);
    if (brownout_relaxed) {
        batch_opts.tolerance *= options_.overload.brownoutToleranceFactor;
        for (std::size_t i = 0; i < n; i++)
            admission_->noteRelaxed();
    }

    BatchedForwardResult fwd;
    {
        TraceSpan solve_span("batch.solve", "serve");
        solve_span.arg("batch", static_cast<double>(n));
        solve_span.arg("worker", static_cast<double>(worker_id));
        if (brownout_relaxed)
            solve_span.arg("brownout_relaxed", 1.0);
        fwd = worker.model->forwardBatched(xs, tableau_, controllers,
                                           batch_opts, &guards);
    }
    const double batch_solve_ms = toMs(RuntimeClock::now() - start);

    // One observation covering the whole dispatch: the cost model
    // divides by the batch size to recover per-request service time.
    if (admission_ != nullptr)
        admission_->observeSolve(shapeKeyOf(batch.entries[0].request.input),
                                 batch_solve_ms, n);

    // Per-sample verdicts and, for the failures, the same degradation
    // ladder the solo path walks — one sample at a time, so a poisoned
    // sample retries alone while its batchmates' responses ship clean.
    bool any_ok = false;
    bool any_failed = false;
    for (std::size_t i = 0; i < n; i++) {
        QueueEntry &entry = batch.entries[i];
        IvpStats aggregate = fwd.stats[i];
        Tensor output = std::move(fwd.outputs[i]);
        SolveStatus status = fwd.status[i];
        const SolveStatus origin = status;
        std::uint32_t retries = 0;

        if (status != SolveStatus::Ok && options_.degrade.enabled &&
            !flight.abort.load(std::memory_order_acquire)) {
            if (status == SolveStatus::NonFinite ||
                status == SolveStatus::StepUnderflow) {
                TraceSpan rung_span("request.retry", "serve");
                rung_span.arg("rung", 1.0);
                rung_span.arg("id", static_cast<double>(entry.request.id));
                IvpOptions relaxed = options_.ivp;
                relaxed.tolerance *= options_.degrade.retryToleranceFactor;
                retries = 1;
                NodeForwardResult solo = worker.model->forward(
                    entry.request.input, tableau_, *worker.controller,
                    relaxed, nullptr, &guard_storage[i]);
                aggregate.accumulate(solo.totalStats);
                status = solo.status;
                output = std::move(solo.output);
                rung_span.arg("status", static_cast<double>(status));
            }
            if (status != SolveStatus::Ok) {
                TraceSpan rung_span("request.fallback", "serve");
                rung_span.arg("rung", 2.0);
                rung_span.arg("id", static_cast<double>(entry.request.id));
                NodeForwardResult solo =
                    fallbackForward(worker, entry.request.input);
                aggregate.accumulate(solo.totalStats);
                status = solo.status;
                output = std::move(solo.output);
                rung_span.arg("status", static_cast<double>(status));
            }
        }

        const auto end = RuntimeClock::now();
        InferResponse response;
        response.id = entry.request.id;
        response.stats = aggregate;
        response.queueWaitMs = queue_wait_ms[i];
        response.solveMs =
            retries > 0 || status != origin
                ? toMs(end - start)
                : batch_solve_ms; // no ladder: the shared batch solve
        response.totalMs = toMs(end - entry.enqueueTime);
        response.deadlineMet = end <= entry.request.deadline;
        response.workerId = worker_id;
        response.retries = retries;
        response.batchSize = n;
        response.warmStarted = !worker.batchWarm.empty() &&
                               worker.batchWarm[i]->replayedPoints() > 0;
        response.brownoutRelaxed = brownout_relaxed;
        response.modelVersion = worker.replicaVersion;
        // Same final screen as the solo path: no response ever carries
        // a non-finite value.
        if (status == SolveStatus::Ok && output.isFinite()) {
            response.status = RequestStatus::Ok;
            response.degraded = origin != SolveStatus::Ok;
            response.solveStatus = origin;
            response.output = std::move(output);
        } else {
            response.status = RequestStatus::Failed;
            response.solveStatus = origin != SolveStatus::Ok
                                       ? origin
                                       : status != SolveStatus::Ok
                                             ? status
                                             : SolveStatus::NonFinite;
        }

        // Deliver through the in-flight slot: the watchdog may already
        // have failed this sample while the batch was wedged, in which
        // case its response won and ours is discarded unrecorded.
        std::promise<InferResponse> to_deliver;
        bool deliver = false;
        {
            std::lock_guard<std::mutex> lock(flight.mutex);
            InFlight::Sample &sample = flight.samples[i];
            if (!sample.delivered) {
                sample.delivered = true;
                to_deliver = std::move(sample.promise);
                deliver = true;
            }
        }

        // Per-sample cache bookkeeping, same cleanliness gate as the
        // solo path. A watchdog-taken or ladder-recovered sample never
        // populates either tier, so one poisoned batchmate cannot
        // contaminate the cache for anyone — its followers simply
        // re-dispatch and solve for themselves.
        if (solveCache_ != nullptr) {
            const bool publish_fault =
                entry.request.cacheKey.valid() &&
                FaultInjector::instance().shouldFail("cache.publish");
            // Same version guard as the solo path: a solve that ran on
            // swapped weights must not publish under an older version's
            // cache key or warm signature.
            const bool version_match =
                entry.request.modelVersion == worker.replicaVersion;
            const bool clean = deliver &&
                               response.status == RequestStatus::Ok &&
                               !response.degraded &&
                               response.retries == 0 &&
                               !brownout_relaxed && !publish_fault &&
                               version_match &&
                               !FaultInjector::instance().armed();
            if (entry.request.cacheKey.valid()) {
                if (clean) {
                    deliverFollowers(
                        worker_id,
                        solveCache_->publishSuccess(
                            entry.request.cacheKey, response.output),
                        response.output);
                } else {
                    retractPending(entry.request);
                }
            }
            if (clean && !worker.batchWarm.empty())
                solveCache_->warmInsert(entry.request.warmSig,
                                        *worker.batchWarm[i]);
        }

        if (deliver) {
            if (response.status == RequestStatus::Ok)
                any_ok = true;
            else
                any_failed = true;
            response.completionIndex = nextCompletionIndex_.fetch_add(1);
            metrics_.recordCompletion(response);
            to_deliver.set_value(std::move(response));
        } else {
            any_failed = true; // watchdog responses are always Failed
        }
    }
    {
        std::lock_guard<std::mutex> lock(flight.mutex);
        flight.active = false;
    }
    if (any_ok && any_failed)
        metrics_.recordPartialFailure();

    activeWorkers_.fetch_sub(1, std::memory_order_relaxed);
}

void
InferenceServer::watchdogMain()
{
    Tracer::instance().setThreadName("watchdog");
    const auto threshold = std::chrono::duration<double, std::milli>(
        options_.degrade.watchdogMs);
    // Poll a few times per threshold, bounded so tiny thresholds do
    // not busy-spin and huge ones still notice shutdown promptly.
    const auto poll = std::chrono::milliseconds(std::min<std::int64_t>(
        20, std::max<std::int64_t>(
                1, static_cast<std::int64_t>(options_.degrade.watchdogMs /
                                             4.0))));
    std::unique_lock<std::mutex> lock(watchdogMutex_);
    while (!watchdogCv_.wait_for(lock, poll,
                                 [this] { return watchdogStop_; })) {
        const auto now = RuntimeClock::now();
        for (std::size_t i = 0; i < inflight_.size(); i++) {
            InFlight &flight = *inflight_[i];
            // One entry per sample the watchdog takes over: the whole
            // dispatch on a fresh trip, or just the stragglers if the
            // worker raced ahead delivering part of a batch.
            struct Failure
            {
                std::promise<InferResponse> promise;
                InferResponse response;
                bool train = false;
            };
            std::vector<Failure> failures;
            std::size_t batch_size = 1;
            {
                std::lock_guard<std::mutex> slot(flight.mutex);
                if (flight.active && now - flight.start > threshold) {
                    batch_size = flight.samples.size();
                    for (InFlight::Sample &sample : flight.samples) {
                        if (sample.delivered)
                            continue;
                        sample.delivered = true;
                        Failure f;
                        f.promise = std::move(sample.promise);
                        f.response.id = sample.id;
                        f.response.queueWaitMs = sample.queueWaitMs;
                        f.response.solveMs = toMs(now - flight.start);
                        f.response.totalMs =
                            sample.queueWaitMs + f.response.solveMs;
                        f.response.deadlineMet = now <= sample.deadline;
                        f.train = sample.train;
                        failures.push_back(std::move(f));
                    }
                    // Cooperative kill: the solve guards see this at
                    // their next accepted step and abort.
                    if (!failures.empty())
                        flight.abort.store(true,
                                           std::memory_order_release);
                }
            }
            if (failures.empty())
                continue;
            // One trip per wedged dispatch, however many samples it
            // carried; every taken-over sample gets a full Failed
            // response through the single accounting path.
            metrics_.recordWatchdogTrip();
            ENODE_WARN("watchdog failing ", failures.size(),
                       " request(s) on worker ", i, " after ",
                       failures.front().response.solveMs,
                       " ms (threshold ", options_.degrade.watchdogMs,
                       " ms)");
            for (Failure &f : failures) {
                f.response.status = RequestStatus::Failed;
                f.response.solveStatus = SolveStatus::DeadlineExceeded;
                f.response.workerId = i;
                f.response.batchSize = batch_size;
                Tracer::instance().instant(
                    "watchdog.trip", "serve",
                    {{"id", static_cast<double>(f.response.id)},
                     {"worker", static_cast<double>(i)},
                     {"solve_ms", f.response.solveMs}});
                // Training takeovers count the trip but stay out of the
                // inference terminal accounting (never admitted there);
                // the TrainingService retries off the Failed status.
                if (!f.train) {
                    f.response.completionIndex =
                        nextCompletionIndex_.fetch_add(1);
                    metrics_.recordCompletion(f.response);
                }
                f.promise.set_value(std::move(f.response));
            }
        }
    }
}

} // namespace enode
