#include "runtime/metrics.h"

namespace enode {

void
MetricsRegistry::recordAdmitted()
{
    std::lock_guard<std::mutex> lock(mutex_);
    admitted_++;
}

void
MetricsRegistry::recordRejected()
{
    std::lock_guard<std::mutex> lock(mutex_);
    rejected_++;
}

void
MetricsRegistry::recordCancelled()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cancelled_++;
}

void
MetricsRegistry::recordCompletion(const InferResponse &response)
{
    std::lock_guard<std::mutex> lock(mutex_);
    completed_++;
    if (!response.deadlineMet)
        deadlineMisses_++;
    queueWaitMs_.add(response.queueWaitMs);
    solveMs_.add(response.solveMs);
    totalMs_.add(response.totalMs);
    fEvals_.add(static_cast<double>(response.stats.fEvals));
    trials_.add(static_cast<double>(response.stats.trials));
}

MetricsSummary
MetricsRegistry::summary() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSummary s;
    s.admitted = admitted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.cancelled = cancelled_;
    s.deadlineMisses = deadlineMisses_;
    s.queueWaitP50Ms = queueWaitMs_.percentile(50.0);
    s.queueWaitP95Ms = queueWaitMs_.percentile(95.0);
    s.queueWaitP99Ms = queueWaitMs_.percentile(99.0);
    s.solveP50Ms = solveMs_.percentile(50.0);
    s.solveP95Ms = solveMs_.percentile(95.0);
    s.solveP99Ms = solveMs_.percentile(99.0);
    s.totalP50Ms = totalMs_.percentile(50.0);
    s.totalP95Ms = totalMs_.percentile(95.0);
    s.totalP99Ms = totalMs_.percentile(99.0);
    s.totalMaxMs = totalMs_.max();
    s.meanFEvals = fEvals_.mean();
    s.meanTrials = trials_.mean();
    return s;
}

StatGroup
MetricsRegistry::snapshot(const std::string &group_name) const
{
    const MetricsSummary s = summary();
    StatGroup group(group_name);
    group.set("requests.admitted", static_cast<double>(s.admitted));
    group.set("requests.rejected", static_cast<double>(s.rejected));
    group.set("requests.completed", static_cast<double>(s.completed));
    group.set("requests.cancelled", static_cast<double>(s.cancelled));
    group.set("requests.deadline_misses",
              static_cast<double>(s.deadlineMisses));
    group.set("latency.queue_wait.p50_ms", s.queueWaitP50Ms);
    group.set("latency.queue_wait.p95_ms", s.queueWaitP95Ms);
    group.set("latency.queue_wait.p99_ms", s.queueWaitP99Ms);
    group.set("latency.solve.p50_ms", s.solveP50Ms);
    group.set("latency.solve.p95_ms", s.solveP95Ms);
    group.set("latency.solve.p99_ms", s.solveP99Ms);
    group.set("latency.total.p50_ms", s.totalP50Ms);
    group.set("latency.total.p95_ms", s.totalP95Ms);
    group.set("latency.total.p99_ms", s.totalP99Ms);
    group.set("latency.total.max_ms", s.totalMaxMs);
    group.set("solver.mean_f_evals", s.meanFEvals);
    group.set("solver.mean_trials", s.meanTrials);
    return group;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    admitted_ = 0;
    rejected_ = 0;
    completed_ = 0;
    cancelled_ = 0;
    deadlineMisses_ = 0;
    queueWaitMs_.reset();
    solveMs_.reset();
    totalMs_.reset();
    fEvals_.reset();
    trials_.reset();
}

} // namespace enode
