#include "runtime/metrics.h"

#include "common/logging.h"

namespace enode {

void
MetricsRegistry::recordAdmitted()
{
    std::lock_guard<std::mutex> lock(mutex_);
    admitted_++;
}

void
MetricsRegistry::recordRejected()
{
    std::lock_guard<std::mutex> lock(mutex_);
    rejected_++;
}

void
MetricsRegistry::recordWatchdogTrip()
{
    std::lock_guard<std::mutex> lock(mutex_);
    watchdogTrips_++;
}

void
MetricsRegistry::recordBatchDispatch(std::size_t size)
{
    ENODE_ASSERT(size >= 1, "a dispatched batch carries >= 1 request");
    std::lock_guard<std::mutex> lock(mutex_);
    batchesDispatched_++;
    batchedRequests_ += size;
    batchSize_.add(static_cast<double>(size));
}

void
MetricsRegistry::recordCoalesceWait(double ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    coalesceWaitMs_.add(ms);
}

void
MetricsRegistry::recordPartialFailure()
{
    std::lock_guard<std::mutex> lock(mutex_);
    partialFailures_++;
}

void
MetricsRegistry::countFailureClassLocked(SolveStatus status)
{
    switch (status) {
      case SolveStatus::Ok:
        return;
      case SolveStatus::NonFinite:
        solveNonFinite_++;
        return;
      case SolveStatus::StepUnderflow:
        solveStepUnderflow_++;
        return;
      case SolveStatus::TrialBudgetExhausted:
        solveTrialBudget_++;
        return;
      case SolveStatus::EvalBudgetExhausted:
        solveEvalBudget_++;
        return;
      case SolveStatus::DeadlineExceeded:
        solveDeadline_++;
        return;
    }
    ENODE_PANIC("unknown SolveStatus");
}

void
MetricsRegistry::recordCompletion(const InferResponse &response)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!response.deadlineMet)
        deadlineMisses_++;
    retries_ += response.retries;
    switch (response.status) {
      case RequestStatus::Ok:
        completed_++;
        if (response.brownoutRelaxed)
            brownoutRelaxed_++;
        queueWaitMs_.add(response.queueWaitMs);
        solveMs_.add(response.solveMs);
        totalMs_.add(response.totalMs);
        if (response.cacheHit) {
            // No solver work behind this response; feeding its zero
            // stats into the solver series would make cache hits look
            // like impossibly cheap solves.
            cacheHits_++;
        } else {
            fEvals_.add(static_cast<double>(response.stats.fEvals));
            trials_.add(static_cast<double>(response.stats.trials));
            if (response.warmStarted)
                warmStarted_++;
            if (response.stats.evalPoints > 0) {
                const double tpp =
                    static_cast<double>(response.stats.trials) /
                    static_cast<double>(response.stats.evalPoints);
                (response.warmStarted ? trialsPerPointWarm_
                                      : trialsPerPointCold_)
                    .add(tpp);
            }
        }
        if (response.degraded) {
            degraded_++;
            degradedMs_.add(response.totalMs);
            countFailureClassLocked(response.solveStatus);
        }
        return;
      case RequestStatus::DeadlineExceeded:
        expired_++;
        return;
      case RequestStatus::Failed:
        failed_++;
        countFailureClassLocked(response.solveStatus);
        return;
      case RequestStatus::Cancelled:
        // Shutdown routes each undrained request here exactly once;
        // this is the only place cancellations are counted.
        cancelled_++;
        return;
      case RequestStatus::Shed:
        // Refused at submit by admission control: counted admitted (a
        // decision was taken), terminal here, never queued or solved.
        shed_++;
        return;
    }
    ENODE_PANIC("unknown RequestStatus");
}

MetricsSummary
MetricsRegistry::summary() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSummary s;
    s.admitted = admitted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.cancelled = cancelled_;
    s.deadlineMisses = deadlineMisses_;
    s.expired = expired_;
    s.failed = failed_;
    s.shed = shed_;
    s.brownoutRelaxed = brownoutRelaxed_;
    s.degraded = degraded_;
    s.retries = retries_;
    s.watchdogTrips = watchdogTrips_;
    s.solveNonFinite = solveNonFinite_;
    s.solveStepUnderflow = solveStepUnderflow_;
    s.solveTrialBudget = solveTrialBudget_;
    s.solveEvalBudget = solveEvalBudget_;
    s.solveDeadline = solveDeadline_;
    s.queueWaitP50Ms = queueWaitMs_.percentile(50.0);
    s.queueWaitP95Ms = queueWaitMs_.percentile(95.0);
    s.queueWaitP99Ms = queueWaitMs_.percentile(99.0);
    s.solveP50Ms = solveMs_.percentile(50.0);
    s.solveP95Ms = solveMs_.percentile(95.0);
    s.solveP99Ms = solveMs_.percentile(99.0);
    s.totalP50Ms = totalMs_.percentile(50.0);
    s.totalP95Ms = totalMs_.percentile(95.0);
    s.totalP99Ms = totalMs_.percentile(99.0);
    s.totalMaxMs = totalMs_.max();
    s.degradedP50Ms = degradedMs_.percentile(50.0);
    s.degradedP95Ms = degradedMs_.percentile(95.0);
    s.degradedP99Ms = degradedMs_.percentile(99.0);
    s.meanFEvals = fEvals_.mean();
    s.meanTrials = trials_.mean();
    s.cacheHits = cacheHits_;
    s.warmStarted = warmStarted_;
    s.trialsPerPointWarm = trialsPerPointWarm_.mean();
    s.trialsPerPointCold = trialsPerPointCold_.mean();
    s.batchesDispatched = batchesDispatched_;
    s.batchedRequests = batchedRequests_;
    s.partialFailures = partialFailures_;
    s.batchOccupancyMean =
        batchesDispatched_ ? static_cast<double>(batchedRequests_) /
                                 static_cast<double>(batchesDispatched_)
                           : 0.0;
    s.coalesceWaitP50Ms = coalesceWaitMs_.percentile(50.0);
    s.coalesceWaitP95Ms = coalesceWaitMs_.percentile(95.0);
    s.coalesceWaitP99Ms = coalesceWaitMs_.percentile(99.0);
    s.batchSizeCounts.resize(batchSize_.bins());
    for (std::size_t i = 0; i < batchSize_.bins(); i++)
        s.batchSizeCounts[i] = batchSize_.binCount(i);
    return s;
}

StatGroup
MetricsRegistry::snapshot(const std::string &group_name) const
{
    const MetricsSummary s = summary();
    StatGroup group(group_name);
    group.set("requests.admitted", static_cast<double>(s.admitted));
    group.set("requests.rejected", static_cast<double>(s.rejected));
    group.set("requests.completed", static_cast<double>(s.completed));
    group.set("requests.cancelled", static_cast<double>(s.cancelled));
    group.set("requests.expired", static_cast<double>(s.expired));
    group.set("requests.failed", static_cast<double>(s.failed));
    group.set("requests.shed", static_cast<double>(s.shed));
    group.set("requests.brownout_relaxed",
              static_cast<double>(s.brownoutRelaxed));
    group.set("requests.deadline_misses",
              static_cast<double>(s.deadlineMisses));
    group.set("solve.non_finite", static_cast<double>(s.solveNonFinite));
    group.set("solve.step_underflow",
              static_cast<double>(s.solveStepUnderflow));
    group.set("solve.trial_budget",
              static_cast<double>(s.solveTrialBudget));
    group.set("solve.eval_budget", static_cast<double>(s.solveEvalBudget));
    group.set("solve.deadline_exceeded",
              static_cast<double>(s.solveDeadline));
    group.set("solve.degraded", static_cast<double>(s.degraded));
    group.set("solve.retries", static_cast<double>(s.retries));
    group.set("watchdog.trips", static_cast<double>(s.watchdogTrips));
    group.set("latency.queue_wait.p50_ms", s.queueWaitP50Ms);
    group.set("latency.queue_wait.p95_ms", s.queueWaitP95Ms);
    group.set("latency.queue_wait.p99_ms", s.queueWaitP99Ms);
    group.set("latency.solve.p50_ms", s.solveP50Ms);
    group.set("latency.solve.p95_ms", s.solveP95Ms);
    group.set("latency.solve.p99_ms", s.solveP99Ms);
    group.set("latency.total.p50_ms", s.totalP50Ms);
    group.set("latency.total.p95_ms", s.totalP95Ms);
    group.set("latency.total.p99_ms", s.totalP99Ms);
    group.set("latency.total.max_ms", s.totalMaxMs);
    group.set("latency.degraded.p50_ms", s.degradedP50Ms);
    group.set("latency.degraded.p95_ms", s.degradedP95Ms);
    group.set("latency.degraded.p99_ms", s.degradedP99Ms);
    group.set("solver.mean_f_evals", s.meanFEvals);
    group.set("solver.mean_trials", s.meanTrials);
    group.set("requests.cache_hits", static_cast<double>(s.cacheHits));
    group.set("requests.warm_started", static_cast<double>(s.warmStarted));
    group.set("solver.trials_per_point.warm_mean", s.trialsPerPointWarm);
    group.set("solver.trials_per_point.cold_mean", s.trialsPerPointCold);
    group.set("batch.dispatched", static_cast<double>(s.batchesDispatched));
    group.set("batch.requests", static_cast<double>(s.batchedRequests));
    group.set("batch.partial_failure",
              static_cast<double>(s.partialFailures));
    group.set("batch.occupancy_mean", s.batchOccupancyMean);
    group.set("batch.wait.p50_ms", s.coalesceWaitP50Ms);
    group.set("batch.wait.p95_ms", s.coalesceWaitP95Ms);
    group.set("batch.wait.p99_ms", s.coalesceWaitP99Ms);
    // Only populated bins, so a batch-of-1 server does not dump 32 zero
    // rows into every snapshot.
    for (std::size_t i = 0; i < s.batchSizeCounts.size(); i++)
        if (s.batchSizeCounts[i] > 0)
            group.set("batch.size.bin_" + std::to_string(i + 1),
                      static_cast<double>(s.batchSizeCounts[i]));
    return group;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    admitted_ = 0;
    rejected_ = 0;
    completed_ = 0;
    cancelled_ = 0;
    deadlineMisses_ = 0;
    expired_ = 0;
    failed_ = 0;
    shed_ = 0;
    brownoutRelaxed_ = 0;
    degraded_ = 0;
    retries_ = 0;
    watchdogTrips_ = 0;
    solveNonFinite_ = 0;
    solveStepUnderflow_ = 0;
    solveTrialBudget_ = 0;
    solveEvalBudget_ = 0;
    solveDeadline_ = 0;
    batchesDispatched_ = 0;
    batchedRequests_ = 0;
    partialFailures_ = 0;
    queueWaitMs_.reset();
    solveMs_.reset();
    totalMs_.reset();
    degradedMs_.reset();
    fEvals_.reset();
    trials_.reset();
    coalesceWaitMs_.reset();
    cacheHits_ = 0;
    warmStarted_ = 0;
    trialsPerPointWarm_.reset();
    trialsPerPointCold_.reset();
    batchSize_.reset();
}

} // namespace enode
