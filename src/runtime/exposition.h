#ifndef ENODE_RUNTIME_EXPOSITION_H
#define ENODE_RUNTIME_EXPOSITION_H

/**
 * @file
 * Prometheus text exposition of StatGroup snapshots.
 *
 * Renders a StatGroup as the Prometheus text format (version 0.0.4):
 * one `# HELP` / `# TYPE` header pair followed by the sample line per
 * metric. Hierarchical stat keys ("latency.total.p99_ms") become legal
 * metric names by mapping separators to underscores and prefixing a
 * namespace ("enode_latency_total_p99_ms"). Monotone request/solve
 * counters are typed `counter`; everything else (latencies, gauges,
 * percentiles) is typed `gauge`. Non-finite values are skipped — the
 * format has no representation for them and scrapers reject the whole
 * page otherwise.
 */

#include <string>

#include "common/stats.h"

namespace enode {

/** "latency.total.p99_ms" -> "ns_latency_total_p99_ms" (ns = prefix). */
std::string prometheusMetricName(const std::string &key,
                                 const std::string &ns = "enode");

/** Render one StatGroup as Prometheus exposition text. */
std::string prometheusText(const StatGroup &group,
                           const std::string &ns = "enode");

} // namespace enode

#endif // ENODE_RUNTIME_EXPOSITION_H
