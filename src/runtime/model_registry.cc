#include "runtime/model_registry.h"

#include "common/logging.h"

namespace enode {

namespace {

Hash128
digestParams(const std::vector<std::pair<std::string, Tensor>> &params)
{
    StreamHasher hasher;
    hasher.update(params.size());
    for (const auto &kv : params) {
        hasher.updateSized(kv.first.data(), kv.first.size());
        hashTensorInto(hasher, kv.second);
    }
    return hasher.digest();
}

} // namespace

ModelRegistry::ModelRegistry(std::size_t historyCapacity)
    : historyCapacity_(historyCapacity)
{
    ENODE_ASSERT(historyCapacity_ >= 1,
                 "ModelRegistry history capacity must be >= 1");
}

std::shared_ptr<const WeightSnapshot>
ModelRegistry::capture(NodeModel &model, std::uint64_t version)
{
    auto snap = std::make_shared<WeightSnapshot>();
    snap->version = version;
    const auto slots = model.paramSlots();
    snap->params.reserve(slots.size());
    for (const auto &slot : slots) {
        Tensor copy;
        copy.copyFrom(*slot.param);
        snap->params.emplace_back(slot.name, std::move(copy));
    }
    snap->paramsDigest = digestParams(snap->params);
    return snap;
}

void
ModelRegistry::seed(NodeModel &model)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ENODE_ASSERT(history_.empty(), "ModelRegistry already seeded");
    history_.push_back(capture(model, 0));
    latestVersion_.store(0, std::memory_order_release);
}

std::uint64_t
ModelRegistry::publish(NodeModel &model)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ENODE_ASSERT(!history_.empty(),
                 "ModelRegistry::publish before seed()");
    const std::uint64_t version = history_.back()->version + 1;
    history_.push_back(capture(model, version));
    while (history_.size() > historyCapacity_)
        history_.pop_front();
    published_.fetch_add(1, std::memory_order_relaxed);
    latestVersion_.store(version, std::memory_order_release);
    return version;
}

std::shared_ptr<const WeightSnapshot>
ModelRegistry::latest() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ENODE_ASSERT(!history_.empty(), "ModelRegistry::latest before seed()");
    return history_.back();
}

std::shared_ptr<const WeightSnapshot>
ModelRegistry::at(std::uint64_t version) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &snap : history_)
        if (snap->version == version)
            return snap;
    return nullptr;
}

void
ModelRegistry::applyTo(const WeightSnapshot &snap, NodeModel &model)
{
    const auto slots = model.paramSlots();
    ENODE_ASSERT(slots.size() == snap.params.size(),
                 "snapshot/model slot count mismatch");
    for (std::size_t i = 0; i < slots.size(); i++) {
        const auto &kv = snap.params[i];
        ENODE_ASSERT(slots[i].name == kv.first,
                     "snapshot/model slot name mismatch at ", i, ": '",
                     slots[i].name, "' vs '", kv.first, "'");
        ENODE_ASSERT(slots[i].param->shape() == kv.second.shape(),
                     "snapshot/model shape mismatch for slot '", kv.first,
                     "'");
        slots[i].param->copyFrom(kv.second);
    }
}

StatGroup
ModelRegistry::snapshotStats() const
{
    StatGroup stats("model");
    stats.set("model.version", static_cast<double>(latestVersion()));
    stats.set("model.published", static_cast<double>(published()));
    stats.set("model.swaps", static_cast<double>(swapsApplied()));
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats.set("model.history", static_cast<double>(history_.size()));
    }
    return stats;
}

} // namespace enode
