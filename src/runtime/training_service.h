#ifndef ENODE_RUNTIME_TRAINING_SERVICE_H
#define ENODE_RUNTIME_TRAINING_SERVICE_H

/**
 * @file
 * Online training as a runtime service (the paper's "edge inference
 * AND training" workload, Sec. II.C / IV.B).
 *
 * The service owns a master copy of the model and an SGD optimizer,
 * and runs synchronous data-parallel steps ON the serving runtime: the
 * B examples of a step become B gradient tasks submitted through the
 * same bounded queue and worker pool that serves inference. Training
 * rides the lowest-priority stream with no deadline, so under
 * LaterStreamFirst it loses every dispatch tie — inference latency
 * degrades only by the residency of whichever training solve is
 * already on a worker, never by queue displacement.
 *
 * Determinism: each task's gradient depends only on the step's weight
 * snapshot and the example (the solver is bitwise reproducible), never
 * on which worker ran it. The service reduces the per-task gradients
 * in a fixed-slot pairwise tree (stride 1, 2, 4, ... over the task
 * index), so the reduced gradient — and therefore the whole training
 * trajectory — is bitwise identical across worker counts and
 * scheduling interleavings. Tests assert this across {1, 2, 4}
 * workers via gradientDigest.
 *
 * Weight publication: every publishEvery steps the master's weights go
 * to the server's ModelRegistry as a new version; workers hot-swap
 * their serving replicas at their next dispatch boundary. See
 * DESIGN.md §14 for the swap protocol and cache-invalidation rules.
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "core/aca_trainer.h"
#include "nn/optimizer.h"
#include "runtime/inference_server.h"

namespace enode {

/**
 * One gradient task in flight on the worker pool. Owned by the
 * TrainingService for the whole step (workers hold only the raw
 * pointer riding the queue entry).
 */
struct TrainTask
{
    /** Training step this task belongs to (snapshot identity). */
    std::uint64_t step = 0;
    /** Priority class the task is queued on (low; see TrainingOptions). */
    std::uint32_t stream = 0;
    /** Master weights at the start of the step; every task of a step
     *  trains the same snapshot regardless of serving-replica swaps. */
    std::shared_ptr<const WeightSnapshot> weights;
    Tensor input;  ///< example x0
    Tensor target; ///< regression target for h(T)
    /** Solver options for the training forward (checkpoints ON — the
     *  ACA backward consumes the recorded trajectory). */
    IvpOptions ivp;
    /**
     * Fixed gradient slot, pre-sized to the model's param-slot count.
     * The worker writes dL/dtheta here; the service's tree reduction
     * reads it by task index, which is what makes the reduction order
     * worker-count-independent.
     */
    std::vector<Tensor> *grads = nullptr;
    // --- written by the worker ---
    double loss = 0.0;
    SolveStatus forwardStatus = SolveStatus::Ok;
    IvpStats forwardStats;
    AcaStats backwardStats;
};

/** Training-service construction knobs. */
struct TrainingOptions
{
    double learningRate = 1e-2;
    double momentum = 0.0;
    double weightDecay = 0.0;
    /** Global gradient-norm clip; 0 disables. */
    double gradClipNorm = 0.0;
    /** Examples (= gradient tasks) per synchronous step. */
    std::size_t batchSize = 8;
    /** Steps between weight publications to the registry; 0 = never
     *  publish (pure gradient computation, e.g. determinism tests). */
    std::size_t publishEvery = 1;
    /** Stream tag for gradient tasks. Keep at (or below) the lowest
     *  inference stream: training must lose every priority tie. */
    std::uint32_t stream = 0;
    /** Resubmissions of a task whose solve failed (watchdog trip,
     *  solver failure). A task still failing after the retries leaves
     *  its gradient slot zero — the step proceeds without it. */
    std::size_t maxTaskRetries = 2;
    /** Solver options for training forwards. Defaults to the library
     *  defaults, which record checkpoints; the service forces
     *  recordCheckpoints back on if a caller turns it off. */
    IvpOptions ivp;
};

/** One labelled example of the streaming regression workload. */
struct TrainExample
{
    Tensor input;
    Tensor target;
};

/** Outcome of one synchronous training step. */
struct TrainStepOutcome
{
    std::uint64_t step = 0;
    /** Mean loss over the tasks that solved (0 when none did). */
    double meanLoss = 0.0;
    /** Digest of the reduced gradient, hashed after the tree reduction
     *  and mean scaling but before clipping and the optimizer step.
     *  Bitwise identical across worker counts by construction. */
    Hash128 gradDigest;
    std::size_t tasksFailed = 0;  ///< slots left zero after retries
    std::size_t tasksRetried = 0; ///< resubmissions performed
    /** Registry version published at the end of this step; 0 if this
     *  step did not publish. */
    std::uint64_t publishedVersion = 0;
    AcaStats backwardStats; ///< summed over succeeded tasks
};

/**
 * Interleaved training driver over an InferenceServer's worker pool.
 *
 * Synchronous use: call step() with batchSize examples. Streaming use:
 * start() spawns a background thread that draws examples from a
 * sampler and steps until stop(). Not thread-safe: one step at a time
 * (the background thread is that one caller while running).
 */
class TrainingService
{
  public:
    /** Draws the i-th streaming example (i is a global counter). */
    using Sampler = std::function<TrainExample(std::uint64_t)>;

    /**
     * @param server Serving runtime to train on (must outlive this).
     * @param master Master model; structurally identical to the
     *        server's replicas (same factory is the easy way). Its
     *        weights are overwritten with the registry's live snapshot
     *        at construction, so training continues from exactly what
     *        the server is serving.
     * @param options Hyperparameters and scheduling knobs.
     */
    TrainingService(InferenceServer &server,
                    std::unique_ptr<NodeModel> master,
                    TrainingOptions options);

    /** Stops the streaming thread if running. */
    ~TrainingService();

    TrainingService(const TrainingService &) = delete;
    TrainingService &operator=(const TrainingService &) = delete;

    /**
     * One synchronous data-parallel step over the given examples
     * (typically batchSize of them; any non-zero count works).
     * Blocks until every task completed or exhausted its retries.
     */
    TrainStepOutcome step(const std::vector<TrainExample> &examples);

    /** Start the background streaming loop (one thread). */
    void start(Sampler sampler);

    /** Stop the streaming loop and join (idempotent). */
    void stop();

    /** Steps completed so far. */
    std::uint64_t steps() const
    {
        return stepsDone_.load(std::memory_order_relaxed);
    }

    /** The master model (the training-trajectory source of truth). */
    NodeModel &master() { return *master_; }

    /** "train.*" counters and gauges for exposition/benches. */
    StatGroup snapshotStats() const;

  private:
    InferenceServer &server_;
    std::unique_ptr<NodeModel> master_;
    TrainingOptions options_;
    std::unique_ptr<Sgd> optimizer_;

    /** Task and gradient-slot storage, reused across steps. */
    std::vector<TrainTask> tasks_;
    std::vector<std::vector<Tensor>> slotGrads_;

    std::thread streamThread_;
    std::atomic<bool> streamStop_{false};

    std::atomic<std::uint64_t> stepsDone_{0};
    std::atomic<std::uint64_t> tasksSubmitted_{0};
    std::atomic<std::uint64_t> taskFailures_{0};
    std::atomic<std::uint64_t> taskRetries_{0};
    std::atomic<std::uint64_t> published_{0};
    std::atomic<double> lastLoss_{0.0};
};

} // namespace enode

#endif // ENODE_RUNTIME_TRAINING_SERVICE_H
