#include "runtime/metrics_publisher.h"

#include <chrono>
#include <utility>

#include "common/logging.h"

namespace enode {

MetricsPublisher::~MetricsPublisher()
{
    stop();
}

void
MetricsPublisher::addGauge(std::string name, Sampler sampler)
{
    ENODE_ASSERT(static_cast<bool>(sampler), "null gauge sampler");
    std::lock_guard<std::mutex> lock(mutex_);
    ENODE_ASSERT(!running_, "addGauge after start");
    gauges_.push_back({std::move(name), std::move(sampler), 0.0, {}});
}

void
MetricsPublisher::sampleAllLocked()
{
    for (Gauge &gauge : gauges_) {
        const double value = gauge.sampler();
        gauge.last = value;
        gauge.series.add(value);
    }
    samples_++;
}

void
MetricsPublisher::start(double period_ms)
{
    ENODE_ASSERT(period_ms > 0.0, "publisher period must be positive");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ENODE_ASSERT(!running_, "publisher already started");
        periodMs_ = period_ms;
        running_ = true;
        stopRequested_ = false;
        sampleAllLocked(); // an immediate first sample
    }
    thread_ = std::thread([this] { publisherMain(); });
}

void
MetricsPublisher::publisherMain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto period =
        std::chrono::duration<double, std::milli>(periodMs_);
    while (!cv_.wait_for(lock, period, [this] { return stopRequested_; }))
        sampleAllLocked();
}

void
MetricsPublisher::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!running_)
            return;
        running_ = false;
        stopRequested_ = true;
        sampleAllLocked(); // final sample so short runs still see data
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

std::uint64_t
MetricsPublisher::samples() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_;
}

StatGroup
MetricsPublisher::snapshot(const std::string &group_name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    StatGroup group(group_name);
    for (const Gauge &gauge : gauges_) {
        group.set(gauge.name + ".last", gauge.last);
        group.set(gauge.name + ".mean", gauge.series.mean());
        group.set(gauge.name + ".min", gauge.series.min());
        group.set(gauge.name + ".max", gauge.series.max());
    }
    group.set("publisher.samples", static_cast<double>(samples_));
    return group;
}

} // namespace enode
