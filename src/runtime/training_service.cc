#include "runtime/training_service.h"

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/trace_span.h"

namespace enode {

TrainingService::TrainingService(InferenceServer &server,
                                 std::unique_ptr<NodeModel> master,
                                 TrainingOptions options)
    : server_(server), master_(std::move(master)), options_(options)
{
    ENODE_ASSERT(master_ != nullptr, "training service needs a master model");
    ENODE_ASSERT(options_.batchSize >= 1, "batchSize must be >= 1");
    ENODE_ASSERT(options_.learningRate > 0.0, "learningRate must be > 0");
    // The ACA backward consumes the forward's recorded checkpoints;
    // training cannot run with recording off.
    options_.ivp.recordCheckpoints = true;

    // Start from exactly what the server is serving: the registry's
    // live snapshot (version 0 = the server's construction weights
    // unless someone already published).
    ModelRegistry::applyTo(*server_.registry().latest(), *master_);
    optimizer_ = std::make_unique<Sgd>(master_->paramSlots(),
                                       options_.learningRate,
                                       options_.momentum,
                                       options_.weightDecay);

    // Fixed-slot gradient storage: slot index == task index, the
    // anchor of the deterministic reduction. Reused across steps.
    const std::size_t numSlots = master_->paramSlots().size();
    tasks_.resize(options_.batchSize);
    slotGrads_.resize(options_.batchSize);
    for (std::size_t b = 0; b < options_.batchSize; b++) {
        slotGrads_[b].resize(numSlots);
        tasks_[b].grads = &slotGrads_[b];
        tasks_[b].stream = options_.stream;
        tasks_[b].ivp = options_.ivp;
    }
}

TrainingService::~TrainingService()
{
    stop();
}

TrainStepOutcome
TrainingService::step(const std::vector<TrainExample> &examples)
{
    ENODE_ASSERT(!examples.empty(), "training step needs >= 1 example");
    ENODE_ASSERT(examples.size() <= tasks_.size(),
                 "more examples than the configured batchSize");
    const std::size_t n = examples.size();
    const std::uint64_t step_id = stepsDone_.load() + 1;

    TraceSpan span("train.step", "train");
    span.arg("step", static_cast<double>(step_id));
    span.arg("tasks", static_cast<double>(n));

    TrainStepOutcome out;
    out.step = step_id;

    // Snapshot the master's weights once: every task of this step
    // trains the same bytes, whatever the serving replicas swap to in
    // the meantime.
    const auto weights = ModelRegistry::capture(*master_, step_id);

    // Prepare and submit the tasks. Slots of tasks that never succeed
    // stay zero, contributing nothing to the reduction.
    std::vector<std::future<InferResponse>> futures(n);
    std::vector<bool> succeeded(n, false);
    const auto numSlots = slotGrads_.empty() ? 0 : slotGrads_[0].size();
    for (std::size_t b = 0; b < n; b++) {
        TrainTask &task = tasks_[b];
        task.step = step_id;
        task.weights = weights;
        task.input = examples[b].input;
        task.target = examples[b].target;
        task.loss = 0.0;
        task.forwardStatus = SolveStatus::Ok;
        for (std::size_t s = 0; s < numSlots; s++) {
            // Zero by resetting shape lazily: the worker sizes each
            // grad tensor on write, so an untouched slot stays empty
            // and the reduction treats empty as zero.
            (*task.grads)[s].reset();
        }
    }

    // Submit with bounded patience on a full queue: training yields to
    // inference backpressure rather than competing with it, but a
    // persistently full queue must not hang the step forever.
    const auto submitOne = [this](TrainTask &task,
                                  std::future<InferResponse> &future) {
        for (int attempt = 0; attempt < 200; attempt++) {
            auto sub = server_.submitTrainTask(task);
            if (sub.accepted) {
                future = std::move(sub.result);
                tasksSubmitted_.fetch_add(1, std::memory_order_relaxed);
                return true;
            }
            if (attempt + 1 < 200)
                std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
        return false;
    };

    std::vector<bool> pending(n, false);
    for (std::size_t b = 0; b < n; b++)
        pending[b] = submitOne(tasks_[b], futures[b]);

    // Await, retrying failed tasks up to maxTaskRetries each. Retries
    // are deterministic re-runs of the same (weights, example) pair,
    // so they cannot perturb the reduced gradient when they succeed.
    for (std::size_t b = 0; b < n; b++) {
        std::size_t retries = 0;
        while (pending[b]) {
            InferResponse response = futures[b].get();
            pending[b] = false;
            if (response.status == RequestStatus::Ok) {
                succeeded[b] = true;
            } else if (response.status == RequestStatus::Failed &&
                       retries < options_.maxTaskRetries) {
                retries++;
                taskRetries_.fetch_add(1, std::memory_order_relaxed);
                out.tasksRetried++;
                pending[b] = submitOne(tasks_[b], futures[b]);
            }
            // Cancelled (server stopping) or retries exhausted: the
            // slot stays zero.
        }
        if (!succeeded[b]) {
            taskFailures_.fetch_add(1, std::memory_order_relaxed);
            out.tasksFailed++;
        }
    }

    // Fixed-stride pairwise tree reduction over the task slots:
    // slot[i] += slot[i + stride] for stride 1, 2, 4, ... The order
    // depends only on the slot indices — never on completion order or
    // worker count — so the sum is bitwise reproducible. Empty slots
    // (failed tasks) are additive identities.
    std::size_t n_ok = 0;
    double loss_sum = 0.0;
    for (std::size_t b = 0; b < n; b++) {
        if (!succeeded[b])
            continue;
        n_ok++;
        loss_sum += tasks_[b].loss;
        out.backwardStats.accumulate(tasks_[b].backwardStats);
    }
    for (std::size_t stride = 1; stride < n; stride *= 2) {
        for (std::size_t i = 0; i + stride < n; i += 2 * stride) {
            auto &dst = slotGrads_[i];
            auto &src = slotGrads_[i + stride];
            for (std::size_t s = 0; s < numSlots; s++) {
                if (src[s].empty())
                    continue;
                if (dst[s].empty())
                    dst[s] = std::move(src[s]);
                else
                    dst[s] += src[s];
            }
        }
    }

    out.meanLoss = n_ok > 0 ? loss_sum / static_cast<double>(n_ok) : 0.0;
    lastLoss_.store(out.meanLoss, std::memory_order_relaxed);

    if (n_ok > 0) {
        // Mean over the tasks that actually contributed, then hand the
        // reduced gradient to the master's slots.
        const float inv = 1.0f / static_cast<float>(n_ok);
        const auto slots = master_->paramSlots();
        StreamHasher hasher;
        master_->zeroGrad();
        for (std::size_t s = 0; s < numSlots; s++) {
            Tensor &g = slotGrads_[0][s];
            if (!g.empty()) {
                g.scale(inv);
                slots[s].grad->copyFrom(g);
            }
            hashTensorInto(hasher, *slots[s].grad);
        }
        out.gradDigest = hasher.digest();
        if (options_.gradClipNorm > 0.0)
            optimizer_->clipGradNorm(options_.gradClipNorm);
        optimizer_->step();
    }

    stepsDone_.fetch_add(1, std::memory_order_relaxed);
    if (options_.publishEvery > 0 && n_ok > 0 &&
        step_id % options_.publishEvery == 0) {
        out.publishedVersion = server_.registry().publish(*master_);
        published_.fetch_add(1, std::memory_order_relaxed);
        span.arg("published", static_cast<double>(out.publishedVersion));
    }
    return out;
}

void
TrainingService::start(Sampler sampler)
{
    ENODE_ASSERT(static_cast<bool>(sampler), "null sampler");
    ENODE_ASSERT(!streamThread_.joinable(), "streaming loop already running");
    streamStop_.store(false, std::memory_order_release);
    streamThread_ = std::thread([this, sampler = std::move(sampler)] {
        Tracer::instance().setThreadName("trainer");
        std::uint64_t index = 0;
        std::vector<TrainExample> batch(options_.batchSize);
        while (!streamStop_.load(std::memory_order_acquire)) {
            for (auto &example : batch)
                example = sampler(index++);
            step(batch);
        }
    });
}

void
TrainingService::stop()
{
    streamStop_.store(true, std::memory_order_release);
    if (streamThread_.joinable())
        streamThread_.join();
}

StatGroup
TrainingService::snapshotStats() const
{
    StatGroup stats("train");
    stats.set("train.steps", static_cast<double>(stepsDone_.load()));
    stats.set("train.tasks", static_cast<double>(tasksSubmitted_.load()));
    stats.set("train.task_failures",
              static_cast<double>(taskFailures_.load()));
    stats.set("train.task_retries",
              static_cast<double>(taskRetries_.load()));
    stats.set("train.published", static_cast<double>(published_.load()));
    stats.set("train.last_loss", lastLoss_.load());
    return stats;
}

} // namespace enode
