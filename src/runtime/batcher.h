#ifndef ENODE_RUNTIME_BATCHER_H
#define ENODE_RUNTIME_BATCHER_H

/**
 * @file
 * Dynamic micro-batching collector.
 *
 * Sits between the RequestQueue and the worker pool: a worker asks the
 * batcher for its next unit of work and receives a *batch* of
 * compatible requests instead of a single entry. The batcher pops a
 * seed request, then keeps a collect window open for at most
 * maxWaitUs, admitting every compatible request that arrives until the
 * batch is full, the window lapses, or an incompatible request shows
 * up (which is stashed to seed the next batch, never reordered behind
 * later arrivals of its own class).
 *
 * Compatibility means the requests can share one batched solve:
 * identical input shape. Model and solver options are server-wide, so
 * shape is the only per-request axis; the predicate is centralized in
 * compatible() should that change.
 *
 * Deadline hygiene: the solo path fails requests whose deadline lapsed
 * while queued. The batcher applies the same screen at every pop *and*
 * once more when the window closes, so a request that expired while
 * the batch waited for company is failed (counted `expired`), never
 * solved. Expired entries ride back in CollectedBatch::expired — and
 * the seed hunt never *blocks* while holding them: once anything has
 * been diverted, an empty queue ships the casualties immediately
 * rather than delaying their terminal responses until the next
 * arrival (or shutdown).
 */

#include <deque>
#include <mutex>
#include <vector>

#include "runtime/admission.h"
#include "runtime/request_queue.h"
#include "runtime/solve_cache.h"

namespace enode {

/** What one collect() returns: a coherent batch plus its casualties. */
struct CollectedBatch
{
    /** Compatible, unexpired requests; solve these together. */
    std::vector<QueueEntry> entries;
    /** Requests whose deadline lapsed at pop or during the window. */
    std::vector<QueueEntry> expired;
    /**
     * Requests whose exact-cache entry became ready while they queued
     * (screened at pop against the solve cache). They never consume a
     * batch slot or seed a window; the worker answers each from the
     * cache — re-checking at dispatch, since the entry may have been
     * evicted between the screen and the answer.
     */
    std::vector<QueueEntry> cacheHits;
    /** When the seed request was popped (start of the window). */
    RuntimeClock::time_point firstPop{};
    /** Window duration: seed pop to window close. 0 for maxBatch 1. */
    double collectWaitMs = 0.0;
};

/**
 * Thread-safe batch collector over a RequestQueue.
 *
 * Multiple workers call collect() concurrently; each gets its own
 * batch. The only shared state is a FIFO stash holding the incompatible
 * requests that closed collect windows, protected by an internal mutex.
 * Each open window stashes at most one entry, so the stash holds at
 * most one entry per concurrently-collecting worker — but overlapping
 * windows can legitimately stash at the same time, which is why the
 * stash is a queue and not a single slot. Stashed entries seed
 * subsequent batches in stash order, ahead of anything still queued.
 * With maxBatch 1 the collector degenerates to a plain pop with the
 * deadline screen applied.
 */
class Batcher
{
  public:
    /**
     * @param queue Source of requests (owned by the server).
     * @param maxBatch Upper bound on entries per batch (>= 1).
     * @param maxWaitUs Collect-window budget in microseconds; how long
     *        a seeded batch may wait for company. Only meaningful when
     *        maxBatch > 1.
     * @param cache Optional solve cache: keyed requests whose exact
     *        entry is ready at pop are diverted to
     *        CollectedBatch::cacheHits instead of occupying the batch.
     * @param admission Optional overload controller: at brownout level
     *        >= 2 the collect window is scaled down (latency drains
     *        ahead of coalescing efficiency under load). Consulted once
     *        per window open.
     */
    Batcher(RequestQueue &queue, std::size_t maxBatch, double maxWaitUs,
            SolveCache *cache = nullptr,
            const AdmissionController *admission = nullptr);

    /**
     * Block for the next batch.
     * @return false when the queue is closed and drained and the stash
     *         is empty — the worker should exit. When true, entries,
     *         expired and/or cacheHits hold at least one request.
     */
    bool collect(CollectedBatch &out);

    std::size_t maxBatch() const { return maxBatch_; }
    double maxWaitUs() const { return maxWaitUs_; }

  private:
    /** True when a and b may share one batched solve. */
    static bool compatible(const QueueEntry &a, const QueueEntry &b);

    /** Move the oldest stashed entry into `out` if one is waiting. */
    bool takeStash(QueueEntry &out);
    void putStash(QueueEntry entry);

    /** True when the entry should be answered from the exact cache. */
    bool cacheReady(const QueueEntry &entry) const;

    RequestQueue &queue_;
    const std::size_t maxBatch_;
    const double maxWaitUs_;
    SolveCache *const cache_;
    const AdmissionController *const admission_;

    std::mutex stashMutex_;
    std::deque<QueueEntry> stash_;
};

} // namespace enode

#endif // ENODE_RUNTIME_BATCHER_H
