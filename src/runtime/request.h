#ifndef ENODE_RUNTIME_REQUEST_H
#define ENODE_RUNTIME_REQUEST_H

/**
 * @file
 * Request/response types of the concurrent inference-serving runtime.
 *
 * A request is one NODE inference: an initial state, a stream tag (the
 * runtime analogue of the packet stream of Sec. V.B — higher tags are
 * favoured by the later-stream-first scheduler), and a deadline the
 * dispatcher uses to break ties between equal-priority streams. The
 * response carries the solved state plus the per-request accounting the
 * metrics registry aggregates into latency percentiles.
 */

#include <chrono>
#include <cstdint>

#include "ode/ivp.h"
#include "tensor/hash.h"
#include "tensor/tensor.h"

namespace enode {

/** Clock used for all runtime timing (monotonic). */
using RuntimeClock = std::chrono::steady_clock;

/** One gradient task of the training service (training_service.h). */
struct TrainTask;

/** One inference request offered to the serving runtime. */
struct InferRequest
{
    /** Assigned by the server at admission; unique per server. */
    std::uint64_t id = 0;

    /**
     * Stream tag: the priority class. Under SelectPolicy::
     * LaterStreamFirst, higher tags dispatch first, mirroring the
     * hardware priority selector's later-stream-first rule.
     */
    std::uint32_t stream = 0;

    /** Tie-breaker within a stream: tighter deadlines dispatch first. */
    RuntimeClock::time_point deadline = RuntimeClock::time_point::max();

    /** Initial state h(0) of the NODE forward pass. */
    Tensor input;

    /**
     * Exact-dedup cache key: digest of (model version, solver config,
     * input bytes), stamped at admission when the solve cache is on.
     * Invalid (all-zero) when caching is off — the serving paths then
     * skip every cache interaction for this request.
     */
    Hash128 cacheKey;

    /**
     * Warm-start signature: coarse quantized-statistics bucket of the
     * input (tensor/hash.h coarseSignature mixed with the model
     * version). 0 means "no signature" (warm tier off).
     */
    std::uint64_t warmSig = 0;

    /**
     * Model-registry version the request was admitted against. Workers
     * swap their replica to the latest published version at dispatch
     * boundaries; this stamp is what makes hot swaps safe for the
     * coalescing and caching layers — the batcher refuses to mix
     * versions in one batched solve, and a solve may only publish into
     * the cache when the replica that produced it still matches the
     * version its cache key was derived from.
     */
    std::uint64_t modelVersion = 0;

    /**
     * Non-null for gradient tasks of the training service: the worker
     * routes the entry to the training path (serveTrain) instead of an
     * inference solve. The pointed-to task outlives the request (the
     * TrainingService owns it for the whole step) and carries the
     * weight snapshot, target, and the fixed gradient slot the worker
     * writes into. Training entries bypass the inference metrics,
     * cache and admission layers entirely.
     */
    TrainTask *train = nullptr;
};

/** Terminal state of a request. */
enum class RequestStatus
{
    Ok,        ///< solved; output and stats are valid (see `degraded`)
    Cancelled, ///< dropped by a non-draining shutdown before dispatch
    /** Already past its deadline when a worker dequeued it; failed
     *  without spending a solve on a response that could only miss. */
    DeadlineExceeded,
    /** The solve failed beyond what the degradation ladder could
     *  recover (every rung failed, or the watchdog tripped). The
     *  output is empty — a failed request never carries a payload. */
    Failed,
    /**
     * Rejected by deadline-aware admission control: the cost model
     * estimated the request could not complete by its deadline (or
     * brownout level 3 shed its priority class), so it was refused at
     * submit — before occupying a queue slot, a worker, or a batch
     * seat. Counted admitted (the server took a decision on it), so
     * admitted == completed + expired + failed + cancelled + shed.
     */
    Shed,
};

/** Number of RequestStatus values (for exhaustive test matrices). */
constexpr std::size_t kNumRequestStatuses = 5;

/** Human-readable status name. */
const char *requestStatusName(RequestStatus status);

/** What the runtime returns for one request. */
struct InferResponse
{
    std::uint64_t id = 0;
    RequestStatus status = RequestStatus::Cancelled;

    /** h(T) after the last integration layer (empty when cancelled). */
    Tensor output;

    /** Solver accounting aggregated over the layers of this request. */
    IvpStats stats;

    /** Time spent queued before a worker picked the request up. */
    double queueWaitMs = 0.0;
    /** Time the worker spent inside NodeModel::forward. */
    double solveMs = 0.0;
    /** End-to-end: admission to completion. */
    double totalMs = 0.0;

    /** True when the request finished at or before its deadline. */
    bool deadlineMet = true;

    /**
     * True when the response was produced by the degradation ladder
     * (relaxed-tolerance retry or fixed-step fallback) rather than the
     * configured solve. `solveStatus` carries the originating failure.
     */
    bool degraded = false;

    /**
     * The solver status that triggered degradation or failure; Ok for
     * a clean first-attempt solve. For watchdog trips this reports
     * DeadlineExceeded (the hang budget is a runtime deadline).
     */
    SolveStatus solveStatus = SolveStatus::Ok;

    /** Relaxed-tolerance retry attempts spent on this request (0 or 1). */
    std::uint32_t retries = 0;

    /** Which worker served the request. */
    std::size_t workerId = 0;

    /**
     * How many requests shared the batched solve that produced this
     * response. 1 for the solo path and for requests that never reached
     * a solve (cancelled / expired before dispatch).
     */
    std::size_t batchSize = 1;

    /**
     * Global completion sequence number (0 = first request finished by
     * any worker). Tests use this to assert priority ordering.
     */
    std::uint64_t completionIndex = 0;

    /**
     * True when the output came from the exact-dedup cache (either an
     * immediate hit or single-flight delivery off another request's
     * solve) — bitwise identical to a fresh solve, with zero solver
     * work attributed to this request (`stats` is empty).
     */
    bool cacheHit = false;

    /**
     * True when the solve replayed at least one step of a cached
     * dt-schedule (tier-2 warm start). The output is this request's own
     * solve, within solver tolerance of a cold solve.
     */
    bool warmStarted = false;

    /**
     * True when the rung-0 solve ran at brownout-relaxed tolerance
     * (proactive degradation of a low-priority stream under load, see
     * OverloadOptions). The response is still Ok and finite, but its
     * accuracy is that of the relaxed tolerance — and it never
     * populates the solve cache, whose keys embed the configured one.
     */
    bool brownoutRelaxed = false;

    /** Registry version of the weights this response was served with. */
    std::uint64_t modelVersion = 0;
};

} // namespace enode

#endif // ENODE_RUNTIME_REQUEST_H
