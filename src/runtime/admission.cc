#include "runtime/admission.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/trace_span.h"
#include "tensor/hash.h"

namespace enode {

namespace {

double
toMs(RuntimeClock::duration d)
{
    return std::chrono::duration<double, std::milli>(d).count();
}

} // namespace

std::uint64_t
shapeKeyOf(const Tensor &t)
{
    // Rank-prefixed dim chain through mix64 so {4, 8} and {8, 4} (and
    // {32} vs {32, 1}) land in different cost-model rows.
    std::uint64_t key = mix64(0x9e3779b97f4a7c15ull ^ t.shape().rank());
    for (std::size_t dim : t.shape().dims())
        key = mix64(key ^ dim);
    return key;
}

AdmissionController::AdmissionController(OverloadOptions options,
                                         std::size_t numWorkers)
    : options_(options), numWorkers_(std::max<std::size_t>(1, numWorkers))
{
    ENODE_ASSERT(options_.ewmaAlpha > 0.0 && options_.ewmaAlpha <= 1.0,
                 "ewmaAlpha must be in (0, 1]");
    ENODE_ASSERT(options_.hysteresisRatio > 0.0 &&
                     options_.hysteresisRatio <= 1.0,
                 "hysteresisRatio must be in (0, 1]");
    ENODE_ASSERT(options_.targetDelayMs > 0.0,
                 "targetDelayMs must be > 0");
    ENODE_ASSERT(options_.level1Enter > 0.0 &&
                     options_.level2Enter >= options_.level1Enter &&
                     options_.level3Enter >= options_.level2Enter,
                 "brownout entry scores must be positive and ordered");
    ENODE_ASSERT(options_.exitRatio > 0.0 && options_.exitRatio < 1.0,
                 "exitRatio must be in (0, 1)");
    ENODE_ASSERT(options_.windowShrinkFactor >= 0.0 &&
                     options_.windowShrinkFactor <= 1.0,
                 "windowShrinkFactor must be in [0, 1]");
    ENODE_ASSERT(options_.brownoutToleranceFactor >= 1.0,
                 "brownoutToleranceFactor must be >= 1");
    const auto now = RuntimeClock::now();
    levelSince_ = now;
    lastTransition_ = now - std::chrono::hours(1); // first move is free
}

double
AdmissionController::estimateLocked(std::uint64_t shapeKey,
                                    std::size_t queueDepth) const
{
    // Completion estimate = time for the pool to drain what is queued
    // ahead (mix-wide per-request service cost) + this request's own
    // solve (per-shape cost, falling back to the mix-wide dispatch
    // cost for a shape the model has not seen).
    // Two drain models, take the slower: the idealized one (dispatch
    // cost spread over the pool) and the realized one (measured gap
    // between consecutive completions, which already prices in
    // contention between workers).
    double per_request = serviceMs_.count > 0
                             ? serviceMs_.value /
                                   static_cast<double>(numWorkers_)
                             : 0.0;
    if (completionGapMs_.count > 0)
        per_request = std::max(per_request, completionGapMs_.value);
    const double drain = static_cast<double>(queueDepth) * per_request;
    const auto it = shapeCostMs_.find(shapeKey);
    const double own = it != shapeCostMs_.end() ? it->second.value
                       : serviceMs_.count > 0  ? serviceMs_.value
                                               : 0.0;
    return drain + own;
}

double
AdmissionController::estimateMs(std::uint64_t shapeKey,
                                std::size_t queueDepth) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return estimateLocked(shapeKey, queueDepth);
}

double
AdmissionController::loadScoreLocked() const
{
    // Queue delay normalized by the defended target, plus the recent
    // shed fraction: heavy shedding is itself an overload signal even
    // when the queue stays short *because* of it.
    return queueDelayMs_.value / options_.targetDelayMs + shedRate_;
}

void
AdmissionController::updateLevelLocked(RuntimeClock::time_point now)
{
    const int current = level_.load(std::memory_order_relaxed);
    const double score = loadScoreLocked();
    const double enter[4] = {0.0, options_.level1Enter,
                             options_.level2Enter, options_.level3Enter};

    int desired = current;
    // Climb: the highest level whose entry score is met. Queue delay
    // with idle workers is not load (a paused or draining server), so
    // the ladder never engages below the occupancy floor.
    if (occupancy_.count > 0 && occupancy_.value >= options_.occupancyFloor) {
        for (int l = 3; l > current; l--) {
            if (score >= enter[l]) {
                desired = l;
                break;
            }
        }
    }
    // Descend one level at a time, each requiring the score to fall to
    // the exit fraction of that level's entry bar (the ladder's own
    // hysteresis band).
    while (desired > 0 && desired == current &&
           score <= options_.exitRatio * enter[desired])
        desired--;
    if (desired == current)
        return;
    if (toMs(now - lastTransition_) < options_.minDwellMs)
        return; // dwell: no flapping on one noisy observation

    residencyMs_[current] += toMs(now - levelSince_);
    levelSince_ = now;
    lastTransition_ = now;
    transitions_++;
    level_.store(desired, std::memory_order_relaxed);
    Tracer::instance().instant(
        desired > current ? "overload.enter" : "overload.exit", "overload",
        {{"level", static_cast<double>(desired)},
         {"from", static_cast<double>(current)},
         {"score", score}});
    ENODE_WARN("brownout level ", current, " -> ", desired,
               " (load score ", score, ", queue delay EWMA ",
               queueDelayMs_.value, " ms)");
}

AdmissionController::Verdict
AdmissionController::admit(std::uint64_t shapeKey, std::uint32_t stream,
                           double budgetMs, std::size_t queueDepth)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Verdict v;
    v.estimateMs = estimateLocked(shapeKey, queueDepth);

    bool shed = false;
    if (budgetMs <= 0.0) {
        // Already past its deadline at submit: no model needed — it
        // cannot complete in time, so it never takes a queue slot.
        shed = true;
    } else if (level_.load(std::memory_order_relaxed) >= 3 &&
               stream <= options_.lowPriorityMax) {
        // Brownout level 3: low-priority traffic is shed outright so
        // the remaining capacity serves the higher streams.
        shed = true;
    } else if (totalObservations_ >= options_.minObservations) {
        // Deadline-estimate shedding, with hysteresis: once shedding,
        // re-admission needs the estimate comfortably inside the
        // budget, not merely at it.
        if (!shedding_)
            shed = v.estimateMs > budgetMs;
        else
            shed = v.estimateMs > options_.hysteresisRatio * budgetMs;
        shedding_ = shed;
    }

    // Shed fraction of recent admissions (monitor input), then give the
    // ladder a chance to move — shed-driven overload must be able to
    // raise the level even when nothing is being dequeued.
    shedRate_ = (1.0 - options_.ewmaAlpha) * shedRate_ +
                options_.ewmaAlpha * (shed ? 1.0 : 0.0);
    if (shed)
        sheds_++;
    updateLevelLocked(RuntimeClock::now());

    v.shed = shed;
    return v;
}

void
AdmissionController::observeSolve(std::uint64_t shapeKey, double dispatchMs,
                                  std::size_t batchSize)
{
    const std::size_t n = std::max<std::size_t>(1, batchSize);
    const auto now = RuntimeClock::now();
    std::lock_guard<std::mutex> lock(mutex_);
    shapeCostMs_[shapeKey].add(dispatchMs, options_.ewmaAlpha);
    serviceMs_.add(dispatchMs / static_cast<double>(n),
                   options_.ewmaAlpha);
    if (hasLastCompletion_) {
        const double gap_ms = toMs(now - lastCompletionAt_);
        // Gaps above a second are idle time, not drain rate — an idle
        // server would otherwise poison the estimate for the next burst.
        if (gap_ms < 1000.0)
            completionGapMs_.add(gap_ms / static_cast<double>(n),
                                 options_.ewmaAlpha);
    }
    lastCompletionAt_ = now;
    hasLastCompletion_ = true;
    totalObservations_++;
}

void
AdmissionController::observeQueueDelay(double queueWaitMs, double occupancy)
{
    std::lock_guard<std::mutex> lock(mutex_);
    queueDelayMs_.add(queueWaitMs, options_.ewmaAlpha);
    occupancy_.add(occupancy, options_.ewmaAlpha);
    updateLevelLocked(RuntimeClock::now());
}

void
AdmissionController::noteRelaxed()
{
    std::lock_guard<std::mutex> lock(mutex_);
    relaxed_++;
}

std::uint64_t
AdmissionController::sheds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sheds_;
}

std::uint64_t
AdmissionController::relaxedSolves() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return relaxed_;
}

std::uint64_t
AdmissionController::transitions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return transitions_;
}

double
AdmissionController::levelResidencyMs(int level) const
{
    ENODE_ASSERT(level >= 0 && level < 4, "brownout level out of range");
    std::lock_guard<std::mutex> lock(mutex_);
    double ms = residencyMs_[level];
    // The current level's open interval counts too, so residency adds
    // up to elapsed time at any query point.
    if (level == level_.load(std::memory_order_relaxed))
        ms += toMs(RuntimeClock::now() - levelSince_);
    return ms;
}

StatGroup
AdmissionController::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    StatGroup group("overload");
    const int level = level_.load(std::memory_order_relaxed);
    group.set("overload.brownout_level", static_cast<double>(level));
    group.set("overload.sheds", static_cast<double>(sheds_));
    group.set("overload.relaxed_solves", static_cast<double>(relaxed_));
    group.set("overload.transitions", static_cast<double>(transitions_));
    group.set("overload.load_score", loadScoreLocked());
    group.set("overload.shed_rate", shedRate_);
    group.set("overload.queue_delay_ewma_ms", queueDelayMs_.value);
    group.set("overload.occupancy_ewma", occupancy_.value);
    group.set("overload.service_ewma_ms", serviceMs_.value);
    for (int l = 0; l < 4; l++) {
        double ms = residencyMs_[l];
        if (l == level)
            ms += toMs(RuntimeClock::now() - levelSince_);
        group.set("overload.residency_l" + std::to_string(l) + "_ms", ms);
    }
    return group;
}

} // namespace enode
