#include "runtime/request_queue.h"

#include <algorithm>

#include "common/logging.h"

namespace enode {

RequestQueue::RequestQueue(std::size_t capacity, SelectPolicy policy)
    : capacity_(capacity), policy_(policy)
{
    ENODE_ASSERT(capacity_ >= 1, "request queue needs capacity >= 1");
    heap_.reserve(capacity_);
}

bool
RequestQueue::dispatchesAfter(const QueueEntry &a, const QueueEntry &b) const
{
    if (policy_ == SelectPolicy::LaterStreamFirst) {
        if (a.request.stream != b.request.stream)
            return a.request.stream < b.request.stream;
        if (a.request.deadline != b.request.deadline)
            return a.request.deadline > b.request.deadline;
    }
    return a.seq > b.seq; // admission order last (and all of Fifo)
}

bool
RequestQueue::tryPush(QueueEntry &entry)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Closed-queue and full-queue rejections are different events
        // and must be counted apart: a push racing shutdown used to
        // vanish from the books entirely, leaving rejected() short of
        // the producers actually turned away.
        if (closed_) {
            closedRejected_++;
            return false;
        }
        if (heap_.size() >= capacity_) {
            rejected_++;
            return false;
        }
        entry.seq = nextSeq_++;
        heap_.push_back(std::move(entry));
        std::push_heap(heap_.begin(), heap_.end(),
                       [this](const QueueEntry &a, const QueueEntry &b) {
                           return dispatchesAfter(a, b);
                       });
        peakSize_ = std::max(peakSize_, heap_.size());
    }
    notEmpty_.notify_one();
    return true;
}

bool
RequestQueue::pop(QueueEntry &out)
{
    std::unique_lock<std::mutex> lock(mutex_);
    notEmpty_.wait(lock, [this] { return closed_ || !heap_.empty(); });
    if (heap_.empty())
        return false; // closed and drained
    std::pop_heap(heap_.begin(), heap_.end(),
                  [this](const QueueEntry &a, const QueueEntry &b) {
                      return dispatchesAfter(a, b);
                  });
    out = std::move(heap_.back());
    heap_.pop_back();
    return true;
}

PopStatus
RequestQueue::popUntil(QueueEntry &out, RuntimeClock::time_point deadline)
{
    std::unique_lock<std::mutex> lock(mutex_);
    notEmpty_.wait_until(lock, deadline,
                         [this] { return closed_ || !heap_.empty(); });
    if (heap_.empty())
        return closed_ ? PopStatus::Closed : PopStatus::TimedOut;
    std::pop_heap(heap_.begin(), heap_.end(),
                  [this](const QueueEntry &a, const QueueEntry &b) {
                      return dispatchesAfter(a, b);
                  });
    out = std::move(heap_.back());
    heap_.pop_back();
    return PopStatus::Ok;
}

std::vector<QueueEntry>
RequestQueue::close(bool drain)
{
    std::vector<QueueEntry> leftovers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        if (!drain) {
            leftovers = std::move(heap_);
            heap_.clear();
            // Cancellation order should match admission order, not heap
            // layout.
            std::sort(leftovers.begin(), leftovers.end(),
                      [](const QueueEntry &a, const QueueEntry &b) {
                          return a.seq < b.seq;
                      });
        }
    }
    notEmpty_.notify_all();
    return leftovers;
}

std::size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return heap_.size();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

std::uint64_t
RequestQueue::rejected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_;
}

std::uint64_t
RequestQueue::closedRejected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closedRejected_;
}

std::size_t
RequestQueue::peakSize() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return peakSize_;
}

} // namespace enode
