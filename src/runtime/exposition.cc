#include "runtime/exposition.h"

#include <cctype>
#include <cmath>
#include <sstream>

namespace enode {

namespace {

/**
 * Keys under these prefixes are monotone event counts between resets;
 * everything else is a point-in-time value.
 */
bool
isCounterKey(const std::string &key)
{
    static const char *kPrefixes[] = {"requests.", "solve.", "watchdog.",
                                      "publisher.", "batch.size."};
    for (const char *prefix : kPrefixes)
        if (key.rfind(prefix, 0) == 0)
            return true;
    // The batch family mixes counts (dispatched/requests/partial
    // failures, plus the size histogram above) with point-in-time
    // occupancy and wait-percentile gauges.
    // The overload family mixes counters (sheds, relaxed solves,
    // transitions) with level/score/residency gauges, so its counters
    // are listed exactly rather than by prefix.
    // Same story for the model-registry family (published/swap counts
    // vs. the live-version and history-depth gauges) and the training
    // family (task/step counts vs. the last-loss gauge).
    static const char *kExact[] = {"batch.dispatched",
                                   "batch.requests",
                                   "batch.partial_failure",
                                   "cache.exact_hit",
                                   "cache.warm_hit",
                                   "cache.miss",
                                   "cache.evict",
                                   "cache.insert",
                                   "cache.single_flight_waits",
                                   "overload.sheds",
                                   "overload.relaxed_solves",
                                   "overload.transitions",
                                   "model.published",
                                   "model.swaps",
                                   "train.tasks",
                                   "train.task_failures",
                                   "train.task_retries",
                                   "train.steps",
                                   "train.published"};
    for (const char *exact : kExact)
        if (key == exact)
            return true;
    return false;
}

} // namespace

std::string
prometheusMetricName(const std::string &key, const std::string &ns)
{
    std::string name = ns.empty() ? "" : ns + "_";
    for (char c : key) {
        const bool legal = std::isalnum(static_cast<unsigned char>(c)) ||
                           c == '_' || c == ':';
        name += legal ? c : '_';
    }
    if (!name.empty() && std::isdigit(static_cast<unsigned char>(name[0])))
        name.insert(name.begin(), '_');
    return name;
}

std::string
prometheusText(const StatGroup &group, const std::string &ns)
{
    std::ostringstream os;
    for (const std::string &key : group.keys()) {
        const double value = group.get(key);
        if (!std::isfinite(value))
            continue; // the text format cannot carry NaN/Inf samples
        const std::string name = prometheusMetricName(key, ns);
        os << "# HELP " << name << ' ' << group.name()
           << (group.name().empty() ? "" : " ") << key << '\n';
        os << "# TYPE " << name << ' '
           << (isCounterKey(key) ? "counter" : "gauge") << '\n';
        os << name << ' ' << value << '\n';
    }
    return os.str();
}

} // namespace enode
