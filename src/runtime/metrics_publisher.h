#ifndef ENODE_RUNTIME_METRICS_PUBLISHER_H
#define ENODE_RUNTIME_METRICS_PUBLISHER_H

/**
 * @file
 * Background gauge sampler for the serving runtime.
 *
 * Counters and latency series are recorded at request edges, but
 * *instantaneous* state — queue depth, in-flight solves, worker
 * occupancy — is only meaningful when sampled on a clock. The publisher
 * owns that clock: registered gauges are polled by a background thread
 * every period, each sample feeding a last-value register and a
 * min/mean/max accumulator, and the whole set publishes as a StatGroup
 * that the Prometheus exposition (runtime/exposition.h) renders
 * alongside the request counters.
 *
 * Samplers must be safe to call from the publisher thread for the
 * publisher's whole lifetime (the server's gauges read atomics and the
 * queue's mutex-guarded size).
 */

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"

namespace enode {

/** Periodic sampler of named gauges on a background thread. */
class MetricsPublisher
{
  public:
    /** Reads one gauge's current value; called on the publisher thread. */
    using Sampler = std::function<double()>;

    MetricsPublisher() = default;

    /** Joins the thread (stop()) if still running. */
    ~MetricsPublisher();

    MetricsPublisher(const MetricsPublisher &) = delete;
    MetricsPublisher &operator=(const MetricsPublisher &) = delete;

    /** Register a gauge. Must be called before start(). */
    void addGauge(std::string name, Sampler sampler);

    /**
     * Start sampling every period_ms milliseconds. One sample of every
     * gauge is taken synchronously here, so even a server that stops
     * immediately publishes a consistent set.
     */
    void start(double period_ms);

    /** Take one final sample and join the thread. Safe to call twice. */
    void stop();

    /** Samples taken so far (per gauge). */
    std::uint64_t samples() const;

    /**
     * Snapshot: "<gauge>.last", "<gauge>.mean", "<gauge>.min",
     * "<gauge>.max" per gauge plus "publisher.samples".
     */
    StatGroup snapshot(const std::string &group_name = "gauges") const;

  private:
    struct Gauge
    {
        std::string name;
        Sampler sampler;
        double last = 0.0;
        Accumulator series;
    };

    void sampleAllLocked();
    void publisherMain();

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<Gauge> gauges_;
    std::uint64_t samples_ = 0;
    double periodMs_ = 0.0;
    bool running_ = false;
    bool stopRequested_ = false;
    std::thread thread_;
};

} // namespace enode

#endif // ENODE_RUNTIME_METRICS_PUBLISHER_H
