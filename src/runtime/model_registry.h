#ifndef ENODE_RUNTIME_MODEL_REGISTRY_H
#define ENODE_RUNTIME_MODEL_REGISTRY_H

/**
 * @file
 * Versioned weight snapshots for online training and hot reload.
 *
 * The registry is the handoff point between the training service and
 * the serving workers: the trainer publishes an immutable snapshot of
 * the master weights, the registry stamps it with a monotonically
 * increasing version, and each worker swaps the latest snapshot into
 * its private NodeModel replica at its next dispatch boundary. The
 * swap is purely thread-local — a worker only touches its own replica
 * between solves — so in-flight inference is never corrupted: a solve
 * that started on version v finishes on version v, and the next
 * dispatch runs on the new weights.
 *
 * Version 0 is the server's construction weights (seeded by the
 * server itself); every publish() bumps the version. Snapshots are
 * shared_ptr-immutable, so readers never block the publisher and a
 * worker mid-swap keeps its snapshot alive even if the bounded
 * history evicts it concurrently.
 */

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "core/node_model.h"
#include "tensor/hash.h"

namespace enode {

/** One immutable versioned copy of a model's parameters. */
struct WeightSnapshot
{
    std::uint64_t version = 0;
    /** (slot name, parameter value) in paramSlots() order. */
    std::vector<std::pair<std::string, Tensor>> params;
    /** Digest of the parameter names and bytes (not the version), so
     *  two versions with identical weights share cache identities. */
    Hash128 paramsDigest;
};

/** Thread-safe store of versioned weight snapshots. */
class ModelRegistry
{
  public:
    /** @param historyCapacity Snapshots retained (>= 1); older versions
     *         are evicted but stay alive for any worker still holding
     *         their shared_ptr. */
    explicit ModelRegistry(std::size_t historyCapacity = 4);

    ModelRegistry(const ModelRegistry &) = delete;
    ModelRegistry &operator=(const ModelRegistry &) = delete;

    /**
     * Install the construction weights as version 0. Called once by
     * the owning server before any publish; does not count as a
     * published update.
     */
    void seed(NodeModel &model);

    /** Capture the model's parameters as the next version and make it
     *  the live one. Returns the new version number. */
    std::uint64_t publish(NodeModel &model);

    /** The live snapshot (never null after seed()). */
    std::shared_ptr<const WeightSnapshot> latest() const;

    /** A specific version, or null if it was evicted / never existed. */
    std::shared_ptr<const WeightSnapshot> at(std::uint64_t version) const;

    /** The live version number; lock-free fast path for worker polls. */
    std::uint64_t latestVersion() const
    {
        return latestVersion_.load(std::memory_order_acquire);
    }

    /** Overwrite the model's parameters with the snapshot's (matched
     *  positionally by slot name and shape; mismatch is fatal). */
    static void applyTo(const WeightSnapshot &snap, NodeModel &model);

    /** Capture a model's parameters (no registry interaction). */
    static std::shared_ptr<const WeightSnapshot>
    capture(NodeModel &model, std::uint64_t version);

    /** publish() calls since construction. */
    std::uint64_t published() const
    {
        return published_.load(std::memory_order_relaxed);
    }

    /** Replica swaps workers reported via noteSwapApplied(). */
    std::uint64_t swapsApplied() const
    {
        return swapsApplied_.load(std::memory_order_relaxed);
    }

    /** A worker finished swapping a replica to the live version. */
    void noteSwapApplied()
    {
        swapsApplied_.fetch_add(1, std::memory_order_relaxed);
    }

    /** "model.*" gauges/counters for exposition. */
    StatGroup snapshotStats() const;

  private:
    const std::size_t historyCapacity_;
    mutable std::mutex mutex_;
    std::deque<std::shared_ptr<const WeightSnapshot>> history_;
    std::atomic<std::uint64_t> latestVersion_{0};
    std::atomic<std::uint64_t> published_{0};
    std::atomic<std::uint64_t> swapsApplied_{0};
};

} // namespace enode

#endif // ENODE_RUNTIME_MODEL_REGISTRY_H
