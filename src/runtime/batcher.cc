#include "runtime/batcher.h"

#include <chrono>
#include <utility>

#include "common/logging.h"

namespace enode {

namespace {

double
toMs(RuntimeClock::duration d)
{
    return std::chrono::duration<double, std::milli>(d).count();
}

bool
expiredAt(const QueueEntry &entry, RuntimeClock::time_point now)
{
    return now > entry.request.deadline;
}

} // namespace

Batcher::Batcher(RequestQueue &queue, std::size_t maxBatch,
                 double maxWaitUs, SolveCache *cache,
                 const AdmissionController *admission)
    : queue_(queue), maxBatch_(maxBatch), maxWaitUs_(maxWaitUs),
      cache_(cache), admission_(admission)
{
    ENODE_ASSERT(maxBatch_ >= 1, "batcher needs maxBatch >= 1");
    ENODE_ASSERT(maxWaitUs_ >= 0.0, "negative collect window");
}

bool
Batcher::cacheReady(const QueueEntry &entry) const
{
    return cache_ != nullptr && entry.request.cacheKey.valid() &&
           cache_->isReady(entry.request.cacheKey);
}

bool
Batcher::compatible(const QueueEntry &a, const QueueEntry &b)
{
    // One batched solve stacks the states into a single tensor, so the
    // shapes must match exactly. Stream and deadline stay per-request:
    // the queue already ordered dispatch, and the solver tracks each
    // sample's deadline through its own guard.
    //
    // The model version must match too: a collect window can span a
    // weight hot swap, and one batched solve runs on exactly one
    // replica version — mixing admissions from both sides of the swap
    // would silently serve the older requests with the newer weights
    // (or vice versa) and break the cache-key/version correspondence.
    // Training tasks never coalesce with anything.
    return a.request.train == nullptr && b.request.train == nullptr &&
           a.request.modelVersion == b.request.modelVersion &&
           a.request.input.shape() == b.request.input.shape();
}

bool
Batcher::takeStash(QueueEntry &out)
{
    std::lock_guard<std::mutex> lock(stashMutex_);
    if (stash_.empty())
        return false;
    out = std::move(stash_.front());
    stash_.pop_front();
    return true;
}

void
Batcher::putStash(QueueEntry entry)
{
    // A FIFO, not a single slot: workers collect concurrently, and two
    // overlapping windows may each stash the incompatible arrival that
    // closed them before either seeds its next batch.
    std::lock_guard<std::mutex> lock(stashMutex_);
    stash_.push_back(std::move(entry));
}

bool
Batcher::collect(CollectedBatch &out)
{
    out.entries.clear();
    out.expired.clear();
    out.cacheHits.clear();
    out.collectWaitMs = 0.0;

    // Seed: the stashed incompatible request from a previous window
    // goes first (it was dispatched by the queue before anything still
    // queued), otherwise block for the next queued request. Requests
    // already past their deadline are diverted to `expired` and the
    // hunt continues — but never past queue closure, and never by
    // blocking while casualties are in hand.
    QueueEntry seed;
    for (;;) {
        if (!takeStash(seed)) {
            if (!out.expired.empty() || !out.cacheHits.empty()) {
                // Diverted entries are waiting on their terminal
                // responses. If the queue has nothing ready right now,
                // ship them instead of parking in a blocking pop — a
                // backlog of lapsed deadlines on a quiet queue would
                // otherwise hang unanswered until the next arrival or
                // shutdown. The next collect() resumes the blocking
                // hunt.
                if (queue_.popUntil(seed, RuntimeClock::now()) !=
                    PopStatus::Ok)
                    return true;
            } else if (!queue_.pop(seed)) {
                // Queue closed and drained — but another worker may
                // have stashed an entry while this one blocked in pop.
                // A final stash check keeps shutdown from stranding it.
                if (!takeStash(seed))
                    return false;
            }
        }
        if (expiredAt(seed, RuntimeClock::now())) {
            out.expired.push_back(std::move(seed));
            continue;
        }
        // A request whose result is already cached never seeds (or
        // delays) a batch: divert it and keep hunting for real work.
        if (cacheReady(seed)) {
            out.cacheHits.push_back(std::move(seed));
            continue;
        }
        break;
    }

    out.firstPop = RuntimeClock::now();
    out.entries.push_back(std::move(seed));

    // A training task always ships solo and immediately: it cannot
    // share a batched solve, and holding a collect window open for it
    // would only delay the inference requests queued behind it.
    if (out.entries.front().request.train != nullptr)
        return true;

    if (maxBatch_ > 1) {
        // Brownout level >= 2 shrinks the collect window: under load,
        // draining queued work beats waiting for coalescing company.
        // Sampled once per window so one batch sees one policy.
        const double wait_us =
            maxWaitUs_ *
            (admission_ != nullptr ? admission_->collectWindowScale()
                                   : 1.0);
        const auto window_close =
            out.firstPop +
            std::chrono::duration_cast<RuntimeClock::duration>(
                std::chrono::duration<double, std::micro>(wait_us));
        while (out.entries.size() < maxBatch_) {
            QueueEntry next;
            const PopStatus status = queue_.popUntil(next, window_close);
            if (status != PopStatus::Ok)
                break; // window lapsed, or queue closed: ship what we have
            if (expiredAt(next, RuntimeClock::now())) {
                out.expired.push_back(std::move(next));
                continue;
            }
            if (cacheReady(next)) {
                out.cacheHits.push_back(std::move(next));
                continue; // answered from cache; keep the slot open
            }
            if (!compatible(out.entries.front(), next)) {
                // The incompatible request seeds the next batch rather
                // than being solved out of order or dropped.
                putStash(std::move(next));
                break;
            }
            out.entries.push_back(std::move(next));
        }
        out.collectWaitMs = toMs(RuntimeClock::now() - out.firstPop);
    }

    // Close-of-window sweep: deadlines that lapsed while the batch
    // waited for company. Applying the screen here (not just at pop)
    // keeps the invariant that an expired request is never solved.
    const auto close_time = RuntimeClock::now();
    std::size_t kept = 0;
    for (std::size_t i = 0; i < out.entries.size(); i++) {
        if (expiredAt(out.entries[i], close_time)) {
            out.expired.push_back(std::move(out.entries[i]));
        } else {
            if (kept != i)
                out.entries[kept] = std::move(out.entries[i]);
            kept++;
        }
    }
    out.entries.resize(kept);
    return true;
}

} // namespace enode
