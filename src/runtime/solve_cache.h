#ifndef ENODE_RUNTIME_SOLVE_CACHE_H
#define ENODE_RUNTIME_SOLVE_CACHE_H

/**
 * @file
 * Two-tier cross-solve cache for repeat inference traffic.
 *
 * Production edge traffic repeats similar initial conditions millions
 * of times; the paper's slope-adaptive search (Sec. VII.A) learns good
 * step sizes only *within* one solve. This cache learns *across*
 * solves, at two granularities:
 *
 *  - **Tier 1 — exact dedup.** Keyed by a strong 128-bit digest of
 *    (model version, solver configuration, input tensor bytes) — see
 *    tensor/hash.h. A hit skips the solve entirely and returns a copy
 *    of the cached output, bitwise identical to what a fresh solve of
 *    the same server would produce (the solver is deterministic given
 *    weights + config + input). Entries are single-flight: while the
 *    first request with a key (the *owner*) is solving, later identical
 *    requests attach to its pending entry as *followers* and are
 *    delivered from the owner's result — N concurrent identical
 *    requests cost one solve.
 *
 *  - **Tier 2 — warm start.** Keyed by a coarse input signature
 *    (quantized input statistics). A hit returns the accepted
 *    dt-schedule of a previous *clean* solve of a statistically similar
 *    input, which the serving path replays through a
 *    WarmStartController (ode/warm_start.h) as first-trial proposals.
 *    Correctness stays with the solver's error test: a stale schedule
 *    costs one rejected trial before the adaptive search takes over.
 *
 * Only *clean* solves populate either tier: status Ok, no degradation
 * ladder rung taken, no retries, and actually delivered by the worker
 * (not taken over by the hang watchdog). Degraded, failed, expired,
 * watchdog-failed, and chaos-corrupted solves are uncacheable, so a
 * fault can never be replayed out of the cache.
 *
 * Concurrency: both tiers are sharded — each shard owns a mutex, an
 * open-addressed-enough unordered_map, and an intrusive LRU list.
 * Shard choice comes off the (already avalanched) key bits, so shard
 * contention is uniform. Capacity is bounded per tier; eviction is LRU
 * among *ready* entries (a pending entry is never evicted — its
 * followers' promises live in it).
 *
 * Memory: cached outputs are value Tensors; the workspace arena
 * (tensor/workspace.h) recycles their buffers across insert/evict, and
 * the hit path copies into pooled storage — zero steady-state heap
 * allocation in both directions.
 */

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "ode/warm_start.h"
#include "runtime/request_queue.h"
#include "tensor/hash.h"

namespace enode {

/** Solve-cache configuration (ServerOptions::cache). */
struct CacheOptions
{
    /** Master switch; disabled costs nothing on any path. */
    bool enabled = false;

    /** Tier-1 capacity in entries (0 disables exact dedup). */
    std::size_t exactCapacity = 1024;

    /** Tier-2 capacity in schedules (0 disables warm-starting). */
    std::size_t warmCapacity = 256;

    /** Lock shards per tier (rounded up to at least 1). */
    std::size_t shards = 8;

    /**
     * Quantization grid of the warm-start input signature: inputs whose
     * mean/RMS fall in the same `signatureQuantum`-sized bucket share a
     * schedule. Coarser = more reuse, more first-trial rejections.
     */
    double signatureQuantum = 0.05;
};

/** Sharded two-tier solve cache. Thread-safe; see file comment. */
class SolveCache
{
  public:
    explicit SolveCache(CacheOptions opts);

    SolveCache(const SolveCache &) = delete;
    SolveCache &operator=(const SolveCache &) = delete;

    /** Verdict of the admission-path lookup. */
    enum class Lookup
    {
        Hit,      ///< `out` holds the cached output; respond immediately
        Attached, ///< entry joined a pending solve; its promise will be
                  ///< fulfilled when the owner publishes
        Miss      ///< no entry; caller should queue and registerPending
    };

    /**
     * Admission-path lookup, atomic per shard. On Hit, `out` receives a
     * copy of the cached value and `entry` is untouched. On Attached,
     * `entry` (promise included) has been moved into the pending
     * entry's follower list. On Miss, `entry` is untouched.
     */
    Lookup lookupOrAttach(const Hash128 &key, QueueEntry &entry,
                          Tensor &out);

    /**
     * Mark `key` in-flight so later identical requests attach instead
     * of solving. Call after the owner request is safely queued.
     * @return false when an entry (pending or ready) already exists —
     *         harmless; the raced request simply solves and publishes.
     */
    bool registerPending(const Hash128 &key);

    /**
     * Dispatch-time screen: true when a ready value exists (the key may
     * have become ready while the request sat in the queue). Copies the
     * value into `out` and bumps the LRU. Pending entries miss.
     */
    bool tryServe(const Hash128 &key, Tensor &out);

    /** Lock-and-peek variant of tryServe without the value copy (the
     *  batcher's pop screen; the worker re-runs tryServe at dispatch). */
    bool isReady(const Hash128 &key) const;

    /**
     * A clean solve of `key` finished with `output`. Stores the value
     * (entering LRU rotation) and detaches any followers; the caller
     * delivers each follower a copy of `output` as its response.
     */
    std::vector<QueueEntry> publishSuccess(const Hash128 &key,
                                           const Tensor &output);

    /**
     * The solve of `key` ended uncacheably (degraded, failed, expired,
     * cancelled, or watchdog-failed). Drops the pending entry and
     * returns its followers; the caller re-dispatches them as ordinary
     * requests (each then solves and publishes for itself). A ready
     * entry is left untouched — a concurrent owner's good value is not
     * invalidated by a later failure.
     */
    std::vector<QueueEntry> publishFailure(const Hash128 &key);

    /**
     * Shutdown sweep: remove every pending entry and return all
     * followers so they can be cancelled. Ready values stay (harmless;
     * the server is tearing down).
     */
    std::vector<QueueEntry> drainPending();

    /**
     * Tier-2 lookup: copy the schedule cached under `sig` into `out`
     * (reusing its capacity) and bump the LRU. `sig` 0 never matches
     * (the serving path uses 0 as "no signature").
     */
    bool warmLookup(std::uint64_t sig, DtSchedule &out);

    /**
     * Tier-2 insert/refresh: harvest the schedule `src` recorded during
     * the solve that just finished cleanly directly into the entry
     * under one shard lock (no intermediate copy).
     */
    void warmInsert(std::uint64_t sig, const WarmStartController &src);

    // Observability ------------------------------------------------

    /** Counters + sizes as a "cache" StatGroup for exposition. */
    StatGroup snapshot() const;

    std::uint64_t exactHits() const { return exactHits_.load(); }
    std::uint64_t warmHits() const { return warmHits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::uint64_t evictions() const { return evictions_.load(); }
    std::uint64_t inserts() const { return inserts_.load(); }
    std::uint64_t singleFlightWaits() const
    {
        return singleFlightWaits_.load();
    }

    /** Entries currently stored (ready + pending) across shards. */
    std::size_t exactSize() const;
    /** Schedules currently stored across shards. */
    std::size_t warmSize() const;

    const CacheOptions &options() const { return opts_; }

  private:
    struct ExactEntry
    {
        Hash128 key;
        bool ready = false;
        Tensor value;
        std::vector<QueueEntry> followers;
    };

    /** The digest is already avalanched; one word of it is the table
     *  hash, equality compares all 128 bits. */
    struct KeyHasher
    {
        std::size_t operator()(const Hash128 &k) const
        {
            return static_cast<std::size_t>(k.lo);
        }
    };

    /** One lock's worth of the exact tier: LRU list (front = hottest)
     *  plus a key -> list-node index. */
    struct ExactShard
    {
        mutable std::mutex mutex;
        std::list<ExactEntry> lru;
        std::unordered_map<Hash128, std::list<ExactEntry>::iterator,
                           KeyHasher>
            map;
    };

    struct WarmEntry
    {
        std::uint64_t sig = 0;
        DtSchedule schedule;
    };

    struct WarmShard
    {
        mutable std::mutex mutex;
        std::list<WarmEntry> lru;
        std::unordered_map<std::uint64_t,
                           std::list<WarmEntry>::iterator>
            map;
    };

    ExactShard &exactShard(const Hash128 &key)
    {
        return exactShards_[key.hi % numShards_];
    }
    const ExactShard &exactShard(const Hash128 &key) const
    {
        return exactShards_[key.hi % numShards_];
    }
    WarmShard &warmShard(std::uint64_t sig)
    {
        return warmShards_[mix64(sig) % numShards_];
    }

    /** Evict ready LRU entries until the shard is within its budget.
     *  Caller holds the shard mutex. */
    void evictLocked(ExactShard &shard);

    CacheOptions opts_;
    std::size_t numShards_ = 1;
    std::size_t exactPerShard_ = 0; ///< capacity budget per shard
    std::size_t warmPerShard_ = 0;
    /** Fixed arrays (shards hold a mutex, so no vector growth); null
     *  when the tier is disabled. */
    std::unique_ptr<ExactShard[]> exactShards_;
    std::unique_ptr<WarmShard[]> warmShards_;

    std::atomic<std::uint64_t> exactHits_{0};
    std::atomic<std::uint64_t> warmHits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> inserts_{0};
    std::atomic<std::uint64_t> singleFlightWaits_{0};
};

} // namespace enode

#endif // ENODE_RUNTIME_SOLVE_CACHE_H
