#ifndef ENODE_RUNTIME_METRICS_H
#define ENODE_RUNTIME_METRICS_H

/**
 * @file
 * Thread-safe serving metrics.
 *
 * Workers record one completion sample per request (queue wait, solve
 * latency, end-to-end latency, f-evals, search trials); the registry
 * summarizes them as p50/p95/p99 percentiles through common/stats
 * SampleSeries and publishes a StatGroup snapshot benches and the
 * example server print. All mutators take one internal mutex — request
 * rates are far below the contention regime where sharded counters
 * would matter.
 */

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/stats.h"
#include "runtime/request.h"

namespace enode {

/** Aggregated view of the serving metrics (one consistent snapshot). */
struct MetricsSummary
{
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t deadlineMisses = 0;

    /** Failed at dequeue: deadline already missed (never solved). */
    std::uint64_t expired = 0;
    /** Terminal failures (ladder exhausted or watchdog trip). */
    std::uint64_t failed = 0;
    /** Refused by deadline-aware admission control at submit. */
    std::uint64_t shed = 0;
    /** Ok responses solved at brownout-relaxed tolerance. */
    std::uint64_t brownoutRelaxed = 0;
    /** Ok responses produced by the degradation ladder. */
    std::uint64_t degraded = 0;
    /** Relaxed-tolerance retry attempts across all requests. */
    std::uint64_t retries = 0;
    /** Watchdog hang-threshold trips. */
    std::uint64_t watchdogTrips = 0;

    /** Per-failure-class counters (originating SolveStatus of every
     *  degraded or failed response). */
    std::uint64_t solveNonFinite = 0;
    std::uint64_t solveStepUnderflow = 0;
    std::uint64_t solveTrialBudget = 0;
    std::uint64_t solveEvalBudget = 0;
    std::uint64_t solveDeadline = 0;

    double queueWaitP50Ms = 0.0, queueWaitP95Ms = 0.0, queueWaitP99Ms = 0.0;
    double solveP50Ms = 0.0, solveP95Ms = 0.0, solveP99Ms = 0.0;
    double totalP50Ms = 0.0, totalP95Ms = 0.0, totalP99Ms = 0.0;
    double totalMaxMs = 0.0;
    /** End-to-end latency of degraded (retried / fallback) responses. */
    double degradedP50Ms = 0.0, degradedP95Ms = 0.0, degradedP99Ms = 0.0;

    /** Mean f-evals / search trials per *solved* Ok response (cache
     *  hits, which do no solver work, are excluded from both). */
    double meanFEvals = 0.0;
    double meanTrials = 0.0;

    /** Ok responses answered from the exact-dedup cache. */
    std::uint64_t cacheHits = 0;
    /** Ok responses whose solve replayed a cached dt-schedule. */
    std::uint64_t warmStarted = 0;
    /** Mean accepted-trials per evaluation point, split by whether the
     *  solve replayed a cached schedule — the bench's headline for the
     *  tier-2 win (cold search pays multiple trials per point; a good
     *  replay pays ~1). */
    double trialsPerPointWarm = 0.0;
    double trialsPerPointCold = 0.0;

    /** Batched solves dispatched (each covers >= 1 request). */
    std::uint64_t batchesDispatched = 0;
    /** Requests carried by those batched solves. Reconciliation: every
     *  batched request terminates through recordCompletion, so this
     *  never exceeds completed + expired + failed. */
    std::uint64_t batchedRequests = 0;
    /** Batches whose samples mixed Ok and non-Ok outcomes. */
    std::uint64_t partialFailures = 0;
    /** Mean requests per dispatched batch (0 when none). */
    double batchOccupancyMean = 0.0;
    /** Coalesce-window wait (first pop to dispatch) percentiles. */
    double coalesceWaitP50Ms = 0.0, coalesceWaitP95Ms = 0.0,
           coalesceWaitP99Ms = 0.0;
    /** batchSizeCounts[i] = batches dispatched with size i + 1. */
    std::vector<std::uint64_t> batchSizeCounts;
};

/** Thread-safe per-request metrics collection. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    void recordAdmitted();
    void recordRejected();
    void recordWatchdogTrip();

    /** One batched solve dispatched carrying `size` requests. */
    void recordBatchDispatch(std::size_t size);
    /** Time one batch spent in the coalescing window before dispatch. */
    void recordCoalesceWait(double ms);
    /** A batch finished with a mix of Ok and non-Ok samples. */
    void recordPartialFailure();

    /**
     * Record a terminal response — the single source of truth for
     * every terminal state, Cancelled included (shutdown builds a
     * Cancelled response per undrained request and routes it here, so
     * nothing is ever double-counted). Counts the response by status,
     * classifies degraded/failed responses by their originating
     * SolveStatus, and feeds the latency series for Ok responses.
     * Invariant: admitted == completed + expired + failed + cancelled
     * + shed once the server has stopped.
     */
    void recordCompletion(const InferResponse &response);

    /** One consistent summary of everything recorded so far. */
    MetricsSummary summary() const;

    /**
     * Flat StatGroup snapshot ("requests.completed",
     * "latency.total.p99_ms", ...) for table/report plumbing.
     */
    StatGroup snapshot(const std::string &group_name = "runtime") const;

    void reset();

  private:
    /** Bump the counter of the response's originating failure class. */
    void countFailureClassLocked(SolveStatus status);

    mutable std::mutex mutex_;
    std::uint64_t admitted_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t cancelled_ = 0;
    std::uint64_t deadlineMisses_ = 0;
    std::uint64_t expired_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t shed_ = 0;
    std::uint64_t brownoutRelaxed_ = 0;
    std::uint64_t degraded_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t watchdogTrips_ = 0;
    std::uint64_t solveNonFinite_ = 0;
    std::uint64_t solveStepUnderflow_ = 0;
    std::uint64_t solveTrialBudget_ = 0;
    std::uint64_t solveEvalBudget_ = 0;
    std::uint64_t solveDeadline_ = 0;
    std::uint64_t batchesDispatched_ = 0;
    std::uint64_t batchedRequests_ = 0;
    std::uint64_t partialFailures_ = 0;
    SampleSeries queueWaitMs_;
    SampleSeries solveMs_;
    SampleSeries totalMs_;
    SampleSeries degradedMs_;
    SampleSeries fEvals_;
    SampleSeries trials_;
    SampleSeries coalesceWaitMs_;
    std::uint64_t cacheHits_ = 0;
    std::uint64_t warmStarted_ = 0;
    SampleSeries trialsPerPointWarm_;
    SampleSeries trialsPerPointCold_;
    /** Bin i counts batches of size i + 1 (clamping at 32). */
    Histogram batchSize_{0.5, 32.5, 32};
};

} // namespace enode

#endif // ENODE_RUNTIME_METRICS_H
