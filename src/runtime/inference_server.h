#ifndef ENODE_RUNTIME_INFERENCE_SERVER_H
#define ENODE_RUNTIME_INFERENCE_SERVER_H

/**
 * @file
 * Concurrent NODE inference server.
 *
 * Turns the single-threaded NodeModel library into a servable engine:
 * a fixed pool of worker threads, each owning a *private replica* of
 * the embedded nets (weights stamped bit-identically from replica 0 at
 * startup and treated as read-only thereafter; all scratch state —
 * layer forward caches, solver controllers, eval counters — is
 * per-worker), drains a bounded MPMC request queue ordered by the same
 * SelectPolicy the hardware priority selector uses. Producers are never
 * blocked: a full queue rejects at admission (backpressure), exactly
 * like the selector's full state buffers.
 *
 * Because solveIvp resets its StepController at every call and each
 * worker's replica is private, a request's output depends only on the
 * weights and the input — results are bitwise identical to a
 * single-threaded NodeModel::forward with the same weights, regardless
 * of worker count or interleaving (tests/test_runtime.cc proves this).
 *
 * Layered deliberately thin so later PRs can add cross-request batching
 * and sharded multi-instance serving behind the same submit() API.
 */

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/task_pool.h"
#include "core/aca_trainer.h"
#include "core/node_model.h"
#include "ode/warm_start.h"
#include "runtime/admission.h"
#include "runtime/batcher.h"
#include "runtime/metrics.h"
#include "runtime/metrics_publisher.h"
#include "runtime/model_registry.h"
#include "runtime/request_queue.h"
#include "runtime/solve_cache.h"

namespace enode {

/** Serving solver defaults: inference-only, so per-point checkpoint
 *  recording is off — responses carry only the output and stats, and
 *  skipping the checkpoint state copies keeps each worker's solve
 *  allocation-free at steady state (per-worker model replicas hold the
 *  solver workspace; the thread-local tensor pool does the rest). */
inline IvpOptions
servingIvpDefaults()
{
    IvpOptions opts;
    opts.recordCheckpoints = false;
    return opts;
}

/**
 * Graceful-degradation policy: what the server does when a solve comes
 * back with a non-Ok SolveStatus (see DESIGN.md "Failure model &
 * degradation ladder").
 *
 * Rung 1 — NonFinite / StepUnderflow: retry once with the tolerance
 * relaxed by retryToleranceFactor (FP16 overflow and minDt underflow
 * are frequently tolerance-induced).
 * Rung 2 — any remaining failure (budgets, deadline, failed retry):
 * fixed-step coarse integration with fallbackSteps steps per layer.
 * Responses recovered by either rung are marked `degraded` with the
 * originating status; if the fallback also fails the request is Failed
 * with an empty output — a non-finite value never leaves the server.
 */
struct DegradePolicy
{
    /** Master switch; disabled means any solve failure is terminal. */
    bool enabled = true;

    /** Rung 1 tolerance multiplier for the single retry. */
    double retryToleranceFactor = 100.0;

    /** Rung 2 fixed-step fallback: steps per integration layer. */
    std::size_t fallbackSteps = 8;

    /**
     * Per-request f-evaluation budget enforced by the per-step solve
     * guard (0 = unlimited). A runaway stepsize search aborts with
     * DeadlineExceeded once the budget is spent.
     */
    std::uint64_t maxFEvalsPerRequest = 0;

    /**
     * Hang threshold in milliseconds (0 = watchdog off). A watchdog
     * thread monitors every worker's in-flight solve — solo or
     * batched; one exceeding the threshold is failed immediately
     * (status Failed for every still-pending sample, one watchdog.trips
     * tick per wedged dispatch) and its solve is flagged to abort at
     * the next accepted step, so a wedged solve costs one dispatch,
     * not a worker.
     */
    double watchdogMs = 0.0;
};

/** Server construction knobs. */
struct ServerOptions
{
    /** Worker threads (= model replicas). */
    std::size_t numWorkers = 4;

    /** Bounded queue capacity; admission rejects beyond this. */
    std::size_t queueCapacity = 256;

    /** Dispatch order, shared with the hardware sim's selector. */
    SelectPolicy policy = SelectPolicy::LaterStreamFirst;

    /** Solver options every request is served with. */
    IvpOptions ivp = servingIvpDefaults();

    /**
     * Intra-op parallelism per request: each worker's conv kernels
     * split their work this many ways on a TaskPool shared by all
     * workers (the software core ring — see common/task_pool.h). 1 =
     * serial kernels (the default). The server clamps the product
     * numWorkers * intraOpThreads to the hardware thread count so the
     * two parallelism levels never oversubscribe the machine; kernel
     * results are bitwise identical at any setting.
     */
    std::size_t intraOpThreads = 1;

    /**
     * Start with the workers gated: requests queue up but nothing
     * dispatches until resume(). Tests use this to stage contention
     * deterministically.
     */
    bool startPaused = false;

    /**
     * Cross-request micro-batching: the maximum number of compatible
     * requests (identical input shape) one worker coalesces into a
     * single batched solve (solveIvpBatched — one shared f evaluation
     * per RK trial, error control per sample). 1 disables batching and
     * serves every request on the solo path; any batch that ends up
     * with one request is solved bitwise identically to that path.
     */
    std::size_t maxBatch = 1;

    /**
     * Collect-window budget in microseconds: once a worker has seeded
     * a batch it waits at most this long for company before solving.
     * Only meaningful when maxBatch > 1. Request deadlines still apply
     * inside the window — a request that expires while waiting is
     * failed, never solved.
     */
    double batchWaitUs = 200.0;

    /** Failure handling: retry/fallback ladder and watchdog. */
    DegradePolicy degrade;

    /**
     * Cross-solve caching for repeat traffic (runtime/solve_cache.h):
     * exact dedup + single-flight on tier 1, dt-schedule warm-starting
     * on tier 2. Off by default; enabling it changes no response's
     * correctness contract — exact hits are bitwise identical to a
     * fresh solve, warm-started solves stay within solver tolerance.
     */
    CacheOptions cache;

    /**
     * Overload control (runtime/admission.h): deadline-aware admission
     * with RequestStatus::Shed, plus the brownout ladder (proactive
     * tolerance relaxation, collect-window shrinking, low-priority
     * shedding). Off by default; when off, admission stays the blind
     * bounded-queue push.
     */
    OverloadOptions overload;

    /**
     * Arm the process-wide span tracer (common/trace_span.h) for this
     * server's lifetime: request, ladder-rung, solver-trial and
     * pipeline spans are recorded into per-thread rings and stay
     * exportable (Tracer::exportChromeTrace) after stop(). Disarmed
     * tracing costs one relaxed atomic load per probe.
     */
    bool traceEnabled = false;

    /** Per-thread trace ring capacity (events); oldest are dropped. */
    std::size_t traceRingCapacity = std::size_t{1} << 13;

    /**
     * Gauge-publisher period in milliseconds; 0 disables the
     * background publisher. When enabled, queue depth, in-flight
     * count and worker occupancy are sampled on this clock and
     * published through publisher() and metricsText().
     */
    double publishPeriodMs = 0.0;
};

/**
 * Largest intra-op width w <= requested with workers * w <= hwThreads
 * (never below 1). Pure so the oversubscription policy is testable with
 * injected hardware counts; hwThreads == 0 means "unknown" (the
 * std::thread::hardware_concurrency failure value) and disables the
 * clamp.
 */
std::size_t clampIntraOpThreads(std::size_t workers, std::size_t requested,
                                std::size_t hwThreads);

/** Concurrent inference-serving runtime over NodeModel replicas. */
class InferenceServer
{
  public:
    /** Builds one structurally identical model replica per call. */
    using ModelFactory = std::function<std::unique_ptr<NodeModel>()>;
    /** Builds one stepsize controller per worker. */
    using ControllerFactory =
        std::function<std::unique_ptr<StepController>()>;

    /**
     * @param make_model Called numWorkers times (sequentially, on the
     *        constructing thread). Replica 0 acts as the weight master:
     *        every other replica's parameters are overwritten with
     *        replica 0's, so all workers serve bit-identical weights
     *        even if the factory is not deterministic.
     * @param options Pool/queue/solver configuration.
     * @param make_controller Per-worker stepsize controller; defaults
     *        to FixedFactorController. Controllers are reset by the
     *        solver at every request, so the choice affects cost, not
     *        determinism.
     */
    InferenceServer(ModelFactory make_model, ServerOptions options,
                    ControllerFactory make_controller = {});

    /** Drains and joins (stop(true)) if still running. */
    ~InferenceServer();

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    /** Outcome of submit(): admission verdict + completion channel. */
    struct Submission
    {
        /** False when the queue was full (backpressure) or the server
         *  stopped; `result` is invalid in that case. */
        bool accepted = false;
        std::uint64_t id = 0;
        std::future<InferResponse> result;
    };

    /**
     * Offer one inference request. Never blocks on a full queue.
     *
     * @param input Initial NODE state h(0).
     * @param stream Priority class (higher = served earlier under
     *        LaterStreamFirst).
     * @param deadline Completion target; breaks ties within a stream
     *        and is checked against the actual completion time.
     */
    Submission submit(
        Tensor input, std::uint32_t stream = 0,
        RuntimeClock::time_point deadline = RuntimeClock::time_point::max());

    /**
     * Offer one gradient task of the training service. Training
     * entries ride the same bounded queue and worker pool as inference
     * (their stream tag and no-deadline stamp make them lose every
     * priority tie under LaterStreamFirst), but bypass the inference
     * metrics, cache, and admission layers entirely — the reconciled
     * terminal counters stay an inference-only identity. The task must
     * outlive its future; the worker writes gradients into the task's
     * fixed slot and answers Ok/Failed through the future. Never
     * blocks; accepted=false on a full queue (the service retries).
     */
    Submission submitTrainTask(TrainTask &task);

    /** Release workers gated by ServerOptions::startPaused. */
    void resume();

    /**
     * Stop serving. With drain=true (default) queued requests are
     * completed first; with drain=false they are failed with status
     * Cancelled. In-flight requests always run to completion. Safe to
     * call more than once.
     */
    void stop(bool drain = true);

    const MetricsRegistry &metrics() const { return metrics_; }
    const RequestQueue &queue() const { return queue_; }
    std::size_t numWorkers() const { return workers_.size(); }

    /** Background gauge sampler; null unless publishPeriodMs > 0. */
    const MetricsPublisher *publisher() const { return publisher_.get(); }

    /** Workers inside serveOne right now (publisher gauge source). */
    std::size_t activeWorkers() const
    {
        return activeWorkers_.load(std::memory_order_relaxed);
    }

    /**
     * Prometheus text exposition of the full observable state: the
     * metrics registry snapshot, queue counters, and (when the
     * publisher runs) sampled gauges.
     */
    std::string metricsText() const;

    /** Effective intra-op width after the oversubscription clamp. */
    std::size_t intraOpThreads() const { return intraOpWidth_; }

    /** The tableau requests are integrated with (RK23, as the paper). */
    const ButcherTableau &tableau() const { return tableau_; }

    /** The solve cache; null unless ServerOptions::cache.enabled. */
    const SolveCache *solveCache() const { return solveCache_.get(); }

    /** Overload controller; null unless ServerOptions::overload.enabled. */
    const AdmissionController *admission() const { return admission_.get(); }

    /** Digest of (weights, solver config) every cache key embeds,
     *  for the *live* registry version; invalid when caching is off.
     *  Exposed for key-stability tests — after a weight hot swap the
     *  value changes, which is exactly what keeps post-swap requests
     *  from hitting pre-swap cache entries. */
    Hash128 modelDigest() const;

    /**
     * The versioned weight store. The training service publishes new
     * versions through it; workers hot-swap their private replicas to
     * the latest version at dispatch boundaries (never mid-solve).
     */
    ModelRegistry &registry() { return registry_; }
    const ModelRegistry &registry() const { return registry_; }

  private:
    struct Worker
    {
        std::unique_ptr<NodeModel> model;
        std::unique_ptr<StepController> controller;
        /**
         * One controller per batch slot (sized maxBatch when batching
         * is on): the batched solver drives each sample's stepsize
         * search with its own controller, exactly as the solo path
         * would, so batch composition cannot perturb a sample's steps.
         */
        std::vector<std::unique_ptr<StepController>> batchControllers;
        /**
         * Warm-start decorators over the controllers above (solo and
         * per batch slot), present only when the cache's warm tier is
         * on. Rung-0 solves run through the decorator (replay +
         * record); ladder rungs use the wrapped controller directly.
         */
        std::unique_ptr<WarmStartController> warm;
        std::vector<std::unique_ptr<WarmStartController>> batchWarm;
        /** Replay buffers the decorators copy cached schedules into
         *  (per slot, reused across requests — no steady-state alloc). */
        DtSchedule warmScratch;
        std::vector<DtSchedule> batchWarmScratch;
        /** Registry version the serving replica currently holds. */
        std::uint64_t replicaVersion = 0;
        /**
         * Private training replica, built lazily on the first training
         * task this worker serves (inference-only servers never pay
         * for it). Separate from the serving replica so a training
         * solve's scratch state (layer caches, checkpoints) can never
         * perturb concurrent inference, and so the training weights —
         * synced per step from the task's snapshot — are decoupled
         * from whatever version the serving replica has swapped to.
         */
        std::unique_ptr<NodeModel> trainModel;
        std::unique_ptr<StepController> trainController;
        /** ACA backward buffers, persistent across training tasks. */
        AcaWorkspace acaWs;
        /** Step whose weights trainModel currently holds (~0 = none). */
        std::uint64_t trainStep = ~std::uint64_t{0};
        std::thread thread;
    };

    /**
     * Per-worker in-flight work slot, shared between the worker and
     * the watchdog. One slot covers one dispatch — a single request on
     * the solo path, every sample of a coalesced batch on the batched
     * path — so the hang watchdog protects both identically. Exactly
     * one of worker/watchdog delivers each sample's response: the
     * first to flip that sample's `delivered` flag under the slot
     * mutex owns its promise. `abort` is the cooperative kill switch
     * the solve guards poll (one shared flag: a wedged batched solve
     * is one wedged thread, so the whole dispatch aborts together).
     */
    struct InFlight
    {
        /** One response channel; a batch of n publishes n of these. */
        struct Sample
        {
            std::promise<InferResponse> promise;
            bool delivered = false; ///< its response has been set
            std::uint64_t id = 0;
            /**
             * Must default to "no deadline" exactly like
             * InferRequest::deadline. A value-initialized time_point is
             * the clock epoch, which made the watchdog's deadlineMet
             * check read a stale epoch deadline as "missed" for any
             * slot that tripped before its first publish.
             */
            RuntimeClock::time_point deadline =
                RuntimeClock::time_point::max();
            double queueWaitMs = 0.0;
            /**
             * Training-task sample: the watchdog still protects it (a
             * wedged training solve is failed and aborted like any
             * other), but its terminal must NOT feed the inference
             * metrics — training entries are never recordAdmitted, so
             * counting their completions would break the reconciled
             * admitted == completed + ... identity.
             */
            bool train = false;
        };

        std::mutex mutex;
        bool active = false; ///< a solve is running right now
        RuntimeClock::time_point start{};
        std::vector<Sample> samples;
        std::atomic<bool> abort{false};
    };

    void workerMain(std::size_t worker_id);
    void serveOne(std::size_t worker_id, QueueEntry &entry);
    /**
     * Serve one gradient task: sync the worker's training replica to
     * the task's weight snapshot, run forward + ACA backward, write
     * the gradients into the task's fixed slot, answer Ok/Failed.
     */
    void serveTrain(std::size_t worker_id, QueueEntry &entry);
    /**
     * Dispatch-boundary hot swap: if the registry has published past
     * the worker's replica version, overwrite the replica's weights
     * with the latest snapshot. Called only between solves on the
     * worker's own thread, so in-flight requests are never touched; a
     * request admitted against an older version is still served (on
     * the newer weights) but its solve can no longer publish into the
     * cache, whose key embeds the admission-time version digest.
     */
    void maybeSwapReplica(std::size_t worker_id);
    /**
     * Cache-identity digest for a registry version: the solver-config
     * digest combined with the snapshot's parameter digest. The
     * version *number* is deliberately not mixed in — two versions
     * with bitwise-identical weights produce identical outputs and
     * should share cache entries. Cached per version under a mutex
     * (workers and the admission path race on it).
     */
    Hash128 digestFor(std::uint64_t version) const;
    /**
     * Answer `entry` with a copy of the cached `value` (exact-tier
     * hit or single-flight follower delivery): full Ok response with
     * cacheHit set, zero solver stats, routed through the single
     * accounting path. A lapsed deadline turns the response into
     * DeadlineExceeded — the same terminal the request would have
     * received from the queue.
     */
    void deliverCacheHit(std::size_t worker_id, QueueEntry &entry,
                         Tensor value);
    /** deliverCacheHit for every follower an owner's solve released. */
    void deliverFollowers(std::size_t worker_id,
                          std::vector<QueueEntry> followers,
                          const Tensor &value);
    /**
     * A pending solve failed: push its followers back into the queue
     * to be solved as ordinary requests; followers the (closing) queue
     * refuses are Cancelled.
     */
    void redispatchFollowers(std::vector<QueueEntry> followers);
    /**
     * Terminal bookkeeping for a keyed request that did not produce a
     * cacheable value (expired / failed / degraded / cancelled /
     * watchdog-taken): retract its pending entry and re-dispatch the
     * followers. No-op for unkeyed requests.
     */
    void retractPending(const InferRequest &request);
    /**
     * Serve one coalesced batch: fail the expired entries, run the
     * batched solve, then walk the degradation ladder per failing
     * sample (its batchmates are unaffected). Handles batches of any
     * size >= 1.
     */
    void serveBatch(std::size_t worker_id, CollectedBatch &batch);
    /** Fail a request whose deadline lapsed before it was solved. */
    void expireEntry(std::size_t worker_id, QueueEntry &entry);
    /**
     * Terminal RequestStatus::Shed response for a request refused by
     * admission control: full accounting through recordCompletion, the
     * promise fulfilled immediately, nothing ever queued.
     */
    void shedEntry(QueueEntry &entry, double estimateMs);
    /** Rung 2: fixed-step coarse integration of every layer. */
    NodeForwardResult fallbackForward(Worker &worker, const Tensor &input);
    void watchdogMain();
    void waitWhilePaused();

    ServerOptions options_;
    ButcherTableau tableau_;
    RequestQueue queue_;
    /** Coalescing stage between the queue and the workers; null when
     *  maxBatch == 1 (workers pop the queue directly). */
    std::unique_ptr<Batcher> batcher_;
    /** Two-tier cross-solve cache; null when cache.enabled is false. */
    std::unique_ptr<SolveCache> solveCache_;
    /** Overload controller; null when overload.enabled is false. */
    std::unique_ptr<AdmissionController> admission_;
    /** Versioned weight snapshots (seeded with version 0 at build). */
    ModelRegistry registry_;
    /** Solver-config half of the cache digest (weights live in the
     *  registry snapshots); valid only when caching is on. */
    Hash128 configDigest_;
    /** digestFor() memo: one entry, keyed by version. */
    mutable std::mutex digestMutex_;
    mutable std::uint64_t digestVersion_ = ~std::uint64_t{0};
    mutable Hash128 digestCache_;
    /** Factories kept for lazily building per-worker training replicas. */
    ModelFactory modelFactory_;
    ControllerFactory controllerFactory_;
    /** Training-path counters (outside MetricsRegistry by design). */
    std::atomic<std::uint64_t> trainTasks_{0};
    std::atomic<std::uint64_t> trainTaskFailures_{0};
    MetricsRegistry metrics_;
    std::vector<std::unique_ptr<Worker>> workers_;

    /** Post-clamp kernel split width every worker runs at. */
    std::size_t intraOpWidth_ = 1;
    /** Shared kernel-tile pool: numWorkers * (width - 1) threads, so
     *  running threads stay bounded even when all workers compute. */
    std::unique_ptr<TaskPool> intraOpPool_;

    /** One slot per worker; index-aligned with workers_. */
    std::vector<std::unique_ptr<InFlight>> inflight_;
    std::unique_ptr<MetricsPublisher> publisher_;
    std::atomic<std::size_t> activeWorkers_{0};
    std::thread watchdog_;
    std::mutex watchdogMutex_;
    std::condition_variable watchdogCv_;
    bool watchdogStop_ = false;

    std::mutex pauseMutex_;
    std::condition_variable pauseCv_;
    bool paused_ = false;

    std::atomic<std::uint64_t> nextRequestId_{0};
    std::atomic<std::uint64_t> nextCompletionIndex_{0};
    std::atomic<bool> stopped_{false};
};

} // namespace enode

#endif // ENODE_RUNTIME_INFERENCE_SERVER_H
