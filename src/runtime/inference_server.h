#ifndef ENODE_RUNTIME_INFERENCE_SERVER_H
#define ENODE_RUNTIME_INFERENCE_SERVER_H

/**
 * @file
 * Concurrent NODE inference server.
 *
 * Turns the single-threaded NodeModel library into a servable engine:
 * a fixed pool of worker threads, each owning a *private replica* of
 * the embedded nets (weights stamped bit-identically from replica 0 at
 * startup and treated as read-only thereafter; all scratch state —
 * layer forward caches, solver controllers, eval counters — is
 * per-worker), drains a bounded MPMC request queue ordered by the same
 * SelectPolicy the hardware priority selector uses. Producers are never
 * blocked: a full queue rejects at admission (backpressure), exactly
 * like the selector's full state buffers.
 *
 * Because solveIvp resets its StepController at every call and each
 * worker's replica is private, a request's output depends only on the
 * weights and the input — results are bitwise identical to a
 * single-threaded NodeModel::forward with the same weights, regardless
 * of worker count or interleaving (tests/test_runtime.cc proves this).
 *
 * Layered deliberately thin so later PRs can add cross-request batching
 * and sharded multi-instance serving behind the same submit() API.
 */

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/task_pool.h"
#include "core/node_model.h"
#include "runtime/metrics.h"
#include "runtime/request_queue.h"

namespace enode {

/** Serving solver defaults: inference-only, so per-point checkpoint
 *  recording is off — responses carry only the output and stats, and
 *  skipping the checkpoint state copies keeps each worker's solve
 *  allocation-free at steady state (per-worker model replicas hold the
 *  solver workspace; the thread-local tensor pool does the rest). */
inline IvpOptions
servingIvpDefaults()
{
    IvpOptions opts;
    opts.recordCheckpoints = false;
    return opts;
}

/** Server construction knobs. */
struct ServerOptions
{
    /** Worker threads (= model replicas). */
    std::size_t numWorkers = 4;

    /** Bounded queue capacity; admission rejects beyond this. */
    std::size_t queueCapacity = 256;

    /** Dispatch order, shared with the hardware sim's selector. */
    SelectPolicy policy = SelectPolicy::LaterStreamFirst;

    /** Solver options every request is served with. */
    IvpOptions ivp = servingIvpDefaults();

    /**
     * Intra-op parallelism per request: each worker's conv kernels
     * split their work this many ways on a TaskPool shared by all
     * workers (the software core ring — see common/task_pool.h). 1 =
     * serial kernels (the default). The server clamps the product
     * numWorkers * intraOpThreads to the hardware thread count so the
     * two parallelism levels never oversubscribe the machine; kernel
     * results are bitwise identical at any setting.
     */
    std::size_t intraOpThreads = 1;

    /**
     * Start with the workers gated: requests queue up but nothing
     * dispatches until resume(). Tests use this to stage contention
     * deterministically.
     */
    bool startPaused = false;
};

/**
 * Largest intra-op width w <= requested with workers * w <= hwThreads
 * (never below 1). Pure so the oversubscription policy is testable with
 * injected hardware counts; hwThreads == 0 means "unknown" (the
 * std::thread::hardware_concurrency failure value) and disables the
 * clamp.
 */
std::size_t clampIntraOpThreads(std::size_t workers, std::size_t requested,
                                std::size_t hwThreads);

/** Concurrent inference-serving runtime over NodeModel replicas. */
class InferenceServer
{
  public:
    /** Builds one structurally identical model replica per call. */
    using ModelFactory = std::function<std::unique_ptr<NodeModel>()>;
    /** Builds one stepsize controller per worker. */
    using ControllerFactory =
        std::function<std::unique_ptr<StepController>()>;

    /**
     * @param make_model Called numWorkers times (sequentially, on the
     *        constructing thread). Replica 0 acts as the weight master:
     *        every other replica's parameters are overwritten with
     *        replica 0's, so all workers serve bit-identical weights
     *        even if the factory is not deterministic.
     * @param options Pool/queue/solver configuration.
     * @param make_controller Per-worker stepsize controller; defaults
     *        to FixedFactorController. Controllers are reset by the
     *        solver at every request, so the choice affects cost, not
     *        determinism.
     */
    InferenceServer(ModelFactory make_model, ServerOptions options,
                    ControllerFactory make_controller = {});

    /** Drains and joins (stop(true)) if still running. */
    ~InferenceServer();

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    /** Outcome of submit(): admission verdict + completion channel. */
    struct Submission
    {
        /** False when the queue was full (backpressure) or the server
         *  stopped; `result` is invalid in that case. */
        bool accepted = false;
        std::uint64_t id = 0;
        std::future<InferResponse> result;
    };

    /**
     * Offer one inference request. Never blocks on a full queue.
     *
     * @param input Initial NODE state h(0).
     * @param stream Priority class (higher = served earlier under
     *        LaterStreamFirst).
     * @param deadline Completion target; breaks ties within a stream
     *        and is checked against the actual completion time.
     */
    Submission submit(
        Tensor input, std::uint32_t stream = 0,
        RuntimeClock::time_point deadline = RuntimeClock::time_point::max());

    /** Release workers gated by ServerOptions::startPaused. */
    void resume();

    /**
     * Stop serving. With drain=true (default) queued requests are
     * completed first; with drain=false they are failed with status
     * Cancelled. In-flight requests always run to completion. Safe to
     * call more than once.
     */
    void stop(bool drain = true);

    const MetricsRegistry &metrics() const { return metrics_; }
    const RequestQueue &queue() const { return queue_; }
    std::size_t numWorkers() const { return workers_.size(); }

    /** Effective intra-op width after the oversubscription clamp. */
    std::size_t intraOpThreads() const { return intraOpWidth_; }

    /** The tableau requests are integrated with (RK23, as the paper). */
    const ButcherTableau &tableau() const { return tableau_; }

  private:
    struct Worker
    {
        std::unique_ptr<NodeModel> model;
        std::unique_ptr<StepController> controller;
        std::thread thread;
    };

    void workerMain(std::size_t worker_id);
    void waitWhilePaused();

    ServerOptions options_;
    ButcherTableau tableau_;
    RequestQueue queue_;
    MetricsRegistry metrics_;
    std::vector<std::unique_ptr<Worker>> workers_;

    /** Post-clamp kernel split width every worker runs at. */
    std::size_t intraOpWidth_ = 1;
    /** Shared kernel-tile pool: numWorkers * (width - 1) threads, so
     *  running threads stay bounded even when all workers compute. */
    std::unique_ptr<TaskPool> intraOpPool_;

    std::mutex pauseMutex_;
    std::condition_variable pauseCv_;
    bool paused_ = false;

    std::atomic<std::uint64_t> nextRequestId_{0};
    std::atomic<std::uint64_t> nextCompletionIndex_{0};
    std::atomic<bool> stopped_{false};
};

} // namespace enode

#endif // ENODE_RUNTIME_INFERENCE_SERVER_H
