#ifndef ENODE_RUNTIME_REQUEST_QUEUE_H
#define ENODE_RUNTIME_REQUEST_QUEUE_H

/**
 * @file
 * Bounded MPMC priority queue for inference requests.
 *
 * Admission is non-blocking: when the queue is at capacity tryPush
 * rejects immediately and the caller reports backpressure to the
 * client — the producer is never parked indefinitely, matching the
 * hardware selector's reject-on-full state buffers. Consumers block in
 * pop until work arrives or the queue is closed.
 *
 * Ordering reuses the sim's SelectPolicy so software serving and the
 * hardware model agree on what priority means:
 *  - LaterStreamFirst: highest stream tag first (the paper's rule),
 *    tighter deadline breaking ties, then admission order.
 *  - Fifo: strict admission order.
 */

#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <vector>

#include "runtime/request.h"
#include "sim/priority_selector.h"

namespace enode {

/** A queued request plus its completion channel and admission record. */
struct QueueEntry
{
    InferRequest request;
    std::promise<InferResponse> promise;
    RuntimeClock::time_point enqueueTime;
    std::uint64_t seq = 0; ///< admission order, assigned by the queue
};

/** Outcome of a bounded-wait pop (see RequestQueue::popUntil). */
enum class PopStatus
{
    Ok,       ///< an entry was dequeued
    TimedOut, ///< deadline passed with the queue still open and empty
    Closed,   ///< queue closed and fully drained
};

/** Bounded multi-producer multi-consumer priority queue. */
class RequestQueue
{
  public:
    /**
     * @param capacity Maximum queued (undisbatched) requests.
     * @param policy Dispatch order (shared with the hardware sim).
     */
    RequestQueue(std::size_t capacity, SelectPolicy policy);

    /**
     * Offer an entry. Never blocks.
     * @return false when the queue is full or closed; the entry is left
     *         untouched so the caller can fail it appropriately.
     */
    bool tryPush(QueueEntry &entry);

    /**
     * Take the highest-priority entry, blocking while the queue is open
     * and empty.
     * @return false when the queue is closed and fully drained.
     */
    bool pop(QueueEntry &out);

    /**
     * Like pop, but give up at `deadline`: the batching collector uses
     * this to bound how long an open batch waits for company. Returns
     * Ok with an entry, TimedOut when the deadline passed on an open
     * empty queue, or Closed once the queue is closed and drained.
     */
    PopStatus popUntil(QueueEntry &out, RuntimeClock::time_point deadline);

    /**
     * Close the queue: all further pushes fail and blocked consumers
     * wake. With drain=true queued entries stay poppable; with
     * drain=false they are removed and returned so the caller can
     * cancel them.
     */
    std::vector<QueueEntry> close(bool drain);

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    SelectPolicy policy() const { return policy_; }
    bool closed() const;

    /** Producers turned away by a full queue since construction. */
    std::uint64_t rejected() const;
    /** Producers turned away because the queue was closed. Kept apart
     *  from rejected(): backpressure is a capacity signal, a closed
     *  queue is lifecycle — conflating them (or dropping the count, as
     *  an earlier version did) breaks counter reconciliation. */
    std::uint64_t closedRejected() const;
    /** Peak queue occupancy since construction. */
    std::size_t peakSize() const;

  private:
    /** Heap order: true when a dispatches *after* b. */
    bool dispatchesAfter(const QueueEntry &a, const QueueEntry &b) const;

    const std::size_t capacity_;
    const SelectPolicy policy_;

    mutable std::mutex mutex_;
    std::condition_variable notEmpty_;
    std::vector<QueueEntry> heap_; ///< max-heap under dispatchesAfter
    bool closed_ = false;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t closedRejected_ = 0;
    std::size_t peakSize_ = 0;
};

} // namespace enode

#endif // ENODE_RUNTIME_REQUEST_QUEUE_H
