#include "core/aca_trainer.h"

#include "common/logging.h"

namespace enode {

namespace {

/**
 * Discrete adjoint of one explicit RK step.
 *
 * Forward (per the tableau):
 *   y_j = h + dt * sum_{l<j} a_{jl} k_l,   k_j = f(t + c_j dt, y_j)
 *   h'  = h + dt * sum_j b_j k_j
 *
 * Given abar = dL/dh', the reverse sweep computes dL/dh and accumulates
 * dL/dtheta:
 *   kbar_j = dt b_j abar + dt sum_{m>j} a_{mj} ybar_m
 *   ybar_j = kbar_j^T df/dy_j           (VJP through f)
 *   dL/dh  = abar + sum_j ybar_j
 *
 * Stages whose kbar is structurally zero are skipped entirely. For the
 * FSAL RK23 this skips k4 — matching the paper's observation that "the
 * backward pass only computes the integral states k1, k2 and k3"
 * (Sec. IV.B).
 */
Tensor
adjointStep(EmbeddedNet &net, const ButcherTableau &tableau, double t,
            const Tensor &h, double dt, const Tensor &abar, AcaStats &stats)
{
    const std::size_t s = tableau.stages();
    const auto &a = tableau.a();
    const auto &b = tableau.b();
    const auto &c = tableau.c();

    // 1) Local forward step: recover the training states (stage inputs).
    //    This is the "local forward step" of the ACA backward pass.
    std::vector<Tensor> stages(s);
    std::vector<Tensor> stage_inputs(s);
    for (std::size_t j = 0; j < s; j++) {
        Tensor yj = h;
        for (std::size_t l = 0; l < j; l++) {
            if (a[j][l] != 0.0)
                yj.axpy(static_cast<float>(dt * a[j][l]), stages[l]);
        }
        stages[j] = net.eval(t + c[j] * dt, yj);
        stage_inputs[j] = std::move(yj);
        stats.localForwardEvals++;
    }

    // 2+3) Adjoint and parameter-gradient calculation, reverse stage
    //      order (the counter-clockwise loop around the ring, Fig. 7d).
    std::vector<Tensor> ybar(s);
    Tensor hbar = abar;
    for (std::size_t j = s; j-- > 0;) {
        // Structural zero test on tableau coefficients only: the stage
        // contributes nothing if b_j = 0 and no later stage reads k_j.
        bool contributes = b[j] != 0.0;
        for (std::size_t m = j + 1; m < s && !contributes; m++)
            contributes = a[m][j] != 0.0;
        if (!contributes)
            continue;

        Tensor kbar = abar * static_cast<float>(dt * b[j]);
        for (std::size_t m = j + 1; m < s; m++) {
            if (a[m][j] != 0.0 && !ybar[m].empty())
                kbar.axpy(static_cast<float>(dt * a[m][j]), ybar[m]);
        }

        // Re-establish the layer caches at stage j, then pull the VJP.
        // The re-evaluation models reading the stored training states; it
        // is not counted as algorithmic forward work (the hardware reads
        // the states from the training state buffer instead).
        net.eval(t + c[j] * dt, stage_inputs[j]);
        ybar[j] = net.vjp(kbar);
        stats.adjointVjps++;
        hbar += ybar[j];
    }
    return hbar;
}

} // namespace

AcaBackwardResult
acaBackwardLayer(EmbeddedNet &net, const ButcherTableau &tableau,
                 const IvpResult &fwd, const Tensor &grad_output)
{
    AcaBackwardResult result;
    Tensor abar = grad_output;
    // Checkpoints are ordered forward in time; walk them back (T -> 0).
    for (std::size_t i = fwd.checkpoints.size(); i-- > 0;) {
        const Checkpoint &ck = fwd.checkpoints[i];
        abar = adjointStep(net, tableau, ck.t, ck.state, ck.dt, abar,
                           result.stats);
        result.stats.backwardSteps++;
    }
    result.gradInput = std::move(abar);
    return result;
}

AcaBackwardResult
acaBackward(NodeModel &model, const ButcherTableau &tableau,
            const NodeForwardResult &fwd, const Tensor &grad_output)
{
    ENODE_ASSERT(fwd.layers.size() == model.numLayers(),
                 "forward record does not match the model");
    AcaBackwardResult total;
    Tensor abar = grad_output;
    for (std::size_t layer = model.numLayers(); layer-- > 0;) {
        auto layer_result = acaBackwardLayer(model.net(layer), tableau,
                                             fwd.layers[layer], abar);
        abar = std::move(layer_result.gradInput);
        total.stats.accumulate(layer_result.stats);
    }
    total.gradInput = std::move(abar);
    return total;
}

TrainStepResult
classifierTrainStep(NodeClassifier &model, const Tensor &image,
                    std::size_t label, const ButcherTableau &tableau,
                    StepController &controller, const IvpOptions &opts,
                    TrialEvaluator *evaluator)
{
    TrainStepResult out;
    auto fwd = model.forward(image, tableau, controller, opts, evaluator);
    out.forwardStats = fwd.node.totalStats;

    auto loss = softmaxCrossEntropy(fwd.logits, label);
    out.loss = loss.value;
    out.correct = argmax(fwd.logits) == label;

    // Head backward (standard backprop), then ACA through the NODE, then
    // encoder backward.
    const Tensor grad_node_out = model.head().backward(loss.grad);
    auto aca = acaBackward(model.node(), tableau, fwd.node, grad_node_out);
    out.backwardStats = aca.stats;
    model.encoder().backward(aca.gradInput);
    return out;
}

TrainStepResult
regressionTrainStep(NodeModel &model, const Tensor &x0, const Tensor &target,
                    const ButcherTableau &tableau,
                    StepController &controller, const IvpOptions &opts,
                    TrialEvaluator *evaluator)
{
    TrainStepResult out;
    auto fwd = model.forward(x0, tableau, controller, opts, evaluator);
    out.forwardStats = fwd.totalStats;

    auto loss = mseLoss(fwd.output, target);
    out.loss = loss.value;

    auto aca = acaBackward(model, tableau, fwd, loss.grad);
    out.backwardStats = aca.stats;
    return out;
}

} // namespace enode
