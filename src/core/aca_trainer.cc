#include "core/aca_trainer.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace enode {

namespace {

/**
 * Discrete adjoint of one explicit RK step.
 *
 * Forward (per the tableau):
 *   y_j = h + dt * sum_{l<j} a_{jl} k_l,   k_j = f(t + c_j dt, y_j)
 *   h'  = h + dt * sum_j b_j k_j
 *
 * Given abar = dL/dh', the reverse sweep computes dL/dh and accumulates
 * dL/dtheta:
 *   kbar_j = dt b_j abar + dt sum_{m>j} a_{mj} ybar_m
 *   ybar_j = kbar_j^T df/dy_j           (VJP through f)
 *   dL/dh  = abar + sum_j ybar_j
 *
 * Stages whose kbar is structurally zero are skipped entirely. For the
 * FSAL RK23 this skips k4 — matching the paper's observation that "the
 * backward pass only computes the integral states k1, k2 and k3"
 * (Sec. IV.B).
 */
Tensor
adjointStep(EmbeddedNet &net, const ButcherTableau &tableau, double t,
            const Tensor &h, double dt, const Tensor &abar, AcaStats &stats,
            AcaWorkspace &ws)
{
    const std::size_t s = tableau.stages();
    const auto &a = tableau.a();
    const auto &b = tableau.b();
    const auto &c = tableau.c();

    // Size the workspace once per tableau; subsequent steps reuse every
    // buffer (the Tensor assignments below recycle storage through the
    // thread-local pool instead of allocating).
    if (ws.stages.size() < s) {
        ws.stages.resize(s);
        ws.stageInputs.resize(s);
        ws.ybar.resize(s);
    }
    if (ws.ybarSet.size() < s)
        ws.ybarSet.resize(s);
    std::fill(ws.ybarSet.begin(), ws.ybarSet.end(), char{0});

    // 1) Local forward step: recover the training states (stage inputs).
    //    This is the "local forward step" of the ACA backward pass.
    for (std::size_t j = 0; j < s; j++) {
        Tensor &yj = ws.stageInputs[j];
        yj.copyFrom(h);
        for (std::size_t l = 0; l < j; l++) {
            if (a[j][l] != 0.0)
                yj.axpy(static_cast<float>(dt * a[j][l]), ws.stages[l]);
        }
        ws.stages[j] = net.eval(t + c[j] * dt, yj);
        stats.localForwardEvals++;
    }

    // 2+3) Adjoint and parameter-gradient calculation, reverse stage
    //      order (the counter-clockwise loop around the ring, Fig. 7d).
    ws.hbar.copyFrom(abar);
    for (std::size_t j = s; j-- > 0;) {
        // Structural zero test on tableau coefficients only: the stage
        // contributes nothing if b_j = 0 and no later stage reads k_j.
        bool contributes = b[j] != 0.0;
        for (std::size_t m = j + 1; m < s && !contributes; m++)
            contributes = a[m][j] != 0.0;
        if (!contributes)
            continue;

        ws.kbar.copyFrom(abar);
        ws.kbar.scale(static_cast<float>(dt * b[j]));
        for (std::size_t m = j + 1; m < s; m++) {
            // The ybarSet flag, not emptiness, gates the read: the
            // persistent ws.ybar[m] may hold last step's adjoint.
            if (a[m][j] != 0.0 && ws.ybarSet[m])
                ws.kbar.axpy(static_cast<float>(dt * a[m][j]), ws.ybar[m]);
        }

        // Re-establish the layer caches at stage j, then pull the VJP.
        // The re-evaluation models reading the stored training states; it
        // is not counted as algorithmic forward work (the hardware reads
        // the states from the training state buffer instead).
        net.eval(t + c[j] * dt, ws.stageInputs[j]);
        ws.ybar[j] = net.vjp(ws.kbar);
        ws.ybarSet[j] = 1;
        stats.adjointVjps++;
        ws.hbar += ws.ybar[j];
    }
    // Hand the accumulated adjoint out by move; next step's copyFrom
    // re-acquires a pooled buffer, so no heap traffic in steady state.
    return std::move(ws.hbar);
}

AcaWorkspace &
threadWorkspace()
{
    thread_local AcaWorkspace ws;
    return ws;
}

} // namespace

AcaBackwardResult
acaBackwardLayer(EmbeddedNet &net, const ButcherTableau &tableau,
                 const IvpResult &fwd, const Tensor &grad_output,
                 AcaWorkspace *ws)
{
    AcaWorkspace &work = ws ? *ws : threadWorkspace();
    AcaBackwardResult result;
    Tensor abar = grad_output;
    // Checkpoints are ordered forward in time; walk them back (T -> 0).
    for (std::size_t i = fwd.checkpoints.size(); i-- > 0;) {
        const Checkpoint &ck = fwd.checkpoints[i];
        abar = adjointStep(net, tableau, ck.t, ck.state, ck.dt, abar,
                           result.stats, work);
        result.stats.backwardSteps++;
    }
    result.gradInput = std::move(abar);
    return result;
}

AcaBackwardResult
acaBackward(NodeModel &model, const ButcherTableau &tableau,
            const NodeForwardResult &fwd, const Tensor &grad_output,
            AcaWorkspace *ws)
{
    ENODE_ASSERT(fwd.layers.size() == model.numLayers(),
                 "forward record does not match the model");
    AcaBackwardResult total;
    Tensor abar = grad_output;
    for (std::size_t layer = model.numLayers(); layer-- > 0;) {
        auto layer_result = acaBackwardLayer(model.net(layer), tableau,
                                             fwd.layers[layer], abar, ws);
        abar = std::move(layer_result.gradInput);
        total.stats.accumulate(layer_result.stats);
    }
    total.gradInput = std::move(abar);
    return total;
}

TrainStepResult
classifierTrainStep(NodeClassifier &model, const Tensor &image,
                    std::size_t label, const ButcherTableau &tableau,
                    StepController &controller, const IvpOptions &opts,
                    TrialEvaluator *evaluator)
{
    TrainStepResult out;
    auto fwd = model.forward(image, tableau, controller, opts, evaluator);
    out.forwardStats = fwd.node.totalStats;
    out.forwardStatus = fwd.node.status;
    if (out.forwardStatus != SolveStatus::Ok)
        return out;

    auto loss = softmaxCrossEntropy(fwd.logits, label);
    out.loss = loss.value;
    out.correct = argmax(fwd.logits) == label;

    // Head backward (standard backprop), then ACA through the NODE, then
    // encoder backward.
    const Tensor grad_node_out = model.head().backward(loss.grad);
    auto aca = acaBackward(model.node(), tableau, fwd.node, grad_node_out);
    out.backwardStats = aca.stats;
    model.encoder().backward(aca.gradInput);
    return out;
}

TrainStepResult
regressionTrainStep(NodeModel &model, const Tensor &x0, const Tensor &target,
                    const ButcherTableau &tableau,
                    StepController &controller, const IvpOptions &opts,
                    TrialEvaluator *evaluator, AcaWorkspace *ws,
                    SolveGuard *guard)
{
    TrainStepResult out;
    auto fwd = model.forward(x0, tableau, controller, opts, evaluator, guard);
    out.forwardStats = fwd.totalStats;
    out.forwardStatus = fwd.status;
    if (out.forwardStatus != SolveStatus::Ok)
        return out;

    auto loss = mseLoss(fwd.output, target);
    out.loss = loss.value;

    auto aca = acaBackward(model, tableau, fwd, loss.grad, ws);
    out.backwardStats = aca.stats;
    return out;
}

} // namespace enode
