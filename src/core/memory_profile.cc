#include "core/memory_profile.h"

namespace enode {

MemoryFootprint
nodeInferenceFootprint(const NodeWorkloadProfile &profile)
{
    MemoryFootprint out;
    // Peak residency during a layer-by-layer trial: the state h, every
    // integral state k_1..k_s, and the candidate next state under test.
    out.sizeMaps = 1.0 + static_cast<double>(profile.stages) + 1.0;

    // Each trial writes s integral states and reads them back for the
    // state/error accumulation, updates every partial state and partial
    // error state (read-modify-write), and reads the state / writes the
    // candidate. Per layer: n_eval * n_try trials.
    const double s = static_cast<double>(profile.stages);
    const double per_trial =
        2.0 * s + 2.0 + s * (s - 1.0) + 2.0 * (s - 1.0);
    out.accessMaps = static_cast<double>(profile.nLayers) * profile.nEval *
                     profile.nTry * per_trial;
    return out;
}

MemoryFootprint
nodeTrainingFootprint(const NodeWorkloadProfile &profile)
{
    const MemoryFootprint fwd = nodeInferenceFootprint(profile);
    MemoryFootprint out;

    // Peak size: the forward working set plus the stored checkpoints of
    // one layer (ACA keeps only evaluation points as checkpoints) plus
    // the training states of the step being back-propagated.
    const double training_states =
        static_cast<double>(profile.backwardStages * profile.fDepth);
    out.sizeMaps = fwd.sizeMaps + profile.nEval + training_states;

    // Access: forward trials + checkpoint writes, then per backward step
    // the local forward writes the training states, the adjoint reads
    // them all, and the adjoint/grad state is updated per stage.
    const double checkpoint_traffic =
        static_cast<double>(profile.nLayers) * profile.nEval * 2.0;
    const double per_backward_step =
        2.0 * training_states + 2.0 * profile.backwardStages + 2.0;
    const double backward = static_cast<double>(profile.nLayers) *
                            profile.nEval * per_backward_step;
    out.accessMaps = fwd.accessMaps + checkpoint_traffic + backward;
    return out;
}

MemoryFootprint
resnetInferenceFootprint(std::size_t blocks)
{
    MemoryFootprint out;
    // Layer-by-layer: input and output of the current block only.
    out.sizeMaps = 2.0;
    // Each block reads its input and writes its output once.
    out.accessMaps = 2.0 * static_cast<double>(blocks);
    return out;
}

MemoryFootprint
resnetTrainingFootprint(std::size_t blocks)
{
    MemoryFootprint out;
    // Standard backprop stores every block activation.
    out.sizeMaps = static_cast<double>(blocks);
    // Forward: write each activation; backward: read each activation and
    // propagate one gradient map through (read + write).
    out.accessMaps = 4.0 * static_cast<double>(blocks);
    return out;
}

} // namespace enode
