#ifndef ENODE_CORE_NODE_MODEL_H
#define ENODE_CORE_NODE_MODEL_H

/**
 * @file
 * The Neural-ODE model: a stack of integration layers (Fig. 2(a)).
 *
 * A NODE is a series of first-order ODEs dh/dt = f_i(t, h) (Eq. 1), one
 * per integration layer, each solved as an IVP over its time period with
 * an adaptive integrator. NodeModel drives solveIvp per layer and
 * aggregates statistics; NodeClassifier adds a convolutional encoder and
 * a linear head for the image-classification workloads.
 */

#include <memory>
#include <vector>

#include "common/fault_injection.h"
#include "nn/loss.h"
#include "nn/sequential.h"
#include "ode/batched_ivp.h"
#include "ode/ivp.h"
#include "ode/ode_function.h"

namespace enode {

/** Adapts an EmbeddedNet to the OdeFunction interface. */
class EmbeddedNetOde : public OdeFunction
{
  public:
    explicit EmbeddedNetOde(EmbeddedNet &net) : net_(net) {}

    Tensor
    eval(double t, const Tensor &h) override
    {
        countEval();
        Tensor d = net_.eval(t, h);
        // Chaos probe: an armed fault plan can corrupt this layer
        // output with NaN/Inf at a chosen evaluation index (a single
        // relaxed atomic load when disarmed). This is the exact tensor
        // the RK stepper consumes, so injected corruption flows through
        // the production trial/accept path.
        FaultInjector::instance().maybeCorrupt("node.feval", d.data(),
                                               d.numel());
        return d;
    }

    EmbeddedNet &net() { return net_; }

  private:
    EmbeddedNet &net_;
};

/** Adapts an EmbeddedNet to the BatchedOdeFunction interface. */
class BatchedNetOde : public BatchedOdeFunction
{
  public:
    explicit BatchedNetOde(EmbeddedNet &net) : net_(net) {}

    void
    evalInto(const std::vector<double> &ts, const Tensor &hs,
             Tensor &out) override
    {
        net_.evalBatched(ts, hs, out);
        // Chaos probe per sample, in sample order: walked exactly like
        // the solo path walks successive evals, so a plan's k-th hit
        // deterministically lands on the k-th per-sample evaluation.
        const std::size_t n = ts.size();
        const std::size_t stride = out.numel() / n;
        for (std::size_t i = 0; i < n; i++)
            FaultInjector::instance().maybeCorrupt(
                "node.feval", out.data() + i * stride, stride);
    }

    EmbeddedNet &net() { return net_; }

  private:
    EmbeddedNet &net_;
};

/** Per-sample outcome of a batched forward pass (all sized n). */
struct BatchedForwardResult
{
    std::vector<Tensor> outputs;      ///< h after the last layer
    std::vector<IvpStats> stats;      ///< aggregated over layers
    /**
     * First non-Ok layer status per sample, or Ok. A failing sample
     * stops integrating further layers (its untrustworthy state is
     * still returned) while its batchmates continue.
     */
    std::vector<SolveStatus> status;
};

/** Per-forward-pass record kept for the backward pass. */
struct NodeForwardResult
{
    Tensor output;                    ///< h after the last layer
    std::vector<IvpResult> layers;    ///< per-layer checkpoints and stats
    IvpStats totalStats;              ///< aggregated over layers
    /**
     * First non-Ok layer status, or Ok. A failing layer ends the
     * forward pass immediately — its (untrustworthy) final state is
     * still returned as `output` for diagnostics, but callers must
     * treat any non-Ok forward as unusable.
     */
    SolveStatus status = SolveStatus::Ok;
};

/** A stack of integration layers sharing solver configuration. */
class NodeModel
{
  public:
    /**
     * @param nets One embedded network per integration layer (the state
     *        shape must be preserved by each).
     * @param layer_time Integration period T of each layer (t in [0, T]).
     */
    NodeModel(std::vector<std::unique_ptr<EmbeddedNet>> nets,
              double layer_time = 1.0);

    /**
     * Convenience constructor: num_layers conv embedded nets of the given
     * channel count and depth (the paper's 4-integration-layer NODE with
     * a 4-conv-layer f).
     */
    static std::unique_ptr<NodeModel> makeConv(std::size_t num_layers,
                                               std::size_t channels,
                                               std::size_t f_depth,
                                               Rng &rng);

    /** MLP variant for dynamic-system states. */
    static std::unique_ptr<NodeModel> makeMlp(std::size_t num_layers,
                                              std::size_t dim,
                                              std::size_t hidden,
                                              std::size_t f_depth, Rng &rng);

    /**
     * Augmented NODE (Dupont et al., the paper's Ref. [7]): the state is
     * lifted to dim + aug dimensions, giving the flow room to realize
     * maps a plain NODE cannot (crossing trajectories). Use
     * augmentState()/truncateState() to move between the original and
     * the lifted space.
     */
    static std::unique_ptr<NodeModel> makeAugmentedMlp(
        std::size_t num_layers, std::size_t dim, std::size_t aug,
        std::size_t hidden, std::size_t f_depth, Rng &rng);

    /**
     * Forward pass (inference): solve each layer's IVP in sequence.
     *
     * @param x Initial state h(0) of the first layer.
     * @param tableau Integrator.
     * @param controller Stepsize-search policy; reset per layer.
     * @param opts Solver options (tolerance epsilon etc.).
     * @param evaluator Optional priority/early-stop trial evaluator.
     * @param guard Optional per-accepted-step abort check threaded into
     *        every layer solve (request deadlines, f-eval budgets).
     */
    NodeForwardResult forward(const Tensor &x, const ButcherTableau &tableau,
                              StepController &controller,
                              const IvpOptions &opts,
                              TrialEvaluator *evaluator = nullptr,
                              SolveGuard *guard = nullptr);

    /**
     * Batched forward pass (inference only): solve each layer's IVP for
     * all samples together via solveIvpBatched, sharing one f
     * evaluation per RK stage across the batch while keeping error
     * control, stats, and failure status per sample. A sample that
     * fails a layer drops out of later layers; the rest continue.
     *
     * @param xs Initial states (same shape each).
     * @param controllers One stepsize controller per sample (reset per
     *        layer, like the solo path's single controller).
     * @param guards Optional per-sample abort checks, sized like xs.
     */
    BatchedForwardResult forwardBatched(
        const std::vector<Tensor> &xs, const ButcherTableau &tableau,
        const std::vector<StepController *> &controllers,
        const IvpOptions &opts,
        const std::vector<SolveGuard *> *guards = nullptr);

    std::size_t numLayers() const { return nets_.size(); }
    EmbeddedNet &net(std::size_t layer) { return *nets_.at(layer); }
    const EmbeddedNet &net(std::size_t layer) const
    {
        return *nets_.at(layer);
    }
    double layerTime() const { return layerTime_; }

    /** All parameter slots across layers (for the optimizer). */
    std::vector<ParamSlot> paramSlots();
    void zeroGrad();
    std::size_t paramCount();

    /**
     * Overwrite this model's parameters with the master's (matched by
     * slot name and shape; structural mismatch is fatal). The serving
     * runtime uses this to stamp bit-identical weights into per-worker
     * replicas: the master is treated as read-only shared state and the
     * replica becomes the worker's private scratch copy.
     */
    void syncParametersFrom(NodeModel &master);

  private:
    std::vector<std::unique_ptr<EmbeddedNet>> nets_;
    double layerTime_;
    /**
     * Solver workspace threaded through every layer solve: the RK stage
     * buffers, walking state, and FSAL stage persist across layers and
     * forward calls, so repeated inference on same-shaped inputs
     * allocates nothing. Makes forward() non-reentrant — concurrent
     * serving uses per-worker model replicas (see runtime/).
     */
    IvpWorkspace ivpWorkspace_;
    /** Same role for forwardBatched (also non-reentrant). */
    BatchedIvpWorkspace batchedIvpWorkspace_;
};

/** Lift a rank-1 state with `aug` zero-initialized extra dimensions. */
Tensor augmentState(const Tensor &x, std::size_t aug);

/** Drop the augmented dimensions, keeping the first `dim` entries. */
Tensor truncateState(const Tensor &x, std::size_t dim);

/** Encoder + NODE + classifier head for image workloads. */
class NodeClassifier
{
  public:
    /**
     * @param in_channels Input image channels (3 for CIFAR-like, 1 for
     *        MNIST-like).
     * @param state_channels NODE state channels.
     * @param num_layers Integration layers.
     * @param f_depth Conv layers inside each f.
     * @param num_classes Output classes.
     * @param rng Weight init.
     */
    NodeClassifier(std::size_t in_channels, std::size_t state_channels,
                   std::size_t num_layers, std::size_t f_depth,
                   std::size_t num_classes, Rng &rng);

    /** Logits for one image; forward records kept for training. */
    struct Result
    {
        Tensor logits;
        NodeForwardResult node;
    };

    Result forward(const Tensor &image, const ButcherTableau &tableau,
                   StepController &controller, const IvpOptions &opts,
                   TrialEvaluator *evaluator = nullptr);

    NodeModel &node() { return *node_; }
    Sequential &encoder() { return *encoder_; }
    Sequential &head() { return *head_; }

    std::vector<ParamSlot> paramSlots();
    void zeroGrad();

  private:
    std::unique_ptr<Sequential> encoder_;
    std::unique_ptr<NodeModel> node_;
    std::unique_ptr<Sequential> head_;
};

} // namespace enode

#endif // ENODE_CORE_NODE_MODEL_H
