#include "core/trajectory.h"

#include "common/logging.h"
#include "nn/loss.h"

namespace enode {

TrajectorySample
sampleTrajectory(EmbeddedNet &net, const Tensor &x0, double t0,
                 const std::vector<double> &times,
                 const ButcherTableau &tableau, StepController &controller,
                 const IvpOptions &opts, TrialEvaluator *evaluator)
{
    ENODE_ASSERT(!times.empty(), "sampleTrajectory needs >= 1 time");
    double prev = t0;
    for (double t : times) {
        ENODE_ASSERT(t > prev, "times must be strictly increasing and > t0");
        prev = t;
    }

    TrajectorySample sample;
    sample.states.reserve(times.size());
    sample.segments.reserve(times.size());
    EmbeddedNetOde ode(net);
    Tensor h = x0;
    double t = t0;
    for (double t_next : times) {
        IvpResult segment = solveIvp(ode, h, t, t_next, tableau,
                                     controller, opts, evaluator);
        h = segment.yFinal;
        t = t_next;
        sample.states.push_back(h);
        sample.stats.accumulate(segment.stats);
        sample.segments.push_back(std::move(segment));
    }
    return sample;
}

TrajectoryFitResult
trajectoryTrainStep(EmbeddedNet &net, const Tensor &x0, double t0,
                    const std::vector<TrajectoryObservation> &observations,
                    const ButcherTableau &tableau,
                    StepController &controller, const IvpOptions &opts,
                    TrialEvaluator *evaluator)
{
    ENODE_ASSERT(!observations.empty(), "need >= 1 observation");
    std::vector<double> times;
    times.reserve(observations.size());
    for (const auto &obs : observations)
        times.push_back(obs.t);

    auto sample = sampleTrajectory(net, x0, t0, times, tableau, controller,
                                   opts, evaluator);

    TrajectoryFitResult result;
    result.forwardStats = sample.stats;
    result.predictions = sample.states;

    // Loss: mean of the per-observation MSEs; each observation's
    // gradient carries the 1/n averaging factor.
    const double n = static_cast<double>(observations.size());
    std::vector<Tensor> grads;
    grads.reserve(observations.size());
    for (std::size_t i = 0; i < observations.size(); i++) {
        auto loss = mseLoss(sample.states[i], observations[i].target);
        result.loss += loss.value / n;
        loss.grad *= static_cast<float>(1.0 / n);
        grads.push_back(std::move(loss.grad));
    }

    // Backward: walk the segments in reverse. The adjoint leaving
    // segment i (at time t_i) is the adjoint propagated from later
    // segments *plus* observation i's own loss gradient — the
    // continuous analogue of injecting dL/dh(t_i) at each observed
    // point.
    Tensor abar = grads.back();
    for (std::size_t seg = observations.size(); seg-- > 0;) {
        auto layer = acaBackwardLayer(net, tableau, sample.segments[seg],
                                      abar);
        result.backwardStats.accumulate(layer.stats);
        if (seg > 0) {
            abar = std::move(layer.gradInput);
            abar += grads[seg - 1];
        }
    }
    return result;
}

} // namespace enode
