#ifndef ENODE_CORE_TRAJECTORY_H
#define ENODE_CORE_TRAJECTORY_H

/**
 * @file
 * Trajectory sampling and fitting.
 *
 * NODE's core motivation is continuous-time data (Sec. I): a sensor
 * stream observed at irregular times t_1 < ... < t_n. This module
 * solves one embedded network's ODE across all observation times in a
 * single pass (each [t_{i-1}, t_i] segment is an adaptive solve whose
 * checkpoints are kept) and trains against every observation at once:
 * the ACA backward pass walks the segments in reverse, injecting each
 * observation's loss gradient into the adjoint as it crosses that
 * observation time — the multi-observation generalization of Eq. (4)'s
 * initial condition.
 */

#include <vector>

#include "core/aca_trainer.h"

namespace enode {

/** One ground-truth observation of the trajectory. */
struct TrajectoryObservation
{
    double t;      ///< observation time (strictly increasing, > t0)
    Tensor target; ///< observed state
};

/** Result of a trajectory forward pass. */
struct TrajectorySample
{
    std::vector<Tensor> states; ///< predicted state at each time
    std::vector<IvpResult> segments; ///< per-segment solver records
    IvpStats stats;
};

/**
 * Integrate dh/dt = f(t, h) from (t0, x0) and record the state at each
 * requested time.
 *
 * @param times Strictly increasing times, all > t0.
 */
TrajectorySample sampleTrajectory(EmbeddedNet &net, const Tensor &x0,
                                  double t0,
                                  const std::vector<double> &times,
                                  const ButcherTableau &tableau,
                                  StepController &controller,
                                  const IvpOptions &opts,
                                  TrialEvaluator *evaluator = nullptr);

/** Result of one trajectory training step. */
struct TrajectoryFitResult
{
    double loss = 0.0; ///< mean MSE across observations
    std::vector<Tensor> predictions;
    IvpStats forwardStats;
    AcaStats backwardStats;
};

/**
 * One training step against a full observed trajectory: forward through
 * all observation times, MSE at each, ACA backward with per-observation
 * adjoint injection. Parameter gradients accumulate into the net's
 * slots; the caller owns the optimizer step.
 */
TrajectoryFitResult trajectoryTrainStep(
    EmbeddedNet &net, const Tensor &x0, double t0,
    const std::vector<TrajectoryObservation> &observations,
    const ButcherTableau &tableau, StepController &controller,
    const IvpOptions &opts, TrialEvaluator *evaluator = nullptr);

} // namespace enode

#endif // ENODE_CORE_TRAJECTORY_H
