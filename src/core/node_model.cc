#include "core/node_model.h"

#include "common/logging.h"
#include "common/rng.h"
#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/norm.h"
#include "nn/pool.h"
#include "nn/serialize.h"

namespace enode {

NodeModel::NodeModel(std::vector<std::unique_ptr<EmbeddedNet>> nets,
                     double layer_time)
    : nets_(std::move(nets)), layerTime_(layer_time)
{
    ENODE_ASSERT(!nets_.empty(), "NodeModel needs >= 1 integration layer");
    ENODE_ASSERT(layerTime_ > 0.0, "layer time must be positive");
}

std::unique_ptr<NodeModel>
NodeModel::makeConv(std::size_t num_layers, std::size_t channels,
                    std::size_t f_depth, Rng &rng)
{
    std::vector<std::unique_ptr<EmbeddedNet>> nets;
    nets.reserve(num_layers);
    for (std::size_t i = 0; i < num_layers; i++)
        nets.push_back(EmbeddedNet::makeConvNet(channels, f_depth, rng));
    return std::make_unique<NodeModel>(std::move(nets));
}

std::unique_ptr<NodeModel>
NodeModel::makeMlp(std::size_t num_layers, std::size_t dim,
                   std::size_t hidden, std::size_t f_depth, Rng &rng)
{
    std::vector<std::unique_ptr<EmbeddedNet>> nets;
    nets.reserve(num_layers);
    for (std::size_t i = 0; i < num_layers; i++)
        nets.push_back(EmbeddedNet::makeMlp(dim, hidden, f_depth, rng));
    return std::make_unique<NodeModel>(std::move(nets));
}

std::unique_ptr<NodeModel>
NodeModel::makeAugmentedMlp(std::size_t num_layers, std::size_t dim,
                            std::size_t aug, std::size_t hidden,
                            std::size_t f_depth, Rng &rng)
{
    return makeMlp(num_layers, dim + aug, hidden, f_depth, rng);
}

Tensor
augmentState(const Tensor &x, std::size_t aug)
{
    ENODE_ASSERT(x.shape().rank() == 1, "augmentState needs a rank-1 state");
    const std::size_t dim = x.shape().dim(0);
    Tensor out(Shape{dim + aug});
    for (std::size_t i = 0; i < dim; i++)
        out.at(i) = x.at(i);
    return out;
}

Tensor
truncateState(const Tensor &x, std::size_t dim)
{
    ENODE_ASSERT(x.shape().rank() == 1 && x.shape().dim(0) >= dim,
                 "truncateState: state smaller than requested dim");
    Tensor out(Shape{dim});
    for (std::size_t i = 0; i < dim; i++)
        out.at(i) = x.at(i);
    return out;
}

NodeForwardResult
NodeModel::forward(const Tensor &x, const ButcherTableau &tableau,
                   StepController &controller, const IvpOptions &opts,
                   TrialEvaluator *evaluator, SolveGuard *guard)
{
    NodeForwardResult result;
    result.layers.reserve(nets_.size());
    Tensor h = x;
    for (auto &net : nets_) {
        EmbeddedNetOde ode(*net);
        IvpResult layer = solveIvp(ode, h, 0.0, layerTime_, tableau,
                                   controller, opts, evaluator,
                                   &ivpWorkspace_, guard);
        h = layer.yFinal;
        const SolveStatus status = layer.status;
        result.totalStats.accumulate(layer.stats);
        result.layers.push_back(std::move(layer));
        if (status != SolveStatus::Ok) {
            // A poisoned or aborted layer must not feed the next one:
            // stop here and surface the structured status.
            result.status = status;
            break;
        }
    }
    result.output = std::move(h);
    return result;
}

BatchedForwardResult
NodeModel::forwardBatched(const std::vector<Tensor> &xs,
                          const ButcherTableau &tableau,
                          const std::vector<StepController *> &controllers,
                          const IvpOptions &opts,
                          const std::vector<SolveGuard *> *guards)
{
    const std::size_t n = xs.size();
    ENODE_ASSERT(controllers.size() == n, "one controller per sample");
    ENODE_ASSERT(guards == nullptr || guards->size() == n,
                 "guards sized like the batch when present");

    BatchedForwardResult result;
    result.outputs.resize(n);
    result.stats.resize(n);
    result.status.assign(n, SolveStatus::Ok);
    for (std::size_t i = 0; i < n; i++)
        result.outputs[i] = xs[i];

    // Active set: samples still Ok. A failed sample keeps its (untrusted)
    // state in outputs but stops consuming layer solves.
    std::vector<std::size_t> active(n);
    for (std::size_t i = 0; i < n; i++)
        active[i] = i;

    std::vector<const Tensor *> y0;
    std::vector<StepController *> ctrls;
    std::vector<SolveGuard *> layer_guards;
    for (auto &net : nets_) {
        if (active.empty())
            break;
        y0.clear();
        ctrls.clear();
        layer_guards.clear();
        for (std::size_t i : active) {
            y0.push_back(&result.outputs[i]);
            ctrls.push_back(controllers[i]);
            layer_guards.push_back(guards ? (*guards)[i] : nullptr);
        }
        BatchedNetOde ode(*net);
        BatchedIvpResult layer = solveIvpBatched(
            ode, y0, 0.0, layerTime_, tableau, ctrls, opts,
            &batchedIvpWorkspace_, guards ? &layer_guards : nullptr);
        std::vector<std::size_t> still_active;
        still_active.reserve(active.size());
        for (std::size_t j = 0; j < active.size(); j++) {
            const std::size_t i = active[j];
            result.outputs[i] = std::move(layer.yFinal[j]);
            result.stats[i].accumulate(layer.stats[j]);
            if (layer.status[j] != SolveStatus::Ok)
                result.status[i] = layer.status[j];
            else
                still_active.push_back(i);
        }
        active = std::move(still_active);
    }
    return result;
}

std::vector<ParamSlot>
NodeModel::paramSlots()
{
    std::vector<ParamSlot> slots;
    for (std::size_t i = 0; i < nets_.size(); i++) {
        for (auto &slot : nets_[i]->paramSlots()) {
            slot.name = "node" + std::to_string(i) + "." + slot.name;
            slots.push_back(slot);
        }
    }
    return slots;
}

void
NodeModel::zeroGrad()
{
    for (auto &net : nets_)
        net->zeroGrad();
}

void
NodeModel::syncParametersFrom(NodeModel &master)
{
    copyParameters(master.paramSlots(), paramSlots());
}

std::size_t
NodeModel::paramCount()
{
    std::size_t n = 0;
    for (auto &net : nets_)
        n += net->paramCount();
    return n;
}

NodeClassifier::NodeClassifier(std::size_t in_channels,
                               std::size_t state_channels,
                               std::size_t num_layers, std::size_t f_depth,
                               std::size_t num_classes, Rng &rng)
{
    encoder_ = std::make_unique<Sequential>();
    encoder_->add(
        std::make_unique<Conv2d>(in_channels, state_channels, 3, rng));
    encoder_->add(std::make_unique<GroupNorm>(
        state_channels, state_channels >= 8 ? 8 : 1));
    encoder_->add(std::make_unique<ReLU>());

    node_ = NodeModel::makeConv(num_layers, state_channels, f_depth, rng);

    head_ = std::make_unique<Sequential>();
    head_->add(std::make_unique<GlobalAvgPool>());
    head_->add(std::make_unique<Linear>(state_channels, num_classes, rng));
}

NodeClassifier::Result
NodeClassifier::forward(const Tensor &image, const ButcherTableau &tableau,
                        StepController &controller, const IvpOptions &opts,
                        TrialEvaluator *evaluator)
{
    Result result;
    const Tensor h0 = encoder_->forward(image);
    result.node = node_->forward(h0, tableau, controller, opts, evaluator);
    result.logits = head_->forward(result.node.output);
    return result;
}

std::vector<ParamSlot>
NodeClassifier::paramSlots()
{
    std::vector<ParamSlot> slots;
    for (auto &slot : encoder_->paramSlots()) {
        slot.name = "encoder." + slot.name;
        slots.push_back(slot);
    }
    for (auto &slot : node_->paramSlots())
        slots.push_back(slot);
    for (auto &slot : head_->paramSlots()) {
        slot.name = "head." + slot.name;
        slots.push_back(slot);
    }
    return slots;
}

void
NodeClassifier::zeroGrad()
{
    encoder_->zeroGrad();
    node_->zeroGrad();
    head_->zeroGrad();
}

} // namespace enode
