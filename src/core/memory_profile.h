#ifndef ENODE_CORE_MEMORY_PROFILE_H
#define ENODE_CORE_MEMORY_PROFILE_H

/**
 * @file
 * Analytical memory-footprint models (Sec. II.D, Fig. 4(b)).
 *
 * These models express peak memory *size* and total memory *access*
 * volume per sample, in units of one feature map, for a NODE (driven by
 * measured solver statistics) and for a plain ResNet of a given depth.
 * Fig. 4(b)'s message — NODE inference needs a few times more memory
 * than ResNet while NODE *training* needs one to two orders of magnitude
 * more memory traffic — falls out of the n_eval * n_try * s multiplier
 * on every stored intermediate state.
 */

#include <cstddef>

namespace enode {

/** Solver statistics characterizing one NODE workload. */
struct NodeWorkloadProfile
{
    std::size_t nLayers = 4;      ///< integration layers N
    std::size_t stages = 4;       ///< integrator stages s (RK23: 4)
    std::size_t backwardStages = 3; ///< stages with adjoint work (RK23: 3)
    std::size_t fDepth = 4;       ///< conv layers in f
    double nEval = 16.0;          ///< mean evaluation points per layer
    double nTry = 2.0;            ///< mean search trials per point
};

/** Peak size and total access volume, in feature-map units. */
struct MemoryFootprint
{
    double sizeMaps = 0.0;   ///< peak resident feature maps
    double accessMaps = 0.0; ///< total map reads+writes per sample
};

/** NODE forward pass (inference). */
MemoryFootprint nodeInferenceFootprint(const NodeWorkloadProfile &profile);

/** NODE forward + ACA backward (one training iteration). */
MemoryFootprint nodeTrainingFootprint(const NodeWorkloadProfile &profile);

/** Plain ResNet with the given number of residual blocks, inference. */
MemoryFootprint resnetInferenceFootprint(std::size_t blocks);

/** Plain ResNet, one training iteration (stored activations). */
MemoryFootprint resnetTrainingFootprint(std::size_t blocks);

} // namespace enode

#endif // ENODE_CORE_MEMORY_PROFILE_H
