#ifndef ENODE_CORE_ACA_TRAINER_H
#define ENODE_CORE_ACA_TRAINER_H

/**
 * @file
 * NODE training with the adaptive-checkpoint-adjoint (ACA) method.
 *
 * The backward pass (Sec. II.C) repeats, per accepted forward step
 * (checkpoint interval [t_i, t_{i+1}]), working backward from T to 0:
 *
 *  1. Local forward step: re-integrate from the checkpoint h(t_i) with
 *     the *recorded* stepsize to recover the intermediate training
 *     states (integral states k_j and the per-conv-layer activations).
 *  2. Adjoint calculation: propagate a(t) backward across the step by
 *     vector-Jacobian products through the integrator's compute graph
 *     (the discrete form of Eq. 4 — exactly what ACA does, since it
 *     backprops through the accepted solver steps).
 *  3. Parameter gradients: the same VJPs accumulate a^T df/dtheta,
 *     the discrete form of the integral in Eq. 5.
 *
 * Because the backward pass reuses the stepsizes accepted by the forward
 * search, it needs no stepsize search of its own — its complexity is
 * O(N * n_eval * s) (Fig. 3).
 */

#include <cstdint>
#include <vector>

#include "core/node_model.h"

namespace enode {

/**
 * Persistent buffers for the ACA backward hot path.
 *
 * One adjoint step re-creates stage states, stage inputs and stage
 * adjoints; without reuse every checkpoint interval pays three
 * vector-of-Tensor heap allocations plus fresh temporaries. The
 * workspace keeps them alive across steps (and across training
 * iterations), so after one warm-up pass the backward runs entirely on
 * recycled Tensor-pool buffers — the same zero-steady-state-allocation
 * discipline the forward solver adopted in PR 2.
 *
 * Not thread-safe; use one workspace per thread. Passing nullptr to the
 * trainer entry points selects a thread-local instance, which is what
 * the serving runtime's training tasks use.
 */
struct AcaWorkspace
{
    std::vector<Tensor> stages;      ///< k_j, recovered per local forward
    std::vector<Tensor> stageInputs; ///< y_j, the recorded training states
    std::vector<Tensor> ybar;        ///< per-stage adjoints
    /** Explicit "ybar[j] was computed this step" flags; persistent
     *  tensors would otherwise read stale values from the last step. */
    std::vector<char> ybarSet;
    Tensor kbar; ///< stage adjoint seed accumulator
    Tensor hbar; ///< running dL/dh across the step
};

/** Accounting for one backward pass (complexity metering, Fig. 3). */
struct AcaStats
{
    std::uint64_t backwardSteps = 0;  ///< checkpoint intervals processed
    std::uint64_t localForwardEvals = 0; ///< f evals in local forward steps
    std::uint64_t adjointVjps = 0;    ///< VJP evaluations (Eq. 4/5 work)

    void
    accumulate(const AcaStats &other)
    {
        backwardSteps += other.backwardSteps;
        localForwardEvals += other.localForwardEvals;
        adjointVjps += other.adjointVjps;
    }
};

/** Result of back-propagating one integration layer. */
struct AcaBackwardResult
{
    Tensor gradInput; ///< dL/dh(0) of this layer (the adjoint at t = 0)
    AcaStats stats;
};

/**
 * Backward pass over one integration layer.
 *
 * @param net The layer's embedded network; parameter gradients accumulate
 *        into its slots.
 * @param tableau The integrator used in the forward pass.
 * @param fwd The layer's forward IvpResult (checkpoints + stepsizes).
 * @param grad_output a(T) = dL/dh(T), the adjoint seed (Eq. 4).
 * @param ws Reusable buffers; nullptr selects a thread-local workspace.
 */
AcaBackwardResult acaBackwardLayer(EmbeddedNet &net,
                                   const ButcherTableau &tableau,
                                   const IvpResult &fwd,
                                   const Tensor &grad_output,
                                   AcaWorkspace *ws = nullptr);

/**
 * Backward pass over a full NodeModel: layers are processed last-first,
 * chaining the adjoint between them.
 *
 * @return dL/d(input of the first layer), for chaining into an encoder.
 */
AcaBackwardResult acaBackward(NodeModel &model, const ButcherTableau &tableau,
                              const NodeForwardResult &fwd,
                              const Tensor &grad_output,
                              AcaWorkspace *ws = nullptr);

/** One full training iteration of a NodeClassifier on a single image. */
struct TrainStepResult
{
    double loss = 0.0;
    bool correct = false;
    /** Forward solve outcome; when non-Ok the backward pass was skipped
     *  and no gradients were accumulated for this step. */
    SolveStatus forwardStatus = SolveStatus::Ok;
    IvpStats forwardStats;
    AcaStats backwardStats;
};

/**
 * Forward + loss + full backward for one labelled image. Gradients
 * accumulate into the classifier's parameter slots; the caller owns the
 * optimizer step.
 */
TrainStepResult classifierTrainStep(NodeClassifier &model,
                                    const Tensor &image, std::size_t label,
                                    const ButcherTableau &tableau,
                                    StepController &controller,
                                    const IvpOptions &opts,
                                    TrialEvaluator *evaluator = nullptr);

/**
 * One regression training step: MSE between h(T) and a target state.
 * The optional guard is threaded into the forward solve (the serving
 * runtime's watchdog aborts wedged training tasks through it). When
 * the forward comes back non-Ok the step reports forwardStatus and
 * returns without touching the gradients.
 */
TrainStepResult regressionTrainStep(NodeModel &model, const Tensor &x0,
                                    const Tensor &target,
                                    const ButcherTableau &tableau,
                                    StepController &controller,
                                    const IvpOptions &opts,
                                    TrialEvaluator *evaluator = nullptr,
                                    AcaWorkspace *ws = nullptr,
                                    SolveGuard *guard = nullptr);

} // namespace enode

#endif // ENODE_CORE_ACA_TRAINER_H
