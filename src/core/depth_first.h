#ifndef ENODE_CORE_DEPTH_FIRST_H
#define ENODE_CORE_DEPTH_FIRST_H

/**
 * @file
 * Depth-first integration (Sec. IV, Fig. 6).
 *
 * Three related facilities:
 *
 * 1. DepthFirstDdg — the data-dependency graph of one high-order RK step
 *    after partial-state factoring: nodes for h(t), the integral states
 *    k_j, the partial states p_{i,j} and the partial error states e_i,
 *    with the stage ordering of Fig. 6(a). Built for any tableau.
 *
 * 2. Buffer analyses — closed-form line-buffer requirements for the
 *    forward integrator (Fig. 14, Table I) and a lifetime model for the
 *    training states of depth-first training (Fig. 15). These are what
 *    the area/memory model of the simulator consumes.
 *
 * 3. StreamingExecutor — a functional row-streaming execution of one RK
 *    step over a conv-only embedded network. It processes the input one
 *    row at a time, triggers all downstream computation a finished row
 *    enables (most-downstream-first, the depth-first order), retires
 *    rows as their last consumer finishes, and records the peak number
 *    of concurrently live rows. Its numerical output is validated
 *    against the layer-by-layer RkStepper, and its measured peak
 *    occupancy validates the closed-form analysis.
 *
 *    Beyond the serial depth-first walk, the executor has a *packetized
 *    pipeline mode* (Sec. V, Fig. 8): row packets tagged
 *    {stream j, layer l, row r} are dispatched wave by wave across the
 *    task-pool workers, most-downstream-first — the software analogue
 *    of the core ring, where one RK step pipelines across the f layers
 *    of all live streams. Packet values are schedule-independent, so
 *    the pipelined output is bitwise identical to the serial executor
 *    at every thread count; the wave trace additionally measures
 *    pipeline occupancy (packets per wave-slot).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "nn/sequential.h"
#include "ode/butcher.h"
#include "ode/rk_stepper.h"
#include "tensor/tensor.h"

namespace enode {

/** Node kinds in the depth-first DDG (Fig. 6a). */
enum class DdgNodeKind
{
    InitialState, ///< h(t)
    IntegralState, ///< k_j (output of one f evaluation)
    PartialState, ///< p_{i,j}: partial accumulation toward stage input i
    PartialError, ///< e_i: partial accumulation of the error state
    FinalState,   ///< h(t + dt)
    ErrorState,   ///< e
};

/** One node of the depth-first data-dependency graph. */
struct DdgNode
{
    DdgNodeKind kind;
    std::string name;     ///< "k2", "p31", "e1", ...
    int stage;            ///< owning stage index (or -1)
    int substage;         ///< j of p_{i,j} (or -1)
    std::vector<std::size_t> inputs; ///< indices of producer nodes
};

/**
 * The factored compute graph of one RK step.
 *
 * Construction follows Sec. IV.A: k_1 from h; low-order partials
 * p_{i,1} from h and k_1; higher-order partials p_{i,j} from p_{i,j-1}
 * and k_j; stage evaluations k_i = f(p_{i,i-1}); error partials e_i
 * chained as the k's arrive. Zero tableau coefficients elide nodes.
 */
class DepthFirstDdg
{
  public:
    explicit DepthFirstDdg(const ButcherTableau &tableau);

    const std::vector<DdgNode> &nodes() const { return nodes_; }
    const ButcherTableau &tableau() const { return tableau_; }

    /** Count of partial-state nodes (the p_{i,j}). */
    std::size_t partialStateCount() const;
    /** Count of partial-error nodes (the e_i). */
    std::size_t partialErrorCount() const;

    /**
     * Longest input->output path length; the pipeline depth of the
     * unfolded integrator.
     */
    std::size_t criticalPathLength() const;

    /** Topological order sanity: every edge goes forward. Panics if not. */
    void checkAcyclic() const;

  private:
    std::size_t addNode(DdgNodeKind kind, std::string name, int stage,
                        int substage, std::vector<std::size_t> inputs);

    const ButcherTableau &tableau_;
    std::vector<DdgNode> nodes_;
};

/** Problem geometry shared by the analyses. */
struct DepthFirstConfig
{
    const ButcherTableau *tableau = nullptr;
    std::size_t fDepth = 4;  ///< conv layers in f
    std::size_t kernel = 3;  ///< conv kernel K
    std::size_t H = 64;
    std::size_t W = 64;
    std::size_t C = 64;
    std::size_t bytesPerElement = 2; ///< FP16 datapath
};

/**
 * Closed-form forward (integral-state) buffer requirements.
 *
 * All row counts are in units of one feature-map row (W * C elements).
 * The integral-state buffer and the line buffer are the two SRAMs of
 * Table I; both are double-buffered so the packetized streams never
 * stall on a buffer swap.
 */
struct ForwardBufferAnalysis
{
    std::size_t partialStateRows;  ///< p_{i,j}: one row each (s(s-1)/2)
    std::size_t partialErrorRows;  ///< e_i: one row each (s-1 if embedded)
    std::size_t integralPsumRows;  ///< k_j psum rows: one per stage
    std::size_t stageBufferRows;   ///< packet state buffers BUF 1..s
                                   ///< (K rows of input per stream)
    std::size_t stagingRows;       ///< I/O staging between hub and cores
    std::size_t convWindowRows;    ///< per-stream conv lines:
                                   ///< s * fDepth * (K-1)

    std::size_t integralBufferRows; ///< double-buffered integral SRAM rows
    std::size_t lineBufferRows;     ///< double-buffered line SRAM rows
    std::size_t totalRows() const;

    std::size_t enodeIntegralBytes; ///< Table I "Integral State Buffer"
    std::size_t enodeLineBytes;     ///< Table I "Line Buffer"
    std::size_t enodeBytes;         ///< sum of the two
    std::size_t baselineBytes;      ///< full-map storage (s maps), SIMD ASIC

    double reductionFactor() const; ///< baseline / eNODE
};

/** Fig. 14 / Table I: integral-state storage of both designs. */
ForwardBufferAnalysis analyzeForwardBuffers(const DepthFirstConfig &cfg);

/** Training-state storage and DRAM-traffic model (Fig. 15). */
struct TrainingBufferAnalysis
{
    std::size_t trainingStateMaps;  ///< maps per backward step (stages x f)
    std::size_t totalBytes;         ///< all training states of one step
    std::size_t enodeWorkingSetBytes; ///< depth-first peak live bytes
    double reductionFactor() const;  ///< total / working set

    /**
     * External DRAM traffic for training states per backward step given
     * an on-chip buffer of the given size: spilled bytes are written
     * once and read once (Fig. 15(b)).
     */
    std::size_t dramTrafficBytes(std::size_t buffer_bytes,
                                 bool depth_first) const;
};

/**
 * Lifetime model of depth-first training (Sec. IV.B): with the adjoint
 * streamed in the depth-first manner, a training-state row produced at
 * pipeline position p (of M = stages x fDepth maps) stays live for about
 * (M - p) * (K - 1) + 1 rows, so the working set is the sum of these
 * windows instead of M full maps.
 */
TrainingBufferAnalysis analyzeTrainingBuffers(const DepthFirstConfig &cfg);

/**
 * Stages with backward work: b_j != 0 or read by a later stage. The
 * FSAL RK23 has 3 of 4 (Sec. IV.B).
 */
std::size_t backwardStageCount(const ButcherTableau &tableau);

class TaskPool;

/** Result of a streaming execution of one RK step. */
struct StreamingResult
{
    Tensor yNext;
    Tensor errorState;         ///< empty if no embedded estimator
    std::size_t peakLiveRows;  ///< max concurrently buffered rows
    std::size_t totalRowsComputed;

    // Pipeline-mode trace (all zero after a serial run):
    std::size_t pipelineWaves = 0;   ///< parallel dispatch rounds
    std::size_t pipelinePackets = 0; ///< row packets issued across waves
    /** pipelinePackets / (pipelineWaves * width): the fraction of
     *  core-ring slots that carried a packet — 1.0 is a full ring. */
    double pipelineOccupancy = 0.0;
};

/** Knobs for the packetized pipeline mode. */
struct PipelineOptions
{
    /** Worker pool carrying the waves; null = TaskPool::global(). */
    TaskPool *pool = nullptr;
    /**
     * Packets per wave — the ring size. 0 = the pool's width. Output
     * bits do not depend on this; occupancy and wall-clock do.
     */
    std::size_t width = 0;
};

/**
 * Row-streaming executor for one RK step over a streamable conv net,
 * in either the serial depth-first order or the packetized parallel
 * pipeline. Holds no state between runs; both entry points may be
 * called repeatedly and from different threads (each run's state is
 * local to the call).
 */
class StreamingExecutor
{
  public:
    /**
     * @param net A *streamable* embedded net: ConcatTime followed by
     *        Conv2d (+ ReLU) layers only.
     * @param tableau Integrator (referenced, not copied).
     */
    StreamingExecutor(EmbeddedNet &net, const ButcherTableau &tableau);

    /** Serial depth-first execution (one row advanced per scheduler
     *  visit, most-downstream-first). */
    StreamingResult run(double t, const Tensor &h, double dt);

    /**
     * Packetized pipeline execution: each wave gathers up to `width`
     * ready row packets in most-downstream-first priority order and
     * runs them concurrently on the pool. Bitwise identical to run()
     * at every width / thread count.
     */
    StreamingResult runPipelined(double t, const Tensor &h, double dt,
                                 const PipelineOptions &opts = {});

  private:
    EmbeddedNet &net_;
    const ButcherTableau &tableau_;
};

/**
 * Execute one RK step of dh/dt = f(t, h) in depth-first row-streaming
 * order with line buffers only.
 *
 * @param net A *streamable* embedded net: ConcatTime followed by Conv2d
 *        (+ ReLU) layers only — see EmbeddedNet::makeStreamableConvNet.
 *        Normalization layers need global statistics and are rejected.
 * @param tableau Integrator.
 * @param t Step start time.
 * @param h Initial state (C, H, W).
 * @param dt Stepsize.
 */
StreamingResult streamingStep(EmbeddedNet &net,
                              const ButcherTableau &tableau, double t,
                              const Tensor &h, double dt);

} // namespace enode

#endif // ENODE_CORE_DEPTH_FIRST_H
