#ifndef ENODE_CORE_PRIORITY_H
#define ENODE_CORE_PRIORITY_H

/**
 * @file
 * Priority processing and early stop (Sec. VII.B, Fig. 12).
 *
 * Each search trial traverses the feature map to compute the integral
 * states and the truncation error norm ||e||_2. The norm is usually
 * dominated by a small high-error region. The technique:
 *
 *  - The first trial at an evaluation point computes the full map and
 *    locates the window of H_hat consecutive rows with the largest
 *    error energy (the priority window).
 *  - Subsequent trials process the priority window first. The partial
 *    ||e||_2 accumulates row by row; as soon as it exceeds epsilon the
 *    trial is rejected and stopped early (sound: the full norm can only
 *    be larger). If the window completes below epsilon, the trial is
 *    accepted with the window as a proxy for the full error — the
 *    remaining rows are still processed to produce h(t+dt), but no
 *    longer gate the decision. This proxy acceptance is where the
 *    accuracy sensitivity to small H_hat in Fig. 13 comes from.
 *
 * The work metric reported per trial is the fraction of error rows
 * actually scanned before the decision; rejected trials typically cost
 * only a few rows (the latency/energy saving of Fig. 12(b)).
 *
 * A conservative mode is provided as an ablation: acceptance requires
 * the full-map scan (only rejections stop early), which provably never
 * changes the search decisions and thus costs no accuracy.
 */

#include <cstdint>

#include "ode/ivp.h"

namespace enode {

/** Tunables of priority processing. */
struct PriorityOptions
{
    std::size_t windowHeight = 16; ///< H_hat (rows)
    bool earlyStop = true;         ///< allow mid-scan rejection
    /**
     * Paper behaviour: accept from the window alone (fast, may cost
     * accuracy). When false, acceptance scans the full map (ablation;
     * decisions identical to the baseline search).
     */
    bool acceptFromWindow = true;
};

/** Per-evaluator accounting. */
struct PriorityStats
{
    std::uint64_t trials = 0;
    std::uint64_t earlyRejects = 0;   ///< trials rejected mid-scan
    std::uint64_t windowAccepts = 0;  ///< accepts decided from the window
    double rowsScanned = 0.0;         ///< error rows scanned in total
    double rowsTotal = 0.0;           ///< error rows a full scan would cost
};

/** Trial evaluator implementing priority processing + early stop. */
class PriorityTrialEvaluator : public TrialEvaluator
{
  public:
    explicit PriorityTrialEvaluator(PriorityOptions opts = {});

    void pointStart() override;

    void evaluate(OdeFunction &f, const RkStepper &stepper, double t,
                  const Tensor &y, double dt, double eps,
                  const Tensor *k1_reuse, Trial &trial) override;

    const PriorityStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

    /** Current priority window [begin, end) (for tests/visualization). */
    bool hasWindow() const { return haveWindow_; }
    std::size_t windowBegin() const { return winBegin_; }
    std::size_t windowEnd() const { return winEnd_; }

  private:
    /** Row count of an error tensor (rank-3: H; rank-1: numel). */
    static std::size_t rowCount(const Tensor &e);
    /** Squared L2 of row r. */
    static double rowEnergy(const Tensor &e, std::size_t r);

    PriorityOptions opts_;
    PriorityStats stats_;
    bool haveWindow_ = false;
    std::size_t winBegin_ = 0;
    std::size_t winEnd_ = 0;
    std::vector<double> energy_; ///< per-row energies, reused per trial
};

} // namespace enode

#endif // ENODE_CORE_PRIORITY_H
