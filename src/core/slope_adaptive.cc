#include "core/slope_adaptive.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace enode {

namespace {

double
sigmoid(double x)
{
    return 1.0 / (1.0 + std::exp(-x));
}

} // namespace

SlopeAdaptiveController::SlopeAdaptiveController(SlopeAdaptiveOptions opts)
    : opts_(opts)
{
    ENODE_ASSERT(opts_.sAcc >= 1 && opts_.sRej >= 1,
                 "thresholds must be >= 1");
    ENODE_ASSERT(opts_.downScale > 0.0 && opts_.downScale < 1.0,
                 "downScale must be in (0, 1)");
}

void
SlopeAdaptiveController::reset(double initial_dt)
{
    ENODE_ASSERT(initial_dt > 0.0, "initial dt must be positive");
    dtPrev_ = initial_dt;
    cAcc_ = 0;
    cRej_ = 0;
    rejectedThisPoint_ = false;
}

double
SlopeAdaptiveController::initialDt()
{
    ENODE_ASSERT(dtPrev_ > 0.0, "controller not reset");
    rejectedThisPoint_ = false;
    return dtPrev_;
}

double
SlopeAdaptiveController::rejectedDt(double dt, double /*err_norm*/,
                                    double /*eps*/)
{
    if (!rejectedThisPoint_) {
        // The *initial* stepsize of this evaluation point was rejected:
        // update the consecutive-rejection history immediately so the
        // retries below already benefit from the aggressive scaling.
        rejectedThisPoint_ = true;
        cRej_++;
        cAcc_ = 0;
    }
    if (cRej_ >= opts_.sRej) {
        const double beta_minus =
            std::max(sigmoid(-static_cast<double>(cRej_)),
                     opts_.betaMinusFloor);
        return dt * beta_minus;
    }
    return dt * opts_.downScale;
}

void
SlopeAdaptiveController::accepted(double dt, double /*err_norm*/,
                                  double /*eps*/, bool first_trial_accepted)
{
    if (first_trial_accepted) {
        cAcc_++;
        cRej_ = 0;
    }
    // If the first trial was rejected, cRej_ was already incremented in
    // rejectedDt(); nothing to do for the counters here.

    double dt_next = dt;
    if (first_trial_accepted && cAcc_ >= opts_.sAcc) {
        const double beta_plus =
            1.0 + sigmoid(static_cast<double>(cAcc_));
        dt_next = dt * beta_plus;
    }
    dtPrev_ = std::min(dt_next, opts_.maxDt);
}

} // namespace enode
