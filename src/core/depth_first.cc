#include "core/depth_first.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "nn/activation.h"
#include "nn/concat_time.h"
#include "nn/conv2d.h"

namespace enode {

// ---------------------------------------------------------------------------
// DDG construction
// ---------------------------------------------------------------------------

DepthFirstDdg::DepthFirstDdg(const ButcherTableau &tableau)
    : tableau_(tableau)
{
    const std::size_t s = tableau.stages();
    const auto &a = tableau.a();
    const auto &b = tableau.b();
    const bool emb = tableau.hasEmbedded();
    const auto d = emb ? tableau.errorWeights() : std::vector<double>();

    // h(t)
    const std::size_t h_idx =
        addNode(DdgNodeKind::InitialState, "h", -1, -1, {});

    // Stage 1: k1 = f(h).
    std::vector<std::size_t> k_idx(s);
    k_idx[0] = addNode(DdgNodeKind::IntegralState, "k1", 0, -1, {h_idx});

    // Partial-state chains: p_{i,1} = h + dt a_{i,1} k_1, then
    // p_{i,j} = p_{i,j-1} + dt a_{i,j} k_j; finally k_i = f(p_{i,i-1}).
    for (std::size_t i = 1; i < s; i++) {
        std::size_t prev = h_idx;
        for (std::size_t j = 0; j < i; j++) {
            std::vector<std::size_t> inputs{prev};
            if (a[i][j] != 0.0)
                inputs.push_back(k_idx[j]);
            prev = addNode(DdgNodeKind::PartialState,
                           "p" + std::to_string(i + 1) +
                               std::to_string(j + 1),
                           static_cast<int>(i), static_cast<int>(j), inputs);
        }
        k_idx[i] = addNode(DdgNodeKind::IntegralState,
                           "k" + std::to_string(i + 1), static_cast<int>(i),
                           -1, {prev});
    }

    // Final state accumulation (folded into the last partial chain in
    // hardware; modelled as one node reading every k with b_j != 0).
    std::vector<std::size_t> final_inputs{h_idx};
    for (std::size_t j = 0; j < s; j++)
        if (b[j] != 0.0)
            final_inputs.push_back(k_idx[j]);
    addNode(DdgNodeKind::FinalState, "h'", -1, -1, final_inputs);

    // Partial error chain e_1..e_{s-1}, then the error state e.
    if (emb) {
        std::size_t prev_e = 0;
        bool have_prev = false;
        std::size_t count = 0;
        for (std::size_t j = 0; j < s; j++) {
            if (d[j] == 0.0)
                continue;
            std::vector<std::size_t> inputs{k_idx[j]};
            if (have_prev)
                inputs.push_back(prev_e);
            count++;
            const bool last = [&] {
                for (std::size_t m = j + 1; m < s; m++)
                    if (d[m] != 0.0)
                        return false;
                return true;
            }();
            if (last) {
                addNode(DdgNodeKind::ErrorState, "e", -1, -1, inputs);
            } else {
                prev_e = addNode(DdgNodeKind::PartialError,
                                 "e" + std::to_string(count), -1,
                                 static_cast<int>(j), inputs);
                have_prev = true;
            }
        }
    }
    checkAcyclic();
}

std::size_t
DepthFirstDdg::addNode(DdgNodeKind kind, std::string name, int stage,
                       int substage, std::vector<std::size_t> inputs)
{
    for (auto i : inputs)
        ENODE_ASSERT(i < nodes_.size(), "DDG edge to future node");
    nodes_.push_back(
        {kind, std::move(name), stage, substage, std::move(inputs)});
    return nodes_.size() - 1;
}

std::size_t
DepthFirstDdg::partialStateCount() const
{
    std::size_t n = 0;
    for (const auto &node : nodes_)
        if (node.kind == DdgNodeKind::PartialState)
            n++;
    return n;
}

std::size_t
DepthFirstDdg::partialErrorCount() const
{
    std::size_t n = 0;
    for (const auto &node : nodes_)
        if (node.kind == DdgNodeKind::PartialError)
            n++;
    return n;
}

std::size_t
DepthFirstDdg::criticalPathLength() const
{
    std::vector<std::size_t> depth(nodes_.size(), 0);
    std::size_t longest = 0;
    for (std::size_t i = 0; i < nodes_.size(); i++) {
        for (auto in : nodes_[i].inputs)
            depth[i] = std::max(depth[i], depth[in] + 1);
        longest = std::max(longest, depth[i]);
    }
    return longest;
}

void
DepthFirstDdg::checkAcyclic() const
{
    // Construction only ever references earlier nodes, so the index order
    // is a topological order; verify the invariant held.
    for (std::size_t i = 0; i < nodes_.size(); i++)
        for (auto in : nodes_[i].inputs)
            ENODE_ASSERT(in < i, "DDG cycle at node ", nodes_[i].name);
}

// ---------------------------------------------------------------------------
// Closed-form buffer analyses
// ---------------------------------------------------------------------------

std::size_t
ForwardBufferAnalysis::totalRows() const
{
    return integralBufferRows + lineBufferRows;
}

double
ForwardBufferAnalysis::reductionFactor() const
{
    return static_cast<double>(baselineBytes) /
           static_cast<double>(enodeBytes);
}

ForwardBufferAnalysis
analyzeForwardBuffers(const DepthFirstConfig &cfg)
{
    ENODE_ASSERT(cfg.tableau != nullptr, "config needs a tableau");
    const std::size_t s = cfg.tableau->stages();
    const std::size_t K = cfg.kernel;
    const bool emb = cfg.tableau->hasEmbedded();

    ForwardBufferAnalysis out{};
    out.partialStateRows = s * (s - 1) / 2;
    out.partialErrorRows = emb ? s - 1 : 0;
    out.integralPsumRows = s;
    out.stageBufferRows = s * K; // K input rows per stream state buffer
    out.stagingRows = 2;
    out.convWindowRows = s * cfg.fDepth * (K - 1);

    // Both SRAMs are double-buffered so a stream can fill one half while
    // the cores drain the other (no-stall packetized processing).
    out.integralBufferRows =
        2 * (out.partialStateRows + out.partialErrorRows +
             out.integralPsumRows + out.stageBufferRows + out.stagingRows);
    out.lineBufferRows = 2 * out.convWindowRows;

    const std::size_t row_bytes = cfg.W * cfg.C * cfg.bytesPerElement;
    out.enodeIntegralBytes = out.integralBufferRows * row_bytes;
    out.enodeLineBytes = out.lineBufferRows * row_bytes;
    out.enodeBytes = out.enodeIntegralBytes + out.enodeLineBytes;

    // The layer-by-layer baseline buffers every integral state as a full
    // feature map for the duration of the step.
    out.baselineBytes = s * cfg.H * row_bytes;
    return out;
}

double
TrainingBufferAnalysis::reductionFactor() const
{
    return static_cast<double>(totalBytes) /
           static_cast<double>(enodeWorkingSetBytes);
}

std::size_t
TrainingBufferAnalysis::dramTrafficBytes(std::size_t buffer_bytes,
                                         bool depth_first) const
{
    const std::size_t need =
        depth_first ? enodeWorkingSetBytes : totalBytes;
    const std::size_t spill = need > buffer_bytes ? need - buffer_bytes : 0;
    return 2 * spill; // each spilled byte is written once and read once
}

std::size_t
backwardStageCount(const ButcherTableau &tableau)
{
    const std::size_t s = tableau.stages();
    std::size_t backward_stages = 0;
    for (std::size_t j = 0; j < s; j++) {
        bool contributes = tableau.b()[j] != 0.0;
        for (std::size_t m = j + 1; m < s && !contributes; m++)
            contributes = tableau.a()[m][j] != 0.0;
        if (contributes)
            backward_stages++;
    }
    return backward_stages;
}

TrainingBufferAnalysis
analyzeTrainingBuffers(const DepthFirstConfig &cfg)
{
    ENODE_ASSERT(cfg.tableau != nullptr, "config needs a tableau");

    TrainingBufferAnalysis out{};
    out.trainingStateMaps = backwardStageCount(*cfg.tableau) * cfg.fDepth;
    const std::size_t row_bytes = cfg.W * cfg.C * cfg.bytesPerElement;
    out.totalBytes = out.trainingStateMaps * cfg.H * row_bytes;

    // Lifetime model: the adjoint streams row-by-row through all M maps
    // right behind the local forward's production. A row of the map at
    // pipeline position p (1-based, production order) is consumed when
    // the adjoint front — which lags production by one conv window per
    // remaining map — reaches it: live window of (M - p)(K - 1) + c
    // rows, c = 2 covering the adjoint's own conv halo.
    const std::size_t M = out.trainingStateMaps;
    const std::size_t lag = cfg.kernel - 1;
    std::size_t ws_rows = 0;
    for (std::size_t p = 1; p <= M; p++)
        ws_rows += std::min((M - p) * lag + 2, cfg.H);
    out.enodeWorkingSetBytes = ws_rows * row_bytes;
    return out;
}

// ---------------------------------------------------------------------------
// Streaming executor
// ---------------------------------------------------------------------------

namespace {

/** A map whose rows are produced and retired incrementally. */
struct StreamMap
{
    std::string name;
    Tensor data;               // full storage (bookkeeping tracks windows)
    std::size_t rowsComputed = 0;
    std::size_t rowsRetired = 0;
    bool counted = true; // outputs stream off-chip and are not buffered

    std::size_t liveRows() const { return rowsComputed - rowsRetired; }
};

/** The conv stack extracted from a streamable EmbeddedNet. */
struct ConvStack
{
    std::vector<const Conv2d *> convs;
    std::vector<bool> reluAfter; // applied to conv d's output
};

ConvStack
extractConvStack(EmbeddedNet &net)
{
    ConvStack stack;
    Sequential &body = net.body();
    ENODE_ASSERT(dynamic_cast<ConcatTime *>(&body.layer(0)) != nullptr,
                 "embedded net must start with ConcatTime");
    for (std::size_t i = 1; i < body.size(); i++) {
        Layer &layer = body.layer(i);
        if (auto *conv = dynamic_cast<Conv2d *>(&layer)) {
            stack.convs.push_back(conv);
            stack.reluAfter.push_back(false);
        } else if (dynamic_cast<ReLU *>(&layer) != nullptr) {
            ENODE_ASSERT(!stack.convs.empty(), "ReLU before first conv");
            stack.reluAfter.back() = true;
        } else {
            ENODE_FATAL("streamingStep supports Conv2d/ReLU bodies only; "
                        "found ", layer.name(),
                        " (use EmbeddedNet::makeStreamableConvNet)");
        }
    }
    ENODE_ASSERT(!stack.convs.empty(), "no conv layers in embedded net");
    return stack;
}

/**
 * Compute one output row of a conv layer from an input map, optionally
 * treating the final weight input-channel as a constant time plane and
 * applying ReLU to the result.
 */
void
convRow(const Tensor &in, const Conv2d &conv, std::size_t row,
        bool time_channel, double time_value, bool relu, Tensor &out)
{
    const std::size_t C_in = in.shape().dim(0);
    const std::size_t H = in.shape().dim(1);
    const std::size_t W = in.shape().dim(2);
    const std::size_t M = conv.outChannels();
    const std::size_t K = conv.kernel();
    const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(K / 2);
    const Tensor &weight = conv.weight();
    ENODE_ASSERT(conv.inChannels() == C_in + (time_channel ? 1 : 0),
                 "conv channel mismatch in streaming executor");

    for (std::size_t m = 0; m < M; m++) {
        const float bias = conv.bias().empty()
                               ? 0.0f
                               : conv.bias().at(m);
        for (std::size_t w = 0; w < W; w++) {
            float acc = bias;
            for (std::size_t kh = 0; kh < K; kh++) {
                const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(row) +
                                          static_cast<std::ptrdiff_t>(kh) -
                                          pad;
                if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(H))
                    continue;
                for (std::size_t kw = 0; kw < K; kw++) {
                    const std::ptrdiff_t iw =
                        static_cast<std::ptrdiff_t>(w) +
                        static_cast<std::ptrdiff_t>(kw) - pad;
                    if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(W))
                        continue;
                    for (std::size_t c = 0; c < C_in; c++) {
                        acc += in.at(c, static_cast<std::size_t>(ih),
                                     static_cast<std::size_t>(iw)) *
                               weight.at(m, c, kh, kw);
                    }
                    if (time_channel) {
                        acc += static_cast<float>(time_value) *
                               weight.at(m, C_in, kh, kw);
                    }
                }
            }
            if (relu && acc < 0.0f)
                acc = 0.0f;
            out.at(m, row, w) = acc;
        }
    }
}

} // namespace

StreamingResult
streamingStep(EmbeddedNet &net, const ButcherTableau &tableau, double t,
              const Tensor &h, double dt)
{
    ENODE_ASSERT(h.shape().rank() == 3, "streamingStep needs a CHW state");
    const ConvStack stack = extractConvStack(net);
    const std::size_t s = tableau.stages();
    const std::size_t depth = stack.convs.size();
    const std::size_t C = h.shape().dim(0);
    const std::size_t H = h.shape().dim(1);
    const std::size_t W = h.shape().dim(2);
    const auto &a = tableau.a();
    const auto &b = tableau.b();
    const auto &c = tableau.c();
    const bool emb = tableau.hasEmbedded();
    const auto d = emb ? tableau.errorWeights() : std::vector<double>();
    const std::size_t pad_rows = stack.convs.front()->kernel() / 2;

    // Maps: the source h, per-stage inputs (stage 0 aliases h), the conv
    // chains z[j][l] (z[j][depth-1] is k_j), and the streamed outputs.
    // h itself *streams in* row by row: rows are fetched on demand (the
    // lowest-priority producer), so its live window stays bounded like
    // every other buffer.
    StreamMap h_map{"h", h, 0, 0, true};
    std::vector<StreamMap> stage_in(s);  // [j]; j = 0 unused (alias of h)
    std::vector<std::vector<StreamMap>> z(s);
    for (std::size_t j = 0; j < s; j++) {
        if (j > 0)
            stage_in[j] = {"y" + std::to_string(j + 1),
                           Tensor(Shape{C, H, W}), 0, 0, true};
        z[j].resize(depth);
        for (std::size_t l = 0; l < depth; l++)
            z[j][l] = {"z" + std::to_string(j + 1) + "." +
                           std::to_string(l + 1),
                       Tensor(Shape{C, H, W}), 0, 0, true};
    }
    StreamMap y_next{"h'", h, 0, 0, false}; // starts as a copy of h
    StreamMap e_map{"e", Tensor(Shape{C, H, W}), 0, 0, false};

    StreamingResult result{};
    result.peakLiveRows = 0;
    result.totalRowsComputed = 0;

    auto inputOf = [&](std::size_t j) -> StreamMap & {
        return j == 0 ? h_map : stage_in[j];
    };
    auto kMap = [&](std::size_t j) -> StreamMap & {
        return z[j][depth - 1];
    };

    // --- Row producers -----------------------------------------------------
    auto canStageIn = [&](std::size_t j) {
        const std::size_t r = stage_in[j].rowsComputed;
        if (r >= H || h_map.rowsComputed <= r)
            return false;
        for (std::size_t l = 0; l < j; l++)
            if (a[j][l] != 0.0 && kMap(l).rowsComputed <= r)
                return false;
        return true;
    };
    auto doStageIn = [&](std::size_t j) {
        const std::size_t r = stage_in[j].rowsComputed;
        for (std::size_t cc = 0; cc < C; cc++) {
            for (std::size_t w = 0; w < W; w++) {
                float acc = h.at(cc, r, w);
                for (std::size_t l = 0; l < j; l++) {
                    if (a[j][l] != 0.0)
                        acc += static_cast<float>(dt * a[j][l]) *
                               kMap(l).data.at(cc, r, w);
                }
                stage_in[j].data.at(cc, r, w) = acc;
            }
        }
        stage_in[j].rowsComputed++;
    };

    auto canConv = [&](std::size_t j, std::size_t l) {
        const std::size_t r = z[j][l].rowsComputed;
        if (r >= H)
            return false;
        const StreamMap &src = l == 0 ? inputOf(j) : z[j][l - 1];
        const std::size_t need = std::min(r + pad_rows + 1, H);
        return src.rowsComputed >= need;
    };
    auto doConv = [&](std::size_t j, std::size_t l) {
        const std::size_t r = z[j][l].rowsComputed;
        const StreamMap &src = l == 0 ? inputOf(j) : z[j][l - 1];
        convRow(src.data, *stack.convs[l], r, /*time_channel=*/l == 0,
                t + c[j] * dt, stack.reluAfter[l], z[j][l].data);
        z[j][l].rowsComputed++;
    };

    auto canOutput = [&](const StreamMap &map, bool use_b) {
        const std::size_t r = map.rowsComputed;
        if (r >= H)
            return false;
        if (use_b && h_map.rowsComputed <= r)
            return false;
        for (std::size_t j = 0; j < s; j++) {
            const double coeff = use_b ? b[j] : d[j];
            if (coeff != 0.0 && kMap(j).rowsComputed <= r)
                return false;
        }
        return true;
    };
    auto doOutput = [&](StreamMap &map, bool use_b) {
        const std::size_t r = map.rowsComputed;
        for (std::size_t cc = 0; cc < C; cc++) {
            for (std::size_t w = 0; w < W; w++) {
                float acc = use_b ? h.at(cc, r, w) : 0.0f;
                for (std::size_t j = 0; j < s; j++) {
                    const double coeff = use_b ? b[j] : d[j];
                    if (coeff != 0.0)
                        acc += static_cast<float>(dt * coeff) *
                               kMap(j).data.at(cc, r, w);
                }
                map.data.at(cc, r, w) = acc;
            }
        }
        map.rowsComputed++;
    };

    // --- Retirement --------------------------------------------------------
    // A row retires once every consumer that reads it has produced the
    // rows that need it. The conv halo means row r of a conv input is
    // last read when the consumer produces row r + pad.
    auto retireSweep = [&] {
        // h: read by every stage-input combine at row r, by stage 0's
        // first conv up to row r + pad, and by h' at row r.
        while (h_map.rowsRetired < H) {
            const std::size_t r = h_map.rowsRetired;
            bool dead = y_next.rowsComputed > r &&
                        z[0][0].rowsComputed >= std::min(r + pad_rows + 1, H);
            for (std::size_t j = 1; j < s && dead; j++)
                dead = stage_in[j].rowsComputed > r;
            if (!dead)
                break;
            h_map.rowsRetired++;
        }
        // Stage inputs: consumed by the stage's first conv.
        for (std::size_t j = 1; j < s; j++) {
            while (stage_in[j].rowsRetired < H) {
                const std::size_t r = stage_in[j].rowsRetired;
                if (z[j][0].rowsComputed < std::min(r + pad_rows + 1, H))
                    break;
                stage_in[j].rowsRetired++;
            }
        }
        // Conv intermediates: consumed by the next conv in the chain;
        // k_j (the last conv) is consumed by later stage inputs and the
        // two outputs.
        for (std::size_t j = 0; j < s; j++) {
            for (std::size_t l = 0; l < depth; l++) {
                StreamMap &map = z[j][l];
                while (map.rowsRetired < H) {
                    const std::size_t r = map.rowsRetired;
                    bool dead = true;
                    if (l + 1 < depth) {
                        dead = z[j][l + 1].rowsComputed >=
                               std::min(r + pad_rows + 1, H);
                    } else {
                        for (std::size_t m = j + 1; m < s && dead; m++)
                            if (a[m][j] != 0.0)
                                dead = stage_in[m].rowsComputed > r;
                        if (dead && b[j] != 0.0)
                            dead = y_next.rowsComputed > r;
                        if (dead && emb && d[j] != 0.0)
                            dead = e_map.rowsComputed > r;
                    }
                    if (!dead)
                        break;
                    map.rowsRetired++;
                }
            }
        }
    };

    auto liveRows = [&] {
        std::size_t live = h_map.liveRows();
        for (std::size_t j = 1; j < s; j++)
            live += stage_in[j].liveRows();
        for (std::size_t j = 0; j < s; j++)
            for (std::size_t l = 0; l < depth; l++)
                live += z[j][l].liveRows();
        return live;
    };

    // --- Depth-first scheduler ---------------------------------------------
    // Always advance the most downstream computable row first: outputs,
    // then the latest streams (highest stage) deepest-conv-first — the
    // hardware's priority-selector policy ("a later stream is given a
    // higher priority", Sec. V.B).
    while (y_next.rowsComputed < H || (emb && e_map.rowsComputed < H)) {
        bool progressed = false;
        if (emb && canOutput(e_map, false)) {
            doOutput(e_map, false);
            progressed = true;
        } else if (canOutput(y_next, true)) {
            doOutput(y_next, true);
            progressed = true;
        } else {
            for (std::size_t jj = s; jj-- > 0 && !progressed;) {
                for (std::size_t ll = depth; ll-- > 0 && !progressed;) {
                    if (canConv(jj, ll)) {
                        doConv(jj, ll);
                        progressed = true;
                    }
                }
                if (!progressed && jj > 0 && canStageIn(jj)) {
                    doStageIn(jj);
                    progressed = true;
                }
            }
        }
        if (!progressed && h_map.rowsComputed < H) {
            // Nothing downstream can run: fetch the next input row (the
            // demand-driven arrival of h from the producer/DRAM).
            h_map.rowsComputed++;
            progressed = true;
        }
        ENODE_ASSERT(progressed, "streaming schedule deadlocked");
        result.totalRowsComputed++;
        retireSweep();
        result.peakLiveRows = std::max(result.peakLiveRows, liveRows());
    }

    result.yNext = std::move(y_next.data);
    if (emb)
        result.errorState = std::move(e_map.data);
    return result;
}

} // namespace enode
