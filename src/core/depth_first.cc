#include "core/depth_first.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/task_pool.h"
#include "common/trace_span.h"
#include "nn/activation.h"
#include "nn/concat_time.h"
#include "nn/conv2d.h"

namespace enode {

// ---------------------------------------------------------------------------
// DDG construction
// ---------------------------------------------------------------------------

DepthFirstDdg::DepthFirstDdg(const ButcherTableau &tableau)
    : tableau_(tableau)
{
    const std::size_t s = tableau.stages();
    const auto &a = tableau.a();
    const auto &b = tableau.b();
    const bool emb = tableau.hasEmbedded();
    const auto d = emb ? tableau.errorWeights() : std::vector<double>();

    // h(t)
    const std::size_t h_idx =
        addNode(DdgNodeKind::InitialState, "h", -1, -1, {});

    // Stage 1: k1 = f(h).
    std::vector<std::size_t> k_idx(s);
    k_idx[0] = addNode(DdgNodeKind::IntegralState, "k1", 0, -1, {h_idx});

    // Partial-state chains: p_{i,1} = h + dt a_{i,1} k_1, then
    // p_{i,j} = p_{i,j-1} + dt a_{i,j} k_j; finally k_i = f(p_{i,i-1}).
    for (std::size_t i = 1; i < s; i++) {
        std::size_t prev = h_idx;
        for (std::size_t j = 0; j < i; j++) {
            std::vector<std::size_t> inputs{prev};
            if (a[i][j] != 0.0)
                inputs.push_back(k_idx[j]);
            prev = addNode(DdgNodeKind::PartialState,
                           "p" + std::to_string(i + 1) +
                               std::to_string(j + 1),
                           static_cast<int>(i), static_cast<int>(j), inputs);
        }
        k_idx[i] = addNode(DdgNodeKind::IntegralState,
                           "k" + std::to_string(i + 1), static_cast<int>(i),
                           -1, {prev});
    }

    // Final state accumulation (folded into the last partial chain in
    // hardware; modelled as one node reading every k with b_j != 0).
    std::vector<std::size_t> final_inputs{h_idx};
    for (std::size_t j = 0; j < s; j++)
        if (b[j] != 0.0)
            final_inputs.push_back(k_idx[j]);
    addNode(DdgNodeKind::FinalState, "h'", -1, -1, final_inputs);

    // Partial error chain e_1..e_{s-1}, then the error state e.
    if (emb) {
        std::size_t prev_e = 0;
        bool have_prev = false;
        std::size_t count = 0;
        for (std::size_t j = 0; j < s; j++) {
            if (d[j] == 0.0)
                continue;
            std::vector<std::size_t> inputs{k_idx[j]};
            if (have_prev)
                inputs.push_back(prev_e);
            count++;
            const bool last = [&] {
                for (std::size_t m = j + 1; m < s; m++)
                    if (d[m] != 0.0)
                        return false;
                return true;
            }();
            if (last) {
                addNode(DdgNodeKind::ErrorState, "e", -1, -1, inputs);
            } else {
                prev_e = addNode(DdgNodeKind::PartialError,
                                 "e" + std::to_string(count), -1,
                                 static_cast<int>(j), inputs);
                have_prev = true;
            }
        }
    }
    checkAcyclic();
}

std::size_t
DepthFirstDdg::addNode(DdgNodeKind kind, std::string name, int stage,
                       int substage, std::vector<std::size_t> inputs)
{
    for (auto i : inputs)
        ENODE_ASSERT(i < nodes_.size(), "DDG edge to future node");
    nodes_.push_back(
        {kind, std::move(name), stage, substage, std::move(inputs)});
    return nodes_.size() - 1;
}

std::size_t
DepthFirstDdg::partialStateCount() const
{
    std::size_t n = 0;
    for (const auto &node : nodes_)
        if (node.kind == DdgNodeKind::PartialState)
            n++;
    return n;
}

std::size_t
DepthFirstDdg::partialErrorCount() const
{
    std::size_t n = 0;
    for (const auto &node : nodes_)
        if (node.kind == DdgNodeKind::PartialError)
            n++;
    return n;
}

std::size_t
DepthFirstDdg::criticalPathLength() const
{
    std::vector<std::size_t> depth(nodes_.size(), 0);
    std::size_t longest = 0;
    for (std::size_t i = 0; i < nodes_.size(); i++) {
        for (auto in : nodes_[i].inputs)
            depth[i] = std::max(depth[i], depth[in] + 1);
        longest = std::max(longest, depth[i]);
    }
    return longest;
}

void
DepthFirstDdg::checkAcyclic() const
{
    // Construction only ever references earlier nodes, so the index order
    // is a topological order; verify the invariant held.
    for (std::size_t i = 0; i < nodes_.size(); i++)
        for (auto in : nodes_[i].inputs)
            ENODE_ASSERT(in < i, "DDG cycle at node ", nodes_[i].name);
}

// ---------------------------------------------------------------------------
// Closed-form buffer analyses
// ---------------------------------------------------------------------------

std::size_t
ForwardBufferAnalysis::totalRows() const
{
    return integralBufferRows + lineBufferRows;
}

double
ForwardBufferAnalysis::reductionFactor() const
{
    return static_cast<double>(baselineBytes) /
           static_cast<double>(enodeBytes);
}

ForwardBufferAnalysis
analyzeForwardBuffers(const DepthFirstConfig &cfg)
{
    ENODE_ASSERT(cfg.tableau != nullptr, "config needs a tableau");
    const std::size_t s = cfg.tableau->stages();
    const std::size_t K = cfg.kernel;
    const bool emb = cfg.tableau->hasEmbedded();

    ForwardBufferAnalysis out{};
    out.partialStateRows = s * (s - 1) / 2;
    out.partialErrorRows = emb ? s - 1 : 0;
    out.integralPsumRows = s;
    out.stageBufferRows = s * K; // K input rows per stream state buffer
    out.stagingRows = 2;
    out.convWindowRows = s * cfg.fDepth * (K - 1);

    // Both SRAMs are double-buffered so a stream can fill one half while
    // the cores drain the other (no-stall packetized processing).
    out.integralBufferRows =
        2 * (out.partialStateRows + out.partialErrorRows +
             out.integralPsumRows + out.stageBufferRows + out.stagingRows);
    out.lineBufferRows = 2 * out.convWindowRows;

    const std::size_t row_bytes = cfg.W * cfg.C * cfg.bytesPerElement;
    out.enodeIntegralBytes = out.integralBufferRows * row_bytes;
    out.enodeLineBytes = out.lineBufferRows * row_bytes;
    out.enodeBytes = out.enodeIntegralBytes + out.enodeLineBytes;

    // The layer-by-layer baseline buffers every integral state as a full
    // feature map for the duration of the step.
    out.baselineBytes = s * cfg.H * row_bytes;
    return out;
}

double
TrainingBufferAnalysis::reductionFactor() const
{
    return static_cast<double>(totalBytes) /
           static_cast<double>(enodeWorkingSetBytes);
}

std::size_t
TrainingBufferAnalysis::dramTrafficBytes(std::size_t buffer_bytes,
                                         bool depth_first) const
{
    const std::size_t need =
        depth_first ? enodeWorkingSetBytes : totalBytes;
    const std::size_t spill = need > buffer_bytes ? need - buffer_bytes : 0;
    return 2 * spill; // each spilled byte is written once and read once
}

std::size_t
backwardStageCount(const ButcherTableau &tableau)
{
    const std::size_t s = tableau.stages();
    std::size_t backward_stages = 0;
    for (std::size_t j = 0; j < s; j++) {
        bool contributes = tableau.b()[j] != 0.0;
        for (std::size_t m = j + 1; m < s && !contributes; m++)
            contributes = tableau.a()[m][j] != 0.0;
        if (contributes)
            backward_stages++;
    }
    return backward_stages;
}

TrainingBufferAnalysis
analyzeTrainingBuffers(const DepthFirstConfig &cfg)
{
    ENODE_ASSERT(cfg.tableau != nullptr, "config needs a tableau");

    TrainingBufferAnalysis out{};
    out.trainingStateMaps = backwardStageCount(*cfg.tableau) * cfg.fDepth;
    const std::size_t row_bytes = cfg.W * cfg.C * cfg.bytesPerElement;
    out.totalBytes = out.trainingStateMaps * cfg.H * row_bytes;

    // Lifetime model: the adjoint streams row-by-row through all M maps
    // right behind the local forward's production. A row of the map at
    // pipeline position p (1-based, production order) is consumed when
    // the adjoint front — which lags production by one conv window per
    // remaining map — reaches it: live window of (M - p)(K - 1) + c
    // rows, c = 2 covering the adjoint's own conv halo.
    const std::size_t M = out.trainingStateMaps;
    const std::size_t lag = cfg.kernel - 1;
    std::size_t ws_rows = 0;
    for (std::size_t p = 1; p <= M; p++)
        ws_rows += std::min((M - p) * lag + 2, cfg.H);
    out.enodeWorkingSetBytes = ws_rows * row_bytes;
    return out;
}

// ---------------------------------------------------------------------------
// Streaming executor
// ---------------------------------------------------------------------------

namespace {

/** A map whose rows are produced and retired incrementally. */
struct StreamMap
{
    std::string name;
    Tensor data;               // full storage (bookkeeping tracks windows)
    std::size_t rowsComputed = 0;
    std::size_t rowsRetired = 0;
    bool counted = true; // outputs stream off-chip and are not buffered

    std::size_t liveRows() const { return rowsComputed - rowsRetired; }
};

/** The conv stack extracted from a streamable EmbeddedNet. */
struct ConvStack
{
    std::vector<const Conv2d *> convs;
    std::vector<bool> reluAfter; // applied to conv d's output
};

ConvStack
extractConvStack(EmbeddedNet &net)
{
    ConvStack stack;
    Sequential &body = net.body();
    ENODE_ASSERT(dynamic_cast<ConcatTime *>(&body.layer(0)) != nullptr,
                 "embedded net must start with ConcatTime");
    for (std::size_t i = 1; i < body.size(); i++) {
        Layer &layer = body.layer(i);
        if (auto *conv = dynamic_cast<Conv2d *>(&layer)) {
            stack.convs.push_back(conv);
            stack.reluAfter.push_back(false);
        } else if (dynamic_cast<ReLU *>(&layer) != nullptr) {
            ENODE_ASSERT(!stack.convs.empty(), "ReLU before first conv");
            stack.reluAfter.back() = true;
        } else {
            ENODE_FATAL("streamingStep supports Conv2d/ReLU bodies only; "
                        "found ", layer.name(),
                        " (use EmbeddedNet::makeStreamableConvNet)");
        }
    }
    ENODE_ASSERT(!stack.convs.empty(), "no conv layers in embedded net");
    return stack;
}

/**
 * Compute one output row of a conv layer from an input map, optionally
 * treating the final weight input-channel as a constant time plane and
 * applying ReLU to the result.
 */
void
convRow(const Tensor &in, const Conv2d &conv, std::size_t row,
        bool time_channel, double time_value, bool relu, Tensor &out)
{
    const std::size_t C_in = in.shape().dim(0);
    const std::size_t H = in.shape().dim(1);
    const std::size_t W = in.shape().dim(2);
    const std::size_t M = conv.outChannels();
    const std::size_t K = conv.kernel();
    const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(K / 2);
    const Tensor &weight = conv.weight();
    ENODE_ASSERT(conv.inChannels() == C_in + (time_channel ? 1 : 0),
                 "conv channel mismatch in streaming executor");

    for (std::size_t m = 0; m < M; m++) {
        const float bias = conv.bias().empty()
                               ? 0.0f
                               : conv.bias().at(m);
        for (std::size_t w = 0; w < W; w++) {
            float acc = bias;
            for (std::size_t kh = 0; kh < K; kh++) {
                const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(row) +
                                          static_cast<std::ptrdiff_t>(kh) -
                                          pad;
                if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(H))
                    continue;
                for (std::size_t kw = 0; kw < K; kw++) {
                    const std::ptrdiff_t iw =
                        static_cast<std::ptrdiff_t>(w) +
                        static_cast<std::ptrdiff_t>(kw) - pad;
                    if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(W))
                        continue;
                    for (std::size_t c = 0; c < C_in; c++) {
                        acc += in.at(c, static_cast<std::size_t>(ih),
                                     static_cast<std::size_t>(iw)) *
                               weight.at(m, c, kh, kw);
                    }
                    if (time_channel) {
                        acc += static_cast<float>(time_value) *
                               weight.at(m, C_in, kh, kw);
                    }
                }
            }
            if (relu && acc < 0.0f)
                acc = 0.0f;
            out.at(m, row, w) = acc;
        }
    }
}

/**
 * Per-run state and row producers of one RK step, shared by the serial
 * depth-first scheduler and the packetized pipeline. Compute methods
 * take an explicit row and never touch the progress counters, so a wave
 * of packets can run them concurrently (each packet writes only its own
 * row) and bump the counters afterwards — the serial path interleaves
 * the same calls one row at a time.
 */
class StreamEngine
{
  public:
    StreamEngine(EmbeddedNet &net, const ButcherTableau &tableau, double t,
                 const Tensor &h, double dt)
        : stack_(extractConvStack(net)), s_(tableau.stages()),
          depth_(stack_.convs.size()), C_(h.shape().dim(0)),
          H_(h.shape().dim(1)), W_(h.shape().dim(2)), a_(tableau.a()),
          b_(tableau.b()), c_(tableau.c()), emb_(tableau.hasEmbedded()),
          d_(emb_ ? tableau.errorWeights() : std::vector<double>()),
          pad_rows_(stack_.convs.front()->kernel() / 2), t_(t), dt_(dt),
          h_(h)
    {
        ENODE_ASSERT(h.shape().rank() == 3,
                     "streaming executor needs a CHW state");
        // Maps: the source h, per-stage inputs (stage 0 aliases h), the
        // conv chains z[j][l] (z[j][depth-1] is k_j), and the streamed
        // outputs. h itself *streams in* row by row: rows are fetched on
        // demand (the lowest-priority producer), so its live window
        // stays bounded like every other buffer.
        h_map_ = {"h", h, 0, 0, true};
        stage_in_.resize(s_); // [j]; j = 0 unused (alias of h)
        z_.resize(s_);
        for (std::size_t j = 0; j < s_; j++) {
            if (j > 0)
                stage_in_[j] = {"y" + std::to_string(j + 1),
                                Tensor(Shape{C_, H_, W_}), 0, 0, true};
            z_[j].resize(depth_);
            for (std::size_t l = 0; l < depth_; l++)
                z_[j][l] = {"z" + std::to_string(j + 1) + "." +
                                std::to_string(l + 1),
                            Tensor(Shape{C_, H_, W_}), 0, 0, true};
        }
        y_next_ = {"h'", h, 0, 0, false}; // starts as a copy of h
        e_map_ = {"e", Tensor(Shape{C_, H_, W_}), 0, 0, false};
    }

    StreamingResult runSerial();
    StreamingResult runPipelined(TaskPool &pool, std::size_t width);

  private:
    /** One schedulable row of work: {stream j, layer l, row r}. */
    struct Packet
    {
        enum class Kind : unsigned char
        {
            Error,   ///< e row (most downstream)
            Final,   ///< h' row
            Conv,    ///< z[j][l] row
            StageIn, ///< stage-input combine row
        };
        Kind kind;
        std::size_t j;
        std::size_t l;
        std::size_t r;
    };

    StreamMap &inputOf(std::size_t j)
    {
        return j == 0 ? h_map_ : stage_in_[j];
    }
    StreamMap &kMap(std::size_t j) { return z_[j][depth_ - 1]; }

    // --- Readiness ---------------------------------------------------------
    // Each producer's ready range is [rowsComputed, limit): the limit is
    // the first row whose inputs are not all complete under the current
    // counters. The serial scheduler asks for one row (rowsComputed <
    // limit); the pipeline takes the whole range, so a wave's packets
    // only ever read rows finished in earlier waves.
    std::size_t stageInLimit(std::size_t j)
    {
        std::size_t lim = std::min(H_, h_map_.rowsComputed);
        for (std::size_t l = 0; l < j; l++)
            if (a_[j][l] != 0.0)
                lim = std::min(lim, kMap(l).rowsComputed);
        return lim;
    }
    std::size_t convLimit(std::size_t j, std::size_t l)
    {
        // Row r needs source rows through min(r + pad, H - 1): the
        // producer's limit trails its source by the halo until the
        // source is complete.
        const StreamMap &src = l == 0 ? inputOf(j) : z_[j][l - 1];
        if (src.rowsComputed >= H_)
            return H_;
        return src.rowsComputed > pad_rows_ ? src.rowsComputed - pad_rows_
                                            : 0;
    }
    std::size_t outputLimit(bool use_b)
    {
        std::size_t lim = H_;
        if (use_b)
            lim = std::min(lim, h_map_.rowsComputed);
        for (std::size_t j = 0; j < s_; j++) {
            const double coeff = use_b ? b_[j] : d_[j];
            if (coeff != 0.0)
                lim = std::min(lim, kMap(j).rowsComputed);
        }
        return lim;
    }

    // --- Row computations (explicit row, no counter updates) ---------------
    void computeStageIn(std::size_t j, std::size_t r)
    {
        for (std::size_t cc = 0; cc < C_; cc++) {
            for (std::size_t w = 0; w < W_; w++) {
                float acc = h_.at(cc, r, w);
                for (std::size_t l = 0; l < j; l++) {
                    if (a_[j][l] != 0.0)
                        acc += static_cast<float>(dt_ * a_[j][l]) *
                               kMap(l).data.at(cc, r, w);
                }
                stage_in_[j].data.at(cc, r, w) = acc;
            }
        }
    }
    void computeConv(std::size_t j, std::size_t l, std::size_t r)
    {
        const StreamMap &src = l == 0 ? inputOf(j) : z_[j][l - 1];
        convRow(src.data, *stack_.convs[l], r, /*time_channel=*/l == 0,
                t_ + c_[j] * dt_, stack_.reluAfter[l], z_[j][l].data);
    }
    void computeOutput(StreamMap &map, bool use_b, std::size_t r)
    {
        for (std::size_t cc = 0; cc < C_; cc++) {
            for (std::size_t w = 0; w < W_; w++) {
                float acc = use_b ? h_.at(cc, r, w) : 0.0f;
                for (std::size_t j = 0; j < s_; j++) {
                    const double coeff = use_b ? b_[j] : d_[j];
                    if (coeff != 0.0)
                        acc += static_cast<float>(dt_ * coeff) *
                               kMap(j).data.at(cc, r, w);
                }
                map.data.at(cc, r, w) = acc;
            }
        }
    }
    void execute(const Packet &p)
    {
        switch (p.kind) {
        case Packet::Kind::Error:
            computeOutput(e_map_, false, p.r);
            break;
        case Packet::Kind::Final:
            computeOutput(y_next_, true, p.r);
            break;
        case Packet::Kind::Conv:
            computeConv(p.j, p.l, p.r);
            break;
        case Packet::Kind::StageIn:
            computeStageIn(p.j, p.r);
            break;
        }
    }
    StreamMap &mapOf(const Packet &p)
    {
        switch (p.kind) {
        case Packet::Kind::Error:
            return e_map_;
        case Packet::Kind::Final:
            return y_next_;
        case Packet::Kind::Conv:
            return z_[p.j][p.l];
        case Packet::Kind::StageIn:
        default:
            return stage_in_[p.j];
        }
    }

    // --- Retirement --------------------------------------------------------
    // A row retires once every consumer that reads it has produced the
    // rows that need it. The conv halo means row r of a conv input is
    // last read when the consumer produces row r + pad.
    void retireSweep()
    {
        // h: read by every stage-input combine at row r, by stage 0's
        // first conv up to row r + pad, and by h' at row r.
        while (h_map_.rowsRetired < H_) {
            const std::size_t r = h_map_.rowsRetired;
            bool dead =
                y_next_.rowsComputed > r &&
                z_[0][0].rowsComputed >= std::min(r + pad_rows_ + 1, H_);
            for (std::size_t j = 1; j < s_ && dead; j++)
                dead = stage_in_[j].rowsComputed > r;
            if (!dead)
                break;
            h_map_.rowsRetired++;
        }
        // Stage inputs: consumed by the stage's first conv.
        for (std::size_t j = 1; j < s_; j++) {
            while (stage_in_[j].rowsRetired < H_) {
                const std::size_t r = stage_in_[j].rowsRetired;
                if (z_[j][0].rowsComputed < std::min(r + pad_rows_ + 1, H_))
                    break;
                stage_in_[j].rowsRetired++;
            }
        }
        // Conv intermediates: consumed by the next conv in the chain;
        // k_j (the last conv) is consumed by later stage inputs and the
        // two outputs.
        for (std::size_t j = 0; j < s_; j++) {
            for (std::size_t l = 0; l < depth_; l++) {
                StreamMap &map = z_[j][l];
                while (map.rowsRetired < H_) {
                    const std::size_t r = map.rowsRetired;
                    bool dead = true;
                    if (l + 1 < depth_) {
                        dead = z_[j][l + 1].rowsComputed >=
                               std::min(r + pad_rows_ + 1, H_);
                    } else {
                        for (std::size_t m = j + 1; m < s_ && dead; m++)
                            if (a_[m][j] != 0.0)
                                dead = stage_in_[m].rowsComputed > r;
                        if (dead && b_[j] != 0.0)
                            dead = y_next_.rowsComputed > r;
                        if (dead && emb_ && d_[j] != 0.0)
                            dead = e_map_.rowsComputed > r;
                    }
                    if (!dead)
                        break;
                    map.rowsRetired++;
                }
            }
        }
    }

    std::size_t liveRows() const
    {
        std::size_t live = h_map_.liveRows();
        for (std::size_t j = 1; j < s_; j++)
            live += stage_in_[j].liveRows();
        for (std::size_t j = 0; j < s_; j++)
            for (std::size_t l = 0; l < depth_; l++)
                live += z_[j][l].liveRows();
        return live;
    }

    bool finished() const
    {
        return y_next_.rowsComputed >= H_ &&
               (!emb_ || e_map_.rowsComputed >= H_);
    }

    StreamingResult takeResult(StreamingResult result)
    {
        result.yNext = std::move(y_next_.data);
        if (emb_)
            result.errorState = std::move(e_map_.data);
        return result;
    }

    const ConvStack stack_;
    const std::size_t s_, depth_, C_, H_, W_;
    const std::vector<std::vector<double>> &a_;
    const std::vector<double> &b_, &c_;
    const bool emb_;
    const std::vector<double> d_;
    const std::size_t pad_rows_;
    const double t_, dt_;
    const Tensor &h_;

    StreamMap h_map_;
    std::vector<StreamMap> stage_in_;
    std::vector<std::vector<StreamMap>> z_;
    StreamMap y_next_;
    StreamMap e_map_;
};

StreamingResult
StreamEngine::runSerial()
{
    StreamingResult result{};

    // --- Depth-first scheduler ---------------------------------------------
    // Always advance the most downstream computable row first: outputs,
    // then the latest streams (highest stage) deepest-conv-first — the
    // hardware's priority-selector policy ("a later stream is given a
    // higher priority", Sec. V.B).
    while (!finished()) {
        bool progressed = false;
        if (emb_ && e_map_.rowsComputed < outputLimit(false)) {
            computeOutput(e_map_, false, e_map_.rowsComputed);
            e_map_.rowsComputed++;
            progressed = true;
        } else if (y_next_.rowsComputed < outputLimit(true)) {
            computeOutput(y_next_, true, y_next_.rowsComputed);
            y_next_.rowsComputed++;
            progressed = true;
        } else {
            for (std::size_t jj = s_; jj-- > 0 && !progressed;) {
                for (std::size_t ll = depth_; ll-- > 0 && !progressed;) {
                    if (z_[jj][ll].rowsComputed < convLimit(jj, ll)) {
                        computeConv(jj, ll, z_[jj][ll].rowsComputed);
                        z_[jj][ll].rowsComputed++;
                        progressed = true;
                    }
                }
                if (!progressed && jj > 0 &&
                    stage_in_[jj].rowsComputed < stageInLimit(jj)) {
                    computeStageIn(jj, stage_in_[jj].rowsComputed);
                    stage_in_[jj].rowsComputed++;
                    progressed = true;
                }
            }
        }
        if (!progressed && h_map_.rowsComputed < H_) {
            // Nothing downstream can run: fetch the next input row (the
            // demand-driven arrival of h from the producer/DRAM).
            h_map_.rowsComputed++;
            progressed = true;
        }
        ENODE_ASSERT(progressed, "streaming schedule deadlocked");
        result.totalRowsComputed++;
        retireSweep();
        result.peakLiveRows = std::max(result.peakLiveRows, liveRows());
    }

    return takeResult(std::move(result));
}

StreamingResult
StreamEngine::runPipelined(TaskPool &pool, std::size_t width)
{
    ENODE_ASSERT(width >= 1, "pipeline width must be at least 1");
    StreamingResult result{};

    // --- Wavefront scheduler -----------------------------------------------
    // Each wave fills up to `width` ring slots with ready row packets in
    // the same most-downstream-first priority the serial scheduler uses,
    // runs them concurrently on the pool, then commits the progress
    // counters. Readiness is evaluated against the wave-*start* counters
    // only, so every packet reads rows finished in earlier waves and
    // writes its own row — value-wise the schedule cannot matter, which
    // is what makes the pipelined output bitwise equal to the serial
    // one at any width. Leftover slots are filled with input-row
    // fetches (the hub streaming h in alongside the compute).
    std::vector<Packet> wave;
    wave.reserve(width);
    while (!finished()) {
        TraceSpan wave_span("pipeline.wave", "pipeline");
        wave.clear();
        auto take = [&](Packet::Kind kind, std::size_t j, std::size_t l,
                        const StreamMap &map, std::size_t limit) {
            for (std::size_t r = map.rowsComputed;
                 r < limit && wave.size() < width; r++)
                wave.push_back({kind, j, l, r});
        };
        if (emb_)
            take(Packet::Kind::Error, 0, 0, e_map_, outputLimit(false));
        take(Packet::Kind::Final, 0, 0, y_next_, outputLimit(true));
        for (std::size_t jj = s_; jj-- > 0;) {
            for (std::size_t ll = depth_; ll-- > 0;)
                take(Packet::Kind::Conv, jj, ll, z_[jj][ll],
                     convLimit(jj, ll));
            if (jj > 0)
                take(Packet::Kind::StageIn, jj, 0, stage_in_[jj],
                     stageInLimit(jj));
        }
        const std::size_t packets = wave.size();
        const std::size_t fetches =
            std::min(width - packets, H_ - h_map_.rowsComputed);
        ENODE_ASSERT(packets + fetches > 0,
                     "streaming pipeline deadlocked");

        if (packets > 0) {
            pool.parallelFor(
                1, packets,
                [&](std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; i++) {
                        // Packet spans land in each pool thread's own
                        // ring: the trace shows the {stream, layer,
                        // row} tiling across the core ring.
                        TraceSpan packet_span("pipeline.packet",
                                              "pipeline");
                        packet_span.arg(
                            "kind",
                            static_cast<double>(wave[i].kind));
                        packet_span.arg(
                            "stream", static_cast<double>(wave[i].j));
                        packet_span.arg(
                            "layer", static_cast<double>(wave[i].l));
                        packet_span.arg(
                            "row", static_cast<double>(wave[i].r));
                        execute(wave[i]);
                    }
                },
                width);
            // Commit: each producer's packets are contiguous rows, so
            // bumping once per packet reproduces the serial counters.
            for (const Packet &p : wave)
                mapOf(p).rowsComputed++;
        }
        h_map_.rowsComputed += fetches;

        wave_span.arg("packets", static_cast<double>(packets));
        wave_span.arg("fetches", static_cast<double>(fetches));
        wave_span.arg("wave",
                      static_cast<double>(result.pipelineWaves));
        result.pipelineWaves++;
        result.pipelinePackets += packets;
        result.totalRowsComputed += packets + fetches;
        retireSweep();
        result.peakLiveRows = std::max(result.peakLiveRows, liveRows());
    }

    result.pipelineOccupancy =
        result.pipelineWaves == 0
            ? 0.0
            : static_cast<double>(result.pipelinePackets) /
                  (static_cast<double>(result.pipelineWaves) *
                   static_cast<double>(width));
    return takeResult(std::move(result));
}

} // namespace

StreamingExecutor::StreamingExecutor(EmbeddedNet &net,
                                     const ButcherTableau &tableau)
    : net_(net), tableau_(tableau)
{
}

StreamingResult
StreamingExecutor::run(double t, const Tensor &h, double dt)
{
    StreamEngine engine(net_, tableau_, t, h, dt);
    return engine.runSerial();
}

StreamingResult
StreamingExecutor::runPipelined(double t, const Tensor &h, double dt,
                                const PipelineOptions &opts)
{
    TaskPool &pool = opts.pool != nullptr ? *opts.pool : TaskPool::global();
    const std::size_t width =
        opts.width != 0 ? opts.width : std::max<std::size_t>(1, pool.width());
    StreamEngine engine(net_, tableau_, t, h, dt);
    return engine.runPipelined(pool, width);
}

StreamingResult
streamingStep(EmbeddedNet &net, const ButcherTableau &tableau, double t,
              const Tensor &h, double dt)
{
    return StreamingExecutor(net, tableau).run(t, h, dt);
}

} // namespace enode
