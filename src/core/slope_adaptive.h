#ifndef ENODE_CORE_SLOPE_ADAPTIVE_H
#define ENODE_CORE_SLOPE_ADAPTIVE_H

/**
 * @file
 * Slope-adaptive stepsize search (Sec. VII.A, Fig. 10).
 *
 * The conventional search uses a nearly fixed scaling factor and ignores
 * how fast the state changes. The slope-adaptive policy keeps two
 * counters over the recent history of evaluation points:
 *
 *  - C_acc: consecutive evaluation points that accepted their initial
 *    stepsize. C_acc >= s_acc means the stepsize is conservative (or the
 *    slope is flattening): scale up opportunistically by
 *    beta+ = 1 + sigmoid(C_acc) in (1, 2), reducing evaluation points.
 *  - C_rej: consecutive evaluation points that rejected their initial
 *    stepsize. C_rej >= s_rej means the stepsize is too large and/or the
 *    slope is steepening: scale down aggressively by
 *    beta- = sigmoid(-C_rej) in (0, 0.5), reducing search trials.
 *
 * The paper writes beta+ = sigmoid(C_acc) "with beta+ > 1"; since the
 * plain logistic is bounded by 1 we take the natural reading
 * beta+ = 1 + sigmoid(C_acc), which satisfies the stated bound and the
 * intent (growth saturating at 2x per point).
 */

#include "ode/step_control.h"

namespace enode {

/** Tunables of the slope-adaptive search. */
struct SlopeAdaptiveOptions
{
    int sAcc = 3;            ///< s_acc threshold (paper uses 3)
    int sRej = 3;            ///< s_rej threshold (paper uses 3)
    double downScale = 0.5;  ///< conventional shrink below threshold
    double betaMinusFloor = 0.05; ///< clamp on the aggressive shrink
    double maxDt = 1.0;      ///< stepsize ceiling (one layer period)
};

/** The paper's slope-adaptive stepsize-search controller. */
class SlopeAdaptiveController : public StepController
{
  public:
    explicit SlopeAdaptiveController(SlopeAdaptiveOptions opts = {});

    void reset(double initial_dt) override;
    double initialDt() override;
    double rejectedDt(double dt, double err_norm, double eps) override;
    void accepted(double dt, double err_norm, double eps,
                  bool first_trial_accepted) override;
    std::string name() const override { return "slope-adaptive"; }

    int cAcc() const { return cAcc_; }
    int cRej() const { return cRej_; }

  private:
    SlopeAdaptiveOptions opts_;
    double dtPrev_ = 0.0;
    int cAcc_ = 0;
    int cRej_ = 0;
    bool rejectedThisPoint_ = false;
};

} // namespace enode

#endif // ENODE_CORE_SLOPE_ADAPTIVE_H
