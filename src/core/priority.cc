#include "core/priority.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace enode {

PriorityTrialEvaluator::PriorityTrialEvaluator(PriorityOptions opts)
    : opts_(opts)
{
    ENODE_ASSERT(opts_.windowHeight >= 1, "window height must be >= 1");
}

void
PriorityTrialEvaluator::pointStart()
{
    // Fig. 12(b): the first trial of every evaluation point re-initializes
    // the high-error region.
    haveWindow_ = false;
}

std::size_t
PriorityTrialEvaluator::rowCount(const Tensor &e)
{
    if (e.shape().rank() == 3)
        return e.shape().dim(1);
    return e.numel(); // rank-1 dynamic-system states: one row per entry
}

double
PriorityTrialEvaluator::rowEnergy(const Tensor &e, std::size_t r)
{
    if (e.shape().rank() == 3) {
        const double n = e.rowWindowL2(r, r + 1);
        return n * n;
    }
    const double v = e.at(r);
    return v * v;
}

void
PriorityTrialEvaluator::evaluate(OdeFunction &f, const RkStepper &stepper,
                                 double t, const Tensor &y, double dt,
                                 double eps, const Tensor *k1_reuse,
                                 Trial &trial)
{
    // Numerically the step is always fully computed; the *hardware* cost
    // of the trial is the scanned-row fraction recorded below. This keeps
    // the algorithm's decisions bit-identical to a streaming
    // implementation, which decides from the same error values.
    stepper.stepInto(f, t, y, dt, k1_reuse, trial.step);
    stats_.trials++;

    if (!stepper.tableau().hasEmbedded()) {
        trial.accepted = true;
        trial.decisionNorm = 0.0;
        trial.workFraction = 1.0;
        return;
    }

    const Tensor &e = trial.step.errorState;
    const std::size_t rows = rowCount(e);
    stats_.rowsTotal += static_cast<double>(rows);
    const double eps_sq = eps * eps;

    if (!haveWindow_ || !opts_.acceptFromWindow) {
        // Full scan. The first trial doubles as the initialization that
        // locates the high-error region for the rest of this point.
        std::vector<double> &energy = energy_;
        energy.resize(rows);
        for (std::size_t r = 0; r < rows; r++)
            energy[r] = rowEnergy(e, r);

        // Early stop still applies to the full scan: stop counting work
        // at the row where the cumulative energy crosses eps^2.
        double cum = 0.0;
        std::size_t scanned = rows;
        for (std::size_t r = 0; r < rows; r++) {
            cum += energy[r];
            if (opts_.earlyStop && haveWindow_ && cum > eps_sq) {
                scanned = r + 1;
                break;
            }
        }
        double total = 0.0;
        for (double v : energy)
            total += v;
        trial.decisionNorm = std::sqrt(total);
        trial.accepted = trial.decisionNorm <= eps;
        const bool stopped_early = scanned < rows && !trial.accepted;
        trial.workFraction =
            stopped_early ? static_cast<double>(scanned) / rows : 1.0;
        stats_.rowsScanned += trial.workFraction * rows;
        if (stopped_early)
            stats_.earlyRejects++;

        // Locate the best window of windowHeight consecutive rows.
        const std::size_t win = std::min(opts_.windowHeight, rows);
        double best = -1.0;
        std::size_t best_begin = 0;
        double sliding = 0.0;
        for (std::size_t r = 0; r < rows; r++) {
            sliding += energy[r];
            if (r + 1 >= win) {
                if (sliding > best) {
                    best = sliding;
                    best_begin = r + 1 - win;
                }
                sliding -= energy[r + 1 - win];
            }
        }
        winBegin_ = best_begin;
        winEnd_ = best_begin + win;
        haveWindow_ = true;
        return;
    }

    // Subsequent trials: scan the priority window first, early-stopping
    // on rejection; accept from the window alone (paper behaviour).
    double cum = 0.0;
    std::size_t scanned = 0;
    bool rejected = false;
    for (std::size_t r = winBegin_; r < winEnd_; r++) {
        cum += rowEnergy(e, r);
        scanned++;
        if (opts_.earlyStop && cum > eps_sq) {
            rejected = true;
            break;
        }
    }
    if (!rejected && !opts_.earlyStop) {
        // Without early stop, check the window total after the fact.
        rejected = cum > eps_sq;
    }

    trial.decisionNorm = std::sqrt(cum);
    if (rejected) {
        trial.accepted = false;
        trial.workFraction = static_cast<double>(scanned) / rows;
        stats_.earlyRejects++;
    } else {
        // Window clean: accept. The remaining rows are processed to
        // produce h(t + dt), so the accepted trial costs a full pass.
        trial.accepted = true;
        trial.workFraction = 1.0;
        stats_.windowAccepts++;
    }
    stats_.rowsScanned += trial.workFraction * rows;
}

} // namespace enode
