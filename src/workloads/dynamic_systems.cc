#include "workloads/dynamic_systems.h"

#include <cmath>
#include <numbers>

#include "common/logging.h"
#include "ode/rk_stepper.h"

namespace enode {

ThreeBodyOde::ThreeBodyOde(double g, std::array<double, 3> masses,
                           double softening)
    : g_(g), masses_(masses), softening_(softening)
{
    ENODE_ASSERT(g > 0.0 && softening >= 0.0, "bad three-body parameters");
}

Tensor
ThreeBodyOde::eval(double /*t*/, const Tensor &h)
{
    countEval();
    ENODE_ASSERT(h.numel() == stateDim, "three-body state must be dim 18");
    // Layout: [r0(3), r1(3), r2(3), v0(3), v1(3), v2(3)].
    Tensor dh(h.shape());
    // dr_i/dt = v_i.
    for (std::size_t i = 0; i < 9; i++)
        dh.at(i) = h.at(9 + i);
    // dv_i/dt = -sum_{j != i} G m_j (r_i - r_j) / (|r_i - r_j|^2 + s^2)^1.5
    for (std::size_t i = 0; i < 3; i++) {
        for (std::size_t j = 0; j < 3; j++) {
            if (i == j)
                continue;
            double diff[3];
            double dist_sq = softening_ * softening_;
            for (std::size_t d = 0; d < 3; d++) {
                diff[d] = static_cast<double>(h.at(3 * i + d)) -
                          h.at(3 * j + d);
                dist_sq += diff[d] * diff[d];
            }
            const double inv_r3 = 1.0 / std::pow(dist_sq, 1.5);
            for (std::size_t d = 0; d < 3; d++)
                dh.at(9 + 3 * i + d) -= static_cast<float>(
                    g_ * masses_[j] * diff[d] * inv_r3);
        }
    }
    return dh;
}

Tensor
ThreeBodyOde::randomInitialState(Rng &rng) const
{
    Tensor state(Shape{stateDim});
    // Bodies near the vertices of an equilateral triangle with
    // tangential velocities (a perturbed stable rotation).
    const double radius = rng.uniform(0.8, 1.2);
    const double omega = rng.uniform(0.4, 0.7);
    const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
    for (std::size_t i = 0; i < 3; i++) {
        const double theta =
            phase + 2.0 * std::numbers::pi * static_cast<double>(i) / 3.0;
        state.at(3 * i + 0) =
            static_cast<float>(radius * std::cos(theta) +
                               rng.normal(0.0, 0.02));
        state.at(3 * i + 1) =
            static_cast<float>(radius * std::sin(theta) +
                               rng.normal(0.0, 0.02));
        state.at(3 * i + 2) = static_cast<float>(rng.normal(0.0, 0.02));
        state.at(9 + 3 * i + 0) =
            static_cast<float>(-omega * radius * std::sin(theta) +
                               rng.normal(0.0, 0.02));
        state.at(9 + 3 * i + 1) =
            static_cast<float>(omega * radius * std::cos(theta) +
                               rng.normal(0.0, 0.02));
        state.at(9 + 3 * i + 2) = static_cast<float>(rng.normal(0.0, 0.02));
    }
    return state;
}

double
ThreeBodyOde::energy(const Tensor &state) const
{
    double kinetic = 0.0;
    for (std::size_t i = 0; i < 3; i++)
        for (std::size_t d = 0; d < 3; d++) {
            const double v = state.at(9 + 3 * i + d);
            kinetic += 0.5 * masses_[i] * v * v;
        }
    double potential = 0.0;
    for (std::size_t i = 0; i < 3; i++) {
        for (std::size_t j = i + 1; j < 3; j++) {
            double dist_sq = softening_ * softening_;
            for (std::size_t d = 0; d < 3; d++) {
                const double diff = static_cast<double>(state.at(3 * i + d)) -
                                    state.at(3 * j + d);
                dist_sq += diff * diff;
            }
            potential -= g_ * masses_[i] * masses_[j] / std::sqrt(dist_sq);
        }
    }
    return kinetic + potential;
}

LotkaVolterraOde::LotkaVolterraOde(double alpha, double beta, double delta,
                                   double eta)
    : alpha_(alpha), beta_(beta), delta_(delta), eta_(eta)
{
}

Tensor
LotkaVolterraOde::eval(double /*t*/, const Tensor &h)
{
    countEval();
    ENODE_ASSERT(h.numel() == stateDim, "lotka-volterra state must be dim 2");
    const double x = h.at(0), y = h.at(1);
    Tensor dh(h.shape());
    dh.at(0) = static_cast<float>(alpha_ * x - beta_ * x * y);
    dh.at(1) = static_cast<float>(delta_ * x * y - eta_ * y);
    return dh;
}

Tensor
LotkaVolterraOde::randomInitialState(Rng &rng) const
{
    Tensor state(Shape{stateDim});
    state.at(0) = static_cast<float>(rng.uniform(1.0, 8.0));  // prey
    state.at(1) = static_cast<float>(rng.uniform(1.0, 4.0));  // predators
    return state;
}

double
LotkaVolterraOde::invariant(const Tensor &state) const
{
    const double x = state.at(0), y = state.at(1);
    ENODE_ASSERT(x > 0.0 && y > 0.0, "populations must stay positive");
    return delta_ * x - eta_ * std::log(x) + beta_ * y -
           alpha_ * std::log(y);
}

VanDerPolOde::VanDerPolOde(double mu) : mu_(mu)
{
    ENODE_ASSERT(mu > 0.0, "van der pol needs mu > 0");
}

Tensor
VanDerPolOde::eval(double /*t*/, const Tensor &h)
{
    countEval();
    ENODE_ASSERT(h.numel() == stateDim, "van der pol state must be dim 2");
    const double x = h.at(0), v = h.at(1);
    Tensor dh(h.shape());
    dh.at(0) = static_cast<float>(v);
    dh.at(1) = static_cast<float>(mu_ * (1.0 - x * x) * v - x);
    return dh;
}

Tensor
VanDerPolOde::randomInitialState(Rng &rng) const
{
    Tensor state(Shape{stateDim});
    state.at(0) = static_cast<float>(rng.uniform(-2.5, 2.5));
    state.at(1) = static_cast<float>(rng.uniform(-2.5, 2.5));
    return state;
}

TrajectoryDataset
generateTrajectoriesImpl(OdeFunction &system,
                         const std::vector<Tensor> &initial_states,
                         std::size_t n_train, double horizon)
{
    ENODE_ASSERT(n_train <= initial_states.size(),
                 "n_train exceeds generated states");
    TrajectoryDataset data;
    data.horizon = horizon;
    // Ground truth via fixed-step RK4 at a step far below the horizon —
    // the "exact" flow the NODE must learn.
    const double gt_dt = horizon / 256.0;
    for (std::size_t i = 0; i < initial_states.size(); i++) {
        TrajectoryPair pair;
        pair.x0 = initial_states[i];
        pair.target = integrateFixed(system, ButcherTableau::rk4(), pair.x0,
                                     0.0, horizon, gt_dt);
        if (i < n_train)
            data.train.push_back(std::move(pair));
        else
            data.test.push_back(std::move(pair));
    }
    return data;
}

} // namespace enode
