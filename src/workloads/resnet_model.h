#ifndef ENODE_WORKLOADS_RESNET_MODEL_H
#define ENODE_WORKLOADS_RESNET_MODEL_H

/**
 * @file
 * Analytical ResNet cost model.
 *
 * The paper compares NODE against ResNet-100 (memory profile, Fig. 4b)
 * and ResNet-200 (energy on MNIST, Fig. 18b), both *mapped on the ASIC
 * baseline*. Neither comparison needs a trained network — only layer
 * counts, feature-map geometry and the resulting MAC/memory-traffic
 * volumes, which this model computes exactly.
 */

#include <cstddef>

namespace enode {

/** Geometry of the ResNet being modelled. */
struct ResnetConfig
{
    std::size_t blocks = 100;       ///< residual blocks (ResNet-"N" ~ N)
    std::size_t convsPerBlock = 2;  ///< convs in a residual block
    std::size_t channels = 64;
    std::size_t height = 32;
    std::size_t width = 32;
    std::size_t kernel = 3;
    std::size_t bytesPerElement = 2; ///< FP16
};

/** Compute/memory volumes for one sample. */
struct ResnetCost
{
    double macs = 0.0;            ///< multiply-accumulates
    double activationBytes = 0.0; ///< one feature map
    double inferenceTrafficBytes = 0.0; ///< reads+writes, layer by layer
    double trainingTrafficBytes = 0.0;  ///< incl. stored activations
    double weightBytes = 0.0;
};

/** Evaluate the model. */
ResnetCost resnetCost(const ResnetConfig &cfg);

} // namespace enode

#endif // ENODE_WORKLOADS_RESNET_MODEL_H
