#ifndef ENODE_WORKLOADS_DYNAMIC_SYSTEMS_H
#define ENODE_WORKLOADS_DYNAMIC_SYSTEMS_H

/**
 * @file
 * The two dynamic-system benchmarks of Sec. VIII.
 *
 * Three-Body (Eq. 6): trajectories of three gravitating bodies. State is
 * 18-dimensional: position (3) and velocity (3) per body, flattened as
 * first-order ODEs.
 *
 * Lotka-Volterra (Eq. 7): predator-prey dynamics. State is
 * 2-dimensional: (prey x, predator y).
 *
 * Both implement OdeFunction so they can be integrated directly by the
 * solver library for ground-truth generation, and both come with a
 * trajectory-dataset generator that samples (state(t), state(t + T))
 * pairs for NODE training.
 */

#include <array>
#include <vector>

#include "common/rng.h"
#include "ode/ode_function.h"

namespace enode {

/** Eq. 6: three bodies under Newtonian gravity; state dim = 18. */
class ThreeBodyOde : public OdeFunction
{
  public:
    /**
     * @param g Gravitational constant (1 in natural units).
     * @param masses Mass of each of the three bodies.
     * @param softening Plummer softening added to |r_i - r_j| to keep
     *        close encounters integrable.
     */
    ThreeBodyOde(double g = 1.0,
                 std::array<double, 3> masses = {1.0, 1.0, 1.0},
                 double softening = 0.05);

    Tensor eval(double t, const Tensor &h) override;

    static constexpr std::size_t stateDim = 18;

    /**
     * A random initial condition near the stable "figure-eight" family:
     * bodies on a circle with tangential velocities plus noise.
     */
    Tensor randomInitialState(Rng &rng) const;

    /** Total energy (kinetic + potential); conserved by the true flow. */
    double energy(const Tensor &state) const;

  private:
    double g_;
    std::array<double, 3> masses_;
    double softening_;
};

/** Eq. 7: predator-prey dynamics; state dim = 2. */
class LotkaVolterraOde : public OdeFunction
{
  public:
    LotkaVolterraOde(double alpha = 1.1, double beta = 0.4,
                     double delta = 0.1, double eta = 0.4);

    Tensor eval(double t, const Tensor &h) override;

    static constexpr std::size_t stateDim = 2;

    /** Random positive populations. */
    Tensor randomInitialState(Rng &rng) const;

    /**
     * The conserved quantity V = delta x - eta ln x + beta y - alpha ln y
     * of the true flow; useful as a model-quality metric.
     */
    double invariant(const Tensor &state) const;

  private:
    double alpha_;
    double beta_;
    double delta_;
    double eta_;
};

/**
 * Van der Pol oscillator; state dim = 2, stiffness parameter mu.
 *
 * The classic stiffness dial for adaptive solvers: mu <= 1 behaves like
 * a mild nonlinear oscillator, while large mu creates relaxation
 * oscillations whose fast transitions force an adaptive controller to
 * shrink dt by orders of magnitude. The soak harness uses it as the
 * expensive tail of a mixed workload — the requests an overloaded
 * server most wants to shed or relax.
 */
class VanDerPolOde : public OdeFunction
{
  public:
    explicit VanDerPolOde(double mu = 5.0);

    Tensor eval(double t, const Tensor &h) override;

    static constexpr std::size_t stateDim = 2;

    /** Random state near the limit cycle basin. */
    Tensor randomInitialState(Rng &rng) const;

    double mu() const { return mu_; }

  private:
    double mu_;
};

/** One supervised pair: evolve x0 for time horizon -> target. */
struct TrajectoryPair
{
    Tensor x0;
    Tensor target;
};

/** A generated dynamic-system dataset. */
struct TrajectoryDataset
{
    std::vector<TrajectoryPair> train;
    std::vector<TrajectoryPair> test;
    double horizon; ///< integration time between x0 and target
};

/**
 * Sample (state, state-after-horizon) pairs along ground-truth
 * trajectories integrated with a high-accuracy fixed-step RK4.
 *
 * @param system The true dynamics.
 * @param make_initial Callable producing random initial states.
 * @param n_train Training pairs.
 * @param n_test Held-out pairs.
 * @param horizon Time gap between input and target.
 * @param rng Seeded generator.
 */
template <typename MakeInitial>
TrajectoryDataset generateTrajectories(OdeFunction &system,
                                       MakeInitial &&make_initial,
                                       std::size_t n_train,
                                       std::size_t n_test, double horizon,
                                       Rng &rng);

/** Non-template implementation used by the template wrapper. */
TrajectoryDataset generateTrajectoriesImpl(
    OdeFunction &system, const std::vector<Tensor> &initial_states,
    std::size_t n_train, double horizon);

template <typename MakeInitial>
TrajectoryDataset
generateTrajectories(OdeFunction &system, MakeInitial &&make_initial,
                     std::size_t n_train, std::size_t n_test, double horizon,
                     Rng &rng)
{
    std::vector<Tensor> initial_states;
    initial_states.reserve(n_train + n_test);
    for (std::size_t i = 0; i < n_train + n_test; i++)
        initial_states.push_back(make_initial(rng));
    return generateTrajectoriesImpl(system, initial_states, n_train,
                                    horizon);
}

} // namespace enode

#endif // ENODE_WORKLOADS_DYNAMIC_SYSTEMS_H
