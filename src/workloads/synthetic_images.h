#ifndef ENODE_WORKLOADS_SYNTHETIC_IMAGES_H
#define ENODE_WORKLOADS_SYNTHETIC_IMAGES_H

/**
 * @file
 * Synthetic stand-ins for the CIFAR-10 and MNIST datasets.
 *
 * The offline environment has no dataset files, so the image workloads
 * are generated procedurally (documented substitution in DESIGN.md).
 * Each class is a smooth, class-conditional field (oriented gratings and
 * Gaussian blobs whose parameters are a deterministic function of the
 * class id) plus per-sample jitter and pixel noise. The generators
 * preserve what the hardware results actually depend on:
 *
 *  - tensor shapes (3x32x32 "CIFAR-like", 1x28x28 "MNIST-like"),
 *  - spatially localized structure, so integration error maps have the
 *    concentrated high-error regions priority processing exploits,
 *  - a learnable class signal, so training accuracy is a meaningful
 *    metric for Figs. 11 and 13.
 */

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace enode {

/** One labelled image. */
struct LabelledImage
{
    Tensor image; ///< (C, H, W)
    std::size_t label;
};

/** Generation parameters for a synthetic image dataset. */
struct SyntheticImageConfig
{
    std::size_t channels = 3;
    std::size_t height = 32;
    std::size_t width = 32;
    std::size_t numClasses = 10;
    float noiseStddev = 0.15f;   ///< pixel noise
    float jitterStddev = 0.15f;  ///< per-sample parameter jitter
};

/** "CIFAR-like": 3x32x32, 10 classes. */
SyntheticImageConfig cifarLikeConfig();

/** "MNIST-like": 1x28x28, 10 classes. */
SyntheticImageConfig mnistLikeConfig();

/** Deterministic synthetic class-conditional image generator. */
class SyntheticImageDataset
{
  public:
    SyntheticImageDataset(SyntheticImageConfig config, std::uint64_t seed);

    /** Generate one sample of the given class. */
    LabelledImage sample(std::size_t label);

    /** Generate one sample with a random class. */
    LabelledImage sample();

    /** Generate a batch of n random-class samples. */
    std::vector<LabelledImage> batch(std::size_t n);

    const SyntheticImageConfig &config() const { return config_; }

  private:
    /** Class-conditional base pattern (no noise). */
    Tensor basePattern(std::size_t label, float jitter_phase,
                       float jitter_scale) const;

    SyntheticImageConfig config_;
    Rng rng_;
};

} // namespace enode

#endif // ENODE_WORKLOADS_SYNTHETIC_IMAGES_H
