#include "workloads/synthetic_images.h"

#include <cmath>
#include <numbers>

#include "common/logging.h"

namespace enode {

SyntheticImageConfig
cifarLikeConfig()
{
    SyntheticImageConfig cfg;
    cfg.channels = 3;
    cfg.height = 32;
    cfg.width = 32;
    cfg.numClasses = 10;
    return cfg;
}

SyntheticImageConfig
mnistLikeConfig()
{
    SyntheticImageConfig cfg;
    cfg.channels = 1;
    cfg.height = 28;
    cfg.width = 28;
    cfg.numClasses = 10;
    cfg.noiseStddev = 0.1f;
    return cfg;
}

SyntheticImageDataset::SyntheticImageDataset(SyntheticImageConfig config,
                                             std::uint64_t seed)
    : config_(config), rng_(seed)
{
    ENODE_ASSERT(config_.numClasses >= 2, "need at least two classes");
}

Tensor
SyntheticImageDataset::basePattern(std::size_t label, float jitter_phase,
                                   float jitter_scale) const
{
    const std::size_t C = config_.channels;
    const std::size_t H = config_.height;
    const std::size_t W = config_.width;
    const double pi = std::numbers::pi;

    // Deterministic per-class parameters: orientation, spatial frequency
    // and a blob position, spread over the class ids.
    const double klass = static_cast<double>(label);
    const double n_cls = static_cast<double>(config_.numClasses);
    const double angle = pi * klass / n_cls + jitter_phase * 0.3;
    const double freq =
        (2.0 + 3.0 * (klass / n_cls)) * (1.0 + 0.2 * jitter_scale);
    const double blob_h = 0.2 + 0.6 * std::fmod(klass * 0.37, 1.0);
    const double blob_w = 0.2 + 0.6 * std::fmod(klass * 0.61, 1.0);
    const double blob_sigma = 0.12 + 0.05 * std::fmod(klass * 0.23, 1.0);

    Tensor img(Shape{C, H, W});
    for (std::size_t c = 0; c < C; c++) {
        const double chan_phase = 2.0 * pi * static_cast<double>(c) /
                                  std::max<std::size_t>(C, 1);
        for (std::size_t h = 0; h < H; h++) {
            for (std::size_t w = 0; w < W; w++) {
                const double u = static_cast<double>(h) / H;
                const double v = static_cast<double>(w) / W;
                // Oriented grating.
                const double axis =
                    u * std::cos(angle) + v * std::sin(angle);
                const double grating =
                    std::sin(2.0 * pi * freq * axis + chan_phase +
                             jitter_phase);
                // Localized Gaussian blob (the concentrated structure
                // that makes priority windows meaningful).
                const double dh = u - blob_h, dw = v - blob_w;
                const double blob =
                    1.5 * std::exp(-(dh * dh + dw * dw) /
                                   (2.0 * blob_sigma * blob_sigma));
                img.at(c, h, w) =
                    static_cast<float>(0.5 * grating + blob);
            }
        }
    }
    return img;
}

LabelledImage
SyntheticImageDataset::sample(std::size_t label)
{
    ENODE_ASSERT(label < config_.numClasses, "label out of range");
    const float jitter_phase =
        static_cast<float>(rng_.normal(0.0, config_.jitterStddev));
    const float jitter_scale =
        static_cast<float>(rng_.normal(0.0, config_.jitterStddev));
    Tensor img = basePattern(label, jitter_phase, jitter_scale);
    for (std::size_t i = 0; i < img.numel(); i++)
        img.at(i) += static_cast<float>(
            rng_.normal(0.0, config_.noiseStddev));
    return {std::move(img), label};
}

LabelledImage
SyntheticImageDataset::sample()
{
    return sample(rng_.nextBelow(config_.numClasses));
}

std::vector<LabelledImage>
SyntheticImageDataset::batch(std::size_t n)
{
    std::vector<LabelledImage> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; i++)
        out.push_back(sample());
    return out;
}

} // namespace enode
