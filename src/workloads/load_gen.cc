#include "workloads/load_gen.h"

#include <cmath>
#include <numbers>

#include "common/logging.h"

namespace enode {

namespace {

/** Exponential inter-arrival gap for a Poisson process at `rate`/sec. */
double
expGapSec(Rng &rng, double rate)
{
    // uniform() is in [0, 1); flip to (0, 1] so the log is finite.
    return -std::log(1.0 - rng.uniform()) / rate;
}

} // namespace

LoadGen::LoadGen(LoadGenOptions options)
    : options_(options), rng_(options.seed)
{
    ENODE_ASSERT(options_.ratePerSec > 0.0, "load gen needs a positive rate");
    ENODE_ASSERT(options_.numStreams >= 1, "load gen needs >= 1 stream");
    ENODE_ASSERT(options_.deadlineMeanMs > 0.0, "deadline mean must be > 0");
    ENODE_ASSERT(options_.deadlineJitter >= 0.0 &&
                     options_.deadlineJitter < 1.0,
                 "deadline jitter must be in [0, 1)");
    ENODE_ASSERT(options_.stiffFraction >= 0.0 &&
                     options_.stiffFraction <= 1.0,
                 "stiff fraction must be in [0, 1]");
    ENODE_ASSERT(options_.burstFactor >= 1.0, "burst factor must be >= 1");
}

ArrivalEvent
LoadGen::makeEvent(double at_ms)
{
    ArrivalEvent ev;
    ev.atMs = at_ms;
    ev.stream = static_cast<std::uint32_t>(
        rng_.nextBelow(options_.numStreams));
    const double jitter =
        rng_.uniform(-options_.deadlineJitter, options_.deadlineJitter);
    ev.deadlineBudgetMs = options_.deadlineMeanMs * (1.0 + jitter);
    ev.stiff = rng_.uniform() < options_.stiffFraction;
    ev.inputSeed = rng_.nextU64();
    return ev;
}

std::vector<ArrivalEvent>
LoadGen::schedule(double durationSec)
{
    ENODE_ASSERT(durationSec > 0.0, "load gen needs a positive duration");
    std::vector<ArrivalEvent> events;
    events.reserve(static_cast<std::size_t>(
        options_.ratePerSec * durationSec * 1.5 + 16.0));

    switch (options_.process) {
    case ArrivalProcess::Poisson: {
        double t = expGapSec(rng_, options_.ratePerSec);
        while (t < durationSec) {
            events.push_back(makeEvent(t * 1e3));
            t += expGapSec(rng_, options_.ratePerSec);
        }
        break;
    }
    case ArrivalProcess::Bursty: {
        // On/off modulated Poisson: bursts arrive at burstFactor times
        // the base rate, off-phases are silent. The long-run mean is
        // ratePerSec * burstFactor * duty — the defaults (factor 4,
        // duty 1/4) make that equal ratePerSec.
        const double on_rate = options_.ratePerSec * options_.burstFactor;
        double t = 0.0;
        bool on = true; // start hot: overload from the first window
        while (t < durationSec) {
            const double phase_mean =
                on ? options_.burstOnSec : options_.burstOffSec;
            const double phase_end = t + expGapSec(rng_, 1.0 / phase_mean);
            if (on) {
                double a = t + expGapSec(rng_, on_rate);
                while (a < phase_end && a < durationSec) {
                    events.push_back(makeEvent(a * 1e3));
                    a += expGapSec(rng_, on_rate);
                }
            }
            t = phase_end;
            on = !on;
        }
        break;
    }
    case ArrivalProcess::Diurnal: {
        // Thinning: draw from a homogeneous process at the peak rate,
        // keep each arrival with probability rate(t)/peak. rate(t)
        // sweeps a full raised cosine over diurnalPeriodSec, mean
        // ratePerSec, peak 2x.
        const double peak = 2.0 * options_.ratePerSec;
        double t = expGapSec(rng_, peak);
        while (t < durationSec) {
            const double phase = 2.0 * std::numbers::pi * t /
                                 options_.diurnalPeriodSec;
            const double rate =
                options_.ratePerSec * (1.0 - std::cos(phase));
            if (rng_.uniform() < rate / peak)
                events.push_back(makeEvent(t * 1e3));
            t += expGapSec(rng_, peak);
        }
        break;
    }
    }
    return events;
}

} // namespace enode
