#include "workloads/resnet_model.h"

namespace enode {

ResnetCost
resnetCost(const ResnetConfig &cfg)
{
    ResnetCost out;
    const double map_elems = static_cast<double>(cfg.channels) * cfg.height *
                             cfg.width;
    const double map_bytes = map_elems * cfg.bytesPerElement;
    const double convs =
        static_cast<double>(cfg.blocks) * cfg.convsPerBlock;

    out.activationBytes = map_bytes;
    // One KxK conv, C -> C channels, same spatial size.
    const double macs_per_conv = map_elems * cfg.channels *
                                 static_cast<double>(cfg.kernel) *
                                 cfg.kernel;
    out.macs = convs * macs_per_conv;

    // Layer-by-layer execution: every conv reads its input map and
    // writes its output map once.
    out.inferenceTrafficBytes = convs * 2.0 * map_bytes;

    // Training: forward writes every activation for reuse, backward
    // reads them and streams a gradient map through each conv (read +
    // write), plus the weight-gradient pass re-reads the activations.
    out.trainingTrafficBytes =
        out.inferenceTrafficBytes + convs * 4.0 * map_bytes;

    out.weightBytes = convs * static_cast<double>(cfg.channels) *
                      cfg.channels * cfg.kernel * cfg.kernel *
                      cfg.bytesPerElement;
    return out;
}

} // namespace enode
