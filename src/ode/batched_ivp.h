#ifndef ENODE_ODE_BATCHED_IVP_H
#define ENODE_ODE_BATCHED_IVP_H

/**
 * @file
 * Batched adaptive IVP driver — one lockstep solve over many samples.
 *
 * The serving batcher (src/runtime/batcher.h) coalesces compatible
 * requests; this driver integrates them together so every RK trial
 * performs ONE shared f evaluation across the batch (the serving
 * analogue of the paper's function-reuse ring, Sec. V: weight traffic
 * and packing are amortized over all consumers of an evaluation).
 *
 * Error control stays strictly per sample, in the spirit of ANODE's
 * per-sample accuracy discipline: each sample owns its stepsize
 * controller, error norm, accept/reject verdict, force-accept
 * bookkeeping, stats, and SolveStatus. Samples run the *identical*
 * arithmetic of the solo driver (same Tensor ops in the same order), so
 * a batch of one is bitwise identical to solveIvp. Only the f
 * evaluations are shared: per stage, the active samples' stage inputs
 * are gathered into one (n, ...) tensor, evaluated in a single batched
 * call, and scattered back.
 *
 * Per-sample early exit: a sample that reaches t1 (or fails) leaves the
 * active set immediately, so one stiff sample cannot hold its
 * batchmates' step sizes hostage — the stragglers simply keep
 * integrating in ever-smaller shared evaluations. Samples at different
 * points of their stepsize search coexist: each round evaluates one
 * trial per in-search sample at that sample's own dt.
 *
 * Differences from the solo driver, by design (inference-only path):
 * no checkpoints/trialsPerPoint are recorded, no custom TrialEvaluator
 * (priority processing stays solo), and no per-trial trace spans (one
 * span covers the whole batched solve).
 */

#include <vector>

#include "ode/butcher.h"
#include "ode/ivp.h"
#include "ode/step_control.h"
#include "tensor/tensor.h"

namespace enode {

/**
 * Right-hand side evaluated for a whole batch at once. `hs` stacks the
 * samples along a leading batch dimension (n, ...sample shape...) and
 * `ts` carries one evaluation time per sample (samples mid-search sit
 * at different times). Implementations resize `out` to hs.shape() and
 * must produce, for every sample row, bitwise the same floats as a solo
 * evaluation of that (t, h) pair — the batched layer contract
 * (Layer::forwardBatched).
 */
class BatchedOdeFunction
{
  public:
    virtual ~BatchedOdeFunction() = default;

    virtual void evalInto(const std::vector<double> &ts, const Tensor &hs,
                          Tensor &out) = 0;
};

/** Per-sample outcome of a batched solve (all vectors sized n). */
struct BatchedIvpResult
{
    std::vector<Tensor> yFinal;      ///< h_i(t1); trustworthy only when Ok
    std::vector<IvpStats> stats;     ///< per-sample accounting
    std::vector<SolveStatus> status; ///< per-sample verdict
};

/**
 * Reusable buffers of the batched solve: one slot of RK state per
 * sample plus the shared gather/scatter staging tensors. Pass the same
 * workspace to successive solves of same-shaped batches and the hot
 * path performs no heap allocation after warm-up. NodeModel holds one
 * per model replica.
 */
struct BatchedIvpWorkspace
{
    struct Slot
    {
        Tensor y;          ///< walking state h_i(t)
        Tensor fsal;       ///< last stage of the previous accepted step
        Tensor yNext;      ///< trial next state
        Tensor errorState; ///< trial embedded error state
        Tensor stageInput; ///< y_j being assembled for the current stage
        std::vector<Tensor> stages; ///< k_1..k_s of the current trial
    };

    std::vector<Slot> slots;
    Tensor packedIn;  ///< gathered stage inputs (m, ...)
    Tensor packedOut; ///< batched f output (m, ...)
    std::vector<double> packedTimes;
};

/**
 * Solve one integration layer over [t0, t1] for a batch of initial
 * states, sharing f evaluations across the batch while keeping error
 * control per sample.
 *
 * @param f Batched right-hand side.
 * @param y0 Initial states (all the same shape; none null).
 * @param tableau Integrator (shared across the batch).
 * @param controllers One stepsize controller per sample (none null);
 *        each is reset to opts.initialDt.
 * @param opts Tolerances and limits (shared across the batch).
 * @param workspace Optional reusable solve state.
 * @param guards Optional per-sample abort checks; when non-null, sized
 *        like y0 (individual entries may be null). A non-Ok verdict
 *        ends only that sample's solve.
 */
BatchedIvpResult
solveIvpBatched(BatchedOdeFunction &f, const std::vector<const Tensor *> &y0,
                double t0, double t1, const ButcherTableau &tableau,
                const std::vector<StepController *> &controllers,
                const IvpOptions &opts,
                BatchedIvpWorkspace *workspace = nullptr,
                const std::vector<SolveGuard *> *guards = nullptr);

} // namespace enode

#endif // ENODE_ODE_BATCHED_IVP_H
