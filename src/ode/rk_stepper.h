#ifndef ENODE_ODE_RK_STEPPER_H
#define ENODE_ODE_RK_STEPPER_H

/**
 * @file
 * One explicit Runge-Kutta step (the paper's "integration trial").
 *
 * The stepper evaluates all stages k_1..k_s of a tableau, forms the next
 * state and (for embedded tableaus) the error state e of Fig. 2(c). The
 * stages are retained in the result because both depth-first training
 * (the k's are training states, Sec. IV.B) and the discrete ACA adjoint
 * need them.
 */

#include <optional>
#include <vector>

#include "ode/butcher.h"
#include "ode/ode_function.h"
#include "tensor/tensor.h"

namespace enode {

/** Everything produced by one RK step at one trial stepsize. */
struct StepResult
{
    Tensor yNext;                 ///< h(t + dt)
    Tensor errorState;            ///< e (empty if no embedded estimator)
    double errorNorm = 0.0;       ///< ||e||_2 (0 if no estimator)
    std::vector<Tensor> stages;   ///< k_1..k_s
    std::vector<Tensor> stageInputs; ///< y_1..y_s (inputs to f per stage)
    std::vector<double> stageTimes;  ///< t + c_j dt per stage
};

/** Executes single steps of a fixed tableau. */
class RkStepper
{
  public:
    explicit RkStepper(const ButcherTableau &tableau);

    /**
     * Take one full step.
     *
     * @param f Right-hand side.
     * @param t Current time.
     * @param y Current state.
     * @param dt Stepsize (may be negative for backward-in-time adjoint
     *        integration).
     * @param k1_reuse FSAL: pass the last stage of the previous accepted
     *        step to skip re-evaluating k1.
     */
    StepResult step(OdeFunction &f, double t, const Tensor &y, double dt,
                    const Tensor *k1_reuse = nullptr) const;

    /**
     * Take one full step into a caller-owned StepResult, reusing its
     * stage tensors, stage inputs, next state, and error state. After
     * the first call has sized the buffers (and the workspace pool has
     * warmed up), a step performs no heap allocation. `result` may be
     * the output of a previous step; `y` must not alias any tensor
     * inside it.
     */
    void stepInto(OdeFunction &f, double t, const Tensor &y, double dt,
                  const Tensor *k1_reuse, StepResult &result) const;

    const ButcherTableau &tableau() const { return tableau_; }

  private:
    const ButcherTableau &tableau_;
};

/**
 * Integrate with a fixed stepsize over [t0, t1] (used by ground-truth
 * generation and by fixed-grid baselines). Steps are shortened at the end
 * to land exactly on t1. Works for t1 < t0 (backward integration).
 *
 * @return The final state.
 */
Tensor integrateFixed(OdeFunction &f, const ButcherTableau &tableau,
                      const Tensor &y0, double t0, double t1, double dt);

} // namespace enode

#endif // ENODE_ODE_RK_STEPPER_H
