#ifndef ENODE_ODE_BUTCHER_H
#define ENODE_ODE_BUTCHER_H

/**
 * @file
 * Butcher tableaus for explicit Runge-Kutta integrators.
 *
 * A tableau fully describes an explicit RK method:
 *
 *   k_j = f(t + c_j dt, y + dt * sum_{l<j} a_{jl} k_l)
 *   y'  = y + dt * sum_j b_j k_j
 *   e   = dt * sum_j (b_j - b*_j) k_j     (embedded error estimate)
 *
 * The paper's running example is RK23 (Bogacki-Shampine 3(2), the k1..k4
 * integrator of Fig. 2). The depth-first integration of Sec. IV is
 * derived *from the tableau* — the data-dependency graph, partial-state
 * factoring and buffer lifetimes in src/core/depth_first.h all consume
 * this structure, so any integrator added here is automatically supported
 * by the architecture model ("It supports various types of integrators
 * and different orders", Sec. V.B).
 */

#include <string>
#include <vector>

namespace enode {

/** Coefficients of an explicit (embedded) Runge-Kutta method. */
class ButcherTableau
{
  public:
    /** Number of stages s (f evaluations per step, ignoring FSAL reuse). */
    std::size_t stages() const { return b_.size(); }

    /** Order of the propagated solution. */
    int order() const { return order_; }

    /** True if the tableau carries an embedded error estimator. */
    bool hasEmbedded() const { return !bErr_.empty(); }

    /**
     * True for first-same-as-last methods: the final stage of an accepted
     * step equals k1 of the next step, saving one f evaluation per
     * accepted step (function reuse at the algorithm level).
     */
    bool fsal() const { return fsal_; }

    const std::string &name() const { return name_; }
    const std::vector<double> &c() const { return c_; }
    const std::vector<std::vector<double>> &a() const { return a_; }
    const std::vector<double> &b() const { return b_; }
    /** Embedded lower-order weights b*; empty when !hasEmbedded(). */
    const std::vector<double> &bErr() const { return bErr_; }

    /** d_j = b_j - b*_j, the error-state weights (e in Fig. 2c). */
    std::vector<double> errorWeights() const;

    /** Forward Euler (the ResNet residual block, Fig. 1a). */
    static const ButcherTableau &euler();
    /** Explicit midpoint, order 2. */
    static const ButcherTableau &midpoint();
    /** Heun-Euler 2(1), the smallest embedded pair. */
    static const ButcherTableau &heun21();
    /** Bogacki-Shampine 3(2) "RK23", the paper's running example. */
    static const ButcherTableau &rk23();
    /** Classic RK4 (no embedded estimate). */
    static const ButcherTableau &rk4();
    /** Fehlberg 4(5) "RKF45". */
    static const ButcherTableau &rkf45();
    /** Dormand-Prince 5(4) "Dopri5". */
    static const ButcherTableau &dopri5();

    /** Lookup by name ("euler", "midpoint", "rk23", ...); fatal if unknown. */
    static const ButcherTableau &byName(const std::string &name);

    /** All registered names, for sweeps over integrators (Fig. 14). */
    static std::vector<std::string> names();

    ButcherTableau(std::string name, int order, std::vector<double> c,
                   std::vector<std::vector<double>> a, std::vector<double> b,
                   std::vector<double> b_err, bool fsal);

  private:
    void validate() const;

    std::string name_;
    int order_;
    std::vector<double> c_;
    std::vector<std::vector<double>> a_;
    std::vector<double> b_;
    std::vector<double> bErr_;
    bool fsal_;
};

} // namespace enode

#endif // ENODE_ODE_BUTCHER_H
