#ifndef ENODE_ODE_WARM_START_H
#define ENODE_ODE_WARM_START_H

/**
 * @file
 * Cross-solve stepsize warm-starting (ROADMAP: "Solver warm-starting
 * and trajectory memoization").
 *
 * The paper's slope-adaptive search (Sec. VII.A) learns good step
 * sizes *within* one solve; production traffic repeats similar initial
 * conditions millions of times, so the accepted dt-schedule of one
 * solve is the best first guess for the next solve of a similar input.
 * This file holds the two pieces the serving cache composes:
 *
 *  - DtSchedule: the accepted step sizes of a completed solve, one
 *    segment per integration layer (the solver resets the controller
 *    at every layer boundary, which is what delimits segments).
 *  - WarmStartController: a StepController decorator that *replays* a
 *    schedule as first-trial proposals — one trial per evaluation
 *    point while the replay holds — and falls back to the wrapped
 *    adaptive controller the moment a replayed trial is rejected. The
 *    wrapped controller observes every accept/reject either way, so
 *    its internal state is exactly as warm at fallback time as it
 *    would have been on a cold solve.
 *
 * The decorator also *records* the accepted schedule of the solve it
 * fronts (it sees every accepted() callback), so a clean solve's
 * schedule can be harvested and cached without any solver-core change;
 * recording reuses its buffers across solves and performs no
 * steady-state allocation once segment capacity has grown to the
 * workload's step counts.
 *
 * Replay is a hint, never a contract: correctness is entirely owned by
 * the error test in the IVP driver. A stale or mismatched schedule
 * costs at worst one rejected trial before the adaptive search takes
 * over — the cold-path behavior.
 */

#include <cstdint>
#include <vector>

#include "ode/step_control.h"

namespace enode {

/** Accepted dt-schedule of one multi-layer solve. */
struct DtSchedule
{
    /** layers[l][k] = dt accepted at evaluation point k of layer l. */
    std::vector<std::vector<double>> layers;

    /** Total accepted points across layers. */
    std::size_t totalPoints() const
    {
        std::size_t n = 0;
        for (const auto &layer : layers)
            n += layer.size();
        return n;
    }

    bool empty() const { return layers.empty(); }

    /** Drop contents, keep segment capacity (allocation-free reuse). */
    void clear() { layers.clear(); }
};

/**
 * StepController decorator: replays a cached dt-schedule as first-trial
 * proposals and records the accepted schedule of the solve it fronts.
 *
 * Lifecycle per request: beginSolve(schedule_or_null), then hand the
 * decorator to the solver as the controller. The solver's per-layer
 * reset() advances both the replay cursor and the recording segment.
 * After the solve, recorded() holds the accepted schedule (one segment
 * per layer solved) ready for cache insertion.
 */
class WarmStartController : public StepController
{
  public:
    /** @param inner Wrapped adaptive controller (not owned). */
    explicit WarmStartController(StepController *inner);

    /**
     * Arm for a new solve. Copies `replay` into an internal buffer
     * (reusing capacity) so the caller may drop its reference — cache
     * entries can be evicted mid-solve without dangling. Pass null for
     * a cold solve (record-only). Also clears the recording.
     */
    void beginSolve(const DtSchedule *replay);

    /** Abandon replay for the rest of the solve (ladder rungs). */
    void disableReplay() { replayActive_ = false; }

    /**
     * Copy the accepted schedule recorded since beginSolve into `out`
     * (one segment per layer solved, reusing out's capacity). The
     * internal recording buffers persist across solves, so steady-state
     * recording itself never allocates once segment capacity has grown
     * to the workload's step counts.
     */
    void harvestRecorded(DtSchedule &out) const;

    /** Layers recorded (reset() calls) since beginSolve. */
    std::size_t recordedLayers() const { return usedSegments_; }

    /** Evaluation points whose first trial came from the replay. */
    std::uint32_t replayedPoints() const { return replayedPoints_; }

    /** True when a replayed first trial was rejected this solve. */
    bool replayRejected() const { return replayRejected_; }

    /** True when beginSolve was armed with a schedule. */
    bool armed() const { return armedReplay_; }

    // StepController interface -------------------------------------

    /** Layer boundary: next replay segment, new recording segment. */
    void reset(double initial_dt) override;
    double initialDt() override;
    double rejectedDt(double dt, double err_norm, double eps) override;
    void accepted(double dt, double err_norm, double eps,
                  bool first_trial_accepted) override;
    std::string name() const override
    {
        return "warm-start(" + inner_->name() + ")";
    }

  private:
    /** True when the next initialDt() should come from the replay. */
    bool replayHasNext() const;

    StepController *inner_;

    DtSchedule replay_;
    /** Recording segments; only the first usedSegments_ are live. The
     *  dead tail keeps its capacity for later solves. */
    std::vector<std::vector<double>> segments_;
    std::size_t usedSegments_ = 0;
    bool armedReplay_ = false;
    bool replayActive_ = false;
    /** True when the pending trial's dt came from the replay. */
    bool trialFromReplay_ = false;
    /** Current layer segment: -1 before the first reset(). */
    std::ptrdiff_t segment_ = -1;
    std::size_t pointIdx_ = 0;
    std::uint32_t replayedPoints_ = 0;
    bool replayRejected_ = false;
};

} // namespace enode

#endif // ENODE_ODE_WARM_START_H
