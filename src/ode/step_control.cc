#include "ode/step_control.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace enode {

FixedFactorController::FixedFactorController(double down_scale)
    : downScale_(down_scale)
{
    ENODE_ASSERT(down_scale > 0.0 && down_scale < 1.0,
                 "down_scale must be in (0, 1)");
}

void
FixedFactorController::reset(double initial_dt)
{
    ENODE_ASSERT(initial_dt > 0.0, "initial dt must be positive");
    dtPrev_ = initial_dt;
}

double
FixedFactorController::initialDt()
{
    ENODE_ASSERT(dtPrev_ > 0.0, "controller not reset");
    return dtPrev_;
}

double
FixedFactorController::rejectedDt(double dt, double /*err_norm*/,
                                  double /*eps*/)
{
    return dt * downScale_;
}

void
FixedFactorController::accepted(double dt, double /*err_norm*/,
                                double /*eps*/, bool /*first*/)
{
    dtPrev_ = dt;
}

ConstantInitController::ConstantInitController(double down_scale)
    : downScale_(down_scale)
{
    ENODE_ASSERT(down_scale > 0.0 && down_scale < 1.0,
                 "down_scale must be in (0, 1)");
}

void
ConstantInitController::reset(double initial_dt)
{
    ENODE_ASSERT(initial_dt > 0.0, "initial dt must be positive");
    constantC_ = initial_dt;
}

double
ConstantInitController::initialDt()
{
    ENODE_ASSERT(constantC_ > 0.0, "controller not reset");
    return constantC_;
}

double
ConstantInitController::rejectedDt(double dt, double /*err_norm*/,
                                   double /*eps*/)
{
    return dt * downScale_;
}

void
ConstantInitController::accepted(double /*dt*/, double /*err_norm*/,
                                 double /*eps*/, bool /*first*/)
{
    // Next point restarts from C; nothing carries over.
}

PressTeukolskyController::PressTeukolskyController(int order, double safety,
                                                   double max_growth,
                                                   double min_shrink)
    : order_(order),
      safety_(safety),
      maxGrowth_(max_growth),
      minShrink_(min_shrink)
{
    ENODE_ASSERT(order >= 1, "order must be >= 1");
}

void
PressTeukolskyController::reset(double initial_dt)
{
    ENODE_ASSERT(initial_dt > 0.0, "initial dt must be positive");
    dtPrev_ = initial_dt;
}

double
PressTeukolskyController::initialDt()
{
    ENODE_ASSERT(dtPrev_ > 0.0, "controller not reset");
    return dtPrev_;
}

double
PressTeukolskyController::rejectedDt(double dt, double err_norm, double eps)
{
    // err scales as dt^order when retrying the same point, so the factor
    // that would exactly hit eps is (eps/err)^(1/order); apply a safety
    // margin and clamp the shrink.
    double factor = minShrink_;
    if (err_norm > 0.0) {
        factor = safety_ * std::pow(eps / err_norm,
                                    1.0 / static_cast<double>(order_));
        factor = std::clamp(factor, minShrink_, 0.9);
    }
    return dt * factor;
}

void
PressTeukolskyController::accepted(double dt, double err_norm, double eps,
                                   bool /*first*/)
{
    // Growth uses order+1: the local error of the *next* step responds to
    // the new dt with one extra power (standard PI-free controller).
    double factor = maxGrowth_;
    if (err_norm > 0.0) {
        factor = safety_ * std::pow(eps / err_norm,
                                    1.0 / static_cast<double>(order_ + 1));
        factor = std::clamp(factor, 0.2, maxGrowth_);
    }
    dtPrev_ = dt * factor;
}

PiController::PiController(int order, double k_i, double k_p,
                           double safety)
    : order_(order),
      kI_(k_i > 0.0 ? k_i : 0.3 / order),
      kP_(k_p > 0.0 ? k_p : 0.4 / order),
      safety_(safety)
{
    ENODE_ASSERT(order >= 1, "order must be >= 1");
}

void
PiController::reset(double initial_dt)
{
    ENODE_ASSERT(initial_dt > 0.0, "initial dt must be positive");
    dtPrev_ = initial_dt;
    errPrev_ = -1.0;
}

double
PiController::initialDt()
{
    ENODE_ASSERT(dtPrev_ > 0.0, "controller not reset");
    return dtPrev_;
}

double
PiController::rejectedDt(double dt, double err_norm, double eps)
{
    // On rejection fall back to the proportional law with clamps.
    double factor = 0.2;
    if (err_norm > 0.0) {
        factor = safety_ * std::pow(eps / err_norm,
                                    1.0 / static_cast<double>(order_));
        factor = std::clamp(factor, 0.1, 0.9);
    }
    return dt * factor;
}

void
PiController::accepted(double dt, double err_norm, double eps,
                       bool /*first*/)
{
    const double scaled = err_norm > 0.0 ? err_norm / eps : 1e-10;
    double factor;
    if (errPrev_ < 0.0) {
        factor = safety_ * std::pow(1.0 / scaled, kI_ + kP_);
    } else {
        // dt' = dt * (1/e_n)^kI * (e_{n-1}/e_n)^kP, all errors scaled
        // by the tolerance.
        factor = safety_ * std::pow(1.0 / scaled, kI_) *
                 std::pow(errPrev_ / scaled, kP_);
    }
    errPrev_ = scaled;
    dtPrev_ = dt * std::clamp(factor, 0.2, 5.0);
}

} // namespace enode
