#include "ode/ivp.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/logging.h"
#include "common/trace_span.h"

namespace enode {

namespace {

/**
 * Rate-limited force-accept warning: exponential backoff on a
 * process-wide counter (warns on the 1st, 2nd, 4th, 8th... occurrence),
 * so a pathological stream of underflowing solves cannot flood the log.
 */
void
warnForcedAccept(double t, double dt, double err_norm)
{
    static std::atomic<std::uint64_t> occurrences{0};
    const std::uint64_t n =
        occurrences.fetch_add(1, std::memory_order_relaxed);
    if ((n & (n + 1)) != 0)
        return; // not a 2^k - 1 boundary: suppressed
    ENODE_WARN("force-accepting step at t=", t, " dt=", dt, " err=",
               err_norm, " (occurrence ", n + 1,
               "; further warnings rate-limited)");
}

} // namespace

const char *
solveStatusName(SolveStatus status)
{
    switch (status) {
      case SolveStatus::Ok:
        return "ok";
      case SolveStatus::NonFinite:
        return "non-finite";
      case SolveStatus::StepUnderflow:
        return "step-underflow";
      case SolveStatus::TrialBudgetExhausted:
        return "trial-budget-exhausted";
      case SolveStatus::EvalBudgetExhausted:
        return "eval-budget-exhausted";
      case SolveStatus::DeadlineExceeded:
        return "deadline-exceeded";
    }
    ENODE_PANIC("unknown SolveStatus");
}

SolveStatus
DeadlineGuard::check(const IvpStats &stats)
{
    if (abortFlag != nullptr && abortFlag->load(std::memory_order_acquire))
        return SolveStatus::DeadlineExceeded;
    if (maxFEvals != 0 && stats.fEvals > maxFEvals)
        return SolveStatus::DeadlineExceeded;
    if (deadline != Clock::time_point::max() && Clock::now() > deadline)
        return SolveStatus::DeadlineExceeded;
    return SolveStatus::Ok;
}

void
IvpStats::accumulate(const IvpStats &other)
{
    evalPoints += other.evalPoints;
    trials += other.trials;
    rejected += other.rejected;
    fEvals += other.fEvals;
    forcedAccepts += other.forcedAccepts;
    equivalentTrials += other.equivalentTrials;
}

void
TrialEvaluator::evaluate(OdeFunction &f, const RkStepper &stepper, double t,
                         const Tensor &y, double dt, double eps,
                         const Tensor *k1_reuse, Trial &trial)
{
    stepper.stepInto(f, t, y, dt, k1_reuse, trial.step);
    trial.decisionNorm = trial.step.errorNorm;
    // Integrators without an embedded estimator cannot reject; they run
    // at whatever stepsize the controller proposes (fixed-step mode).
    // A non-finite error norm always rejects: the trial state has been
    // poisoned by NaN/Inf and retrying at a smaller dt re-evaluates f
    // fresh, so transient corruption heals here (persistent corruption
    // is caught by the accepted-state screen in solveIvp).
    trial.accepted = !stepper.tableau().hasEmbedded() ||
                     (std::isfinite(trial.decisionNorm) &&
                      trial.decisionNorm <= eps);
    trial.workFraction = 1.0;
}

IvpResult
solveIvp(OdeFunction &f, const Tensor &y0, double t0, double t1,
         const ButcherTableau &tableau, StepController &controller,
         const IvpOptions &opts, TrialEvaluator *evaluator,
         IvpWorkspace *workspace, SolveGuard *guard)
{
    ENODE_ASSERT(t1 > t0, "solveIvp needs t1 > t0");
    ENODE_ASSERT(opts.tolerance > 0.0 && opts.initialDt > 0.0,
                 "bad IvpOptions");

    TrialEvaluator default_evaluator;
    TrialEvaluator &eval = evaluator ? *evaluator : default_evaluator;

    TraceSpan solve_span("solve.ivp", "solver");

    RkStepper stepper(tableau);
    controller.reset(opts.initialDt);

    IvpResult result;
    // All per-step buffers live in the workspace (a local one if the
    // caller did not pass theirs — still allocation-free per step, the
    // buffers just return to the thread pool when the solve ends).
    IvpWorkspace local_ws;
    IvpWorkspace &ws = workspace ? *workspace : local_ws;
    TrialEvaluator::Trial &trial = ws.trial;
    ws.y.copyFrom(y0);
    Tensor &y = ws.y;
    double t = t0;
    // FSAL: the last stage of the previous accepted step. Only valid when
    // the previous step was accepted at the time the new k1 is needed and
    // the stage was evaluated at (t, y) — true for FSAL tableaus.
    Tensor &fsal_stage = ws.fsalStage;
    bool have_fsal = false;

    const std::uint64_t f_evals_at_start = f.evalCount();
    // Forced accepts split by cause; the larger class names the final
    // status when forcing dominated the solve.
    std::uint64_t underflow_forced = 0;
    std::uint64_t trial_budget_forced = 0;

    while (t1 - t > 1e-12 * std::max(1.0, std::abs(t1))) {
        if (result.stats.evalPoints >= opts.maxEvalPoints) {
            result.status = SolveStatus::EvalBudgetExhausted;
            break;
        }
        eval.pointStart();
        double dt_try = controller.initialDt();
        std::uint32_t n_try = 0;
        bool accepted = false;

        while (!accepted) {
            // One span per stepsize-search trial: the accept/reject
            // dynamics of Fig. 2(d), time-resolved. Disarmed cost is a
            // single relaxed atomic load.
            TraceSpan trial_span("solve.trial", "solver");

            // Clamp the final step to land exactly on t1. The clamped
            // value is what gets tried and recorded.
            const bool clamped = dt_try > t1 - t;
            const double dt_effective = clamped ? (t1 - t) : dt_try;

            // FSAL reuse is invalid right after a rejection at a new dt?
            // No: k1 = f(t, y) does not depend on dt, so the reuse stays
            // valid across retries at the same point as well.
            const Tensor *k1 =
                (have_fsal && tableau.fsal()) ? &fsal_stage : nullptr;

            eval.evaluate(f, stepper, t, y, dt_effective, opts.tolerance,
                          k1, trial);
            n_try++;
            result.stats.trials++;
            result.stats.equivalentTrials += trial.workFraction;

            const bool underflow = dt_effective <= opts.minDt;
            const bool trial_budget = n_try >= opts.maxTrialsPerPoint;
            const bool force =
                !trial.accepted && (underflow || trial_budget);
            trial_span.arg("dt", dt_effective);
            trial_span.arg("err_norm", trial.decisionNorm);
            trial_span.arg("accept",
                           (trial.accepted || force) ? 1.0 : 0.0);
            if (force)
                trial_span.arg("forced", 1.0);
            if (force) {
                result.stats.forcedAccepts++;
                if (underflow)
                    underflow_forced++;
                else
                    trial_budget_forced++;
                warnForcedAccept(t, dt_effective, trial.decisionNorm);
            }
            if (trial.accepted || force) {
                accepted = true;
                controller.accepted(dt_effective, trial.decisionNorm,
                                    opts.tolerance, n_try == 1);
                if (opts.recordCheckpoints) {
                    result.checkpoints.push_back({t, dt_effective, y});
                    result.trialsPerPoint.push_back(n_try);
                }
                // Swap rather than copy: trial.step.yNext inherits the
                // outgoing state's buffer and reuses it next step.
                y = std::move(trial.step.yNext);
                if (opts.quantizeFp16)
                    y.quantizeFp16();
                if (tableau.fsal() && !trial.step.stages.empty()) {
                    fsal_stage.copyFrom(trial.step.stages.back());
                    have_fsal = true;
                }
                t += dt_effective;
                result.stats.evalPoints++;
                // Cheap post-accept screening: a NaN/Inf accepted state
                // (FP16 overflow, corrupted f output force-accepted at
                // minDt) ends the solve with a structured status
                // instead of propagating garbage to the next layer.
                if (!y.isFinite()) {
                    result.status = SolveStatus::NonFinite;
                    break;
                }
                if (guard != nullptr) {
                    result.stats.fEvals =
                        f.evalCount() - f_evals_at_start;
                    const SolveStatus verdict =
                        guard->check(result.stats);
                    if (verdict != SolveStatus::Ok) {
                        result.status = verdict;
                        break;
                    }
                }
            } else {
                result.stats.rejected++;
                dt_try = controller.rejectedDt(dt_effective,
                                               trial.decisionNorm,
                                               opts.tolerance);
                ENODE_ASSERT(dt_try > 0.0, "controller proposed dt <= 0");
            }
        }
        if (result.status != SolveStatus::Ok)
            break;
    }

    // A solve that limped to the end on force-accepted steps did not
    // actually meet its tolerance: surface the dominant cause instead
    // of silently returning the wrong answer.
    if (result.status == SolveStatus::Ok &&
        result.stats.forcedAccepts * 2 > result.stats.evalPoints) {
        result.status = underflow_forced >= trial_budget_forced
                            ? SolveStatus::StepUnderflow
                            : SolveStatus::TrialBudgetExhausted;
    }

    result.yFinal = std::move(y);
    result.stats.fEvals = f.evalCount() - f_evals_at_start;
    solve_span.arg("eval_points",
                   static_cast<double>(result.stats.evalPoints));
    solve_span.arg("trials", static_cast<double>(result.stats.trials));
    solve_span.arg("f_evals", static_cast<double>(result.stats.fEvals));
    solve_span.arg("status", static_cast<double>(result.status));
    return result;
}

} // namespace enode
