#include "ode/ivp.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace enode {

void
IvpStats::accumulate(const IvpStats &other)
{
    evalPoints += other.evalPoints;
    trials += other.trials;
    rejected += other.rejected;
    fEvals += other.fEvals;
    equivalentTrials += other.equivalentTrials;
}

void
TrialEvaluator::evaluate(OdeFunction &f, const RkStepper &stepper, double t,
                         const Tensor &y, double dt, double eps,
                         const Tensor *k1_reuse, Trial &trial)
{
    stepper.stepInto(f, t, y, dt, k1_reuse, trial.step);
    trial.decisionNorm = trial.step.errorNorm;
    // Integrators without an embedded estimator cannot reject; they run
    // at whatever stepsize the controller proposes (fixed-step mode).
    trial.accepted = !stepper.tableau().hasEmbedded() ||
                     trial.decisionNorm <= eps;
    trial.workFraction = 1.0;
}

IvpResult
solveIvp(OdeFunction &f, const Tensor &y0, double t0, double t1,
         const ButcherTableau &tableau, StepController &controller,
         const IvpOptions &opts, TrialEvaluator *evaluator,
         IvpWorkspace *workspace)
{
    ENODE_ASSERT(t1 > t0, "solveIvp needs t1 > t0");
    ENODE_ASSERT(opts.tolerance > 0.0 && opts.initialDt > 0.0,
                 "bad IvpOptions");

    TrialEvaluator default_evaluator;
    TrialEvaluator &eval = evaluator ? *evaluator : default_evaluator;

    RkStepper stepper(tableau);
    controller.reset(opts.initialDt);

    IvpResult result;
    // All per-step buffers live in the workspace (a local one if the
    // caller did not pass theirs — still allocation-free per step, the
    // buffers just return to the thread pool when the solve ends).
    IvpWorkspace local_ws;
    IvpWorkspace &ws = workspace ? *workspace : local_ws;
    TrialEvaluator::Trial &trial = ws.trial;
    ws.y.copyFrom(y0);
    Tensor &y = ws.y;
    double t = t0;
    // FSAL: the last stage of the previous accepted step. Only valid when
    // the previous step was accepted at the time the new k1 is needed and
    // the stage was evaluated at (t, y) — true for FSAL tableaus.
    Tensor &fsal_stage = ws.fsalStage;
    bool have_fsal = false;

    const std::uint64_t f_evals_at_start = f.evalCount();

    while (t1 - t > 1e-12 * std::max(1.0, std::abs(t1))) {
        ENODE_ASSERT(result.stats.evalPoints < opts.maxEvalPoints,
                     "evaluation point budget exhausted; tolerance ",
                     opts.tolerance, " may be unreachable");
        eval.pointStart();
        double dt_try = controller.initialDt();
        std::uint32_t n_try = 0;
        bool accepted = false;

        while (!accepted) {
            // Clamp the final step to land exactly on t1. The clamped
            // value is what gets tried and recorded.
            const bool clamped = dt_try > t1 - t;
            const double dt_effective = clamped ? (t1 - t) : dt_try;

            // FSAL reuse is invalid right after a rejection at a new dt?
            // No: k1 = f(t, y) does not depend on dt, so the reuse stays
            // valid across retries at the same point as well.
            const Tensor *k1 =
                (have_fsal && tableau.fsal()) ? &fsal_stage : nullptr;

            eval.evaluate(f, stepper, t, y, dt_effective, opts.tolerance,
                          k1, trial);
            n_try++;
            result.stats.trials++;
            result.stats.equivalentTrials += trial.workFraction;

            const bool force = dt_effective <= opts.minDt ||
                               n_try >= opts.maxTrialsPerPoint;
            if (force && !trial.accepted) {
                ENODE_WARN("force-accepting step at t=", t, " dt=",
                           dt_effective, " err=", trial.decisionNorm);
            }
            if (trial.accepted || force) {
                accepted = true;
                controller.accepted(dt_effective, trial.decisionNorm,
                                    opts.tolerance, n_try == 1);
                if (opts.recordCheckpoints) {
                    result.checkpoints.push_back({t, dt_effective, y});
                    result.trialsPerPoint.push_back(n_try);
                }
                // Swap rather than copy: trial.step.yNext inherits the
                // outgoing state's buffer and reuses it next step.
                y = std::move(trial.step.yNext);
                if (opts.quantizeFp16)
                    y.quantizeFp16();
                if (tableau.fsal() && !trial.step.stages.empty()) {
                    fsal_stage.copyFrom(trial.step.stages.back());
                    have_fsal = true;
                }
                t += dt_effective;
                result.stats.evalPoints++;
            } else {
                result.stats.rejected++;
                dt_try = controller.rejectedDt(dt_effective,
                                               trial.decisionNorm,
                                               opts.tolerance);
                ENODE_ASSERT(dt_try > 0.0, "controller proposed dt <= 0");
            }
        }
    }

    result.yFinal = std::move(y);
    result.stats.fEvals = f.evalCount() - f_evals_at_start;
    return result;
}

} // namespace enode
