#ifndef ENODE_ODE_STEP_CONTROL_H
#define ENODE_ODE_STEP_CONTROL_H

/**
 * @file
 * Stepsize-search controllers (Sec. II.B and Fig. 2(d)).
 *
 * At each evaluation point the IVP driver performs a sequence of trial
 * integrations; the controller decides the stepsize of the first trial
 * and of each retry after a rejection, and observes the accepted result.
 * Two conventional policies live here; the paper's slope-adaptive policy
 * (Sec. VII.A) lives in src/core/slope_adaptive.h and derives from the
 * same interface.
 */

#include <memory>
#include <string>

namespace enode {

/** Strategy object driving the iterative stepsize search. */
class StepController
{
  public:
    virtual ~StepController() = default;

    /**
     * Start a fresh solve.
     *
     * @param initial_dt The predefined starting stepsize C of Fig. 2(d).
     */
    virtual void reset(double initial_dt) = 0;

    /** Stepsize for the first trial at the current evaluation point. */
    virtual double initialDt() = 0;

    /**
     * A trial was rejected (error above tolerance); pick the retry dt.
     *
     * @param dt The rejected stepsize.
     * @param err_norm Trial truncation error norm ||e||_2.
     * @param eps Error tolerance.
     */
    virtual double rejectedDt(double dt, double err_norm, double eps) = 0;

    /**
     * The evaluation point concluded with an accepted step.
     *
     * @param dt The accepted stepsize.
     * @param err_norm Its error norm.
     * @param eps Tolerance.
     * @param first_trial_accepted True when no retries were needed — the
     *        signal the slope-adaptive counters C_acc/C_rej consume.
     */
    virtual void accepted(double dt, double err_norm, double eps,
                          bool first_trial_accepted) = 0;

    /** Policy name for reports. */
    virtual std::string name() const = 0;
};

/**
 * The paper's conventional baseline: a nearly fixed scaling factor.
 * Rejections halve the stepsize; the accepted stepsize carries over to
 * the next evaluation point unchanged ("uses a nearly fixed scaling
 * factor and ignores how fast the state changes", Sec. VII.A).
 */
class FixedFactorController : public StepController
{
  public:
    /** @param down_scale Multiplier applied on rejection (default 0.5). */
    explicit FixedFactorController(double down_scale = 0.5);

    void reset(double initial_dt) override;
    double initialDt() override;
    double rejectedDt(double dt, double err_norm, double eps) override;
    void accepted(double dt, double err_norm, double eps,
                  bool first_trial_accepted) override;
    std::string name() const override { return "fixed-factor"; }

  private:
    double downScale_;
    double dtPrev_ = 0.0;
};

/**
 * The other conventional variant of Fig. 2(d): every evaluation point
 * restarts the trial stepsize from the predefined constant C, shrinking
 * by a fixed factor on rejection. This is the regime where the
 * iterative search dominates latency (Fig. 4(a)): every point replays
 * the whole search from C.
 */
class ConstantInitController : public StepController
{
  public:
    explicit ConstantInitController(double down_scale = 0.5);

    void reset(double initial_dt) override;
    double initialDt() override;
    double rejectedDt(double dt, double err_norm, double eps) override;
    void accepted(double dt, double err_norm, double eps,
                  bool first_trial_accepted) override;
    std::string name() const override { return "constant-init"; }

  private:
    double downScale_;
    double constantC_ = 0.0;
};

/**
 * Classic error-proportional control (Press & Teukolsky 1992, the
 * paper's Ref. [23]): scale by safety * (eps/err)^(1/order) on
 * rejection and grow by the same law (clamped) on acceptance.
 */
class PressTeukolskyController : public StepController
{
  public:
    /**
     * @param order Order of the integrator's propagated solution.
     * @param safety Safety factor (default 0.9).
     * @param max_growth Upper clamp on per-point growth (default 5).
     * @param min_shrink Lower clamp on per-trial shrink (default 0.1).
     */
    explicit PressTeukolskyController(int order, double safety = 0.9,
                                      double max_growth = 5.0,
                                      double min_shrink = 0.1);

    void reset(double initial_dt) override;
    double initialDt() override;
    double rejectedDt(double dt, double err_norm, double eps) override;
    void accepted(double dt, double err_norm, double eps,
                  bool first_trial_accepted) override;
    std::string name() const override { return "press-teukolsky"; }

  private:
    int order_;
    double safety_;
    double maxGrowth_;
    double minShrink_;
    double dtPrev_ = 0.0;
};

/**
 * PI (proportional-integral) stepsize control (Gustafsson). A smoother
 * alternative to the pure error-proportional law: the growth factor
 * blends the current error ratio (integral term) with the error trend
 * (proportional term), damping the grow/reject oscillation that plagues
 * aggressive controllers. Included as an ablation point against the
 * paper's slope-adaptive policy: both exploit *history*, but the PI
 * controller uses error magnitudes while slope-adaptive uses
 * accept/reject outcomes only (cheap enough for hardware).
 */
class PiController : public StepController
{
  public:
    /**
     * @param order Integrator order.
     * @param k_i Integral gain (default 0.3 / order).
     * @param k_p Proportional gain (default 0.4 / order).
     */
    explicit PiController(int order, double k_i = 0.0, double k_p = 0.0,
                          double safety = 0.9);

    void reset(double initial_dt) override;
    double initialDt() override;
    double rejectedDt(double dt, double err_norm, double eps) override;
    void accepted(double dt, double err_norm, double eps,
                  bool first_trial_accepted) override;
    std::string name() const override { return "pi"; }

  private:
    int order_;
    double kI_;
    double kP_;
    double safety_;
    double dtPrev_ = 0.0;
    double errPrev_ = -1.0; ///< scaled error of the previous accept
};

} // namespace enode

#endif // ENODE_ODE_STEP_CONTROL_H
