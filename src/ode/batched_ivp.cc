#include "ode/batched_ivp.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>

#include "common/logging.h"
#include "common/trace_span.h"

namespace enode {

namespace {

/**
 * Rate-limited force-accept warning, same policy as the solo driver
 * (exponential backoff on a process-wide counter). The counter is
 * separate from the solo driver's on purpose: a batched serving fleet
 * underflowing should warn even when offline solo solves already did.
 */
void
warnForcedAcceptBatched(double t, double dt, double err_norm)
{
    static std::atomic<std::uint64_t> occurrences{0};
    const std::uint64_t n =
        occurrences.fetch_add(1, std::memory_order_relaxed);
    if ((n & (n + 1)) != 0)
        return; // not a 2^k - 1 boundary: suppressed
    ENODE_WARN("force-accepting batched step at t=", t, " dt=", dt,
               " err=", err_norm, " (occurrence ", n + 1,
               "; further warnings rate-limited)");
}

} // namespace

BatchedIvpResult
solveIvpBatched(BatchedOdeFunction &f, const std::vector<const Tensor *> &y0,
                double t0, double t1, const ButcherTableau &tableau,
                const std::vector<StepController *> &controllers,
                const IvpOptions &opts, BatchedIvpWorkspace *workspace,
                const std::vector<SolveGuard *> *guards)
{
    ENODE_ASSERT(t1 > t0, "solveIvpBatched needs t1 > t0");
    ENODE_ASSERT(opts.tolerance > 0.0 && opts.initialDt > 0.0,
                 "bad IvpOptions");
    const std::size_t n = y0.size();
    ENODE_ASSERT(controllers.size() == n, "one controller per sample");
    ENODE_ASSERT(guards == nullptr || guards->size() == n,
                 "guards sized like the batch when present");

    BatchedIvpResult result;
    result.yFinal.resize(n);
    result.stats.resize(n);
    result.status.assign(n, SolveStatus::Ok);
    if (n == 0)
        return result;

    const Shape state_shape = y0[0]->shape();
    for (std::size_t i = 0; i < n; i++) {
        ENODE_ASSERT(y0[i] != nullptr && controllers[i] != nullptr,
                     "null sample ", i);
        ENODE_ASSERT(y0[i]->shape() == state_shape,
                     "batch mixes state shapes: ", y0[i]->shape().str(),
                     " vs ", state_shape.str());
    }

    TraceSpan solve_span("solve.ivp_batched", "solver");
    solve_span.arg("batch", static_cast<double>(n));

    const std::size_t s = tableau.stages();
    const auto &a = tableau.a();
    const auto &b = tableau.b();
    const auto &c = tableau.c();
    const std::size_t state_numel = state_shape.numel();

    BatchedIvpWorkspace local_ws;
    BatchedIvpWorkspace &ws = workspace ? *workspace : local_ws;
    if (ws.slots.size() < n)
        ws.slots.resize(n);
    for (std::size_t i = 0; i < n; i++) {
        ws.slots[i].y.copyFrom(*y0[i]);
        ws.slots[i].stages.resize(s);
        controllers[i]->reset(opts.initialDt);
    }

    // Per-sample walking state of the lockstep search. `active` samples
    // still have integrating to do; `inSearch` samples are mid
    // stepsize-search at their current evaluation point.
    std::vector<double> t(n, t0), dt_try(n, 0.0), dt_eff(n, 0.0);
    std::vector<std::uint32_t> n_try(n, 0);
    std::vector<char> active(n, 1), in_search(n, 0), have_fsal(n, 0);
    std::vector<std::uint64_t> underflow_forced(n, 0);
    std::vector<std::uint64_t> trial_budget_forced(n, 0);

    // Samples taking part in the current round's shared evaluation, and
    // the subset whose stage needs a fresh f evaluation (vs FSAL reuse).
    std::vector<std::size_t> trial_set, eval_set;
    trial_set.reserve(n);
    eval_set.reserve(n);

    while (true) {
        // Point starts: begin a stepsize search for every active sample
        // that is not already mid-search, retiring samples that reached
        // t1 or ran out of evaluation-point budget (same checks, same
        // order as the solo driver's outer loop).
        trial_set.clear();
        for (std::size_t i = 0; i < n; i++) {
            if (!active[i])
                continue;
            if (!in_search[i]) {
                if (!(t1 - t[i] > 1e-12 * std::max(1.0, std::abs(t1)))) {
                    active[i] = 0; // reached t1: this sample is done
                    continue;
                }
                if (result.stats[i].evalPoints >= opts.maxEvalPoints) {
                    result.status[i] = SolveStatus::EvalBudgetExhausted;
                    active[i] = 0;
                    continue;
                }
                dt_try[i] = controllers[i]->initialDt();
                n_try[i] = 0;
                in_search[i] = 1;
            }
            trial_set.push_back(i);
        }
        if (trial_set.empty())
            break;

        // Clamp each sample's final step to land exactly on its t1.
        for (std::size_t i : trial_set) {
            const bool clamped = dt_try[i] > t1 - t[i];
            dt_eff[i] = clamped ? (t1 - t[i]) : dt_try[i];
        }

        // Stages: identical per-sample arithmetic to RkStepper::stepInto,
        // but the f evaluations of all in-flight trials are gathered into
        // one batched call per stage.
        for (std::size_t j = 0; j < s; j++) {
            eval_set.clear();
            for (std::size_t i : trial_set) {
                BatchedIvpWorkspace::Slot &slot = ws.slots[i];
                if (j == 0 && have_fsal[i] && tableau.fsal()) {
                    // FSAL reuse: k1 equals the last stage of the
                    // previous accepted step; no evaluation needed. It
                    // stays valid across retries since k1 = f(t, y)
                    // does not depend on dt.
                    slot.stages[0].copyFrom(slot.fsal);
                    continue;
                }
                // Stage input y_j = y + dt * sum_{l<j} a_{jl} k_l, with
                // the axpy order of the solo stepper (bitwise identity).
                Tensor &yj = slot.stageInput;
                yj.copyFrom(slot.y);
                for (std::size_t l = 0; l < j; l++) {
                    if (a[j][l] != 0.0)
                        yj.axpy(static_cast<float>(dt_eff[i] * a[j][l]),
                                slot.stages[l]);
                }
                eval_set.push_back(i);
            }
            if (eval_set.empty())
                continue;

            // Gather -> one shared evaluation -> scatter.
            const std::size_t m = eval_set.size();
            ws.packedIn.resize(state_shape.prepended(m));
            ws.packedTimes.resize(m);
            for (std::size_t idx = 0; idx < m; idx++) {
                const std::size_t i = eval_set[idx];
                const Tensor &yj = ws.slots[i].stageInput;
                std::copy(yj.data(), yj.data() + state_numel,
                          ws.packedIn.data() + idx * state_numel);
                ws.packedTimes[idx] = t[i] + c[j] * dt_eff[i];
            }
            f.evalInto(ws.packedTimes, ws.packedIn, ws.packedOut);
            ENODE_ASSERT(ws.packedOut.numel() == m * state_numel,
                         "batched f output numel mismatch");
            for (std::size_t idx = 0; idx < m; idx++) {
                const std::size_t i = eval_set[idx];
                Tensor &kj = ws.slots[i].stages[j];
                kj.resize(state_shape);
                const float *src = ws.packedOut.data() + idx * state_numel;
                std::copy(src, src + state_numel, kj.data());
                result.stats[i].fEvals++;
            }
        }

        // Verdicts: per-sample accept/reject with the solo driver's
        // exact bookkeeping, controller calls, and failure screens.
        for (std::size_t i : trial_set) {
            BatchedIvpWorkspace::Slot &slot = ws.slots[i];
            IvpStats &stats = result.stats[i];

            // y' = y + dt * sum_j b_j k_j.
            slot.yNext.copyFrom(slot.y);
            for (std::size_t j = 0; j < s; j++) {
                if (b[j] != 0.0)
                    slot.yNext.axpy(
                        static_cast<float>(dt_eff[i] * b[j]),
                        slot.stages[j]);
            }

            double decision_norm = 0.0;
            if (tableau.hasEmbedded()) {
                const auto d = tableau.errorWeights();
                Tensor &e = slot.errorState;
                e.resize(state_shape);
                e.fill(0.0f);
                for (std::size_t j = 0; j < s; j++) {
                    if (d[j] != 0.0)
                        e.axpy(static_cast<float>(dt_eff[i] * d[j]),
                               slot.stages[j]);
                }
                decision_norm = e.l2Norm();
            }
            const bool trial_accepted =
                !tableau.hasEmbedded() ||
                (std::isfinite(decision_norm) &&
                 decision_norm <= opts.tolerance);

            n_try[i]++;
            stats.trials++;
            stats.equivalentTrials += 1.0;

            const bool underflow = dt_eff[i] <= opts.minDt;
            const bool trial_budget = n_try[i] >= opts.maxTrialsPerPoint;
            const bool force =
                !trial_accepted && (underflow || trial_budget);
            if (force) {
                stats.forcedAccepts++;
                if (underflow)
                    underflow_forced[i]++;
                else
                    trial_budget_forced[i]++;
                warnForcedAcceptBatched(t[i], dt_eff[i], decision_norm);
            }
            if (trial_accepted || force) {
                controllers[i]->accepted(dt_eff[i], decision_norm,
                                         opts.tolerance, n_try[i] == 1);
                // Swap rather than copy: yNext inherits the outgoing
                // state's buffer and reuses it next trial.
                slot.y = std::move(slot.yNext);
                if (opts.quantizeFp16)
                    slot.y.quantizeFp16();
                if (tableau.fsal() && !slot.stages.empty()) {
                    slot.fsal.copyFrom(slot.stages.back());
                    have_fsal[i] = 1;
                }
                t[i] += dt_eff[i];
                stats.evalPoints++;
                in_search[i] = 0;
                // Post-accept screening and guard check, per sample: a
                // failing sample leaves the batch alone and its
                // batchmates keep integrating.
                if (!slot.y.isFinite()) {
                    result.status[i] = SolveStatus::NonFinite;
                    active[i] = 0;
                } else if (guards != nullptr && (*guards)[i] != nullptr) {
                    const SolveStatus verdict = (*guards)[i]->check(stats);
                    if (verdict != SolveStatus::Ok) {
                        result.status[i] = verdict;
                        active[i] = 0;
                    }
                }
            } else {
                stats.rejected++;
                dt_try[i] = controllers[i]->rejectedDt(
                    dt_eff[i], decision_norm, opts.tolerance);
                ENODE_ASSERT(dt_try[i] > 0.0,
                             "controller proposed dt <= 0");
            }
        }
    }

    std::uint64_t total_eval_points = 0, total_f_evals = 0;
    std::size_t failed = 0;
    for (std::size_t i = 0; i < n; i++) {
        // A sample that limped to t1 on force-accepted steps did not
        // meet its tolerance: surface the dominant cause (the solo
        // driver's dominance rule, applied per sample).
        if (result.status[i] == SolveStatus::Ok &&
            result.stats[i].forcedAccepts * 2 >
                result.stats[i].evalPoints) {
            result.status[i] =
                underflow_forced[i] >= trial_budget_forced[i]
                    ? SolveStatus::StepUnderflow
                    : SolveStatus::TrialBudgetExhausted;
        }
        result.yFinal[i] = std::move(ws.slots[i].y);
        total_eval_points += result.stats[i].evalPoints;
        total_f_evals += result.stats[i].fEvals;
        if (result.status[i] != SolveStatus::Ok)
            failed++;
    }
    solve_span.arg("eval_points", static_cast<double>(total_eval_points));
    solve_span.arg("f_evals", static_cast<double>(total_f_evals));
    solve_span.arg("failed_samples", static_cast<double>(failed));
    return result;
}

} // namespace enode
