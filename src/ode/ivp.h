#ifndef ENODE_ODE_IVP_H
#define ENODE_ODE_IVP_H

/**
 * @file
 * Adaptive initial-value-problem driver — one NODE integration layer.
 *
 * Solves h(T) = h(0) + integral of f over [0, T] (Eq. 2) by walking
 * evaluation points with an iterative stepsize search (Fig. 2(d)):
 *
 *   for each evaluation point:
 *     dt_try = controller.initialDt()
 *     loop: trial integrate; accept if ||e||_2 <= eps else shrink dt_try
 *
 * The *trial* itself is pluggable through TrialEvaluator so the paper's
 * priority processing + early stop (Sec. VII.B) can replace the full
 * error evaluation with a windowed, early-terminating one. The driver
 * records every accepted evaluation point as a checkpoint — exactly the
 * state the ACA backward pass (Sec. II.C) replays.
 */

#include <cstdint>
#include <functional>
#include <vector>

#include "ode/rk_stepper.h"
#include "ode/step_control.h"

namespace enode {

/** Per-solve accounting that backs the complexity analysis of Fig. 3. */
struct IvpStats
{
    std::uint64_t evalPoints = 0; ///< n_eval: accepted steps
    std::uint64_t trials = 0;     ///< total search trials (n_eval * n_try)
    std::uint64_t rejected = 0;   ///< rejected trials
    std::uint64_t fEvals = 0;     ///< embedded-NN evaluations
    /**
     * Work actually performed, in units of full-feature-map trials.
     * Without early stop this equals trials; with priority processing a
     * trial that stops after a fraction of the rows contributes that
     * fraction (the latency/energy metric of Fig. 13).
     */
    double equivalentTrials = 0.0;

    void accumulate(const IvpStats &other);
};

/** One accepted evaluation point: the checkpoint of the ACA method. */
struct Checkpoint
{
    double t;    ///< time at the *start* of the step
    double dt;   ///< accepted stepsize taken from t
    Tensor state; ///< h(t)
};

/** Result of solving one integration layer. */
struct IvpResult
{
    Tensor yFinal;                       ///< h(T)
    std::vector<Checkpoint> checkpoints; ///< accepted points, first at t0
    IvpStats stats;
    std::vector<std::uint32_t> trialsPerPoint; ///< n_try at each point
};

/** Options for the adaptive solve. */
struct IvpOptions
{
    double tolerance = 1e-6;   ///< epsilon, the error tolerance
    double initialDt = 0.05;   ///< C, the predefined starting stepsize
    double minDt = 1e-9;       ///< below this a step is force-accepted
    std::uint32_t maxTrialsPerPoint = 60;
    std::uint64_t maxEvalPoints = 1u << 20;
    bool quantizeFp16 = false; ///< round accepted states through FP16
    /**
     * Record per-point diagnostics (checkpoints and trialsPerPoint).
     * Training needs the checkpoints — they are the states the ACA
     * backward pass replays — but inference-only serving does not, and
     * disabling them removes the state copy and vector growth per
     * accepted step (the allocation-free hot path).
     */
    bool recordCheckpoints = true;
};

/**
 * Evaluates one search trial and renders the accept/reject verdict.
 *
 * The default implementation computes the full step and compares
 * ||e||_2 against eps. PriorityTrialEvaluator (src/core/priority.h)
 * overrides this with the windowed early-stopping scan.
 */
class TrialEvaluator
{
  public:
    /** Outcome of one trial integration. */
    struct Trial
    {
        StepResult step;      ///< full step result (always fully computed
                              ///< numerically; hardware cost may be less)
        bool accepted;        ///< verdict used by the search
        double decisionNorm;  ///< the error norm the verdict was based on
        double workFraction;  ///< fraction of the feature map processed
    };

    virtual ~TrialEvaluator() = default;

    /** A new evaluation point begins (priority windows reset here). */
    virtual void pointStart() {}

    /**
     * Perform one trial at stepsize dt into a caller-owned Trial whose
     * step buffers are reused across trials (every field of `trial` is
     * overwritten; nothing from the previous trial is read).
     */
    virtual void evaluate(OdeFunction &f, const RkStepper &stepper,
                          double t, const Tensor &y, double dt, double eps,
                          const Tensor *k1_reuse, Trial &trial);
};

/**
 * Reusable state of the adaptive solve: the trial (with its RK stage
 * buffers), the walking state, and the FSAL stage. Pass the same
 * workspace to successive solveIvp calls on same-shaped problems and
 * the solver performs no heap allocation after the first solve; the
 * caller must not touch the members while a solve is running. NodeModel
 * holds one per model and threads it through every layer solve.
 */
struct IvpWorkspace
{
    TrialEvaluator::Trial trial;
    Tensor y;         ///< the walking state h(t)
    Tensor fsalStage; ///< last stage of the previous accepted step
};

/**
 * Solve one integration layer over [t0, t1].
 *
 * @param f Right-hand side (the embedded NN during NODE inference).
 * @param y0 Initial state h(t0).
 * @param tableau Integrator.
 * @param controller Stepsize-search policy (conventional or
 *        slope-adaptive).
 * @param opts Tolerances and limits.
 * @param evaluator Optional trial evaluator (null = full evaluation).
 * @param workspace Optional reusable solve state; pass the same one to
 *        successive solves to make the hot path allocation-free.
 */
IvpResult solveIvp(OdeFunction &f, const Tensor &y0, double t0, double t1,
                   const ButcherTableau &tableau, StepController &controller,
                   const IvpOptions &opts,
                   TrialEvaluator *evaluator = nullptr,
                   IvpWorkspace *workspace = nullptr);

} // namespace enode

#endif // ENODE_ODE_IVP_H
