#ifndef ENODE_ODE_IVP_H
#define ENODE_ODE_IVP_H

/**
 * @file
 * Adaptive initial-value-problem driver — one NODE integration layer.
 *
 * Solves h(T) = h(0) + integral of f over [0, T] (Eq. 2) by walking
 * evaluation points with an iterative stepsize search (Fig. 2(d)):
 *
 *   for each evaluation point:
 *     dt_try = controller.initialDt()
 *     loop: trial integrate; accept if ||e||_2 <= eps else shrink dt_try
 *
 * The *trial* itself is pluggable through TrialEvaluator so the paper's
 * priority processing + early stop (Sec. VII.B) can replace the full
 * error evaluation with a windowed, early-terminating one. The driver
 * records every accepted evaluation point as a checkpoint — exactly the
 * state the ACA backward pass (Sec. II.C) replays.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "ode/rk_stepper.h"
#include "ode/step_control.h"

namespace enode {

/**
 * How a solve ended. Anything but Ok means the returned state must not
 * be trusted as a converged solution: the caller (e.g. the serving
 * runtime's degradation ladder) decides whether to retry, fall back, or
 * fail the request. The driver stops at the first NonFinite or guard
 * failure; budget statuses classify solves that ran to a budget wall.
 */
enum class SolveStatus : std::uint8_t
{
    Ok = 0,               ///< converged within tolerance and budgets
    NonFinite,            ///< an accepted state contained NaN/Inf
    StepUnderflow,        ///< minDt force-accepts dominated the solve
    TrialBudgetExhausted, ///< per-point trial-cap force-accepts dominated
    EvalBudgetExhausted,  ///< maxEvalPoints reached before t1
    DeadlineExceeded,     ///< a SolveGuard aborted the solve mid-flight
};

/** Number of SolveStatus values (for exhaustive test matrices). */
constexpr std::size_t kNumSolveStatuses = 6;

/** Human-readable status name. */
const char *solveStatusName(SolveStatus status);

/** Per-solve accounting that backs the complexity analysis of Fig. 3. */
struct IvpStats
{
    std::uint64_t evalPoints = 0; ///< n_eval: accepted steps
    std::uint64_t trials = 0;     ///< total search trials (n_eval * n_try)
    std::uint64_t rejected = 0;   ///< rejected trials
    std::uint64_t fEvals = 0;     ///< embedded-NN evaluations
    /**
     * Steps accepted *despite* failing the tolerance test, because the
     * stepsize hit the minDt floor or the per-point trial cap. A solve
     * dominated by forced accepts is reported as StepUnderflow /
     * TrialBudgetExhausted rather than silently returning garbage.
     */
    std::uint64_t forcedAccepts = 0;
    /**
     * Work actually performed, in units of full-feature-map trials.
     * Without early stop this equals trials; with priority processing a
     * trial that stops after a fraction of the rows contributes that
     * fraction (the latency/energy metric of Fig. 13).
     */
    double equivalentTrials = 0.0;

    void accumulate(const IvpStats &other);
};

/** One accepted evaluation point: the checkpoint of the ACA method. */
struct Checkpoint
{
    double t;    ///< time at the *start* of the step
    double dt;   ///< accepted stepsize taken from t
    Tensor state; ///< h(t)
};

/** Result of solving one integration layer. */
struct IvpResult
{
    Tensor yFinal;                       ///< h(T)
    std::vector<Checkpoint> checkpoints; ///< accepted points, first at t0
    IvpStats stats;
    std::vector<std::uint32_t> trialsPerPoint; ///< n_try at each point
    /** How the solve ended; yFinal is trustworthy only when Ok. */
    SolveStatus status = SolveStatus::Ok;
};

/**
 * Per-accepted-step abort check evaluated by the IVP driver. Returning
 * anything but Ok stops the solve immediately with that status, so a
 * request-level runtime deadline can abort a runaway integration
 * mid-flight instead of waiting for it to exhaust its budgets.
 */
class SolveGuard
{
  public:
    virtual ~SolveGuard() = default;

    /**
     * Called once after every accepted step with the solve's running
     * statistics (fEvals is kept current). Return Ok to continue.
     */
    virtual SolveStatus check(const IvpStats &stats) = 0;
};

/**
 * The serving runtime's guard: aborts with DeadlineExceeded when the
 * wall-clock deadline passes, the f-evaluation budget is spent, or an
 * external abort flag (the watchdog's) is raised.
 */
class DeadlineGuard : public SolveGuard
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Wall-clock completion target; max() = no deadline. */
    Clock::time_point deadline = Clock::time_point::max();

    /** Per-solve f-evaluation budget; 0 = unlimited. */
    std::uint64_t maxFEvals = 0;

    /** External abort request (set by the serving watchdog); optional. */
    const std::atomic<bool> *abortFlag = nullptr;

    SolveStatus check(const IvpStats &stats) override;
};

/** Options for the adaptive solve. */
struct IvpOptions
{
    double tolerance = 1e-6;   ///< epsilon, the error tolerance
    double initialDt = 0.05;   ///< C, the predefined starting stepsize
    double minDt = 1e-9;       ///< below this a step is force-accepted
    std::uint32_t maxTrialsPerPoint = 60;
    std::uint64_t maxEvalPoints = 1u << 20;
    bool quantizeFp16 = false; ///< round accepted states through FP16
    /**
     * Record per-point diagnostics (checkpoints and trialsPerPoint).
     * Training needs the checkpoints — they are the states the ACA
     * backward pass replays — but inference-only serving does not, and
     * disabling them removes the state copy and vector growth per
     * accepted step (the allocation-free hot path).
     */
    bool recordCheckpoints = true;
};

/**
 * Evaluates one search trial and renders the accept/reject verdict.
 *
 * The default implementation computes the full step and compares
 * ||e||_2 against eps. PriorityTrialEvaluator (src/core/priority.h)
 * overrides this with the windowed early-stopping scan.
 */
class TrialEvaluator
{
  public:
    /** Outcome of one trial integration. */
    struct Trial
    {
        StepResult step;      ///< full step result (always fully computed
                              ///< numerically; hardware cost may be less)
        bool accepted;        ///< verdict used by the search
        double decisionNorm;  ///< the error norm the verdict was based on
        double workFraction;  ///< fraction of the feature map processed
    };

    virtual ~TrialEvaluator() = default;

    /** A new evaluation point begins (priority windows reset here). */
    virtual void pointStart() {}

    /**
     * Perform one trial at stepsize dt into a caller-owned Trial whose
     * step buffers are reused across trials (every field of `trial` is
     * overwritten; nothing from the previous trial is read).
     */
    virtual void evaluate(OdeFunction &f, const RkStepper &stepper,
                          double t, const Tensor &y, double dt, double eps,
                          const Tensor *k1_reuse, Trial &trial);
};

/**
 * Reusable state of the adaptive solve: the trial (with its RK stage
 * buffers), the walking state, and the FSAL stage. Pass the same
 * workspace to successive solveIvp calls on same-shaped problems and
 * the solver performs no heap allocation after the first solve; the
 * caller must not touch the members while a solve is running. NodeModel
 * holds one per model and threads it through every layer solve.
 */
struct IvpWorkspace
{
    TrialEvaluator::Trial trial;
    Tensor y;         ///< the walking state h(t)
    Tensor fsalStage; ///< last stage of the previous accepted step
};

/**
 * Solve one integration layer over [t0, t1].
 *
 * @param f Right-hand side (the embedded NN during NODE inference).
 * @param y0 Initial state h(t0).
 * @param tableau Integrator.
 * @param controller Stepsize-search policy (conventional or
 *        slope-adaptive).
 * @param opts Tolerances and limits.
 * @param evaluator Optional trial evaluator (null = full evaluation).
 * @param workspace Optional reusable solve state; pass the same one to
 *        successive solves to make the hot path allocation-free.
 * @param guard Optional per-accepted-step abort check (deadline /
 *        f-eval budget); a non-Ok verdict ends the solve with that
 *        status.
 */
IvpResult solveIvp(OdeFunction &f, const Tensor &y0, double t0, double t1,
                   const ButcherTableau &tableau, StepController &controller,
                   const IvpOptions &opts,
                   TrialEvaluator *evaluator = nullptr,
                   IvpWorkspace *workspace = nullptr,
                   SolveGuard *guard = nullptr);

} // namespace enode

#endif // ENODE_ODE_IVP_H
