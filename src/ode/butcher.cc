#include "ode/butcher.h"

#include <cmath>

#include "common/logging.h"

namespace enode {

ButcherTableau::ButcherTableau(std::string name, int order,
                               std::vector<double> c,
                               std::vector<std::vector<double>> a,
                               std::vector<double> b,
                               std::vector<double> b_err, bool fsal)
    : name_(std::move(name)),
      order_(order),
      c_(std::move(c)),
      a_(std::move(a)),
      b_(std::move(b)),
      bErr_(std::move(b_err)),
      fsal_(fsal)
{
    validate();
}

void
ButcherTableau::validate() const
{
    const std::size_t s = b_.size();
    ENODE_ASSERT(s > 0, "empty tableau");
    ENODE_ASSERT(c_.size() == s, "c size mismatch in ", name_);
    ENODE_ASSERT(a_.size() == s, "a rows mismatch in ", name_);
    for (std::size_t j = 0; j < s; j++) {
        ENODE_ASSERT(a_[j].size() == j,
                     "a must be strictly lower triangular in ", name_);
        // Row-sum consistency: c_j = sum_l a_{jl} for a consistent method.
        double row = 0.0;
        for (double v : a_[j])
            row += v;
        ENODE_ASSERT(std::abs(row - c_[j]) < 1e-12,
                     "row-sum condition violated at stage ", j, " of ",
                     name_);
    }
    ENODE_ASSERT(bErr_.empty() || bErr_.size() == s,
                 "bErr size mismatch in ", name_);
    // Consistency: weights sum to one.
    double sb = 0.0;
    for (double v : b_)
        sb += v;
    ENODE_ASSERT(std::abs(sb - 1.0) < 1e-12, "b must sum to 1 in ", name_);
    if (!bErr_.empty()) {
        double sbe = 0.0;
        for (double v : bErr_)
            sbe += v;
        ENODE_ASSERT(std::abs(sbe - 1.0) < 1e-12,
                     "bErr must sum to 1 in ", name_);
    }
}

std::vector<double>
ButcherTableau::errorWeights() const
{
    ENODE_ASSERT(hasEmbedded(), "no embedded estimator in ", name_);
    std::vector<double> d(b_.size());
    for (std::size_t j = 0; j < b_.size(); j++)
        d[j] = b_[j] - bErr_[j];
    return d;
}

const ButcherTableau &
ButcherTableau::euler()
{
    static const ButcherTableau tab("euler", 1, {0.0}, {{}}, {1.0}, {},
                                    false);
    return tab;
}

const ButcherTableau &
ButcherTableau::midpoint()
{
    static const ButcherTableau tab("midpoint", 2, {0.0, 0.5}, {{}, {0.5}},
                                    {0.0, 1.0}, {}, false);
    return tab;
}

const ButcherTableau &
ButcherTableau::heun21()
{
    static const ButcherTableau tab("heun21", 2, {0.0, 1.0}, {{}, {1.0}},
                                    {0.5, 0.5}, {1.0, 0.0}, false);
    return tab;
}

const ButcherTableau &
ButcherTableau::rk23()
{
    // Bogacki-Shampine 3(2): the paper's RK23 with states k1..k4
    // (Fig. 2(c)). FSAL: k4 of an accepted step is k1 of the next.
    static const ButcherTableau tab(
        "rk23", 3, {0.0, 0.5, 0.75, 1.0},
        {{}, {0.5}, {0.0, 0.75}, {2.0 / 9.0, 1.0 / 3.0, 4.0 / 9.0}},
        {2.0 / 9.0, 1.0 / 3.0, 4.0 / 9.0, 0.0},
        {7.0 / 24.0, 0.25, 1.0 / 3.0, 0.125}, true);
    return tab;
}

const ButcherTableau &
ButcherTableau::rk4()
{
    static const ButcherTableau tab(
        "rk4", 4, {0.0, 0.5, 0.5, 1.0},
        {{}, {0.5}, {0.0, 0.5}, {0.0, 0.0, 1.0}},
        {1.0 / 6.0, 1.0 / 3.0, 1.0 / 3.0, 1.0 / 6.0}, {}, false);
    return tab;
}

const ButcherTableau &
ButcherTableau::rkf45()
{
    static const ButcherTableau tab(
        "rkf45", 5, {0.0, 0.25, 3.0 / 8.0, 12.0 / 13.0, 1.0, 0.5},
        {{},
         {0.25},
         {3.0 / 32.0, 9.0 / 32.0},
         {1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0},
         {439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0},
         {-8.0 / 27.0, 2.0, -3544.0 / 2565.0, 1859.0 / 4104.0,
          -11.0 / 40.0}},
        {16.0 / 135.0, 0.0, 6656.0 / 12825.0, 28561.0 / 56430.0, -9.0 / 50.0,
         2.0 / 55.0},
        {25.0 / 216.0, 0.0, 1408.0 / 2565.0, 2197.0 / 4104.0, -0.2, 0.0},
        false);
    return tab;
}

const ButcherTableau &
ButcherTableau::dopri5()
{
    static const ButcherTableau tab(
        "dopri5", 5, {0.0, 0.2, 0.3, 0.8, 8.0 / 9.0, 1.0, 1.0},
        {{},
         {0.2},
         {3.0 / 40.0, 9.0 / 40.0},
         {44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0},
         {19372.0 / 6561.0, -25360.0 / 2187.0, 64448.0 / 6561.0,
          -212.0 / 729.0},
         {9017.0 / 3168.0, -355.0 / 33.0, 46732.0 / 5247.0, 49.0 / 176.0,
          -5103.0 / 18656.0},
         {35.0 / 384.0, 0.0, 500.0 / 1113.0, 125.0 / 192.0, -2187.0 / 6784.0,
          11.0 / 84.0}},
        {35.0 / 384.0, 0.0, 500.0 / 1113.0, 125.0 / 192.0, -2187.0 / 6784.0,
         11.0 / 84.0, 0.0},
        {5179.0 / 57600.0, 0.0, 7571.0 / 16695.0, 393.0 / 640.0,
         -92097.0 / 339200.0, 187.0 / 2100.0, 0.025},
        true);
    return tab;
}

const ButcherTableau &
ButcherTableau::byName(const std::string &name)
{
    if (name == "euler")
        return euler();
    if (name == "midpoint")
        return midpoint();
    if (name == "heun21")
        return heun21();
    if (name == "rk23")
        return rk23();
    if (name == "rk4")
        return rk4();
    if (name == "rkf45")
        return rkf45();
    if (name == "dopri5")
        return dopri5();
    ENODE_FATAL("unknown integrator '", name, "'");
}

std::vector<std::string>
ButcherTableau::names()
{
    return {"euler", "midpoint", "heun21", "rk23", "rk4", "rkf45", "dopri5"};
}

} // namespace enode
