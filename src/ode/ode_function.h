#ifndef ENODE_ODE_ODE_FUNCTION_H
#define ENODE_ODE_ODE_FUNCTION_H

/**
 * @file
 * The right-hand side f(t, h) of Eq. (1).
 *
 * Implemented by the embedded neural network (NODE) and by analytic
 * dynamic systems (Three-Body, Lotka-Volterra) used as ground truth.
 */

#include <cstdint>

#include "tensor/tensor.h"

namespace enode {

/** Right-hand side of dh/dt = f(t, h). */
class OdeFunction
{
  public:
    virtual ~OdeFunction() = default;

    /** Evaluate the derivative at time t and state h. */
    virtual Tensor eval(double t, const Tensor &h) = 0;

    /**
     * Evaluate into a caller-owned tensor, reusing its storage. The
     * allocation-free entry point the RK stepper drives its stage
     * evaluations through. The default forwards to eval(); the
     * move-assignment recycles out's previous buffer through the
     * workspace pool, so even un-overridden implementations are
     * heap-free at steady state.
     */
    virtual void
    evalInto(double t, const Tensor &h, Tensor &out)
    {
        out = eval(t, h);
    }

    /** Total evaluations performed (complexity metering, Fig. 3). */
    std::uint64_t evalCount() const { return evalCount_; }
    void resetEvalCount() { evalCount_ = 0; }

  protected:
    /** Subclasses call this once per eval. */
    void countEval() { evalCount_++; }

  private:
    std::uint64_t evalCount_ = 0;
};

/**
 * FP16-datapath wrapper: rounds both the state fed to the inner f and
 * the derivative it returns through half precision, modelling an
 * accelerator whose f evaluations run on a 16-bit datapath end to end
 * ("All designs use FP16 precision", Sec. VIII). Composable around any
 * OdeFunction.
 */
class Fp16Ode : public OdeFunction
{
  public:
    explicit Fp16Ode(OdeFunction &inner) : inner_(inner) {}

    Tensor
    eval(double t, const Tensor &h) override
    {
        Tensor d;
        evalInto(t, h, d);
        return d;
    }

    void
    evalInto(double t, const Tensor &h, Tensor &out) override
    {
        countEval();
        // Quantize into a reused scratch state rather than copying the
        // full state per evaluation: copyFrom keeps h16_'s buffer.
        h16_.copyFrom(h);
        h16_.quantizeFp16();
        inner_.evalInto(t, h16_, out);
        out.quantizeFp16();
    }

  private:
    OdeFunction &inner_;
    Tensor h16_; ///< reused FP16-rounded copy of the state
};

} // namespace enode

#endif // ENODE_ODE_ODE_FUNCTION_H
