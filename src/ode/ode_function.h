#ifndef ENODE_ODE_ODE_FUNCTION_H
#define ENODE_ODE_ODE_FUNCTION_H

/**
 * @file
 * The right-hand side f(t, h) of Eq. (1).
 *
 * Implemented by the embedded neural network (NODE) and by analytic
 * dynamic systems (Three-Body, Lotka-Volterra) used as ground truth.
 */

#include <cstdint>

#include "tensor/tensor.h"

namespace enode {

/** Right-hand side of dh/dt = f(t, h). */
class OdeFunction
{
  public:
    virtual ~OdeFunction() = default;

    /** Evaluate the derivative at time t and state h. */
    virtual Tensor eval(double t, const Tensor &h) = 0;

    /** Total evaluations performed (complexity metering, Fig. 3). */
    std::uint64_t evalCount() const { return evalCount_; }
    void resetEvalCount() { evalCount_ = 0; }

  protected:
    /** Subclasses call this once per eval. */
    void countEval() { evalCount_++; }

  private:
    std::uint64_t evalCount_ = 0;
};

/**
 * FP16-datapath wrapper: rounds both the state fed to the inner f and
 * the derivative it returns through half precision, modelling an
 * accelerator whose f evaluations run on a 16-bit datapath end to end
 * ("All designs use FP16 precision", Sec. VIII). Composable around any
 * OdeFunction.
 */
class Fp16Ode : public OdeFunction
{
  public:
    explicit Fp16Ode(OdeFunction &inner) : inner_(inner) {}

    Tensor
    eval(double t, const Tensor &h) override
    {
        countEval();
        Tensor h16 = h;
        h16.quantizeFp16();
        Tensor d = inner_.eval(t, h16);
        d.quantizeFp16();
        return d;
    }

  private:
    OdeFunction &inner_;
};

} // namespace enode

#endif // ENODE_ODE_ODE_FUNCTION_H
