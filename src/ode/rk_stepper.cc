#include "ode/rk_stepper.h"

#include <cmath>

#include "common/logging.h"

namespace enode {

RkStepper::RkStepper(const ButcherTableau &tableau) : tableau_(tableau) {}

StepResult
RkStepper::step(OdeFunction &f, double t, const Tensor &y, double dt,
                const Tensor *k1_reuse) const
{
    StepResult result;
    stepInto(f, t, y, dt, k1_reuse, result);
    return result;
}

void
RkStepper::stepInto(OdeFunction &f, double t, const Tensor &y, double dt,
                    const Tensor *k1_reuse, StepResult &result) const
{
    ENODE_ASSERT(dt != 0.0, "zero stepsize");
    const std::size_t s = tableau_.stages();
    const auto &a = tableau_.a();
    const auto &b = tableau_.b();
    const auto &c = tableau_.c();

    // Shrink-or-grow to s entries; the Tensor elements that survive keep
    // their buffers and are refilled below via copyFrom/evalInto.
    result.stages.resize(s);
    result.stageInputs.resize(s);
    result.stageTimes.resize(s);

    for (std::size_t j = 0; j < s; j++) {
        // Stage input y_j = y + dt * sum_{l<j} a_{jl} k_l. These are the
        // partial states p_{j,l} of the depth-first formulation, fully
        // accumulated (Fig. 6a).
        Tensor &yj = result.stageInputs[j];
        yj.copyFrom(y);
        for (std::size_t l = 0; l < j; l++) {
            if (a[j][l] != 0.0)
                yj.axpy(static_cast<float>(dt * a[j][l]), result.stages[l]);
        }
        const double tj = t + c[j] * dt;
        if (j == 0 && k1_reuse != nullptr) {
            // FSAL reuse: k1 equals the last stage of the previous
            // accepted step, saving one f evaluation.
            result.stages[0].copyFrom(*k1_reuse);
        } else {
            f.evalInto(tj, yj, result.stages[j]);
        }
        result.stageTimes[j] = tj;
    }

    // y' = y + dt * sum_j b_j k_j.
    result.yNext.copyFrom(y);
    for (std::size_t j = 0; j < s; j++) {
        if (b[j] != 0.0)
            result.yNext.axpy(static_cast<float>(dt * b[j]),
                              result.stages[j]);
    }

    if (tableau_.hasEmbedded()) {
        // e = dt * sum_j (b_j - b*_j) k_j, accumulated from the partial
        // error states e_i as each k_j becomes available (Fig. 6a).
        const auto d = tableau_.errorWeights();
        Tensor &e = result.errorState;
        e.resize(y.shape());
        e.fill(0.0f);
        for (std::size_t j = 0; j < s; j++) {
            if (d[j] != 0.0)
                e.axpy(static_cast<float>(dt * d[j]), result.stages[j]);
        }
        result.errorNorm = e.l2Norm();
    } else {
        result.errorState.reset();
        result.errorNorm = 0.0;
    }
}

Tensor
integrateFixed(OdeFunction &f, const ButcherTableau &tableau,
               const Tensor &y0, double t0, double t1, double dt)
{
    ENODE_ASSERT(dt > 0.0, "integrateFixed needs dt > 0");
    RkStepper stepper(tableau);
    const double direction = t1 >= t0 ? 1.0 : -1.0;
    Tensor y = y0;
    double t = t0;
    StepResult r;
    while (direction * (t1 - t) > 1e-12) {
        const double step_dt =
            direction * std::min(dt, direction * (t1 - t));
        stepper.stepInto(f, t, y, step_dt, nullptr, r);
        // Move-assignment swaps buffers: r.yNext inherits the old state
        // storage and reuses it on the next iteration.
        y = std::move(r.yNext);
        t += step_dt;
    }
    return y;
}

} // namespace enode
