#include "ode/warm_start.h"

#include <cassert>

namespace enode {

WarmStartController::WarmStartController(StepController *inner)
    : inner_(inner)
{
    assert(inner_ != nullptr && "WarmStartController needs an inner "
                                "adaptive controller");
}

void
WarmStartController::beginSolve(const DtSchedule *replay)
{
    if (replay != nullptr && !replay->empty()) {
        // Element-wise copy assignment reuses both the outer and the
        // per-segment capacity, so steady-state arming of a stable
        // workload does not allocate.
        replay_.layers = replay->layers;
        armedReplay_ = true;
        replayActive_ = true;
    } else {
        replay_.clear();
        armedReplay_ = false;
        replayActive_ = false;
    }
    usedSegments_ = 0;
    segment_ = -1;
    pointIdx_ = 0;
    trialFromReplay_ = false;
    replayedPoints_ = 0;
    replayRejected_ = false;
}

void
WarmStartController::harvestRecorded(DtSchedule &out) const
{
    if (out.layers.size() != usedSegments_)
        out.layers.resize(usedSegments_);
    for (std::size_t i = 0; i < usedSegments_; i++)
        out.layers[i] = segments_[i];
}

bool
WarmStartController::replayHasNext() const
{
    return replayActive_ && segment_ >= 0 &&
           static_cast<std::size_t>(segment_) < replay_.layers.size() &&
           pointIdx_ < replay_.layers[static_cast<std::size_t>(segment_)]
                           .size();
}

void
WarmStartController::reset(double initial_dt)
{
    inner_->reset(initial_dt);
    segment_++;
    pointIdx_ = 0;
    trialFromReplay_ = false;
    usedSegments_++;
    if (segments_.size() < usedSegments_)
        segments_.emplace_back();
    else
        segments_[usedSegments_ - 1].clear();
}

double
WarmStartController::initialDt()
{
    if (replayHasNext()) {
        trialFromReplay_ = true;
        return replay_.layers[static_cast<std::size_t>(segment_)]
                             [pointIdx_];
    }
    trialFromReplay_ = false;
    return inner_->initialDt();
}

double
WarmStartController::rejectedDt(double dt, double err_norm, double eps)
{
    if (trialFromReplay_) {
        // A stale schedule: stop replaying for the rest of the solve
        // (later segments are no more trustworthy) and let the inner
        // controller — warm from observing every callback — take over.
        replayActive_ = false;
        replayRejected_ = true;
        trialFromReplay_ = false;
    }
    return inner_->rejectedDt(dt, err_norm, eps);
}

void
WarmStartController::accepted(double dt, double err_norm, double eps,
                              bool first_trial_accepted)
{
    inner_->accepted(dt, err_norm, eps, first_trial_accepted);
    if (usedSegments_ > 0)
        segments_[usedSegments_ - 1].push_back(dt);
    if (trialFromReplay_) {
        replayedPoints_++;
        trialFromReplay_ = false;
    }
    pointIdx_++;
}

} // namespace enode
