#ifndef ENODE_COMMON_FP16_H
#define ENODE_COMMON_FP16_H

/**
 * @file
 * Software IEEE-754 binary16 (half precision).
 *
 * The eNODE prototype computes in FP16 "to support ODE applications"
 * (Sec. VIII). The reference algorithm library computes in float, but the
 * hardware-facing paths (PE array datapath, buffer sizing, DRAM traffic)
 * use this type so that storage footprints and rounding behaviour match a
 * 16-bit datapath. Conversion goes through bit manipulation, with correct
 * handling of subnormals, infinities and NaN; arithmetic is performed by
 * converting to float and rounding the result back, which is exactly the
 * behaviour of an FP16 multiply-accumulate unit with FP32 conversion at
 * the boundaries.
 */

#include <cstddef>
#include <cstdint>

namespace enode {

/** IEEE binary16 value held as its raw 16-bit pattern. */
class Fp16
{
  public:
    /** Zero-initialized half. */
    constexpr Fp16() : bits_(0) {}

    /** Round a float to the nearest representable half (ties-to-even). */
    explicit Fp16(float value) : bits_(fromFloat(value)) {}

    /** Reinterpret a raw bit pattern as a half. */
    static constexpr Fp16
    fromBits(std::uint16_t bits)
    {
        Fp16 h;
        h.bits_ = bits;
        return h;
    }

    /** Widen to float, exactly (every half is representable in float). */
    float toFloat() const { return toFloatImpl(bits_); }

    /** Raw storage, e.g. for byte-accurate buffer models. */
    std::uint16_t bits() const { return bits_; }

    /** True for either signed zero. */
    bool isZero() const { return (bits_ & 0x7fff) == 0; }

    /** True for +/- infinity. */
    bool isInf() const { return (bits_ & 0x7fff) == 0x7c00; }

    /** True for any NaN pattern. */
    bool isNaN() const { return (bits_ & 0x7fff) > 0x7c00; }

    /** True for nonzero values below the normal range. */
    bool
    isSubnormal() const
    {
        return (bits_ & 0x7c00) == 0 && (bits_ & 0x03ff) != 0;
    }

    Fp16 operator+(Fp16 o) const { return Fp16(toFloat() + o.toFloat()); }
    Fp16 operator-(Fp16 o) const { return Fp16(toFloat() - o.toFloat()); }
    Fp16 operator*(Fp16 o) const { return Fp16(toFloat() * o.toFloat()); }
    Fp16 operator/(Fp16 o) const { return Fp16(toFloat() / o.toFloat()); }
    Fp16 operator-() const { return fromBits(bits_ ^ 0x8000); }

    Fp16 &operator+=(Fp16 o) { return *this = *this + o; }
    Fp16 &operator-=(Fp16 o) { return *this = *this - o; }
    Fp16 &operator*=(Fp16 o) { return *this = *this * o; }
    Fp16 &operator/=(Fp16 o) { return *this = *this / o; }

    /** Bit equality except both zeros compare equal; NaN != NaN. */
    bool
    operator==(Fp16 o) const
    {
        if (isNaN() || o.isNaN())
            return false;
        if (isZero() && o.isZero())
            return true;
        return bits_ == o.bits_;
    }

    bool operator!=(Fp16 o) const { return !(*this == o); }
    bool operator<(Fp16 o) const { return toFloat() < o.toFloat(); }
    bool operator<=(Fp16 o) const { return toFloat() <= o.toFloat(); }
    bool operator>(Fp16 o) const { return toFloat() > o.toFloat(); }
    bool operator>=(Fp16 o) const { return toFloat() >= o.toFloat(); }

    /** Largest finite half: 65504. */
    static Fp16 max() { return fromBits(0x7bff); }

    /** Smallest positive normal half: 2^-14. */
    static Fp16 minNormal() { return fromBits(0x0400); }

    /** Smallest positive subnormal half: 2^-24. */
    static Fp16 minSubnormal() { return fromBits(0x0001); }

    /** Machine epsilon for half: 2^-10. */
    static Fp16 epsilon() { return fromBits(0x1400); }

    /** Positive infinity. */
    static Fp16 infinity() { return fromBits(0x7c00); }

    /** A quiet NaN. */
    static Fp16 quietNaN() { return fromBits(0x7e00); }

  private:
    static std::uint16_t fromFloat(float value);
    static float toFloatImpl(std::uint16_t bits);

    std::uint16_t bits_;
};

/**
 * Round a float through half precision and back.
 * Models one pass through a 16-bit datapath register.
 */
inline float
roundToFp16(float value)
{
    return Fp16(value).toFloat();
}

/**
 * Round a whole buffer through half precision in one tight pass.
 *
 * This is the quantization kernel behind Tensor::quantizeFp16 and the
 * FP16 datapath wrapper (Fp16Ode). It dispatches to the active SIMD
 * backend (common/simd.h): F16C on x86, fcvt on aarch64, or a fused
 * scalar fallback that rounds each float pattern in a single pass.
 * Results are bitwise identical across backends for non-NaN input;
 * NaNs stay NaN, payload unspecified on hardware paths.
 */
void quantizeFp16Buffer(float *data, std::size_t n);

/**
 * Encode a span of floats to raw half bits (RNE), the byte-accurate
 * form a 16-bit buffer or DRAM traffic model stores. Same backend
 * dispatch and NaN caveat as quantizeFp16Buffer.
 */
void packFp16Span(std::uint16_t *dst, const float *src, std::size_t n);

/** Widen a span of raw half bits back to floats, exactly. */
void unpackFp16Span(float *dst, const std::uint16_t *src, std::size_t n);

} // namespace enode

#endif // ENODE_COMMON_FP16_H
