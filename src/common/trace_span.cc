#include "common/trace_span.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace enode {

namespace {

std::int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * The calling thread's view of the tracer: which generation it has a
 * ring for, and the sticky thread name applied at registration. Held as
 * a shared_ptr so a ring outlives its thread — the tracer stitches
 * rings of already-joined workers.
 */
struct LocalSlot
{
    std::uint64_t generation = 0; ///< 0 never matches a live generation
    std::shared_ptr<void> ring;   ///< actually Tracer::Ring
    std::string pendingName;
};

LocalSlot &
localSlot()
{
    thread_local LocalSlot slot;
    return slot;
}

/** Minimal JSON string escaping for names we do not control strictly. */
void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << ' ';
            else
                os << c;
        }
    }
    os << '"';
}

/** JSON has no NaN/Inf literals; ship them as strings. */
void
writeJsonNumber(std::ostream &os, double v)
{
    if (std::isfinite(v))
        os << v;
    else if (std::isnan(v))
        os << "\"nan\"";
    else
        os << (v > 0 ? "\"inf\"" : "\"-inf\"");
}

void
writeArgs(std::ostream &os, const TraceEvent &e)
{
    os << "\"args\":{";
    for (std::uint32_t a = 0; a < e.numArgs; a++) {
        if (a > 0)
            os << ',';
        writeJsonString(os, e.args[a].key);
        os << ':';
        writeJsonNumber(os, e.args[a].value);
    }
    os << '}';
}

} // namespace

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::arm(std::size_t ring_capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = std::max<std::size_t>(1, ring_capacity);
    rings_.clear();
    nextTid_ = 0;
    generation_.fetch_add(1, std::memory_order_relaxed);
    epochNs_.store(steadyNowNs(), std::memory_order_relaxed);
    armed_.store(true, std::memory_order_release);
}

void
Tracer::disarm()
{
    // Events stay exportable; the next arm() discards them.
    armed_.store(false, std::memory_order_release);
}

std::int64_t
Tracer::nowNs() const
{
    return steadyNowNs() - epochNs_.load(std::memory_order_relaxed);
}

std::int64_t
Tracer::toNs(std::chrono::steady_clock::time_point tp) const
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               tp.time_since_epoch())
               .count() -
           epochNs_.load(std::memory_order_relaxed);
}

Tracer::Ring *
Tracer::localRing()
{
    LocalSlot &slot = localSlot();
    // Steady state: the cached ring matches the live generation and no
    // lock beyond the ring's own mutex is ever taken.
    if (slot.ring != nullptr &&
        slot.generation == generation_.load(std::memory_order_acquire))
        return static_cast<Ring *>(slot.ring.get());

    std::lock_guard<std::mutex> lock(mutex_);
    if (!armed_.load(std::memory_order_relaxed))
        return nullptr; // disarmed mid-span: drop the event
    // First record of this thread in this generation: register a fresh
    // ring (the only allocation tracing ever performs, once per thread
    // per arming).
    auto ring = std::make_shared<Ring>(capacity_, nextTid_++,
                                       slot.pendingName);
    rings_.push_back(ring);
    slot.generation = generation_.load(std::memory_order_relaxed);
    slot.ring = ring;
    return ring.get();
}

void
Tracer::record(const TraceEvent &event)
{
    Ring *ring = localRing();
    if (ring == nullptr)
        return;
    std::lock_guard<std::mutex> lock(ring->mutex);
    TraceEvent &slot = ring->events[ring->head % ring->events.size()];
    slot = event;
    slot.tid = ring->tid;
    ring->head++;
}

void
Tracer::instant(const char *name, const char *category,
                std::initializer_list<TraceArg> args)
{
    if (!armed())
        return;
    TraceEvent e;
    e.name = name;
    e.category = category;
    e.startNs = nowNs();
    e.durNs = -1;
    for (const TraceArg &a : args) {
        if (e.numArgs >= kMaxTraceArgs)
            break;
        e.args[e.numArgs++] = a;
    }
    record(e);
}

void
Tracer::setThreadName(const std::string &name)
{
    LocalSlot &slot = localSlot();
    slot.pendingName = name;
    std::lock_guard<std::mutex> lock(mutex_);
    if (slot.ring != nullptr &&
        slot.generation == generation_.load(std::memory_order_relaxed)) {
        Ring *ring = static_cast<Ring *>(slot.ring.get());
        std::lock_guard<std::mutex> ring_lock(ring->mutex);
        ring->name = name;
    }
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::vector<std::shared_ptr<Ring>> rings;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        rings = rings_;
    }
    std::vector<TraceEvent> out;
    for (const auto &ring : rings) {
        std::lock_guard<std::mutex> lock(ring->mutex);
        const std::size_t cap = ring->events.size();
        const std::uint64_t n = std::min<std::uint64_t>(ring->head, cap);
        // Oldest surviving event first: the ring holds the newest
        // `cap` events ending at head - 1.
        for (std::uint64_t i = ring->head - n; i < ring->head; i++)
            out.push_back(ring->events[i % cap]);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.startNs != b.startNs)
                             return a.startNs < b.startNs;
                         // Enclosing span first so viewers nest properly.
                         return a.durNs > b.durNs;
                     });
    return out;
}

std::uint64_t
Tracer::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t dropped = 0;
    for (const auto &ring : rings_) {
        std::lock_guard<std::mutex> ring_lock(ring->mutex);
        const std::uint64_t cap = ring->events.size();
        if (ring->head > cap)
            dropped += ring->head - cap;
    }
    return dropped;
}

std::size_t
Tracer::threadCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rings_.size();
}

void
Tracer::exportChromeTrace(std::ostream &os) const
{
    const std::vector<TraceEvent> events = snapshot();
    std::vector<std::pair<std::uint32_t, std::string>> names;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &ring : rings_) {
            std::lock_guard<std::mutex> ring_lock(ring->mutex);
            if (!ring->name.empty())
                names.emplace_back(ring->tid, ring->name);
        }
    }

    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const auto &[tid, name] : names) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
           << tid << ",\"args\":{\"name\":";
        writeJsonString(os, name);
        os << "}}";
    }
    for (const TraceEvent &e : events) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":";
        writeJsonString(os, e.name != nullptr ? e.name : "");
        os << ",\"cat\":";
        writeJsonString(os, e.category != nullptr ? e.category : "");
        // Chrome trace timestamps are microseconds.
        os << ",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":"
           << static_cast<double>(e.startNs) / 1e3;
        if (e.instant()) {
            os << ",\"ph\":\"i\",\"s\":\"t\"";
        } else {
            os << ",\"ph\":\"X\",\"dur\":"
               << static_cast<double>(e.durNs) / 1e3;
        }
        os << ',';
        writeArgs(os, e);
        os << '}';
    }
    os << "]}";
}

std::string
Tracer::chromeTraceJson() const
{
    std::ostringstream oss;
    exportChromeTrace(oss);
    return oss.str();
}

} // namespace enode
