#ifndef ENODE_COMMON_FAULT_INJECTION_H
#define ENODE_COMMON_FAULT_INJECTION_H

/**
 * @file
 * Deterministic, seeded fault injection for chaos testing.
 *
 * Production code paths carry named *probes* (a layer-output corruption
 * hook in the embedded-net evaluation, a stall hook in the serving
 * worker, a rejection hook at queue admission). A test or chaos run
 * arms a FaultPlan; each probe then counts its hits and fires the
 * matching faults at exactly the planned hit indices. Everything is
 * derived from the plan (site, hit index, seed), so a fixed plan
 * reproduces the same faults — and hence the same degraded responses —
 * bit for bit.
 *
 * The injector is compiled in always so chaos runs exercise the exact
 * binaries that serve production traffic. When no plan is armed every
 * probe is a single relaxed atomic load — zero cost on the hot path.
 */

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace enode {

/** What an armed fault does at its probe site. */
enum class FaultKind : std::uint8_t
{
    CorruptNaN, ///< overwrite one payload element with a quiet NaN
    CorruptInf, ///< overwrite one payload element with +infinity
    Stall,      ///< sleep the probing thread for stallMs
    Reject,     ///< make a boolean probe report failure (queue-full etc.)
};

/** Human-readable fault kind name. */
const char *faultKindName(FaultKind kind);

/** One planned fault: which site, which hits, what to do. */
struct FaultSpec
{
    /** Probe site name, e.g. "node.feval", "worker.stall", "queue.push". */
    std::string site;

    FaultKind kind = FaultKind::CorruptNaN;

    /** 0-based index of the first matching probe hit that fires. */
    std::uint64_t firstHit = 0;

    /** Consecutive hits that fire (UINT64_MAX = every hit from firstHit). */
    std::uint64_t count = 1;

    /** Sleep duration for FaultKind::Stall. */
    double stallMs = 0.0;
};

/** A full chaos scenario: a seed plus the faults it fires. */
struct FaultPlan
{
    /** Drives the choice of corrupted element per hit (deterministic). */
    std::uint64_t seed = 0;

    std::vector<FaultSpec> faults;
};

/**
 * Process-wide fault injector. Probes live in production code; plans
 * are armed by tests and chaos drivers. Thread-safe: hit counting and
 * fault matching are serialized on an internal mutex, entered only
 * when a plan is armed.
 */
class FaultInjector
{
  public:
    static FaultInjector &instance();

    /** Install a plan and reset all hit counters. */
    void arm(FaultPlan plan);

    /** Remove the plan; every probe reverts to its zero-cost path. */
    void disarm();

    bool
    armed() const
    {
        return armed_.load(std::memory_order_acquire);
    }

    /**
     * Boolean probe (FaultKind::Reject): should this site fail now?
     * Counts one hit per call while armed.
     */
    bool shouldFail(const char *site);

    /**
     * Stall probe (FaultKind::Stall): sleeps when an armed stall fault
     * matches this hit.
     * @return The milliseconds slept (0 when nothing fired).
     */
    double maybeStall(const char *site);

    /**
     * Corruption probe (CorruptNaN / CorruptInf): overwrites one
     * element of the payload, chosen deterministically from the plan
     * seed and the hit index.
     * @return True when the payload was corrupted.
     */
    bool maybeCorrupt(const char *site, float *data, std::size_t n);

    /** Hits recorded at a site since the last arm(). */
    std::uint64_t hits(const char *site) const;

    /** Total faults fired since the last arm(). */
    std::uint64_t fired() const;

  private:
    FaultInjector() = default;

    /** Find the armed spec matching (site, hit, kinds); null if none. */
    const FaultSpec *match(const std::string &site, std::uint64_t hit,
                           std::initializer_list<FaultKind> kinds) const;

    std::atomic<bool> armed_{false};
    mutable std::mutex mutex_;
    FaultPlan plan_;
    std::unordered_map<std::string, std::uint64_t> hits_;
    std::uint64_t fired_ = 0;
};

/** RAII plan installer for tests: arms on construction, disarms on exit. */
class ScopedFaultPlan
{
  public:
    explicit ScopedFaultPlan(FaultPlan plan)
    {
        FaultInjector::instance().arm(std::move(plan));
    }
    ~ScopedFaultPlan() { FaultInjector::instance().disarm(); }

    ScopedFaultPlan(const ScopedFaultPlan &) = delete;
    ScopedFaultPlan &operator=(const ScopedFaultPlan &) = delete;
};

} // namespace enode

#endif // ENODE_COMMON_FAULT_INJECTION_H
