#ifndef ENODE_COMMON_RNG_H
#define ENODE_COMMON_RNG_H

/**
 * @file
 * Seeded random number generation.
 *
 * All stochastic behaviour in the library (weight init, synthetic
 * workloads, noise injection) flows through an explicitly seeded Rng so
 * every experiment is reproducible run-to-run. The generator is
 * xoshiro256** — small, fast and statistically solid, and unlike
 * std::mt19937 its output sequence is identical across standard library
 * implementations.
 */

#include <cstdint>
#include <vector>

namespace enode {

/** Deterministic, explicitly seeded random number generator. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion so nearby seeds decorrelate. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit draw. */
    std::uint64_t nextU64();

    /** Uniform in [0, 1). */
    double uniform();

    /** Uniform in [lo, hi). */
    double uniform(double lo, double hi);

    /** Standard normal via Box-Muller (cached second draw). */
    double normal();

    /** Normal with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t nextBelow(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    int intRange(int lo, int hi);

    /** Fisher-Yates shuffle of an index vector 0..n-1. */
    std::vector<std::size_t> permutation(std::size_t n);

    /** Fork an independent stream (for parallel-safe sub-generators). */
    Rng fork();

  private:
    std::uint64_t state_[4];
    double cachedNormal_;
    bool hasCachedNormal_;
};

} // namespace enode

#endif // ENODE_COMMON_RNG_H
