#ifndef ENODE_COMMON_STATS_H
#define ENODE_COMMON_STATS_H

/**
 * @file
 * Lightweight statistics package.
 *
 * Simulator components and algorithm drivers register named counters and
 * scalar statistics in a StatGroup. Benches query groups to build their
 * report tables; tests assert on individual counters. The design follows
 * the gem5 stats idea at a much smaller scale: stats are plain values
 * owned by their component, and a group only provides naming, iteration
 * and formatted dumps.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace enode {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    void increment(std::uint64_t by = 1) { value_ += by; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean / min / max / count accumulator for scalar samples. */
class Accumulator
{
  public:
    Accumulator() = default;

    /** Record one sample. */
    void add(double sample);

    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    /** Population variance of the recorded samples. */
    double variance() const;
    double stddev() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSquares_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-bin histogram over [lo, hi); out-of-range samples clamp. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double sample);
    void reset();

    std::size_t bins() const { return counts_.size(); }
    std::uint64_t binCount(std::size_t i) const { return counts_.at(i); }
    double binLow(std::size_t i) const;
    std::uint64_t total() const { return total_; }

    /**
     * Approximate q-th percentile (q in [0, 100]) assuming samples are
     * uniform within their bin. Returns 0 when empty.
     */
    double percentile(double q) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * Bounded-memory quantile sample series.
 *
 * Below `capacity` samples every observation is stored, so percentiles
 * are exact rather than binned — the right tool for latency summaries
 * (p50/p95/p99) where tail resolution matters. Beyond the capacity the
 * series switches to reservoir sampling (Vitter's Algorithm R with a
 * fixed-seed splitmix64 stream, so runs are reproducible): storage
 * stays capped while percentiles become estimates over a uniform
 * sample of the whole stream. count(), mean(), min() and max() are
 * maintained as running accumulators and stay exact at any count — a
 * week-long soak or a persistent training service can feed a series
 * forever without growing it. Not internally synchronized; the serving
 * runtime guards its series with the metrics-registry mutex.
 */
class SampleSeries
{
  public:
    /** Default cap: exact percentiles for the first 64K samples. */
    static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

    explicit SampleSeries(std::size_t capacity = kDefaultCapacity);

    void add(double sample);
    void reset();

    /** Total samples observed (exact; not bounded by the capacity). */
    std::uint64_t count() const { return count_; }
    double mean() const;
    double min() const;
    double max() const;

    /** Samples currently held; never exceeds the capacity. */
    std::size_t stored() const { return samples_.size(); }
    std::size_t capacity() const { return capacity_; }

    /**
     * q-th percentile (q in [0, 100]) with linear interpolation
     * between order statistics. Exact while count() <= capacity();
     * a reservoir estimate beyond. Returns 0 when empty.
     */
    double percentile(double q) const;

  private:
    void ensureSorted() const;

    const std::size_t capacity_;
    // Exact running accumulators, independent of the reservoir.
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    /** splitmix64 state for reservoir replacement (fixed seed). */
    std::uint64_t rng_;
    // Sorted lazily on first quantile query after an insertion.
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * A named collection of scalar statistics.
 *
 * Components own their numeric stats and publish them by name; the group
 * stores name -> value snapshots on dump. Hierarchical names use '.' as
 * the separator (e.g. "core0.peArray.macs").
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "");

    /** Record (or overwrite) a named scalar. */
    void set(const std::string &key, double value);

    /** Add to a named scalar, creating it at zero if absent. */
    void add(const std::string &key, double value);

    /** Look up a scalar; fatal if missing. */
    double get(const std::string &key) const;

    /** True if the key exists. */
    bool has(const std::string &key) const;

    /** All keys in sorted order. */
    std::vector<std::string> keys() const;

    /** Multi-line "name = value" dump. */
    std::string dump() const;

    const std::string &name() const { return name_; }

    void clear() { values_.clear(); }

  private:
    std::string name_;
    std::map<std::string, double> values_;
};

} // namespace enode

#endif // ENODE_COMMON_STATS_H
