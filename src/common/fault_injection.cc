#include "common/fault_injection.h"

#include <chrono>
#include <limits>
#include <thread>

#include "common/logging.h"

namespace enode {

namespace {

/** splitmix64: cheap, well-mixed hash for deterministic index choice. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::CorruptNaN:
        return "corrupt-nan";
      case FaultKind::CorruptInf:
        return "corrupt-inf";
      case FaultKind::Stall:
        return "stall";
      case FaultKind::Reject:
        return "reject";
    }
    ENODE_PANIC("unknown FaultKind");
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::arm(FaultPlan plan)
{
    std::lock_guard<std::mutex> lock(mutex_);
    plan_ = std::move(plan);
    hits_.clear();
    fired_ = 0;
    armed_.store(!plan_.faults.empty(), std::memory_order_release);
}

void
FaultInjector::disarm()
{
    std::lock_guard<std::mutex> lock(mutex_);
    armed_.store(false, std::memory_order_release);
    plan_ = FaultPlan{};
    hits_.clear();
}

const FaultSpec *
FaultInjector::match(const std::string &site, std::uint64_t hit,
                     std::initializer_list<FaultKind> kinds) const
{
    for (const FaultSpec &spec : plan_.faults) {
        if (spec.site != site)
            continue;
        bool kind_ok = false;
        for (FaultKind k : kinds)
            kind_ok = kind_ok || spec.kind == k;
        if (!kind_ok)
            continue;
        if (hit < spec.firstHit)
            continue;
        const std::uint64_t offset = hit - spec.firstHit;
        if (spec.count != std::numeric_limits<std::uint64_t>::max() &&
            offset >= spec.count)
            continue;
        return &spec;
    }
    return nullptr;
}

bool
FaultInjector::shouldFail(const char *site)
{
    if (!armed_.load(std::memory_order_acquire))
        return false;
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t hit = hits_[site]++;
    const FaultSpec *spec = match(site, hit, {FaultKind::Reject});
    if (spec == nullptr)
        return false;
    fired_++;
    return true;
}

double
FaultInjector::maybeStall(const char *site)
{
    if (!armed_.load(std::memory_order_acquire))
        return 0.0;
    double stall_ms = 0.0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const std::uint64_t hit = hits_[site]++;
        const FaultSpec *spec = match(site, hit, {FaultKind::Stall});
        if (spec == nullptr)
            return 0.0;
        fired_++;
        stall_ms = spec->stallMs;
    }
    // Sleep outside the lock so concurrent probes are not serialized
    // behind a stalled thread.
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(stall_ms));
    return stall_ms;
}

bool
FaultInjector::maybeCorrupt(const char *site, float *data, std::size_t n)
{
    if (!armed_.load(std::memory_order_acquire))
        return false;
    if (data == nullptr || n == 0)
        return false;
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t hit = hits_[site]++;
    const FaultSpec *spec =
        match(site, hit, {FaultKind::CorruptNaN, FaultKind::CorruptInf});
    if (spec == nullptr)
        return false;
    fired_++;
    const std::size_t index =
        static_cast<std::size_t>(mix64(plan_.seed ^ mix64(hit)) % n);
    data[index] = spec->kind == FaultKind::CorruptNaN
                      ? std::numeric_limits<float>::quiet_NaN()
                      : std::numeric_limits<float>::infinity();
    return true;
}

std::uint64_t
FaultInjector::hits(const char *site) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = hits_.find(site);
    return it == hits_.end() ? 0 : it->second;
}

std::uint64_t
FaultInjector::fired() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return fired_;
}

} // namespace enode
