#include "common/simd.h"

#include <atomic>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "common/simd_internal.h"

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

namespace enode {

// ---------------------------------------------------------------------------
// Scalar backend: the always-compiled equivalence oracle. This TU is built
// with -ffp-contract=off and auto-vectorization disabled, so "scalar" means
// scalar — one rounded operation per source-level operation — and stays a
// stable baseline for the per-backend speedup sweep regardless of -march.
// ---------------------------------------------------------------------------

namespace {

struct VecF
{
    static constexpr std::size_t kWidth = 1;
    float v;

    static VecF load(const float *p) { return {*p}; }
    void store(float *p) const { *p = v; }
    static VecF broadcast(float x) { return {x}; }
    VecF add(VecF o) const { return {v + o.v}; }
    VecF mul(VecF o) const { return {v * o.v}; }
};

struct VecD
{
    static constexpr std::size_t kWidth = 1;
    double v;

    static VecD zero() { return {0.0}; }
    static void
    widen8(const float *p, VecD out[8])
    {
        for (std::size_t j = 0; j < 8; j++)
            out[j] = {static_cast<double>(p[j])};
    }
    VecD add(VecD o) const { return {v + o.v}; }
    VecD mul(VecD o) const { return {v * o.v}; }
    void store(double *p) const { *p = v; }
};

#define ENODE_SIMD_BACKEND_ENUM SimdBackend::Scalar
#define ENODE_SIMD_BACKEND_NAME "scalar"
#include "common/simd_kernels.inc"
#undef ENODE_SIMD_BACKEND_ENUM
#undef ENODE_SIMD_BACKEND_NAME

bool
allFiniteImpl(const float *x, std::size_t n)
{
    // Exponent-bits screen: finite iff the exponent field is not all
    // ones. Accumulating with & keeps the loop branch-free; the kernel
    // is exact, so every backend agrees on every input.
    std::uint32_t ok = 1;
    for (std::size_t i = 0; i < n; i++)
        ok &= static_cast<std::uint32_t>(
            simd_detail::finiteBits(simd_detail::f32Bits(x[i])));
    return ok != 0;
}

void
quantizeFp16Impl(float *data, std::size_t n)
{
    for (std::size_t i = 0; i < n; i++)
        data[i] = simd_detail::halfRoundTrip(data[i]);
}

void
packFp16Impl(std::uint16_t *dst, const float *src, std::size_t n)
{
    for (std::size_t i = 0; i < n; i++)
        dst[i] = simd_detail::halfBitsFromFloat(src[i]);
}

void
unpackFp16Impl(float *dst, const std::uint16_t *src, std::size_t n)
{
    for (std::size_t i = 0; i < n; i++)
        dst[i] = simd_detail::halfToFloat(src[i]);
}

// ---------------------------------------------------------------------------
// Probe + dispatch.
// ---------------------------------------------------------------------------

/** Table for a backend compiled into this binary, else nullptr. */
const SimdOps *
tableFor(SimdBackend backend)
{
    switch (backend) {
    case SimdBackend::Scalar:
        return &kOps;
    case SimdBackend::Neon:
        return simdOpsNeon();
    case SimdBackend::Avx2:
        return simdOpsAvx2();
    case SimdBackend::Avx512:
        return simdOpsAvx512();
    }
    return nullptr;
}

/** Does the machine we are running on implement the backend's ISA? */
bool
cpuSupportsBackend(SimdBackend backend)
{
    switch (backend) {
    case SimdBackend::Scalar:
        return true;
    case SimdBackend::Avx2:
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
        // The probe runs cpuid once under the hood; FMA and F16C ship
        // together with AVX2 on every real core, but check anyway since
        // the backend TU assumes all three.
        return __builtin_cpu_supports("avx2") &&
               __builtin_cpu_supports("fma") &&
               __builtin_cpu_supports("f16c");
#else
        return false;
#endif
    case SimdBackend::Avx512:
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
        return __builtin_cpu_supports("avx512f");
#else
        return false;
#endif
    case SimdBackend::Neon:
#if defined(__aarch64__) && defined(__linux__)
        return (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#elif defined(__aarch64__)
        return true; // Advanced SIMD is baseline on every aarch64 core.
#else
        return false;
#endif
    }
    return false;
}

/**
 * Pick the startup backend: honor ENODE_SIMD when it names a usable
 * backend (warn and fall through otherwise), else the widest ISA this
 * CPU supports. avx512 > avx2 > neon > scalar.
 */
const SimdOps *
probeDefault()
{
    if (const char *env = std::getenv("ENODE_SIMD")) {
        const auto requested = parseSimdBackendName(env);
        if (!requested) {
            ENODE_WARN("ENODE_SIMD=", env,
                       " is not a backend name "
                       "(scalar|avx2|avx512|neon); using the probe default");
        } else if (!simdBackendSupported(*requested)) {
            ENODE_WARN("ENODE_SIMD=", env,
                       " is not usable on this machine "
                       "(not compiled in, or missing CPU features); "
                       "using the probe default");
        } else {
            return tableFor(*requested);
        }
    }
    for (SimdBackend backend :
         {SimdBackend::Avx512, SimdBackend::Avx2, SimdBackend::Neon}) {
        if (simdBackendSupported(backend))
            return tableFor(backend);
    }
    return &kOps;
}

/** Active table; null until the first simdOps() call runs the probe. */
std::atomic<const SimdOps *> g_activeOps{nullptr};

} // namespace

const char *
simdBackendName(SimdBackend backend)
{
    switch (backend) {
    case SimdBackend::Scalar:
        return "scalar";
    case SimdBackend::Neon:
        return "neon";
    case SimdBackend::Avx2:
        return "avx2";
    case SimdBackend::Avx512:
        return "avx512";
    }
    return "unknown";
}

std::optional<SimdBackend>
parseSimdBackendName(std::string_view name)
{
    std::string lower(name);
    for (char &c : lower)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    for (SimdBackend backend :
         {SimdBackend::Scalar, SimdBackend::Neon, SimdBackend::Avx2,
          SimdBackend::Avx512}) {
        if (lower == simdBackendName(backend))
            return backend;
    }
    return std::nullopt;
}

bool
simdBackendCompiled(SimdBackend backend)
{
    return tableFor(backend) != nullptr;
}

bool
simdBackendSupported(SimdBackend backend)
{
    return simdBackendCompiled(backend) && cpuSupportsBackend(backend);
}

std::vector<SimdBackend>
availableSimdBackends()
{
    std::vector<SimdBackend> out;
    for (SimdBackend backend :
         {SimdBackend::Scalar, SimdBackend::Neon, SimdBackend::Avx2,
          SimdBackend::Avx512}) {
        if (simdBackendSupported(backend))
            out.push_back(backend);
    }
    return out;
}

const SimdOps &
simdOps()
{
    const SimdOps *table = g_activeOps.load(std::memory_order_acquire);
    if (table == nullptr) {
        // A racing first call is benign: both sides compute the same
        // default and the CAS keeps whichever landed first.
        const SimdOps *probed = probeDefault();
        const SimdOps *expected = nullptr;
        if (g_activeOps.compare_exchange_strong(expected, probed,
                                                std::memory_order_acq_rel))
            table = probed;
        else
            table = expected;
    }
    return *table;
}

SimdBackend
activeSimdBackend()
{
    return simdOps().backend;
}

bool
setSimdBackend(SimdBackend backend)
{
    if (!simdBackendSupported(backend))
        return false;
    g_activeOps.store(tableFor(backend), std::memory_order_release);
    return true;
}

void
resetSimdBackend()
{
    g_activeOps.store(probeDefault(), std::memory_order_release);
}

} // namespace enode
