#include "common/fp16.h"

#include <cmath>
#include <cstring>

#include "common/simd.h"

namespace enode {

namespace {

/** Bit-copy a float into a uint32 without violating aliasing rules. */
std::uint32_t
floatBits(float value)
{
    std::uint32_t u;
    std::memcpy(&u, &value, sizeof(u));
    return u;
}

/** Bit-copy a uint32 into a float. */
float
bitsFloat(std::uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

} // namespace

std::uint16_t
Fp16::fromFloat(float value)
{
    const std::uint32_t f = floatBits(value);
    const std::uint32_t sign = (f >> 16) & 0x8000;
    const std::uint32_t abs = f & 0x7fffffff;

    // NaN: keep a quiet NaN and preserve a payload bit so it stays NaN.
    if (abs > 0x7f800000)
        return static_cast<std::uint16_t>(sign | 0x7e00);

    // Overflow (including float infinity) saturates to half infinity.
    // 0x47800000 is 65536.0f, the first value that rounds beyond 65504.
    if (abs >= 0x47800000)
        return static_cast<std::uint16_t>(sign | 0x7c00);

    // Normal range for half: exponent >= -14, i.e. abs >= 2^-14.
    if (abs >= 0x38800000) {
        // Rebias exponent from 127 to 15 and round-to-nearest-even on the
        // 13 bits dropped from the mantissa.
        const std::uint32_t mant = abs - 0x38000000;
        std::uint32_t half = mant >> 13;
        const std::uint32_t rem = mant & 0x1fff;
        if (rem > 0x1000 || (rem == 0x1000 && (half & 1)))
            half++;
        return static_cast<std::uint16_t>(sign | half);
    }

    // Subnormal half range: 2^-24 <= |x| < 2^-14. The target mantissa is
    // round(|x| * 2^24) = round(M * 2^(E - 126)) for the 24-bit mantissa
    // M (implicit bit restored) and biased float exponent E.
    if (abs >= 0x33000000) {
        const int shift = 126 - static_cast<int>(abs >> 23); // in [1, 24]
        const std::uint32_t mant = (abs & 0x007fffff) | 0x00800000;
        std::uint32_t half = mant >> shift;
        const std::uint32_t rem = mant & ((1u << shift) - 1);
        const std::uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half & 1)))
            half++;
        return static_cast<std::uint16_t>(sign | half);
    }

    // Underflow to signed zero.
    return static_cast<std::uint16_t>(sign);
}

float
Fp16::toFloatImpl(std::uint16_t bits)
{
    const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000) << 16;
    const std::uint32_t exp = (bits >> 10) & 0x1f;
    const std::uint32_t mant = bits & 0x03ff;

    if (exp == 0x1f) {
        // Inf / NaN: widen with the float max exponent.
        return bitsFloat(sign | 0x7f800000 | (mant << 13));
    }
    if (exp == 0) {
        if (mant == 0)
            return bitsFloat(sign); // signed zero
        // Subnormal half: value = mant * 2^-24; normalize via float math,
        // which is exact because the mantissa fits easily.
        const float magnitude =
            std::ldexp(static_cast<float>(mant), -24);
        return sign ? -magnitude : magnitude;
    }
    // Normal half: rebias exponent from 15 to 127.
    return bitsFloat(sign | ((exp + 112) << 23) | (mant << 13));
}

void
quantizeFp16Buffer(float *data, std::size_t n)
{
    // Dispatched to the active SIMD backend: F16C / AVX-512 / NEON
    // hardware converters where available, and a fused scalar fallback
    // that rounds the float pattern in one pass rather than encoding to
    // half and decoding back per element.
    simdOps().quantizeFp16(data, n);
}

void
packFp16Span(std::uint16_t *dst, const float *src, std::size_t n)
{
    simdOps().packFp16(dst, src, n);
}

void
unpackFp16Span(float *dst, const std::uint16_t *src, std::size_t n)
{
    simdOps().unpackFp16(dst, src, n);
}

} // namespace enode
