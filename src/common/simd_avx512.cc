#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/simd.h"
#include "common/simd_internal.h"

/**
 * @file
 * AVX-512 x86 backend (512-bit f32 lanes).
 *
 * Compiled with -mavx512f -ffp-contract=off on x86 builds; nullptr stub
 * elsewhere. Only AVX512F intrinsics are used (the fixed 16-lane dot
 * maps onto exactly one zmm accumulator, the 8-double norm onto one
 * zmm), and the probe requires only avx512f.
 */

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX512F__)
#define ENODE_SIMD_BUILD_AVX512 1
#endif

#ifdef ENODE_SIMD_BUILD_AVX512

#include <immintrin.h>

namespace enode {
namespace {

struct VecF
{
    static constexpr std::size_t kWidth = 16;
    __m512 v;

    static VecF load(const float *p) { return {_mm512_loadu_ps(p)}; }
    void store(float *p) const { _mm512_storeu_ps(p, v); }
    static VecF broadcast(float x) { return {_mm512_set1_ps(x)}; }
    VecF add(VecF o) const { return {_mm512_add_ps(v, o.v)}; }
    VecF mul(VecF o) const { return {_mm512_mul_ps(v, o.v)}; }
};

struct VecD
{
    static constexpr std::size_t kWidth = 8;
    __m512d v;

    static VecD zero() { return {_mm512_setzero_pd()}; }
    static void
    widen8(const float *p, VecD out[1])
    {
        out[0] = {_mm512_cvtps_pd(_mm256_loadu_ps(p))};
    }
    VecD add(VecD o) const { return {_mm512_add_pd(v, o.v)}; }
    VecD mul(VecD o) const { return {_mm512_mul_pd(v, o.v)}; }
    void store(double *p) const { _mm512_storeu_pd(p, v); }
};

#define ENODE_SIMD_BACKEND_ENUM SimdBackend::Avx512
#define ENODE_SIMD_BACKEND_NAME "avx512"
#include "common/simd_kernels.inc"
#undef ENODE_SIMD_BACKEND_ENUM
#undef ENODE_SIMD_BACKEND_NAME

bool
allFiniteImpl(const float *x, std::size_t n)
{
    const __m512i expMask = _mm512_set1_epi32(0x7f800000);
    __mmask16 bad = 0;
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512i bits = _mm512_loadu_si512(x + i);
        bad = static_cast<__mmask16>(
            bad | _mm512_cmpeq_epi32_mask(_mm512_and_epi32(bits, expMask),
                                          expMask));
    }
    if (bad != 0)
        return false;
    for (; i < n; i++) {
        if (!simd_detail::finiteBits(simd_detail::f32Bits(x[i])))
            return false;
    }
    return true;
}

void
quantizeFp16Impl(float *data, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i h = _mm512_cvtps_ph(
            _mm512_loadu_ps(data + i),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        _mm512_storeu_ps(data + i, _mm512_cvtph_ps(h));
    }
    for (; i < n; i++)
        data[i] = simd_detail::halfRoundTrip(data[i]);
}

void
packFp16Impl(std::uint16_t *dst, const float *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i h = _mm512_cvtps_ph(
            _mm512_loadu_ps(src + i),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i), h);
    }
    for (; i < n; i++)
        dst[i] = simd_detail::halfBitsFromFloat(src[i]);
}

void
unpackFp16Impl(float *dst, const std::uint16_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i h = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        _mm512_storeu_ps(dst + i, _mm512_cvtph_ps(h));
    }
    for (; i < n; i++)
        dst[i] = simd_detail::halfToFloat(src[i]);
}

} // namespace

const SimdOps *
simdOpsAvx512()
{
    return &kOps;
}

} // namespace enode

#else // !ENODE_SIMD_BUILD_AVX512

namespace enode {

const SimdOps *
simdOpsAvx512()
{
    return nullptr;
}

} // namespace enode

#endif
