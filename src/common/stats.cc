#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace enode {

void
Accumulator::add(double sample)
{
    if (count_ == 0) {
        min_ = sample;
        max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
    count_++;
    sum_ += sample;
    sumSquares_ += sample * sample;
}

void
Accumulator::reset()
{
    count_ = 0;
    sum_ = 0.0;
    sumSquares_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

double
Accumulator::variance() const
{
    if (count_ == 0)
        return 0.0;
    const double m = mean();
    const double var = sumSquares_ / count_ - m * m;
    return var > 0.0 ? var : 0.0; // clamp tiny negative rounding residue
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    ENODE_ASSERT(hi > lo && bins > 0, "bad histogram bounds");
}

void
Histogram::add(double sample)
{
    const double unit = (sample - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::int64_t>(unit * counts_.size());
    idx = std::clamp<std::int64_t>(idx, 0,
                                   static_cast<std::int64_t>(counts_.size()) - 1);
    counts_[static_cast<std::size_t>(idx)]++;
    total_++;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

double
Histogram::binLow(std::size_t i) const
{
    ENODE_ASSERT(i < counts_.size(), "histogram bin out of range");
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
}

double
Histogram::percentile(double q) const
{
    ENODE_ASSERT(q >= 0.0 && q <= 100.0, "percentile out of range");
    if (total_ == 0)
        return 0.0;
    const double target = q / 100.0 * static_cast<double>(total_);
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    std::uint64_t below = 0;
    std::size_t last_nonempty = 0;
    for (std::size_t i = 0; i < counts_.size(); i++) {
        const std::uint64_t in_bin = counts_[i];
        if (in_bin == 0)
            continue;
        last_nonempty = i;
        if (static_cast<double>(below + in_bin) >= target) {
            // Interpolate uniformly within the bin. q = 0 lands here
            // with frac 0 (low edge of the first occupied bin);
            // q = 100 with frac 1 (high edge of the last).
            const double frac = (target - static_cast<double>(below)) /
                                static_cast<double>(in_bin);
            return binLow(i) + width * std::clamp(frac, 0.0, 1.0);
        }
        below += in_bin;
    }
    // Rounding pushed target past the final cumulative count. Answer
    // with the top of the *occupied* range — returning hi_ here would
    // jump past trailing empty bins and break monotonicity in q.
    return binLow(last_nonempty) + width;
}

namespace {

/** splitmix64 step: deterministic stream for reservoir replacement. */
std::uint64_t
splitmixNext(std::uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

SampleSeries::SampleSeries(std::size_t capacity)
    : capacity_(capacity), rng_(0x5eed5e121e5u)
{
    ENODE_ASSERT(capacity_ >= 1, "SampleSeries capacity must be >= 1");
}

void
SampleSeries::add(double sample)
{
    if (count_ == 0) {
        min_ = sample;
        max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
    count_++;
    sum_ += sample;

    if (samples_.size() < capacity_) {
        samples_.push_back(sample);
        sorted_ = false;
        return;
    }
    // Algorithm R: keep each of the count_ samples seen so far in the
    // reservoir with probability capacity / count_. The replacement
    // index comes from a fixed-seed stream so runs are reproducible.
    const std::uint64_t j = splitmixNext(rng_) % count_;
    if (j < capacity_) {
        samples_[static_cast<std::size_t>(j)] = sample;
        sorted_ = false;
    }
}

void
SampleSeries::reset()
{
    samples_.clear();
    sorted_ = true;
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    rng_ = 0x5eed5e121e5u;
}

void
SampleSeries::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
SampleSeries::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
SampleSeries::min() const
{
    return count_ ? min_ : 0.0;
}

double
SampleSeries::max() const
{
    return count_ ? max_ : 0.0;
}

double
SampleSeries::percentile(double q) const
{
    ENODE_ASSERT(q >= 0.0 && q <= 100.0, "percentile out of range");
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    if (samples_.size() == 1)
        return samples_.front();
    // Linear interpolation between closest order statistics
    // (the "exclusive" definition degenerates at the ends; use the
    // standard inclusive rank r = q/100 * (n - 1)).
    const double rank =
        q / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo_idx = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo_idx);
    if (lo_idx + 1 >= samples_.size())
        return samples_.back();
    return samples_[lo_idx] +
           frac * (samples_[lo_idx + 1] - samples_[lo_idx]);
}

StatGroup::StatGroup(std::string name) : name_(std::move(name)) {}

void
StatGroup::set(const std::string &key, double value)
{
    values_[key] = value;
}

void
StatGroup::add(const std::string &key, double value)
{
    values_[key] += value;
}

double
StatGroup::get(const std::string &key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        ENODE_FATAL("unknown stat '", key, "' in group '", name_, "'");
    return it->second;
}

bool
StatGroup::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::vector<std::string>
StatGroup::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &kv : values_)
        out.push_back(kv.first);
    return out;
}

std::string
StatGroup::dump() const
{
    std::ostringstream oss;
    for (const auto &kv : values_) {
        if (!name_.empty())
            oss << name_ << ".";
        oss << kv.first << " = " << kv.second << "\n";
    }
    return oss.str();
}

} // namespace enode
