#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/simd.h"
#include "common/simd_internal.h"

/**
 * @file
 * AVX2-class x86 backend (256-bit f32 lanes, F16C half conversion).
 *
 * This file is compiled with -mavx2 -mfma -mf16c -ffp-contract=off on
 * x86 builds (see src/common/CMakeLists.txt) and reduces to a nullptr
 * stub elsewhere. The dispatcher only publishes the table after the
 * cpuid probe confirms all three features, so no vector instruction
 * executes on a machine that lacks them. No FMA intrinsic is used —
 * per-op rounding is the cross-backend bitwise contract — but -mfma
 * matches the probe so the flag set and the feature check agree.
 */

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX2__) && \
    defined(__FMA__) && defined(__F16C__)
#define ENODE_SIMD_BUILD_AVX2 1
#endif

#ifdef ENODE_SIMD_BUILD_AVX2

#include <immintrin.h>

namespace enode {
namespace {

struct VecF
{
    static constexpr std::size_t kWidth = 8;
    __m256 v;

    static VecF load(const float *p) { return {_mm256_loadu_ps(p)}; }
    void store(float *p) const { _mm256_storeu_ps(p, v); }
    static VecF broadcast(float x) { return {_mm256_set1_ps(x)}; }
    VecF add(VecF o) const { return {_mm256_add_ps(v, o.v)}; }
    VecF mul(VecF o) const { return {_mm256_mul_ps(v, o.v)}; }
};

struct VecD
{
    static constexpr std::size_t kWidth = 4;
    __m256d v;

    static VecD zero() { return {_mm256_setzero_pd()}; }
    static void
    widen8(const float *p, VecD out[2])
    {
        out[0] = {_mm256_cvtps_pd(_mm_loadu_ps(p))};
        out[1] = {_mm256_cvtps_pd(_mm_loadu_ps(p + 4))};
    }
    VecD add(VecD o) const { return {_mm256_add_pd(v, o.v)}; }
    VecD mul(VecD o) const { return {_mm256_mul_pd(v, o.v)}; }
    void store(double *p) const { _mm256_storeu_pd(p, v); }
};

#define ENODE_SIMD_BACKEND_ENUM SimdBackend::Avx2
#define ENODE_SIMD_BACKEND_NAME "avx2"
#include "common/simd_kernels.inc"
#undef ENODE_SIMD_BACKEND_ENUM
#undef ENODE_SIMD_BACKEND_NAME

bool
allFiniteImpl(const float *x, std::size_t n)
{
    const __m256i expMask = _mm256_set1_epi32(0x7f800000);
    __m256i bad = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i bits = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(x + i));
        bad = _mm256_or_si256(
            bad,
            _mm256_cmpeq_epi32(_mm256_and_si256(bits, expMask), expMask));
    }
    if (!_mm256_testz_si256(bad, bad))
        return false;
    for (; i < n; i++) {
        if (!simd_detail::finiteBits(simd_detail::f32Bits(x[i])))
            return false;
    }
    return true;
}

void
quantizeFp16Impl(float *data, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i h = _mm256_cvtps_ph(
            _mm256_loadu_ps(data + i),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        _mm256_storeu_ps(data + i, _mm256_cvtph_ps(h));
    }
    for (; i < n; i++)
        data[i] = simd_detail::halfRoundTrip(data[i]);
}

void
packFp16Impl(std::uint16_t *dst, const float *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i h = _mm256_cvtps_ph(
            _mm256_loadu_ps(src + i),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i), h);
    }
    for (; i < n; i++)
        dst[i] = simd_detail::halfBitsFromFloat(src[i]);
}

void
unpackFp16Impl(float *dst, const std::uint16_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i h = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
    }
    for (; i < n; i++)
        dst[i] = simd_detail::halfToFloat(src[i]);
}

} // namespace

const SimdOps *
simdOpsAvx2()
{
    return &kOps;
}

} // namespace enode

#else // !ENODE_SIMD_BUILD_AVX2

namespace enode {

const SimdOps *
simdOpsAvx2()
{
    return nullptr;
}

} // namespace enode

#endif
