#ifndef ENODE_COMMON_TABLE_H
#define ENODE_COMMON_TABLE_H

/**
 * @file
 * ASCII table formatter used by the benchmark harness.
 *
 * Every bench binary reproduces one table or figure from the paper by
 * printing rows/series in a fixed-width table, so runs are directly
 * comparable to the published numbers. The formatter sizes columns to
 * their widest cell and right-aligns numeric-looking cells.
 */

#include <string>
#include <vector>

namespace enode {

/** Builder for a fixed-width ASCII table with a title and header row. */
class Table
{
  public:
    explicit Table(std::string title);

    /** Set the column headers; defines the column count. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Insert a horizontal separator before the next row. */
    void addSeparator();

    /** Render the full table. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Format helpers for common cell types. */
    static std::string num(double value, int precision = 3);
    static std::string integer(long long value);
    static std::string percent(double fraction, int precision = 1);
    /** "3.1x" style speedup/ratio cell. */
    static std::string ratio(double value, int precision = 2);

  private:
    std::string title_;
    std::vector<std::string> header_;
    // Separator rows are encoded as empty vectors.
    std::vector<std::vector<std::string>> rows_;
};

} // namespace enode

#endif // ENODE_COMMON_TABLE_H
