#ifndef ENODE_COMMON_TASK_POOL_H
#define ENODE_COMMON_TASK_POOL_H

/**
 * @file
 * Persistent intra-op worker pool: the software "core ring".
 *
 * The paper's throughput comes from a ring of NN cores evaluating one f
 * cooperatively — each core holds the weights it needs and row tiles of
 * work flow between them (Sec. V, Fig. 8-9). The software analogue is a
 * small pool of persistent worker threads splitting one kernel's
 * iteration space. TaskPool provides exactly that:
 *
 *  - Workers are spawned once (lazily, on the first parallel call) and
 *    park on a condition variable between calls — no per-call thread
 *    spawn, so even sub-millisecond kernels can be split profitably.
 *  - parallelFor() uses *static partitioning*: the chunk boundaries are
 *    a pure function of (range, grain, width), never of timing. The
 *    kernels built on it produce bitwise identical results at every
 *    thread count because each output element's accumulation order is
 *    contained entirely within one chunk.
 *  - Chunks are assigned to specific workers round-robin with a
 *    per-call rotating offset, so (a) concurrent callers spread over
 *    the ring instead of piling onto worker 0 and (b) every worker
 *    executes every kernel's chunk shape within a handful of calls,
 *    which lets each worker's thread-local Workspace arena warm up to a
 *    closed working set (the zero-allocation property survives
 *    parallelism).
 *
 * The pool is shared, not per-caller: a serving runtime with W request
 * workers at intra-op width T needs one pool of W*(T-1) threads, and
 * total running threads stay bounded by W + poolThreads regardless of
 * how calls interleave (see runtime/inference_server.h for the
 * oversubscription clamp).
 *
 * Kernels do not take a pool parameter. They call intraOpParallelFor(),
 * which consults a thread-local execution scope installed with
 * IntraOpScope; without a scope the call runs inline on the caller —
 * the serial path, byte for byte the PR 2 kernels.
 */

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace enode {

/** Persistent pool of parking worker threads with static-partition
 *  parallelFor. Thread-safe: any number of threads may call
 *  parallelFor concurrently on one pool. */
class TaskPool
{
  public:
    /** A chunk body: processes items [begin, end) of the range. */
    using ChunkFn = std::function<void(std::size_t begin, std::size_t end)>;

    /**
     * @param workers Extra worker threads beyond the caller. 0 is valid
     *        (every parallelFor runs inline). Threads are not spawned
     *        until the first parallel call needs them.
     */
    explicit TaskPool(std::size_t workers);

    /** Joins the ring (waits for in-flight chunks to finish). */
    ~TaskPool();

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    /**
     * Split [0, range) into contiguous chunks of at least `grain` items
     * and run `fn` over every chunk, the caller executing chunk 0 and
     * the pool workers the rest; returns when all chunks are done.
     *
     * Partitioning is static: ways = min(maxWays, workers + 1,
     * range / grain) chunks in a balanced contiguous split (the first
     * range % ways chunks get one extra item) — a pure function of
     * (range, grain, ways), independent of scheduling. With ways <= 1
     * (or when called from inside a pool worker — nested parallelism
     * degenerates) fn(0, range) runs inline on the caller.
     *
     * @param grain Minimum items per chunk (>= 1).
     * @param range Total item count; fn covers [0, range) exactly once.
     * @param fn Chunk body. Runs concurrently on distinct chunks; must
     *        not touch shared mutable state across chunk boundaries.
     * @param maxWays Cap on the number of chunks (0 = workers + 1); the
     *        intra-op width knob.
     */
    void parallelFor(std::size_t grain, std::size_t range,
                     const ChunkFn &fn, std::size_t maxWays = 0);

    /**
     * Run `fn` once on every pool worker thread (not the caller),
     * serialized per worker; returns when all have run. Used by tests
     * and benches to reset/collect each worker's thread-local Workspace
     * stats. Spawns the workers if the pool is still parked.
     */
    void runOnWorkers(const std::function<void()> &fn);

    /** Extra worker threads this pool owns (0 = always inline). */
    std::size_t workerCount() const { return workerTarget_; }

    /** Widest split parallelFor can produce (workers + caller). */
    std::size_t width() const { return workerTarget_ + 1; }

    /** True when the calling thread is one of this process's pool
     *  workers (any pool). Nested parallelFor calls detect this and
     *  run inline. */
    static bool onWorkerThread();

    /**
     * The process-wide shared pool, hardware-sized by default
     * (hardware_concurrency - 1 workers). Never destroyed before
     * thread-local Workspace arenas of the main thread.
     */
    static TaskPool &global();

  private:
    /** One parallelFor invocation in flight. */
    struct Batch
    {
        const ChunkFn *fn = nullptr;
        std::size_t range = 0;
        std::size_t ways = 0;
        std::size_t done = 0; ///< worker chunks finished (pool mutex)
        std::condition_variable cv; ///< caller waits for done == ways - 1
    };

    /** A unit of queued work: one chunk of one batch. */
    struct Job
    {
        Batch *batch = nullptr;
        std::size_t chunk = 0;
        const std::function<void()> *plain = nullptr; ///< runOnWorkers
        std::size_t *plainDone = nullptr;
        std::condition_variable *plainCv = nullptr;
    };

    void ensureStarted();
    void workerMain(std::size_t worker_id);
    static void runChunk(const Batch &batch, std::size_t chunk);

    const std::size_t workerTarget_;
    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::vector<std::thread> threads_;      ///< spawned lazily
    std::vector<std::deque<Job>> mailbox_;  ///< per-worker job queues
    std::size_t nextOffset_ = 0; ///< rotating chunk->worker offset
    bool started_ = false;
    bool shutdown_ = false;
};

/**
 * Scoped intra-op execution context: while alive on this thread, the
 * conv kernels (and anything else calling intraOpParallelFor) split
 * their work `width` ways on `pool`. Serving workers install one scope
 * for their whole lifetime; width 1 or a null pool means serial.
 */
class IntraOpScope
{
  public:
    IntraOpScope(TaskPool *pool, std::size_t width);
    ~IntraOpScope();

    IntraOpScope(const IntraOpScope &) = delete;
    IntraOpScope &operator=(const IntraOpScope &) = delete;

    /** The calling thread's current pool (null = serial). */
    static TaskPool *currentPool();
    /** The calling thread's current width (1 = serial). */
    static std::size_t currentWidth();

  private:
    TaskPool *prevPool_;
    std::size_t prevWidth_;
};

/**
 * parallelFor against the calling thread's IntraOpScope: inline serial
 * execution (fn(0, range)) when no scope is installed, width-capped
 * pool execution when one is. This is the only entry point the kernels
 * use, so library code stays oblivious to where its threads come from.
 */
void intraOpParallelFor(std::size_t grain, std::size_t range,
                        const TaskPool::ChunkFn &fn);

} // namespace enode

#endif // ENODE_COMMON_TASK_POOL_H
