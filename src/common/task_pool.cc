#include "common/task_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace enode {

namespace {

/** Set for the lifetime of every pool worker thread (any pool). */
thread_local bool tls_on_worker = false;

/** The calling thread's intra-op execution scope. */
thread_local TaskPool *tls_scope_pool = nullptr;
thread_local std::size_t tls_scope_width = 1;

/** Balanced static partition: bounds of chunk c of `ways` over `range`. */
inline std::pair<std::size_t, std::size_t>
chunkBounds(std::size_t range, std::size_t ways, std::size_t c)
{
    const std::size_t base = range / ways;
    const std::size_t rem = range % ways;
    const std::size_t begin = c * base + std::min(c, rem);
    const std::size_t size = base + (c < rem ? 1 : 0);
    return {begin, begin + size};
}

} // namespace

TaskPool::TaskPool(std::size_t workers) : workerTarget_(workers)
{
    mailbox_.resize(workers);
}

TaskPool::~TaskPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (auto &t : threads_)
        if (t.joinable())
            t.join();
}

void
TaskPool::ensureStarted()
{
    // Caller holds mutex_. Spawn the ring on first use only: a pool
    // constructed but never exercised costs nothing.
    if (started_ || workerTarget_ == 0)
        return;
    started_ = true;
    threads_.reserve(workerTarget_);
    for (std::size_t i = 0; i < workerTarget_; i++)
        threads_.emplace_back([this, i] { workerMain(i); });
}

bool
TaskPool::onWorkerThread()
{
    return tls_on_worker;
}

TaskPool &
TaskPool::global()
{
    static TaskPool pool([] {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw > 1 ? static_cast<std::size_t>(hw - 1) : std::size_t{0};
    }());
    return pool;
}

void
TaskPool::runChunk(const Batch &batch, std::size_t chunk)
{
    const auto [begin, end] = chunkBounds(batch.range, batch.ways, chunk);
    (*batch.fn)(begin, end);
}

void
TaskPool::parallelFor(std::size_t grain, std::size_t range, const ChunkFn &fn,
                      std::size_t maxWays)
{
    ENODE_ASSERT(grain >= 1, "parallelFor grain must be >= 1");
    if (range == 0)
        return;

    // Static split: never more chunks than full grains, workers + the
    // caller, or the requested width. Nested calls (from inside a pool
    // worker) degenerate to serial: the ring is one level deep, like
    // the hardware's single layer of cores.
    std::size_t ways = std::min(range / grain, workerTarget_ + 1);
    if (maxWays > 0)
        ways = std::min(ways, maxWays);
    if (ways <= 1 || tls_on_worker) {
        fn(0, range);
        return;
    }

    Batch batch;
    batch.fn = &fn;
    batch.range = range;
    batch.ways = ways;

    {
        std::unique_lock<std::mutex> lock(mutex_);
        ensureStarted();
        // Rotate the chunk->worker mapping per call so concurrent
        // callers spread across the ring and every worker sees every
        // chunk shape within a few calls (arena warm-up coverage).
        const std::size_t offset = nextOffset_;
        nextOffset_ = (nextOffset_ + ways - 1) % workerTarget_;
        for (std::size_t c = 1; c < ways; c++) {
            Job job;
            job.batch = &batch;
            job.chunk = c;
            mailbox_[(offset + c - 1) % workerTarget_].push_back(job);
        }
    }
    wake_.notify_all();

    runChunk(batch, 0); // the caller is core 0 of the ring

    std::unique_lock<std::mutex> lock(mutex_);
    batch.cv.wait(lock, [&] { return batch.done == batch.ways - 1; });
}

void
TaskPool::runOnWorkers(const std::function<void()> &fn)
{
    if (workerTarget_ == 0)
        return;
    std::size_t done = 0;
    std::condition_variable cv;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        ensureStarted();
        for (std::size_t w = 0; w < workerTarget_; w++) {
            Job job;
            job.plain = &fn;
            job.plainDone = &done;
            job.plainCv = &cv;
            mailbox_[w].push_back(job);
        }
    }
    wake_.notify_all();
    std::unique_lock<std::mutex> lock(mutex_);
    cv.wait(lock, [&] { return done == workerTarget_; });
}

void
TaskPool::workerMain(std::size_t worker_id)
{
    tls_on_worker = true;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock, [&] {
            return shutdown_ || !mailbox_[worker_id].empty();
        });
        if (mailbox_[worker_id].empty()) {
            if (shutdown_)
                return;
            continue;
        }
        Job job = mailbox_[worker_id].front();
        mailbox_[worker_id].pop_front();
        lock.unlock();

        if (job.batch != nullptr)
            runChunk(*job.batch, job.chunk);
        else
            (*job.plain)();

        lock.lock();
        if (job.batch != nullptr) {
            job.batch->done++;
            if (job.batch->done == job.batch->ways - 1)
                job.batch->cv.notify_one();
        } else {
            (*job.plainDone)++;
            if (*job.plainDone == workerTarget_)
                job.plainCv->notify_one();
        }
    }
}

IntraOpScope::IntraOpScope(TaskPool *pool, std::size_t width)
    : prevPool_(tls_scope_pool), prevWidth_(tls_scope_width)
{
    tls_scope_pool = width > 1 ? pool : nullptr;
    tls_scope_width = tls_scope_pool != nullptr ? width : 1;
}

IntraOpScope::~IntraOpScope()
{
    tls_scope_pool = prevPool_;
    tls_scope_width = prevWidth_;
}

TaskPool *
IntraOpScope::currentPool()
{
    return tls_scope_pool;
}

std::size_t
IntraOpScope::currentWidth()
{
    return tls_scope_width;
}

void
intraOpParallelFor(std::size_t grain, std::size_t range,
                   const TaskPool::ChunkFn &fn)
{
    TaskPool *pool = tls_scope_pool;
    if (pool == nullptr || tls_scope_width <= 1) {
        if (range > 0)
            fn(0, range);
        return;
    }
    pool->parallelFor(grain, range, fn, tls_scope_width);
}

} // namespace enode
