#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/logging.h"

namespace enode {

namespace {

/** splitmix64 step, used only for seeding. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) : cachedNormal_(0.0), hasCachedNormal_(false)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
    // xoshiro must not start from the all-zero state.
    if (!(state_[0] | state_[1] | state_[2] | state_[3]))
        state_[0] = 1;
}

std::uint64_t
Rng::nextU64()
{
    // xoshiro256** core.
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 significant bits, uniform in [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    // Box-Muller; reject u1 == 0 to keep log() finite.
    double u1 = uniform();
    while (u1 == 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cachedNormal_ = radius * std::sin(angle);
    hasCachedNormal_ = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

std::uint64_t
Rng::nextBelow(std::uint64_t n)
{
    ENODE_ASSERT(n > 0, "nextBelow requires n > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~0ull - (~0ull % n);
    std::uint64_t draw = nextU64();
    while (draw >= limit)
        draw = nextU64();
    return draw % n;
}

int
Rng::intRange(int lo, int hi)
{
    ENODE_ASSERT(lo <= hi, "intRange requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<int>(nextBelow(span));
}

std::vector<std::size_t>
Rng::permutation(std::size_t n)
{
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; i++)
        perm[i] = i;
    for (std::size_t i = n; i > 1; i--) {
        const std::size_t j = nextBelow(i);
        std::swap(perm[i - 1], perm[j]);
    }
    return perm;
}

Rng
Rng::fork()
{
    return Rng(nextU64());
}

} // namespace enode
