#ifndef ENODE_COMMON_LOGGING_H
#define ENODE_COMMON_LOGGING_H

/**
 * @file
 * Status-message and error-reporting helpers in the gem5 tradition.
 *
 * panic()  - an internal invariant broke: a bug in this library. Aborts.
 * fatal()  - the user asked for something impossible (bad configuration,
 *            invalid arguments). Exits with an error code.
 * warn()   - something works but not as well as it should.
 * inform() - plain status output, no connotation of misbehaviour.
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace enode {

/** Verbosity levels for inform()/warn() filtering. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/** Process-wide log level; benches lower it to keep tables clean. */
LogLevel logLevel();

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Format a parameter pack into one string via an ostringstream. */
template <typename... Args>
std::string
formatArgs(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace enode

/** Abort: an internal invariant was violated (a library bug). */
#define ENODE_PANIC(...) \
    ::enode::detail::panicImpl(__FILE__, __LINE__, \
                               ::enode::detail::formatArgs(__VA_ARGS__))

/** Exit(1): the simulation cannot continue due to a user error. */
#define ENODE_FATAL(...) \
    ::enode::detail::fatalImpl(__FILE__, __LINE__, \
                               ::enode::detail::formatArgs(__VA_ARGS__))

/** Warn about a condition that might work well enough. */
#define ENODE_WARN(...) \
    ::enode::detail::warnImpl(::enode::detail::formatArgs(__VA_ARGS__))

/** Informative message users should know but not worry about. */
#define ENODE_INFORM(...) \
    ::enode::detail::informImpl(::enode::detail::formatArgs(__VA_ARGS__))

/** Developer-facing trace output, visible only at LogLevel::Debug. */
#define ENODE_DEBUG(...) \
    ::enode::detail::debugImpl(::enode::detail::formatArgs(__VA_ARGS__))

/** Cheap always-on assertion that panics with context on failure. */
#define ENODE_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ENODE_PANIC("assertion failed: " #cond " ", \
                        ::enode::detail::formatArgs(__VA_ARGS__)); \
        } \
    } while (0)

#endif // ENODE_COMMON_LOGGING_H
