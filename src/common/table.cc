#include "common/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/logging.h"

namespace enode {

namespace {

/** Heuristic: cells that parse as numbers are right-aligned. */
bool
looksNumeric(const std::string &cell)
{
    if (cell.empty())
        return false;
    std::size_t i = 0;
    if (cell[0] == '-' || cell[0] == '+')
        i = 1;
    bool any_digit = false;
    for (; i < cell.size(); i++) {
        const char c = cell[i];
        if (std::isdigit(static_cast<unsigned char>(c))) {
            any_digit = true;
        } else if (c != '.' && c != 'e' && c != 'E' && c != '-' && c != '+' &&
                   c != '%' && c != 'x') {
            return false;
        }
    }
    return any_digit;
}

} // namespace

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    ENODE_ASSERT(header_.empty() || row.size() == header_.size(),
                 "row width ", row.size(), " != header width ",
                 header_.size(), " in table '", title_, "'");
    rows_.push_back(std::move(row));
}

void
Table::addSeparator()
{
    rows_.emplace_back();
}

std::string
Table::render() const
{
    const std::size_t cols = header_.size();
    std::vector<std::size_t> widths(cols, 0);
    for (std::size_t c = 0; c < cols; c++)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); c++)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto renderSeparator = [&](std::ostringstream &oss) {
        oss << "+";
        for (std::size_t c = 0; c < cols; c++)
            oss << std::string(widths[c] + 2, '-') << "+";
        oss << "\n";
    };
    auto renderRow = [&](std::ostringstream &oss,
                         const std::vector<std::string> &row) {
        oss << "|";
        for (std::size_t c = 0; c < cols; c++) {
            const std::string &cell = c < row.size() ? row[c] : std::string();
            const std::size_t pad = widths[c] - cell.size();
            if (looksNumeric(cell))
                oss << " " << std::string(pad, ' ') << cell << " |";
            else
                oss << " " << cell << std::string(pad, ' ') << " |";
        }
        oss << "\n";
    };

    std::ostringstream oss;
    oss << "\n== " << title_ << " ==\n";
    renderSeparator(oss);
    renderRow(oss, header_);
    renderSeparator(oss);
    for (const auto &row : rows_) {
        if (row.empty())
            renderSeparator(oss);
        else
            renderRow(oss, row);
    }
    renderSeparator(oss);
    return oss.str();
}

void
Table::print() const
{
    std::cout << render() << std::flush;
}

std::string
Table::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
Table::integer(long long value)
{
    return std::to_string(value);
}

std::string
Table::percent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
Table::ratio(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", precision, value);
    return buf;
}

} // namespace enode
