#include "common/logging.h"

#include <atomic>
#include <iostream>

namespace enode {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::Info};

} // namespace

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        std::cout << "info: " << msg << std::endl;
}

void
debugImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug)
        std::cout << "debug: " << msg << std::endl;
}

} // namespace detail

} // namespace enode
