#include "common/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace enode {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::Info};

// One process-wide mutex serializes every emitted line so concurrent
// runtime workers never interleave characters within a message.
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
                  << std::endl;
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
                  << std::endl;
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn) {
        std::lock_guard<std::mutex> lock(logMutex());
        std::cerr << "warn: " << msg << std::endl;
    }
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info) {
        std::lock_guard<std::mutex> lock(logMutex());
        std::cout << "info: " << msg << std::endl;
    }
}

void
debugImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug) {
        std::lock_guard<std::mutex> lock(logMutex());
        std::cout << "debug: " << msg << std::endl;
    }
}

} // namespace detail

} // namespace enode
