#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/simd.h"
#include "common/simd_internal.h"

/**
 * @file
 * NEON (aarch64 Advanced SIMD) backend, 128-bit f32 lanes.
 *
 * Advanced SIMD and half-precision *conversion* (fcvt between f16 and
 * f32) are baseline ARMv8.0-A, so no extra compile flags are needed —
 * just -ffp-contract=off like every backend TU. On non-aarch64 builds
 * this reduces to a nullptr stub. The default FPCR (round-to-nearest-
 * even, flush-to-zero off) gives the conversions the same rounding as
 * the software path.
 */

#if defined(__aarch64__)
#define ENODE_SIMD_BUILD_NEON 1
#endif

#ifdef ENODE_SIMD_BUILD_NEON

#include <arm_neon.h>

namespace enode {
namespace {

struct VecF
{
    static constexpr std::size_t kWidth = 4;
    float32x4_t v;

    static VecF load(const float *p) { return {vld1q_f32(p)}; }
    void store(float *p) const { vst1q_f32(p, v); }
    static VecF broadcast(float x) { return {vdupq_n_f32(x)}; }
    VecF add(VecF o) const { return {vaddq_f32(v, o.v)}; }
    VecF mul(VecF o) const { return {vmulq_f32(v, o.v)}; }
};

struct VecD
{
    static constexpr std::size_t kWidth = 2;
    float64x2_t v;

    static VecD zero() { return {vdupq_n_f64(0.0)}; }
    static void
    widen8(const float *p, VecD out[4])
    {
        const float32x4_t lo = vld1q_f32(p);
        const float32x4_t hi = vld1q_f32(p + 4);
        out[0] = {vcvt_f64_f32(vget_low_f32(lo))};
        out[1] = {vcvt_high_f64_f32(lo)};
        out[2] = {vcvt_f64_f32(vget_low_f32(hi))};
        out[3] = {vcvt_high_f64_f32(hi)};
    }
    VecD add(VecD o) const { return {vaddq_f64(v, o.v)}; }
    VecD mul(VecD o) const { return {vmulq_f64(v, o.v)}; }
    void store(double *p) const { vst1q_f64(p, v); }
};

#define ENODE_SIMD_BACKEND_ENUM SimdBackend::Neon
#define ENODE_SIMD_BACKEND_NAME "neon"
#include "common/simd_kernels.inc"
#undef ENODE_SIMD_BACKEND_ENUM
#undef ENODE_SIMD_BACKEND_NAME

bool
allFiniteImpl(const float *x, std::size_t n)
{
    const uint32x4_t expMask = vdupq_n_u32(0x7f800000u);
    uint32x4_t bad = vdupq_n_u32(0);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const uint32x4_t bits = vreinterpretq_u32_f32(vld1q_f32(x + i));
        bad = vorrq_u32(bad, vceqq_u32(vandq_u32(bits, expMask), expMask));
    }
    if (vmaxvq_u32(bad) != 0)
        return false;
    for (; i < n; i++) {
        if (!simd_detail::finiteBits(simd_detail::f32Bits(x[i])))
            return false;
    }
    return true;
}

void
quantizeFp16Impl(float *data, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float16x4_t h = vcvt_f16_f32(vld1q_f32(data + i));
        vst1q_f32(data + i, vcvt_f32_f16(h));
    }
    for (; i < n; i++)
        data[i] = simd_detail::halfRoundTrip(data[i]);
}

void
packFp16Impl(std::uint16_t *dst, const float *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float16x4_t h = vcvt_f16_f32(vld1q_f32(src + i));
        vst1_u16(dst + i, vreinterpret_u16_f16(h));
    }
    for (; i < n; i++)
        dst[i] = simd_detail::halfBitsFromFloat(src[i]);
}

void
unpackFp16Impl(float *dst, const std::uint16_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float16x4_t h = vreinterpret_f16_u16(vld1_u16(src + i));
        vst1q_f32(dst + i, vcvt_f32_f16(h));
    }
    for (; i < n; i++)
        dst[i] = simd_detail::halfToFloat(src[i]);
}

} // namespace

const SimdOps *
simdOpsNeon()
{
    return &kOps;
}

} // namespace enode

#else // !ENODE_SIMD_BUILD_NEON

namespace enode {

const SimdOps *
simdOpsNeon()
{
    return nullptr;
}

} // namespace enode

#endif
