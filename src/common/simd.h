#ifndef ENODE_COMMON_SIMD_H
#define ENODE_COMMON_SIMD_H

/**
 * @file
 * Explicit SIMD kernel backend with runtime CPU-feature dispatch.
 *
 * The conv/solver kernels used to lean on the compiler auto-vectorizing
 * at -march=native, which is fragile (one spill drops a tile to scalar)
 * and ties the binary to the build machine. This layer makes the
 * vector arithmetic explicit: a table of kernel function pointers
 * (SimdOps) with one implementation per ISA — scalar (always compiled,
 * the equivalence oracle), AVX2+FMA-class x86, AVX-512 x86, and NEON on
 * aarch64 — selected once at startup by a CPU-feature probe (cpuid via
 * __builtin_cpu_supports on x86, getauxval(AT_HWCAP) on aarch64).
 *
 * Numerical contracts (tested in tests/test_simd.cc, documented in
 * DESIGN.md "SIMD backend & dispatch"):
 *
 *  - Elementwise kernels (axpy, scale, add/sub, conv tap passes) use
 *    per-op rounding — multiply then add, never a fused multiply-add —
 *    so every backend is *bitwise identical* to scalar. All backend
 *    translation units are compiled with -ffp-contract=off to keep the
 *    compiler from re-fusing them.
 *  - Reductions use a *fixed lane structure* independent of register
 *    width: dot products accumulate into 16 float lanes (AVX-512 uses
 *    one 16-wide register, AVX2 two 8-wide, NEON four 4-wide, scalar a
 *    16-element array) and sum-of-squares into 8 double lanes, with a
 *    serial tail and a serial final reduction in fixed lane order.
 *    Backends are therefore bitwise identical *to each other*; they
 *    differ from a plain serial sum only by the documented
 *    reduction-order tolerance.
 *  - allFinite is exact (a NaN/Inf anywhere flips it, no FP rounding
 *    involved). quantizeFp16 is bitwise identical across backends for
 *    every non-NaN input; hardware converters (F16C, NEON fcvt) may
 *    preserve NaN payload bits where the software path canonicalizes
 *    to sign|0x7e00 — both stay NaN.
 *
 * Override: set ENODE_SIMD=scalar|avx2|avx512|neon before the first
 * kernel call to force a backend (ignored with a warning if the CPU or
 * build does not support it), or call setSimdBackend() / use
 * ScopedSimdBackend from tests and benches.
 */

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace enode {

/** The instruction sets a kernel table can be specialized for. */
enum class SimdBackend : std::uint8_t {
    Scalar = 0,
    Neon = 1,
    Avx2 = 2,
    Avx512 = 3,
};

/**
 * One backend's kernel table. All pointers are non-null in a published
 * table; kernels are pure functions of their arguments (no allocation,
 * no shared state) and safe to call from any thread.
 */
struct SimdOps
{
    SimdBackend backend;
    const char *name;
    /** f32 elements per native vector register (1 for scalar). */
    std::size_t laneWidth;

    /** y[i] += a * x[i] (per-op rounding, bitwise across backends). */
    void (*axpy)(float *y, float a, const float *x, std::size_t n);
    /** y[i] *= s. */
    void (*scale)(float *y, float s, std::size_t n);
    /** y[i] += x[i]. */
    void (*addInPlace)(float *y, const float *x, std::size_t n);
    /** y[i] -= x[i]. */
    void (*subInPlace)(float *y, const float *x, std::size_t n);
    /** dst[i] = src[i]; memcpy semantics (regions must not overlap). */
    void (*copy)(float *dst, const float *src, std::size_t n);

    /**
     * Conv 3-tap row pass: acc[i] += w[0]*row[i] + w[1]*row[i+1] +
     * w[2]*row[i+2], taps applied in order with per-op rounding.
     * `row` must be readable through row[n + 1].
     */
    void (*rowTaps3)(float *acc, const float *row, const float *w,
                     std::size_t n);
    /**
     * Fused 4-output-channel variant of rowTaps3: rows k = 0..3 live at
     * acc + k*n and use the 3-tap vector wk.
     */
    void (*rowTaps3x4)(float *acc, const float *row, const float *w0,
                       const float *w1, const float *w2, const float *w3,
                       std::size_t n);

    /**
     * Accumulating 16-lane dot product (the conv weight-gradient core):
     * lanes[j] += a[16k + j]*b[16k + j] over full 16-element chunks and
     * *tail += a[i]*b[i] for the remainder. Lane structure is fixed at
     * 16 regardless of register width, so results are bitwise identical
     * across backends. Callers reduce as s = tail + lanes[0] + ... +
     * lanes[15] (see dot for the one-shot form).
     */
    void (*accumDot16)(float lanes[16], float *tail, const float *a,
                       const float *b, std::size_t n);
    /**
     * One-shot dot product under the same fixed 16-lane contract:
     * zero lanes, accumDot16, then the serial tail-first reduction.
     */
    float (*dot)(const float *a, const float *b, std::size_t n);

    /**
     * Sum of squares in double precision under a fixed 8-double-lane
     * contract (bitwise across backends): lanes[j] += (double)x[8k+j]^2,
     * serial tail, reduction s = tail + lanes[0] + ... + lanes[7].
     * This is the WRMS error-norm kernel (l2Norm = sqrt of this).
     */
    double (*sumSquares)(const float *x, std::size_t n);

    /** True iff every element is finite. Exact (inspects exponent bits). */
    bool (*allFinite)(const float *x, std::size_t n);

    /**
     * data[i] = roundToFp16(data[i]): one fused round-trip through the
     * binary16 grid per element (RNE, saturate to inf, subnormals kept).
     * Bitwise identical across backends for non-NaN input; NaNs stay
     * NaN but hardware paths may keep payload bits the software path
     * canonicalizes.
     */
    void (*quantizeFp16)(float *data, std::size_t n);
    /** dst[i] = half bits of src[i] (RNE; same NaN caveat as above). */
    void (*packFp16)(std::uint16_t *dst, const float *src, std::size_t n);
    /** dst[i] = float value of half bits src[i] (exact widening). */
    void (*unpackFp16)(float *dst, const std::uint16_t *src, std::size_t n);
};

/** Lowercase backend name: "scalar", "neon", "avx2", "avx512". */
const char *simdBackendName(SimdBackend backend);

/** Parse a backend name as spelled in ENODE_SIMD. */
std::optional<SimdBackend> parseSimdBackendName(std::string_view name);

/** True when this binary contains code for the backend. */
bool simdBackendCompiled(SimdBackend backend);

/** True when the backend is compiled in *and* this CPU can run it. */
bool simdBackendSupported(SimdBackend backend);

/** Every supported backend, Scalar first. */
std::vector<SimdBackend> availableSimdBackends();

/** The backend whose table simdOps() currently returns. */
SimdBackend activeSimdBackend();

/**
 * Force a backend. Returns false (and changes nothing) when the
 * backend is not supported here. Not meant to race with in-flight
 * kernels: call it from a quiesced point (tests, bench setup, startup).
 */
bool setSimdBackend(SimdBackend backend);

/** Drop any override and re-run the probe/ENODE_SIMD selection. */
void resetSimdBackend();

/** The active kernel table. First call runs the CPU probe. */
const SimdOps &simdOps();

/** RAII backend override for tests and benches. */
class ScopedSimdBackend
{
  public:
    explicit ScopedSimdBackend(SimdBackend backend)
        : previous_(activeSimdBackend()), applied_(setSimdBackend(backend))
    {
    }
    ~ScopedSimdBackend()
    {
        if (applied_)
            setSimdBackend(previous_);
    }
    ScopedSimdBackend(const ScopedSimdBackend &) = delete;
    ScopedSimdBackend &operator=(const ScopedSimdBackend &) = delete;

    /** False when the requested backend was unavailable. */
    bool applied() const { return applied_; }

  private:
    SimdBackend previous_;
    bool applied_;
};

namespace simd {

/** Convenience wrappers over the active table. */
inline void
axpy(float *y, float a, const float *x, std::size_t n)
{
    simdOps().axpy(y, a, x, n);
}

inline void
scale(float *y, float s, std::size_t n)
{
    simdOps().scale(y, s, n);
}

inline void
addInPlace(float *y, const float *x, std::size_t n)
{
    simdOps().addInPlace(y, x, n);
}

inline void
subInPlace(float *y, const float *x, std::size_t n)
{
    simdOps().subInPlace(y, x, n);
}

inline void
copy(float *dst, const float *src, std::size_t n)
{
    simdOps().copy(dst, src, n);
}

inline float
dot(const float *a, const float *b, std::size_t n)
{
    return simdOps().dot(a, b, n);
}

inline double
sumSquares(const float *x, std::size_t n)
{
    return simdOps().sumSquares(x, n);
}

inline bool
allFinite(const float *x, std::size_t n)
{
    return simdOps().allFinite(x, n);
}

} // namespace simd

} // namespace enode

#endif // ENODE_COMMON_SIMD_H
