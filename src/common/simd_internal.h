#ifndef ENODE_COMMON_SIMD_INTERNAL_H
#define ENODE_COMMON_SIMD_INTERNAL_H

/**
 * @file
 * Internals shared by the SIMD backend translation units.
 *
 * Two things live here: the per-ISA kernel-table getters the dispatcher
 * in simd.cc resolves at probe time (each returns nullptr when its ISA
 * was not compiled into this binary), and the scalar binary16 helpers
 * every backend uses for loop tails. The helpers mirror Fp16's
 * conversion semantics exactly — tests/test_simd.cc pins the
 * equivalence over every half pattern and the full rounding boundary
 * set — but are free functions that inline into the span kernels.
 */

#include <cstdint>
#include <cstring>

#include "common/simd.h"

namespace enode {

/** Per-ISA table getters; nullptr when the ISA is not compiled in. */
const SimdOps *simdOpsAvx2();
const SimdOps *simdOpsAvx512();
const SimdOps *simdOpsNeon();

namespace simd_detail {

inline std::uint32_t
f32Bits(float value)
{
    std::uint32_t u;
    std::memcpy(&u, &value, sizeof(u));
    return u;
}

inline float
f32FromBits(std::uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

/** True when the pattern is neither an infinity nor a NaN. */
inline bool
finiteBits(std::uint32_t bits)
{
    return (bits & 0x7f800000u) != 0x7f800000u;
}

/**
 * Round a float to the nearest half (RNE), returning the half bits.
 * Same algorithm as Fp16::fromFloat: NaN canonicalizes to sign|0x7e00,
 * |x| >= 65520 saturates to infinity, subnormal halves are kept.
 */
inline std::uint16_t
halfBitsFromFloat(float value)
{
    const std::uint32_t f = f32Bits(value);
    const std::uint32_t sign = (f >> 16) & 0x8000u;
    const std::uint32_t abs = f & 0x7fffffffu;

    if (abs > 0x7f800000u)
        return static_cast<std::uint16_t>(sign | 0x7e00u);
    if (abs >= 0x47800000u)
        return static_cast<std::uint16_t>(sign | 0x7c00u);
    if (abs >= 0x38800000u) {
        const std::uint32_t mant = abs - 0x38000000u;
        std::uint32_t half = mant >> 13;
        const std::uint32_t rem = mant & 0x1fffu;
        if (rem > 0x1000u || (rem == 0x1000u && (half & 1u)))
            half++;
        return static_cast<std::uint16_t>(sign | half);
    }
    if (abs >= 0x33000000u) {
        const int shift = 126 - static_cast<int>(abs >> 23);
        const std::uint32_t mant = (abs & 0x007fffffu) | 0x00800000u;
        std::uint32_t half = mant >> shift;
        const std::uint32_t rem = mant & ((1u << shift) - 1u);
        const std::uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half & 1u)))
            half++;
        return static_cast<std::uint16_t>(sign | half);
    }
    return static_cast<std::uint16_t>(sign);
}

/** Widen half bits to float, exactly (mirror of Fp16::toFloat). */
inline float
halfToFloat(std::uint16_t h)
{
    const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
    const std::uint32_t exp = (h >> 10) & 0x1fu;
    const std::uint32_t mant = h & 0x03ffu;

    if (exp == 0x1f)
        return f32FromBits(sign | 0x7f800000u | (mant << 13));
    if (exp == 0) {
        // mant * 2^-24; exact (small integer times a power of two).
        const float magnitude =
            static_cast<float>(mant) * 5.9604644775390625e-8f;
        return f32FromBits(sign | f32Bits(magnitude));
    }
    return f32FromBits(sign | ((exp + 112u) << 23) | (mant << 13));
}

/**
 * Fused scalar round-trip through the binary16 grid: one pass over the
 * float pattern instead of encode-to-half followed by decode-to-float.
 * Bitwise equal to halfToFloat(halfBitsFromFloat(x)) for every input
 * except NaN payloads (this path canonicalizes, like the software
 * encoder).
 */
inline float
halfRoundTrip(float value)
{
    const std::uint32_t u = f32Bits(value);
    const std::uint32_t sign = u & 0x80000000u;
    const std::uint32_t abs = u & 0x7fffffffu;

    if (abs >= 0x47800000u) {
        // NaN stays a (canonical, widened) NaN; everything else at or
        // beyond 65536 rounds past 65504 and saturates to infinity.
        if (abs > 0x7f800000u)
            return f32FromBits(sign | 0x7fc00000u);
        return f32FromBits(sign | 0x7f800000u);
    }
    if (abs >= 0x38800000u) {
        // Normal half range: RNE on the 13 dropped mantissa bits,
        // applied directly to the float pattern. The carry from the
        // round increment ripples into the exponent exactly when
        // rounding crosses a binade.
        std::uint32_t r = abs + 0x00000fffu + ((abs >> 13) & 1u);
        r &= 0xffffe000u;
        if (r >= 0x47800000u)
            r = 0x7f800000u;
        return f32FromBits(sign | r);
    }
    // Subnormal-half range and underflow: |x| < 2^-14, and the target
    // grid spacing is 2^-24 == ulp(0.5f). Adding 0.5f makes the FPU
    // round |x| onto that grid with ties-to-even; subtracting it back
    // is exact (Sterbenz), leaving the rounded magnitude.
    const float m = f32FromBits(abs);
    const float r = (m + 0.5f) - 0.5f;
    return f32FromBits(sign | f32Bits(r));
}

} // namespace simd_detail
} // namespace enode

#endif // ENODE_COMMON_SIMD_INTERNAL_H
