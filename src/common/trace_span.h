#ifndef ENODE_COMMON_TRACE_SPAN_H
#define ENODE_COMMON_TRACE_SPAN_H

/**
 * @file
 * Low-overhead span tracing with Chrome trace-event export.
 *
 * The runtime's time-resolved claims (solver trial dynamics, pipeline
 * wavefronts, the serving degradation ladder) are *traces*, not end-of-
 * request summaries. This module records them: hot paths open RAII
 * TraceSpans that land as {name, category, tid, start_ns, dur_ns, args}
 * events in per-thread ring buffers, and the process-wide Tracer
 * stitches the rings on demand into a Chrome trace-event JSON that
 * chrome://tracing and Perfetto load directly.
 *
 * Overhead discipline (same as fault_injection.h): the tracer is
 * compiled in always, and when *disarmed* every probe is a single
 * relaxed atomic load — no allocation, no branch on shared state, no
 * clock read. When armed, recording is one clock read plus a copy into
 * a preallocated thread-local ring under an almost-always-uncontended
 * per-ring mutex (contended only while a snapshot stitches). Rings
 * drop the *oldest* events on overflow, so the newest window of
 * activity is always retained.
 *
 * Event strings (name / category / arg keys) must be string literals
 * or otherwise outlive the tracer arming: events store the pointers,
 * never copies, to keep recording allocation-free.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace enode {

/** Maximum key/value pairs attached to one event. */
constexpr std::size_t kMaxTraceArgs = 4;

/** One named numeric event argument (key must outlive the arming). */
struct TraceArg
{
    const char *key;
    double value;
};

/** One recorded span or instant event. */
struct TraceEvent
{
    const char *name = nullptr;     ///< static string, e.g. "solve.trial"
    const char *category = nullptr; ///< static string, e.g. "solver"
    std::uint32_t tid = 0;          ///< tracer-assigned thread id
    std::int64_t startNs = 0;       ///< relative to the arm() epoch
    std::int64_t durNs = 0;         ///< span duration; < 0 = instant event
    std::uint32_t numArgs = 0;
    TraceArg args[kMaxTraceArgs] = {};

    bool instant() const { return durNs < 0; }
};

/**
 * Process-wide span tracer. arm() starts a recording generation with
 * freshly sized rings; disarm() stops recording but keeps the events,
 * so a server can disarm at shutdown and still export the trace.
 * Thread-safe throughout: recording threads touch only their own ring
 * (plus one registration under the tracer mutex per thread per
 * generation), and snapshot/export take each ring's mutex in turn.
 */
class Tracer
{
  public:
    /** Default per-thread ring capacity (events). */
    static constexpr std::size_t kDefaultRingCapacity = 1 << 13;

    static Tracer &instance();

    /** Start a recording generation; previous events are discarded. */
    void arm(std::size_t ring_capacity = kDefaultRingCapacity);

    /** Stop recording; recorded events stay available for export. */
    void disarm();

    /** The disarmed fast path: one relaxed atomic load. */
    bool
    armed() const
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /** Nanoseconds since the current generation's arm() call. */
    std::int64_t nowNs() const;

    /** Convert a steady_clock time point to tracer-epoch nanoseconds. */
    std::int64_t toNs(std::chrono::steady_clock::time_point tp) const;

    /**
     * Record one event into the calling thread's ring (drops it when
     * the tracer was never armed for this thread). tid is assigned by
     * the tracer; the caller fills everything else.
     */
    void record(const TraceEvent &event);

    /** Record an instant event (a point in time, e.g. a watchdog trip). */
    void instant(const char *name, const char *category,
                 std::initializer_list<TraceArg> args = {});

    /**
     * Name the calling thread in exported traces ("worker-0", ...).
     * Sticky: applies to the current ring and to any ring the thread
     * registers in later generations.
     */
    void setThreadName(const std::string &name);

    /** All recorded events, stitched across threads, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    /** Events overwritten by ring wraparound in this generation. */
    std::uint64_t dropped() const;

    /** Rings registered in this generation (= threads that recorded). */
    std::size_t threadCount() const;

    /**
     * Write the Chrome trace-event JSON ("traceEvents" array of "X"
     * complete and "i" instant events plus thread-name metadata).
     * Load the file in chrome://tracing or https://ui.perfetto.dev.
     */
    void exportChromeTrace(std::ostream &os) const;

    /** exportChromeTrace into a string. */
    std::string chromeTraceJson() const;

  private:
    struct Ring
    {
        explicit Ring(std::size_t capacity, std::uint32_t tid_,
                      std::string name_)
            : events(capacity), tid(tid_), name(std::move(name_))
        {
        }

        mutable std::mutex mutex;
        std::vector<TraceEvent> events; ///< fixed-capacity ring storage
        std::uint64_t head = 0;         ///< total events ever written
        std::uint32_t tid;
        std::string name; ///< exported thread name (may be empty)
    };

    Tracer() = default;

    /** The calling thread's ring for this generation (null if none). */
    Ring *localRing();

    std::atomic<bool> armed_{false};
    /** Epoch of the current generation, ns since steady_clock epoch. */
    std::atomic<std::int64_t> epochNs_{0};

    mutable std::mutex mutex_; ///< guards rings_ / capacity_ / nextTid_
    std::vector<std::shared_ptr<Ring>> rings_;
    /** Bumped by arm(); threads compare it lock-free to their cached
     *  ring's generation, so steady-state recording never touches the
     *  tracer mutex — only each thread's own ring mutex. */
    std::atomic<std::uint64_t> generation_{0};
    std::size_t capacity_ = kDefaultRingCapacity;
    std::uint32_t nextTid_ = 0;
};

/**
 * RAII span: opens at construction, records at destruction (or at an
 * explicit finish()). When the tracer is disarmed the constructor is a
 * single relaxed atomic load and every other member is an inert branch
 * on a stack bool — the hot-path contract the alloc-counting tests
 * assert.
 *
 *   TraceSpan span("solve.trial", "solver");
 *   ...work...
 *   span.arg("dt", dt);
 */
class TraceSpan
{
  public:
    TraceSpan(const char *name, const char *category)
    {
        Tracer &tracer = Tracer::instance();
        if (!tracer.armed())
            return; // disarmed: one relaxed load, nothing else
        live_ = true;
        event_.name = name;
        event_.category = category;
        event_.startNs = tracer.nowNs();
    }

    ~TraceSpan() { finish(); }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Attach a numeric argument (ignored beyond kMaxTraceArgs). */
    void
    arg(const char *key, double value)
    {
        if (!live_ || event_.numArgs >= kMaxTraceArgs)
            return;
        event_.args[event_.numArgs++] = {key, value};
    }

    /** Close the span now instead of at scope exit. */
    void
    finish()
    {
        if (!live_)
            return;
        live_ = false;
        Tracer &tracer = Tracer::instance();
        event_.durNs = tracer.nowNs() - event_.startNs;
        tracer.record(event_);
    }

  private:
    TraceEvent event_;
    bool live_ = false;
};

} // namespace enode

#endif // ENODE_COMMON_TRACE_SPAN_H
