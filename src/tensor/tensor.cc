#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/fp16.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/simd.h"
#include "tensor/workspace.h"

namespace enode {

Shape::Shape(std::initializer_list<std::size_t> dims)
    : Shape(dims.begin(), dims.end())
{
}

Shape::Shape(const std::vector<std::size_t> &dims)
    : Shape(dims.data(), dims.data() + dims.size())
{
}

Shape::Shape(const std::size_t *begin, const std::size_t *end)
{
    ENODE_ASSERT(begin <= end, "inverted extent range");
    const std::size_t n = static_cast<std::size_t>(end - begin);
    ENODE_ASSERT(n <= kMaxRank, "rank > ", kMaxRank, " unsupported");
    for (std::size_t i = 0; i < n; i++) {
        ENODE_ASSERT(begin[i] > 0, "zero extent in shape");
        dims_[i] = begin[i];
    }
    rank_ = n;
}

std::size_t
Shape::dim(std::size_t i) const
{
    ENODE_ASSERT(i < rank_, "shape dim ", i, " out of rank ", rank_);
    return dims_[i];
}

std::size_t
Shape::numel() const
{
    std::size_t n = 1;
    for (std::size_t i = 0; i < rank_; i++)
        n *= dims_[i];
    return n;
}

Shape
Shape::prepended(std::size_t n) const
{
    ENODE_ASSERT(rank_ < kMaxRank, "prepended() on a rank-", kMaxRank,
                 " shape");
    Shape out;
    out.dims_[0] = n;
    for (std::size_t i = 0; i < rank_; i++)
        out.dims_[i + 1] = dims_[i];
    out.rank_ = rank_ + 1;
    ENODE_ASSERT(n > 0, "zero extent in shape");
    return out;
}

std::string
Shape::str() const
{
    std::ostringstream oss;
    oss << "[";
    for (std::size_t i = 0; i < rank_; i++)
        oss << (i ? ", " : "") << dims_[i];
    oss << "]";
    return oss.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(detail::acquireBuffer(shape_.numel()))
{
    std::fill(data_.begin(), data_.end(), 0.0f);
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)),
      data_(detail::acquireBuffer(shape_.numel()))
{
    std::fill(data_.begin(), data_.end(), fill);
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data))
{
    ENODE_ASSERT(data_.size() == shape_.numel(), "data size ", data_.size(),
                 " != shape numel ", shape_.numel());
}

Tensor::~Tensor()
{
    detail::releaseBuffer(std::move(data_));
}

Tensor::Tensor(const Tensor &other)
    : shape_(other.shape_),
      data_(detail::acquireBuffer(other.data_.size()))
{
    std::copy(other.data_.begin(), other.data_.end(), data_.begin());
}

Tensor &
Tensor::operator=(const Tensor &other)
{
    if (this != &other)
        copyFrom(other);
    return *this;
}

Tensor::Tensor(Tensor &&other) noexcept
    : shape_(std::move(other.shape_)), data_(std::move(other.data_))
{
    other.shape_ = Shape();
    other.data_.clear();
}

Tensor &
Tensor::operator=(Tensor &&other) noexcept
{
    if (this != &other) {
        // Swap rather than destroy: the moved-from tensor carries our
        // old buffer back to the pool (or gets it recycled in place by
        // a later copyFrom, the stepper workspace pattern).
        std::swap(shape_, other.shape_);
        std::swap(data_, other.data_);
    }
    return *this;
}

void
Tensor::resize(const Shape &shape)
{
    if (shape.numel() != data_.size()) {
        detail::releaseBuffer(std::move(data_));
        data_ = detail::acquireBuffer(shape.numel());
    }
    shape_ = shape;
}

void
Tensor::copyFrom(const Tensor &src)
{
    ENODE_ASSERT(this != &src, "copyFrom self");
    // Match src's exact storage size (an empty tensor has no buffer even
    // though a rank-0 shape reports numel() == 1).
    if (src.data_.size() != data_.size()) {
        detail::releaseBuffer(std::move(data_));
        data_ = detail::acquireBuffer(src.data_.size());
    }
    shape_ = src.shape_;
    simd::copy(data_.data(), src.data_.data(), data_.size());
}

void
Tensor::reset()
{
    detail::releaseBuffer(std::move(data_));
    data_.clear();
    shape_ = Shape();
}

Tensor
Tensor::full(Shape shape, float value)
{
    return Tensor(std::move(shape), value);
}

Tensor
Tensor::randn(Shape shape, Rng &rng, float stddev)
{
    Tensor t(std::move(shape));
    for (auto &v : t.data_)
        v = static_cast<float>(rng.normal(0.0, stddev));
    return t;
}

Tensor
Tensor::uniform(Shape shape, Rng &rng, float lo, float hi)
{
    Tensor t(std::move(shape));
    for (auto &v : t.data_)
        v = static_cast<float>(rng.uniform(lo, hi));
    return t;
}

Tensor
Tensor::zerosLike(const Tensor &other)
{
    return Tensor(other.shape_);
}

float &
Tensor::at(std::size_t i)
{
    ENODE_ASSERT(i < data_.size(), "flat index ", i, " out of ", data_.size());
    return data_[i];
}

float
Tensor::at(std::size_t i) const
{
    ENODE_ASSERT(i < data_.size(), "flat index ", i, " out of ", data_.size());
    return data_[i];
}

float &
Tensor::at(std::size_t c, std::size_t h, std::size_t w)
{
    ENODE_ASSERT(shape_.rank() == 3, "rank-3 access on ", shape_.str());
    const std::size_t H = shape_.dim(1), W = shape_.dim(2);
    ENODE_ASSERT(c < shape_.dim(0) && h < H && w < W, "chw index out of ",
                 shape_.str());
    return data_[(c * H + h) * W + w];
}

float
Tensor::at(std::size_t c, std::size_t h, std::size_t w) const
{
    return const_cast<Tensor *>(this)->at(c, h, w);
}

float &
Tensor::at(std::size_t n, std::size_t c, std::size_t h, std::size_t w)
{
    ENODE_ASSERT(shape_.rank() == 4, "rank-4 access on ", shape_.str());
    const std::size_t C = shape_.dim(1), H = shape_.dim(2), W = shape_.dim(3);
    ENODE_ASSERT(n < shape_.dim(0) && c < C && h < H && w < W,
                 "nchw index out of ", shape_.str());
    return data_[((n * C + c) * H + h) * W + w];
}

float
Tensor::at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const
{
    return const_cast<Tensor *>(this)->at(n, c, h, w);
}

Tensor
Tensor::reshaped(Shape shape) const
{
    ENODE_ASSERT(shape.numel() == numel(), "reshape ", shape_.str(), " -> ",
                 shape.str(), " changes numel");
    Tensor out(*this); // pooled copy
    out.shape_ = std::move(shape);
    return out;
}

Tensor
Tensor::sample(std::size_t n) const
{
    ENODE_ASSERT(shape_.rank() >= 2, "sample() needs rank >= 2, got ",
                 shape_.str());
    ENODE_ASSERT(n < shape_.dim(0), "sample index out of batch");
    const Shape sample_shape(shape_.dims().begin() + 1,
                             shape_.dims().end());
    const std::size_t stride = sample_shape.numel();
    Tensor out;
    out.resize(sample_shape);
    std::copy(data_.begin() + n * stride, data_.begin() + (n + 1) * stride,
              out.data_.begin());
    return out;
}

void
Tensor::setSample(std::size_t n, const Tensor &sample)
{
    ENODE_ASSERT(shape_.rank() >= 2 &&
                     sample.shape().rank() + 1 == shape_.rank(),
                 "setSample needs a leading batch dim on the target and a "
                 "one-lower-rank source, got ",
                 shape_.str(), " <- ", sample.shape().str());
    const std::size_t stride = shape_.numel() / shape_.dim(0);
    ENODE_ASSERT(sample.numel() == stride, "sample numel mismatch");
    ENODE_ASSERT(n < shape_.dim(0), "sample index out of batch");
    std::copy(sample.data_.begin(), sample.data_.end(),
              data_.begin() + n * stride);
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Tensor::checkSameShape(const Tensor &other, const char *op) const
{
    ENODE_ASSERT(shape_ == other.shape_, op, ": shape ", shape_.str(),
                 " vs ", other.shape_.str());
}

Tensor &
Tensor::operator+=(const Tensor &other)
{
    checkSameShape(other, "+=");
    simd::addInPlace(data_.data(), other.data_.data(), data_.size());
    return *this;
}

Tensor &
Tensor::operator-=(const Tensor &other)
{
    checkSameShape(other, "-=");
    simd::subInPlace(data_.data(), other.data_.data(), data_.size());
    return *this;
}

Tensor &
Tensor::operator*=(float s)
{
    simd::scale(data_.data(), s, data_.size());
    return *this;
}

Tensor
Tensor::operator+(const Tensor &other) const
{
    Tensor out = *this;
    out += other;
    return out;
}

Tensor
Tensor::operator-(const Tensor &other) const
{
    Tensor out = *this;
    out -= other;
    return out;
}

Tensor
Tensor::operator*(float s) const
{
    Tensor out = *this;
    out *= s;
    return out;
}

void
Tensor::axpy(float alpha, const Tensor &x)
{
    checkSameShape(x, "axpy");
    simd::axpy(data_.data(), alpha, x.data_.data(), data_.size());
}

void
Tensor::quantizeFp16()
{
    quantizeFp16Buffer(data_.data(), data_.size());
}

double
Tensor::sum() const
{
    double s = 0.0;
    for (auto v : data_)
        s += v;
    return s;
}

double
Tensor::mean() const
{
    return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size());
}

double
Tensor::l2Norm() const
{
    // The WRMS error-norm kernel of the RK steppers. Fixed 8-double-lane
    // accumulation: bitwise identical across SIMD backends, within the
    // reduction-order tolerance of a serial sum (see DESIGN.md).
    return std::sqrt(simd::sumSquares(data_.data(), data_.size()));
}

double
Tensor::maxAbs() const
{
    double m = 0.0;
    for (auto v : data_)
        m = std::max(m, std::abs(static_cast<double>(v)));
    return m;
}

bool
Tensor::isFinite() const
{
    return simd::allFinite(data_.data(), data_.size());
}

double
Tensor::rowWindowL2(std::size_t row_begin, std::size_t row_end) const
{
    ENODE_ASSERT(shape_.rank() == 3, "rowWindowL2 needs rank 3");
    const std::size_t C = shape_.dim(0), H = shape_.dim(1), W = shape_.dim(2);
    ENODE_ASSERT(row_begin <= row_end && row_end <= H,
                 "row window [", row_begin, ", ", row_end, ") out of H=", H);
    // The row window of one channel is a contiguous span, so each
    // channel is a single sumSquares call; channel partials are summed
    // serially in channel order (deterministic per backend).
    double s = 0.0;
    const std::size_t span = (row_end - row_begin) * W;
    for (std::size_t c = 0; c < C; c++) {
        const float *window = data_.data() + (c * H + row_begin) * W;
        s += simd::sumSquares(window, span);
    }
    return std::sqrt(s);
}

double
Tensor::maxAbsDiff(const Tensor &a, const Tensor &b)
{
    a.checkSameShape(b, "maxAbsDiff");
    double m = 0.0;
    for (std::size_t i = 0; i < a.data_.size(); i++)
        m = std::max(m, std::abs(static_cast<double>(a.data_[i]) -
                                 b.data_[i]));
    return m;
}

bool
Tensor::allClose(const Tensor &a, const Tensor &b, double rtol, double atol)
{
    if (a.shape() != b.shape())
        return false;
    for (std::size_t i = 0; i < a.data_.size(); i++) {
        const double da = a.data_[i], db = b.data_[i];
        if (std::abs(da - db) > atol + rtol * std::abs(db))
            return false;
    }
    return true;
}

} // namespace enode
