#ifndef ENODE_TENSOR_HASH_H
#define ENODE_TENSOR_HASH_H

/**
 * @file
 * Strong content hashing for tensors and solver configuration.
 *
 * The serving-side solve cache (src/runtime/solve_cache.h) keys exact
 * result lookups by the *bytes* of the input tensor plus the model
 * version and solver configuration: two requests collide only when a
 * fresh solve would produce bitwise-identical outputs. That demands a
 * hash wide enough that accidental collisions are out of reach for any
 * realistic cache lifetime (2^64 entries for a birthday bound on 128
 * bits) and fast enough to sit on the admission path of every request.
 *
 * The hasher is a two-lane mixed FNV/splitmix construction: bulk data
 * is consumed 8 bytes at a time into two independently-seeded 64-bit
 * lanes, each finalized through the splitmix64 avalanche. It is NOT
 * cryptographic — the cache is not a trust boundary (an adversary able
 * to submit tensors already gets arbitrary solver work) — but it is
 * abundantly collision-resistant for dedup keying, and deterministic
 * across runs and platforms of equal endianness.
 */

#include <cstddef>
#include <cstdint>

#include "tensor/tensor.h"

namespace enode {

/** 128-bit digest, comparable and usable as an unordered-map key. */
struct Hash128
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool operator==(const Hash128 &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
    bool operator!=(const Hash128 &o) const { return !(*this == o); }

    /** True once any bytes have been absorbed (an all-zero digest is
     *  astronomically unlikely from real input). */
    bool valid() const { return hi != 0 || lo != 0; }
};

/** splitmix64 finalizer: the avalanche step used across the repo. */
std::uint64_t mix64(std::uint64_t x);

/**
 * Streaming two-lane 128-bit hasher. Absorb bytes and integers in any
 * order; the digest depends on the full absorbed sequence. Stateless
 * apart from the two lanes, so it lives on the stack of the admission
 * path with zero allocation.
 */
class StreamHasher
{
  public:
    StreamHasher();

    /** Absorb a raw byte range. */
    void update(const void *data, std::size_t bytes);

    /**
     * Absorb a variable-length field with domain separation: the length
     * is absorbed as a word before the bytes. Use this for adjacent
     * variable-length fields in composite digests (names, strings) so
     * an empty or short field cannot make its neighbour's bytes slide
     * into its position and alias a different logical input.
     */
    void updateSized(const void *data, std::size_t bytes);

    /** Absorb one 64-bit word (length/shape/config mixing). */
    void update(std::uint64_t word);

    /** Absorb a double bit pattern (solver tolerances etc.). */
    void updateDouble(double value);

    /** Finalize (the hasher may keep absorbing afterwards; digest() is
     *  a pure function of what has been absorbed so far). */
    Hash128 digest() const;

  private:
    std::uint64_t laneA_;
    std::uint64_t laneB_;
    std::uint64_t length_ = 0;
};

/** Digest of a tensor's shape and exact contents (bitwise). */
Hash128 hashTensor(const Tensor &t);

/** Absorb shape + contents into an existing hasher. */
void hashTensorInto(StreamHasher &hasher, const Tensor &t);

/**
 * Coarse input signature for warm-start keying: the tensor's shape
 * plus its mean and RMS quantized to a grid of `quantum`. Inputs that
 * are statistically close (same class / same sensor regime) land in
 * the same bucket even when their bytes differ, which is exactly what
 * schedule reuse wants; the schedule is a hint, not a contract, so
 * boundary flips only cost a cold search.
 */
std::uint64_t coarseSignature(const Tensor &t, double quantum);

} // namespace enode

#endif // ENODE_TENSOR_HASH_H
