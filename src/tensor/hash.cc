#include "tensor/hash.h"

#include <cmath>
#include <cstring>

namespace enode {

namespace {

// Independent lane seeds (fractional parts of sqrt(2) and sqrt(3)).
constexpr std::uint64_t kSeedA = 0x6A09E667F3BCC909ull;
constexpr std::uint64_t kSeedB = 0xBB67AE8584CAA73Bull;
// Distinct odd multipliers per lane (FNV prime and a splitmix step).
constexpr std::uint64_t kMulA = 0x100000001B3ull;
constexpr std::uint64_t kMulB = 0x9E3779B97F4A7C15ull;

} // namespace

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

StreamHasher::StreamHasher() : laneA_(kSeedA), laneB_(kSeedB) {}

void
StreamHasher::update(std::uint64_t word)
{
    laneA_ = (laneA_ ^ word) * kMulA;
    laneB_ = (laneB_ ^ mix64(word)) * kMulB;
    length_ += 8;
}

void
StreamHasher::updateDouble(double value)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value), "double is 64-bit");
    std::memcpy(&bits, &value, sizeof(bits));
    update(bits);
}

void
StreamHasher::update(const void *data, std::size_t bytes)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint64_t word;
    while (bytes >= 8) {
        std::memcpy(&word, p, 8);
        laneA_ = (laneA_ ^ word) * kMulA;
        laneB_ = (laneB_ ^ mix64(word)) * kMulB;
        p += 8;
        bytes -= 8;
        length_ += 8;
    }
    if (bytes > 0) {
        // Zero-padded tail word tagged with its length so "abc" and
        // "abc\0" cannot collide.
        word = 0;
        std::memcpy(&word, p, bytes);
        laneA_ = (laneA_ ^ word) * kMulA;
        laneB_ = (laneB_ ^ mix64(word ^ bytes)) * kMulB;
        length_ += bytes;
    }
}

void
StreamHasher::updateSized(const void *data, std::size_t bytes)
{
    update(static_cast<std::uint64_t>(bytes));
    update(data, bytes);
}

Hash128
StreamHasher::digest() const
{
    // Cross-mix the lanes with the absorbed length so truncated and
    // extended streams diverge, then avalanche each output word.
    Hash128 out;
    out.hi = mix64(laneA_ ^ mix64(laneB_ + length_));
    out.lo = mix64(laneB_ ^ mix64(laneA_ + (length_ << 1)));
    return out;
}

void
hashTensorInto(StreamHasher &hasher, const Tensor &t)
{
    hasher.update(static_cast<std::uint64_t>(t.shape().rank()));
    for (std::size_t i = 0; i < t.shape().rank(); i++)
        hasher.update(static_cast<std::uint64_t>(t.shape().dim(i)));
    hasher.update(t.data(), t.numel() * sizeof(float));
}

Hash128
hashTensor(const Tensor &t)
{
    StreamHasher hasher;
    hashTensorInto(hasher, t);
    return hasher.digest();
}

std::uint64_t
coarseSignature(const Tensor &t, double quantum)
{
    StreamHasher hasher;
    hasher.update(static_cast<std::uint64_t>(t.shape().rank()));
    for (std::size_t i = 0; i < t.shape().rank(); i++)
        hasher.update(static_cast<std::uint64_t>(t.shape().dim(i)));
    if (quantum <= 0.0)
        quantum = 1.0;
    // Quantized first and second moments: cheap (one pass), stable
    // under byte-level perturbation, and discriminative enough to keep
    // unrelated workloads out of each other's schedule buckets.
    double sum = 0.0, sumsq = 0.0;
    const float *p = t.data();
    const std::size_t n = t.numel();
    for (std::size_t i = 0; i < n; i++) {
        sum += p[i];
        sumsq += static_cast<double>(p[i]) * p[i];
    }
    const double mean = n > 0 ? sum / static_cast<double>(n) : 0.0;
    const double rms =
        n > 0 ? std::sqrt(sumsq / static_cast<double>(n)) : 0.0;
    // Non-finite moments (NaN/Inf elements) or moments past the int64
    // bucket range make llround unspecified and raise FE_INVALID; such
    // inputs get the "no signature" sentinel instead of a
    // platform-dependent bucket. The negated comparison also rejects
    // NaN.
    constexpr double kMaxBucket = 9.2e18; // just under 2^63
    const double mean_scaled = mean / quantum;
    const double rms_scaled = rms / quantum;
    if (!(std::fabs(mean_scaled) < kMaxBucket) ||
        !(std::fabs(rms_scaled) < kMaxBucket))
        return 0;
    const auto bucket = [](double v) {
        return static_cast<std::uint64_t>(std::llround(v));
    };
    hasher.update(bucket(mean_scaled));
    hasher.update(bucket(rms_scaled));
    return hasher.digest().lo;
}

} // namespace enode
