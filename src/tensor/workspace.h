#ifndef ENODE_TENSOR_WORKSPACE_H
#define ENODE_TENSOR_WORKSPACE_H

/**
 * @file
 * Thread-local recycling arena for Tensor storage.
 *
 * Every f evaluation of every integration trial creates and destroys a
 * handful of activation-sized tensors; with a plain allocator a single
 * adaptive solve performs thousands of heap round trips. The Workspace
 * keeps returned buffers in exact-size buckets and hands them back on
 * the next acquire, so after one warm-up pass the entire solver hot
 * path (stage states, f activations, error maps, checkpoints) runs
 * without touching the heap — the software analogue of the paper's
 * depth-first buffer reuse (Sec. IV.A), where intermediate states live
 * in fixed on-chip SRAM instead of being re-allocated from DRAM.
 *
 * The pool is thread-local: workers of the serving runtime each own a
 * private arena, so no locks are taken on the hot path and the TSan job
 * stays clean. Tensor buffers released on a different thread than they
 * were acquired on migrate to the releasing thread's pool — legitimate
 * for long-lived values that cross threads by design (a request's input
 * tensor dying on the serving worker that consumed it). Kernel
 * *scratch* must never migrate: a scratch buffer drifting from the pool
 * that minted it turns every later acquire on the origin thread into a
 * fresh heap miss, silently breaking the zero-allocation property the
 * moment kernels run tiled across the task pool. PooledScratch is the
 * pool-aware scratch path: it acquires from the executing thread's
 * arena, releases to the same arena, and asserts ownership on release.
 *
 * Capacity is bounded (per-bucket count and total bytes); beyond the
 * caps a released buffer is genuinely freed. `Workspace::stats()`
 * exposes hit/miss counters — a *miss* is a real heap allocation, which
 * is what the zero-allocation tests and benches assert on.
 */

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace enode {

/** Thread-local size-bucketed pool of float buffers. */
class Workspace
{
  public:
    /** Allocation accounting. A miss is an actual heap allocation. */
    struct Stats
    {
        std::uint64_t hits = 0;     ///< acquires served from the pool
        std::uint64_t misses = 0;   ///< acquires that hit the heap
        std::uint64_t releases = 0; ///< buffers returned to the pool
        std::uint64_t dropped = 0;  ///< releases freed due to caps
    };

    /** The calling thread's arena (constructed on first use). */
    static Workspace &local();

    /**
     * Take a buffer of exactly `n` floats. Contents are unspecified on a
     * pool hit; callers initialize explicitly (Tensor constructors do).
     */
    std::vector<float> acquire(std::size_t n);

    /** Return a buffer to the pool (or free it when over the caps). */
    void release(std::vector<float> &&buf);

    const Stats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

    /** Bytes currently held in the pool (free buffers only). */
    std::size_t bytesHeld() const { return bytesHeld_; }

    /** Free every pooled buffer (stats are kept). */
    void trim();

    /** Max buffers retained per size bucket. */
    static constexpr std::size_t kMaxPerBucket = 64;
    /** Max total bytes retained per thread. */
    static constexpr std::size_t kMaxBytesHeld = std::size_t{256} << 20;

    ~Workspace();
    Workspace(const Workspace &) = delete;
    Workspace &operator=(const Workspace &) = delete;

  private:
    Workspace();

    std::unordered_map<std::size_t, std::vector<std::vector<float>>>
        buckets_;
    std::size_t bytesHeld_ = 0;
    Stats stats_;
};

namespace detail {

/**
 * Pool-aware storage helpers used by Tensor. They are safe at any point
 * of the thread's lifetime: before the thread-local arena exists they
 * create it, and after it has been destroyed (static-destruction order)
 * they fall back to the plain heap.
 */
std::vector<float> acquireBuffer(std::size_t n);
void releaseBuffer(std::vector<float> &&buf);

/** The calling thread's arena, or nullptr outside its lifetime. */
Workspace *currentArena();

} // namespace detail

/**
 * RAII scratch buffer bound to the arena of the thread that constructs
 * it. The parallel kernels construct one inside each work chunk, so a
 * chunk's scratch always comes from — and returns to — the *executing*
 * worker's pool, keeping every arena's working set closed.
 *
 * Destruction on a different thread than construction is a bug (it
 * would leak buffers across arenas); the destructor asserts the owner.
 * Scratch handles are intentionally neither copyable nor movable so
 * they cannot outlive their chunk.
 */
class PooledScratch
{
  public:
    explicit PooledScratch(std::size_t n);
    ~PooledScratch();

    PooledScratch(const PooledScratch &) = delete;
    PooledScratch &operator=(const PooledScratch &) = delete;

    float *data() { return buf_.data(); }
    const float *data() const { return buf_.data(); }
    std::size_t size() const { return buf_.size(); }

  private:
    std::vector<float> buf_;
    Workspace *owner_; ///< arena of the constructing thread
};

} // namespace enode

#endif // ENODE_TENSOR_WORKSPACE_H
