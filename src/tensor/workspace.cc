#include "tensor/workspace.h"

#include "common/logging.h"

namespace enode {

namespace {

/**
 * Lifetime phase of the calling thread's arena. The flag itself is
 * trivially destructible, so it stays readable during static/thread
 * teardown after the Workspace object is gone.
 */
enum class TlsPhase : unsigned char
{
    Unborn, ///< arena not constructed yet — construct on demand
    Alive,  ///< arena usable
    Dead,   ///< arena destroyed — fall back to the heap
};

thread_local TlsPhase tls_phase = TlsPhase::Unborn;

} // namespace

Workspace::Workspace()
{
    tls_phase = TlsPhase::Alive;
}

Workspace::~Workspace()
{
    tls_phase = TlsPhase::Dead;
}

Workspace &
Workspace::local()
{
    static thread_local Workspace ws;
    return ws;
}

std::vector<float>
Workspace::acquire(std::size_t n)
{
    if (n > 0) {
        auto it = buckets_.find(n);
        if (it != buckets_.end() && !it->second.empty()) {
            std::vector<float> buf = std::move(it->second.back());
            it->second.pop_back();
            bytesHeld_ -= n * sizeof(float);
            stats_.hits++;
            return buf;
        }
    }
    stats_.misses++;
    return std::vector<float>(n);
}

void
Workspace::release(std::vector<float> &&buf)
{
    const std::size_t n = buf.size();
    if (n == 0)
        return;
    auto &bucket = buckets_[n];
    if (bucket.size() >= kMaxPerBucket ||
        bytesHeld_ + n * sizeof(float) > kMaxBytesHeld) {
        stats_.dropped++;
        return; // buf frees on scope exit
    }
    bytesHeld_ += n * sizeof(float);
    bucket.push_back(std::move(buf));
    stats_.releases++;
}

void
Workspace::trim()
{
    buckets_.clear();
    bytesHeld_ = 0;
}

namespace detail {

std::vector<float>
acquireBuffer(std::size_t n)
{
    if (tls_phase == TlsPhase::Dead)
        return std::vector<float>(n);
    return Workspace::local().acquire(n);
}

void
releaseBuffer(std::vector<float> &&buf)
{
    if (tls_phase != TlsPhase::Alive)
        return; // frees normally
    Workspace::local().release(std::move(buf));
}

Workspace *
currentArena()
{
    if (tls_phase == TlsPhase::Dead)
        return nullptr;
    return &Workspace::local();
}

} // namespace detail

PooledScratch::PooledScratch(std::size_t n)
    : buf_(detail::acquireBuffer(n)), owner_(detail::currentArena())
{
}

PooledScratch::~PooledScratch()
{
    ENODE_ASSERT(owner_ == detail::currentArena(),
                 "PooledScratch released on a different thread than it "
                 "was acquired on: scratch must stay on its worker");
    detail::releaseBuffer(std::move(buf_));
}

} // namespace enode
