#ifndef ENODE_TENSOR_TENSOR_H
#define ENODE_TENSOR_TENSOR_H

/**
 * @file
 * Dense float tensor, the data type for NODE states and NN activations.
 *
 * Layout is row-major over up to four dimensions interpreted as
 * (N, C, H, W) for images / feature maps, (C, H, W) for a single sample,
 * or arbitrary 1-2D shapes for vectors and matrices. The ODE solvers
 * treat a Tensor as a flat state vector; the NN layers interpret it
 * spatially. Storage is float32; FP16 datapath effects are modelled by
 * explicit quantization passes (see common/fp16.h) rather than by storing
 * halves, matching how an accelerator keeps FP32 accumulators with FP16
 * operands.
 */

#include <array>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace enode {

class Rng;

/**
 * Shape of a tensor: up to four extents, all positive.
 *
 * Extents live inline (no heap storage): temporary tensors are minted
 * by the thousand per solve on the trainer and solver hot paths, and a
 * heap-allocated dims vector per temporary would be the one allocation
 * the pooled float storage cannot hide. With inline extents a
 * pool-hit Tensor construction touches the heap zero times.
 */
class Shape
{
  public:
    static constexpr std::size_t kMaxRank = 4;

    /** Iterable, comparable view of the inline extents. */
    class DimsView
    {
      public:
        DimsView(const std::size_t *data, std::size_t size)
            : data_(data), size_(size)
        {
        }

        const std::size_t *begin() const { return data_; }
        const std::size_t *end() const { return data_ + size_; }
        std::size_t size() const { return size_; }
        std::size_t operator[](std::size_t i) const { return data_[i]; }

        bool operator==(const DimsView &other) const
        {
            if (size_ != other.size_)
                return false;
            for (std::size_t i = 0; i < size_; i++)
                if (data_[i] != other.data_[i])
                    return false;
            return true;
        }
        bool operator!=(const DimsView &other) const
        {
            return !(*this == other);
        }

      private:
        const std::size_t *data_;
        std::size_t size_;
    };

    Shape() = default;
    Shape(std::initializer_list<std::size_t> dims);
    explicit Shape(const std::vector<std::size_t> &dims);
    /** From a contiguous extent range (e.g. a dims() sub-range). */
    Shape(const std::size_t *begin, const std::size_t *end);

    std::size_t rank() const { return rank_; }
    std::size_t dim(std::size_t i) const;
    /** Total element count (1 for a rank-0 shape). */
    std::size_t numel() const;

    /** (n, d0, d1, ...) from (d0, d1, ...): batch-prepend an extent. */
    Shape prepended(std::size_t n) const;

    bool operator==(const Shape &other) const
    {
        return dims() == other.dims();
    }
    bool operator!=(const Shape &other) const { return !(*this == other); }

    /** "[2, 8, 64, 64]" for diagnostics. */
    std::string str() const;

    DimsView dims() const { return DimsView(dims_.data(), rank_); }

  private:
    std::array<std::size_t, kMaxRank> dims_{};
    std::size_t rank_ = 0;
};

/**
 * Dense row-major float tensor with value semantics.
 *
 * Storage is drawn from the thread-local Workspace arena
 * (tensor/workspace.h): construction reuses a recycled buffer of the
 * same size when one is available and destruction returns the buffer to
 * the pool, so steady-state solver loops allocate nothing from the
 * heap. Copy assignment into a tensor of equal element count reuses the
 * existing storage outright.
 */
class Tensor
{
  public:
    /** Empty tensor (rank 0, no storage). */
    Tensor() = default;

    ~Tensor();
    Tensor(const Tensor &other);
    Tensor &operator=(const Tensor &other);
    Tensor(Tensor &&other) noexcept;
    Tensor &operator=(Tensor &&other) noexcept;

    /** Zero-filled tensor of the given shape. */
    explicit Tensor(Shape shape);

    /** Constant-filled tensor. */
    Tensor(Shape shape, float fill);

    /** Adopt existing data; size must match the shape. */
    Tensor(Shape shape, std::vector<float> data);

    static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
    static Tensor full(Shape shape, float value);
    static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }
    /** I.i.d. normal entries from an explicit generator. */
    static Tensor randn(Shape shape, Rng &rng, float stddev = 1.0f);
    /** I.i.d. uniform entries in [lo, hi). */
    static Tensor uniform(Shape shape, Rng &rng, float lo, float hi);
    /** Tensor with the same shape as another, zero filled. */
    static Tensor zerosLike(const Tensor &other);

    const Shape &shape() const { return shape_; }
    std::size_t numel() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Flat element access with bounds check in debug paths. */
    float &at(std::size_t i);
    float at(std::size_t i) const;

    /** (c, h, w) access on a rank-3 tensor. */
    float &at(std::size_t c, std::size_t h, std::size_t w);
    float at(std::size_t c, std::size_t h, std::size_t w) const;

    /** (n, c, h, w) access on a rank-4 tensor. */
    float &at(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
    float at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

    /** View this storage under a different shape with equal numel. */
    Tensor reshaped(Shape shape) const;

    /**
     * Extract sample n along the leading (batch) dimension of a rank >= 2
     * tensor as a rank-reduced tensor, e.g. (N, C, H, W) -> (C, H, W) or
     * (N, D) -> (D).
     */
    Tensor sample(std::size_t n) const;

    /** Overwrite sample n along the leading (batch) dimension. */
    void setSample(std::size_t n, const Tensor &sample);

    void fill(float value);

    /** In-place scale by a scalar (alias of *=, named for workspaces). */
    void scale(float s) { *this *= s; }

    /**
     * Re-shape this tensor in place, reusing the existing storage when
     * the element count is unchanged and re-acquiring from the
     * workspace pool otherwise. Contents are unspecified after a
     * numel-changing resize.
     */
    void resize(const Shape &shape);

    /** Become an elementwise copy of src, reusing storage when possible. */
    void copyFrom(const Tensor &src);

    /** Release storage (back to the workspace pool); rank 0 afterwards. */
    void reset();

    /** In-place elementwise: this += other. Shapes must match. */
    Tensor &operator+=(const Tensor &other);
    /** In-place elementwise: this -= other. Shapes must match. */
    Tensor &operator-=(const Tensor &other);
    /** In-place scale: this *= s. */
    Tensor &operator*=(float s);

    Tensor operator+(const Tensor &other) const;
    Tensor operator-(const Tensor &other) const;
    Tensor operator*(float s) const;

    /** this += alpha * x (the BLAS axpy, the workhorse of RK updates). */
    void axpy(float alpha, const Tensor &x);

    /** Round every element through FP16 (models a 16-bit datapath). */
    void quantizeFp16();

    double sum() const;
    double mean() const;
    /** Euclidean norm over all elements. */
    double l2Norm() const;
    /** Largest |element|. */
    double maxAbs() const;

    /**
     * True when no element is NaN or infinite (vacuously true when
     * empty). The cheap screen the solver runs on accepted states and
     * the serving runtime runs on every response payload.
     */
    bool isFinite() const;

    /**
     * Euclidean norm restricted to rows [row_begin, row_end) of a rank-3
     * (C, H, W) tensor, across all channels. This is the primitive behind
     * priority processing: the error map is scanned row-window by
     * row-window (Sec. VII.B).
     */
    double rowWindowL2(std::size_t row_begin, std::size_t row_end) const;

    /** Largest elementwise |a - b|; shapes must match. */
    static double maxAbsDiff(const Tensor &a, const Tensor &b);

    /** True when every |a_i - b_i| <= atol + rtol * |b_i|. */
    static bool allClose(const Tensor &a, const Tensor &b,
                         double rtol = 1e-5, double atol = 1e-7);

  private:
    void checkSameShape(const Tensor &other, const char *op) const;

    Shape shape_;
    std::vector<float> data_;
};

} // namespace enode

#endif // ENODE_TENSOR_TENSOR_H
