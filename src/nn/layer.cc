#include "nn/layer.h"

#include "common/logging.h"

namespace enode {

void
Layer::forwardBatched(const Tensor &xs, Tensor &out)
{
    ENODE_ASSERT(xs.shape().rank() >= 2,
                 "forwardBatched needs a leading batch dim, got ",
                 xs.shape().str());
    ENODE_ASSERT(&out != &xs, "forwardBatched output aliases input");
    const std::size_t n = xs.shape().dim(0);
    const Shape out_sample = outputShape(
        Shape(xs.shape().dims().begin() + 1, xs.shape().dims().end()));
    out.resize(out_sample.prepended(n));
    for (std::size_t i = 0; i < n; i++)
        out.setSample(i, forward(xs.sample(i)));
}

void
Layer::zeroGrad()
{
    for (auto &slot : paramSlots())
        slot.grad->fill(0.0f);
}

std::size_t
Layer::paramCount()
{
    std::size_t n = 0;
    for (auto &slot : paramSlots())
        n += slot.param->numel();
    return n;
}

} // namespace enode
