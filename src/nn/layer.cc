#include "nn/layer.h"

namespace enode {

void
Layer::zeroGrad()
{
    for (auto &slot : paramSlots())
        slot.grad->fill(0.0f);
}

std::size_t
Layer::paramCount()
{
    std::size_t n = 0;
    for (auto &slot : paramSlots())
        n += slot.param->numel();
    return n;
}

} // namespace enode
