#include "nn/sequential.h"

#include "common/logging.h"
#include "nn/activation.h"
#include "nn/concat_time.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/norm.h"

namespace enode {

Layer &
Sequential::add(LayerPtr layer)
{
    ENODE_ASSERT(layer != nullptr, "null layer");
    layers_.push_back(std::move(layer));
    return *layers_.back();
}

Layer &
Sequential::layer(std::size_t i)
{
    ENODE_ASSERT(i < layers_.size(), "layer index out of range");
    return *layers_[i];
}

Tensor
Sequential::forward(const Tensor &x)
{
    Tensor cur = x;
    for (auto &l : layers_)
        cur = l->forward(cur);
    return cur;
}

void
Sequential::forwardBatched(const Tensor &xs, Tensor &out)
{
    ENODE_ASSERT(&out != &xs, "forwardBatched output aliases input");
    if (layers_.empty()) {
        out.copyFrom(xs);
        return;
    }
    // Ping-pong between two pooled activations; the last layer writes
    // straight into the caller's output buffer.
    Tensor ping, pong;
    Tensor *bufs[2] = {&ping, &pong};
    const Tensor *cur = &xs;
    for (std::size_t i = 0; i < layers_.size(); i++) {
        Tensor *dst = (i + 1 == layers_.size()) ? &out : bufs[i % 2];
        layers_[i]->forwardBatched(*cur, *dst);
        cur = dst;
    }
}

Tensor
Sequential::backward(const Tensor &grad_out)
{
    Tensor cur = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        cur = (*it)->backward(cur);
    return cur;
}

std::vector<ParamSlot>
Sequential::paramSlots()
{
    std::vector<ParamSlot> slots;
    for (std::size_t i = 0; i < layers_.size(); i++) {
        for (auto &slot : layers_[i]->paramSlots()) {
            slot.name = "layer" + std::to_string(i) + "." + slot.name;
            slots.push_back(slot);
        }
    }
    return slots;
}

std::string
Sequential::name() const
{
    std::string s = "Sequential[";
    for (std::size_t i = 0; i < layers_.size(); i++)
        s += (i ? ", " : "") + layers_[i]->name();
    return s + "]";
}

Shape
Sequential::outputShape(const Shape &input) const
{
    Shape cur = input;
    for (const auto &l : layers_)
        cur = l->outputShape(cur);
    return cur;
}

EmbeddedNet::EmbeddedNet(std::unique_ptr<Sequential> body)
    : body_(std::move(body))
{
    ENODE_ASSERT(body_ != nullptr && body_->size() > 0,
                 "EmbeddedNet needs a non-empty body");
    timeLayer_ = dynamic_cast<ConcatTime *>(&body_->layer(0));
    ENODE_ASSERT(timeLayer_ != nullptr,
                 "EmbeddedNet body must start with ConcatTime");
}

std::unique_ptr<EmbeddedNet>
EmbeddedNet::makeConvNet(std::size_t channels, std::size_t depth, Rng &rng)
{
    ENODE_ASSERT(depth >= 1, "conv f needs depth >= 1");
    auto body = std::make_unique<Sequential>();
    body->add(std::make_unique<ConcatTime>());
    for (std::size_t d = 0; d < depth; d++) {
        const std::size_t in_ch = d == 0 ? channels + 1 : channels;
        body->add(std::make_unique<Conv2d>(in_ch, channels, 3, rng));
        // GroupNorm groups: smallest of 8 and the channel count, so tiny
        // test models with few channels still normalize.
        const std::size_t groups = channels >= 8 ? 8 : 1;
        body->add(std::make_unique<GroupNorm>(channels, groups));
        // The last conv output is the derivative estimate; keep it
        // unbounded (no ReLU) so f can produce negative slopes.
        if (d + 1 < depth)
            body->add(std::make_unique<ReLU>());
    }
    return std::make_unique<EmbeddedNet>(std::move(body));
}

std::unique_ptr<EmbeddedNet>
EmbeddedNet::makeStreamableConvNet(std::size_t channels, std::size_t depth,
                                   Rng &rng)
{
    ENODE_ASSERT(depth >= 1, "conv f needs depth >= 1");
    auto body = std::make_unique<Sequential>();
    body->add(std::make_unique<ConcatTime>());
    for (std::size_t d = 0; d < depth; d++) {
        const std::size_t in_ch = d == 0 ? channels + 1 : channels;
        body->add(std::make_unique<Conv2d>(in_ch, channels, 3, rng));
        if (d + 1 < depth)
            body->add(std::make_unique<ReLU>());
    }
    return std::make_unique<EmbeddedNet>(std::move(body));
}

std::unique_ptr<EmbeddedNet>
EmbeddedNet::makeMlp(std::size_t dim, std::size_t hidden, std::size_t depth,
                     Rng &rng)
{
    ENODE_ASSERT(depth >= 1, "mlp f needs depth >= 1");
    auto body = std::make_unique<Sequential>();
    body->add(std::make_unique<ConcatTime>());
    std::size_t in_features = dim + 1;
    for (std::size_t d = 0; d < depth; d++) {
        body->add(std::make_unique<Linear>(in_features, hidden, rng));
        body->add(std::make_unique<Tanh>());
        in_features = hidden;
    }
    body->add(std::make_unique<Linear>(in_features, dim, rng));
    return std::make_unique<EmbeddedNet>(std::move(body));
}

Tensor
EmbeddedNet::eval(double t, const Tensor &h)
{
    timeLayer_->setTime(t);
    evalCount_++;
    return body_->forward(h);
}

void
EmbeddedNet::evalBatched(const std::vector<double> &ts, const Tensor &hs,
                         Tensor &out)
{
    ENODE_ASSERT(hs.shape().rank() >= 2 && hs.shape().dim(0) == ts.size(),
                 "evalBatched needs one time per stacked sample");
    timeLayer_->setBatchTimes(ts);
    evalCount_ += ts.size();
    body_->forwardBatched(hs, out);
}

Tensor
EmbeddedNet::vjp(const Tensor &adjoint)
{
    vjpCount_++;
    return body_->backward(adjoint);
}

} // namespace enode
