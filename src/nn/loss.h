#ifndef ENODE_NN_LOSS_H
#define ENODE_NN_LOSS_H

/**
 * @file
 * Loss functions with analytic gradients.
 *
 * The eNODE function unit computes the loss at the end of the forward
 * pass (Sec. V.A); in training the loss gradient seeds the adjoint
 * a(T) = dL/dh(T) of Eq. (4).
 */

#include <cstddef>
#include <utility>

#include "tensor/tensor.h"

namespace enode {

/** Value and gradient of a loss evaluation. */
struct LossResult
{
    double value;
    Tensor grad; // dL/d(prediction), same shape as the prediction
};

/** Mean squared error: mean over elements of (pred - target)^2. */
LossResult mseLoss(const Tensor &pred, const Tensor &target);

/**
 * Softmax cross-entropy over rank-1 logits.
 *
 * @param logits Unnormalized class scores, shape (num_classes).
 * @param label True class index.
 */
LossResult softmaxCrossEntropy(const Tensor &logits, std::size_t label);

/** Class prediction: argmax over rank-1 logits. */
std::size_t argmax(const Tensor &logits);

} // namespace enode

#endif // ENODE_NN_LOSS_H
