#include "nn/loss.h"

#include <cmath>

#include "common/logging.h"

namespace enode {

LossResult
mseLoss(const Tensor &pred, const Tensor &target)
{
    ENODE_ASSERT(pred.shape() == target.shape(), "mse shape mismatch: ",
                 pred.shape().str(), " vs ", target.shape().str());
    const std::size_t n = pred.numel();
    double acc = 0.0;
    Tensor grad(pred.shape());
    for (std::size_t i = 0; i < n; i++) {
        const double d = static_cast<double>(pred.at(i)) - target.at(i);
        acc += d * d;
        grad.at(i) = static_cast<float>(2.0 * d / n);
    }
    return {acc / n, std::move(grad)};
}

LossResult
softmaxCrossEntropy(const Tensor &logits, std::size_t label)
{
    ENODE_ASSERT(logits.shape().rank() == 1, "logits must be rank 1");
    const std::size_t n = logits.numel();
    ENODE_ASSERT(label < n, "label ", label, " out of ", n, " classes");

    // Stable softmax.
    float max_logit = logits.at(0);
    for (std::size_t i = 1; i < n; i++)
        max_logit = std::max(max_logit, logits.at(i));
    double denom = 0.0;
    for (std::size_t i = 0; i < n; i++)
        denom += std::exp(static_cast<double>(logits.at(i)) - max_logit);

    Tensor grad(logits.shape());
    for (std::size_t i = 0; i < n; i++) {
        const double p =
            std::exp(static_cast<double>(logits.at(i)) - max_logit) / denom;
        grad.at(i) = static_cast<float>(p - (i == label ? 1.0 : 0.0));
    }
    const double log_p_label =
        static_cast<double>(logits.at(label)) - max_logit - std::log(denom);
    return {-log_p_label, std::move(grad)};
}

std::size_t
argmax(const Tensor &logits)
{
    ENODE_ASSERT(logits.numel() > 0, "argmax of empty tensor");
    std::size_t best = 0;
    for (std::size_t i = 1; i < logits.numel(); i++)
        if (logits.at(i) > logits.at(best))
            best = i;
    return best;
}

} // namespace enode
