#ifndef ENODE_NN_SERIALIZE_H
#define ENODE_NN_SERIALIZE_H

/**
 * @file
 * Parameter checkpointing.
 *
 * Trained models (the embedded networks plus encoder/head) are saved to
 * a simple self-describing binary format and restored by parameter
 * name, so an edge deployment can train on-device (the paper's use
 * case), persist, and resume. The format:
 *
 *   magic "ENOD" | u32 version | u32 slot count
 *   per slot: u32 name length | name bytes
 *             u32 rank | u64 dims[rank]
 *             f32 data[numel]
 *
 * Loading matches slots by name and validates shapes; missing or extra
 * parameters are hard errors (a checkpoint must match its model).
 */

#include <string>
#include <vector>

#include "nn/layer.h"

namespace enode {

/** Write all slots' parameter tensors to the given file. */
void saveParameters(const std::string &path,
                    const std::vector<ParamSlot> &slots);

/**
 * Restore parameters into the given slots.
 *
 * @param path Checkpoint written by saveParameters.
 * @param slots The model's slots; every checkpoint entry must match a
 *        slot by name and shape, and vice versa.
 */
void loadParameters(const std::string &path,
                    const std::vector<ParamSlot> &slots);

/**
 * Memory-to-memory parameter copy between two structurally identical
 * models (e.g. a serving master and a worker replica). Slots are matched
 * positionally and validated by name and shape; any mismatch is a hard
 * error, exactly as for checkpoints. Source tensors are only read, so a
 * master's weights stay untouched while replicas synchronize from it.
 */
void copyParameters(const std::vector<ParamSlot> &from,
                    const std::vector<ParamSlot> &to);

} // namespace enode

#endif // ENODE_NN_SERIALIZE_H
