#include "nn/pool.h"

#include "common/logging.h"

namespace enode {

Tensor
GlobalAvgPool::forward(const Tensor &x)
{
    ENODE_ASSERT(x.shape().rank() == 3, "GlobalAvgPool expects CHW");
    cachedInputShape_ = x.shape();
    const std::size_t C = x.shape().dim(0);
    const std::size_t H = x.shape().dim(1);
    const std::size_t W = x.shape().dim(2);
    Tensor out(Shape{C});
    for (std::size_t c = 0; c < C; c++) {
        float acc = 0.0f;
        for (std::size_t h = 0; h < H; h++)
            for (std::size_t w = 0; w < W; w++)
                acc += x.at(c, h, w);
        out.at(c) = acc / static_cast<float>(H * W);
    }
    return out;
}

Tensor
GlobalAvgPool::backward(const Tensor &grad_out)
{
    ENODE_ASSERT(cachedInputShape_.rank() == 3,
                 "GlobalAvgPool backward before forward");
    const std::size_t C = cachedInputShape_.dim(0);
    const std::size_t H = cachedInputShape_.dim(1);
    const std::size_t W = cachedInputShape_.dim(2);
    Tensor grad_in(cachedInputShape_);
    for (std::size_t c = 0; c < C; c++) {
        const float g = grad_out.at(c) / static_cast<float>(H * W);
        for (std::size_t h = 0; h < H; h++)
            for (std::size_t w = 0; w < W; w++)
                grad_in.at(c, h, w) = g;
    }
    return grad_in;
}

Shape
GlobalAvgPool::outputShape(const Shape &input) const
{
    ENODE_ASSERT(input.rank() == 3, "GlobalAvgPool expects CHW");
    return Shape{input.dim(0)};
}

Tensor
AvgPool2x2::forward(const Tensor &x)
{
    ENODE_ASSERT(x.shape().rank() == 3, "AvgPool2x2 expects CHW");
    ENODE_ASSERT(x.shape().dim(1) % 2 == 0 && x.shape().dim(2) % 2 == 0,
                 "AvgPool2x2 needs even H and W, got ", x.shape().str());
    cachedInputShape_ = x.shape();
    const std::size_t C = x.shape().dim(0);
    const std::size_t H = x.shape().dim(1);
    const std::size_t W = x.shape().dim(2);
    Tensor out(Shape{C, H / 2, W / 2});
    for (std::size_t c = 0; c < C; c++)
        for (std::size_t h = 0; h < H / 2; h++)
            for (std::size_t w = 0; w < W / 2; w++)
                out.at(c, h, w) =
                    0.25f * (x.at(c, 2 * h, 2 * w) + x.at(c, 2 * h, 2 * w + 1) +
                             x.at(c, 2 * h + 1, 2 * w) +
                             x.at(c, 2 * h + 1, 2 * w + 1));
    return out;
}

Tensor
AvgPool2x2::backward(const Tensor &grad_out)
{
    ENODE_ASSERT(cachedInputShape_.rank() == 3,
                 "AvgPool2x2 backward before forward");
    Tensor grad_in(cachedInputShape_);
    const std::size_t C = cachedInputShape_.dim(0);
    const std::size_t H = cachedInputShape_.dim(1);
    const std::size_t W = cachedInputShape_.dim(2);
    for (std::size_t c = 0; c < C; c++) {
        for (std::size_t h = 0; h < H / 2; h++) {
            for (std::size_t w = 0; w < W / 2; w++) {
                const float g = 0.25f * grad_out.at(c, h, w);
                grad_in.at(c, 2 * h, 2 * w) = g;
                grad_in.at(c, 2 * h, 2 * w + 1) = g;
                grad_in.at(c, 2 * h + 1, 2 * w) = g;
                grad_in.at(c, 2 * h + 1, 2 * w + 1) = g;
            }
        }
    }
    return grad_in;
}

Shape
AvgPool2x2::outputShape(const Shape &input) const
{
    ENODE_ASSERT(input.rank() == 3, "AvgPool2x2 expects CHW");
    return Shape{input.dim(0), input.dim(1) / 2, input.dim(2) / 2};
}

Tensor
Flatten::forward(const Tensor &x)
{
    cachedInputShape_ = x.shape();
    return x.reshaped(Shape{x.numel()});
}

Tensor
Flatten::backward(const Tensor &grad_out)
{
    ENODE_ASSERT(cachedInputShape_.rank() > 0,
                 "Flatten backward before forward");
    return grad_out.reshaped(cachedInputShape_);
}

Shape
Flatten::outputShape(const Shape &input) const
{
    return Shape{input.numel()};
}

} // namespace enode
