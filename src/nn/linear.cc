#include "nn/linear.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/simd.h"

namespace enode {

namespace {

/**
 * out[o] = bias[o] + weight[o] . x — the Linear matvec, one fixed-lane
 * SIMD dot per output row. Solo forward and the batched per-sample loop
 * both call exactly this, so a batched solve reproduces the solo
 * outputs bitwise at every batch size (the batched-vs-solo contract the
 * runtime tests pin), with no scalar-remainder cliff at small batches.
 */
void
matvec(const SimdOps &ops, const float *wd, const float *bd, std::size_t O,
       std::size_t I, const float *x, float *out)
{
    for (std::size_t o = 0; o < O; o++) {
        const float sum = ops.dot(wd + o * I, x, I);
        out[o] = bd ? bd[o] + sum : sum;
    }
}

} // namespace

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng &rng,
               bool with_bias)
    : inFeatures_(in_features),
      outFeatures_(out_features),
      withBias_(with_bias),
      weightGrad_(Shape{out_features, in_features})
{
    const float bound =
        static_cast<float>(std::sqrt(6.0 / static_cast<double>(in_features)));
    weight_ = Tensor::uniform(Shape{out_features, in_features}, rng, -bound,
                              bound);
    if (withBias_) {
        bias_ = Tensor::uniform(Shape{out_features}, rng, -bound, bound);
        biasGrad_ = Tensor(Shape{out_features});
    }
}

Tensor
Linear::forward(const Tensor &x)
{
    ENODE_ASSERT(x.shape().rank() == 1 && x.shape().dim(0) == inFeatures_,
                 "Linear expects (", inFeatures_, "), got ", x.shape().str());
    cachedInput_ = x;
    Tensor out(Shape{outFeatures_});
    matvec(simdOps(), weight_.data(), withBias_ ? bias_.data() : nullptr,
           outFeatures_, inFeatures_, x.data(), out.data());
    return out;
}

void
Linear::forwardBatched(const Tensor &xs, Tensor &out)
{
    ENODE_ASSERT(xs.shape().rank() == 2 && xs.shape().dim(1) == inFeatures_,
                 "batched Linear expects (n, ", inFeatures_, "), got ",
                 xs.shape().str());
    const std::size_t n = xs.shape().dim(0);
    out.resize(Shape{n, outFeatures_});
    const float *xd = xs.data();
    float *od = out.data();

    // Per-sample matvec, the exact solo kernel. The previous scheme
    // blocked samples eight at a time through a transposed scratch to
    // manufacture SIMD width from sample parallelism, which left every
    // batch smaller than eight (and every remainder) on a scalar path —
    // the source of the non-monotone serving-throughput dip at batch 4.
    // With the dot itself vectorized through the fixed-lane SIMD
    // kernel, width comes from the feature dimension instead and every
    // batch size takes the same path.
    const SimdOps &ops = simdOps();
    const float *bd = withBias_ ? bias_.data() : nullptr;
    for (std::size_t s = 0; s < n; s++)
        matvec(ops, weight_.data(), bd, outFeatures_, inFeatures_,
               xd + s * inFeatures_, od + s * outFeatures_);
}

Tensor
Linear::backward(const Tensor &grad_out)
{
    ENODE_ASSERT(!cachedInput_.empty(), "Linear backward before forward");
    ENODE_ASSERT(grad_out.shape().rank() == 1 &&
                     grad_out.shape().dim(0) == outFeatures_,
                 "Linear grad_out shape mismatch");

    for (std::size_t o = 0; o < outFeatures_; o++) {
        const float g = grad_out.at(o);
        float *gw_row = weightGrad_.data() + o * inFeatures_;
        for (std::size_t i = 0; i < inFeatures_; i++)
            gw_row[i] += g * cachedInput_.at(i);
        if (withBias_)
            biasGrad_.at(o) += g;
    }

    Tensor grad_in(Shape{inFeatures_});
    for (std::size_t i = 0; i < inFeatures_; i++) {
        float acc = 0.0f;
        for (std::size_t o = 0; o < outFeatures_; o++)
            acc += weight_.data()[o * inFeatures_ + i] * grad_out.at(o);
        grad_in.at(i) = acc;
    }
    return grad_in;
}

std::vector<ParamSlot>
Linear::paramSlots()
{
    std::vector<ParamSlot> slots;
    slots.push_back({"weight", &weight_, &weightGrad_});
    if (withBias_)
        slots.push_back({"bias", &bias_, &biasGrad_});
    return slots;
}

std::string
Linear::name() const
{
    return "Linear(" + std::to_string(inFeatures_) + "->" +
           std::to_string(outFeatures_) + ")";
}

Shape
Linear::outputShape(const Shape &input) const
{
    ENODE_ASSERT(input.rank() == 1 && input.dim(0) == inFeatures_,
                 "Linear input shape mismatch");
    return Shape{outFeatures_};
}

} // namespace enode
