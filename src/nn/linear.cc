#include "nn/linear.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace enode {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng &rng,
               bool with_bias)
    : inFeatures_(in_features),
      outFeatures_(out_features),
      withBias_(with_bias),
      weightGrad_(Shape{out_features, in_features})
{
    const float bound =
        static_cast<float>(std::sqrt(6.0 / static_cast<double>(in_features)));
    weight_ = Tensor::uniform(Shape{out_features, in_features}, rng, -bound,
                              bound);
    if (withBias_) {
        bias_ = Tensor::uniform(Shape{out_features}, rng, -bound, bound);
        biasGrad_ = Tensor(Shape{out_features});
    }
}

Tensor
Linear::forward(const Tensor &x)
{
    ENODE_ASSERT(x.shape().rank() == 1 && x.shape().dim(0) == inFeatures_,
                 "Linear expects (", inFeatures_, "), got ", x.shape().str());
    cachedInput_ = x;
    Tensor out(Shape{outFeatures_});
    for (std::size_t o = 0; o < outFeatures_; o++) {
        float acc = withBias_ ? bias_.at(o) : 0.0f;
        const float *wrow = weight_.data() + o * inFeatures_;
        for (std::size_t i = 0; i < inFeatures_; i++)
            acc += wrow[i] * x.at(i);
        out.at(o) = acc;
    }
    return out;
}

Tensor
Linear::backward(const Tensor &grad_out)
{
    ENODE_ASSERT(!cachedInput_.empty(), "Linear backward before forward");
    ENODE_ASSERT(grad_out.shape().rank() == 1 &&
                     grad_out.shape().dim(0) == outFeatures_,
                 "Linear grad_out shape mismatch");

    for (std::size_t o = 0; o < outFeatures_; o++) {
        const float g = grad_out.at(o);
        float *gw_row = weightGrad_.data() + o * inFeatures_;
        for (std::size_t i = 0; i < inFeatures_; i++)
            gw_row[i] += g * cachedInput_.at(i);
        if (withBias_)
            biasGrad_.at(o) += g;
    }

    Tensor grad_in(Shape{inFeatures_});
    for (std::size_t i = 0; i < inFeatures_; i++) {
        float acc = 0.0f;
        for (std::size_t o = 0; o < outFeatures_; o++)
            acc += weight_.data()[o * inFeatures_ + i] * grad_out.at(o);
        grad_in.at(i) = acc;
    }
    return grad_in;
}

std::vector<ParamSlot>
Linear::paramSlots()
{
    std::vector<ParamSlot> slots;
    slots.push_back({"weight", &weight_, &weightGrad_});
    if (withBias_)
        slots.push_back({"bias", &bias_, &biasGrad_});
    return slots;
}

std::string
Linear::name() const
{
    return "Linear(" + std::to_string(inFeatures_) + "->" +
           std::to_string(outFeatures_) + ")";
}

Shape
Linear::outputShape(const Shape &input) const
{
    ENODE_ASSERT(input.rank() == 1 && input.dim(0) == inFeatures_,
                 "Linear input shape mismatch");
    return Shape{outFeatures_};
}

} // namespace enode
