#include "nn/linear.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "tensor/workspace.h"

namespace enode {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng &rng,
               bool with_bias)
    : inFeatures_(in_features),
      outFeatures_(out_features),
      withBias_(with_bias),
      weightGrad_(Shape{out_features, in_features})
{
    const float bound =
        static_cast<float>(std::sqrt(6.0 / static_cast<double>(in_features)));
    weight_ = Tensor::uniform(Shape{out_features, in_features}, rng, -bound,
                              bound);
    if (withBias_) {
        bias_ = Tensor::uniform(Shape{out_features}, rng, -bound, bound);
        biasGrad_ = Tensor(Shape{out_features});
    }
}

Tensor
Linear::forward(const Tensor &x)
{
    ENODE_ASSERT(x.shape().rank() == 1 && x.shape().dim(0) == inFeatures_,
                 "Linear expects (", inFeatures_, "), got ", x.shape().str());
    cachedInput_ = x;
    Tensor out(Shape{outFeatures_});
    for (std::size_t o = 0; o < outFeatures_; o++) {
        float acc = withBias_ ? bias_.at(o) : 0.0f;
        const float *wrow = weight_.data() + o * inFeatures_;
        for (std::size_t i = 0; i < inFeatures_; i++)
            acc += wrow[i] * x.at(i);
        out.at(o) = acc;
    }
    return out;
}

void
Linear::forwardBatched(const Tensor &xs, Tensor &out)
{
    ENODE_ASSERT(xs.shape().rank() == 2 && xs.shape().dim(1) == inFeatures_,
                 "batched Linear expects (n, ", inFeatures_, "), got ",
                 xs.shape().str());
    const std::size_t n = xs.shape().dim(0);
    out.resize(Shape{n, outFeatures_});
    const float *xd = xs.data();
    float *od = out.data();

    // Block samples eight at a time: the solo kernel's inner loop is one
    // serial float accumulation chain per output (latency-bound, and not
    // reorderable without changing bits), but eight samples carry eight
    // INDEPENDENT chains that advance in lockstep over i — the same
    // per-sample accumulation order, now with 8-way ILP/SIMD. The block
    // of inputs is first transposed into scratch so the s-sweep at each
    // i is one contiguous vectorizable load.
    constexpr std::size_t kBlock = 8;
    std::size_t n0 = 0;
    if (n >= kBlock) {
        PooledScratch scratch(inFeatures_ * kBlock);
        float *xt = scratch.data();
        for (; n0 + kBlock <= n; n0 += kBlock) {
            for (std::size_t i = 0; i < inFeatures_; i++)
                for (std::size_t s = 0; s < kBlock; s++)
                    xt[i * kBlock + s] = xd[(n0 + s) * inFeatures_ + i];
            for (std::size_t o = 0; o < outFeatures_; o++) {
                float acc[kBlock];
                const float init = withBias_ ? bias_.at(o) : 0.0f;
                for (std::size_t s = 0; s < kBlock; s++)
                    acc[s] = init;
                const float *wrow = weight_.data() + o * inFeatures_;
                for (std::size_t i = 0; i < inFeatures_; i++) {
                    const float wv = wrow[i];
                    const float *xrow = xt + i * kBlock;
                    for (std::size_t s = 0; s < kBlock; s++)
                        acc[s] += wv * xrow[s];
                }
                for (std::size_t s = 0; s < kBlock; s++)
                    od[(n0 + s) * outFeatures_ + o] = acc[s];
            }
        }
    }
    // Remainder samples: the solo kernel verbatim.
    for (; n0 < n; n0++) {
        const float *x = xd + n0 * inFeatures_;
        float *orow = od + n0 * outFeatures_;
        for (std::size_t o = 0; o < outFeatures_; o++) {
            float acc = withBias_ ? bias_.at(o) : 0.0f;
            const float *wrow = weight_.data() + o * inFeatures_;
            for (std::size_t i = 0; i < inFeatures_; i++)
                acc += wrow[i] * x[i];
            orow[o] = acc;
        }
    }
}

Tensor
Linear::backward(const Tensor &grad_out)
{
    ENODE_ASSERT(!cachedInput_.empty(), "Linear backward before forward");
    ENODE_ASSERT(grad_out.shape().rank() == 1 &&
                     grad_out.shape().dim(0) == outFeatures_,
                 "Linear grad_out shape mismatch");

    for (std::size_t o = 0; o < outFeatures_; o++) {
        const float g = grad_out.at(o);
        float *gw_row = weightGrad_.data() + o * inFeatures_;
        for (std::size_t i = 0; i < inFeatures_; i++)
            gw_row[i] += g * cachedInput_.at(i);
        if (withBias_)
            biasGrad_.at(o) += g;
    }

    Tensor grad_in(Shape{inFeatures_});
    for (std::size_t i = 0; i < inFeatures_; i++) {
        float acc = 0.0f;
        for (std::size_t o = 0; o < outFeatures_; o++)
            acc += weight_.data()[o * inFeatures_ + i] * grad_out.at(o);
        grad_in.at(i) = acc;
    }
    return grad_in;
}

std::vector<ParamSlot>
Linear::paramSlots()
{
    std::vector<ParamSlot> slots;
    slots.push_back({"weight", &weight_, &weightGrad_});
    if (withBias_)
        slots.push_back({"bias", &bias_, &biasGrad_});
    return slots;
}

std::string
Linear::name() const
{
    return "Linear(" + std::to_string(inFeatures_) + "->" +
           std::to_string(outFeatures_) + ")";
}

Shape
Linear::outputShape(const Shape &input) const
{
    ENODE_ASSERT(input.rank() == 1 && input.dim(0) == inFeatures_,
                 "Linear input shape mismatch");
    return Shape{outFeatures_};
}

} // namespace enode
