#ifndef ENODE_NN_CONV2D_H
#define ENODE_NN_CONV2D_H

/**
 * @file
 * 3x3 same-padding convolution with full forward/backward support.
 *
 * This is the layer the eNODE NN core accelerates (Sec. VI). Three
 * computations share the PE array in hardware and are exposed here as
 * separate free functions so both the reference model and the
 * cycle-accurate simulator can call them:
 *
 *  - forward convolution              (inference / forward pass)
 *  - backward-data convolution        (adjoint; flipped kernels with the
 *                                      roles of C and M swapped, Fig. 9c)
 *  - backward-weights computation     (dL/dW from input x and grad_out)
 *
 * The Conv2d Layer wraps the three into the Layer interface with input
 * caching and gradient accumulation.
 */

#include <cstddef>

#include "nn/layer.h"
#include "tensor/tensor.h"

namespace enode {

class Rng;

/**
 * Forward 2-D convolution, stride 1, same (zero) padding.
 *
 * @param x Input of shape (C, H, W).
 * @param weight Kernels of shape (M, C, K, K) with odd K.
 * @param bias Optional per-output-channel bias of shape (M); may be empty.
 * @return Output of shape (M, H, W).
 */
Tensor convForward(const Tensor &x, const Tensor &weight, const Tensor &bias);

/**
 * Backward-data convolution: gradient w.r.t. the input.
 *
 * Mathematically a convolution of grad_out with spatially flipped
 * kernels and C/M roles swapped — exactly the computation the unified
 * NN core maps onto the same PE groups and adder tree as the forward
 * pass (Fig. 9(c)).
 *
 * @param grad_out Gradient w.r.t. the output, shape (M, H, W).
 * @param weight Kernels of shape (M, C, K, K).
 * @return Gradient w.r.t. the input, shape (C, H, W).
 */
Tensor convBackwardData(const Tensor &grad_out, const Tensor &weight);

/**
 * Backward-weights: gradient w.r.t. the kernels.
 *
 * @param x The forward input, shape (C, H, W).
 * @param grad_out Gradient w.r.t. the output, shape (M, H, W).
 * @param kernel Kernel extent K (odd).
 * @return Gradient w.r.t. weight, shape (M, C, K, K).
 */
Tensor convBackwardWeights(const Tensor &x, const Tensor &grad_out,
                           std::size_t kernel);

/**
 * Per-output-channel bias gradient: sum of grad_out over H and W.
 *
 * @param grad_out Gradient w.r.t. the output, shape (M, H, W).
 * @return Gradient w.r.t. bias, shape (M).
 */
Tensor convBackwardBias(const Tensor &grad_out);

/**
 * In-place variants: write into a caller-owned output tensor, which is
 * resized (storage reused when the element count matches) — the
 * zero-allocation entry points the solver workspaces use.
 */
void convForwardInto(Tensor &out, const Tensor &x, const Tensor &weight,
                     const Tensor &bias);
void convBackwardDataInto(Tensor &grad_x, const Tensor &grad_out,
                          const Tensor &weight);
void convBackwardWeightsInto(Tensor &grad_w, const Tensor &x,
                             const Tensor &grad_out, std::size_t kernel);

/**
 * Batched variants over a leading batch dimension: xs / grad_out are
 * (N, C, H, W) / (N, M, H, W) and the outputs gain the same leading N.
 * The path heuristic runs once per batch, backward-data packs the
 * flipped weights ONCE per batch (amortizing the per-sample packing
 * cost the serving batcher exists to eliminate), and each sample then
 * runs through the identical per-sample cores — so every sample's
 * output is bitwise identical to the solo entry points.
 */
void convForwardBatchedInto(Tensor &out, const Tensor &xs,
                            const Tensor &weight, const Tensor &bias);
void convBackwardDataBatchedInto(Tensor &grad_x, const Tensor &grad_out,
                                 const Tensor &weight);

namespace conv {

/** Forward implementation selected by the shape heuristic. */
enum class Path
{
    Direct,     ///< register-tiled direct convolution (fused taps)
    Im2colGemm, ///< im2col lowering + blocked GEMM
};

/** The path convForward would take for these shapes. */
Path forwardPathFor(std::size_t in_channels, std::size_t out_channels,
                    std::size_t height, std::size_t width,
                    std::size_t kernel);

/** Force the direct path (exposed for equivalence tests and benches). */
void forwardDirect(Tensor &out, const Tensor &x, const Tensor &weight,
                   const Tensor &bias);

/** Force the im2col+GEMM path (exposed for tests and benches). */
void forwardIm2colGemm(Tensor &out, const Tensor &x, const Tensor &weight,
                       const Tensor &bias);

} // namespace conv

/**
 * The original scalar kernels, retained verbatim as the ground truth
 * for equivalence testing of the blocked/vectorized kernels above (and
 * as the baseline the micro-benchmarks report speedups against).
 */
namespace reference {

Tensor convForward(const Tensor &x, const Tensor &weight, const Tensor &bias);
Tensor convBackwardData(const Tensor &grad_out, const Tensor &weight);
Tensor convBackwardWeights(const Tensor &x, const Tensor &grad_out,
                           std::size_t kernel);

} // namespace reference

/** 3x3 (or KxK) same convolution layer with learned weight and bias. */
class Conv2d : public Layer
{
  public:
    /**
     * @param in_channels C.
     * @param out_channels M.
     * @param kernel K (odd; the eNODE prototype uses 3).
     * @param rng Generator for Kaiming-uniform initialization.
     * @param with_bias Whether to learn a per-channel bias.
     */
    Conv2d(std::size_t in_channels, std::size_t out_channels,
           std::size_t kernel, Rng &rng, bool with_bias = true);

    Tensor forward(const Tensor &x) override;
    void forwardBatched(const Tensor &xs, Tensor &out) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<ParamSlot> paramSlots() override;
    std::string name() const override;
    Shape outputShape(const Shape &input) const override;

    std::size_t inChannels() const { return inChannels_; }
    std::size_t outChannels() const { return outChannels_; }
    std::size_t kernel() const { return kernel_; }

    Tensor &weight() { return weight_; }
    const Tensor &weight() const { return weight_; }
    Tensor &bias() { return bias_; }
    const Tensor &bias() const { return bias_; }

  private:
    std::size_t inChannels_;
    std::size_t outChannels_;
    std::size_t kernel_;
    bool withBias_;

    Tensor weight_;     // (M, C, K, K)
    Tensor weightGrad_; // accumulated
    Tensor bias_;       // (M) or empty
    Tensor biasGrad_;

    Tensor cachedInput_; // forward input, needed by backward-weights
};

} // namespace enode

#endif // ENODE_NN_CONV2D_H
