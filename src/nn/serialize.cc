#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>

#include "common/logging.h"

namespace enode {

namespace {

constexpr char kMagic[4] = {'E', 'N', 'O', 'D'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void
writeValue(std::ostream &out, T value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readValue(std::istream &in, const std::string &path)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    if (!in)
        ENODE_FATAL("truncated checkpoint '", path, "'");
    return value;
}

} // namespace

void
saveParameters(const std::string &path, const std::vector<ParamSlot> &slots)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        ENODE_FATAL("cannot open '", path, "' for writing");

    out.write(kMagic, sizeof(kMagic));
    writeValue<std::uint32_t>(out, kVersion);
    writeValue<std::uint32_t>(out, static_cast<std::uint32_t>(slots.size()));
    for (const auto &slot : slots) {
        ENODE_ASSERT(slot.param != nullptr, "null param in slot '",
                     slot.name, "'");
        writeValue<std::uint32_t>(
            out, static_cast<std::uint32_t>(slot.name.size()));
        out.write(slot.name.data(),
                  static_cast<std::streamsize>(slot.name.size()));
        const auto &shape = slot.param->shape();
        writeValue<std::uint32_t>(out,
                                  static_cast<std::uint32_t>(shape.rank()));
        for (std::size_t d = 0; d < shape.rank(); d++)
            writeValue<std::uint64_t>(out, shape.dim(d));
        out.write(reinterpret_cast<const char *>(slot.param->data()),
                  static_cast<std::streamsize>(slot.param->numel() *
                                               sizeof(float)));
    }
    if (!out)
        ENODE_FATAL("write to '", path, "' failed");
}

void
loadParameters(const std::string &path, const std::vector<ParamSlot> &slots)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        ENODE_FATAL("cannot open checkpoint '", path, "'");

    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        ENODE_FATAL("'", path, "' is not an eNODE checkpoint");
    const auto version = readValue<std::uint32_t>(in, path);
    if (version != kVersion)
        ENODE_FATAL("checkpoint version ", version, " unsupported");
    const auto count = readValue<std::uint32_t>(in, path);
    if (count != slots.size())
        ENODE_FATAL("checkpoint has ", count, " parameters, model has ",
                    slots.size());

    std::map<std::string, const ParamSlot *> by_name;
    for (const auto &slot : slots) {
        const bool inserted =
            by_name.emplace(slot.name, &slot).second;
        ENODE_ASSERT(inserted, "duplicate slot name '", slot.name, "'");
    }

    for (std::uint32_t i = 0; i < count; i++) {
        const auto name_len = readValue<std::uint32_t>(in, path);
        std::string name(name_len, '\0');
        in.read(name.data(), name_len);
        if (!in)
            ENODE_FATAL("truncated checkpoint '", path, "'");

        auto it = by_name.find(name);
        if (it == by_name.end())
            ENODE_FATAL("checkpoint parameter '", name,
                        "' not found in the model");
        const ParamSlot &slot = *it->second;

        const auto rank = readValue<std::uint32_t>(in, path);
        std::vector<std::size_t> dims(rank);
        for (auto &d : dims)
            d = static_cast<std::size_t>(readValue<std::uint64_t>(in, path));
        const Shape shape{dims};
        if (shape != slot.param->shape())
            ENODE_FATAL("shape mismatch for '", name, "': checkpoint ",
                        shape.str(), " vs model ",
                        slot.param->shape().str());

        in.read(reinterpret_cast<char *>(slot.param->data()),
                static_cast<std::streamsize>(slot.param->numel() *
                                             sizeof(float)));
        if (!in)
            ENODE_FATAL("truncated checkpoint '", path, "'");
    }
}

void
copyParameters(const std::vector<ParamSlot> &from,
               const std::vector<ParamSlot> &to)
{
    if (from.size() != to.size())
        ENODE_FATAL("parameter copy between models with ", from.size(),
                    " vs ", to.size(), " slots");
    for (std::size_t i = 0; i < from.size(); i++) {
        const ParamSlot &src = from[i];
        const ParamSlot &dst = to[i];
        ENODE_ASSERT(src.param != nullptr && dst.param != nullptr,
                     "null param in slot '", src.name, "'");
        if (src.name != dst.name)
            ENODE_FATAL("slot ", i, " name mismatch: '", src.name,
                        "' vs '", dst.name, "'");
        if (src.param->shape() != dst.param->shape())
            ENODE_FATAL("shape mismatch for '", src.name, "': ",
                        src.param->shape().str(), " vs ",
                        dst.param->shape().str());
        const Tensor &source = *src.param;
        std::memcpy(dst.param->data(), source.data(),
                    source.numel() * sizeof(float));
    }
}

} // namespace enode
