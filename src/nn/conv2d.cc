#include "nn/conv2d.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace enode {

Tensor
convBackwardBias(const Tensor &grad_out)
{
    ENODE_ASSERT(grad_out.shape().rank() == 3, "grad_out must be MHW");
    const std::size_t M = grad_out.shape().dim(0);
    const std::size_t HW = grad_out.shape().dim(1) * grad_out.shape().dim(2);
    Tensor grad_b(Shape{M});
    const float *gd = grad_out.data();
    for (std::size_t m = 0; m < M; m++) {
        const float *g_map = gd + m * HW;
        float acc = 0.0f;
        for (std::size_t i = 0; i < HW; i++)
            acc += g_map[i];
        grad_b.at(m) = acc;
    }
    return grad_b;
}

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, Rng &rng, bool with_bias)
    : inChannels_(in_channels),
      outChannels_(out_channels),
      kernel_(kernel),
      withBias_(with_bias),
      weightGrad_(Shape{out_channels, in_channels, kernel, kernel})
{
    ENODE_ASSERT(kernel % 2 == 1, "Conv2d kernel must be odd");
    // Kaiming-uniform fan-in initialization, standard for ReLU nets.
    const double fan_in =
        static_cast<double>(in_channels) * kernel * kernel;
    const float bound = static_cast<float>(std::sqrt(6.0 / fan_in));
    weight_ = Tensor::uniform(Shape{out_channels, in_channels, kernel, kernel},
                              rng, -bound, bound);
    if (withBias_) {
        bias_ = Tensor::uniform(Shape{out_channels}, rng, -bound, bound);
        biasGrad_ = Tensor(Shape{out_channels});
    }
}

Tensor
Conv2d::forward(const Tensor &x)
{
    cachedInput_ = x;
    return convForward(x, weight_, bias_);
}

void
Conv2d::forwardBatched(const Tensor &xs, Tensor &out)
{
    // Inference-only: does not populate the backward cache.
    convForwardBatchedInto(out, xs, weight_, bias_);
}

Tensor
Conv2d::backward(const Tensor &grad_out)
{
    ENODE_ASSERT(!cachedInput_.empty(), "Conv2d backward before forward");
    weightGrad_ += convBackwardWeights(cachedInput_, grad_out, kernel_);
    if (withBias_)
        biasGrad_ += convBackwardBias(grad_out);
    return convBackwardData(grad_out, weight_);
}

std::vector<ParamSlot>
Conv2d::paramSlots()
{
    std::vector<ParamSlot> slots;
    slots.push_back({"weight", &weight_, &weightGrad_});
    if (withBias_)
        slots.push_back({"bias", &bias_, &biasGrad_});
    return slots;
}

std::string
Conv2d::name() const
{
    return "Conv2d(" + std::to_string(inChannels_) + "->" +
           std::to_string(outChannels_) + ", k=" + std::to_string(kernel_) +
           ")";
}

Shape
Conv2d::outputShape(const Shape &input) const
{
    ENODE_ASSERT(input.rank() == 3, "Conv2d input must be CHW");
    ENODE_ASSERT(input.dim(0) == inChannels_, "Conv2d expects C=",
                 inChannels_, ", got ", input.dim(0));
    return Shape{outChannels_, input.dim(1), input.dim(2)};
}

} // namespace enode
