#include "nn/norm.h"

#include <cmath>

#include "common/logging.h"

namespace enode {

GroupNorm::GroupNorm(std::size_t channels, std::size_t groups, float eps)
    : channels_(channels),
      groups_(groups),
      eps_(eps),
      gamma_(Shape{channels}, 1.0f),
      gammaGrad_(Shape{channels}),
      beta_(Shape{channels}),
      betaGrad_(Shape{channels})
{
    ENODE_ASSERT(groups > 0 && channels % groups == 0,
                 "channels ", channels, " not divisible by groups ", groups);
}

Tensor
GroupNorm::forward(const Tensor &x)
{
    ENODE_ASSERT(x.shape().rank() == 3 && x.shape().dim(0) == channels_,
                 "GroupNorm expects (C=", channels_, ", H, W), got ",
                 x.shape().str());
    const std::size_t C = channels_;
    const std::size_t H = x.shape().dim(1);
    const std::size_t W = x.shape().dim(2);
    const std::size_t cpg = C / groups_; // channels per group
    const std::size_t group_elems = cpg * H * W;

    Tensor x_hat(x.shape());
    Tensor out(x.shape());
    cachedInvStd_.assign(groups_, 0.0f);

    for (std::size_t g = 0; g < groups_; g++) {
        double sum = 0.0, sum_sq = 0.0;
        for (std::size_t c = g * cpg; c < (g + 1) * cpg; c++) {
            for (std::size_t h = 0; h < H; h++) {
                for (std::size_t w = 0; w < W; w++) {
                    const double v = x.at(c, h, w);
                    sum += v;
                    sum_sq += v * v;
                }
            }
        }
        const double mean = sum / group_elems;
        const double var =
            std::max(0.0, sum_sq / group_elems - mean * mean);
        const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
        cachedInvStd_[g] = inv_std;

        for (std::size_t c = g * cpg; c < (g + 1) * cpg; c++) {
            for (std::size_t h = 0; h < H; h++) {
                for (std::size_t w = 0; w < W; w++) {
                    const float xh = (x.at(c, h, w) -
                                      static_cast<float>(mean)) * inv_std;
                    x_hat.at(c, h, w) = xh;
                    out.at(c, h, w) = gamma_.at(c) * xh + beta_.at(c);
                }
            }
        }
    }
    cachedNormalized_ = x_hat;
    return out;
}

Tensor
GroupNorm::backward(const Tensor &grad_out)
{
    ENODE_ASSERT(!cachedNormalized_.empty(),
                 "GroupNorm backward before forward");
    const Tensor &x_hat = cachedNormalized_;
    const std::size_t C = channels_;
    const std::size_t H = x_hat.shape().dim(1);
    const std::size_t W = x_hat.shape().dim(2);
    const std::size_t cpg = C / groups_;
    const double n = static_cast<double>(cpg * H * W);

    // Parameter gradients.
    for (std::size_t c = 0; c < C; c++) {
        double dg = 0.0, db = 0.0;
        for (std::size_t h = 0; h < H; h++) {
            for (std::size_t w = 0; w < W; w++) {
                dg += grad_out.at(c, h, w) * x_hat.at(c, h, w);
                db += grad_out.at(c, h, w);
            }
        }
        gammaGrad_.at(c) += static_cast<float>(dg);
        betaGrad_.at(c) += static_cast<float>(db);
    }

    // Input gradient. With dxhat = grad_out * gamma:
    // dx = inv_std/n * (n*dxhat - sum(dxhat) - x_hat * sum(dxhat*x_hat))
    Tensor grad_in(x_hat.shape());
    for (std::size_t g = 0; g < groups_; g++) {
        double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
        for (std::size_t c = g * cpg; c < (g + 1) * cpg; c++) {
            for (std::size_t h = 0; h < H; h++) {
                for (std::size_t w = 0; w < W; w++) {
                    const double dxh =
                        static_cast<double>(grad_out.at(c, h, w)) *
                        gamma_.at(c);
                    sum_dxhat += dxh;
                    sum_dxhat_xhat += dxh * x_hat.at(c, h, w);
                }
            }
        }
        const double inv_std = cachedInvStd_[g];
        for (std::size_t c = g * cpg; c < (g + 1) * cpg; c++) {
            for (std::size_t h = 0; h < H; h++) {
                for (std::size_t w = 0; w < W; w++) {
                    const double dxh =
                        static_cast<double>(grad_out.at(c, h, w)) *
                        gamma_.at(c);
                    grad_in.at(c, h, w) = static_cast<float>(
                        inv_std / n *
                        (n * dxh - sum_dxhat -
                         x_hat.at(c, h, w) * sum_dxhat_xhat));
                }
            }
        }
    }
    return grad_in;
}

std::vector<ParamSlot>
GroupNorm::paramSlots()
{
    return {{"gamma", &gamma_, &gammaGrad_}, {"beta", &beta_, &betaGrad_}};
}

std::string
GroupNorm::name() const
{
    return "GroupNorm(C=" + std::to_string(channels_) +
           ", G=" + std::to_string(groups_) + ")";
}

} // namespace enode
