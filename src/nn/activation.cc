#include "nn/activation.h"

#include <cmath>

#include "common/logging.h"

namespace enode {

Tensor
ReLU::forward(const Tensor &x)
{
    cachedInput_ = x;
    Tensor out = x;
    for (std::size_t i = 0; i < out.numel(); i++)
        if (out.at(i) < 0.0f)
            out.at(i) = 0.0f;
    return out;
}

void
ReLU::forwardBatched(const Tensor &xs, Tensor &out)
{
    // Pointwise: one branch-free sweep over the whole stacked buffer is
    // bitwise identical to the per-sample loops (and skips the backward
    // cache — the batched path is inference-only).
    out.resize(xs.shape());
    const float *src = xs.data();
    float *dst = out.data();
    for (std::size_t i = 0; i < xs.numel(); i++)
        dst[i] = src[i] < 0.0f ? 0.0f : src[i];
}

Tensor
ReLU::backward(const Tensor &grad_out)
{
    ENODE_ASSERT(!cachedInput_.empty(), "ReLU backward before forward");
    Tensor grad_in = grad_out;
    for (std::size_t i = 0; i < grad_in.numel(); i++)
        if (cachedInput_.at(i) <= 0.0f)
            grad_in.at(i) = 0.0f;
    return grad_in;
}

Tensor
Tanh::forward(const Tensor &x)
{
    Tensor out = x;
    for (std::size_t i = 0; i < out.numel(); i++)
        out.at(i) = std::tanh(out.at(i));
    cachedOutput_ = out;
    return out;
}

void
Tanh::forwardBatched(const Tensor &xs, Tensor &out)
{
    out.resize(xs.shape());
    const float *src = xs.data();
    float *dst = out.data();
    for (std::size_t i = 0; i < xs.numel(); i++)
        dst[i] = std::tanh(src[i]);
}

Tensor
Tanh::backward(const Tensor &grad_out)
{
    ENODE_ASSERT(!cachedOutput_.empty(), "Tanh backward before forward");
    Tensor grad_in = grad_out;
    for (std::size_t i = 0; i < grad_in.numel(); i++) {
        const float y = cachedOutput_.at(i);
        grad_in.at(i) *= 1.0f - y * y;
    }
    return grad_in;
}

Tensor
Softplus::forward(const Tensor &x)
{
    cachedInput_ = x;
    Tensor out = x;
    for (std::size_t i = 0; i < out.numel(); i++) {
        const float v = out.at(i);
        // Numerically stable softplus: max(v, 0) + log1p(exp(-|v|)).
        out.at(i) = std::max(v, 0.0f) + std::log1p(std::exp(-std::abs(v)));
    }
    return out;
}

void
Softplus::forwardBatched(const Tensor &xs, Tensor &out)
{
    out.resize(xs.shape());
    const float *src = xs.data();
    float *dst = out.data();
    for (std::size_t i = 0; i < xs.numel(); i++) {
        const float v = src[i];
        dst[i] = std::max(v, 0.0f) + std::log1p(std::exp(-std::abs(v)));
    }
}

Tensor
Softplus::backward(const Tensor &grad_out)
{
    ENODE_ASSERT(!cachedInput_.empty(), "Softplus backward before forward");
    Tensor grad_in = grad_out;
    for (std::size_t i = 0; i < grad_in.numel(); i++) {
        const float v = cachedInput_.at(i);
        grad_in.at(i) *= 1.0f / (1.0f + std::exp(-v)); // sigmoid(v)
    }
    return grad_in;
}

} // namespace enode
