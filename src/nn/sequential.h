#ifndef ENODE_NN_SEQUENTIAL_H
#define ENODE_NN_SEQUENTIAL_H

/**
 * @file
 * Sequential layer container and the embedded network f(t, h, theta).
 *
 * EmbeddedNet is the "shallow NN" of Eq. (1): typically a ConcatTime
 * followed by a handful of conv (or linear) layers. Its forward is one f
 * evaluation — the unit of work the eNODE ring executes per loop
 * (Sec. V.A) — and its vjp() is one adjoint evaluation: the
 * vector-Jacobian products a^T df/dh and a^T df/dtheta that Eqs. (4)
 * and (5) integrate.
 */

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace enode {

/** Ordered stack of layers with chained forward/backward. */
class Sequential : public Layer
{
  public:
    Sequential() = default;

    /** Append a layer; returns a reference for further configuration. */
    Layer &add(LayerPtr layer);

    std::size_t size() const { return layers_.size(); }
    Layer &layer(std::size_t i);

    Tensor forward(const Tensor &x) override;
    void forwardBatched(const Tensor &xs, Tensor &out) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<ParamSlot> paramSlots() override;
    std::string name() const override;
    Shape outputShape(const Shape &input) const override;

  private:
    std::vector<LayerPtr> layers_;
};

/**
 * The embedded network f(t, h, theta).
 *
 * Owns a Sequential body whose first layer is a ConcatTime, so the scalar
 * time reaches the network as an input feature. Exposes the two
 * operations NODE needs:
 *  - eval(t, h): one forward evaluation of f.
 *  - vjp(a): given the adjoint of the *most recent* eval, return
 *    a^T df/dh and accumulate a^T df/dtheta into the parameter grads.
 */
class EmbeddedNet
{
  public:
    /** Wrap a body; the body must map the state shape to itself. */
    explicit EmbeddedNet(std::unique_ptr<Sequential> body);

    /**
     * Build the standard convolutional f used throughout the paper:
     * ConcatTime -> [Conv3x3 -> GroupNorm -> ReLU] x depth, mapping
     * (channels, H, W) to itself.
     *
     * @param channels State channel count.
     * @param depth Number of conv layers (the paper's f has 4).
     * @param rng Weight initializer.
     */
    static std::unique_ptr<EmbeddedNet> makeConvNet(std::size_t channels,
                                                    std::size_t depth,
                                                    Rng &rng);

    /**
     * Build a row-streamable conv f: ConcatTime -> [Conv3x3 -> ReLU] x
     * (depth-1) -> Conv3x3. No normalization layers, so every operation
     * has a bounded row footprint — the form the depth-first streaming
     * executor (src/core/depth_first.h) can run with line buffers only.
     */
    static std::unique_ptr<EmbeddedNet> makeStreamableConvNet(
        std::size_t channels, std::size_t depth, Rng &rng);

    /**
     * Build an MLP f for low-dimensional dynamic systems:
     * ConcatTime -> Linear -> Tanh -> ... -> Linear, mapping (dim) to
     * itself.
     *
     * @param dim State dimension.
     * @param hidden Hidden width.
     * @param depth Number of hidden layers (>= 1).
     * @param rng Weight initializer.
     */
    static std::unique_ptr<EmbeddedNet> makeMlp(std::size_t dim,
                                                std::size_t hidden,
                                                std::size_t depth, Rng &rng);

    /** One evaluation of f at time t and state h. */
    Tensor eval(double t, const Tensor &h);

    /**
     * One shared evaluation of f over a stacked batch of states, each
     * at its own time (ts.size() == hs.dim(0)). Each sample row of
     * `out` is bitwise identical to eval(ts[i], hs[i]) — the batched
     * layer contract. Counts as ts.size() evaluations.
     */
    void evalBatched(const std::vector<double> &ts, const Tensor &hs,
                     Tensor &out);

    /**
     * Vector-Jacobian products of the most recent eval().
     *
     * @param adjoint a, the gradient seed at the output of f.
     * @return a^T df/dh; a^T df/dtheta accumulates into the grad slots.
     */
    Tensor vjp(const Tensor &adjoint);

    /** Parameters and gradient accumulators of the body. */
    std::vector<ParamSlot> paramSlots() { return body_->paramSlots(); }

    void zeroGrad() { body_->zeroGrad(); }

    std::size_t paramCount() { return body_->paramCount(); }

    /** Number of evaluations since construction (complexity metering). */
    std::uint64_t evalCount() const { return evalCount_; }
    /** Number of vjp calls since construction. */
    std::uint64_t vjpCount() const { return vjpCount_; }
    void resetCounters() { evalCount_ = 0; vjpCount_ = 0; }

    Sequential &body() { return *body_; }

  private:
    std::unique_ptr<Sequential> body_;
    class ConcatTime *timeLayer_; // owned by body_, first layer
    std::uint64_t evalCount_ = 0;
    std::uint64_t vjpCount_ = 0;
};

} // namespace enode

#endif // ENODE_NN_SEQUENTIAL_H
