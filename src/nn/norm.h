#ifndef ENODE_NN_NORM_H
#define ENODE_NN_NORM_H

/**
 * @file
 * Group normalization.
 *
 * NODE embedded networks use GroupNorm rather than BatchNorm because the
 * solver evaluates f on single states (batch of one) at arbitrary times;
 * statistics must come from within the sample. The eNODE pre-/post-
 * processing unit computes this "Norm" stage (Sec. VI). Backward
 * propagates through the mean/variance statistics exactly.
 */

#include "nn/layer.h"

namespace enode {

/** GroupNorm over a (C, H, W) tensor with learned per-channel affine. */
class GroupNorm : public Layer
{
  public:
    /**
     * @param channels C; must be divisible by groups.
     * @param groups Number of channel groups sharing statistics.
     * @param eps Variance floor for numerical stability.
     */
    GroupNorm(std::size_t channels, std::size_t groups, float eps = 1e-5f);

    Tensor forward(const Tensor &x) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<ParamSlot> paramSlots() override;
    std::string name() const override;
    Shape outputShape(const Shape &input) const override { return input; }

  private:
    std::size_t channels_;
    std::size_t groups_;
    float eps_;

    Tensor gamma_; // (C)
    Tensor gammaGrad_;
    Tensor beta_; // (C)
    Tensor betaGrad_;

    // Backward cache.
    Tensor cachedNormalized_;      // x_hat
    std::vector<float> cachedInvStd_; // per group
};

} // namespace enode

#endif // ENODE_NN_NORM_H
