/**
 * @file
 * Blocked implementations of the three convolution kernels (forward,
 * flipped-kernel adjoint, weight-grad) on the explicit SIMD backend
 * layer (common/simd.h): every hot sweep below calls the dispatched
 * vector kernels rather than hoping the compiler auto-vectorizes.
 *
 * These are the hot loops of the whole library: every f evaluation of
 * every integration trial lands here. The design mirrors the paper's
 * unified NN core (Sec. VI), whose 64 PEs are grouped diagonally into
 * an 8-input x 8-output channel tile:
 *
 *  - Direct path: the input is first copied once into a zero-padded
 *    pool scratch (halo of K/2 on every side), which deletes all edge
 *    clamping from the hot loops — every tap pass is a single
 *    branch-free sweep over a full row the compiler vectorizes without
 *    peel/remainder overhead. Output channels are processed in tiles
 *    of 8; for each output row a stacked row accumulator (8 x W
 *    floats, L1-resident) is updated four output channels at a time:
 *    the 4-channel fused pass applies one kernel row (3 taps) of four
 *    channels in one sweep, so twelve FMA chains share every input
 *    load instead of one.
 *  - Adjoint (backward-data) reuses the exact same core: the weights
 *    are pre-packed spatially flipped with the C/M roles swapped
 *    (Fig. 9(c)), so the adjoint runs at forward speed.
 *  - Weight-grad runs on the same padded input: each kernel tap is one
 *    branch-free dot-product of the grad map with the tap-shifted
 *    padded map, accumulated into 16 independent register lanes,
 *    replacing the reference kernel's single serial reduction chain.
 *  - An im2col+GEMM path lowers the convolution to a dense
 *    matrix-multiply (saxpy-panel GEMM) and is selected by a shape
 *    heuristic for large-tap/wide-channel shapes.
 *
 * All three kernels are tiled for intra-op parallelism on the task
 * pool (common/task_pool.h), mirroring the paper's core ring splitting
 * one f evaluation across NN cores: the direct path over
 * (out-channel-tile x output-row) work items, the weight-grad over
 * (m, c) kernel-plane pairs, and the im2col+GEMM path over im2col
 * panels and GEMM output rows. Every output element's accumulation
 * order is contained entirely within one work item, and the partition
 * only groups whole items, so results are bitwise identical to the
 * serial kernels at every thread count. Without an IntraOpScope the
 * tiles run inline on the caller — the serial path is the same code.
 *
 * Scratch buffers come from the executing thread's Workspace arena
 * (PooledScratch: each chunk acquires on the worker that runs it and
 * releases to the same worker), so the kernels allocate nothing from
 * the heap in steady state at any thread count. The original scalar
 * kernels are retained in conv2d_reference.cc as ground truth.
 */

#include "nn/conv2d.h"

#include <algorithm>
#include <cstddef>

#include "common/logging.h"
#include "common/simd.h"
#include "common/task_pool.h"
#include "tensor/workspace.h"

#if defined(__GNUC__) || defined(__clang__)
#define ENODE_RESTRICT __restrict__
#else
#define ENODE_RESTRICT
#endif

namespace enode {

namespace {

/** Output-channel tile height: the NN core's 8x8 diagonal PE grouping. */
constexpr std::size_t kTileM = 8;

/** Max kernel extent served by the fused-tap register kernels. */
constexpr std::size_t kMaxFusedK = 7;

/**
 * Minimum work items per parallel chunk. One item of the direct core
 * is one output row of an 8-channel tile (~W * Ci * K^2 FMAs); four
 * per chunk keeps dispatch overhead under ~1% at the paper's 8x8x3x3
 * shapes while still splitting 32-row maps eight ways.
 */
constexpr std::size_t kRowGrain = 4;

/**
 * Copies a CHW map into @p dst with a zero halo of @p pad on all four
 * sides of every channel (dst layout: C x (H+2p) x (W+2p)). One pass
 * over the input, amortized over C*K*K tap sweeps; in exchange every
 * hot loop below is branch-free over full rows.
 */
void
padInput(float *ENODE_RESTRICT dst, const float *ENODE_RESTRICT src,
         std::size_t C, std::size_t H, std::size_t W, std::size_t pad)
{
    const std::size_t Hp = H + 2 * pad;
    const std::size_t Wp = W + 2 * pad;
    std::fill(dst, dst + C * Hp * Wp, 0.0f);
    for (std::size_t c = 0; c < C; c++)
        for (std::size_t h = 0; h < H; h++)
            std::copy(src + (c * H + h) * W, src + (c * H + h + 1) * W,
                      dst + (c * Hp + h + pad) * Wp + pad);
}

/**
 * Generic-K tap pass over a padded row: one clean saxpy sweep per tap
 * on the active SIMD backend. The 3-tap cases go through the backend's
 * fused rowTaps3 / rowTaps3x4 kernels instead (see directConvCore).
 */
inline void
addRowTapsGeneric(const SimdOps &ops, float *ENODE_RESTRICT acc,
                  const float *ENODE_RESTRICT irow, const float *wr,
                  std::size_t W, std::size_t K)
{
    for (std::size_t kw = 0; kw < K; kw++) {
        const float wv = wr[kw];
        if (wv == 0.0f)
            continue;
        ops.axpy(acc, wv, irow + kw, W);
    }
}

/**
 * Direct convolution core shared by forward and (via weight packing)
 * backward-data:
 *
 *   out[mo][h][w] = bias[mo] + sum_{ci,kh,kw}
 *       wgt[((mo*Ci)+ci)*K*K + kh*K + kw] * in[ci][h+kh-pad][w+kw-pad]
 *
 * @param bias Per-output-channel init, or nullptr for zero.
 */
void
directConvCore(float *od, const float *xd, const float *wd,
               const float *bias, std::size_t Mo, std::size_t Ci,
               std::size_t H, std::size_t W, std::size_t K)
{
    const std::size_t pad = K / 2;
    const std::size_t Hp = H + 2 * pad;
    const std::size_t Wp = W + 2 * pad;
    PooledScratch padded(Ci * Hp * Wp);
    float *pin = padded.data();
    padInput(pin, xd, Ci, H, W, pad);

    const std::size_t wstride = Ci * K * K;
    const std::size_t m_tiles = (Mo + kTileM - 1) / kTileM;
    const SimdOps &ops = simdOps();

    // Work items mirror the 8x8 diagonal PE grouping: one item is one
    // output row of one 8-out-channel tile. Consecutive items walk rows
    // of the same tile, so a chunk keeps its weight tile hot; the row
    // accumulator is per-chunk scratch from the executing worker's
    // arena. Every output element is written by exactly one item with
    // the serial accumulation order, so the split is bitwise invisible.
    intraOpParallelFor(
        kRowGrain, m_tiles * H, [&](std::size_t begin, std::size_t end) {
            PooledScratch scratch(kTileM * W);
            float *acc = scratch.data();
            for (std::size_t item = begin; item < end; item++) {
                const std::size_t m0 = (item / H) * kTileM;
                const std::size_t h = item % H;
                const std::size_t mt = std::min(kTileM, Mo - m0);
                for (std::size_t mi = 0; mi < mt; mi++) {
                    const float b = bias ? bias[m0 + mi] : 0.0f;
                    std::fill(acc + mi * W, acc + (mi + 1) * W, b);
                }
                for (std::size_t ci = 0; ci < Ci; ci++) {
                    // Padded row h+kh holds input row h+kh-pad (zeros
                    // when that row is outside the map).
                    const float *in_rows = pin + ci * Hp * Wp + h * Wp;
                    const float *wr0 = wd + (m0 * Ci + ci) * K * K;
                    for (std::size_t kh = 0; kh < K; kh++) {
                        const float *irow = in_rows + kh * Wp;
                        const float *wrow = wr0 + kh * K;
                        std::size_t mi = 0;
                        if (K == 3) {
                            // Fused 4-channel tap pass: twelve mul+add
                            // chains share the three row loads.
                            for (; mi + 4 <= mt; mi += 4) {
                                const float *wr = wrow + mi * wstride;
                                ops.rowTaps3x4(acc + mi * W, irow, wr,
                                               wr + wstride,
                                               wr + 2 * wstride,
                                               wr + 3 * wstride, W);
                            }
                            for (; mi < mt; mi++)
                                ops.rowTaps3(acc + mi * W, irow,
                                             wrow + mi * wstride, W);
                        } else {
                            for (; mi < mt; mi++)
                                addRowTapsGeneric(ops, acc + mi * W, irow,
                                                  wrow + mi * wstride, W,
                                                  K);
                        }
                    }
                }
                for (std::size_t mi = 0; mi < mt; mi++) {
                    float *orow = od + (m0 + mi) * H * W + h * W;
                    std::copy(acc + mi * W, acc + (mi + 1) * W, orow);
                }
            }
        });
}

/**
 * Weight-grad core on the padded input: each kernel tap is one clean
 * dot-product of the whole grad map with the tap-shifted padded map,
 * accumulated through the backend's fixed-16-lane accumDot16 kernel
 * (one zmm / two ymm / four q-regs across the sweep) — the reference
 * kernel's serial reduction chain becomes 16 concurrent chains per
 * tap, with a lane layout that is bitwise identical on every backend.
 */
void
backwardWeightsCore(float *ENODE_RESTRICT wd, const float *ENODE_RESTRICT pin,
                    const float *ENODE_RESTRICT gd, std::size_t M,
                    std::size_t C, std::size_t H, std::size_t W,
                    std::size_t K)
{
    constexpr std::size_t kLanes = 16;
    const std::size_t pad = K / 2;
    const std::size_t Hp = H + 2 * pad;
    const std::size_t Wp = W + 2 * pad;
    const SimdOps &ops = simdOps();

    // One work item per (m, c) kernel plane: K*K independent full-map
    // reductions, each computed start to finish inside its item (the
    // 16-lane partial accumulators reduce in the fixed lane order), so
    // the parallel gradient is bitwise identical to the serial one.
    intraOpParallelFor(1, M * C, [&](std::size_t begin, std::size_t end) {
        for (std::size_t mc = begin; mc < end; mc++) {
            const std::size_t m = mc / C;
            const std::size_t c = mc % C;
            const float *g_map = gd + m * H * W;
            const float *in_map = pin + c * Hp * Wp;
            float *w_base = wd + (m * C + c) * K * K;
            for (std::size_t kh = 0; kh < K; kh++)
                for (std::size_t kw = 0; kw < K; kw++) {
                    float lanes[kLanes] = {};
                    float tail = 0.0f;
                    for (std::size_t h = 0; h < H; h++) {
                        const float *ENODE_RESTRICT grow = g_map + h * W;
                        const float *ENODE_RESTRICT irow =
                            in_map + (h + kh) * Wp + kw;
                        ops.accumDot16(lanes, &tail, grow, irow, W);
                    }
                    float s = tail;
                    for (std::size_t j = 0; j < kLanes; j++)
                        s += lanes[j];
                    w_base[kh * K + kw] = s;
                }
        }
    });
}

/**
 * im2col lowering: B[p][j] with p = (ci*K + kh)*K + kw and j = h*W + w
 * holding in[ci][h+kh-pad][w+kw-pad] (zero outside the map). Each
 * panel p is an independent row of B, built in parallel (one item per
 * panel; every byte of B has exactly one writer).
 */
void
buildIm2col(float *B, const float *xd, std::size_t Ci, std::size_t H,
            std::size_t W, std::size_t K)
{
    const std::size_t pad = K / 2;
    const std::size_t HW = H * W;
    const std::size_t KK = K * K;
    intraOpParallelFor(
        KK, Ci * KK, [&](std::size_t begin, std::size_t end) {
            for (std::size_t p = begin; p < end; p++) {
                const std::size_t ci = p / KK;
                const std::size_t kh = (p % KK) / K;
                const std::size_t kw = p % K;
                const float *in_map = xd + ci * H * W;
                const std::ptrdiff_t dh =
                    static_cast<std::ptrdiff_t>(kh) -
                    static_cast<std::ptrdiff_t>(pad);
                const std::ptrdiff_t dw =
                    static_cast<std::ptrdiff_t>(kw) -
                    static_cast<std::ptrdiff_t>(pad);
                float *brow = B + p * HW;
                const std::size_t w_lo =
                    dw < 0 ? static_cast<std::size_t>(-dw) : 0;
                const std::size_t w_hi =
                    dw > 0 ? (W > static_cast<std::size_t>(dw)
                                  ? W - static_cast<std::size_t>(dw)
                                  : 0)
                           : W;
                for (std::size_t h = 0; h < H; h++) {
                    float *dst = brow + h * W;
                    const std::ptrdiff_t ih =
                        static_cast<std::ptrdiff_t>(h) + dh;
                    if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(H)) {
                        std::fill(dst, dst + W, 0.0f);
                        continue;
                    }
                    const float *src = in_map + ih * W + dw;
                    if (w_lo > 0)
                        std::fill(dst, dst + w_lo, 0.0f);
                    for (std::size_t w = w_lo; w < w_hi; w++)
                        dst[w] = src[w];
                    if (w_hi < W)
                        std::fill(dst + w_hi, dst + W, 0.0f);
                }
            }
        });
}

/**
 * im2col+GEMM core on raw pointers, shared by the solo entry point and
 * the batched per-sample loop: out[m] = bias[m] + A[m] . B, as P saxpy
 * passes over an L1-resident output panel. The weight matrix A is the
 * conv weight viewed as (M, C*K*K) — no repacking needed. Output rows
 * are independent (each reads all of B, writes only its own panel), so
 * the GEMM splits over row panels with the saxpy order per row
 * unchanged.
 */
void
im2colGemmCore(float *od, const float *xd, const float *A, const float *bd,
               std::size_t M, std::size_t C, std::size_t H, std::size_t W,
               std::size_t K)
{
    const std::size_t HW = H * W;
    const std::size_t P = C * K * K;
    const SimdOps &ops = simdOps();

    PooledScratch scratch(P * HW);
    float *B = scratch.data();
    buildIm2col(B, xd, C, H, W, K);

    intraOpParallelFor(1, M, [&](std::size_t begin, std::size_t end) {
        for (std::size_t m = begin; m < end; m++) {
            float *orow = od + m * HW;
            std::fill(orow, orow + HW, bd ? bd[m] : 0.0f);
            const float *arow = A + m * P;
            for (std::size_t p = 0; p < P; p++) {
                const float a = arow[p];
                if (a == 0.0f)
                    continue;
                ops.axpy(orow, a, B + p * HW, HW);
            }
        }
    });
}

} // namespace

namespace conv {

Path
forwardPathFor(std::size_t in_channels, std::size_t out_channels,
               std::size_t height, std::size_t width, std::size_t kernel)
{
    (void)out_channels;
    // The fused-tap direct kernel holds K FMA chains per input-row pass
    // in registers; beyond kMaxFusedK taps (or degenerate maps narrower
    // than the kernel, where the padded halo dwarfs the payload) the
    // GEMM lowering's unconditional saxpy panels win.
    if (kernel > kMaxFusedK)
        return Path::Im2colGemm;
    if (width < kernel && in_channels * kernel >= 16)
        return Path::Im2colGemm;
    (void)height;
    return Path::Direct;
}

void
forwardDirect(Tensor &out, const Tensor &x, const Tensor &weight,
              const Tensor &bias)
{
    const std::size_t C = x.shape().dim(0);
    const std::size_t H = x.shape().dim(1);
    const std::size_t W = x.shape().dim(2);
    const std::size_t M = weight.shape().dim(0);
    const std::size_t K = weight.shape().dim(2);
    out.resize(Shape{M, H, W});
    directConvCore(out.data(), x.data(), weight.data(),
                   bias.empty() ? nullptr : bias.data(), M, C, H, W, K);
}

void
forwardIm2colGemm(Tensor &out, const Tensor &x, const Tensor &weight,
                  const Tensor &bias)
{
    const std::size_t C = x.shape().dim(0);
    const std::size_t H = x.shape().dim(1);
    const std::size_t W = x.shape().dim(2);
    const std::size_t M = weight.shape().dim(0);
    const std::size_t K = weight.shape().dim(2);
    out.resize(Shape{M, H, W});
    im2colGemmCore(out.data(), x.data(), weight.data(),
                   bias.empty() ? nullptr : bias.data(), M, C, H, W, K);
}

} // namespace conv

void
convForwardInto(Tensor &out, const Tensor &x, const Tensor &weight,
                const Tensor &bias)
{
    ENODE_ASSERT(x.shape().rank() == 3, "convForward input must be CHW");
    ENODE_ASSERT(weight.shape().rank() == 4, "weight must be MCKK");
    const std::size_t C = x.shape().dim(0);
    const std::size_t K = weight.shape().dim(2);
    ENODE_ASSERT(weight.shape().dim(1) == C, "weight C mismatch: ",
                 weight.shape().dim(1), " vs ", C);
    ENODE_ASSERT(K % 2 == 1 && weight.shape().dim(3) == K,
                 "kernel must be odd square");

    const conv::Path path = conv::forwardPathFor(
        C, weight.shape().dim(0), x.shape().dim(1), x.shape().dim(2), K);
    if (path == conv::Path::Im2colGemm)
        conv::forwardIm2colGemm(out, x, weight, bias);
    else
        conv::forwardDirect(out, x, weight, bias);
}

Tensor
convForward(const Tensor &x, const Tensor &weight, const Tensor &bias)
{
    Tensor out;
    convForwardInto(out, x, weight, bias);
    return out;
}

void
convBackwardDataInto(Tensor &grad_x, const Tensor &grad_out,
                     const Tensor &weight)
{
    ENODE_ASSERT(grad_out.shape().rank() == 3, "grad_out must be MHW");
    const std::size_t M = grad_out.shape().dim(0);
    const std::size_t H = grad_out.shape().dim(1);
    const std::size_t W = grad_out.shape().dim(2);
    const std::size_t C = weight.shape().dim(1);
    const std::size_t K = weight.shape().dim(2);
    ENODE_ASSERT(weight.shape().dim(0) == M, "weight M mismatch");

    // Pack the weights spatially flipped with C/M swapped, then run the
    // forward core: grad_x = conv(grad_out, pack). Packing is O(M*C*K*K)
    // — negligible next to the O(M*C*K*K*H*W) convolution.
    PooledScratch packed(M * C * K * K);
    float *pk = packed.data();
    const float *wd = weight.data();
    for (std::size_t c = 0; c < C; c++)
        for (std::size_t m = 0; m < M; m++) {
            const float *src = wd + (m * C + c) * K * K;
            float *dst = pk + (c * M + m) * K * K;
            for (std::size_t i = 0; i < K * K; i++)
                dst[i] = src[K * K - 1 - i];
        }

    grad_x.resize(Shape{C, H, W});
    directConvCore(grad_x.data(), grad_out.data(), pk, nullptr, C, M, H, W,
                   K);
}

Tensor
convBackwardData(const Tensor &grad_out, const Tensor &weight)
{
    Tensor grad_x;
    convBackwardDataInto(grad_x, grad_out, weight);
    return grad_x;
}

void
convBackwardWeightsInto(Tensor &grad_w, const Tensor &x,
                        const Tensor &grad_out, std::size_t kernel)
{
    ENODE_ASSERT(x.shape().rank() == 3 && grad_out.shape().rank() == 3,
                 "convBackwardWeights needs CHW tensors");
    const std::size_t C = x.shape().dim(0);
    const std::size_t H = x.shape().dim(1);
    const std::size_t W = x.shape().dim(2);
    const std::size_t M = grad_out.shape().dim(0);
    ENODE_ASSERT(grad_out.shape().dim(1) == H && grad_out.shape().dim(2) == W,
                 "spatial shape mismatch");
    const std::size_t K = kernel;
    const std::size_t pad = K / 2;
    grad_w.resize(Shape{M, C, K, K});

    if (K > kMaxFusedK || K % 2 == 0) {
        // Rare large- or even-tap case: fall back to the reference
        // reduction (the padded core assumes the symmetric K/2 halo of
        // the odd K <= 7 the library's layers use).
        grad_w = reference::convBackwardWeights(x, grad_out, K);
        return;
    }

    PooledScratch padded(C * (H + 2 * pad) * (W + 2 * pad));
    padInput(padded.data(), x.data(), C, H, W, pad);
    backwardWeightsCore(grad_w.data(), padded.data(), grad_out.data(), M, C,
                        H, W, K);
}

Tensor
convBackwardWeights(const Tensor &x, const Tensor &grad_out,
                    std::size_t kernel)
{
    Tensor grad_w;
    convBackwardWeightsInto(grad_w, x, grad_out, kernel);
    return grad_w;
}

void
convForwardBatchedInto(Tensor &out, const Tensor &xs, const Tensor &weight,
                       const Tensor &bias)
{
    ENODE_ASSERT(xs.shape().rank() == 4,
                 "batched convForward input must be NCHW, got ",
                 xs.shape().str());
    ENODE_ASSERT(weight.shape().rank() == 4, "weight must be MCKK");
    const std::size_t N = xs.shape().dim(0);
    const std::size_t C = xs.shape().dim(1);
    const std::size_t H = xs.shape().dim(2);
    const std::size_t W = xs.shape().dim(3);
    const std::size_t M = weight.shape().dim(0);
    const std::size_t K = weight.shape().dim(2);
    ENODE_ASSERT(weight.shape().dim(1) == C, "weight C mismatch: ",
                 weight.shape().dim(1), " vs ", C);
    ENODE_ASSERT(K % 2 == 1 && weight.shape().dim(3) == K,
                 "kernel must be odd square");
    out.resize(Shape{N, M, H, W});

    // One heuristic decision per batch, then the identical per-sample
    // core — every sample's output is bitwise the solo path's.
    const conv::Path path = conv::forwardPathFor(C, M, H, W, K);
    const float *bd = bias.empty() ? nullptr : bias.data();
    const std::size_t in_stride = C * H * W;
    const std::size_t out_stride = M * H * W;
    for (std::size_t i = 0; i < N; i++) {
        float *od = out.data() + i * out_stride;
        const float *xd = xs.data() + i * in_stride;
        if (path == conv::Path::Im2colGemm)
            im2colGemmCore(od, xd, weight.data(), bd, M, C, H, W, K);
        else
            directConvCore(od, xd, weight.data(), bd, M, C, H, W, K);
    }
}

void
convBackwardDataBatchedInto(Tensor &grad_x, const Tensor &grad_out,
                            const Tensor &weight)
{
    ENODE_ASSERT(grad_out.shape().rank() == 4,
                 "batched grad_out must be NMHW, got ",
                 grad_out.shape().str());
    const std::size_t N = grad_out.shape().dim(0);
    const std::size_t M = grad_out.shape().dim(1);
    const std::size_t H = grad_out.shape().dim(2);
    const std::size_t W = grad_out.shape().dim(3);
    const std::size_t C = weight.shape().dim(1);
    const std::size_t K = weight.shape().dim(2);
    ENODE_ASSERT(weight.shape().dim(0) == M, "weight M mismatch");
    grad_x.resize(Shape{N, C, H, W});

    // Flip-pack the weights ONCE for the whole batch — this is the
    // amortization the batcher buys: solo backward-data re-packs per
    // sample, here N samples share one packing pass.
    PooledScratch packed(M * C * K * K);
    float *pk = packed.data();
    const float *wd = weight.data();
    for (std::size_t c = 0; c < C; c++)
        for (std::size_t m = 0; m < M; m++) {
            const float *src = wd + (m * C + c) * K * K;
            float *dst = pk + (c * M + m) * K * K;
            for (std::size_t i = 0; i < K * K; i++)
                dst[i] = src[K * K - 1 - i];
        }

    const std::size_t in_stride = M * H * W;
    const std::size_t out_stride = C * H * W;
    for (std::size_t i = 0; i < N; i++)
        directConvCore(grad_x.data() + i * out_stride,
                       grad_out.data() + i * in_stride, pk, nullptr, C, M, H,
                       W, K);
}

} // namespace enode
