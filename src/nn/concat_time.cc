#include "nn/concat_time.h"

#include <cstring>

#include "common/logging.h"

namespace enode {

Tensor
ConcatTime::forward(const Tensor &x)
{
    cachedInputShape_ = x.shape();
    if (x.shape().rank() == 1) {
        const std::size_t n = x.shape().dim(0);
        Tensor out(Shape{n + 1});
        std::memcpy(out.data(), x.data(), n * sizeof(float));
        out.at(n) = static_cast<float>(time_);
        return out;
    }
    ENODE_ASSERT(x.shape().rank() == 3,
                 "ConcatTime supports rank 1 or 3, got ", x.shape().str());
    const std::size_t C = x.shape().dim(0);
    const std::size_t H = x.shape().dim(1);
    const std::size_t W = x.shape().dim(2);
    Tensor out(Shape{C + 1, H, W});
    std::memcpy(out.data(), x.data(), C * H * W * sizeof(float));
    float *time_plane = out.data() + C * H * W;
    for (std::size_t i = 0; i < H * W; i++)
        time_plane[i] = static_cast<float>(time_);
    return out;
}

void
ConcatTime::forwardBatched(const Tensor &xs, Tensor &out)
{
    const std::size_t n = xs.shape().dim(0);
    ENODE_ASSERT(batchTimes_.size() == n, "setBatchTimes(", batchTimes_.size(),
                 ") does not match batch of ", n);
    if (xs.shape().rank() == 2) {
        const std::size_t d = xs.shape().dim(1);
        out.resize(Shape{n, d + 1});
        for (std::size_t i = 0; i < n; i++) {
            float *dst = out.data() + i * (d + 1);
            std::memcpy(dst, xs.data() + i * d, d * sizeof(float));
            dst[d] = static_cast<float>(batchTimes_[i]);
        }
        return;
    }
    ENODE_ASSERT(xs.shape().rank() == 4,
                 "batched ConcatTime supports rank 2 or 4, got ",
                 xs.shape().str());
    const std::size_t C = xs.shape().dim(1);
    const std::size_t H = xs.shape().dim(2);
    const std::size_t W = xs.shape().dim(3);
    out.resize(Shape{n, C + 1, H, W});
    for (std::size_t i = 0; i < n; i++) {
        float *dst = out.data() + i * (C + 1) * H * W;
        std::memcpy(dst, xs.data() + i * C * H * W,
                    C * H * W * sizeof(float));
        float *time_plane = dst + C * H * W;
        const float tv = static_cast<float>(batchTimes_[i]);
        for (std::size_t j = 0; j < H * W; j++)
            time_plane[j] = tv;
    }
}

Tensor
ConcatTime::backward(const Tensor &grad_out)
{
    ENODE_ASSERT(cachedInputShape_.rank() > 0,
                 "ConcatTime backward before forward");
    // Drop the gradient of the appended time feature.
    Tensor grad_in(cachedInputShape_);
    std::memcpy(grad_in.data(), grad_out.data(),
                grad_in.numel() * sizeof(float));
    return grad_in;
}

Shape
ConcatTime::outputShape(const Shape &input) const
{
    if (input.rank() == 1)
        return Shape{input.dim(0) + 1};
    ENODE_ASSERT(input.rank() == 3, "ConcatTime supports rank 1 or 3");
    return Shape{input.dim(0) + 1, input.dim(1), input.dim(2)};
}

} // namespace enode
