#ifndef ENODE_NN_POOL_H
#define ENODE_NN_POOL_H

/**
 * @file
 * Pooling and shape-adapter layers for the classifier head.
 */

#include "nn/layer.h"

namespace enode {

/** Global average pool: (C, H, W) -> (C). */
class GlobalAvgPool : public Layer
{
  public:
    Tensor forward(const Tensor &x) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return "GlobalAvgPool"; }
    Shape outputShape(const Shape &input) const override;

  private:
    Shape cachedInputShape_;
};

/** 2x2 average pool with stride 2: (C, H, W) -> (C, H/2, W/2). */
class AvgPool2x2 : public Layer
{
  public:
    Tensor forward(const Tensor &x) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return "AvgPool2x2"; }
    Shape outputShape(const Shape &input) const override;

  private:
    Shape cachedInputShape_;
};

/** Flatten any tensor to rank 1. */
class Flatten : public Layer
{
  public:
    Tensor forward(const Tensor &x) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return "Flatten"; }
    Shape outputShape(const Shape &input) const override;

  private:
    Shape cachedInputShape_;
};

} // namespace enode

#endif // ENODE_NN_POOL_H
