#ifndef ENODE_NN_OPTIMIZER_H
#define ENODE_NN_OPTIMIZER_H

/**
 * @file
 * Parameter update rules.
 *
 * In eNODE the weight update happens locally in the cores at the end of
 * the backward pass ("The weights are updated locally", Sec. V.A). The
 * reference library provides SGD-with-momentum and Adam over the
 * ParamSlot lists exposed by layers.
 */

#include <vector>

#include "nn/layer.h"

namespace enode {

/** Base optimizer over a fixed set of parameter slots. */
class Optimizer
{
  public:
    explicit Optimizer(std::vector<ParamSlot> slots);
    virtual ~Optimizer() = default;

    /** Apply one update from the accumulated gradients. */
    virtual void step() = 0;

    /** Zero all gradient accumulators. */
    void zeroGrad();

    /** Clip gradients to a global L2 norm bound; returns the pre-clip norm. */
    double clipGradNorm(double max_norm);

  protected:
    std::vector<ParamSlot> slots_;
};

/** SGD with classical momentum. */
class Sgd : public Optimizer
{
  public:
    Sgd(std::vector<ParamSlot> slots, double lr, double momentum = 0.0,
        double weight_decay = 0.0);

    void step() override;

    void setLearningRate(double lr) { lr_ = lr; }
    double learningRate() const { return lr_; }

  private:
    double lr_;
    double momentum_;
    double weightDecay_;
    std::vector<Tensor> velocity_;
};

/** Adam (Kingma & Ba) with bias correction. */
class Adam : public Optimizer
{
  public:
    Adam(std::vector<ParamSlot> slots, double lr, double beta1 = 0.9,
         double beta2 = 0.999, double eps = 1e-8);

    void step() override;

    void setLearningRate(double lr) { lr_ = lr; }
    double learningRate() const { return lr_; }

  private:
    double lr_;
    double beta1_;
    double beta2_;
    double eps_;
    std::uint64_t t_ = 0;
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
};

} // namespace enode

#endif // ENODE_NN_OPTIMIZER_H
