/**
 * @file
 * Reference implementations of the three convolution kernels.
 *
 * These are the original scalar kernels: the tap range is clamped once
 * per row and the inner loops run over raw row pointers, one pass over
 * the output per (channel, tap). They are retained as the ground truth
 * the blocked/vectorized kernels in conv2d_kernels.cc are
 * equivalence-tested against, and as the baseline the micro-benchmarks
 * report speedups over. The only change from the originals is the
 * std::min guard in the h_hi/w_hi clamps: the unguarded H - dh
 * underflows size_t on maps narrower than the kernel (K > H or K > W),
 * a shape regime the equivalence sweep covers.
 */

#include "nn/conv2d.h"

#include <algorithm>

#include "common/logging.h"

namespace enode {
namespace reference {

Tensor
convForward(const Tensor &x, const Tensor &weight, const Tensor &bias)
{
    ENODE_ASSERT(x.shape().rank() == 3, "convForward input must be CHW");
    ENODE_ASSERT(weight.shape().rank() == 4, "weight must be MCKK");
    const std::size_t C = x.shape().dim(0);
    const std::size_t H = x.shape().dim(1);
    const std::size_t W = x.shape().dim(2);
    const std::size_t M = weight.shape().dim(0);
    const std::size_t K = weight.shape().dim(2);
    ENODE_ASSERT(weight.shape().dim(1) == C, "weight C mismatch: ",
                 weight.shape().dim(1), " vs ", C);
    ENODE_ASSERT(K % 2 == 1 && weight.shape().dim(3) == K,
                 "kernel must be odd square");
    const std::size_t pad = K / 2;

    Tensor out(Shape{M, H, W});
    const float *xd = x.data();
    const float *wd = weight.data();
    float *od = out.data();

    for (std::size_t m = 0; m < M; m++) {
        const float b = bias.empty() ? 0.0f : bias.data()[m];
        float *out_map = od + m * H * W;
        std::fill(out_map, out_map + H * W, b);
        for (std::size_t c = 0; c < C; c++) {
            const float *in_map = xd + c * H * W;
            const float *w_base = wd + (m * C + c) * K * K;
            for (std::size_t kh = 0; kh < K; kh++) {
                const std::ptrdiff_t dh =
                    static_cast<std::ptrdiff_t>(kh) -
                    static_cast<std::ptrdiff_t>(pad);
                for (std::size_t kw = 0; kw < K; kw++) {
                    const std::ptrdiff_t dw =
                        static_cast<std::ptrdiff_t>(kw) -
                        static_cast<std::ptrdiff_t>(pad);
                    const float wv = w_base[kh * K + kw];
                    if (wv == 0.0f)
                        continue;
                    // Output rows h for which h+dh is a valid input row.
                    const std::size_t h_lo =
                        dh < 0 ? static_cast<std::size_t>(-dh) : 0;
                    const std::size_t h_hi =
                        dh > 0 ? H - std::min(static_cast<std::size_t>(dh),
                                              H)
                               : H;
                    const std::size_t w_lo =
                        dw < 0 ? static_cast<std::size_t>(-dw) : 0;
                    const std::size_t w_hi =
                        dw > 0 ? W - std::min(static_cast<std::size_t>(dw),
                                              W)
                               : W;
                    for (std::size_t h = h_lo; h < h_hi; h++) {
                        float *orow = out_map + h * W;
                        const float *irow =
                            in_map + (h + dh) * W + dw;
                        for (std::size_t w = w_lo; w < w_hi; w++)
                            orow[w] += wv * irow[w];
                    }
                }
            }
        }
    }
    return out;
}

Tensor
convBackwardData(const Tensor &grad_out, const Tensor &weight)
{
    ENODE_ASSERT(grad_out.shape().rank() == 3, "grad_out must be MHW");
    const std::size_t M = grad_out.shape().dim(0);
    const std::size_t H = grad_out.shape().dim(1);
    const std::size_t W = grad_out.shape().dim(2);
    const std::size_t C = weight.shape().dim(1);
    const std::size_t K = weight.shape().dim(2);
    ENODE_ASSERT(weight.shape().dim(0) == M, "weight M mismatch");
    const std::size_t pad = K / 2;

    // grad_x = conv(grad_out, flip(W), roles of C and M swapped): the
    // same clamped-tap structure as the forward kernel with dh, dw
    // negated.
    Tensor grad_x(Shape{C, H, W});
    const float *gd = grad_out.data();
    const float *wd = weight.data();
    float *xd = grad_x.data();

    for (std::size_t c = 0; c < C; c++) {
        float *out_map = xd + c * H * W;
        for (std::size_t m = 0; m < M; m++) {
            const float *in_map = gd + m * H * W;
            const float *w_base = wd + (m * C + c) * K * K;
            for (std::size_t kh = 0; kh < K; kh++) {
                const std::ptrdiff_t dh =
                    static_cast<std::ptrdiff_t>(pad) -
                    static_cast<std::ptrdiff_t>(kh);
                for (std::size_t kw = 0; kw < K; kw++) {
                    const std::ptrdiff_t dw =
                        static_cast<std::ptrdiff_t>(pad) -
                        static_cast<std::ptrdiff_t>(kw);
                    const float wv = w_base[kh * K + kw];
                    if (wv == 0.0f)
                        continue;
                    const std::size_t h_lo =
                        dh < 0 ? static_cast<std::size_t>(-dh) : 0;
                    const std::size_t h_hi =
                        dh > 0 ? H - std::min(static_cast<std::size_t>(dh),
                                              H)
                               : H;
                    const std::size_t w_lo =
                        dw < 0 ? static_cast<std::size_t>(-dw) : 0;
                    const std::size_t w_hi =
                        dw > 0 ? W - std::min(static_cast<std::size_t>(dw),
                                              W)
                               : W;
                    for (std::size_t h = h_lo; h < h_hi; h++) {
                        float *orow = out_map + h * W;
                        const float *irow =
                            in_map + (h + dh) * W + dw;
                        for (std::size_t w = w_lo; w < w_hi; w++)
                            orow[w] += wv * irow[w];
                    }
                }
            }
        }
    }
    return grad_x;
}

Tensor
convBackwardWeights(const Tensor &x, const Tensor &grad_out,
                    std::size_t kernel)
{
    ENODE_ASSERT(x.shape().rank() == 3 && grad_out.shape().rank() == 3,
                 "convBackwardWeights needs CHW tensors");
    const std::size_t C = x.shape().dim(0);
    const std::size_t H = x.shape().dim(1);
    const std::size_t W = x.shape().dim(2);
    const std::size_t M = grad_out.shape().dim(0);
    ENODE_ASSERT(grad_out.shape().dim(1) == H && grad_out.shape().dim(2) == W,
                 "spatial shape mismatch");
    const std::size_t K = kernel;
    const std::size_t pad = K / 2;

    Tensor grad_w(Shape{M, C, K, K});
    const float *xd = x.data();
    const float *gd = grad_out.data();
    float *wd = grad_w.data();

    for (std::size_t m = 0; m < M; m++) {
        const float *g_map = gd + m * H * W;
        for (std::size_t c = 0; c < C; c++) {
            const float *in_map = xd + c * H * W;
            float *w_base = wd + (m * C + c) * K * K;
            for (std::size_t kh = 0; kh < K; kh++) {
                const std::ptrdiff_t dh =
                    static_cast<std::ptrdiff_t>(kh) -
                    static_cast<std::ptrdiff_t>(pad);
                const std::size_t h_lo =
                    dh < 0 ? static_cast<std::size_t>(-dh) : 0;
                const std::size_t h_hi =
                    dh > 0 ? H - std::min(static_cast<std::size_t>(dh), H)
                           : H;
                for (std::size_t kw = 0; kw < K; kw++) {
                    const std::ptrdiff_t dw =
                        static_cast<std::ptrdiff_t>(kw) -
                        static_cast<std::ptrdiff_t>(pad);
                    const std::size_t w_lo =
                        dw < 0 ? static_cast<std::size_t>(-dw) : 0;
                    const std::size_t w_hi =
                        dw > 0 ? W - std::min(static_cast<std::size_t>(dw),
                                              W)
                               : W;
                    float acc = 0.0f;
                    for (std::size_t h = h_lo; h < h_hi; h++) {
                        const float *grow = g_map + h * W;
                        const float *irow =
                            in_map + (h + dh) * W + dw;
                        for (std::size_t w = w_lo; w < w_hi; w++)
                            acc += grow[w] * irow[w];
                    }
                    w_base[kh * K + kw] = acc;
                }
            }
        }
    }
    return grad_w;
}

} // namespace reference
} // namespace enode
