#include "nn/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace enode {

Optimizer::Optimizer(std::vector<ParamSlot> slots) : slots_(std::move(slots))
{
    for (const auto &slot : slots_) {
        ENODE_ASSERT(slot.param && slot.grad, "null slot '", slot.name, "'");
        ENODE_ASSERT(slot.param->shape() == slot.grad->shape(),
                     "param/grad shape mismatch in '", slot.name, "'");
    }
}

void
Optimizer::zeroGrad()
{
    for (auto &slot : slots_)
        slot.grad->fill(0.0f);
}

double
Optimizer::clipGradNorm(double max_norm)
{
    double sum_sq = 0.0;
    for (auto &slot : slots_) {
        const double n = slot.grad->l2Norm();
        sum_sq += n * n;
    }
    const double norm = std::sqrt(sum_sq);
    if (norm > max_norm && norm > 0.0) {
        const float scale = static_cast<float>(max_norm / norm);
        for (auto &slot : slots_)
            *slot.grad *= scale;
    }
    return norm;
}

Sgd::Sgd(std::vector<ParamSlot> slots, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(slots)),
      lr_(lr),
      momentum_(momentum),
      weightDecay_(weight_decay)
{
    velocity_.reserve(slots_.size());
    for (const auto &slot : slots_)
        velocity_.emplace_back(slot.param->shape());
}

void
Sgd::step()
{
    for (std::size_t s = 0; s < slots_.size(); s++) {
        Tensor &param = *slots_[s].param;
        Tensor &grad = *slots_[s].grad;
        Tensor &vel = velocity_[s];
        for (std::size_t i = 0; i < param.numel(); i++) {
            float g = grad.at(i);
            if (weightDecay_ != 0.0)
                g += static_cast<float>(weightDecay_) * param.at(i);
            vel.at(i) = static_cast<float>(momentum_) * vel.at(i) + g;
            param.at(i) -= static_cast<float>(lr_) * vel.at(i);
        }
    }
}

Adam::Adam(std::vector<ParamSlot> slots, double lr, double beta1,
           double beta2, double eps)
    : Optimizer(std::move(slots)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps)
{
    m_.reserve(slots_.size());
    v_.reserve(slots_.size());
    for (const auto &slot : slots_) {
        m_.emplace_back(slot.param->shape());
        v_.emplace_back(slot.param->shape());
    }
}

void
Adam::step()
{
    t_++;
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    for (std::size_t s = 0; s < slots_.size(); s++) {
        Tensor &param = *slots_[s].param;
        Tensor &grad = *slots_[s].grad;
        for (std::size_t i = 0; i < param.numel(); i++) {
            const double g = grad.at(i);
            const double m = beta1_ * m_[s].at(i) + (1.0 - beta1_) * g;
            const double v = beta2_ * v_[s].at(i) + (1.0 - beta2_) * g * g;
            m_[s].at(i) = static_cast<float>(m);
            v_[s].at(i) = static_cast<float>(v);
            const double m_hat = m / bc1;
            const double v_hat = v / bc2;
            param.at(i) -= static_cast<float>(
                lr_ * m_hat / (std::sqrt(v_hat) + eps_));
        }
    }
}

} // namespace enode
