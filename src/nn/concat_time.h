#ifndef ENODE_NN_CONCAT_TIME_H
#define ENODE_NN_CONCAT_TIME_H

/**
 * @file
 * Time-concatenation layer.
 *
 * The embedded network of a NODE is f(t, h, theta): it takes the scalar
 * integration time t in addition to the state (Eq. 1). The standard
 * construction (Chen et al. 2018) appends t as one extra input feature:
 * an extra constant channel for (C, H, W) states, or one extra element
 * for rank-1 states. The backward pass simply drops the gradient of the
 * appended feature, since t is not differentiated through.
 */

#include <vector>

#include "nn/layer.h"

namespace enode {

/** Appends the current scalar time as an extra channel / feature. */
class ConcatTime : public Layer
{
  public:
    ConcatTime() = default;

    /** Set the time that the next forward() will append. */
    void setTime(double t) { time_ = t; }

    double time() const { return time_; }

    /**
     * Set per-sample times for the next forwardBatched(): samples of a
     * coalesced batch sit at different points of their own stepsize
     * searches, so each gets its own t appended.
     */
    void setBatchTimes(const std::vector<double> &ts) { batchTimes_ = ts; }

    Tensor forward(const Tensor &x) override;
    void forwardBatched(const Tensor &xs, Tensor &out) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return "ConcatTime"; }
    Shape outputShape(const Shape &input) const override;

  private:
    double time_ = 0.0;
    std::vector<double> batchTimes_;
    Shape cachedInputShape_;
};

} // namespace enode

#endif // ENODE_NN_CONCAT_TIME_H
