#ifndef ENODE_NN_ACTIVATION_H
#define ENODE_NN_ACTIVATION_H

/**
 * @file
 * Pointwise activation layers.
 *
 * ReLU is what the eNODE pre-/post-processing unit computes (Sec. VI);
 * Tanh and Softplus are the smooth activations commonly used in the
 * embedded network of dynamic-system NODEs, where f must be Lipschitz
 * and smooth for the adaptive integrator to behave.
 */

#include "nn/layer.h"

namespace enode {

/** Rectified linear unit. */
class ReLU : public Layer
{
  public:
    Tensor forward(const Tensor &x) override;
    void forwardBatched(const Tensor &xs, Tensor &out) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return "ReLU"; }
    Shape outputShape(const Shape &input) const override { return input; }

  private:
    Tensor cachedInput_;
};

/** Hyperbolic tangent. */
class Tanh : public Layer
{
  public:
    Tensor forward(const Tensor &x) override;
    void forwardBatched(const Tensor &xs, Tensor &out) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return "Tanh"; }
    Shape outputShape(const Shape &input) const override { return input; }

  private:
    Tensor cachedOutput_; // tanh' = 1 - tanh^2, so cache the output
};

/** Softplus: log(1 + e^x), a smooth ReLU. */
class Softplus : public Layer
{
  public:
    Tensor forward(const Tensor &x) override;
    void forwardBatched(const Tensor &xs, Tensor &out) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return "Softplus"; }
    Shape outputShape(const Shape &input) const override { return input; }

  private:
    Tensor cachedInput_;
};

} // namespace enode

#endif // ENODE_NN_ACTIVATION_H
