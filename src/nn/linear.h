#ifndef ENODE_NN_LINEAR_H
#define ENODE_NN_LINEAR_H

/**
 * @file
 * Fully connected layer.
 *
 * Used as the embedded network for low-dimensional dynamic-system NODEs
 * (Three-Body, Lotka-Volterra) and as the classifier head of the image
 * models. Operates on rank-1 tensors.
 */

#include "nn/layer.h"

namespace enode {

class Rng;

/** y = W x + b on rank-1 tensors. */
class Linear : public Layer
{
  public:
    Linear(std::size_t in_features, std::size_t out_features, Rng &rng,
           bool with_bias = true);

    Tensor forward(const Tensor &x) override;
    void forwardBatched(const Tensor &xs, Tensor &out) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<ParamSlot> paramSlots() override;
    std::string name() const override;
    Shape outputShape(const Shape &input) const override;

    std::size_t inFeatures() const { return inFeatures_; }
    std::size_t outFeatures() const { return outFeatures_; }

    Tensor &weight() { return weight_; }

  private:
    std::size_t inFeatures_;
    std::size_t outFeatures_;
    bool withBias_;

    Tensor weight_; // (out, in)
    Tensor weightGrad_;
    Tensor bias_; // (out) or empty
    Tensor biasGrad_;

    Tensor cachedInput_;
};

} // namespace enode

#endif // ENODE_NN_LINEAR_H
