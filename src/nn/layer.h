#ifndef ENODE_NN_LAYER_H
#define ENODE_NN_LAYER_H

/**
 * @file
 * Layer interface for the embedded network f and the surrounding model.
 *
 * NODE training (the ACA method, Sec. II.C) interleaves short forward
 * evaluations with immediate backward (vector-Jacobian) evaluations, so a
 * layer caches exactly what its backward needs from the most recent
 * forward. Parameter gradients accumulate across backward calls until
 * zeroGrad(), because the parameter-gradient integral of Eq. (5) sums
 * VJP contributions over many integration steps.
 */

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace enode {

/** A named (parameter, gradient) pair exposed by a layer. */
struct ParamSlot
{
    std::string name;
    Tensor *param;
    Tensor *grad;
};

/** Differentiable layer with single-input single-output dataflow. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Compute the output and cache whatever backward() will need. */
    virtual Tensor forward(const Tensor &x) = 0;

    /**
     * Batched forward: `xs` stacks samples along a leading batch
     * dimension (n, ...sample shape...) and `out` is resized to
     * (n, ...output shape...). Used by the serving batcher's shared
     * f evaluations (ode/batched_ivp.h); it is an inference-only path
     * and does NOT populate the backward caches.
     *
     * Contract: every sample row of `out` must be bitwise identical to
     * forward() on that sample — batching may only restructure the
     * computation across samples, never reorder arithmetic within one.
     * The default implementation slices, runs forward() per sample, and
     * scatters; layers with a profitable batched kernel override it.
     * `out` must not alias `xs`.
     */
    virtual void forwardBatched(const Tensor &xs, Tensor &out);

    /**
     * Vector-Jacobian product of the most recent forward.
     *
     * @param grad_out Gradient of the loss w.r.t. this layer's output.
     * @return Gradient of the loss w.r.t. this layer's input. Parameter
     *         gradients are accumulated into the layer's grad slots.
     */
    virtual Tensor backward(const Tensor &grad_out) = 0;

    /** Parameters and their gradient accumulators (may be empty). */
    virtual std::vector<ParamSlot> paramSlots() { return {}; }

    /** Reset accumulated parameter gradients to zero. */
    void zeroGrad();

    /** Total number of scalar parameters. */
    std::size_t paramCount();

    /** Short human-readable layer description. */
    virtual std::string name() const = 0;

    /** Shape of the output this layer produces for a given input shape. */
    virtual Shape outputShape(const Shape &input) const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

} // namespace enode

#endif // ENODE_NN_LAYER_H
