/**
 * @file
 * IEEE binary16: conversion exactness, rounding, special values.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/fp16.h"
#include "common/rng.h"

namespace enode {
namespace {

TEST(Fp16, ExactSmallIntegers)
{
    for (int i = -2048; i <= 2048; i++) {
        // All integers up to 2^11 are exactly representable.
        EXPECT_EQ(Fp16(static_cast<float>(i)).toFloat(),
                  static_cast<float>(i))
            << i;
    }
}

TEST(Fp16, KnownBitPatterns)
{
    EXPECT_EQ(Fp16(1.0f).bits(), 0x3c00);
    EXPECT_EQ(Fp16(-1.0f).bits(), 0xbc00);
    EXPECT_EQ(Fp16(0.5f).bits(), 0x3800);
    EXPECT_EQ(Fp16(65504.0f).bits(), 0x7bff); // max finite
    EXPECT_EQ(Fp16(0.0f).bits(), 0x0000);
    EXPECT_EQ(Fp16(-0.0f).bits(), 0x8000);
}

TEST(Fp16, OverflowSaturatesToInfinity)
{
    EXPECT_TRUE(Fp16(65536.0f).isInf());
    EXPECT_TRUE(Fp16(1e10f).isInf());
    EXPECT_TRUE(Fp16(-1e10f).isInf());
    EXPECT_LT(Fp16(-1e10f).toFloat(), 0.0f);
    // 65519.99 is the last value that rounds down to 65504.
    EXPECT_FALSE(Fp16(65519.0f).isInf());
}

TEST(Fp16, SubnormalsRoundTrip)
{
    const float min_sub = std::ldexp(1.0f, -24);
    EXPECT_EQ(Fp16(min_sub).bits(), 0x0001);
    EXPECT_EQ(Fp16(min_sub).toFloat(), min_sub);
    EXPECT_TRUE(Fp16(min_sub).isSubnormal());
    // Halfway below the smallest subnormal underflows to zero
    // (ties-to-even at bit pattern 0).
    EXPECT_TRUE(Fp16(min_sub / 4.0f).isZero());
}

TEST(Fp16, NanPropagates)
{
    const Fp16 nan = Fp16(std::nanf(""));
    EXPECT_TRUE(nan.isNaN());
    EXPECT_TRUE(std::isnan(nan.toFloat()));
    EXPECT_FALSE(nan == nan);
}

TEST(Fp16, RoundToNearestEven)
{
    // 2049 is halfway between 2048 and 2050; even mantissa wins -> 2048.
    EXPECT_EQ(Fp16(2049.0f).toFloat(), 2048.0f);
    // 2051 is halfway between 2050 and 2052 -> 2052.
    EXPECT_EQ(Fp16(2051.0f).toFloat(), 2052.0f);
}

TEST(Fp16, RoundTripIsIdempotent)
{
    Rng rng(99);
    for (int i = 0; i < 2000; i++) {
        const float v =
            static_cast<float>(rng.normal(0.0, 100.0));
        const float once = roundToFp16(v);
        EXPECT_EQ(roundToFp16(once), once);
        // Relative rounding error bounded by 2^-11 in the normal range.
        if (std::abs(v) > 1e-3f && std::abs(v) < 6e4f) {
            EXPECT_LE(std::abs(once - v), std::abs(v) * 0x1.0p-10f);
        }
    }
}

TEST(Fp16, ArithmeticRoundsLikeAHalfDatapath)
{
    const Fp16 a(1.0f), b(0.0004f);
    // 1.0 + 0.0004 is below half of the ULP at 1.0 (2^-11): rounds back.
    EXPECT_EQ((a + b).toFloat(), 1.0f);
    EXPECT_EQ((Fp16(3.0f) * Fp16(0.5f)).toFloat(), 1.5f);
    EXPECT_EQ((-Fp16(2.5f)).toFloat(), -2.5f);
}

TEST(Fp16, ComparisonsAndLimits)
{
    EXPECT_LT(Fp16(1.0f), Fp16(2.0f));
    EXPECT_EQ(Fp16(0.0f), Fp16(-0.0f));
    EXPECT_EQ(Fp16::max().toFloat(), 65504.0f);
    EXPECT_EQ(Fp16::minNormal().toFloat(), std::ldexp(1.0f, -14));
    EXPECT_EQ(Fp16::epsilon().toFloat(), std::ldexp(1.0f, -10));
    EXPECT_TRUE(Fp16::infinity().isInf());
    EXPECT_TRUE(Fp16::quietNaN().isNaN());
}

} // namespace
} // namespace enode
