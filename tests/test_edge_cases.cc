/**
 * @file
 * Edge cases and failure injection: non-default kernels, degenerate
 * shapes, invalid tableaus, solver force-accept behaviour, and
 * controller misuse.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "core/node_model.h"
#include "nn/concat_time.h"
#include "nn/linear.h"
#include "nn/conv2d.h"
#include "ode/ivp.h"

namespace enode {
namespace {

TEST(ConvEdge, KernelSizeFiveMatchesNumericalGradient)
{
    Rng rng(1);
    Conv2d conv(2, 3, 5, rng);
    Tensor x = Tensor::randn(Shape{2, 7, 8}, rng, 1.0f);
    Tensor seed = Tensor::randn(Shape{3, 7, 8}, rng, 1.0f);
    conv.zeroGrad();
    conv.forward(x);
    Tensor grad_in = conv.backward(seed);

    const double eps = 1e-2;
    double diff_sq = 0.0, fd_sq = 0.0;
    for (std::size_t i = 0; i < x.numel(); i += 7) {
        Tensor xp = x, xm = x;
        xp.at(i) += static_cast<float>(eps);
        xm.at(i) -= static_cast<float>(eps);
        auto dot = [&](const Tensor &v) {
            Tensor y = convForward(v, conv.weight(), conv.bias());
            double acc = 0.0;
            for (std::size_t k = 0; k < y.numel(); k++)
                acc += static_cast<double>(y.at(k)) * seed.at(k);
            return acc;
        };
        const double fd = (dot(xp) - dot(xm)) / (2.0 * eps);
        diff_sq += (fd - grad_in.at(i)) * (fd - grad_in.at(i));
        fd_sq += fd * fd;
    }
    EXPECT_LT(std::sqrt(diff_sq / fd_sq), 2e-2);
}

TEST(ConvEdge, OneByOneKernelIsAChannelMix)
{
    Rng rng(2);
    Conv2d conv(3, 2, 1, rng, /*with_bias=*/false);
    Tensor x = Tensor::randn(Shape{3, 4, 4}, rng, 1.0f);
    Tensor y = conv.forward(x);
    // Manually mix channels at one pixel.
    float expect = 0.0f;
    for (std::size_t c = 0; c < 3; c++)
        expect += conv.weight().at(1, c, 0, 0) * x.at(c, 2, 3);
    EXPECT_NEAR(y.at(1, 2, 3), expect, 1e-5);
}

TEST(ConvEdge, EvenKernelIsRejected)
{
    Rng rng(3);
    EXPECT_DEATH({ Conv2d conv(2, 2, 4, rng); }, "odd");
}

TEST(ConvEdge, SinglePixelMap)
{
    // Degenerate 1x1 spatial extent: only the center tap contributes.
    Rng rng(4);
    Conv2d conv(2, 2, 3, rng, /*with_bias=*/false);
    Tensor x = Tensor::randn(Shape{2, 1, 1}, rng, 1.0f);
    Tensor y = conv.forward(x);
    for (std::size_t m = 0; m < 2; m++) {
        float expect = 0.0f;
        for (std::size_t c = 0; c < 2; c++)
            expect += conv.weight().at(m, c, 1, 1) * x.at(c, 0, 0);
        EXPECT_NEAR(y.at(m, 0, 0), expect, 1e-5);
    }
    // Backward must be shape-consistent too.
    Tensor grad = conv.backward(Tensor::ones(Shape{2, 1, 1}));
    EXPECT_EQ(grad.shape(), (Shape{2, 1, 1}));
}

TEST(TableauValidation, InconsistentRowSumPanics)
{
    EXPECT_DEATH(
        {
            ButcherTableau bad("bad", 2, {0.0, 0.6}, {{}, {0.5}},
                               {0.5, 0.5}, {}, false);
        },
        "row-sum");
}

TEST(TableauValidation, WeightsMustSumToOne)
{
    EXPECT_DEATH(
        {
            ButcherTableau bad("bad", 1, {0.0}, {{}}, {0.9}, {}, false);
        },
        "sum to 1");
}

TEST(TableauValidation, UnknownNameIsFatal)
{
    EXPECT_DEATH({ ButcherTableau::byName("rk99"); }, "unknown");
}

/** An ODE whose error estimate never meets a ridiculous tolerance. */
class NoisyOde : public OdeFunction
{
  public:
    Tensor
    eval(double t, const Tensor &h) override
    {
        countEval();
        // Strongly nonlinear: the truncation error cannot vanish.
        Tensor d(h.shape());
        for (std::size_t i = 0; i < h.numel(); i++)
            d.at(i) = std::sin(50.0f * h.at(i)) - 0.3f * h.at(i) +
                      static_cast<float>(std::sin(20.0 * t));
        return d;
    }
};

TEST(SolverEdge, ForceAcceptTerminatesImpossibleTolerance)
{
    // With an unreachable tolerance the driver must not loop forever:
    // steps at minDt (or the per-point trial cap) are force-accepted
    // with a warning and the solve completes.
    setLogLevel(LogLevel::Silent);
    NoisyOde f;
    FixedFactorController ctrl;
    IvpOptions opts;
    opts.tolerance = 1e-30;
    opts.initialDt = 0.1;
    opts.minDt = 1e-3; // high floor -> quick force-accepts
    opts.maxTrialsPerPoint = 8;
    auto res = solveIvp(f, Tensor::ones(Shape{2}), 0.0, 0.5,
                        ButcherTableau::rk23(), ctrl, opts);
    setLogLevel(LogLevel::Info);
    EXPECT_GT(res.stats.evalPoints, 0u);
    EXPECT_LE(res.stats.trials,
              res.stats.evalPoints * opts.maxTrialsPerPoint);
}

TEST(SolverEdge, ZeroLengthIntervalRejected)
{
    NoisyOde f;
    FixedFactorController ctrl;
    IvpOptions opts;
    EXPECT_DEATH(
        {
            solveIvp(f, Tensor::ones(Shape{1}), 1.0, 1.0,
                     ButcherTableau::rk23(), ctrl, opts);
        },
        "t1 > t0");
}

TEST(SolverEdge, ControllerUsedBeforeResetPanics)
{
    FixedFactorController ctrl;
    EXPECT_DEATH({ ctrl.initialDt(); }, "not reset");
}

TEST(NodeModelEdge, EmptyLayerListRejected)
{
    std::vector<std::unique_ptr<EmbeddedNet>> empty;
    EXPECT_DEATH({ NodeModel model(std::move(empty)); }, ">= 1");
}

TEST(NodeModelEdge, ShapePreservationEnforcedAtRun)
{
    // An f that does not preserve the state shape breaks the axpy in
    // the stepper with a shape panic, not silent corruption.
    Rng rng(5);
    auto body = std::make_unique<Sequential>();
    body->add(std::make_unique<ConcatTime>());
    body->add(std::make_unique<Linear>(4, 5, rng)); // 3+1 -> 5 (wrong)
    auto net = std::make_unique<EmbeddedNet>(std::move(body));
    std::vector<std::unique_ptr<EmbeddedNet>> nets;
    nets.push_back(std::move(net));
    NodeModel model(std::move(nets));
    FixedFactorController ctrl;
    IvpOptions opts;
    Tensor x = Tensor::ones(Shape{3});
    EXPECT_DEATH(
        { model.forward(x, ButcherTableau::rk23(), ctrl, opts); },
        "shape");
}

} // namespace
} // namespace enode
