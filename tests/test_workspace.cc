/**
 * @file
 * The thread-local tensor workspace pool and the zero-allocation solver
 * hot path built on it.
 *
 * The pool's miss counter is a real heap allocation, so the central
 * assertions here — "misses == 0 after warm-up" — are the software
 * equivalent of the paper's fixed on-chip buffering claim: once the
 * working set is sized, an adaptive solve touches no allocator.
 */

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/trace_span.h"
#include "ode/ivp.h"
#include "ode/ode_function.h"
#include "ode/step_control.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"

/**
 * Process-wide allocation counter: every operator new in this test
 * binary bumps it. The workspace pool's miss counter only sees pool
 * traffic; this sees *everything*, which is what the disarmed-tracer
 * overhead contract is stated against.
 */
static std::atomic<std::uint64_t> g_heap_allocs{0};

static void *
countedAlloc(std::size_t size)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (size == 0)
        size = 1;
    void *p = std::malloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

/**
 * A replacement operator-new family must be *complete*: libstdc++
 * internals (e.g. stable_sort's temporary buffer) allocate through the
 * nothrow and aligned forms, and under ASan a nothrow allocation served
 * by the un-replaced default paired with our malloc-backed delete is an
 * alloc-dealloc mismatch. Every form below funnels through malloc/free
 * so allocation and deallocation always agree.
 */
static void *
countedAllocNothrow(std::size_t size) noexcept
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (size == 0)
        size = 1;
    return std::malloc(size);
}

static void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (size == 0)
        size = align;
    void *p = std::aligned_alloc(align, (size + align - 1) / align * align);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *operator new(std::size_t size) { return countedAlloc(size); }
void *operator new[](std::size_t size) { return countedAlloc(size); }
void *operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAllocNothrow(size);
}
void *operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAllocNothrow(size);
}
void *operator new(std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void *operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace enode {
namespace {

TEST(Workspace, AcquireReleaseRoundTrip)
{
    auto &ws = Workspace::local();
    ws.trim();
    ws.resetStats();

    auto buf = ws.acquire(1024);
    EXPECT_EQ(buf.size(), 1024u);
    EXPECT_EQ(ws.stats().misses, 1u);
    const float *ptr = buf.data();
    ws.release(std::move(buf));
    EXPECT_EQ(ws.stats().releases, 1u);
    EXPECT_EQ(ws.bytesHeld(), 1024u * sizeof(float));

    // Same size comes back as the same storage, counted as a hit.
    auto again = ws.acquire(1024);
    EXPECT_EQ(ws.stats().hits, 1u);
    EXPECT_EQ(again.data(), ptr);
    EXPECT_EQ(ws.bytesHeld(), 0u);

    // A different size is a fresh allocation, not a resized pooled one.
    auto other = ws.acquire(512);
    EXPECT_EQ(ws.stats().misses, 2u);
    ws.release(std::move(again));
    ws.release(std::move(other));
    ws.trim();
    EXPECT_EQ(ws.bytesHeld(), 0u);
}

TEST(Workspace, PerBucketCapDropsExcessBuffers)
{
    auto &ws = Workspace::local();
    ws.trim();
    ws.resetStats();

    std::vector<std::vector<float>> bufs;
    for (std::size_t i = 0; i < Workspace::kMaxPerBucket + 3; i++)
        bufs.push_back(ws.acquire(64));
    for (auto &b : bufs)
        ws.release(std::move(b));
    EXPECT_EQ(ws.stats().dropped, 3u);
    EXPECT_EQ(ws.bytesHeld(), Workspace::kMaxPerBucket * 64 * sizeof(float));
    ws.trim();
}

TEST(Workspace, TensorsRecycleStorageThroughThePool)
{
    auto &ws = Workspace::local();
    ws.trim();
    ws.resetStats();

    const float *ptr = nullptr;
    {
        Tensor t(Shape{32, 32});
        ptr = t.data();
    } // destructor releases to the pool
    Tensor t2(Shape{4, 16, 16}); // same numel: must reuse the buffer
    EXPECT_EQ(t2.data(), ptr);
    EXPECT_EQ(ws.stats().misses, 1u);

    // Move-assignment swaps buffers: the moved-from tensor carries the
    // target's old storage back to the pool instead of freeing it.
    ws.resetStats();
    {
        Tensor src(Shape{32, 32}, 3.0f); // pool hit or miss, don't care
        Tensor dst(Shape{32, 32});
        const float *dst_ptr = dst.data();
        dst = std::move(src);
        EXPECT_EQ(dst.at(0), 3.0f);
        // src now owns dst's old buffer; both return to the pool here.
        (void)dst_ptr;
    }
    const std::uint64_t misses_before = ws.stats().misses;
    Tensor reuse1(Shape{32, 32});
    Tensor reuse2(Shape{32, 32});
    EXPECT_EQ(ws.stats().misses, misses_before);
    ws.trim();
}

TEST(Workspace, InPlaceTensorOpsPreserveStorage)
{
    Tensor t(Shape{8, 8}, 2.0f);
    const float *ptr = t.data();

    t.scale(0.5f);
    EXPECT_EQ(t.at(0), 1.0f);
    t.fill(7.0f);
    EXPECT_EQ(t.at(63), 7.0f);

    // Same-numel resize and copyFrom keep the storage.
    t.resize(Shape{64});
    EXPECT_EQ(t.data(), ptr);
    Tensor src(Shape{64}, -1.0f);
    t.copyFrom(src);
    EXPECT_EQ(t.data(), ptr);
    EXPECT_EQ(t.at(0), -1.0f);
    EXPECT_EQ(t.shape().dims(), src.shape().dims());

    t.reset();
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.shape().rank(), 0u);
}

/** dh/dt = -h with a mild nonlinearity, enough to keep rk23 adapting. */
class DecayOde : public OdeFunction
{
  public:
    Tensor
    eval(double t, const Tensor &h) override
    {
        countEval();
        Tensor d = h;
        const float s = static_cast<float>(-1.0 - 0.3 * std::sin(3.0 * t));
        for (std::size_t i = 0; i < d.numel(); i++)
            d.at(i) = s * d.at(i) + 0.01f * d.at(i) * d.at(i);
        return d;
    }
};

TEST(Workspace, SolveIvpAllocatesNothingAfterWarmup)
{
    Rng rng(7);
    const Tensor y0 = Tensor::randn(Shape{4, 16, 16}, rng, 0.5f);
    DecayOde f;
    FixedFactorController ctrl;
    IvpOptions opts;
    opts.tolerance = 1e-4;
    opts.recordCheckpoints = false; // inference-style solve
    IvpWorkspace solver_ws;

    // Warm-up sizes the trial/stage buffers and mints the pool's
    // working set. Keep only a value copy of the expected answer: the
    // warm results themselves are destroyed so their buffers return to
    // the pool (a *held* result legitimately owns one buffer; the
    // assertion below is about the per-step hot path, not about the
    // storage of outputs the caller retains).
    Tensor expected;
    std::uint64_t warm_points = 0;
    {
        auto warm = solveIvp(f, y0, 0.0, 1.0, ButcherTableau::rk23(), ctrl,
                             opts, nullptr, &solver_ws);
        ASSERT_GT(warm.stats.evalPoints, 1u);
        warm_points = warm.stats.evalPoints;
        expected.copyFrom(warm.yFinal);
    }
    // Second warm-up with `expected` live: the measured solve below must
    // run against the same set of outstanding buffers it will see.
    solveIvp(f, y0, 0.0, 1.0, ButcherTableau::rk23(), ctrl, opts, nullptr,
             &solver_ws);

    auto &pool = Workspace::local();
    pool.resetStats();
    auto res = solveIvp(f, y0, 0.0, 1.0, ButcherTableau::rk23(), ctrl,
                        opts, nullptr, &solver_ws);
    EXPECT_EQ(pool.stats().misses, 0u)
        << "adaptive solve hit the heap after warm-up";
    EXPECT_EQ(res.stats.evalPoints, warm_points);
    EXPECT_TRUE(Tensor::allClose(res.yFinal, expected, 0.0, 0.0));

    // Diagnostics on (training-style) must still record checkpoints and
    // leave the result numerically identical.
    opts.recordCheckpoints = true;
    auto recorded = solveIvp(f, y0, 0.0, 1.0, ButcherTableau::rk23(), ctrl,
                             opts, nullptr, &solver_ws);
    EXPECT_EQ(recorded.checkpoints.size(), recorded.stats.evalPoints);
    EXPECT_EQ(recorded.trialsPerPoint.size(), recorded.stats.evalPoints);
    EXPECT_TRUE(Tensor::allClose(recorded.yFinal, expected, 0.0, 0.0));
}

TEST(Workspace, DisarmedTraceProbesAllocateNothing)
{
    // The observability contract, measured directly: a disarmed span
    // or instant probe is one relaxed atomic load — no allocation at
    // any rate of probing.
    ASSERT_FALSE(Tracer::instance().armed());
    const std::uint64_t allocs_before =
        g_heap_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 10000; i++) {
        TraceSpan span("probe", "test");
        span.arg("i", static_cast<double>(i));
        Tracer::instance().instant("probe.instant", "test",
                                   {{"i", static_cast<double>(i)}});
    }
    const std::uint64_t allocs_after =
        g_heap_allocs.load(std::memory_order_relaxed);
    EXPECT_EQ(allocs_after - allocs_before, 0u)
        << "disarmed trace probes touched the heap";
}

TEST(Workspace, TracerAddsZeroAllocationsToSolveHotPath)
{
    // The instrumented solver (solve.ivp / solve.trial spans) must
    // allocate exactly as much per solve with the tracer armed at
    // steady state as disarmed — i.e. tracing adds nothing on top of
    // the solver's own (pool-hit, shape-metadata) footprint.
    ASSERT_FALSE(Tracer::instance().armed());

    Rng rng(21);
    const Tensor y0 = Tensor::randn(Shape{4, 16, 16}, rng, 0.5f);
    DecayOde f;
    FixedFactorController ctrl;
    IvpOptions opts;
    opts.tolerance = 1e-4;
    opts.recordCheckpoints = false;
    IvpWorkspace solver_ws;

    const auto solveOnce = [&] {
        solveIvp(f, y0, 0.0, 1.0, ButcherTableau::rk23(), ctrl, opts,
                 nullptr, &solver_ws);
    };
    const auto allocsPerSolve = [&] {
        const std::uint64_t before =
            g_heap_allocs.load(std::memory_order_relaxed);
        solveOnce();
        return g_heap_allocs.load(std::memory_order_relaxed) - before;
    };

    // Warm-ups size the buffers; the working set is steady after two.
    solveOnce();
    solveOnce();

    auto &pool = Workspace::local();
    pool.resetStats();
    const std::uint64_t disarmed_allocs = allocsPerSolve();
    EXPECT_EQ(pool.stats().misses, 0u);
    // Disarmed steady state is itself stable solve-to-solve.
    EXPECT_EQ(allocsPerSolve(), disarmed_allocs);

    // Armed: the first traced solve registers this thread's ring (a
    // one-time allocation); every solve after that must match the
    // disarmed footprint exactly.
    Tracer::instance().arm(1 << 10);
    solveOnce(); // ring registration happens here
    const std::uint64_t armed_allocs = allocsPerSolve();
    Tracer::instance().disarm();
    EXPECT_EQ(armed_allocs, disarmed_allocs)
        << "armed steady-state tracing allocated on the solve hot path";
    EXPECT_FALSE(Tracer::instance().snapshot().empty());
    Tracer::instance().arm(1); // flush this test's events
    Tracer::instance().disarm();
}

TEST(Workspace, Fp16OdeQuantizesWithoutCopyAllocations)
{
    Rng rng(9);
    const Tensor h = Tensor::randn(Shape{4, 16, 16}, rng, 0.5f);
    DecayOde inner;
    Fp16Ode fp16(inner);

    Tensor out;
    fp16.evalInto(0.0, h, out); // warm-up sizes the scratch state
    auto &pool = Workspace::local();
    pool.resetStats();
    for (int i = 0; i < 4; i++)
        fp16.evalInto(0.1 * i, h, out);
    EXPECT_EQ(pool.stats().misses, 0u);

    // The wrapper must round both the state it feeds inner and the
    // derivative it returns: out is f applied to quantized h, quantized.
    Tensor h16 = h;
    h16.quantizeFp16();
    Tensor expect = inner.eval(0.0, h16);
    expect.quantizeFp16();
    fp16.evalInto(0.0, h, out);
    EXPECT_TRUE(Tensor::allClose(out, expect, 0.0, 0.0));
}

} // namespace
} // namespace enode
