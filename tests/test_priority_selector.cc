/**
 * @file
 * Packetized processing (Sec. V.B): later-stream priority, capacity
 * backpressure, and the no-starvation/liveness property.
 */

#include <gtest/gtest.h>

#include "sim/priority_selector.h"

namespace enode {
namespace {

TEST(PrioritySelector, LaterStreamWins)
{
    PrioritySelector sel(4, 8);
    ASSERT_TRUE(sel.push({0, 0}));
    ASSERT_TRUE(sel.push({2, 0}));
    ASSERT_TRUE(sel.push({1, 0}));
    EXPECT_EQ(sel.pop().stream, 2u);
    EXPECT_EQ(sel.pop().stream, 1u);
    EXPECT_EQ(sel.pop().stream, 0u);
}

TEST(PrioritySelector, FifoWithinAStream)
{
    PrioritySelector sel(2, 8);
    for (std::uint32_t i = 0; i < 5; i++)
        ASSERT_TRUE(sel.push({1, i}));
    for (std::uint32_t i = 0; i < 5; i++)
        EXPECT_EQ(sel.pop().index, i);
}

TEST(PrioritySelector, CapacityBackpressure)
{
    PrioritySelector sel(2, 2);
    EXPECT_TRUE(sel.push({0, 0}));
    EXPECT_TRUE(sel.push({0, 1}));
    EXPECT_FALSE(sel.push({0, 2})); // full: producer must stall
    EXPECT_EQ(sel.rejectedPushes(), 1u);
    sel.pop();
    EXPECT_TRUE(sel.push({0, 2}));
}

TEST(PrioritySelector, FifoPolicyDispatchesInArrivalOrder)
{
    // The ablation baseline shared with the serving runtime: strict
    // arrival order regardless of stream tag.
    PrioritySelector sel(4, 8, SelectPolicy::Fifo);
    ASSERT_TRUE(sel.push({0, 0}));
    ASSERT_TRUE(sel.push({3, 0}));
    ASSERT_TRUE(sel.push({1, 0}));
    ASSERT_TRUE(sel.push({3, 1}));
    EXPECT_EQ(sel.pop().stream, 0u);
    EXPECT_EQ(sel.pop().stream, 3u);
    EXPECT_EQ(sel.pop().stream, 1u);
    Packet last = sel.pop();
    EXPECT_EQ(last.stream, 3u);
    EXPECT_EQ(last.index, 1u);
    EXPECT_FALSE(sel.anyReady());
}

TEST(PrioritySelector, PolicyNamesAreStable)
{
    EXPECT_STREQ(selectPolicyName(SelectPolicy::LaterStreamFirst),
                 "later-stream-first");
    EXPECT_STREQ(selectPolicyName(SelectPolicy::Fifo), "fifo");
}

TEST(PrioritySelector, PopOnEmptyPanics)
{
    PrioritySelector sel(2, 2);
    EXPECT_DEATH({ sel.pop(); }, "empty");
}

TEST(PrioritySelector, RoundTripDrainsAllStreams)
{
    // Liveness: with the producer refilling earlier streams only when
    // buffer space exists, every stream eventually drains (the paper's
    // no-stall argument: later streams consume earlier streams' outputs
    // and free space).
    PrioritySelector sel(4, 2);
    std::size_t produced[4] = {0, 0, 0, 0};
    std::size_t consumed[4] = {0, 0, 0, 0};
    const std::size_t per_stream = 50;

    std::size_t safety = 0;
    while ((consumed[0] < per_stream || consumed[1] < per_stream ||
            consumed[2] < per_stream || consumed[3] < per_stream) &&
           safety++ < 10000) {
        // Producer: offer one packet to each stream that still has work,
        // earliest stream first (the natural production order).
        for (std::uint32_t s = 0; s < 4; s++) {
            if (produced[s] < per_stream &&
                sel.push({s, static_cast<std::uint32_t>(produced[s])})) {
                produced[s]++;
            }
        }
        if (sel.anyReady())
            consumed[sel.pop().stream]++;
    }
    for (std::size_t s = 0; s < 4; s++)
        EXPECT_EQ(consumed[s], per_stream) << "stream " << s << " starved";
    EXPECT_EQ(sel.dispatched(), 4 * per_stream);
    EXPECT_LE(sel.peakOccupancy(), 8u);
}

} // namespace
} // namespace enode
