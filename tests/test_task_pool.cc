/**
 * @file
 * TaskPool / IntraOpScope / PooledScratch unit tests: exact-once
 * coverage, static-partition determinism, inline degradation (small
 * ranges, nested calls, no scope), per-worker execution, the
 * zero-allocation warm-up property, and the cross-thread scratch
 * ownership check.
 */

#include <atomic>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/task_pool.h"
#include "tensor/workspace.h"

using namespace enode;

namespace {

TEST(TaskPool, CoversRangeExactlyOnce)
{
    TaskPool pool(3);
    const std::size_t range = 1003;
    std::vector<int> hits(range, 0);
    pool.parallelFor(1, range, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; i++)
            hits[i]++;
    });
    for (std::size_t i = 0; i < range; i++)
        EXPECT_EQ(hits[i], 1) << "item " << i;
}

TEST(TaskPool, PartitionIsDeterministic)
{
    // The chunk boundaries must be a pure function of (grain, range,
    // width) — never of timing. Two runs must see identical chunks.
    TaskPool pool(3);
    auto boundaries = [&] {
        std::mutex mu;
        std::set<std::pair<std::size_t, std::size_t>> chunks;
        pool.parallelFor(4, 103, [&](std::size_t begin, std::size_t end) {
            std::lock_guard<std::mutex> lock(mu);
            chunks.insert({begin, end});
        });
        return chunks;
    };
    const auto first = boundaries();
    for (int i = 0; i < 10; i++)
        EXPECT_EQ(boundaries(), first);
    // Balanced split: 4 ways over 103 items = sizes {26, 26, 26, 25}.
    EXPECT_EQ(first.size(), 4u);
    EXPECT_EQ(first.begin()->first, 0u);
    EXPECT_EQ(first.rbegin()->second, 103u);
}

TEST(TaskPool, SmallRangeRunsInlineOnCaller)
{
    TaskPool pool(3);
    const auto caller = std::this_thread::get_id();
    std::size_t calls = 0;
    // range / grain < 2 ways: must run as one inline chunk.
    pool.parallelFor(64, 100, [&](std::size_t begin, std::size_t end) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 100u);
        calls++;
    });
    EXPECT_EQ(calls, 1u);
}

TEST(TaskPool, ZeroWorkerPoolRunsInline)
{
    TaskPool pool(0);
    const auto caller = std::this_thread::get_id();
    std::atomic<std::size_t> covered{0};
    pool.parallelFor(1, 64, [&](std::size_t begin, std::size_t end) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        covered += end - begin;
    });
    EXPECT_EQ(covered.load(), 64u);
}

TEST(TaskPool, MaxWaysCapsTheSplit)
{
    TaskPool pool(7);
    std::mutex mu;
    std::set<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallelFor(
        1, 1000,
        [&](std::size_t begin, std::size_t end) {
            std::lock_guard<std::mutex> lock(mu);
            chunks.insert({begin, end});
        },
        /*maxWays=*/2);
    EXPECT_EQ(chunks.size(), 2u);
}

TEST(TaskPool, NestedParallelForDegeneratesToSerial)
{
    // A parallelFor issued *from a pool worker* must not split again
    // (that could deadlock the ring); it runs inline on that worker.
    // The caller's own chunk is exempt: a non-worker thread inside a
    // chunk body is an ordinary concurrent caller.
    TaskPool pool(3);
    std::atomic<std::size_t> inner_total{0};
    std::atomic<std::size_t> worker_chunks{0};
    pool.parallelFor(1, 8, [&](std::size_t begin, std::size_t end) {
        const bool on_worker = TaskPool::onWorkerThread();
        const auto outer_thread = std::this_thread::get_id();
        for (std::size_t i = begin; i < end; i++) {
            pool.parallelFor(1, 16, [&](std::size_t b, std::size_t e) {
                if (on_worker) { // nested on a worker: must stay inline
                    EXPECT_EQ(std::this_thread::get_id(), outer_thread);
                }
                inner_total += e - b;
            });
        }
        if (on_worker)
            worker_chunks++;
    });
    EXPECT_EQ(inner_total.load(), 8u * 16u);
    EXPECT_GT(worker_chunks.load(), 0u); // the guarantee was exercised
}

TEST(TaskPool, RunOnWorkersRunsOncePerWorker)
{
    TaskPool pool(4);
    std::mutex mu;
    std::set<std::thread::id> ids;
    std::size_t runs = 0;
    pool.runOnWorkers([&] {
        std::lock_guard<std::mutex> lock(mu);
        ids.insert(std::this_thread::get_id());
        runs++;
    });
    EXPECT_EQ(runs, 4u);
    EXPECT_EQ(ids.size(), 4u);                      // distinct threads
    EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u); // not the caller
}

TEST(TaskPool, OnWorkerThreadFlag)
{
    EXPECT_FALSE(TaskPool::onWorkerThread());
    TaskPool pool(2);
    pool.runOnWorkers([] { EXPECT_TRUE(TaskPool::onWorkerThread()); });
    EXPECT_FALSE(TaskPool::onWorkerThread());
}

TEST(IntraOpScope, DefaultsToSerial)
{
    EXPECT_EQ(IntraOpScope::currentPool(), nullptr);
    EXPECT_EQ(IntraOpScope::currentWidth(), 1u);
    // Without a scope, intraOpParallelFor runs inline on the caller.
    const auto caller = std::this_thread::get_id();
    std::size_t calls = 0;
    intraOpParallelFor(1, 256, [&](std::size_t begin, std::size_t end) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 256u);
        calls++;
    });
    EXPECT_EQ(calls, 1u);
}

TEST(IntraOpScope, InstallsAndRestores)
{
    TaskPool pool(2);
    {
        IntraOpScope scope(&pool, 3);
        EXPECT_EQ(IntraOpScope::currentPool(), &pool);
        EXPECT_EQ(IntraOpScope::currentWidth(), 3u);
        {
            IntraOpScope inner(nullptr, 1); // nested override
            EXPECT_EQ(IntraOpScope::currentPool(), nullptr);
            EXPECT_EQ(IntraOpScope::currentWidth(), 1u);
        }
        EXPECT_EQ(IntraOpScope::currentPool(), &pool);
    }
    EXPECT_EQ(IntraOpScope::currentPool(), nullptr);
    EXPECT_EQ(IntraOpScope::currentWidth(), 1u);
}

TEST(IntraOpScope, WidthCapsPoolSplit)
{
    TaskPool pool(7);
    IntraOpScope scope(&pool, 2);
    std::mutex mu;
    std::set<std::pair<std::size_t, std::size_t>> chunks;
    intraOpParallelFor(1, 1000, [&](std::size_t begin, std::size_t end) {
        std::lock_guard<std::mutex> lock(mu);
        chunks.insert({begin, end});
    });
    EXPECT_EQ(chunks.size(), 2u);
}

TEST(TaskPool, PooledScratchZeroMissAfterWarmUp)
{
    // The rotating chunk->worker offset guarantees every worker sees
    // every chunk shape within a few calls; once every arena is warm,
    // chunk-local PooledScratch must never hit the heap again.
    TaskPool pool(3);
    constexpr std::size_t kScratch = 512;
    auto body = [&] {
        pool.parallelFor(1, pool.width(),
                         [&](std::size_t begin, std::size_t end) {
                             PooledScratch scratch(kScratch);
                             for (std::size_t i = begin; i < end; i++)
                                 scratch.data()[i % kScratch] += 1.0f;
                         });
    };
    for (int i = 0; i < 16; i++)
        body(); // warm-up: rotation covers every worker
    Workspace::local().resetStats();
    pool.runOnWorkers([] { Workspace::local().resetStats(); });
    for (int i = 0; i < 32; i++)
        body();
    std::atomic<std::uint64_t> misses{Workspace::local().stats().misses};
    pool.runOnWorkers([&] { misses += Workspace::local().stats().misses; });
    EXPECT_EQ(misses.load(), 0u);
}

TEST(PooledScratchDeathTest, ReleasingOnAnotherThreadAsserts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            // Construct on this thread, destroy on another: the scratch
            // would leak into the wrong worker's arena.
            auto scratch = std::make_optional<PooledScratch>(64);
            std::thread mover([&] { scratch.reset(); });
            mover.join();
        },
        "different thread");
}

} // namespace
