/**
 * @file
 * Span tracer: disarmed inertness, recording, ring wraparound,
 * multi-thread stitching, and Chrome trace-event JSON export (parsed by
 * a minimal in-test JSON reader, so a malformed export fails here
 * before it fails in Perfetto).
 */

#include <cctype>
#include <cmath>
#include <cstddef>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/trace_span.h"

namespace enode {
namespace {

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON parser — just enough to validate the
// exporter's output shape. Throws std::runtime_error on malformed
// input, which the tests surface as failures.

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    const JsonValue &
    at(const std::string &key) const
    {
        auto it = object.find(key);
        if (it == object.end())
            throw std::runtime_error("missing key: " + key);
        return it->second;
    }

    bool has(const std::string &key) const
    {
        return object.count(key) > 0;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            throw std::runtime_error("trailing garbage");
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            pos_++;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            throw std::runtime_error("unexpected end");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("expected '") + c + "'");
        pos_++;
    }

    JsonValue
    parseValue()
    {
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n')
            return parseNull();
        return parseNumber();
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            pos_++;
            return v;
        }
        for (;;) {
            JsonValue key = parseString();
            expect(':');
            v.object[key.str] = parseValue();
            if (peek() == ',') {
                pos_++;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            pos_++;
            return v;
        }
        for (;;) {
            v.array.push_back(parseValue());
            if (peek() == ',') {
                pos_++;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    throw std::runtime_error("bad escape");
                const char esc = text_[pos_++];
                switch (esc) {
                  case 'n':
                    c = '\n';
                    break;
                  case 't':
                    c = '\t';
                    break;
                  default:
                    c = esc;
                }
            }
            v.str += c;
        }
        if (pos_ >= text_.size())
            throw std::runtime_error("unterminated string");
        pos_++; // closing quote
        return v;
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            v.boolean = false;
            pos_ += 5;
        } else {
            throw std::runtime_error("bad literal");
        }
        return v;
    }

    JsonValue
    parseNull()
    {
        if (text_.compare(pos_, 4, "null") != 0)
            throw std::runtime_error("bad literal");
        pos_ += 4;
        return JsonValue{};
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            pos_++;
        if (pos_ == start)
            throw std::runtime_error("bad number");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = std::stod(text_.substr(start, pos_ - start));
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

/** Re-arm for every test so generations do not leak across tests. */
class TraceSpanTest : public ::testing::Test
{
  protected:
    void TearDown() override { Tracer::instance().disarm(); }
};

TEST_F(TraceSpanTest, DisarmedSpansRecordNothing)
{
    Tracer &tracer = Tracer::instance();
    tracer.arm(64);
    tracer.disarm();
    {
        TraceSpan span("ghost", "test");
        span.arg("x", 1.0);
    }
    tracer.instant("ghost.instant", "test");
    EXPECT_TRUE(tracer.snapshot().empty());
    EXPECT_FALSE(tracer.armed());
}

TEST_F(TraceSpanTest, SpanRecordsNameCategoryArgsAndDuration)
{
    Tracer &tracer = Tracer::instance();
    tracer.arm(64);
    {
        TraceSpan span("unit.work", "test");
        span.arg("alpha", 1.5);
        span.arg("beta", -2.0);
    }
    tracer.disarm();
    const auto events = tracer.snapshot();
    ASSERT_EQ(events.size(), 1u);
    const TraceEvent &e = events[0];
    EXPECT_STREQ(e.name, "unit.work");
    EXPECT_STREQ(e.category, "test");
    EXPECT_GE(e.durNs, 0);
    EXPECT_FALSE(e.instant());
    ASSERT_EQ(e.numArgs, 2u);
    EXPECT_STREQ(e.args[0].key, "alpha");
    EXPECT_DOUBLE_EQ(e.args[0].value, 1.5);
    EXPECT_DOUBLE_EQ(e.args[1].value, -2.0);
}

TEST_F(TraceSpanTest, EventsSurviveDisarmUntilNextArm)
{
    Tracer &tracer = Tracer::instance();
    tracer.arm(64);
    { TraceSpan span("keep.me", "test"); }
    tracer.disarm();
    EXPECT_EQ(tracer.snapshot().size(), 1u);
    tracer.arm(64); // new generation discards the old events
    EXPECT_TRUE(tracer.snapshot().empty());
}

TEST_F(TraceSpanTest, RingWraparoundKeepsNewestEvents)
{
    Tracer &tracer = Tracer::instance();
    const std::size_t cap = 16;
    tracer.arm(cap);
    const int total = 50;
    for (int i = 0; i < total; i++)
        tracer.instant("tick", "test", {{"i", static_cast<double>(i)}});
    tracer.disarm();
    const auto events = tracer.snapshot();
    ASSERT_EQ(events.size(), cap);
    EXPECT_EQ(tracer.dropped(), static_cast<std::uint64_t>(total) - cap);
    // The surviving window is exactly the newest `cap` instants.
    for (std::size_t k = 0; k < cap; k++) {
        ASSERT_EQ(events[k].numArgs, 1u);
        EXPECT_DOUBLE_EQ(events[k].args[0].value,
                         static_cast<double>(total - cap + k));
    }
}

TEST_F(TraceSpanTest, StitchesThreadsWithDistinctTidsSortedByStart)
{
    Tracer &tracer = Tracer::instance();
    tracer.arm(256);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 25;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([t] {
            Tracer::instance().setThreadName("stitch-" +
                                             std::to_string(t));
            for (int i = 0; i < kPerThread; i++) {
                TraceSpan span("stitch.work", "test");
                span.arg("thread", static_cast<double>(t));
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    tracer.disarm();

    // Rings survive their threads: stitching happens after every join.
    const auto events = tracer.snapshot();
    ASSERT_EQ(events.size(),
              static_cast<std::size_t>(kThreads * kPerThread));
    EXPECT_EQ(tracer.threadCount(), static_cast<std::size_t>(kThreads));
    std::map<std::uint32_t, int> per_tid;
    for (std::size_t i = 0; i < events.size(); i++) {
        per_tid[events[i].tid]++;
        if (i > 0) {
            EXPECT_LE(events[i - 1].startNs, events[i].startNs);
        }
    }
    ASSERT_EQ(per_tid.size(), static_cast<std::size_t>(kThreads));
    for (const auto &[tid, count] : per_tid)
        EXPECT_EQ(count, kPerThread);
}

TEST_F(TraceSpanTest, ExportedJsonParsesAndNestsSpans)
{
    Tracer &tracer = Tracer::instance();
    tracer.arm(64);
    tracer.setThreadName("exporter");
    {
        TraceSpan outer("outer.op", "test");
        outer.arg("depth", 0.0);
        {
            TraceSpan inner("inner.op", "test");
            inner.arg("depth", 1.0);
        }
    }
    tracer.instant("marker", "test", {{"kind", 7.0}});
    tracer.disarm();

    const std::string json = tracer.chromeTraceJson();
    JsonValue root = JsonParser(json).parse();
    const JsonValue &trace_events = root.at("traceEvents");
    ASSERT_EQ(trace_events.kind, JsonValue::Kind::Array);

    const JsonValue *outer = nullptr;
    const JsonValue *inner = nullptr;
    const JsonValue *marker = nullptr;
    const JsonValue *thread_meta = nullptr;
    for (const JsonValue &e : trace_events.array) {
        const std::string &name = e.at("name").str;
        if (name == "outer.op")
            outer = &e;
        else if (name == "inner.op")
            inner = &e;
        else if (name == "marker")
            marker = &e;
        else if (name == "thread_name")
            thread_meta = &e;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    ASSERT_NE(marker, nullptr);
    ASSERT_NE(thread_meta, nullptr);

    EXPECT_EQ(outer->at("ph").str, "X");
    EXPECT_EQ(inner->at("ph").str, "X");
    EXPECT_EQ(marker->at("ph").str, "i");
    EXPECT_EQ(marker->at("s").str, "t");
    EXPECT_EQ(thread_meta->at("ph").str, "M");
    EXPECT_EQ(thread_meta->at("args").at("name").str, "exporter");

    // Containment: the inner span's [ts, ts+dur] lies within the
    // outer's, which is what makes viewers nest them.
    const double outer_ts = outer->at("ts").number;
    const double outer_end = outer_ts + outer->at("dur").number;
    const double inner_ts = inner->at("ts").number;
    const double inner_end = inner_ts + inner->at("dur").number;
    EXPECT_GE(inner_ts, outer_ts);
    EXPECT_LE(inner_end, outer_end);

    EXPECT_DOUBLE_EQ(outer->at("args").at("depth").number, 0.0);
    EXPECT_DOUBLE_EQ(inner->at("args").at("depth").number, 1.0);
    EXPECT_DOUBLE_EQ(marker->at("args").at("kind").number, 7.0);
}

TEST_F(TraceSpanTest, ExportHandlesNonFiniteArgValues)
{
    Tracer &tracer = Tracer::instance();
    tracer.arm(16);
    tracer.instant("weird", "test",
                   {{"nan", std::nan("")},
                    {"inf", std::numeric_limits<double>::infinity()}});
    tracer.disarm();
    // JSON has no NaN/Inf literals; the exporter must still produce a
    // parseable document (values shipped as strings).
    JsonValue root = JsonParser(tracer.chromeTraceJson()).parse();
    const JsonValue &events = root.at("traceEvents");
    const JsonValue *weird = nullptr;
    for (const JsonValue &e : events.array)
        if (e.at("name").str == "weird")
            weird = &e;
    ASSERT_NE(weird, nullptr);
    EXPECT_EQ(weird->at("args").at("nan").str, "nan");
    EXPECT_EQ(weird->at("args").at("inf").str, "inf");
}

TEST_F(TraceSpanTest, ExplicitFinishRecordsOnceAndDisarmsSpan)
{
    Tracer &tracer = Tracer::instance();
    tracer.arm(16);
    {
        TraceSpan span("finish.once", "test");
        span.finish();
        span.arg("late", 1.0); // after finish: ignored
    } // destructor must not record a second event
    tracer.disarm();
    const auto events = tracer.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].numArgs, 0u);
}

} // namespace
} // namespace enode
