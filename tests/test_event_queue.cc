/**
 * @file
 * Event kernel: ordering, determinism, reset.
 */

#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.h"

namespace enode {
namespace {

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleAt(30, [&] { order.push_back(3); });
    q.scheduleAt(10, [&] { order.push_back(1); });
    q.scheduleAt(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; i++)
        q.scheduleAt(7, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksCanScheduleMore)
{
    EventQueue q;
    int fired = 0;
    std::function<void()> chain = [&] {
        fired++;
        if (fired < 10)
            q.scheduleIn(5, chain);
    };
    q.scheduleAt(0, chain);
    const auto executed = q.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(executed, 10u);
    EXPECT_EQ(q.now(), 45u);
}

TEST(EventQueue, RunWithDeadlineStopsAndAdvancesTime)
{
    EventQueue q;
    int fired = 0;
    q.scheduleAt(10, [&] { fired++; });
    q.scheduleAt(100, [&] { fired++; });
    q.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 50u);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SchedulingIntoThePastPanics)
{
    EventQueue q;
    q.scheduleAt(10, [] {});
    q.run();
    EXPECT_DEATH({ q.scheduleAt(5, [] {}); }, "past");
}

TEST(EventQueue, ResetClearsState)
{
    EventQueue q;
    q.scheduleAt(10, [] {});
    q.reset();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.now(), 0u);
    q.scheduleAt(1, [] {});
    q.run();
    EXPECT_EQ(q.now(), 1u);
}

} // namespace
} // namespace enode
