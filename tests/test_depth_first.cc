/**
 * @file
 * Depth-first integration: DDG structure, buffer analyses, and the
 * streaming executor's equivalence with the layer-by-layer stepper —
 * in both the serial depth-first order and the packetized pipeline
 * (which must match the serial outputs bit for bit at every width).
 */

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/task_pool.h"
#include "common/trace_span.h"
#include "core/depth_first.h"
#include "core/node_model.h"
#include "ode/rk_stepper.h"

namespace enode {
namespace {

TEST(DepthFirstDdg, Rk23MatchesPaperFigure6)
{
    DepthFirstDdg ddg(ButcherTableau::rk23());
    // Fig. 6(a): p_{i,j} for i in {2,3,4}, j < i -> 6 partial states.
    EXPECT_EQ(ddg.partialStateCount(), 6u);
    // e_1..e_3 partial error states (e itself is the terminal node).
    // RK23's error weights are nonzero at all four stages, so three
    // partials chain before the final e.
    EXPECT_EQ(ddg.partialErrorCount(), 3u);
    ddg.checkAcyclic();
    EXPECT_GE(ddg.criticalPathLength(), 4u);
}

TEST(DepthFirstDdg, BuildsForAllRegisteredTableaus)
{
    for (const auto &name : ButcherTableau::names()) {
        const auto &tab = ButcherTableau::byName(name);
        DepthFirstDdg ddg(tab);
        ddg.checkAcyclic();
        const std::size_t s = tab.stages();
        EXPECT_EQ(ddg.partialStateCount(), s * (s - 1) / 2) << name;
    }
}

TEST(ForwardBuffers, Rk23PaperRowCount)
{
    // Sec. IV.A: for RK23 with a single 3x3 conv f, the paper counts
    // 15 rows: 6 partial states + 3 partial errors + 4 integral psum
    // rows + 2 conv window rows.
    DepthFirstConfig cfg;
    cfg.tableau = &ButcherTableau::rk23();
    cfg.fDepth = 1;
    cfg.H = 64;
    cfg.W = 64;
    cfg.C = 64;
    auto analysis = analyzeForwardBuffers(cfg);
    EXPECT_EQ(analysis.partialStateRows, 6u);
    EXPECT_EQ(analysis.partialErrorRows, 3u);
    EXPECT_EQ(analysis.integralPsumRows, 4u);
    const std::size_t paper_rows = analysis.partialStateRows +
                                   analysis.partialErrorRows +
                                   analysis.integralPsumRows +
                                   cfg.fDepth * (cfg.kernel - 1);
    EXPECT_EQ(paper_rows, 15u);
}

TEST(ForwardBuffers, TableIConfigurations)
{
    DepthFirstConfig cfg;
    cfg.tableau = &ButcherTableau::rk23();
    cfg.fDepth = 4;

    // Configuration A: 64x64x64.
    cfg.H = cfg.W = cfg.C = 64;
    auto a = analyzeForwardBuffers(cfg);
    // Baseline integral-state buffer: 4 full maps = 2 MB (Table I).
    EXPECT_EQ(a.baselineBytes, 4u * 64 * 64 * 64 * 2);
    // Line buffer: 2 * 4 streams * 4 convs * 2 rows = 64 rows = 0.5 MB.
    EXPECT_EQ(a.lineBufferRows, 64u);
    EXPECT_EQ(a.enodeLineBytes, 64u * 64 * 64 * 2);
    // Integral buffer lands near the prototype's 0.44 MB.
    EXPECT_NEAR(static_cast<double>(a.enodeIntegralBytes) / (1 << 20), 0.44,
                0.06);

    // Configuration B: 256x256x64 — eNODE grows ~linearly in W while the
    // baseline grows with H*W.
    cfg.H = cfg.W = 256;
    auto b = analyzeForwardBuffers(cfg);
    EXPECT_EQ(b.baselineBytes, 4u * 256 * 256 * 64 * 2);
    EXPECT_GT(b.reductionFactor(), 3.9 * a.reductionFactor());
}

TEST(ForwardBuffers, ReductionGrowsWithLayerSize)
{
    DepthFirstConfig cfg;
    cfg.tableau = &ButcherTableau::rk23();
    cfg.fDepth = 4;
    cfg.C = 64;
    double prev = 0.0;
    for (std::size_t hw : {32u, 64u, 128u, 256u}) {
        cfg.H = cfg.W = hw;
        auto analysis = analyzeForwardBuffers(cfg);
        EXPECT_GT(analysis.reductionFactor(), prev);
        prev = analysis.reductionFactor();
    }
}

TEST(TrainingBuffers, PaperReductionFactor)
{
    // Sec. IV.B: "the memory size is reduced by 4.85 times for layer
    // size of 64x64" with a 4-layer f.
    DepthFirstConfig cfg;
    cfg.tableau = &ButcherTableau::rk23();
    cfg.fDepth = 4;
    cfg.H = cfg.W = cfg.C = 64;
    auto analysis = analyzeTrainingBuffers(cfg);
    EXPECT_EQ(analysis.trainingStateMaps, 12u); // 3 stages x 4 convs
    EXPECT_NEAR(analysis.reductionFactor(), 4.85, 0.5);
    // Total training states: 12 maps = 6 MB (Fig. 15b's baseline knee).
    EXPECT_EQ(analysis.totalBytes, 12u * 64 * 64 * 64 * 2);
}

TEST(TrainingBuffers, DramTrafficMatchesFig15b)
{
    DepthFirstConfig cfg;
    cfg.tableau = &ButcherTableau::rk23();
    cfg.fDepth = 4;
    cfg.H = cfg.W = cfg.C = 64;
    auto analysis = analyzeTrainingBuffers(cfg);

    const std::size_t mb = 1 << 20;
    // eNODE: 1 MB buffer -> ~0.48 MB traffic; 1.25 MB -> none.
    const double enode_1mb =
        static_cast<double>(analysis.dramTrafficBytes(1 * mb, true)) / mb;
    EXPECT_NEAR(enode_1mb, 0.48, 0.15);
    EXPECT_EQ(analysis.dramTrafficBytes(5 * mb / 4, true), 0u);
    // Baseline: needs ~6 MB to eliminate traffic; at 1 MB it is ~21x
    // worse than eNODE.
    EXPECT_EQ(analysis.dramTrafficBytes(6 * mb, false), 0u);
    const double base_1mb =
        static_cast<double>(analysis.dramTrafficBytes(1 * mb, false)) / mb;
    EXPECT_NEAR(base_1mb / enode_1mb, 21.0, 6.0);
}

TEST(StreamingExecutor, MatchesStepperRk23)
{
    Rng rng(31);
    auto net = EmbeddedNet::makeStreamableConvNet(4, 2, rng);
    Tensor h = Tensor::randn(Shape{4, 12, 10}, rng, 0.5f);

    EmbeddedNetOde ode(*net);
    RkStepper stepper(ButcherTableau::rk23());
    auto ref = stepper.step(ode, 0.3, h, 0.125);

    auto streamed = streamingStep(*net, ButcherTableau::rk23(), 0.3, h,
                                  0.125);
    EXPECT_LT(Tensor::maxAbsDiff(streamed.yNext, ref.yNext), 1e-4);
    ASSERT_FALSE(streamed.errorState.empty());
    EXPECT_LT(Tensor::maxAbsDiff(streamed.errorState, ref.errorState),
              1e-4);
}

TEST(StreamingExecutor, MatchesStepperAcrossTableaus)
{
    Rng rng(37);
    auto net = EmbeddedNet::makeStreamableConvNet(3, 3, rng);
    Tensor h = Tensor::randn(Shape{3, 10, 8}, rng, 0.5f);
    EmbeddedNetOde ode(*net);

    for (const auto &name : ButcherTableau::names()) {
        const auto &tab = ButcherTableau::byName(name);
        RkStepper stepper(tab);
        auto ref = stepper.step(ode, 0.0, h, 0.1);
        auto streamed = streamingStep(*net, tab, 0.0, h, 0.1);
        EXPECT_LT(Tensor::maxAbsDiff(streamed.yNext, ref.yNext), 1e-4)
            << name;
        if (tab.hasEmbedded()) {
            EXPECT_LT(
                Tensor::maxAbsDiff(streamed.errorState, ref.errorState),
                1e-4)
                << name;
        }
    }
}

TEST(StreamingExecutor, PeakOccupancyIsBounded)
{
    // The whole point of depth-first integration: live rows stay O(1) in
    // H. Run two heights and require (a) far fewer live rows than the
    // layer-by-layer buffering of (s+1) full maps and (b) no growth
    // with H.
    Rng rng(41);
    auto net = EmbeddedNet::makeStreamableConvNet(2, 2, rng);
    EmbeddedNetOde ode(*net);

    std::size_t peak_small = 0, peak_large = 0;
    {
        Tensor h = Tensor::randn(Shape{2, 16, 8}, rng, 0.5f);
        auto res = streamingStep(*net, ButcherTableau::rk23(), 0.0, h, 0.1);
        peak_small = res.peakLiveRows;
        EXPECT_LT(peak_small, 5u * 16u / 2u)
            << "streaming should beat full-map buffering";
    }
    {
        Tensor h = Tensor::randn(Shape{2, 48, 8}, rng, 0.5f);
        auto res = streamingStep(*net, ButcherTableau::rk23(), 0.0, h, 0.1);
        peak_large = res.peakLiveRows;
    }
    // Occupancy must not scale with H (allow a small boundary slack).
    EXPECT_LE(peak_large, peak_small + 4);
}

TEST(StreamingPipeline, MatchesStepperRk23)
{
    Rng rng(31);
    auto net = EmbeddedNet::makeStreamableConvNet(4, 2, rng);
    Tensor h = Tensor::randn(Shape{4, 12, 10}, rng, 0.5f);

    EmbeddedNetOde ode(*net);
    RkStepper stepper(ButcherTableau::rk23());
    auto ref = stepper.step(ode, 0.3, h, 0.125);

    TaskPool pool(3);
    PipelineOptions opts;
    opts.pool = &pool;
    StreamingExecutor exec(*net, ButcherTableau::rk23());
    auto piped = exec.runPipelined(0.3, h, 0.125, opts);
    EXPECT_LT(Tensor::maxAbsDiff(piped.yNext, ref.yNext), 1e-4);
    ASSERT_FALSE(piped.errorState.empty());
    EXPECT_LT(Tensor::maxAbsDiff(piped.errorState, ref.errorState), 1e-4);
}

TEST(StreamingPipeline, BitwiseEqualsSerialAtEveryWidth)
{
    // Wave packets only read rows finished in earlier waves and each
    // writes its own row, so the schedule cannot move a bit: serial,
    // width 1, 2, 4 and 8 must produce identical outputs — and this
    // must hold for every registered tableau, embedded or not.
    Rng rng(53);
    auto net = EmbeddedNet::makeStreamableConvNet(3, 2, rng);
    Tensor h = Tensor::randn(Shape{3, 11, 9}, rng, 0.5f);

    for (const auto &name : ButcherTableau::names()) {
        const auto &tab = ButcherTableau::byName(name);
        StreamingExecutor exec(*net, tab);
        auto serial = exec.run(0.1, h, 0.07);
        for (std::size_t width : {1u, 2u, 4u, 8u}) {
            TaskPool pool(width - 1);
            PipelineOptions opts;
            opts.pool = &pool;
            opts.width = width;
            auto piped = exec.runPipelined(0.1, h, 0.07, opts);
            ASSERT_EQ(piped.yNext.numel(), serial.yNext.numel());
            for (std::size_t i = 0; i < serial.yNext.numel(); i++)
                ASSERT_EQ(piped.yNext.at(i), serial.yNext.at(i))
                    << name << " width " << width << " elem " << i;
            if (tab.hasEmbedded()) {
                for (std::size_t i = 0; i < serial.errorState.numel(); i++)
                    ASSERT_EQ(piped.errorState.at(i),
                              serial.errorState.at(i))
                        << name << " width " << width << " err elem " << i;
            }
        }
    }
}

TEST(StreamingPipeline, ReportsOccupancy)
{
    Rng rng(57);
    auto net = EmbeddedNet::makeStreamableConvNet(2, 2, rng);
    Tensor h = Tensor::randn(Shape{2, 24, 8}, rng, 0.5f);

    TaskPool pool(3);
    PipelineOptions opts;
    opts.pool = &pool;
    opts.width = 4;
    StreamingExecutor exec(*net, ButcherTableau::rk23());
    auto piped = exec.runPipelined(0.0, h, 0.1, opts);

    // Serial runs leave the pipeline trace empty.
    auto serial = exec.run(0.0, h, 0.1);
    EXPECT_EQ(serial.pipelineWaves, 0u);
    EXPECT_EQ(serial.pipelinePackets, 0u);
    EXPECT_EQ(serial.pipelineOccupancy, 0.0);

    // Pipelined runs account every compute packet exactly once: the
    // packet count equals the serial row total minus the H fetch rows
    // (fetches fill leftover ring slots and are not compute).
    ASSERT_GT(piped.pipelineWaves, 0u);
    EXPECT_EQ(piped.pipelinePackets + 24u, piped.totalRowsComputed);
    EXPECT_EQ(piped.totalRowsComputed, serial.totalRowsComputed);
    EXPECT_GT(piped.pipelineOccupancy, 0.0);
    EXPECT_LE(piped.pipelineOccupancy, 1.0);
    // Packetization must actually pipeline: far fewer waves than the
    // one-row-per-visit serial schedule.
    EXPECT_LT(piped.pipelineWaves, serial.totalRowsComputed / 2);
}

TEST(StreamingPipeline, WidthOneMatchesSerialRowTotal)
{
    // A width-1 pipeline is the serial scheduler with the same fetch
    // policy: one packet (or one fetch) per wave.
    Rng rng(59);
    auto net = EmbeddedNet::makeStreamableConvNet(2, 2, rng);
    Tensor h = Tensor::randn(Shape{2, 10, 6}, rng, 0.5f);

    TaskPool pool(0);
    PipelineOptions opts;
    opts.pool = &pool;
    opts.width = 1;
    StreamingExecutor exec(*net, ButcherTableau::rk23());
    auto piped = exec.runPipelined(0.0, h, 0.1, opts);
    auto serial = exec.run(0.0, h, 0.1);
    EXPECT_EQ(piped.pipelineWaves, serial.totalRowsComputed);
    EXPECT_EQ(piped.totalRowsComputed, serial.totalRowsComputed);
    EXPECT_EQ(piped.peakLiveRows, serial.peakLiveRows);
}

TEST(StreamingExecutor, RejectsNonStreamableNets)
{
    Rng rng(43);
    auto net = EmbeddedNet::makeConvNet(8, 2, rng); // contains GroupNorm
    Tensor h = Tensor::randn(Shape{8, 8, 8}, rng, 0.5f);
    EXPECT_DEATH(
        { streamingStep(*net, ButcherTableau::rk23(), 0.0, h, 0.1); },
        "Conv2d/ReLU");
}

TEST(StreamingPipeline, EmitsWaveAndPacketSpansWhenTraced)
{
    Rng rng(67);
    auto net = EmbeddedNet::makeStreamableConvNet(2, 2, rng);
    Tensor h = Tensor::randn(Shape{2, 10, 6}, rng, 0.5f);

    Tracer::instance().arm(std::size_t{1} << 12);
    TaskPool pool(3);
    PipelineOptions opts;
    opts.pool = &pool;
    StreamingExecutor exec(*net, ButcherTableau::rk23());
    auto piped = exec.runPipelined(0.0, h, 0.1, opts);
    Tracer::instance().disarm();

    const auto events = Tracer::instance().snapshot();
    std::size_t waves = 0, packets = 0;
    for (const TraceEvent &e : events) {
        if (e.name == nullptr)
            continue;
        if (std::string(e.name) == "pipeline.wave")
            waves++;
        else if (std::string(e.name) == "pipeline.packet")
            packets++;
    }
    // One span per scheduler wave and one per dispatched packet.
    EXPECT_EQ(waves, piped.pipelineWaves);
    EXPECT_EQ(packets, piped.pipelinePackets);
    EXPECT_GT(packets, 0u);
    Tracer::instance().arm(1); // flush this test's events
    Tracer::instance().disarm();
}

} // namespace
} // namespace enode
