/**
 * @file
 * Workloads: physical invariants of the dynamic systems, dataset
 * generation, synthetic image statistics, ResNet cost model.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ode/rk_stepper.h"
#include "workloads/dynamic_systems.h"
#include "workloads/resnet_model.h"
#include "workloads/synthetic_images.h"

namespace enode {
namespace {

TEST(ThreeBody, EnergyConservedByAccurateIntegration)
{
    ThreeBodyOde system;
    Rng rng(1);
    const Tensor x0 = system.randomInitialState(rng);
    const double e0 = system.energy(x0);
    const Tensor x1 =
        integrateFixed(system, ButcherTableau::rk4(), x0, 0.0, 2.0, 1e-3);
    const double e1 = system.energy(x1);
    EXPECT_NEAR(e1, e0, std::abs(e0) * 1e-3);
    // And the system actually moved.
    EXPECT_GT(Tensor::maxAbsDiff(x1, x0), 1e-3);
}

TEST(ThreeBody, SymmetricConfigurationHasSymmetricForces)
{
    ThreeBodyOde system(1.0, {1.0, 1.0, 1.0}, 0.0);
    // Equilateral triangle at rest: net force points to the centroid
    // with equal magnitude for each body.
    Tensor state(Shape{18});
    const double r = 1.0;
    for (int i = 0; i < 3; i++) {
        const double theta = 2.0 * 3.14159265358979 * i / 3.0;
        state.at(3 * i + 0) = static_cast<float>(r * std::cos(theta));
        state.at(3 * i + 1) = static_cast<float>(r * std::sin(theta));
    }
    Tensor d = system.eval(0.0, state);
    double mags[3];
    for (int i = 0; i < 3; i++) {
        const double ax = d.at(9 + 3 * i + 0);
        const double ay = d.at(9 + 3 * i + 1);
        mags[i] = std::sqrt(ax * ax + ay * ay);
    }
    EXPECT_NEAR(mags[0], mags[1], 1e-4);
    EXPECT_NEAR(mags[1], mags[2], 1e-4);
}

TEST(LotkaVolterra, InvariantConservedAlongTrueFlow)
{
    LotkaVolterraOde system;
    Rng rng(2);
    const Tensor x0 = system.randomInitialState(rng);
    const double v0 = system.invariant(x0);
    const Tensor x1 =
        integrateFixed(system, ButcherTableau::rk4(), x0, 0.0, 5.0, 1e-3);
    EXPECT_NEAR(system.invariant(x1), v0, std::abs(v0) * 1e-4);
    // Populations stay positive.
    EXPECT_GT(x1.at(0), 0.0f);
    EXPECT_GT(x1.at(1), 0.0f);
}

TEST(LotkaVolterra, PredatorsGrowWhenPreyAbound)
{
    LotkaVolterraOde system(1.1, 0.4, 0.1, 0.4);
    Tensor state(Shape{2}, {10.0f, 1.0f});
    Tensor d = system.eval(0.0, state);
    EXPECT_GT(d.at(1), 0.0f); // delta*x*y > eta*y
}

TEST(Trajectories, DatasetSplitsAndHorizon)
{
    LotkaVolterraOde system;
    Rng rng(3);
    auto data = generateTrajectories(
        system,
        [&](Rng &r) { return system.randomInitialState(r); }, 8, 3, 0.5,
        rng);
    EXPECT_EQ(data.train.size(), 8u);
    EXPECT_EQ(data.test.size(), 3u);
    EXPECT_DOUBLE_EQ(data.horizon, 0.5);
    for (const auto &pair : data.train) {
        EXPECT_EQ(pair.x0.shape(), Shape{2});
        // Target differs from the input (the system evolves).
        EXPECT_GT(Tensor::maxAbsDiff(pair.target, pair.x0), 1e-5);
    }
}

TEST(SyntheticImages, DeterministicGivenSeed)
{
    SyntheticImageDataset a(cifarLikeConfig(), 7);
    SyntheticImageDataset b(cifarLikeConfig(), 7);
    auto ia = a.sample(3), ib = b.sample(3);
    EXPECT_EQ(ia.label, ib.label);
    EXPECT_LT(Tensor::maxAbsDiff(ia.image, ib.image), 1e-12);
}

TEST(SyntheticImages, ShapesMatchDatasets)
{
    SyntheticImageDataset cifar(cifarLikeConfig(), 1);
    EXPECT_EQ(cifar.sample(0).image.shape(), (Shape{3, 32, 32}));
    SyntheticImageDataset mnist(mnistLikeConfig(), 1);
    EXPECT_EQ(mnist.sample(0).image.shape(), (Shape{1, 28, 28}));
}

TEST(SyntheticImages, ClassesAreSeparable)
{
    // Same-class samples must be closer than cross-class samples on
    // average, otherwise training accuracy is meaningless.
    SyntheticImageDataset gen(cifarLikeConfig(), 11);
    double intra = 0.0, inter = 0.0;
    const int reps = 10;
    for (int i = 0; i < reps; i++) {
        auto a0 = gen.sample(0), b0 = gen.sample(0);
        auto a1 = gen.sample(1);
        intra += (a0.image - b0.image).l2Norm();
        inter += (a0.image - a1.image).l2Norm();
    }
    EXPECT_LT(intra, 0.8 * inter);
}

TEST(SyntheticImages, BatchProducesValidLabels)
{
    SyntheticImageDataset gen(mnistLikeConfig(), 13);
    auto batch = gen.batch(32);
    EXPECT_EQ(batch.size(), 32u);
    for (const auto &item : batch)
        EXPECT_LT(item.label, 10u);
}

TEST(ResnetModel, CostScalesWithDepth)
{
    ResnetConfig cfg;
    cfg.blocks = 100;
    auto r100 = resnetCost(cfg);
    cfg.blocks = 200;
    auto r200 = resnetCost(cfg);
    EXPECT_NEAR(r200.macs / r100.macs, 2.0, 1e-9);
    EXPECT_NEAR(r200.trainingTrafficBytes / r100.trainingTrafficBytes, 2.0,
                1e-9);
    EXPECT_GT(r100.trainingTrafficBytes, r100.inferenceTrafficBytes);
}

TEST(ResnetModel, AbsoluteNumbersAreSane)
{
    ResnetConfig cfg; // 100 blocks, 2 convs, 64ch, 32x32
    auto cost = resnetCost(cfg);
    // 200 convs x (32*32*64) * 64 * 9 MACs.
    EXPECT_DOUBLE_EQ(cost.macs, 200.0 * 32 * 32 * 64 * 64 * 9);
    EXPECT_DOUBLE_EQ(cost.activationBytes, 32.0 * 32 * 64 * 2);
}

} // namespace
} // namespace enode
