/**
 * @file
 * Two-tier cross-solve cache: content hashing, exact-dedup storage with
 * single-flight and LRU bounds, dt-schedule warm-starting, the
 * StepController::reset() repeatability contract the warm tier depends
 * on, and the serving-runtime integration (bitwise exact hits,
 * concurrent dedup, warm solves within tolerance, chaos/watchdog
 * non-poisoning). Built and run under ASan/UBSan and TSan in CI.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/rng.h"
#include "ode/step_control.h"
#include "ode/warm_start.h"
#include "runtime/inference_server.h"
#include "runtime/solve_cache.h"
#include "tensor/hash.h"

namespace enode {
namespace {

constexpr std::uint64_t kSeed = 20240606;
constexpr std::size_t kDim = 6;

std::unique_ptr<NodeModel>
makeReferenceModel()
{
    Rng rng(kSeed);
    return NodeModel::makeMlp(/*num_layers=*/2, kDim, /*hidden=*/24,
                              /*f_depth=*/1, rng);
}

IvpOptions
servingOptions()
{
    IvpOptions opts;
    opts.tolerance = 1e-4;
    opts.initialDt = 0.05;
    opts.recordCheckpoints = false;
    return opts;
}

Tensor
makeInput(std::uint64_t salt)
{
    Rng rng(kSeed + 1000 + salt);
    return Tensor::randn(Shape{kDim}, rng, 0.5f);
}

bool
bitwiseEqual(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       a.numel() * sizeof(float)) == 0;
}

ServerOptions
cachedServerOptions(std::size_t workers, std::size_t capacity,
                    bool paused = false, std::size_t exact_cap = 64,
                    std::size_t warm_cap = 0)
{
    ServerOptions opts;
    opts.numWorkers = workers;
    opts.queueCapacity = capacity;
    opts.ivp = servingOptions();
    opts.startPaused = paused;
    opts.cache.enabled = true;
    opts.cache.exactCapacity = exact_cap;
    opts.cache.warmCapacity = warm_cap;
    // Wide quantization bucket so the warm tests' perturbed inputs
    // deterministically land in the seed input's bucket.
    opts.cache.signatureQuantum = 0.25;
    return opts;
}

// ---------------------------------------------------------------------
// Content hashing
// ---------------------------------------------------------------------

TEST(TensorHash, DeterministicAndSensitive)
{
    const Tensor a = makeInput(0);
    Tensor b(a.shape());
    b.copyFrom(a);
    EXPECT_EQ(hashTensor(a), hashTensor(a));
    EXPECT_EQ(hashTensor(a), hashTensor(b));
    EXPECT_TRUE(hashTensor(a).valid());

    // One-ULP flip in one element must change the digest.
    b.data()[2] = std::nextafter(b.data()[2], 1e9f);
    EXPECT_NE(hashTensor(a), hashTensor(b));
}

TEST(TensorHash, ShapeIsPartOfTheDigest)
{
    Rng rng(kSeed);
    Tensor flat = Tensor::randn(Shape{6}, rng, 1.0f);
    Tensor grid(Shape{2, 3});
    std::memcpy(grid.data(), flat.data(), 6 * sizeof(float));
    // Same bytes, different logical shape: distinct keys.
    EXPECT_NE(hashTensor(flat), hashTensor(grid));
}

TEST(TensorHash, CoarseSignatureBucketsNearbyInputs)
{
    const Tensor a = makeInput(1);
    Tensor near(a.shape());
    near.copyFrom(a);
    near.data()[0] += 1e-4f;
    Tensor far(a.shape());
    for (std::size_t i = 0; i < far.numel(); i++)
        far.data()[i] = a.data()[i] * 3.0f + 2.0f;

    const double quantum = 0.25;
    EXPECT_EQ(coarseSignature(a, quantum), coarseSignature(near, quantum));
    EXPECT_NE(coarseSignature(a, quantum), coarseSignature(far, quantum));
    // Exact keys still tell the near pair apart.
    EXPECT_NE(hashTensor(a), hashTensor(near));
}

TEST(TensorHash, CoarseSignatureScreensNonFiniteInputs)
{
    // llround on a non-finite (or int64-overflowing) moment is
    // unspecified; such inputs must map to the "no signature" sentinel,
    // not a platform-dependent bucket.
    const double quantum = 0.25;
    Tensor nan_input = makeInput(3);
    nan_input.data()[1] = std::numeric_limits<float>::quiet_NaN();
    EXPECT_EQ(coarseSignature(nan_input, quantum), 0u);

    Tensor inf_input = makeInput(3);
    inf_input.data()[0] = std::numeric_limits<float>::infinity();
    EXPECT_EQ(coarseSignature(inf_input, quantum), 0u);

    Tensor huge(Shape{kDim});
    for (std::size_t i = 0; i < huge.numel(); i++)
        huge.data()[i] = 1e30f; // finite mean, bucket index > 2^63
    EXPECT_EQ(coarseSignature(huge, quantum), 0u);

    EXPECT_NE(coarseSignature(makeInput(3), quantum), 0u);
}

TEST(TensorHash, SizedUpdatesSeparateAdjacentVariableFields)
{
    // An empty variable-length field absorbs nothing on its own, so
    // without the length prefix the neighbouring word would slide into
    // its position and alias a different logical input.
    StreamHasher a;
    a.updateSized(nullptr, 0);
    a.update(std::uint64_t{42});
    StreamHasher b;
    b.update(std::uint64_t{42});
    b.updateSized(nullptr, 0);
    EXPECT_NE(a.digest(), b.digest());

    // Moving a byte across a field boundary changes the digest.
    StreamHasher c;
    c.updateSized("ab", 2);
    c.updateSized("c", 1);
    StreamHasher d;
    d.updateSized("a", 1);
    d.updateSized("bc", 2);
    EXPECT_NE(c.digest(), d.digest());
}

// ---------------------------------------------------------------------
// SolveCache storage semantics (no server)
// ---------------------------------------------------------------------

CacheOptions
unitCacheOptions(std::size_t exact_cap = 8, std::size_t warm_cap = 8)
{
    CacheOptions opts;
    opts.enabled = true;
    opts.exactCapacity = exact_cap;
    opts.warmCapacity = warm_cap;
    opts.shards = 2;
    return opts;
}

QueueEntry
makeEntry(const Hash128 &key)
{
    QueueEntry entry;
    entry.request.cacheKey = key;
    entry.request.input = makeInput(99);
    return entry;
}

TEST(SolveCache, PublishedValueIsServedBitwise)
{
    SolveCache cache(unitCacheOptions());
    const Tensor input = makeInput(2);
    const Hash128 key = hashTensor(input);

    Tensor out;
    QueueEntry probe = makeEntry(key);
    EXPECT_EQ(cache.lookupOrAttach(key, probe, out),
              SolveCache::Lookup::Miss);
    EXPECT_TRUE(cache.registerPending(key));
    EXPECT_FALSE(cache.registerPending(key)); // already in flight
    EXPECT_FALSE(cache.isReady(key));
    EXPECT_FALSE(cache.tryServe(key, out));

    EXPECT_TRUE(cache.publishSuccess(key, input).empty());
    EXPECT_TRUE(cache.isReady(key));
    EXPECT_TRUE(cache.tryServe(key, out));
    EXPECT_TRUE(bitwiseEqual(out, input));

    Tensor hit;
    QueueEntry again = makeEntry(key);
    EXPECT_EQ(cache.lookupOrAttach(key, again, hit),
              SolveCache::Lookup::Hit);
    EXPECT_TRUE(bitwiseEqual(hit, input));
    EXPECT_EQ(cache.exactHits(), 2u); // tryServe + lookupOrAttach
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.inserts(), 1u);
    EXPECT_EQ(cache.exactSize(), 1u);
}

TEST(SolveCache, SingleFlightFollowersReleasedOnSuccess)
{
    SolveCache cache(unitCacheOptions());
    const Tensor value = makeInput(3);
    const Hash128 key = hashTensor(value);
    ASSERT_TRUE(cache.registerPending(key));

    QueueEntry follower = makeEntry(key);
    follower.request.id = 42;
    auto future = follower.promise.get_future();
    Tensor out;
    EXPECT_EQ(cache.lookupOrAttach(key, follower, out),
              SolveCache::Lookup::Attached);
    EXPECT_EQ(cache.singleFlightWaits(), 1u);

    std::vector<QueueEntry> released = cache.publishSuccess(key, value);
    ASSERT_EQ(released.size(), 1u);
    EXPECT_EQ(released[0].request.id, 42u);
    // The follower's promise travelled with the entry.
    released[0].promise.set_value(InferResponse{});
    EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
}

TEST(SolveCache, FailureRetractsPendingButKeepsReadyValues)
{
    SolveCache cache(unitCacheOptions());
    const Tensor value = makeInput(4);
    const Hash128 pending_key = hashTensor(value);
    const Hash128 ready_key{pending_key.hi + 1, pending_key.lo + 1};

    ASSERT_TRUE(cache.registerPending(ready_key));
    cache.publishSuccess(ready_key, value);

    ASSERT_TRUE(cache.registerPending(pending_key));
    QueueEntry follower = makeEntry(pending_key);
    follower.request.id = 7;
    Tensor out;
    ASSERT_EQ(cache.lookupOrAttach(pending_key, follower, out),
              SolveCache::Lookup::Attached);

    std::vector<QueueEntry> returned = cache.publishFailure(pending_key);
    ASSERT_EQ(returned.size(), 1u);
    EXPECT_EQ(returned[0].request.id, 7u);
    EXPECT_FALSE(cache.isReady(pending_key));
    EXPECT_EQ(cache.exactSize(), 1u);

    // A late failure for an already-ready key is a no-op.
    EXPECT_TRUE(cache.publishFailure(ready_key).empty());
    EXPECT_TRUE(cache.tryServe(ready_key, out));
    EXPECT_TRUE(bitwiseEqual(out, value));
}

TEST(SolveCache, LruEvictionBoundsReadyEntriesAndSparesPending)
{
    // Single shard so the LRU order is global and deterministic.
    CacheOptions opts = unitCacheOptions(/*exact_cap=*/3);
    opts.shards = 1;
    SolveCache cache(opts);
    const Tensor value = makeInput(5);

    std::vector<Hash128> keys;
    for (std::uint64_t i = 0; i < 5; i++) {
        Hash128 key{0x1000 + i, 0x2000 + i};
        keys.push_back(key);
        ASSERT_TRUE(cache.registerPending(key));
        cache.publishSuccess(key, value);
    }
    EXPECT_EQ(cache.exactSize(), 3u);
    EXPECT_EQ(cache.evictions(), 2u);
    // Cold end evicted, hot end retained.
    EXPECT_FALSE(cache.isReady(keys[0]));
    EXPECT_FALSE(cache.isReady(keys[1]));
    EXPECT_TRUE(cache.isReady(keys[4]));

    // Pending entries hold follower promises and are never evicted,
    // even with the shard over budget — the ready values are the ones
    // sacrificed to make room.
    for (std::uint64_t i = 0; i < 5; i++)
        ASSERT_TRUE(cache.registerPending(Hash128{0x9000 + i, 0x9900 + i}));
    EXPECT_EQ(cache.exactSize(), 5u);
    for (std::uint64_t i = 0; i < 5; i++)
        EXPECT_FALSE(cache.registerPending(Hash128{0x9000 + i, 0x9900 + i}));
    for (std::uint64_t i = 0; i < 5; i++)
        EXPECT_TRUE(
            cache.publishFailure(Hash128{0x9000 + i, 0x9900 + i}).empty());
    EXPECT_EQ(cache.exactSize(), 0u);
}

TEST(SolveCache, WarmTierRoundTripsRecordedSchedules)
{
    SolveCache cache(unitCacheOptions());
    FixedFactorController inner;
    WarmStartController recorder(&inner);
    recorder.beginSolve(nullptr);
    recorder.reset(0.1);
    recorder.accepted(0.1, 5e-5, 1e-4, true);
    recorder.accepted(0.2, 5e-5, 1e-4, true);
    recorder.reset(0.1); // layer boundary: new segment
    recorder.accepted(0.4, 5e-5, 1e-4, true);

    const std::uint64_t sig = 0xDEADBEEFull;
    cache.warmInsert(sig, recorder);
    DtSchedule out;
    ASSERT_TRUE(cache.warmLookup(sig, out));
    ASSERT_EQ(out.layers.size(), 2u);
    EXPECT_EQ(out.layers[0], (std::vector<double>{0.1, 0.2}));
    EXPECT_EQ(out.layers[1], (std::vector<double>{0.4}));
    EXPECT_EQ(cache.warmHits(), 1u);
    EXPECT_EQ(cache.warmSize(), 1u);

    // Signature 0 is the "no signature" sentinel on both paths.
    cache.warmInsert(0, recorder);
    EXPECT_FALSE(cache.warmLookup(0, out));
    EXPECT_EQ(cache.warmSize(), 1u);
    EXPECT_FALSE(cache.warmLookup(sig + 1, out));
}

// ---------------------------------------------------------------------
// StepController::reset() contract — the property the warm tier's
// bitwise claims lean on: after reset(initial_dt), a controller must
// reproduce its trial sequence exactly.
// ---------------------------------------------------------------------

/** Fixed accept/reject script; returns every dt the controller chose. */
std::vector<double>
driveScriptedSolve(StepController &controller)
{
    constexpr double kEps = 1e-4;
    std::vector<double> dts;
    controller.reset(0.05);
    for (int point = 0; point < 6; point++) {
        double dt = controller.initialDt();
        dts.push_back(dt);
        const bool rejected_first = (point == 1 || point == 4);
        if (rejected_first) {
            dt = controller.rejectedDt(dt, 2.5 * kEps, kEps);
            dts.push_back(dt);
        }
        controller.accepted(dt, 0.4 * kEps, kEps, !rejected_first);
    }
    controller.reset(0.05); // second integration layer
    for (int point = 0; point < 3; point++) {
        const double dt = controller.initialDt();
        dts.push_back(dt);
        controller.accepted(dt, 0.9 * kEps, kEps, true);
    }
    return dts;
}

TEST(StepControllerContract, ResetReproducesTrialSequenceBitwise)
{
    std::vector<std::unique_ptr<StepController>> controllers;
    controllers.push_back(std::make_unique<FixedFactorController>());
    controllers.push_back(std::make_unique<ConstantInitController>());
    controllers.push_back(
        std::make_unique<PressTeukolskyController>(/*order=*/3));
    controllers.push_back(std::make_unique<PiController>(/*order=*/3));
    for (auto &controller : controllers) {
        const std::vector<double> first = driveScriptedSolve(*controller);
        const std::vector<double> second = driveScriptedSolve(*controller);
        ASSERT_EQ(first.size(), second.size()) << controller->name();
        EXPECT_EQ(std::memcmp(first.data(), second.data(),
                              first.size() * sizeof(double)),
                  0)
            << controller->name()
            << ": reset() did not restore the trial sequence";
    }
}

TEST(StepControllerContract, WarmWrapperWithoutReplayIsTransparent)
{
    // The decorator must be invisible when it has nothing to replay:
    // same inner state evolution, same proposals, bit for bit.
    PiController bare(/*order=*/3);
    PiController inner(/*order=*/3);
    WarmStartController wrapped(&inner);
    wrapped.beginSolve(nullptr);

    const std::vector<double> reference = driveScriptedSolve(bare);
    const std::vector<double> decorated = driveScriptedSolve(wrapped);
    ASSERT_EQ(reference.size(), decorated.size());
    EXPECT_EQ(std::memcmp(reference.data(), decorated.data(),
                          reference.size() * sizeof(double)),
              0);
    EXPECT_EQ(wrapped.replayedPoints(), 0u);
}

TEST(StepControllerContract, WarmReplayFallsBackOnFirstRejection)
{
    constexpr double kEps = 1e-4;
    DtSchedule schedule;
    schedule.layers = {{0.2, 0.3}, {0.5}};

    FixedFactorController inner;
    WarmStartController warm(&inner);
    warm.beginSolve(&schedule);
    warm.reset(0.05);

    // Replay proposes the cached dts as first trials.
    EXPECT_DOUBLE_EQ(warm.initialDt(), 0.2);
    warm.accepted(0.2, 0.5 * kEps, kEps, true);
    EXPECT_EQ(warm.replayedPoints(), 1u);
    EXPECT_DOUBLE_EQ(warm.initialDt(), 0.3);

    // First rejected replay trial kills the replay for the rest of the
    // solve; the inner adaptive controller owns every later proposal.
    const double retry = warm.rejectedDt(0.3, 3.0 * kEps, kEps);
    EXPECT_DOUBLE_EQ(retry, 0.15); // FixedFactor halves
    EXPECT_TRUE(warm.replayRejected());
    warm.accepted(retry, 0.5 * kEps, kEps, false);

    warm.reset(0.05); // layer 2: replay stays dead after a rejection
    EXPECT_NE(warm.initialDt(), 0.5);
    EXPECT_EQ(warm.replayedPoints(), 1u);

    // The recorder still captured the actually-accepted schedule.
    DtSchedule recorded;
    warm.harvestRecorded(recorded);
    ASSERT_EQ(recorded.layers.size(), 2u);
    EXPECT_EQ(recorded.layers[0], (std::vector<double>{0.2, 0.15}));
}

// ---------------------------------------------------------------------
// Serving-runtime integration
// ---------------------------------------------------------------------

TEST(CachedServing, ExactHitIsBitwiseIdenticalAndSkipsTheSolve)
{
    InferenceServer server(makeReferenceModel,
                           cachedServerOptions(1, 16));
    const Tensor input = makeInput(10);

    auto cold = server.submit(input);
    ASSERT_TRUE(cold.accepted);
    InferResponse r1 = cold.result.get();
    ASSERT_EQ(r1.status, RequestStatus::Ok);
    EXPECT_FALSE(r1.cacheHit);
    EXPECT_GT(r1.stats.fEvals, 0u);

    auto hot = server.submit(input);
    ASSERT_TRUE(hot.accepted);
    InferResponse r2 = hot.result.get();
    ASSERT_EQ(r2.status, RequestStatus::Ok);
    EXPECT_TRUE(r2.cacheHit);
    EXPECT_EQ(r2.stats.fEvals, 0u); // no solver work at all
    EXPECT_TRUE(bitwiseEqual(r1.output, r2.output));

    // The cached bytes are the fresh-solve bytes, not merely close.
    FixedFactorController controller;
    auto model = makeReferenceModel();
    const Tensor reference =
        model->forward(input, server.tableau(), controller,
                       servingOptions())
            .output;
    EXPECT_TRUE(bitwiseEqual(r2.output, reference));

    server.stop();
    ASSERT_NE(server.solveCache(), nullptr);
    EXPECT_EQ(server.solveCache()->exactHits(), 1u);
    EXPECT_EQ(server.solveCache()->inserts(), 1u);
    EXPECT_TRUE(server.modelDigest().valid());

    const MetricsSummary s = server.metrics().summary();
    EXPECT_EQ(s.completed, 2u);
    EXPECT_EQ(s.cacheHits, 1u);
    const std::string text = server.metricsText();
    EXPECT_NE(text.find("enode_cache_exact_hit 1"), std::string::npos);
    EXPECT_NE(text.find("enode_requests_cache_hits 1"),
              std::string::npos);
}

TEST(CachedServing, ConcurrentIdenticalRequestsCostOneSolve)
{
    const std::size_t n = 8;
    InferenceServer server(makeReferenceModel,
                           cachedServerOptions(2, 32, /*paused=*/true));
    const Tensor input = makeInput(11);

    std::vector<std::future<InferResponse>> futures;
    for (std::size_t i = 0; i < n; i++) {
        auto sub = server.submit(input);
        ASSERT_TRUE(sub.accepted);
        futures.push_back(std::move(sub.result));
    }
    server.resume();

    std::vector<InferResponse> responses;
    for (auto &future : futures)
        responses.push_back(future.get());
    server.stop();

    std::size_t solved = 0;
    for (const InferResponse &r : responses) {
        ASSERT_EQ(r.status, RequestStatus::Ok);
        EXPECT_TRUE(bitwiseEqual(r.output, responses[0].output));
        if (!r.cacheHit)
            solved++;
    }
    // One owner solved; every other submission either attached to the
    // owner's pending entry at admission or was screened at dispatch.
    EXPECT_EQ(solved, 1u);
    EXPECT_EQ(server.solveCache()->singleFlightWaits(), n - 1);
    const MetricsSummary s = server.metrics().summary();
    EXPECT_EQ(s.admitted, n);
    EXPECT_EQ(s.completed, n);
    EXPECT_EQ(s.cacheHits, n - 1);
}

TEST(CachedServing, WarmStartStaysWithinToleranceAndCutsTrials)
{
    // ConstantInit restarts the stepsize search at a deliberately bad
    // initial dt for every evaluation point, so a replayed schedule has
    // a lot of rejected trials to save.
    ServerOptions opts =
        cachedServerOptions(1, 16, /*paused=*/false, /*exact_cap=*/64,
                            /*warm_cap=*/64);
    opts.ivp.tolerance = 1e-5;
    opts.ivp.initialDt = 0.4;
    InferenceServer server(
        makeReferenceModel, opts,
        [] { return std::make_unique<ConstantInitController>(); });

    const Tensor seed_input = makeInput(12);
    auto cold = server.submit(seed_input);
    ASSERT_TRUE(cold.accepted);
    InferResponse r1 = cold.result.get();
    ASSERT_EQ(r1.status, RequestStatus::Ok);
    EXPECT_FALSE(r1.warmStarted);
    ASSERT_GT(r1.stats.evalPoints, 0u);

    // Statistically similar but bytewise different input: misses the
    // exact tier, hits the warm tier.
    Tensor near(seed_input.shape());
    near.copyFrom(seed_input);
    near.data()[0] += 1e-4f;
    auto warm = server.submit(near);
    ASSERT_TRUE(warm.accepted);
    InferResponse r2 = warm.result.get();
    ASSERT_EQ(r2.status, RequestStatus::Ok);
    EXPECT_FALSE(r2.cacheHit);
    EXPECT_TRUE(r2.warmStarted);
    ASSERT_GT(r2.stats.evalPoints, 0u);

    // The replayed schedule must cut the per-point search cost.
    const double cold_tpp = static_cast<double>(r1.stats.trials) /
                            static_cast<double>(r1.stats.evalPoints);
    const double warm_tpp = static_cast<double>(r2.stats.trials) /
                            static_cast<double>(r2.stats.evalPoints);
    EXPECT_LT(warm_tpp, cold_tpp);

    // Correctness stays with the error test: the warm-started solve of
    // `near` agrees with a cold solve of `near` to solver accuracy.
    ConstantInitController controller;
    auto model = makeReferenceModel();
    const Tensor reference =
        model->forward(near, server.tableau(), controller, opts.ivp)
            .output;
    double diff = 0.0, norm = 0.0;
    for (std::size_t i = 0; i < reference.numel(); i++) {
        const double d = static_cast<double>(r2.output.data()[i]) -
                         static_cast<double>(reference.data()[i]);
        diff += d * d;
        norm += static_cast<double>(reference.data()[i]) *
                static_cast<double>(reference.data()[i]);
    }
    EXPECT_LT(std::sqrt(diff), 1e-2 * (1.0 + std::sqrt(norm)));

    server.stop();
    EXPECT_GE(server.solveCache()->warmHits(), 1u);
    const MetricsSummary s = server.metrics().summary();
    EXPECT_GE(s.warmStarted, 1u);
    EXPECT_GT(s.trialsPerPointCold, 0.0);
    EXPECT_GT(s.trialsPerPointWarm, 0.0);
    EXPECT_LT(s.trialsPerPointWarm, s.trialsPerPointCold);
}

// ---------------------------------------------------------------------
// Chaos: faults must never populate either tier
// ---------------------------------------------------------------------

FaultSpec
corruptSpec(std::uint64_t first_hit, std::uint64_t count)
{
    FaultSpec spec;
    spec.site = "node.feval";
    spec.kind = FaultKind::CorruptNaN;
    spec.firstHit = first_hit;
    spec.count = count;
    return spec;
}

TEST(CachedServingChaos, FaultedSolvesNeverPopulateEitherTier)
{
    setLogLevel(LogLevel::Silent);
    ServerOptions opts =
        cachedServerOptions(1, 16, /*paused=*/false, /*exact_cap=*/64,
                            /*warm_cap=*/64);
    opts.ivp.maxTrialsPerPoint = 4; // poisoned points fail fast
    InferenceServer server(makeReferenceModel, opts);
    const Tensor input = makeInput(13);

    {
        // Persistent NaN corruption: every rung fails, responses are
        // terminal failures.
        FaultPlan plan;
        plan.seed = 5;
        plan.faults.push_back(corruptSpec(
            0, std::numeric_limits<std::uint64_t>::max()));
        ScopedFaultPlan scoped(plan);
        for (int i = 0; i < 3; i++) {
            auto sub = server.submit(input);
            ASSERT_TRUE(sub.accepted);
            InferResponse r = sub.result.get();
            EXPECT_NE(r.status, RequestStatus::Ok);
            EXPECT_FALSE(r.cacheHit);
        }
        EXPECT_EQ(server.solveCache()->inserts(), 0u);
        EXPECT_EQ(server.solveCache()->exactSize(), 0u);
        EXPECT_EQ(server.solveCache()->warmSize(), 0u);
    }
    {
        // Transient corruption that heals through a rejected trial:
        // the response is Ok, but its step sequence is not what a
        // fresh solve would produce, so it must stay uncacheable too.
        FaultPlan plan;
        plan.seed = 6;
        plan.faults.push_back(corruptSpec(1, 1));
        ScopedFaultPlan scoped(plan);
        auto sub = server.submit(input);
        ASSERT_TRUE(sub.accepted);
        InferResponse r = sub.result.get();
        EXPECT_EQ(r.status, RequestStatus::Ok);
        EXPECT_TRUE(r.output.isFinite());
        EXPECT_FALSE(r.cacheHit);
        EXPECT_EQ(server.solveCache()->inserts(), 0u);
        EXPECT_EQ(server.solveCache()->warmSize(), 0u);
    }
    setLogLevel(LogLevel::Info);

    // Disarmed, the same input solves clean, caches, and matches the
    // reference bit for bit — the faults left no residue.
    auto sub = server.submit(input);
    ASSERT_TRUE(sub.accepted);
    InferResponse r = sub.result.get();
    ASSERT_EQ(r.status, RequestStatus::Ok);
    EXPECT_FALSE(r.cacheHit);
    FixedFactorController controller;
    auto model = makeReferenceModel();
    const Tensor reference =
        model->forward(input, server.tableau(), controller, opts.ivp)
            .output;
    EXPECT_TRUE(bitwiseEqual(r.output, reference));
    server.stop();
    EXPECT_EQ(server.solveCache()->exactSize(), 1u);
    EXPECT_EQ(server.solveCache()->warmSize(), 1u);

    const MetricsSummary s = server.metrics().summary();
    EXPECT_EQ(s.completed + s.failed + s.expired + s.cancelled,
              s.admitted);
}

TEST(CachedServingChaos, PublishFaultRedispatchesSingleFlightFollowers)
{
    setLogLevel(LogLevel::Silent);
    // One worker, both requests staged before any dispatch: the first
    // registers as single-flight owner, the identical second attaches
    // as its follower.
    InferenceServer server(makeReferenceModel,
                           cachedServerOptions(1, 16, /*paused=*/true));
    const Tensor input = makeInput(21);

    auto owner = server.submit(input);
    auto follower = server.submit(input);
    ASSERT_TRUE(owner.accepted);
    ASSERT_TRUE(follower.accepted);

    // A fault between the owner's solve and its cache publish: the
    // solve succeeds, the publish is lost. The pending entry must be
    // retracted and the follower redispatched to solve for itself —
    // never parked forever on a publish that will not come.
    FaultPlan plan;
    plan.seed = 31;
    FaultSpec spec;
    spec.site = "cache.publish";
    spec.kind = FaultKind::Reject;
    spec.firstHit = 0;
    spec.count = std::numeric_limits<std::uint64_t>::max();
    plan.faults.push_back(spec);
    ScopedFaultPlan scoped(plan);

    server.resume();
    InferResponse r_owner = owner.result.get();
    InferResponse r_follower = follower.result.get();
    setLogLevel(LogLevel::Info);

    // Both solved for themselves, neither from the cache, both faults
    // recorded at the probe.
    EXPECT_EQ(r_owner.status, RequestStatus::Ok);
    EXPECT_EQ(r_follower.status, RequestStatus::Ok);
    EXPECT_FALSE(r_owner.cacheHit);
    EXPECT_FALSE(r_follower.cacheHit);
    EXPECT_TRUE(bitwiseEqual(r_owner.output, r_follower.output));
    EXPECT_GT(r_follower.stats.fEvals, 0u) << "follower never redissolved";
    EXPECT_GE(FaultInjector::instance().hits("cache.publish"), 2u);
    EXPECT_EQ(server.solveCache()->inserts(), 0u);
    EXPECT_EQ(server.solveCache()->exactSize(), 0u);

    server.stop();
    const MetricsSummary s = server.metrics().summary();
    EXPECT_EQ(s.admitted, 2u);
    EXPECT_EQ(s.completed, 2u);
    EXPECT_EQ(s.admitted, s.completed + s.expired + s.failed +
                              s.cancelled + s.shed);
}

TEST(CachedServingChaos, WatchdogFailedBatchDoesNotPoisonTheCache)
{
    setLogLevel(LogLevel::Silent);
    ServerOptions opts =
        cachedServerOptions(1, 16, /*paused=*/true, /*exact_cap=*/64,
                            /*warm_cap=*/64);
    opts.maxBatch = 4;
    opts.batchWaitUs = 2000.0;
    opts.degrade.watchdogMs = 40.0;
    InferenceServer server(makeReferenceModel, opts);

    std::vector<Tensor> inputs;
    for (std::size_t i = 0; i < 4; i++)
        inputs.push_back(makeInput(20 + i));

    {
        // Wedge the first batched dispatch long enough for the
        // watchdog to fail all four samples.
        FaultPlan plan;
        FaultSpec stall;
        stall.site = "worker.stall";
        stall.kind = FaultKind::Stall;
        stall.firstHit = 0;
        stall.count = 1;
        stall.stallMs = 300.0;
        plan.faults.push_back(stall);
        ScopedFaultPlan scoped(plan);

        std::vector<std::future<InferResponse>> futures;
        for (const Tensor &input : inputs) {
            auto sub = server.submit(input);
            ASSERT_TRUE(sub.accepted);
            futures.push_back(std::move(sub.result));
        }
        server.resume();
        for (auto &future : futures) {
            InferResponse r = future.get();
            EXPECT_EQ(r.status, RequestStatus::Failed);
            EXPECT_TRUE(r.output.empty());
        }
    }

    // Wait out the wedged worker (single worker: the probe completes
    // only after it recovers), then confirm nothing the watchdog
    // failed left a value behind: every resubmitted input is a cache
    // *miss* that solves to the correct, finite, reference-exact
    // output.
    auto probe = server.submit(makeInput(30));
    ASSERT_TRUE(probe.accepted);
    EXPECT_EQ(probe.result.get().status, RequestStatus::Ok);

    auto model = makeReferenceModel();
    for (const Tensor &input : inputs) {
        auto sub = server.submit(input);
        ASSERT_TRUE(sub.accepted);
        InferResponse r = sub.result.get();
        ASSERT_EQ(r.status, RequestStatus::Ok);
        EXPECT_FALSE(r.cacheHit);
        FixedFactorController controller;
        const Tensor reference =
            model->forward(input, server.tableau(), controller,
                           servingOptions())
                .output;
        EXPECT_TRUE(bitwiseEqual(r.output, reference));
    }
    server.stop();
    setLogLevel(LogLevel::Info);

    const MetricsSummary s = server.metrics().summary();
    EXPECT_EQ(s.watchdogTrips, 1u);
    EXPECT_EQ(s.failed, 4u);
    EXPECT_EQ(s.completed, 5u);
    EXPECT_EQ(s.completed + s.failed + s.expired + s.cancelled,
              s.admitted);
}

TEST(CachedServing, ShutdownCancelsSingleFlightFollowers)
{
    // Followers attached to a pending entry must terminate through the
    // accounting path even when the server never solves the owner.
    InferenceServer server(makeReferenceModel,
                           cachedServerOptions(1, 16, /*paused=*/true));
    const Tensor input = makeInput(14);
    std::vector<std::future<InferResponse>> futures;
    for (std::size_t i = 0; i < 4; i++) {
        auto sub = server.submit(input);
        ASSERT_TRUE(sub.accepted);
        futures.push_back(std::move(sub.result));
    }
    server.stop(/*drain=*/false);
    for (auto &future : futures) {
        const RequestStatus status = future.get().status;
        EXPECT_TRUE(status == RequestStatus::Cancelled ||
                    status == RequestStatus::Ok);
    }
    const MetricsSummary s = server.metrics().summary();
    EXPECT_EQ(s.completed + s.failed + s.expired + s.cancelled,
              s.admitted);
}

TEST(CachedServing, ExpiredOwnerDoesNotPoisonRepeatTraffic)
{
    // The owner's pending registration precedes the queue push, so a
    // worker terminating the request uncacheably (here: a deadline that
    // lapsed before dispatch) always finds — and retracts — the
    // registration. The next identical request must then solve for
    // itself instead of attaching to an orphaned pending entry and
    // hanging forever.
    InferenceServer server(makeReferenceModel, cachedServerOptions(1, 16));
    const Tensor input = makeInput(20);

    auto expired = server.submit(
        input, /*stream=*/0,
        RuntimeClock::now() - std::chrono::milliseconds(1));
    ASSERT_TRUE(expired.accepted);
    EXPECT_EQ(expired.result.get().status,
              RequestStatus::DeadlineExceeded);

    auto retry = server.submit(input);
    ASSERT_TRUE(retry.accepted);
    ASSERT_EQ(retry.result.wait_for(std::chrono::seconds(20)),
              std::future_status::ready);
    InferResponse r = retry.result.get();
    EXPECT_EQ(r.status, RequestStatus::Ok);
    EXPECT_FALSE(r.cacheHit);
    server.stop();
}

TEST(CachedServing, RefusedPushRetractsPendingRegistration)
{
    // Flip side of register-before-push: a refused push must retract
    // the registration it just made, or the key would be poisoned
    // exactly as in the race the ordering fixes.
    InferenceServer server(makeReferenceModel,
                           cachedServerOptions(1, /*capacity=*/1,
                                               /*paused=*/true));
    const Tensor filler = makeInput(21);
    const Tensor victim = makeInput(22);

    auto first = server.submit(filler);
    ASSERT_TRUE(first.accepted);
    auto refused = server.submit(victim); // queue full: push refused
    EXPECT_FALSE(refused.accepted);

    server.resume();
    EXPECT_EQ(first.result.get().status, RequestStatus::Ok);

    // The filler has been popped and completed, so the queue has room;
    // the victim's key must behave as if never seen.
    auto retry = server.submit(victim);
    ASSERT_TRUE(retry.accepted);
    ASSERT_EQ(retry.result.wait_for(std::chrono::seconds(20)),
              std::future_status::ready);
    EXPECT_EQ(retry.result.get().status, RequestStatus::Ok);
    server.stop();
}

TEST(CachedServing, CacheHitPastDeadlineIsDeadlineExceeded)
{
    // A ready-value hit (or follower delivery) whose deadline already
    // lapsed gets the same DeadlineExceeded terminal the queue would
    // have given it — the cached value does not buy back deadline
    // enforcement.
    InferenceServer server(makeReferenceModel, cachedServerOptions(1, 16));
    const Tensor input = makeInput(23);
    auto prime = server.submit(input);
    ASSERT_TRUE(prime.accepted);
    ASSERT_EQ(prime.result.get().status, RequestStatus::Ok);

    auto late = server.submit(
        input, /*stream=*/0,
        RuntimeClock::now() - std::chrono::milliseconds(1));
    ASSERT_TRUE(late.accepted);
    InferResponse r = late.result.get();
    EXPECT_EQ(r.status, RequestStatus::DeadlineExceeded);
    EXPECT_FALSE(r.deadlineMet);
    EXPECT_FALSE(r.cacheHit);
    server.stop();
    const MetricsSummary s = server.metrics().summary();
    EXPECT_EQ(s.completed + s.failed + s.expired + s.cancelled,
              s.admitted);
}

} // namespace
} // namespace enode
