/**
 * @file
 * The composed unified NN core: numerical equivalence of all three
 * datapath modes, buffer accounting/capacity enforcement, and the
 * training-state capture/retire protocol of the backward pass. Plus
 * the FP16-datapath ODE wrapper and the shallow-f layer-splitting
 * mapping of Sec. V.A.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/fp16.h"
#include "common/rng.h"
#include "nn/conv2d.h"
#include "ode/ivp.h"
#include "sim/enode_system.h"
#include "sim/nn_core.h"

namespace enode {
namespace {

class NnCoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Rng rng(9);
        weight_ = Tensor::randn(Shape{8, 8, 3, 3}, rng, 0.4f);
        bias_ = Tensor::randn(Shape{8}, rng, 0.4f);
        x_ = Tensor::randn(Shape{8, 12, 10}, rng, 0.6f);
        grad_ = Tensor::randn(Shape{8, 12, 10}, rng, 0.6f);
        core_.loadWeights(weight_);
    }

    NnCore core_{"core0"};
    Tensor weight_, bias_, x_, grad_;
};

TEST_F(NnCoreTest, ForwardMatchesReferenceWithRelu)
{
    Tensor out = core_.forward(x_, bias_, /*relu=*/true);
    Tensor ref = convForward(x_, weight_, bias_);
    for (std::size_t i = 0; i < ref.numel(); i++)
        if (ref.at(i) < 0.0f)
            ref.at(i) = 0.0f;
    EXPECT_LT(Tensor::maxAbsDiff(out, ref), 1e-4);
    EXPECT_GT(core_.stats().reluOps, 0u);
    EXPECT_EQ(core_.stats().packetsCollected, 12u * 10u);
}

TEST_F(NnCoreTest, BackwardDataMatchesReference)
{
    Tensor out = core_.backwardData(grad_);
    Tensor ref = convBackwardData(grad_, weight_);
    EXPECT_LT(Tensor::maxAbsDiff(out, ref), 1e-4);
}

TEST_F(NnCoreTest, WeightGradUsesCapturedTrainingState)
{
    core_.forward(x_, bias_, false, /*capture_training_state=*/true);
    EXPECT_EQ(core_.stats().trainingStatesCaptured, 1u);
    EXPECT_GT(core_.trainingBuffer().usedBytes(), 0u);

    Tensor grad_w = core_.weightGrad(grad_);
    Tensor ref = convBackwardWeights(x_, grad_, 3);
    EXPECT_LT(Tensor::maxAbsDiff(grad_w, ref), 1e-4);

    core_.retireTrainingState();
    EXPECT_EQ(core_.trainingBuffer().usedBytes(), 0u);
}

TEST_F(NnCoreTest, WeightGradWithoutCaptureIsABug)
{
    EXPECT_DEATH({ core_.weightGrad(grad_); }, "no training state");
}

TEST_F(NnCoreTest, TrainingBufferCapacityEnforced)
{
    NnCoreConfig tiny;
    tiny.trainingBufferBytes = x_.numel() * 2 + 16; // room for one state
    NnCore small("tiny", tiny);
    small.loadWeights(weight_);
    small.forward(x_, bias_, false, true);
    EXPECT_DEATH({ small.forward(x_, bias_, false, true); }, "overflow");
}

TEST_F(NnCoreTest, LineBufferSizedByDepthFirstWindowOnly)
{
    // The line buffer must hold K rows of one map regardless of H —
    // the depth-first property. A buffer sized for exactly that window
    // must work for any height.
    NnCoreConfig cfg;
    cfg.lineBufferBytes = 3 * 10 * 8 * 2; // K x W x lanes x 2B
    NnCore snug("snug", cfg);
    snug.loadWeights(weight_);
    Rng rng(10);
    Tensor tall = Tensor::randn(Shape{8, 64, 10}, rng, 0.5f);
    EXPECT_NO_FATAL_FAILURE(snug.forward(tall, bias_, false));
    EXPECT_EQ(snug.lineBuffer().usedBytes(), 0u); // released after use
    EXPECT_GT(snug.lineBuffer().peakUsedBytes(), 0u);
}

TEST_F(NnCoreTest, ActivityAccountingIsComplete)
{
    core_.forward(x_, bias_, true, true);
    core_.backwardData(grad_);
    ActivityCounts activity;
    core_.addActivity(activity);
    EXPECT_EQ(activity.macs, core_.peArray().macCount());
    EXPECT_GT(activity.regAccesses, 0u);
    EXPECT_GT(activity.sramReads, 0u);
    EXPECT_GT(activity.sramWrites, 0u);
    EXPECT_GT(activity.aluOps, 0u);
}

TEST(Fp16OdeWrapper, QuantizesDerivativeToHalfGrid)
{
    class Plain : public OdeFunction
    {
      public:
        Tensor
        eval(double, const Tensor &h) override
        {
            countEval();
            return h * 0.333333f;
        }
    } inner;

    Fp16Ode wrapped(inner);
    Tensor h(Shape{2}, {1.0f, 2.0f});
    Tensor d = wrapped.eval(0.0, h);
    // Every output must be exactly representable in half precision.
    for (std::size_t i = 0; i < d.numel(); i++)
        EXPECT_EQ(d.at(i), roundToFp16(d.at(i)));
    EXPECT_EQ(wrapped.evalCount(), 1u);
    EXPECT_EQ(inner.evalCount(), 1u);
}

TEST(Fp16OdeWrapper, LimitsAchievableAccuracy)
{
    class Decay : public OdeFunction
    {
      public:
        Tensor
        eval(double, const Tensor &h) override
        {
            countEval();
            return h * -1.0f;
        }
    };
    Decay fp32;
    Decay inner;
    Fp16Ode fp16(inner);

    FixedFactorController c1, c2;
    IvpOptions opts;
    opts.tolerance = 1e-8;
    opts.initialDt = 0.05;
    auto exact = std::exp(-1.0);
    auto r32 = solveIvp(fp32, Tensor::ones(Shape{1}), 0.0, 1.0,
                        ButcherTableau::rk23(), c1, opts);
    auto r16 = solveIvp(fp16, Tensor::ones(Shape{1}), 0.0, 1.0,
                        ButcherTableau::rk23(), c2, opts);
    EXPECT_GT(std::abs(r16.yFinal.at(0) - exact),
              std::abs(r32.yFinal.at(0) - exact));
    // Still within half-precision expectations (~1e-3 relative).
    EXPECT_LT(std::abs(r16.yFinal.at(0) - exact), 5e-3);
}

TEST(LayerSplitting, ShallowFRecoversUtilization)
{
    // fDepth = 2 on 4 cores: without splitting, two cores idle; with
    // splitting each layer spreads over two cores and the trial
    // finishes in roughly half the cycles.
    SystemConfig plain = SystemConfig::configA();
    plain.layer.fDepth = 2;
    EnodeSystem without(plain);

    SystemConfig split = plain;
    split.splitShallowLayers = true;
    EnodeSystem with(split);

    const double ratio = without.forwardTrialCost().cycles /
                         with.forwardTrialCost().cycles;
    EXPECT_GT(ratio, 1.6);
    EXPECT_LT(ratio, 2.2);
}

TEST(LayerSplitting, NoEffectWhenDepthMatchesCores)
{
    SystemConfig plain = SystemConfig::configA(); // fDepth = 4 = cores
    SystemConfig split = plain;
    split.splitShallowLayers = true;
    EnodeSystem a(plain), b(split);
    EXPECT_DOUBLE_EQ(a.forwardTrialCost().cycles,
                     b.forwardTrialCost().cycles);
}

} // namespace
} // namespace enode
