/**
 * @file
 * Deadline-aware admission control and brownout under overload.
 *
 * Unit level: the AdmissionController cost model (per-shape EWMA rows,
 * drain estimate, warm-up gate), the shed hysteresis band, and the
 * brownout ladder's enter/exit/dwell state machine, all driven with
 * synthetic observations — no server, no clocks beyond the controller's
 * own.
 *
 * End-to-end: a server with overload control sheds an already-late
 * request at submit, enters brownout under a staged flood (paused
 * server, queued backlog, resume), and — the property at the heart of
 * the whole subsystem — reconciles every terminal counter exactly under
 * a seeded chaos soak across worker counts and batch settings:
 *
 *     admitted == completed + expired + failed + cancelled + shed
 *
 * Built and run under ThreadSanitizer in CI.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/rng.h"
#include "runtime/admission.h"
#include "runtime/exposition.h"
#include "runtime/inference_server.h"
#include "workloads/load_gen.h"

namespace enode {
namespace {

constexpr std::uint64_t kSeed = 777001;
constexpr std::size_t kDim = 6;

std::unique_ptr<NodeModel>
makeReferenceModel()
{
    Rng rng(kSeed);
    return NodeModel::makeMlp(/*num_layers=*/2, kDim, /*hidden=*/24,
                              /*f_depth=*/1, rng);
}

ServerOptions
serverOptions(std::size_t workers, std::size_t capacity,
              bool paused = false)
{
    ServerOptions opts;
    opts.numWorkers = workers;
    opts.queueCapacity = capacity;
    opts.ivp.tolerance = 1e-4;
    opts.ivp.initialDt = 0.05;
    opts.startPaused = paused;
    return opts;
}

Tensor
makeInput(std::uint64_t salt)
{
    Rng rng(kSeed + 1000 + salt);
    return Tensor::randn(Shape{kDim}, rng, 0.5f);
}

OverloadOptions
fastBrownout()
{
    // Instant-reacting monitor for unit tests: no dwell, full-weight
    // EWMA samples, occupancy floor kept (tests set occupancy
    // explicitly).
    OverloadOptions o;
    o.enabled = true;
    o.minDwellMs = 0.0;
    o.ewmaAlpha = 1.0;
    o.targetDelayMs = 10.0;
    return o;
}

// ---------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------

TEST(AdmissionCostModel, PerShapeRowsAreIndependent)
{
    OverloadOptions o;
    o.enabled = true;
    o.ewmaAlpha = 1.0;
    o.minObservations = 1;
    AdmissionController adm(o, /*numWorkers=*/1);

    const Tensor small(Shape{4});
    const Tensor large(Shape{64, 64});
    const std::uint64_t small_key = shapeKeyOf(small);
    const std::uint64_t large_key = shapeKeyOf(large);
    ASSERT_NE(small_key, large_key);

    adm.observeSolve(small_key, 2.0, 1);
    adm.observeSolve(large_key, 50.0, 1);

    // Empty queue: the estimate is just the shape's own cost row.
    EXPECT_NEAR(adm.estimateMs(small_key, 0), 2.0, 1e-9);
    EXPECT_NEAR(adm.estimateMs(large_key, 0), 50.0, 1e-9);

    // An unknown shape falls back to the mix-wide service cost.
    const std::uint64_t other_key = shapeKeyOf(Tensor(Shape{7}));
    EXPECT_GT(adm.estimateMs(other_key, 0), 0.0);
}

TEST(AdmissionCostModel, QueueDepthScalesTheDrainTerm)
{
    OverloadOptions o;
    o.enabled = true;
    o.ewmaAlpha = 1.0;
    AdmissionController adm(o, /*numWorkers=*/2);

    const std::uint64_t key = shapeKeyOf(Tensor(Shape{kDim}));
    adm.observeSolve(key, 10.0, 1);

    const double empty = adm.estimateMs(key, 0);
    const double deep = adm.estimateMs(key, 10);
    // 10 queued ahead at >= 10 ms / 2 workers each adds >= 50 ms.
    EXPECT_GE(deep - empty, 50.0 - 1e-9);
}

TEST(AdmissionCostModel, ShapeKeyDistinguishesRankAndOrder)
{
    EXPECT_NE(shapeKeyOf(Tensor(Shape{4, 8})),
              shapeKeyOf(Tensor(Shape{8, 4})));
    EXPECT_NE(shapeKeyOf(Tensor(Shape{32})),
              shapeKeyOf(Tensor(Shape{32, 1})));
}

// ---------------------------------------------------------------------
// Shed decision + hysteresis
// ---------------------------------------------------------------------

TEST(AdmissionShed, LapsedBudgetShedsEvenBeforeWarmup)
{
    AdmissionController adm(fastBrownout(), 1);
    // No observations at all: the model is cold, but a request already
    // past its deadline needs no model.
    const auto v = adm.admit(1, 0, -1.0, 0);
    EXPECT_TRUE(v.shed);
    EXPECT_EQ(adm.sheds(), 1u);
}

TEST(AdmissionShed, ColdModelAdmitsEverythingElse)
{
    OverloadOptions o = fastBrownout();
    o.minObservations = 8;
    AdmissionController adm(o, 1);
    // Infeasible-looking depth, but the model has no observations yet:
    // admission must not guess.
    EXPECT_FALSE(adm.admit(1, 0, 1.0, 1000).shed);
}

TEST(AdmissionShed, HysteresisBandBlocksFlapping)
{
    OverloadOptions o = fastBrownout();
    o.minObservations = 1;
    o.hysteresisRatio = 0.5;
    AdmissionController adm(o, 1);

    const std::uint64_t key = shapeKeyOf(Tensor(Shape{kDim}));
    adm.observeSolve(key, 10.0, 1); // own cost 10 ms

    // Estimate 10 ms > 8 ms budget: shed, and the controller latches
    // into its shedding state.
    EXPECT_TRUE(adm.admit(key, 0, 8.0, 0).shed);
    // Same request with a 12 ms budget would pass a naive check
    // (10 <= 12) but not the hysteresis bar (10 > 0.5 * 12).
    EXPECT_TRUE(adm.admit(key, 0, 12.0, 0).shed);
    // A budget comfortably inside the band re-admits (10 <= 0.5 * 25)
    // and unlatches.
    EXPECT_FALSE(adm.admit(key, 0, 25.0, 0).shed);
    // Unlatched: plain comparison again (10 <= 12 admits now).
    EXPECT_FALSE(adm.admit(key, 0, 12.0, 0).shed);
}

// ---------------------------------------------------------------------
// Brownout ladder
// ---------------------------------------------------------------------

TEST(Brownout, ClimbsAndDescendsWithTracedTransitions)
{
    AdmissionController adm(fastBrownout(), 1);
    EXPECT_EQ(adm.level(), 0);
    EXPECT_DOUBLE_EQ(adm.collectWindowScale(), 1.0);
    EXPECT_FALSE(adm.relaxTolerance(0));

    // Queue delay 2x target at full occupancy: score 2.0 -> level 2.
    adm.observeQueueDelay(20.0, 1.0);
    EXPECT_EQ(adm.level(), 2);
    EXPECT_TRUE(adm.relaxTolerance(0));
    EXPECT_FALSE(adm.relaxTolerance(1)); // stream 1 is not low priority
    EXPECT_LT(adm.collectWindowScale(), 1.0);

    // Score 4+ -> level 3.
    adm.observeQueueDelay(60.0, 1.0);
    EXPECT_EQ(adm.level(), 3);
    // Level 3 sheds low-priority outright, whatever the estimate.
    EXPECT_TRUE(adm.admit(1, /*stream=*/0, 1e6, 0).shed);
    EXPECT_FALSE(adm.admit(1, /*stream=*/2, 1e6, 0).shed);

    // Recovery descends one level per observation, not in one jump.
    adm.observeQueueDelay(0.0, 1.0);
    EXPECT_EQ(adm.level(), 2);
    adm.observeQueueDelay(0.0, 1.0);
    EXPECT_EQ(adm.level(), 1);
    adm.observeQueueDelay(0.0, 1.0);
    EXPECT_EQ(adm.level(), 0);
    EXPECT_GE(adm.transitions(), 5u);
    EXPECT_GT(adm.levelResidencyMs(0), 0.0);
}

TEST(Brownout, OccupancyFloorGatesTheClimb)
{
    AdmissionController adm(fastBrownout(), 1);
    // Huge queue delay but idle workers: a paused or draining server,
    // not overload. The ladder must not engage.
    adm.observeQueueDelay(500.0, 0.0);
    EXPECT_EQ(adm.level(), 0);
    // Same delay at full occupancy is the real thing.
    adm.observeQueueDelay(500.0, 1.0);
    EXPECT_EQ(adm.level(), 3);
}

TEST(Brownout, DwellSuppressesFlapping)
{
    OverloadOptions o = fastBrownout();
    o.minDwellMs = 60000.0; // effectively: one transition per test
    AdmissionController adm(o, 1);
    adm.observeQueueDelay(100.0, 1.0); // first move is free
    EXPECT_EQ(adm.level(), 3);
    adm.observeQueueDelay(0.0, 1.0); // wants to descend; dwell says no
    EXPECT_EQ(adm.level(), 3);
}

TEST(Brownout, SnapshotExposesPrometheusCounters)
{
    AdmissionController adm(fastBrownout(), 1);
    adm.admit(1, 0, -1.0, 0); // one shed
    const StatGroup snap = adm.snapshot();
    EXPECT_EQ(snap.get("overload.sheds"), 1.0);
    const std::string text = prometheusText(snap);
    EXPECT_NE(text.find("# TYPE enode_overload_sheds counter"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE enode_overload_brownout_level gauge"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// End-to-end against a real server
// ---------------------------------------------------------------------

TEST(OverloadServer, LateRequestIsShedAtSubmitNotServed)
{
    setLogLevel(LogLevel::Silent);
    ServerOptions opts = serverOptions(1, 8);
    opts.overload.enabled = true;
    InferenceServer server(makeReferenceModel, opts);

    auto sub = server.submit(makeInput(0), 0,
                             RuntimeClock::now() -
                                 std::chrono::milliseconds(5));
    ASSERT_TRUE(sub.accepted);
    InferResponse r = sub.result.get();
    EXPECT_EQ(r.status, RequestStatus::Shed);
    EXPECT_FALSE(r.deadlineMet);
    EXPECT_TRUE(r.output.empty());

    // A healthy request on the same server still serves normally.
    auto ok = server.submit(makeInput(1));
    ASSERT_TRUE(ok.accepted);
    EXPECT_EQ(ok.result.get().status, RequestStatus::Ok);
    server.stop();

    const MetricsSummary m = server.metrics().summary();
    EXPECT_EQ(m.shed, 1u);
    EXPECT_EQ(m.completed, 1u);
    EXPECT_EQ(m.admitted,
              m.completed + m.expired + m.failed + m.cancelled + m.shed);
    ASSERT_NE(server.admission(), nullptr);
    EXPECT_EQ(server.admission()->sheds(), 1u);
    setLogLevel(LogLevel::Info);
}

TEST(OverloadServer, MetricsTextCarriesOverloadFamily)
{
    ServerOptions opts = serverOptions(1, 8);
    opts.overload.enabled = true;
    InferenceServer server(makeReferenceModel, opts);
    auto sub = server.submit(makeInput(0));
    ASSERT_TRUE(sub.accepted);
    sub.result.get();
    const std::string text = server.metricsText();
    EXPECT_NE(text.find("enode_overload_brownout_level"),
              std::string::npos);
    EXPECT_NE(text.find("enode_requests_shed"), std::string::npos);
    server.stop();
}

TEST(OverloadServer, StagedFloodEntersBrownoutAndRecovers)
{
    setLogLevel(LogLevel::Silent);
    ServerOptions opts = serverOptions(1, 256, /*paused=*/true);
    opts.overload.enabled = true;
    // A monitor tuned to trip within one staged backlog: tiny defended
    // delay, no dwell, heavyweight samples.
    opts.overload.targetDelayMs = 0.5;
    opts.overload.minDwellMs = 0.0;
    opts.overload.ewmaAlpha = 0.5;
    InferenceServer server(makeReferenceModel, opts);

    // Stage a backlog while the workers are paused, let it age past the
    // defended delay, then release: every dequeue observes a queue
    // delay far above target at full occupancy.
    std::vector<std::future<InferResponse>> futures;
    for (std::uint64_t i = 0; i < 32; i++) {
        auto sub = server.submit(makeInput(i), /*stream=*/0);
        ASSERT_TRUE(sub.accepted);
        futures.push_back(std::move(sub.result));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    server.resume();
    for (auto &f : futures)
        f.get();

    ASSERT_NE(server.admission(), nullptr);
    const AdmissionController &adm = *server.admission();
    EXPECT_GT(adm.transitions(), 0u) << "flood never entered brownout";
    double elevated_ms = 0.0;
    for (int level = 1; level <= 3; level++)
        elevated_ms += adm.levelResidencyMs(level);
    EXPECT_GT(elevated_ms, 0.0);
    // Low-priority solves during the elevated phase ran relaxed.
    EXPECT_GT(adm.relaxedSolves(), 0u);

    // Drain + idle observations walk the ladder back down: serve sparse
    // healthy traffic until the level reads 0 again.
    for (std::uint64_t i = 0; i < 64 && adm.level() > 0; i++) {
        auto sub = server.submit(makeInput(100 + i), /*stream=*/2);
        ASSERT_TRUE(sub.accepted);
        sub.result.get();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(adm.level(), 0) << "brownout never exited after recovery";
    server.stop();

    const MetricsSummary m = server.metrics().summary();
    EXPECT_EQ(m.admitted,
              m.completed + m.expired + m.failed + m.cancelled + m.shed);
    setLogLevel(LogLevel::Info);
}

TEST(OverloadServer, ExpiredBacklogResolvesWithoutFreshTraffic)
{
    // Regression: the batcher's seed hunt diverts already-expired
    // entries while searching for a live seed. It must ship those
    // casualties when the queue runs dry — not park in a blocking pop
    // holding their unfulfilled promises until the next arrival or
    // shutdown. Recipe: stage a backlog behind paused workers, let
    // every deadline lapse, release, then submit NOTHING else.
    ServerOptions opts = serverOptions(1, 64, /*paused=*/true);
    opts.maxBatch = 4;
    opts.batchWaitUs = 200.0;
    InferenceServer server(makeReferenceModel, opts);

    std::vector<std::future<InferResponse>> futures;
    for (std::uint64_t i = 0; i < 16; i++) {
        auto sub = server.submit(
            makeInput(i), /*stream=*/0,
            RuntimeClock::now() + std::chrono::milliseconds(5));
        ASSERT_TRUE(sub.accepted);
        futures.push_back(std::move(sub.result));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server.resume();

    for (std::size_t i = 0; i < futures.size(); i++) {
        ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(10)),
                  std::future_status::ready)
            << "expired request " << i
            << " hung in the batcher instead of resolving";
        EXPECT_EQ(futures[i].get().status,
                  RequestStatus::DeadlineExceeded);
    }
    server.stop();
    const MetricsSummary m = server.metrics().summary();
    EXPECT_EQ(m.expired, futures.size());
    EXPECT_EQ(m.admitted,
              m.completed + m.expired + m.failed + m.cancelled + m.shed);
}

// ---------------------------------------------------------------------
// Seeded chaos soak: the counter identity across configurations
// ---------------------------------------------------------------------

TEST(OverloadSoak, CountersReconcileExactlyUnderChaos)
{
    setLogLevel(LogLevel::Silent);
    // Transient NaN bursts through every soak in this test.
    FaultPlan plan;
    plan.seed = kSeed + 9;
    for (std::uint64_t burst = 0; burst < 16; burst++) {
        FaultSpec spec;
        spec.site = "node.feval";
        spec.kind = FaultKind::CorruptNaN;
        spec.firstHit = 50 + burst * 600;
        spec.count = 12;
        plan.faults.push_back(spec);
    }

    for (std::size_t workers : {1u, 2u, 4u}) {
        for (std::size_t max_batch : {1u, 4u}) {
            ScopedFaultPlan scoped(plan);

            ServerOptions opts = serverOptions(workers, 64);
            opts.maxBatch = max_batch;
            opts.batchWaitUs = 200.0;
            opts.overload.enabled = true;
            opts.overload.targetDelayMs = 2.0;
            opts.overload.minDwellMs = 0.0;
            opts.overload.ewmaAlpha = 0.5;
            opts.overload.minObservations = 4;
            InferenceServer server(makeReferenceModel, opts);

            // A short mixed-priority open-loop schedule, fast-forwarded
            // (no sleeps): submission pressure far above what the
            // workers drain, so sheds, expiries and queue rejections
            // all occur alongside chaos failures.
            LoadGenOptions gen;
            gen.process = ArrivalProcess::Bursty;
            gen.ratePerSec = 500.0;
            gen.seed = kSeed + workers * 10 + max_batch;
            gen.numStreams = 3;
            gen.deadlineMeanMs = 8.0;
            gen.stiffFraction = 0.3;
            const auto schedule = LoadGen(gen).schedule(1.0);
            ASSERT_FALSE(schedule.empty());

            std::printf("soak config workers=%zu maxBatch=%zu: %zu arrivals\n",
                        workers, max_batch, schedule.size());
            std::vector<std::future<InferResponse>> futures;
            std::vector<std::uint64_t> ids;
            std::uint64_t rejected = 0;
            for (const ArrivalEvent &ev : schedule) {
                Rng rng(ev.inputSeed);
                Tensor input = Tensor::randn(Shape{kDim}, rng,
                                             ev.stiff ? 1.5f : 0.5f);
                const auto deadline =
                    RuntimeClock::now() +
                    std::chrono::duration_cast<RuntimeClock::duration>(
                        std::chrono::duration<double, std::milli>(
                            ev.deadlineBudgetMs));
                auto sub = server.submit(input, ev.stream, deadline);
                if (sub.accepted) {
                    futures.push_back(std::move(sub.result));
                    ids.push_back(sub.id);
                } else {
                    rejected++;
                }
            }
            for (std::size_t i = 0; i < futures.size(); i++) {
                // Bounded wait: a lost promise fails loudly instead of
                // hanging the suite.
                ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(30)),
                          std::future_status::ready)
                    << "future " << i << " (id " << ids[i] << ") of "
                    << futures.size()
                    << " never resolved (workers=" << workers
                    << " maxBatch=" << max_batch << ")";
                futures[i].get();
            }
            server.stop();

            const MetricsSummary m = server.metrics().summary();
            EXPECT_EQ(m.admitted, futures.size())
                << "workers=" << workers << " maxBatch=" << max_batch;
            EXPECT_EQ(m.rejected, rejected)
                << "workers=" << workers << " maxBatch=" << max_batch;
            EXPECT_EQ(m.admitted, m.completed + m.expired + m.failed +
                                      m.cancelled + m.shed)
                << "workers=" << workers << " maxBatch=" << max_batch
                << " admitted=" << m.admitted << " completed="
                << m.completed << " expired=" << m.expired << " failed="
                << m.failed << " cancelled=" << m.cancelled
                << " shed=" << m.shed;
        }
    }
    setLogLevel(LogLevel::Info);
}

// ---------------------------------------------------------------------
// Load generator
// ---------------------------------------------------------------------

TEST(LoadGen, SameSeedSameSchedule)
{
    LoadGenOptions gen;
    gen.process = ArrivalProcess::Bursty;
    gen.ratePerSec = 200.0;
    gen.seed = 42;
    const auto a = LoadGen(gen).schedule(2.0);
    const auto b = LoadGen(gen).schedule(2.0);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    for (std::size_t i = 0; i < a.size(); i++) {
        EXPECT_DOUBLE_EQ(a[i].atMs, b[i].atMs);
        EXPECT_EQ(a[i].stream, b[i].stream);
        EXPECT_DOUBLE_EQ(a[i].deadlineBudgetMs, b[i].deadlineBudgetMs);
        EXPECT_EQ(a[i].stiff, b[i].stiff);
        EXPECT_EQ(a[i].inputSeed, b[i].inputSeed);
    }
    gen.seed = 43;
    const auto c = LoadGen(gen).schedule(2.0);
    EXPECT_NE(a.size() == c.size() &&
                  (a.empty() || a[0].inputSeed == c[0].inputSeed),
              true)
        << "different seeds produced an identical schedule";
}

TEST(LoadGen, PoissonRateAndMixMatchConfiguration)
{
    LoadGenOptions gen;
    gen.process = ArrivalProcess::Poisson;
    gen.ratePerSec = 400.0;
    gen.seed = 7;
    gen.numStreams = 3;
    gen.deadlineMeanMs = 50.0;
    gen.deadlineJitter = 0.5;
    gen.stiffFraction = 0.25;
    const double seconds = 20.0;
    const auto events = LoadGen(gen).schedule(seconds);

    // Mean count 8000, sd ~90: a 5-sigma band is [7550, 8450].
    EXPECT_GT(events.size(), 7550u);
    EXPECT_LT(events.size(), 8450u);

    std::size_t stiff = 0;
    double prev = 0.0;
    for (const ArrivalEvent &ev : events) {
        EXPECT_GE(ev.atMs, prev) << "arrivals must be time-ordered";
        prev = ev.atMs;
        EXPECT_LT(ev.stream, gen.numStreams);
        EXPECT_GE(ev.deadlineBudgetMs, 25.0 - 1e-9);
        EXPECT_LE(ev.deadlineBudgetMs, 75.0 + 1e-9);
        stiff += ev.stiff ? 1 : 0;
    }
    const double stiff_frac =
        static_cast<double>(stiff) / static_cast<double>(events.size());
    EXPECT_NEAR(stiff_frac, 0.25, 0.05);
}

TEST(LoadGen, BurstyAlternatesHotAndSilentPhases)
{
    LoadGenOptions gen;
    gen.process = ArrivalProcess::Bursty;
    gen.ratePerSec = 200.0; // bursts at 800/s
    gen.seed = 11;
    const auto events = LoadGen(gen).schedule(10.0);
    ASSERT_GT(events.size(), 100u);

    // Open-loop burstiness shows up as a heavy inter-arrival tail:
    // silent phases produce gaps far above the in-burst mean (~1.25ms).
    double max_gap = 0.0;
    for (std::size_t i = 1; i < events.size(); i++)
        max_gap = std::max(max_gap, events[i].atMs - events[i - 1].atMs);
    EXPECT_GT(max_gap, 100.0) << "no silent phase in a bursty schedule";
}

TEST(LoadGen, DiurnalSweepsTheRate)
{
    LoadGenOptions gen;
    gen.process = ArrivalProcess::Diurnal;
    gen.ratePerSec = 300.0;
    gen.diurnalPeriodSec = 10.0;
    gen.seed = 13;
    const auto events = LoadGen(gen).schedule(10.0);
    ASSERT_GT(events.size(), 100u);

    // Rate follows 1 - cos(2 pi t / period): the middle of the cycle
    // (trough at the edges, crest in the center) must carry several
    // times the traffic of the first tenth.
    std::size_t head = 0, crest = 0;
    for (const ArrivalEvent &ev : events) {
        if (ev.atMs < 1000.0)
            head++;
        else if (ev.atMs >= 4000.0 && ev.atMs < 6000.0)
            crest++;
    }
    EXPECT_GT(crest, 2 * head);
}

} // namespace
} // namespace enode
