/**
 * @file
 * Rng determinism and distribution sanity; stats package; table
 * formatter.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace enode {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; i++)
        same += a.nextU64() == b.nextU64();
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; i++) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    Accumulator acc;
    for (int i = 0; i < 20000; i++)
        acc.add(rng.normal(3.0, 2.0));
    EXPECT_NEAR(acc.mean(), 3.0, 0.1);
    EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(Rng, IntRangeInclusiveAndUnbiased)
{
    Rng rng(13);
    int counts[6] = {0};
    for (int i = 0; i < 12000; i++) {
        const int v = rng.intRange(0, 5);
        ASSERT_GE(v, 0);
        ASSERT_LE(v, 5);
        counts[v]++;
    }
    for (int c : counts)
        EXPECT_NEAR(c, 2000, 300);
}

TEST(Rng, PermutationIsAPermutation)
{
    Rng rng(17);
    auto perm = rng.permutation(50);
    std::vector<bool> seen(50, false);
    for (auto v : perm) {
        ASSERT_LT(v, 50u);
        ASSERT_FALSE(seen[v]);
        seen[v] = true;
    }
}

TEST(Rng, ForkedStreamsAreIndependent)
{
    Rng a(5);
    Rng b = a.fork();
    // The fork must not replay the parent's stream.
    EXPECT_NE(a.nextU64(), b.nextU64());
}

TEST(Accumulator, TracksMinMaxMeanVariance)
{
    Accumulator acc;
    for (double v : {2.0, 4.0, 6.0})
        acc.add(v);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 6.0);
    EXPECT_NEAR(acc.variance(), 8.0 / 3.0, 1e-12);
    acc.reset();
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
}

TEST(Histogram, BinsAndClamps)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);  // bin 0
    h.add(9.9);  // bin 4
    h.add(-3.0); // clamps to bin 0
    h.add(42.0); // clamps to bin 4
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(4), 2u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.binLow(1), 2.0);
}

TEST(Histogram, PercentileInterpolatesWithinBins)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; i++)
        h.add(i + 0.5); // one sample per bin
    EXPECT_EQ(h.percentile(0.0), 0.0);
    EXPECT_NEAR(h.percentile(50.0), 5.0, 1.0); // bin resolution
    EXPECT_NEAR(h.percentile(100.0), 10.0, 1e-12);
    Histogram empty(0.0, 1.0, 4);
    EXPECT_EQ(empty.percentile(99.0), 0.0);
}

TEST(Histogram, PercentileBoundaryEdgesWithEmptyBins)
{
    // Leading and trailing bins empty: the percentile range must span
    // exactly the *occupied* bins, never jump to the histogram bounds.
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 8; i++)
        h.add(4.5); // all mass in bin 4 ([4, 5))
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 4.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 5.0);
    for (double q = 0.0; q <= 100.0; q += 1.0) {
        EXPECT_GE(h.percentile(q), 4.0);
        EXPECT_LE(h.percentile(q), 5.0);
    }
}

TEST(Histogram, PercentileIsMonotoneInQ)
{
    // Gappy multi-modal data — the shape that used to expose boundary
    // jumps across empty bins.
    Histogram h(0.0, 100.0, 25);
    Rng rng(91);
    for (int i = 0; i < 300; i++) {
        const double mode =
            (i % 3 == 0) ? 5.0 : (i % 3 == 1) ? 47.0 : 93.0;
        h.add(mode + rng.uniform() * 3.0);
    }
    double prev = h.percentile(0.0);
    for (double q = 0.25; q <= 100.0; q += 0.25) {
        const double cur = h.percentile(q);
        ASSERT_GE(cur, prev) << "non-monotone at q=" << q;
        prev = cur;
    }
}

TEST(Histogram, PercentileCrossChecksSampleSeries)
{
    // Property test on dense uniform data: the binned estimate must
    // track the exact order statistics to within the bin resolution.
    const double lo = 0.0, hi = 50.0;
    const std::size_t bins = 20;
    const double width = (hi - lo) / static_cast<double>(bins);
    Histogram h(lo, hi, bins);
    SampleSeries s;
    Rng rng(1234);
    for (int i = 0; i < 1000; i++) {
        const double v = lo + rng.uniform() * (hi - lo);
        h.add(v);
        s.add(v);
    }
    for (double q = 0.0; q <= 100.0; q += 0.5) {
        EXPECT_NEAR(h.percentile(q), s.percentile(q), 2.0 * width)
            << "divergence at q=" << q;
    }
}

TEST(SampleSeries, ExactPercentiles)
{
    SampleSeries s;
    EXPECT_EQ(s.percentile(50.0), 0.0); // empty
    // Insert 1..100 shuffled; quantiles must not depend on order.
    Rng rng(3);
    auto perm = rng.permutation(100);
    for (std::size_t i : perm)
        s.add(static_cast<double>(i + 1));
    EXPECT_EQ(s.count(), 100u);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 100.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);
    EXPECT_NEAR(s.percentile(50.0), 50.5, 1e-12);
    EXPECT_NEAR(s.percentile(95.0), 95.05, 1e-12);
    EXPECT_NEAR(s.percentile(99.0), 99.01, 1e-12);
    EXPECT_NEAR(s.mean(), 50.5, 1e-12);

    // Adding after a quantile query stays correct (lazy re-sort).
    s.add(1000.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 1000.0);

    SampleSeries single;
    single.add(7.0);
    EXPECT_DOUBLE_EQ(single.percentile(50.0), 7.0);
}

TEST(SampleSeries, BelowCapacityMatchesUnboundedReference)
{
    // Property: while count() <= capacity() the bounded series is the
    // *same distribution object* as an unbounded one — every quantile
    // and every accumulator agrees exactly, for any insertion order.
    const std::size_t cap = 512;
    Rng rng(17);
    for (int round = 0; round < 3; round++) {
        SampleSeries bounded(cap);
        SampleSeries reference; // default cap far above this stream
        double sum = 0.0;
        const std::size_t n = cap; // exactly at the cap: still exact
        for (std::size_t i = 0; i < n; i++) {
            const double x = rng.normal(0.0, 100.0);
            bounded.add(x);
            reference.add(x);
            sum += x;
        }
        ASSERT_EQ(bounded.count(), n);
        ASSERT_EQ(bounded.stored(), n);
        EXPECT_DOUBLE_EQ(bounded.mean(), sum / static_cast<double>(n));
        EXPECT_DOUBLE_EQ(bounded.min(), reference.min());
        EXPECT_DOUBLE_EQ(bounded.max(), reference.max());
        for (double q = 0.0; q <= 100.0; q += 2.5)
            EXPECT_DOUBLE_EQ(bounded.percentile(q), reference.percentile(q))
                << "q=" << q << " round=" << round;
    }
}

TEST(SampleSeries, BoundedMemoryBeyondCapacity)
{
    // The 10.2 regression: the latency series grew one double per
    // request forever. Past the cap, storage must stay put while the
    // running accumulators stay exact.
    const std::size_t cap = 256;
    SampleSeries s(cap);
    const std::size_t n = 20000;
    double sum = 0.0;
    for (std::size_t i = 0; i < n; i++) {
        const double x = static_cast<double>(i);
        s.add(x);
        sum += x;
    }
    EXPECT_EQ(s.stored(), cap);
    EXPECT_EQ(s.capacity(), cap);
    // Exact accumulators, untouched by the reservoir.
    EXPECT_EQ(s.count(), n);
    EXPECT_DOUBLE_EQ(s.mean(), sum / static_cast<double>(n));
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), static_cast<double>(n - 1));
    // Percentiles degrade to estimates but must stay finite, in range,
    // and monotone in q.
    double prev = s.percentile(0.0);
    EXPECT_GE(prev, 0.0);
    for (double q = 5.0; q <= 100.0; q += 5.0) {
        const double cur = s.percentile(q);
        EXPECT_TRUE(std::isfinite(cur));
        EXPECT_LE(cur, static_cast<double>(n - 1));
        EXPECT_GE(cur, prev) << "percentile not monotone at q=" << q;
        prev = cur;
    }
    // A uniform ramp's reservoir median lands near the true median.
    EXPECT_NEAR(s.percentile(50.0), static_cast<double>(n) / 2.0,
                static_cast<double>(n) * 0.15);
}

TEST(SampleSeries, ReservoirIsDeterministic)
{
    // Fixed-seed splitmix64 replacement: two series fed the same
    // stream hold identical reservoirs — reproducible soak reports.
    const std::size_t cap = 64;
    SampleSeries a(cap), b(cap);
    for (std::size_t i = 0; i < 5000; i++) {
        const double x = std::sin(static_cast<double>(i));
        a.add(x);
        b.add(x);
    }
    ASSERT_EQ(a.stored(), b.stored());
    for (double q = 0.0; q <= 100.0; q += 1.0)
        EXPECT_DOUBLE_EQ(a.percentile(q), b.percentile(q)) << "q=" << q;
}

TEST(SampleSeries, ResetRestoresExactMode)
{
    const std::size_t cap = 32;
    SampleSeries s(cap);
    for (int i = 0; i < 1000; i++)
        s.add(static_cast<double>(i));
    ASSERT_EQ(s.stored(), cap);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.stored(), 0u);
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 0.0);
    // Exact again below the cap after the reset.
    for (int i = 1; i <= 9; i++)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(StatGroup, SetAddGetDump)
{
    StatGroup stats("core0");
    stats.set("macs", 10.0);
    stats.add("macs", 5.0);
    stats.add("hits", 1.0);
    EXPECT_DOUBLE_EQ(stats.get("macs"), 15.0);
    EXPECT_TRUE(stats.has("hits"));
    EXPECT_FALSE(stats.has("misses"));
    EXPECT_EQ(stats.keys().size(), 2u);
    EXPECT_NE(stats.dump().find("core0.macs = 15"), std::string::npos);
}

TEST(Table, RendersAlignedCells)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", Table::num(1.5, 2)});
    t.addSeparator();
    t.addRow({"beta", Table::ratio(2.0)});
    const std::string out = t.render();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("1.50"), std::string::npos);
    EXPECT_NE(out.find("2.00x"), std::string::npos);
    EXPECT_EQ(Table::percent(0.125), "12.5%");
    EXPECT_EQ(Table::integer(42), "42");
}

TEST(Table, RowWidthMismatchPanics)
{
    Table t("demo");
    t.setHeader({"a", "b"});
    EXPECT_DEATH({ t.addRow({"only-one"}); }, "width");
}

} // namespace
} // namespace enode
