/**
 * @file
 * Virtual prototype: an entire RK23 integration trial computed *through
 * the hardware datapath models* — four chained NnCores (one conv layer
 * each, clockwise), the hub's IntegralAccumulator forming the partial
 * states, and the FunctionUnit's incremental error norm — and checked
 * against the algorithm-level RkStepper bit-for-bit (up to float
 * reassociation).
 *
 * This is the strongest integration evidence that the architecture of
 * Figs. 7-9 computes exactly the mathematics of Fig. 2: same f, same
 * tableau, two completely different execution substrates.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/conv2d.h"
#include "ode/rk_stepper.h"
#include "sim/hub.h"
#include "sim/nn_core.h"

namespace enode {
namespace {

/**
 * A 4-conv embedded network expressed directly over 8-channel tiles so
 * it maps 1:1 onto 8-lane cores (no time channel: this f is autonomous,
 * which the tableau handles fine — c coefficients only shift t).
 */
class CoreMappedF : public OdeFunction
{
  public:
    explicit CoreMappedF(Rng &rng)
    {
        for (int i = 0; i < 4; i++) {
            weights_.push_back(
                Tensor::randn(Shape{8, 8, 3, 3}, rng, 0.25f));
            biases_.push_back(Tensor::randn(Shape{8}, rng, 0.25f));
            cores_.emplace_back("core" + std::to_string(i));
            cores_.back().loadWeights(weights_.back());
        }
    }

    /** Reference evaluation: plain convolutions + ReLU between. */
    Tensor
    eval(double /*t*/, const Tensor &h) override
    {
        countEval();
        Tensor cur = h;
        for (int i = 0; i < 4; i++) {
            cur = convForward(cur, weights_[i], biases_[i]);
            if (i < 3) {
                for (std::size_t k = 0; k < cur.numel(); k++)
                    if (cur.at(k) < 0.0f)
                        cur.at(k) = 0.0f;
            }
        }
        return cur;
    }

    /** Hardware evaluation: one loop around the ring of cores. */
    Tensor
    evalOnCores(const Tensor &h)
    {
        Tensor cur = h;
        for (int i = 0; i < 4; i++)
            cur = cores_[i].forward(cur, biases_[i], /*relu=*/i < 3);
        return cur;
    }

    std::vector<NnCore> &cores() { return cores_; }

  private:
    std::vector<Tensor> weights_;
    std::vector<Tensor> biases_;
    std::vector<NnCore> cores_;
};

TEST(VirtualPrototype, RingLoopEqualsReferenceF)
{
    Rng rng(41);
    CoreMappedF f(rng);
    Tensor h = Tensor::randn(Shape{8, 10, 8}, rng, 0.4f);
    const Tensor reference = f.eval(0.0, h);
    const Tensor on_cores = f.evalOnCores(h);
    EXPECT_LT(Tensor::maxAbsDiff(on_cores, reference), 1e-4);
}

TEST(VirtualPrototype, FullRk23TrialThroughTheHardwarePath)
{
    Rng rng(43);
    CoreMappedF f(rng);
    Tensor h = Tensor::randn(Shape{8, 10, 8}, rng, 0.4f);
    const double dt = 0.05;
    const auto &tab = ButcherTableau::rk23();

    // Algorithm-level reference.
    RkStepper stepper(tab);
    auto ref = stepper.step(f, 0.0, h, dt);

    // Hardware path: the hub builds every stage input with the
    // IntegralAccumulator, each f evaluation loops the core ring, and
    // the accumulator forms h' and e exactly as Fig. 6(a) orders it.
    IntegralAccumulator acc;
    const std::size_t s = tab.stages();
    std::vector<Tensor> k(s);
    for (std::size_t j = 0; j < s; j++) {
        Tensor yj = h;
        for (std::size_t l = 0; l < j; l++) {
            if (tab.a()[j][l] != 0.0)
                acc.accumulate(yj, dt * tab.a()[j][l], k[l]);
        }
        k[j] = f.evalOnCores(yj);
    }
    Tensor y_next = h;
    for (std::size_t j = 0; j < s; j++) {
        if (tab.b()[j] != 0.0)
            acc.accumulate(y_next, dt * tab.b()[j], k[j]);
    }
    Tensor e(h.shape());
    const auto d = tab.errorWeights();
    for (std::size_t j = 0; j < s; j++) {
        if (d[j] != 0.0)
            acc.accumulate(e, dt * d[j], k[j]);
    }

    EXPECT_LT(Tensor::maxAbsDiff(y_next, ref.yNext), 1e-4);
    EXPECT_LT(Tensor::maxAbsDiff(e, ref.errorState), 1e-4);
    EXPECT_GT(acc.ops(), 0u);

    // Function unit: the incremental norm over all rows equals the
    // batch norm, and its accept/reject verdict matches the reference.
    FunctionUnit fu;
    const double eps = ref.errorNorm * 1.5; // a tolerance this trial meets
    fu.startTrial(eps);
    for (std::size_t r = 0; r < e.shape().dim(1); r++)
        fu.consumeRow(e, r);
    EXPECT_FALSE(fu.exceeded());
    // Incremental row accumulation == batch norm of the tensor it
    // consumed, and both agree with the reference up to float
    // reassociation across the two execution substrates.
    EXPECT_NEAR(fu.partialNorm(), e.l2Norm(), 1e-9);
    EXPECT_NEAR(fu.partialNorm(), ref.errorNorm, 1e-4 * ref.errorNorm);
}

TEST(VirtualPrototype, FunctionUnitEarlyStopIsSoundAndEager)
{
    Rng rng(47);
    Tensor e = Tensor::randn(Shape{2, 16, 4}, rng, 1.0f);
    const double full_norm = e.l2Norm();

    // Tolerance below the full norm: the unit must terminate early and
    // never before the partial norm genuinely crosses it.
    FunctionUnit fu;
    fu.startTrial(0.25 * full_norm);
    std::size_t stop_row = 16;
    for (std::size_t r = 0; r < 16; r++) {
        if (fu.consumeRow(e, r)) {
            stop_row = r;
            break;
        }
    }
    ASSERT_LT(stop_row, 16u) << "must terminate early";
    EXPECT_TRUE(fu.exceeded());
    EXPECT_GT(fu.partialNorm(), 0.25 * full_norm); // sound
    EXPECT_EQ(fu.earlyTerminations(), 1u);
    // Work saved: rows consumed strictly fewer than the map height.
    EXPECT_LT(fu.rowsConsumed(), 16u);

    // Tolerance above the full norm: never terminates, exact norm.
    FunctionUnit fu2;
    fu2.startTrial(2.0 * full_norm);
    for (std::size_t r = 0; r < 16; r++)
        EXPECT_FALSE(fu2.consumeRow(e, r));
    EXPECT_NEAR(fu2.partialNorm(), full_norm, 1e-9);
}

TEST(VirtualPrototype, FunctionUnitRequiresArming)
{
    FunctionUnit fu;
    Tensor e = Tensor::ones(Shape{1, 4, 4});
    EXPECT_DEATH({ fu.consumeRow(e, 0); }, "not armed");
}

TEST(VirtualPrototype, BackwardConvThroughCoresMatchesAutograd)
{
    // The counter-clockwise adjoint loop: grad flows back through the
    // cores' backward-data path; weight gradients come from the
    // captured training states. Compare against the reference conv
    // backward chain for a 2-layer slice.
    Rng rng(53);
    Tensor w1 = Tensor::randn(Shape{8, 8, 3, 3}, rng, 0.3f);
    Tensor w2 = Tensor::randn(Shape{8, 8, 3, 3}, rng, 0.3f);
    Tensor x = Tensor::randn(Shape{8, 9, 7}, rng, 0.5f);
    Tensor gout = Tensor::randn(Shape{8, 9, 7}, rng, 0.5f);

    NnCore c1("c1"), c2("c2");
    c1.loadWeights(w1);
    c2.loadWeights(w2);

    // Local forward with training-state capture (no ReLU: keep the
    // chain linear so the reference is the plain conv adjoint).
    Tensor mid =
        c1.forward(x, Tensor(), /*relu=*/false, /*capture=*/true);
    c2.forward(mid, Tensor(), /*relu=*/false, /*capture=*/true);

    // Counter-clockwise: core 2 first.
    Tensor gw2 = c2.weightGrad(gout);
    Tensor gmid = c2.backwardData(gout);
    c2.retireTrainingState();
    Tensor gw1 = c1.weightGrad(gmid);
    Tensor gx = c1.backwardData(gmid);
    c1.retireTrainingState();

    EXPECT_LT(Tensor::maxAbsDiff(gw2, convBackwardWeights(mid, gout, 3)),
              1e-4);
    const Tensor gmid_ref = convBackwardData(gout, w2);
    EXPECT_LT(Tensor::maxAbsDiff(gmid, gmid_ref), 1e-4);
    EXPECT_LT(Tensor::maxAbsDiff(gw1,
                                 convBackwardWeights(x, gmid_ref, 3)),
              2e-4);
    EXPECT_LT(Tensor::maxAbsDiff(gx, convBackwardData(gmid_ref, w1)),
              2e-4);
}

} // namespace
} // namespace enode
