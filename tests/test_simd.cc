/**
 * @file
 * SIMD backend layer: dispatch-probe sanity, the ENODE_SIMD override,
 * and every kernel's equivalence contract against the scalar oracle.
 *
 * The contracts under test (see DESIGN.md "SIMD backend & dispatch"):
 *  - elementwise kernels and the fixed-lane reductions (16-float dot,
 *    8-double sum of squares) are *bitwise identical* across backends,
 *    at every size including ragged tails;
 *  - the fixed-lane reductions sit within a documented reduction-order
 *    tolerance of a plain serial sum;
 *  - allFinite is exact; the fp16 conversions are bitwise against the
 *    software Fp16 reference for every non-NaN input (NaNs must stay
 *    NaN, payload unspecified on hardware paths).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <random>
#include <vector>

#include "common/fp16.h"
#include "common/simd.h"
#include "common/simd_internal.h"

namespace enode {
namespace {

/** Sizes chosen to straddle every backend's vector width and tail. */
const std::size_t kSizes[] = {0,  1,  2,  3,  5,  7,  8,  9,  15, 16,
                              17, 23, 31, 32, 33, 48, 63, 64, 67, 100};

/** Deterministic mixed-magnitude test data: the adversarial float set. */
std::vector<float>
testData(std::size_t n, std::uint32_t seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> unit(-1.0f, 1.0f);
    std::vector<float> out(n);
    for (std::size_t i = 0; i < n; i++) {
        switch (i % 7) {
        case 0:
            out[i] = unit(rng);
            break;
        case 1:
            out[i] = unit(rng) * 1e30f; // huge
            break;
        case 2:
            out[i] = unit(rng) * 1e-30f; // tiny
            break;
        case 3:
            out[i] = unit(rng) * 1e-42f; // subnormal territory
            break;
        case 4:
            out[i] = 0.0f;
            break;
        case 5:
            out[i] = -0.0f;
            break;
        default:
            out[i] = unit(rng) * 65000.0f; // near the fp16 edge
            break;
        }
    }
    return out;
}

bool
bitwiseEqual(const std::vector<float> &a, const std::vector<float> &b)
{
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

std::vector<SimdBackend>
vectorBackends()
{
    std::vector<SimdBackend> out;
    for (SimdBackend b : availableSimdBackends()) {
        if (b != SimdBackend::Scalar)
            out.push_back(b);
    }
    return out;
}

TEST(SimdDispatch, ProbeSanity)
{
    const auto available = availableSimdBackends();
    ASSERT_FALSE(available.empty());
    EXPECT_EQ(available.front(), SimdBackend::Scalar)
        << "scalar must always be available";

    const SimdBackend active = activeSimdBackend();
    EXPECT_TRUE(simdBackendSupported(active));
    EXPECT_TRUE(simdBackendCompiled(active));

    const SimdOps &ops = simdOps();
    EXPECT_EQ(ops.backend, active);
    EXPECT_STREQ(ops.name, simdBackendName(active));
    EXPECT_GE(ops.laneWidth, 1u);
    EXPECT_LE(ops.laneWidth, 16u);
}

TEST(SimdDispatch, ParseBackendNames)
{
    EXPECT_EQ(parseSimdBackendName("scalar"), SimdBackend::Scalar);
    EXPECT_EQ(parseSimdBackendName("avx2"), SimdBackend::Avx2);
    EXPECT_EQ(parseSimdBackendName("AVX512"), SimdBackend::Avx512);
    EXPECT_EQ(parseSimdBackendName("Neon"), SimdBackend::Neon);
    EXPECT_EQ(parseSimdBackendName("sse9"), std::nullopt);
    EXPECT_EQ(parseSimdBackendName(""), std::nullopt);
}

TEST(SimdDispatch, ScopedOverrideAppliesAndRestores)
{
    const SimdBackend before = activeSimdBackend();
    for (SimdBackend b : availableSimdBackends()) {
        ScopedSimdBackend forced(b);
        ASSERT_TRUE(forced.applied());
        EXPECT_EQ(activeSimdBackend(), b);
        EXPECT_STREQ(simdOps().name, simdBackendName(b));
    }
    EXPECT_EQ(activeSimdBackend(), before);
}

TEST(SimdDispatch, SetRejectsUnsupportedBackend)
{
    const SimdBackend before = activeSimdBackend();
    for (SimdBackend b : {SimdBackend::Neon, SimdBackend::Avx2,
                          SimdBackend::Avx512}) {
        if (!simdBackendSupported(b)) {
            EXPECT_FALSE(setSimdBackend(b));
            EXPECT_EQ(activeSimdBackend(), before);
        }
    }
}

TEST(SimdDispatch, EnvOverrideForcesBackend)
{
    // resetSimdBackend() re-runs the same selection as process startup,
    // so the env var can be exercised without re-execing the binary.
    ASSERT_EQ(setenv("ENODE_SIMD", "scalar", 1), 0);
    resetSimdBackend();
    EXPECT_EQ(activeSimdBackend(), SimdBackend::Scalar);

    // Nonsense values are ignored (with a warning): probe default wins.
    ASSERT_EQ(setenv("ENODE_SIMD", "quantum", 1), 0);
    resetSimdBackend();
    const SimdBackend probed = activeSimdBackend();
    EXPECT_TRUE(simdBackendSupported(probed));

    ASSERT_EQ(unsetenv("ENODE_SIMD"), 0);
    resetSimdBackend();
    EXPECT_EQ(activeSimdBackend(), probed);
}

// ---------------------------------------------------------------------------
// Bitwise cross-backend equivalence, scalar as the oracle.
// ---------------------------------------------------------------------------

class SimdKernelEquivalence : public ::testing::Test
{
  protected:
    /**
     * Run `kernel` under the scalar backend and under `backend`, and
     * require bitwise-identical float output.
     */
    template <typename Kernel>
    void
    expectBitwiseAcrossBackends(const Kernel &kernel)
    {
        for (SimdBackend b : vectorBackends()) {
            for (std::size_t n : kSizes) {
                std::vector<float> scalarOut;
                {
                    ScopedSimdBackend forced(SimdBackend::Scalar);
                    ASSERT_TRUE(forced.applied());
                    scalarOut = kernel(simdOps(), n);
                }
                std::vector<float> vectorOut;
                {
                    ScopedSimdBackend forced(b);
                    ASSERT_TRUE(forced.applied());
                    vectorOut = kernel(simdOps(), n);
                }
                EXPECT_TRUE(bitwiseEqual(scalarOut, vectorOut))
                    << simdBackendName(b) << " diverged from scalar at n="
                    << n;
            }
        }
    }
};

TEST_F(SimdKernelEquivalence, Axpy)
{
    expectBitwiseAcrossBackends([](const SimdOps &ops, std::size_t n) {
        std::vector<float> y = testData(n, 11);
        const std::vector<float> x = testData(n, 13);
        ops.axpy(y.data(), 1.7f, x.data(), n);
        return y;
    });
}

TEST_F(SimdKernelEquivalence, Scale)
{
    expectBitwiseAcrossBackends([](const SimdOps &ops, std::size_t n) {
        std::vector<float> y = testData(n, 17);
        ops.scale(y.data(), -0.37f, n);
        return y;
    });
}

TEST_F(SimdKernelEquivalence, AddSubInPlace)
{
    expectBitwiseAcrossBackends([](const SimdOps &ops, std::size_t n) {
        std::vector<float> y = testData(n, 19);
        const std::vector<float> x = testData(n, 23);
        ops.addInPlace(y.data(), x.data(), n);
        ops.subInPlace(y.data(), x.data(), n);
        return y;
    });
}

TEST_F(SimdKernelEquivalence, Copy)
{
    expectBitwiseAcrossBackends([](const SimdOps &ops, std::size_t n) {
        const std::vector<float> x = testData(n, 29);
        std::vector<float> y(n, -1.0f);
        ops.copy(y.data(), x.data(), n);
        return y;
    });
}

TEST_F(SimdKernelEquivalence, RowTaps3)
{
    expectBitwiseAcrossBackends([](const SimdOps &ops, std::size_t n) {
        std::vector<float> acc = testData(n, 31);
        const std::vector<float> row = testData(n + 2, 37);
        const float w[3] = {0.5f, -1.25f, 2.0f};
        ops.rowTaps3(acc.data(), row.data(), w, n);
        return acc;
    });
}

TEST_F(SimdKernelEquivalence, RowTaps3x4)
{
    expectBitwiseAcrossBackends([](const SimdOps &ops, std::size_t n) {
        std::vector<float> acc = testData(4 * n, 41);
        const std::vector<float> row = testData(n + 2, 43);
        const float w0[3] = {0.5f, -1.25f, 2.0f};
        const float w1[3] = {-0.75f, 0.1f, 1.5f};
        const float w2[3] = {3.0f, -2.0f, 0.25f};
        const float w3[3] = {0.0f, 1.0f, -1.0f};
        ops.rowTaps3x4(acc.data(), row.data(), w0, w1, w2, w3, n);
        return acc;
    });
}

TEST_F(SimdKernelEquivalence, AccumDot16LanesAndTail)
{
    expectBitwiseAcrossBackends([](const SimdOps &ops, std::size_t n) {
        const std::vector<float> a = testData(n, 47);
        const std::vector<float> b = testData(n, 53);
        std::vector<float> state(17);
        for (std::size_t j = 0; j < 17; j++)
            state[j] = 0.01f * static_cast<float>(j); // nonzero carry-in
        ops.accumDot16(state.data(), &state[16], a.data(), b.data(), n);
        return state;
    });
}

TEST_F(SimdKernelEquivalence, DotIsBitwiseUnderFixedLaneContract)
{
    expectBitwiseAcrossBackends([](const SimdOps &ops, std::size_t n) {
        const std::vector<float> a = testData(n, 59);
        const std::vector<float> b = testData(n, 61);
        return std::vector<float>{ops.dot(a.data(), b.data(), n)};
    });
}

TEST_F(SimdKernelEquivalence, SumSquaresIsBitwiseUnderFixedLaneContract)
{
    for (SimdBackend b : vectorBackends()) {
        for (std::size_t n : kSizes) {
            const std::vector<float> x = testData(n, 67);
            double scalarSum = 0.0;
            {
                ScopedSimdBackend forced(SimdBackend::Scalar);
                ASSERT_TRUE(forced.applied());
                scalarSum = simdOps().sumSquares(x.data(), n);
            }
            ScopedSimdBackend forced(b);
            ASSERT_TRUE(forced.applied());
            const double vectorSum = simdOps().sumSquares(x.data(), n);
            EXPECT_EQ(std::memcmp(&scalarSum, &vectorSum, sizeof(double)), 0)
                << simdBackendName(b) << " norm diverged at n=" << n;
        }
    }
}

TEST_F(SimdKernelEquivalence, AllFiniteExactEverywhere)
{
    for (SimdBackend b : availableSimdBackends()) {
        ScopedSimdBackend forced(b);
        ASSERT_TRUE(forced.applied());
        const SimdOps &ops = simdOps();
        for (std::size_t n : kSizes) {
            std::vector<float> x = testData(n, 71);
            EXPECT_TRUE(ops.allFinite(x.data(), n)) << simdBackendName(b);
            // A single poison value at any position must flip it.
            const float poisons[] = {
                std::numeric_limits<float>::quiet_NaN(),
                std::numeric_limits<float>::infinity(),
                -std::numeric_limits<float>::infinity()};
            for (std::size_t i = 0; i < n; i++) {
                const float saved = x[i];
                x[i] = poisons[i % 3];
                EXPECT_FALSE(ops.allFinite(x.data(), n))
                    << simdBackendName(b) << " missed poison at " << i
                    << " of " << n;
                x[i] = saved;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reduction-order tolerance vs a plain serial sum (the documented bound).
// ---------------------------------------------------------------------------

TEST(SimdReductionTolerance, SumSquaresVsSerial)
{
    // The fixed-lane reduction reorders a nonneg sum; condition number 1,
    // so the drift is bounded by ~n ulps. This is the documented
    // tolerance between Tensor::l2Norm and a serial sum.
    const std::size_t n = 4096;
    const std::vector<float> x = testData(n, 73);
    double serial = 0.0;
    for (float v : x)
        serial += static_cast<double>(v) * static_cast<double>(v);
    for (SimdBackend b : availableSimdBackends()) {
        ScopedSimdBackend forced(b);
        ASSERT_TRUE(forced.applied());
        const double got = simdOps().sumSquares(x.data(), n);
        const double tol =
            static_cast<double>(n) *
            std::numeric_limits<double>::epsilon() * serial;
        EXPECT_NEAR(got, serial, tol) << simdBackendName(b);
    }
}

TEST(SimdReductionTolerance, DotVsSerialDouble)
{
    const std::size_t n = 1024;
    std::mt19937 rng(79);
    std::uniform_real_distribution<float> unit(-1.0f, 1.0f);
    std::vector<float> a(n), b(n);
    double serial = 0.0, absSum = 0.0;
    for (std::size_t i = 0; i < n; i++) {
        a[i] = unit(rng);
        b[i] = unit(rng);
        const double p =
            static_cast<double>(a[i]) * static_cast<double>(b[i]);
        serial += p;
        absSum += std::fabs(p);
    }
    // Signed sum: error scales with the sum of |terms|, not the result.
    const double tol = 64.0 * std::numeric_limits<float>::epsilon() * absSum;
    for (SimdBackend backend : availableSimdBackends()) {
        ScopedSimdBackend forced(backend);
        ASSERT_TRUE(forced.applied());
        const float got = simdOps().dot(a.data(), b.data(), n);
        EXPECT_NEAR(static_cast<double>(got), serial, tol)
            << simdBackendName(backend);
    }
}

// ---------------------------------------------------------------------------
// fp16 conversion kernels vs the software Fp16 reference.
// ---------------------------------------------------------------------------

/** Floats that exercise every rounding branch and boundary. */
std::vector<float>
fp16BoundarySamples()
{
    std::vector<float> out;
    // Every half value, widened (includes subnormals, infs; NaNs too).
    for (std::uint32_t h = 0; h <= 0xffffu; h++)
        out.push_back(Fp16::fromBits(static_cast<std::uint16_t>(h)).toFloat());
    // Dense scans around the encoder's branch thresholds.
    const std::uint32_t centers[] = {
        0x00000000u, // zero / smallest subnormal floats
        0x33000000u, // half of the smallest subnormal half
        0x33800000u, // smallest subnormal half
        0x38800000u, // smallest normal half
        0x477fe000u, // largest finite half
        0x47800000u, // overflow threshold (65536.0f)
        0x7f800000u, // infinity
    };
    for (std::uint32_t c : centers) {
        for (std::int32_t d = -96; d <= 96; d++) {
            const std::uint32_t bits =
                c + static_cast<std::uint32_t>(d);
            if (bits > 0x7f800000u && c != 0x7f800000u)
                continue;
            out.push_back(simd_detail::f32FromBits(bits));
            out.push_back(simd_detail::f32FromBits(bits | 0x80000000u));
        }
    }
    // Random patterns across the whole float range.
    std::mt19937 rng(83);
    for (int i = 0; i < 200000; i++)
        out.push_back(simd_detail::f32FromBits(rng()));
    return out;
}

TEST(SimdFp16, FusedScalarRoundTripMatchesFp16Class)
{
    for (float x : fp16BoundarySamples()) {
        const float viaClass = Fp16(x).toFloat();
        const float fused = simd_detail::halfRoundTrip(x);
        if (std::isnan(viaClass)) {
            EXPECT_TRUE(std::isnan(fused));
            continue;
        }
        EXPECT_EQ(simd_detail::f32Bits(viaClass), simd_detail::f32Bits(fused))
            << "input bits 0x" << std::hex << simd_detail::f32Bits(x);
    }
}

TEST(SimdFp16, ScalarHelpersMatchFp16ClassExhaustively)
{
    for (std::uint32_t h = 0; h <= 0xffffu; h++) {
        const auto bits = static_cast<std::uint16_t>(h);
        const float viaClass = Fp16::fromBits(bits).toFloat();
        const float viaHelper = simd_detail::halfToFloat(bits);
        EXPECT_EQ(simd_detail::f32Bits(viaClass),
                  simd_detail::f32Bits(viaHelper))
            << "half bits 0x" << std::hex << h;
    }
}

TEST(SimdFp16, QuantizeMatchesSoftwareGridOnEveryBackend)
{
    const std::vector<float> samples = fp16BoundarySamples();
    for (SimdBackend backend : availableSimdBackends()) {
        ScopedSimdBackend forced(backend);
        ASSERT_TRUE(forced.applied());
        std::vector<float> data = samples;
        simdOps().quantizeFp16(data.data(), data.size());
        for (std::size_t i = 0; i < samples.size(); i++) {
            const float expected = roundToFp16(samples[i]);
            if (std::isnan(expected)) {
                // NaNs stay NaN; hardware may keep payload bits the
                // software path canonicalizes, so only NaN-ness is pinned.
                EXPECT_TRUE(std::isnan(data[i])) << simdBackendName(backend);
                continue;
            }
            EXPECT_EQ(simd_detail::f32Bits(expected),
                      simd_detail::f32Bits(data[i]))
                << simdBackendName(backend) << " input bits 0x" << std::hex
                << simd_detail::f32Bits(samples[i]);
        }
    }
}

TEST(SimdFp16, PackMatchesSoftwareEncoderOnEveryBackend)
{
    const std::vector<float> samples = fp16BoundarySamples();
    for (SimdBackend backend : availableSimdBackends()) {
        ScopedSimdBackend forced(backend);
        ASSERT_TRUE(forced.applied());
        std::vector<std::uint16_t> packed(samples.size());
        simdOps().packFp16(packed.data(), samples.data(), samples.size());
        for (std::size_t i = 0; i < samples.size(); i++) {
            const Fp16 expected(samples[i]);
            if (expected.isNaN()) {
                EXPECT_TRUE(Fp16::fromBits(packed[i]).isNaN())
                    << simdBackendName(backend);
                continue;
            }
            EXPECT_EQ(expected.bits(), packed[i])
                << simdBackendName(backend) << " input bits 0x" << std::hex
                << simd_detail::f32Bits(samples[i]);
        }
    }
}

TEST(SimdFp16, UnpackWidensEveryPatternOnEveryBackend)
{
    std::vector<std::uint16_t> halves(0x10000);
    for (std::uint32_t h = 0; h <= 0xffffu; h++)
        halves[h] = static_cast<std::uint16_t>(h);
    for (SimdBackend backend : availableSimdBackends()) {
        ScopedSimdBackend forced(backend);
        ASSERT_TRUE(forced.applied());
        std::vector<float> widened(halves.size());
        simdOps().unpackFp16(widened.data(), halves.data(), halves.size());
        for (std::size_t h = 0; h < halves.size(); h++) {
            const Fp16 half = Fp16::fromBits(halves[h]);
            if (half.isNaN()) {
                // Hardware widening quiets signaling NaNs; software keeps
                // the pattern. Both must stay NaN.
                EXPECT_TRUE(std::isnan(widened[h]))
                    << simdBackendName(backend);
                continue;
            }
            EXPECT_EQ(simd_detail::f32Bits(half.toFloat()),
                      simd_detail::f32Bits(widened[h]))
                << simdBackendName(backend) << " half bits 0x" << std::hex
                << h;
        }
    }
}

} // namespace
} // namespace enode
