/**
 * @file
 * ACA training: the discrete adjoint must match finite differences.
 *
 * This is the strongest correctness property in the library: the
 * backward pass of Sec. II.C (local forward + adjoint + parameter
 * gradients) is validated against central finite differences of the
 * *entire* forward solve, for both MLP and conv embedded networks, and
 * for several integrators.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/aca_trainer.h"
#include "core/node_model.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "ode/step_control.h"

namespace enode {
namespace {

/** Forward solve -> MSE loss, used as the scalar objective for FD. */
double
lossOf(NodeModel &model, const Tensor &x0, const Tensor &target,
       const ButcherTableau &tab, const IvpOptions &opts)
{
    FixedFactorController ctrl;
    auto fwd = model.forward(x0, tab, ctrl, opts);
    return mseLoss(fwd.output, target).value;
}

struct GradCheck
{
    double sumSqDiff = 0.0;
    double sumSqFd = 0.0;
    std::size_t checked = 0;

    /** Aggregate relative L2 error, robust to FD noise on tiny entries. */
    double
    relErr() const
    {
        return std::sqrt(sumSqDiff) / std::max(std::sqrt(sumSqFd), 1e-8);
    }
};

/**
 * Compare ACA gradients with central differences on a subset of
 * parameters. The forward solve must take *identical* steps for the
 * perturbed evaluations, so the tolerance is loose enough that the
 * accepted step sequence is stable under the perturbation.
 */
GradCheck
checkGradients(NodeModel &model, const Tensor &x0, const Tensor &target,
               const ButcherTableau &tab, const IvpOptions &opts,
               double fd_eps, std::size_t max_params_per_slot)
{
    FixedFactorController ctrl;
    model.zeroGrad();
    auto fwd = model.forward(x0, tab, ctrl, opts);
    auto loss = mseLoss(fwd.output, target);
    acaBackward(model, tab, fwd, loss.grad);

    GradCheck check;
    for (auto &slot : model.paramSlots()) {
        const std::size_t n =
            std::min(slot.param->numel(), max_params_per_slot);
        for (std::size_t i = 0; i < n; i++) {
            const float saved = slot.param->at(i);
            slot.param->at(i) = saved + static_cast<float>(fd_eps);
            const double plus = lossOf(model, x0, target, tab, opts);
            slot.param->at(i) = saved - static_cast<float>(fd_eps);
            const double minus = lossOf(model, x0, target, tab, opts);
            slot.param->at(i) = saved;

            const double fd = (plus - minus) / (2.0 * fd_eps);
            const double analytic = slot.grad->at(i);
            check.sumSqDiff += (fd - analytic) * (fd - analytic);
            check.sumSqFd += fd * fd;
            check.checked++;
        }
    }
    return check;
}

IvpOptions
fixedStepOptions()
{
    // A generous tolerance keeps the accepted-step sequence identical
    // under the finite-difference perturbations.
    IvpOptions opts;
    opts.tolerance = 1e-1;
    opts.initialDt = 0.25;
    return opts;
}

TEST(AcaTrainer, MlpGradientsMatchFiniteDifferencesRk23)
{
    Rng rng(7);
    auto model = NodeModel::makeMlp(1, 4, 8, 1, rng);
    Tensor x0 = Tensor::randn(Shape{4}, rng, 0.5f);
    Tensor target = Tensor::randn(Shape{4}, rng, 0.5f);

    auto check = checkGradients(*model, x0, target, ButcherTableau::rk23(),
                                fixedStepOptions(), 1e-3, 12);
    EXPECT_GT(check.checked, 30u);
    EXPECT_LT(check.relErr(), 2e-2) << "adjoint deviates from FD";
}

TEST(AcaTrainer, MlpGradientsMatchFiniteDifferencesDopri5)
{
    Rng rng(11);
    auto model = NodeModel::makeMlp(1, 3, 6, 1, rng);
    Tensor x0 = Tensor::randn(Shape{3}, rng, 0.5f);
    Tensor target = Tensor::randn(Shape{3}, rng, 0.5f);

    auto check = checkGradients(*model, x0, target,
                                ButcherTableau::dopri5(), fixedStepOptions(),
                                1e-3, 10);
    EXPECT_GT(check.checked, 20u);
    EXPECT_LT(check.relErr(), 2e-2);
}

TEST(AcaTrainer, MlpGradientsMatchFiniteDifferencesEuler)
{
    Rng rng(13);
    auto model = NodeModel::makeMlp(1, 3, 6, 1, rng);
    Tensor x0 = Tensor::randn(Shape{3}, rng, 0.5f);
    Tensor target = Tensor::randn(Shape{3}, rng, 0.5f);

    auto check = checkGradients(*model, x0, target, ButcherTableau::euler(),
                                fixedStepOptions(), 1e-3, 10);
    EXPECT_LT(check.relErr(), 2e-2);
}

TEST(AcaTrainer, ConvGradientsMatchFiniteDifferences)
{
    Rng rng(3);
    auto model = NodeModel::makeConv(1, 4, 2, rng);
    Tensor x0 = Tensor::randn(Shape{4, 6, 6}, rng, 0.5f);
    Tensor target = Tensor::randn(Shape{4, 6, 6}, rng, 0.5f);

    auto check = checkGradients(*model, x0, target, ButcherTableau::rk23(),
                                fixedStepOptions(), 1e-3, 6);
    EXPECT_GT(check.checked, 20u);
    EXPECT_LT(check.relErr(), 3e-2);
}

TEST(AcaTrainer, InputGradientMatchesFiniteDifferences)
{
    Rng rng(19);
    auto model = NodeModel::makeMlp(1, 4, 8, 1, rng);
    Tensor x0 = Tensor::randn(Shape{4}, rng, 0.5f);
    Tensor target = Tensor::randn(Shape{4}, rng, 0.5f);
    const auto &tab = ButcherTableau::rk23();
    const auto opts = fixedStepOptions();

    FixedFactorController ctrl;
    model->zeroGrad();
    auto fwd = model->forward(x0, tab, ctrl, opts);
    auto loss = mseLoss(fwd.output, target);
    auto aca = acaBackward(*model, tab, fwd, loss.grad);

    const double fd_eps = 1e-3;
    for (std::size_t i = 0; i < x0.numel(); i++) {
        Tensor xp = x0, xm = x0;
        xp.at(i) += static_cast<float>(fd_eps);
        xm.at(i) -= static_cast<float>(fd_eps);
        const double plus = lossOf(*model, xp, target, tab, opts);
        const double minus = lossOf(*model, xm, target, tab, opts);
        const double fd = (plus - minus) / (2.0 * fd_eps);
        const double analytic = aca.gradInput.at(i);
        const double scale =
            std::max({std::abs(fd), std::abs(analytic), 1e-4});
        EXPECT_LT(std::abs(fd - analytic) / scale, 2e-2)
            << "input grad " << i;
    }
}

TEST(AcaTrainer, BackwardSkipsFsalStage)
{
    // RK23's k4 has b=0 and no downstream consumer: the backward pass
    // must not evaluate a VJP for it (Sec. IV.B: "only computes the
    // integral states k1, k2 and k3").
    Rng rng(5);
    auto model = NodeModel::makeMlp(1, 3, 6, 1, rng);
    Tensor x0 = Tensor::randn(Shape{3}, rng, 0.5f);
    Tensor target = Tensor::randn(Shape{3}, rng, 0.5f);

    FixedFactorController ctrl;
    IvpOptions opts = fixedStepOptions();
    auto fwd = model->forward(x0, ButcherTableau::rk23(), ctrl, opts);
    auto loss = mseLoss(fwd.output, target);
    auto aca = acaBackward(*model, ButcherTableau::rk23(), fwd, loss.grad);

    // 3 VJPs per step, not 4.
    EXPECT_EQ(aca.stats.adjointVjps, 3 * aca.stats.backwardSteps);
    // Local forward evaluates all 4 stages.
    EXPECT_EQ(aca.stats.localForwardEvals, 4 * aca.stats.backwardSteps);
    EXPECT_EQ(aca.stats.backwardSteps, fwd.totalStats.evalPoints);
}

TEST(AcaTrainer, TrainingReducesRegressionLoss)
{
    Rng rng(23);
    auto model = NodeModel::makeMlp(1, 2, 16, 1, rng);
    // Learn to rotate a point: target is a fixed linear map of x0.
    Tensor x0(Shape{2}, {1.0f, 0.0f});
    Tensor target(Shape{2}, {0.0f, 1.0f});

    Sgd opt(model->paramSlots(), 0.05, 0.9);
    FixedFactorController ctrl;
    IvpOptions opts;
    opts.tolerance = 1e-4;
    opts.initialDt = 0.2;

    double first_loss = 0.0, last_loss = 0.0;
    for (int iter = 0; iter < 40; iter++) {
        opt.zeroGrad();
        auto step = regressionTrainStep(*model, x0, target,
                                        ButcherTableau::rk23(), ctrl, opts);
        if (iter == 0)
            first_loss = step.loss;
        last_loss = step.loss;
        opt.step();
    }
    EXPECT_LT(last_loss, 0.2 * first_loss)
        << "training failed to reduce loss: " << first_loss << " -> "
        << last_loss;
}

} // namespace
} // namespace enode
